// Table 2: search-space size, iterations-to-convergence and solution quality
// for the auto-tuning engine (ATE, pruned domain) vs a TVM-like tuner (same
// GBT cost model, unpruned domain), on AlexNet conv layers, V100 model.
#include "bench_util.hpp"

#include "convbound/tune/tuners.hpp"

namespace convbound::bench {
namespace {

constexpr int kBudget = 64;

struct Row {
  std::string name;
  ConvShape shape;
  bool winograd = false;

  std::uint64_t tvm_space = 0, ate_space = 0;
  int tvm_iters = 0, ate_iters = 0;
  double tvm_gflops = 0, ate_gflops = 0;
};

std::vector<Row> g_rows;

void run_row(Row row) {
  SimGpu gpu(MachineSpec::v100());
  DomainOptions ate_opts, tvm_opts;
  ate_opts.winograd = tvm_opts.winograd = row.winograd;
  ate_opts.e = tvm_opts.e = 2;
  ate_opts.prune_with_optimality = true;
  tvm_opts.prune_with_optimality = false;

  const auto ate_domain = SearchDomain::build(row.shape, gpu.spec(), ate_opts);
  const auto tvm_domain = SearchDomain::build(row.shape, gpu.spec(), tvm_opts);
  row.ate_space = ate_domain.size();
  row.tvm_space = tvm_domain.size();

  {
    ConvMeasurer m(gpu, ate_domain, 11);
    AteTuner::Params params;
    params.seeds.push_back(row.winograd
                               ? default_winograd_config(row.shape, 2, gpu.spec())
                               : default_tiled_config(row.shape, gpu.spec()));
    AteTuner tuner(11, params);
    const TuneResult r = tuner.run(m, kBudget);
    row.ate_iters = r.trials_to_converge();
    row.ate_gflops = m.gflops(r.best_seconds);
  }
  {
    ConvMeasurer m(gpu, tvm_domain, 11);
    AteTuner tuner(11);  // same engine, unpruned space = TVM-like
    const TuneResult r = tuner.run(m, kBudget);
    row.tvm_iters = r.trials_to_converge();
    row.tvm_gflops = m.gflops(r.best_seconds);
  }
  g_rows.push_back(std::move(row));
}

void register_all() {
  const std::vector<Row> rows = {
      {"conv1", make_shape(1, 3, 227, 96, 11, 4, 0), false, 0, 0, 0, 0, 0, 0},
      {"conv2", make_shape(1, 96, 27, 256, 5, 1, 2), false, 0, 0, 0, 0, 0, 0},
      {"conv3", make_shape(1, 256, 13, 384, 3, 1, 1), false, 0, 0, 0, 0, 0, 0},
      {"conv4", make_shape(1, 384, 13, 256, 3, 1, 1), false, 0, 0, 0, 0, 0, 0},
      {"conv3_wino", make_shape(1, 256, 13, 384, 3, 1, 1), true,
       0, 0, 0, 0, 0, 0},
      {"conv4_wino", make_shape(1, 384, 13, 256, 3, 1, 1), true,
       0, 0, 0, 0, 0, 0},
  };
  for (const Row& r : rows) {
    benchmark::RegisterBenchmark(("table2/" + r.name).c_str(),
                                 [r](benchmark::State& st) {
                                   for (auto _ : st) run_row(r);
                                 })
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
}

void print_summary() {
  std::printf("\n=== Table 2: TVM-like tuner vs auto-tuning engine (ATE), "
              "AlexNet conv layers, V100 model ===\n");
  Table t({"layer", "space TVM", "space ATE", "ATE/TVM", "iters TVM",
           "iters ATE", "TVM/ATE", "GFlops TVM", "GFlops ATE", "ATE/TVM"});
  for (const auto& r : g_rows) {
    t.add_row({r.name, Table::fmt_int(static_cast<long long>(r.tvm_space)),
               Table::fmt_int(static_cast<long long>(r.ate_space)),
               Table::fmt(100.0 * static_cast<double>(r.ate_space) /
                              static_cast<double>(r.tvm_space),
                          1) + "%",
               std::to_string(r.tvm_iters), std::to_string(r.ate_iters),
               Table::fmt(static_cast<double>(r.tvm_iters) /
                              static_cast<double>(r.ate_iters),
                          2),
               Table::fmt(r.tvm_gflops, 0), Table::fmt(r.ate_gflops, 0),
               Table::fmt(r.ate_gflops / r.tvm_gflops, 2)});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\npaper shape to check: ATE space is ~20-55%% of TVM's, ATE "
              "converges in fewer iterations, solution GFlops >= TVM's.\n");
}

}  // namespace
}  // namespace convbound::bench

int main(int argc, char** argv) {
  convbound::bench::register_all();
  return convbound::bench::run_all(argc, argv,
                                   convbound::bench::print_summary);
}
