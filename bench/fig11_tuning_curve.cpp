// Figure 11: achieved GFlops vs number of tuning iterations for the
// automation methods on AlexNet conv1 (V100 machine model), plus the
// cuDNN-like baseline as a horizontal reference.
//
// Ours = the auto-tuning engine (GBT cost model + parallel random walk on
// the optimality-pruned domain); the TVM searcher family = simulated
// annealing / genetic / random on the unpruned domain. New in this figure:
// the bound-guided branch-and-bound tuner ("bnb") on the pruned domain —
// the gated claim is that it reaches the best GFlops the sampling methods
// find while *measuring* strictly fewer configurations, because subtrees
// whose I/O lower bound cannot beat the incumbent are pruned unmeasured
// (bnb_configs_measured_ratio in the emitted JSON, gated in
// bench/baselines/gates.json).
//
// All tuners run through the batched parallel measurement engine
// (BatchMeasurer); the ATE method is additionally re-run through the serial
// ConvMeasurer to report the batched-vs-serial wall-clock speedup and to
// assert the two search traces are bit-identical. Results are emitted as
// BENCH_fig11_tuning_curve.json for trajectory tracking.
#include "bench_util.hpp"

#include "convbound/tune/batch_measure.hpp"
#include "convbound/tune/bnb.hpp"
#include "convbound/tune/tuners.hpp"
#include "convbound/util/timer.hpp"

namespace convbound::bench {
namespace {

// Smoke scale keeps CI wall-clock down while still letting bnb exhaust the
// pruned domain (~80 measurements on conv1), so the measured-configs gate
// stays meaningful at both scales.
int budget() { return serve_smoke() ? 128 : 200; }
std::vector<int> checkpoints() {
  if (serve_smoke()) return {8, 16, 32, 64, 96, 128};
  return {8, 16, 32, 64, 96, 128, 160, 200};
}

ConvShape conv1() { return make_shape(1, 3, 227, 96, 11, 4, 0); }

double to_gflops(const ConvShape& s, double seconds) {
  return static_cast<double>(s.flops()) / seconds / 1e9;
}

struct Curve {
  std::string name;
  std::vector<double> gflops_at_checkpoint;
  int converged_at = 0;
  double best_gflops = 0;
  double wall_seconds = 0;
  double configs_per_second = 0;
  int configs_measured = 0;
};

std::vector<Curve> g_curves;
double g_baseline_gflops = 0;

struct SerialVsBatched {
  double serial_wall_s = 0;
  double batched_wall_s = 0;
  double speedup = 0;
  bool histories_identical = false;
  int workers = 0;
} g_ate_parallel;

struct BnbOutcome {
  TuneResult res;
  std::uint64_t nodes_expanded = 0;
  std::uint64_t subtrees_pruned = 0;
  std::uint64_t configs_pruned = 0;
  std::uint64_t leaves_opened = 0;
  bool proven_optimal = false;
} g_bnb;
TuneResult g_ate_res, g_ga_res;

Curve make_curve(const std::string& name, const TuneResult& res,
                 const ConvShape& s, double wall_seconds) {
  Curve c;
  c.name = name;
  for (int cp : checkpoints()) {
    // bnb can exhaust its domain before the budget; clamp to the last trial
    // (the curve is flat from there — the search is provably finished).
    const std::size_t idx =
        std::min(static_cast<std::size_t>(cp), res.history.size()) - 1;
    c.gflops_at_checkpoint.push_back(to_gflops(s, res.history[idx].best_seconds));
  }
  c.converged_at = res.trials_to_converge();
  c.best_gflops = to_gflops(s, res.best_seconds);
  c.wall_seconds = wall_seconds;
  c.configs_measured = static_cast<int>(res.history.size());
  c.configs_per_second =
      static_cast<double>(res.history.size()) / wall_seconds;
  return c;
}

TuneResult run_tuner(const std::string& name, Tuner& tuner,
                     const SearchDomain& domain, const MachineSpec& spec) {
  BatchMeasurer measurer(spec, domain, /*seed=*/7);
  WallTimer timer;
  const TuneResult res = tuner.run(measurer, budget());
  g_curves.push_back(
      make_curve(name, res, domain.shape(), timer.seconds()));
  return res;
}

bool same_history(const TuneResult& a, const TuneResult& b) {
  if (a.history.size() != b.history.size()) return false;
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    if (!(a.history[i].config == b.history[i].config)) return false;
    if (a.history[i].seconds != b.history[i].seconds) return false;
    if (a.history[i].best_seconds != b.history[i].best_seconds) return false;
  }
  return a.best_seconds == b.best_seconds;
}

/// First trial whose incumbent reaches `target_gflops` (tiny relative slack
/// for float noise); 0 when the trace never gets there.
int trials_to_target(const TuneResult& res, const ConvShape& s,
                     double target_gflops) {
  for (const auto& rec : res.history) {
    if (to_gflops(s, rec.best_seconds) >= target_gflops * (1 - 1e-9))
      return rec.trial;
  }
  return 0;
}

void register_all() {
  benchmark::RegisterBenchmark("fig11/tuning", [](benchmark::State& st) {
    for (auto _ : st) {
      SimGpu gpu(MachineSpec::v100());
      const ConvShape s = conv1();

      // cuDNN-like baseline reference line.
      const ConvProblem p = make_problem(s, 7);
      const auto base =
          run_conv(gpu, ConvAlgorithm::kCudnnDirect, p.input, p.weights, s);
      g_baseline_gflops =
          static_cast<double>(s.flops()) / base.stats.sim_time / 1e9;

      DomainOptions ours_opts;   // pruned
      DomainOptions tvm_opts;    // unpruned (TVM-like space)
      tvm_opts.prune_with_optimality = false;
      const auto pruned = SearchDomain::build(s, gpu.spec(), ours_opts);
      const auto full = SearchDomain::build(s, gpu.spec(), tvm_opts);

      AteTuner::Params ate_params;
      ate_params.seeds.push_back(default_tiled_config(s, gpu.spec()));
      AteTuner ate(7, ate_params);
      SimulatedAnnealingTuner sa(7);
      GeneticTuner ga(7);
      RandomTuner rnd(7);
      BnbOptions bnb_opts;
      bnb_opts.seeds.push_back(default_tiled_config(s, gpu.spec()));
      BranchAndBoundTuner bnb(bnb_opts);

      g_ate_res = run_tuner("dataflow + auto-tuning engine (ours)", ate,
                            pruned, gpu.spec());
      g_bnb.res = run_tuner("branch-and-bound (bounds, ours)", bnb, pruned,
                            gpu.spec());
      g_bnb.nodes_expanded = bnb.nodes_expanded();
      g_bnb.subtrees_pruned = bnb.subtrees_pruned();
      g_bnb.configs_pruned = bnb.configs_pruned();
      g_bnb.leaves_opened = bnb.leaves_opened();
      g_bnb.proven_optimal = bnb.proven_optimal();
      run_tuner("simulated annealing (TVM-like)", sa, full, gpu.spec());
      g_ga_res = run_tuner("genetic algorithm (TVM-like)", ga, full,
                           gpu.spec());
      run_tuner("random search (TVM-like)", rnd, full, gpu.spec());

      // Batched-vs-serial: same seed, same tuner, the two measurement
      // engines must produce bit-identical traces; only wall-clock differs.
      {
        ConvMeasurer serial(gpu, pruned, /*seed=*/7);
        AteTuner ate_serial(7, ate_params);
        WallTimer t_serial;
        const TuneResult res_serial = ate_serial.run(serial, budget());
        g_ate_parallel.serial_wall_s = t_serial.seconds();

        BatchMeasurer batched(gpu.spec(), pruned, /*seed=*/7);
        AteTuner ate_batched(7, ate_params);
        WallTimer t_batched;
        const TuneResult res_batched = ate_batched.run(batched, budget());
        g_ate_parallel.batched_wall_s = t_batched.seconds();

        g_ate_parallel.speedup =
            g_ate_parallel.serial_wall_s / g_ate_parallel.batched_wall_s;
        g_ate_parallel.histories_identical =
            same_history(res_serial, res_batched);
        g_ate_parallel.workers = batched.workers();
      }
    }
  })->Iterations(1)->Unit(benchmark::kSecond);
}

void print_summary() {
  const ConvShape s = conv1();
  std::printf("\n=== Figure 11: GFlops vs tuning iterations, AlexNet conv1, "
              "V100 model ===\n");
  std::vector<std::string> header = {"method"};
  for (int cp : checkpoints()) header.push_back("@" + std::to_string(cp));
  header.push_back("converged@");
  header.push_back("measured");
  header.push_back("cfg/s");
  Table t(header);
  for (const auto& c : g_curves) {
    std::vector<std::string> row = {c.name};
    for (double g : c.gflops_at_checkpoint) row.push_back(Table::fmt(g, 0));
    row.push_back(std::to_string(c.converged_at));
    row.push_back(std::to_string(c.configs_measured));
    row.push_back(Table::fmt(c.configs_per_second, 1));
    t.add_row(std::move(row));
  }
  t.add_row([&] {
    std::vector<std::string> row = {"cuDNN-like baseline (no tuning)"};
    for (std::size_t i = 0; i < checkpoints().size(); ++i)
      row.push_back(Table::fmt(g_baseline_gflops, 0));
    row.push_back("-");
    row.push_back("-");
    row.push_back("-");
    return row;
  }());
  std::printf("%s", t.to_string().c_str());
  std::printf("\nbatched measurement engine: %d workers, %.2fs wall vs "
              "%.2fs serial (%.2fx), traces identical: %s\n",
              g_ate_parallel.workers, g_ate_parallel.batched_wall_s,
              g_ate_parallel.serial_wall_s, g_ate_parallel.speedup,
              g_ate_parallel.histories_identical ? "yes" : "NO  <-- bug!");

  // The gated branch-and-bound claim: same best GFlops as the strongest
  // sampling method, with strictly fewer measured configurations (the rest
  // pruned by admissible I/O lower bounds).
  const double ate_best = to_gflops(s, g_ate_res.best_seconds);
  const double ga_best = to_gflops(s, g_ga_res.best_seconds);
  const bool ref_is_ga = ga_best > ate_best;
  const TuneResult& ref = ref_is_ga ? g_ga_res : g_ate_res;
  const double target_gflops = ref_is_ga ? ga_best : ate_best;
  const double bnb_best = to_gflops(s, g_bnb.res.best_seconds);
  const bool reached = bnb_best >= target_gflops * (1 - 1e-9);
  const double ratio = static_cast<double>(g_bnb.res.history.size()) /
                       static_cast<double>(ref.history.size());
  std::printf("branch-and-bound: best %.0f GFlops vs target %.0f (%s, from "
              "%s), measured %zu vs %zu configs (ratio %.2f), pruned %llu, "
              "certified optimal: %s\n",
              bnb_best, target_gflops, reached ? "reached" : "MISSED",
              ref_is_ga ? "ga" : "ate", g_bnb.res.history.size(),
              ref.history.size(), ratio,
              static_cast<unsigned long long>(g_bnb.configs_pruned),
              g_bnb.proven_optimal ? "yes" : "no");
  std::printf("paper shape to check: ours climbs fastest and ends highest; "
              "all methods eventually beat the baseline.\n");

  std::vector<std::string> methods;
  for (const auto& c : g_curves) {
    methods.push_back(JsonObject()
                          .add("name", c.name)
                          .add("best_gflops", c.best_gflops)
                          .add("wall_seconds", c.wall_seconds)
                          .add("configs_per_second", c.configs_per_second)
                          .add("configs_measured", c.configs_measured)
                          .add("converged_at", c.converged_at)
                          .add("checkpoints", checkpoints())
                          .add("gflops_at_checkpoint", c.gflops_at_checkpoint)
                          .to_string());
  }
  JsonObject out;
  out.add("bench", "fig11_tuning_curve")
      .add("budget", budget())
      .add("baseline_gflops", g_baseline_gflops)
      .add_raw("methods", json_array(methods))
      .add("target_gflops", target_gflops)
      .add("target_method", ref_is_ga ? "ga" : "ate")
      .add("bnb_best_gflops", bnb_best)
      .add("bnb_reached_target", reached ? 1 : 0)
      .add("bnb_configs_measured", static_cast<int>(g_bnb.res.history.size()))
      .add("ref_configs_measured", static_cast<int>(ref.history.size()))
      .add("bnb_configs_measured_ratio", ratio)
      .add("bnb_trials_to_target", trials_to_target(g_bnb.res, s, target_gflops))
      .add("ref_trials_to_target", trials_to_target(ref, s, target_gflops))
      .add_raw("bnb_pruning",
               JsonObject()
                   .add("nodes_expanded", g_bnb.nodes_expanded)
                   .add("subtrees_pruned", g_bnb.subtrees_pruned)
                   .add("configs_pruned", g_bnb.configs_pruned)
                   .add("leaves_opened", g_bnb.leaves_opened)
                   .add("proven_optimal", g_bnb.proven_optimal)
                   .to_string())
      .add_raw("ate_parallel_measurement",
               JsonObject()
                   .add("workers", g_ate_parallel.workers)
                   .add("serial_wall_seconds", g_ate_parallel.serial_wall_s)
                   .add("batched_wall_seconds", g_ate_parallel.batched_wall_s)
                   .add("speedup", g_ate_parallel.speedup)
                   .add("histories_identical",
                        g_ate_parallel.histories_identical)
                   .to_string());
  write_bench_json("fig11_tuning_curve", out);
}

}  // namespace
}  // namespace convbound::bench

int main(int argc, char** argv) {
  convbound::bench::register_all();
  return convbound::bench::run_all(argc, argv,
                                   convbound::bench::print_summary);
}
