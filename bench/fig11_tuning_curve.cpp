// Figure 11: achieved GFlops vs number of tuning iterations for four
// automation methods on AlexNet conv1 (V100 machine model), plus the
// cuDNN-like baseline as a horizontal reference.
//
// Ours = the auto-tuning engine (GBT cost model + parallel random walk on
// the optimality-pruned domain); the TVM searcher family = simulated
// annealing / genetic / random on the unpruned domain.
#include "bench_util.hpp"

#include "convbound/tune/tuners.hpp"

namespace convbound::bench {
namespace {

constexpr int kBudget = 96;
const std::vector<int> kCheckpoints = {8, 16, 24, 32, 48, 64, 80, 96};

ConvShape conv1() { return make_shape(1, 3, 227, 96, 11, 4, 0); }

struct Curve {
  std::string name;
  std::vector<double> gflops_at_checkpoint;
  int converged_at = 0;
};

std::vector<Curve> g_curves;
double g_baseline_gflops = 0;

void run_tuner(const std::string& name, Tuner& tuner,
               const SearchDomain& domain, SimGpu& gpu) {
  ConvMeasurer measurer(gpu, domain, /*seed=*/7);
  const TuneResult res = tuner.run(measurer, kBudget);
  Curve c;
  c.name = name;
  for (int cp : kCheckpoints) {
    const auto& rec = res.history[static_cast<std::size_t>(cp - 1)];
    c.gflops_at_checkpoint.push_back(measurer.gflops(rec.best_seconds));
  }
  c.converged_at = res.trials_to_converge();
  g_curves.push_back(std::move(c));
}

void register_all() {
  benchmark::RegisterBenchmark("fig11/tuning", [](benchmark::State& st) {
    for (auto _ : st) {
      SimGpu gpu(MachineSpec::v100());
      const ConvShape s = conv1();

      // cuDNN-like baseline reference line.
      const ConvProblem p = make_problem(s, 7);
      const auto base =
          run_conv(gpu, ConvAlgorithm::kCudnnDirect, p.input, p.weights, s);
      g_baseline_gflops =
          static_cast<double>(s.flops()) / base.stats.sim_time / 1e9;

      DomainOptions ours_opts;   // pruned
      DomainOptions tvm_opts;    // unpruned (TVM-like space)
      tvm_opts.prune_with_optimality = false;
      const auto pruned = SearchDomain::build(s, gpu.spec(), ours_opts);
      const auto full = SearchDomain::build(s, gpu.spec(), tvm_opts);

      AteTuner::Params ate_params;
      ate_params.seeds.push_back(default_tiled_config(s, gpu.spec()));
      AteTuner ate(7, ate_params);
      SimulatedAnnealingTuner sa(7);
      GeneticTuner ga(7);
      RandomTuner rnd(7);
      run_tuner("dataflow + auto-tuning engine (ours)", ate, pruned, gpu);
      run_tuner("simulated annealing (TVM-like)", sa, full, gpu);
      run_tuner("genetic algorithm (TVM-like)", ga, full, gpu);
      run_tuner("random search (TVM-like)", rnd, full, gpu);
    }
  })->Iterations(1)->Unit(benchmark::kSecond);
}

void print_summary() {
  std::printf("\n=== Figure 11: GFlops vs tuning iterations, AlexNet conv1, "
              "V100 model ===\n");
  std::vector<std::string> header = {"method"};
  for (int cp : kCheckpoints) header.push_back("@" + std::to_string(cp));
  header.push_back("converged@");
  Table t(header);
  for (const auto& c : g_curves) {
    std::vector<std::string> row = {c.name};
    for (double g : c.gflops_at_checkpoint) row.push_back(Table::fmt(g, 0));
    row.push_back(std::to_string(c.converged_at));
    t.add_row(std::move(row));
  }
  t.add_row([&] {
    std::vector<std::string> row = {"cuDNN-like baseline (no tuning)"};
    for (std::size_t i = 0; i < kCheckpoints.size(); ++i)
      row.push_back(Table::fmt(g_baseline_gflops, 0));
    row.push_back("-");
    return row;
  }());
  std::printf("%s", t.to_string().c_str());
  std::printf("\npaper shape to check: ours climbs fastest and ends highest; "
              "all methods eventually beat the baseline.\n");
}

}  // namespace
}  // namespace convbound::bench

int main(int argc, char** argv) {
  convbound::bench::register_all();
  return convbound::bench::run_all(argc, argv,
                                   convbound::bench::print_summary);
}
