// Tracing-overhead bench: the cost of the obs:: instrumentation, gated in
// CI (see bench/baselines/gates.json).
//
// Two experiments:
//
// 1. Micro loop — a tight replica of an instrumented serving seam (one
//    steady-clock read plus a little arithmetic per op, the shape of a
//    submit-path admit site), in three variants:
//      ungated      the loop with NO obs:: calls at all — the code as it
//                   would be without instrumentation;
//      tracing-off  the loop with the real obs::instant/obs::span call
//                   sites, tracing disabled (each call = one relaxed
//                   atomic load + branch);
//      tracing-on   the same with tracing enabled (clock reads + ring
//                   writes into the global registry's per-thread ring).
//    The gate metric is tracing_off_over_ungated: disabled instrumentation
//    must be within noise of the uninstrumented loop. tracing_on_over_off
//    is reported (wide gate) — the ring write is real work, and the micro
//    loop is a worst case with almost no application work to amortise it.
//
// 2. Serve loop — the real InferenceServer closed loop (as in the serve
//    CLI smoke) run tracing-off then tracing-on; serve_on_over_off gates
//    that end-to-end serving pays at most ~10% for a fully recorded trace
//    (in practice it is within noise: per-request event cost is tens of
//    nanoseconds against milliseconds of batch execution).
//
// Each micro variant runs `kRepeats` times and keeps the fastest pass
// (best-of filters scheduler noise, which one-shot wall clocks are full
// of). Results land in BENCH_trace_overhead.json; CONVBOUND_SERVE_SMOKE=1
// shrinks the op counts for CI.
#include "bench_util.hpp"

#include <thread>

#include "convbound/obs/trace.hpp"
#include "convbound/util/table.hpp"
#include "convbound/util/timer.hpp"

namespace convbound::bench {
namespace {

bool smoke() { return serve_smoke(); }
std::uint64_t seed_base() { return bench_seed(60000ull); }

int micro_ops() { return smoke() ? 2000000 : 8000000; }
constexpr int kRepeats = 5;
int serve_requests_per_client() { return smoke() ? 48 : 192; }
constexpr int kServeClients = 4;

// ---------------------------------------------------------------------------
// Micro loop. Each op mimics an admit site: one clock read (the serving
// path timestamps every arrival), a cheap depth-ish accumulation, and —
// in the instrumented variants — the real gated call sites the serve
// layer uses (one instant per op, plus one span per 8 ops standing in for
// the per-batch events).

enum class Variant { kUngated, kOff, kOn };

const char* to_label(Variant v) {
  switch (v) {
    case Variant::kUngated: return "ungated";
    case Variant::kOff: return "tracing-off";
    case Variant::kOn: return "tracing-on";
  }
  return "?";
}

double run_micro_pass(Variant v, int ops) {
  ObsRegistry::set_enabled(v == Variant::kOn);
  std::uint64_t acc = 0;
  TraceClock::time_point prev = TraceClock::now();
  WallTimer timer;
  for (int i = 0; i < ops; ++i) {
    const TraceClock::time_point now = TraceClock::now();
    acc += static_cast<std::uint64_t>(i) ^ (acc >> 3);
    if (v != Variant::kUngated) {
      obs::instant(TraceStage::kAdmit, now, static_cast<std::uint64_t>(i), 0,
                   -1, static_cast<double>(acc & 0xff));
      if ((i & 7) == 0)
        obs::span(TraceStage::kBatchForm, prev, now, 0,
                  static_cast<std::uint64_t>(i >> 3), -1, 8.0);
    }
    if ((i & 7) == 0) prev = now;
  }
  const double wall = timer.seconds();
  ObsRegistry::set_enabled(false);
  benchmark::DoNotOptimize(acc);
  return static_cast<double>(ops) / wall;  // ops per second
}

struct MicroResult {
  Variant variant;
  double best_ops_per_s = 0;
};

std::vector<MicroResult> g_micro;

void run_micro() {
  // Interleave the variants' repeats so slow drift (thermal, competing
  // load) hits all three equally instead of biasing whichever ran last.
  for (Variant v : {Variant::kUngated, Variant::kOff, Variant::kOn})
    g_micro.push_back({v, 0});
  for (int r = 0; r < kRepeats; ++r)
    for (MicroResult& m : g_micro)
      m.best_ops_per_s =
          std::max(m.best_ops_per_s, run_micro_pass(m.variant, micro_ops()));
  ObsRegistry::global().clear();
}

// ---------------------------------------------------------------------------
// Serve loop: the CLI serve smoke's closed loop, tracing off vs on.

struct ServeResult {
  bool tracing = false;
  double wall_s = 0;
  double rps = 0;
  std::uint64_t completed = 0;
};

std::vector<ServeResult> g_serve;

std::vector<ServedModel> bench_models() {
  ServedModelOptions scale;
  scale.max_layers = 3;
  scale.channel_cap = 16;
  scale.spatial_cap = 28;
  std::vector<ServedModel> models;
  models.push_back(make_served_model("squeezenet", squeezenet_v10(), scale));
  models.push_back(make_served_model("resnet-18", resnet18(), scale));
  return models;
}

ServeResult run_serve(bool tracing) {
  const std::vector<ServedModel> models = bench_models();
  ServerOptions opts;
  opts.workers = 2;
  InferenceServer server(models, opts);
  server.start();

  ObsRegistry::set_enabled(tracing);
  WallTimer timer;
  std::vector<std::thread> threads;
  for (int c = 0; c < kServeClients; ++c) {
    threads.emplace_back([&, c] {
      const int per = serve_requests_per_client();
      for (int i = 0; i < per; ++i) {
        const ServedModel& m = models[static_cast<std::size_t>(c + i) %
                                      models.size()];
        const std::uint64_t seed =
            seed_base() + 7000ull * static_cast<std::uint64_t>(c) +
            static_cast<std::uint64_t>(i);
        (void)server
            .submit({m.name, make_request_input(m, static_cast<unsigned>(seed))})
            .get();
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall = timer.seconds();
  ObsRegistry::set_enabled(false);
  const StatsSnapshot s = server.stats();
  server.stop();
  ObsRegistry::global().clear();

  ServeResult r;
  r.tracing = tracing;
  r.wall_s = wall;
  r.completed = s.completed;
  r.rps = wall > 0 ? static_cast<double>(s.completed) / wall : 0;
  const std::uint64_t expect = static_cast<std::uint64_t>(kServeClients) *
                               static_cast<std::uint64_t>(
                                   serve_requests_per_client());
  CB_CHECK_MSG(s.completed == expect, "serve cell lost requests: "
                                          << s.completed << " of " << expect);
  return r;
}

void register_all() {
  benchmark::RegisterBenchmark("obs/trace_overhead", [](benchmark::State& st) {
    for (auto _ : st) {
      run_micro();
      g_serve.push_back(run_serve(/*tracing=*/false));
      g_serve.push_back(run_serve(/*tracing=*/true));
    }
  })->Iterations(1)->Unit(benchmark::kSecond);
}

double micro_ops_per_s(Variant v) {
  for (const MicroResult& m : g_micro)
    if (m.variant == v) return m.best_ops_per_s;
  return 0;
}

void print_summary() {
  std::printf("\n=== Tracing overhead: micro loop %d ops x best-of-%d, "
              "serve loop %d clients x %d requests ===\n",
              micro_ops(), kRepeats, kServeClients,
              serve_requests_per_client());

  Table micro({"variant", "Mops/s", "ns/op"});
  for (const MicroResult& m : g_micro)
    micro.add_row({to_label(m.variant), Table::fmt(m.best_ops_per_s / 1e6, 1),
                   Table::fmt(1e9 / m.best_ops_per_s, 2)});
  std::printf("%s\n", micro.to_string().c_str());

  const double ungated = micro_ops_per_s(Variant::kUngated);
  const double off = micro_ops_per_s(Variant::kOff);
  const double on = micro_ops_per_s(Variant::kOn);
  const double off_over_ungated = ungated > 0 ? off / ungated : 0;
  const double on_over_off = off > 0 ? on / off : 0;
  std::printf("tracing-off vs ungated: %.3fx (gate: within noise)\n"
              "tracing-on  vs off:     %.3fx (micro worst case: no app work "
              "to amortise the ring write)\n\n",
              off_over_ungated, on_over_off);

  Table serve({"tracing", "completed", "wall s", "req/s"});
  for (const ServeResult& r : g_serve)
    serve.add_row({r.tracing ? "on" : "off", std::to_string(r.completed),
                   Table::fmt(r.wall_s, 3), Table::fmt(r.rps, 1)});
  std::printf("%s\n", serve.to_string().c_str());

  double serve_off = 0, serve_on = 0;
  for (const ServeResult& r : g_serve)
    (r.tracing ? serve_on : serve_off) = r.rps;
  const double serve_on_over_off = serve_off > 0 ? serve_on / serve_off : 0;
  std::printf("serve throughput, tracing on vs off: %.3fx "
              "(gate floor 0.85; in practice within host noise)\n",
              serve_on_over_off);

  std::vector<std::string> micro_json;
  for (const MicroResult& m : g_micro)
    micro_json.push_back(JsonObject()
                             .add("variant", to_label(m.variant))
                             .add("ops_per_s", m.best_ops_per_s)
                             .to_string());
  std::vector<std::string> serve_json;
  for (const ServeResult& r : g_serve)
    serve_json.push_back(JsonObject()
                             .add("tracing", r.tracing)
                             .add("wall_s", r.wall_s)
                             .add("rps", r.rps)
                             .add("completed", r.completed)
                             .to_string());
  JsonObject out;
  out.add("bench", "trace_overhead")
      .add("smoke", smoke())
      .add("seed", seed_base())
      .add("micro_ops", micro_ops())
      .add("repeats", kRepeats)
      .add_raw("micro", json_array(micro_json))
      .add_raw("serve", json_array(serve_json))
      .add("tracing_off_over_ungated", off_over_ungated)
      .add("tracing_on_over_off", on_over_off)
      .add("serve_on_over_off", serve_on_over_off);
  write_bench_json("trace_overhead", out);
}

}  // namespace
}  // namespace convbound::bench

int main(int argc, char** argv) {
  convbound::bench::register_all();
  return convbound::bench::run_all(argc, argv,
                                   convbound::bench::print_summary);
}
