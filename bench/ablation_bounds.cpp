// Ablation/validation: the pebble game engine vs the analytic theory.
//
// For small direct-convolution and Winograd DAGs, play the red-blue pebble
// game under several fast-memory sizes and scheduling orders, and print the
// measured Q against (a) the paper's lower bounds and (b) the dataflow I/O
// predictions. Every measured execution must sit above the bound; the
// dataflow-ordered schedules must close most of the gap.
#include "bench_util.hpp"

#include "convbound/pebble/game.hpp"
#include "convbound/pebble/generators.hpp"

namespace convbound::bench {
namespace {

struct RowResult {
  std::string label;
  std::size_t S;
  std::uint64_t q_naive, q_tiled;
  double bound;
};
std::vector<RowResult> g_rows;

void register_direct() {
  ConvDagShape ds;
  ds.cin = 8;
  ds.hin = ds.win = 12;
  ds.cout = 8;
  for (std::size_t S : {128u, 256u, 512u, 1024u}) {
    benchmark::RegisterBenchmark(
        ("ablation_bounds/direct/S" + std::to_string(S)).c_str(),
        [ds, S](benchmark::State& st) {
          for (auto _ : st) {
            const auto naive =
                play_pebble_game(direct_conv_dag(ds, TileSpec{1, 1, 1}), S);
            // R = 9 -> (6, 6, 4) satisfies x*y = R*z.
            const auto tiled =
                play_pebble_game(direct_conv_dag(ds, TileSpec{6, 6, 4}), S);
            ConvShape s;
            s.cin = ds.cin;
            s.hin = ds.hin;
            s.win = ds.win;
            s.cout = ds.cout;
            g_rows.push_back(
                {"direct 12x12x8->8", S, naive.total(), tiled.total(),
                 direct_conv_lower_bound_leading(s,
                                                 static_cast<double>(S))});
          }
        })
        ->Iterations(1);
  }
}

void register_winograd() {
  WinogradDagShape ws;
  ws.cin = 4;
  ws.tiles_h = ws.tiles_w = 3;
  ws.cout = 4;
  for (std::size_t S : {256u, 512u, 1024u}) {
    benchmark::RegisterBenchmark(
        ("ablation_bounds/winograd/S" + std::to_string(S)).c_str(),
        [ws, S](benchmark::State& st) {
          for (auto _ : st) {
            const auto phased =
                play_pebble_game(winograd_dag(ws, WinogradOrder::kPhased), S);
            const auto fused =
                play_pebble_game(winograd_dag(ws, WinogradOrder::kFused), S);
            ConvShape s;
            s.cin = ws.cin;
            s.hin = ws.hin();
            s.win = ws.win();
            s.cout = ws.cout;
            g_rows.push_back(
                {"winograd F(2,3) 6x6 tiles", S, phased.total(),
                 fused.total(),
                 winograd_lower_bound_leading(s, ws.e,
                                              static_cast<double>(S)) /
                     8.0});  // leading form's constant is loose at toy scale
          }
        })
        ->Iterations(1);
  }
}

void print_summary() {
  std::printf("\n=== Bound validation: pebble-game Q vs analytic lower "
              "bounds ===\n");
  Table t({"DAG", "S", "Q naive/phased order", "Q dataflow order",
           "lower bound", "dataflow/bound"});
  for (const auto& r : g_rows) {
    t.add_row({r.label, std::to_string(r.S),
               Table::fmt_int(static_cast<long long>(r.q_naive)),
               Table::fmt_int(static_cast<long long>(r.q_tiled)),
               Table::fmt(r.bound, 0),
               Table::fmt(static_cast<double>(r.q_tiled) / r.bound, 2)});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\ninvariants: every Q >= bound; dataflow order <= naive "
              "order; the gap shrinks as S grows.\n");
}

}  // namespace
}  // namespace convbound::bench

int main(int argc, char** argv) {
  convbound::bench::register_direct();
  convbound::bench::register_winograd();
  return convbound::bench::run_all(argc, argv,
                                   convbound::bench::print_summary);
}
