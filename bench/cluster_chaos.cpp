// Cluster chaos + tenancy: the robustness scenario matrix.
//
// Three scenarios on the same heterogeneous fleet, each resolving every
// submitted future (zero silent loss is a gated invariant, not a hope):
//
//  1. overload-mixed: 2x the fleet queue capacity submitted as a mixed
//     tenant workload — "paid" (latency budget, quota weight 3) at ~0.6x
//     capacity and "free" (no budget, weight 1) at ~1.4x. Weighted-fair
//     admission sheds the overload onto the free class (kQuotaExceeded at
//     the front door) while EDF drains the budget-bearing paid requests
//     first; the gates pin paid p99 under its budget, paid expiries at
//     zero, and the rejections onto the free class.
//
//  2. device-loss: a saturating prefill, then a device is killed ~5 ms into
//     the drain. Its stranded groups re-enter the front queue and the
//     survivors absorb them through the Router's steal path — every request
//     still completes kOk.
//
//  3. hot-join (warm and cold): the fleet serves a fixed burst on two
//     devices, a third joins (kWarm: surviving engine; kCold: rebuilt and
//     re-warmed from scratch), and the same burst runs again. Per-phase
//     modelled rps comes from the *deltas* of per-device sim_seconds
//     (makespan semantics: burst size / busiest device's added simulated
//     seconds), so the gain ratio isolates what the join bought. The gate
//     demands gain > 1 for both revive modes, and the cold join must reach
//     the same zero-plan-miss steady state as a fleet start.
//
// The request-input RNG seed is fixed (override: CONVBOUND_BENCH_SEED) and
// recorded in BENCH_cluster_chaos.json. CONVBOUND_SERVE_SMOKE=1 shrinks
// shapes and request counts for CI smoke runs.
#include "bench_util.hpp"

#include <chrono>
#include <future>
#include <thread>

namespace convbound::bench {
namespace {

bool smoke() { return serve_smoke(); }
std::uint64_t seed_base() { return bench_seed(20260808ull); }

constexpr int kDeviceWorkers = 2;
// The paid budget's clock starts at submit, and the overload scenario
// prefills before start() for deterministic admission — so fleet warm time
// counts against it. Sanitizer builds (the TSan CI job smokes this bench)
// run warm ~10-20x slower; widen the budget there so the scenario still
// exercises paid completions instead of expiring the whole class.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define CONVBOUND_CHAOS_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define CONVBOUND_CHAOS_SANITIZED 1
#endif
#endif
/// Paid-class latency budget (seconds). Same at both scales so the gate's
/// absolute ceiling is scale-independent; EDF keeps the actual paid tail
/// one to two orders of magnitude below it.
#ifdef CONVBOUND_CHAOS_SANITIZED
constexpr double kPaidBudgetSeconds = 120.0;
#else
constexpr double kPaidBudgetSeconds = 4.0;
#endif

int overload_capacity() { return smoke() ? 48 : 160; }
int loss_requests() { return smoke() ? 60 : 180; }
int burst_requests() { return smoke() ? 36 : 120; }

// Same two cost-model corners as cluster_scaling: a compute-bound model the
// dense spec wins and a bandwidth-bound model the HBM spec wins, so chaos
// placement decisions stay heterogeneous.
ServedModel compute_model() {
  ConvShape s;
  s.cin = s.cout = 48;
  s.hin = s.win = smoke() ? 15 : 19;
  s.kh = s.kw = 5;
  s.stride = 2;
  s.pad = 2;
  s.validate();
  return make_served_model("compute", {{"c0", s}}, {});
}

ServedModel wide_model() {
  ConvShape s;
  s.cin = s.cout = 16;
  s.hin = s.win = smoke() ? 64 : 128;
  s.kh = s.kw = 1;
  s.pad = 0;
  s.validate();
  return make_served_model("wide", {{"w0", s}}, {});
}

DeviceConfig device_of(const MachineSpec& spec, int pending_cap) {
  DeviceConfig d;
  d.spec = spec;
  d.workers = kDeviceWorkers;
  d.max_pending_groups = pending_cap;
  return d;
}

ClusterOptions fleet_options(int pending_cap, std::size_t max_queue) {
  ClusterOptions opts;
  opts.devices = {
      device_of(MachineSpec::v100(), pending_cap),
      device_of(MachineSpec::bandwidth_optimized(), pending_cap),
      device_of(MachineSpec::compute_optimized(), pending_cap)};
  opts.max_queue = max_queue;
  opts.max_delay = std::chrono::microseconds(2000);
  opts.batch_policy.max_bucket = 4;
  return opts;
}

struct StatusCounts {
  std::uint64_t ok = 0, rejected = 0, quota = 0, expired = 0, shutdown = 0;
  std::uint64_t lost = 0;  ///< resolved to anything outside the above
  void count(ServeStatus s) {
    switch (s) {
      case ServeStatus::kOk: ++ok; return;
      case ServeStatus::kRejected: ++rejected; return;
      case ServeStatus::kQuotaExceeded: ++quota; return;
      case ServeStatus::kDeadlineExceeded: ++expired; return;
      case ServeStatus::kShutdown: ++shutdown; return;
      default: ++lost; return;
    }
  }
};

// ------------------------------------------------ 1. overload-mixed ----

struct OverloadResult {
  StatusCounts statuses;
  std::uint64_t paid_submitted = 0, free_submitted = 0;
  std::uint64_t paid_completed = 0, free_completed = 0;
  std::uint64_t paid_quota_rejected = 0, free_quota_rejected = 0;
  std::uint64_t paid_expired = 0, free_expired = 0;
  double paid_p50_ms = 0, paid_p99_ms = 0;
  double free_p50_ms = 0, free_p99_ms = 0;
};

OverloadResult run_overload() {
  std::vector<ServedModel> models;
  models.push_back(wide_model());

  const int capacity = overload_capacity();
  ClusterOptions opts =
      fleet_options(capacity, static_cast<std::size_t>(capacity));
  opts.admission_congestion = 0.5;
  // First class is the catch-all default; both tenants are named explicitly
  // so the order only decides who absorbs unknown names.
  opts.classes = {TenantClass{"paid", kPaidBudgetSeconds, 3.0},
                  TenantClass{"free", 0, 1.0}};
  ClusterServer cluster(models, opts);

  // 2x overload, prefilled in a fixed interleaving (3 paid per 10 submits)
  // so admission outcomes are a deterministic function of the sequence:
  // paid lands ~0.6x capacity, free ~1.4x.
  const std::uint64_t seed = seed_base();
  OverloadResult r;
  std::vector<std::future<InferResponse>> futures;
  for (int i = 0; i < 2 * capacity; ++i) {
    const ServedModel& m = models[0];
    InferRequest req{m.name, make_request_input(m, seed + i)};
    const bool paid = i % 10 < 3;
    req.tenant = paid ? "paid" : "free";
    ++(paid ? r.paid_submitted : r.free_submitted);
    futures.push_back(cluster.submit(std::move(req)));
  }
  cluster.start();
  for (auto& f : futures) r.statuses.count(f.get().status);

  const ClusterSnapshot s = cluster.stats();
  cluster.stop();
  const auto paid_it = s.fleet.classes.find("paid");
  const auto free_it = s.fleet.classes.find("free");
  CB_CHECK_MSG(paid_it != s.fleet.classes.end() &&
                   free_it != s.fleet.classes.end(),
               "overload run missing per-class stats");
  r.paid_completed = paid_it->second.completed;
  r.paid_quota_rejected = paid_it->second.quota_rejected;
  r.paid_expired = paid_it->second.expired;
  r.paid_p50_ms = paid_it->second.latency_p50 * 1e3;
  r.paid_p99_ms = paid_it->second.latency_p99 * 1e3;
  r.free_completed = free_it->second.completed;
  r.free_quota_rejected = free_it->second.quota_rejected;
  r.free_expired = free_it->second.expired;
  r.free_p50_ms = free_it->second.latency_p50 * 1e3;
  r.free_p99_ms = free_it->second.latency_p99 * 1e3;
  return r;
}

// -------------------------------------------------- 2. device-loss ----

struct LossResult {
  StatusCounts statuses;
  std::uint64_t requeued = 0, stolen = 0, completed = 0;
};

LossResult run_device_loss() {
  std::vector<ServedModel> models;
  models.push_back(compute_model());
  models.push_back(wide_model());

  const int n = loss_requests();
  ClusterOptions opts = fleet_options(n, static_cast<std::size_t>(n));
  ClusterServer cluster(models, opts);

  const std::uint64_t seed = seed_base() + 1000;
  std::vector<std::future<InferResponse>> futures;
  for (int i = 0; i < n; ++i) {
    const ServedModel& m = models[static_cast<std::size_t>(i) % models.size()];
    futures.push_back(
        cluster.submit({m.name, make_request_input(m, seed + i)}));
  }
  cluster.start();
  // Kill a device while the drain is hot. The exact number of stranded
  // groups depends on host timing; what is gated is that none of their
  // requests are lost.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  LossResult r;
  r.requeued = cluster.fail_device(0);
  for (auto& f : futures) r.statuses.count(f.get().status);

  const ClusterSnapshot s = cluster.stats();
  cluster.stop();
  r.stolen = s.stolen_groups;
  r.completed = s.fleet.completed;
  CB_CHECK_MSG(s.device_failures == 1, "expected exactly one failure");
  return r;
}

// ----------------------------------------- 3. hot-join (warm / cold) ----

struct JoinResult {
  std::string mode;
  StatusCounts statuses;
  double degraded_rps = 0;  ///< 2-device phase, makespan over sim deltas
  double joined_rps = 0;    ///< 3-device phase after the revive
  double rps_gain = 0;      ///< joined / degraded (gate: > 1)
  std::uint64_t plan_misses = 0;
};

std::vector<double> device_sim_seconds(const ClusterSnapshot& s) {
  std::vector<double> sim;
  for (const DeviceSnapshot& d : s.devices) sim.push_back(d.stats.sim_seconds);
  return sim;
}

double phase_modelled_rps(int completed, const std::vector<double>& before,
                          const std::vector<double>& after) {
  double busiest = 0;
  for (std::size_t i = 0; i < after.size(); ++i)
    busiest = std::max(busiest, after[i] - before[i]);
  return busiest > 0 ? completed / busiest : 0;
}

JoinResult run_hot_join(ReviveMode mode) {
  std::vector<ServedModel> models;
  models.push_back(compute_model());
  models.push_back(wide_model());

  const int n = burst_requests();
  ClusterOptions opts = fleet_options(n, static_cast<std::size_t>(2 * n));
  ClusterServer cluster(models, opts);
  cluster.start();

  JoinResult r;
  r.mode = mode == ReviveMode::kWarm ? "warm" : "cold";
  const std::uint64_t seed = seed_base() + 2000;
  const auto burst = [&](std::uint64_t phase_seed) {
    std::vector<std::future<InferResponse>> futures;
    for (int i = 0; i < n; ++i) {
      const ServedModel& m =
          models[static_cast<std::size_t>(i) % models.size()];
      futures.push_back(
          cluster.submit({m.name, make_request_input(m, phase_seed + i)}));
    }
    for (auto& f : futures) r.statuses.count(f.get().status);
  };

  // Degraded phase: the fleet loses its third device before any load, so
  // the two survivors carry the whole burst.
  cluster.fail_device(2);
  const std::vector<double> sim0 = device_sim_seconds(cluster.stats());
  burst(seed);
  const std::vector<double> sim1 = device_sim_seconds(cluster.stats());

  // Hot-join. The Router's virtual clock deliberately never drains, so the
  // joiner enters far behind the survivors and absorbs a catch-up transient
  // (it takes most groups until its clock levels — correct balancing, but a
  // one-device makespan). An unmeasured settle burst carries that
  // transient; the measured phase is the steady state the join bought.
  cluster.revive_device(2, mode);
  burst(seed + static_cast<std::uint64_t>(n));
  const std::vector<double> sim2 = device_sim_seconds(cluster.stats());
  burst(seed);
  const std::vector<double> sim3 = device_sim_seconds(cluster.stats());

  const ClusterSnapshot s = cluster.stats();
  cluster.stop();
  r.degraded_rps = phase_modelled_rps(n, sim0, sim1);
  r.joined_rps = phase_modelled_rps(n, sim2, sim3);
  r.rps_gain = r.degraded_rps > 0 ? r.joined_rps / r.degraded_rps : 0;
  for (const DeviceSnapshot& d : s.devices)
    r.plan_misses += d.stats.plan_misses_after_warm;
  return r;
}

// ----------------------------------------------------------- harness ----

OverloadResult g_overload;
LossResult g_loss;
std::vector<JoinResult> g_joins;

void register_all() {
  benchmark::RegisterBenchmark("cluster/chaos", [](benchmark::State& st) {
    for (auto _ : st) {
      g_overload = run_overload();
      g_loss = run_device_loss();
      g_joins.push_back(run_hot_join(ReviveMode::kWarm));
      g_joins.push_back(run_hot_join(ReviveMode::kCold));
    }
  })->Iterations(1)->Unit(benchmark::kSecond);
}

void print_summary() {
  std::printf("\n=== Cluster chaos: tenancy overload, device loss, hot-join "
              "(seed %llu) ===\n",
              static_cast<unsigned long long>(seed_base()));

  Table t({"scenario", "detail", "ok", "quota-rej", "expired",
           "p50 / p99 ms"});
  t.add_row({"overload-mixed", "paid (w3, budget)",
             std::to_string(g_overload.paid_completed), "0",
             std::to_string(g_overload.paid_expired),
             Table::fmt(g_overload.paid_p50_ms, 2) + " / " +
                 Table::fmt(g_overload.paid_p99_ms, 2)});
  t.add_row({"overload-mixed", "free (w1)",
             std::to_string(g_overload.free_completed),
             std::to_string(g_overload.free_quota_rejected),
             std::to_string(g_overload.free_expired),
             Table::fmt(g_overload.free_p50_ms, 2) + " / " +
                 Table::fmt(g_overload.free_p99_ms, 2)});
  t.add_row({"device-loss", "kill d0 @5ms",
             std::to_string(g_loss.statuses.ok), "-", "-",
             "requeued " + std::to_string(g_loss.requeued)});
  for (const JoinResult& j : g_joins)
    t.add_row({"hot-join", j.mode, std::to_string(j.statuses.ok), "-", "-",
               Table::fmt(j.degraded_rps, 0) + " -> " +
                   Table::fmt(j.joined_rps, 0) + " rps (" +
                   Table::fmt(j.rps_gain, 2) + "x)"});
  std::printf("%s", t.to_string().c_str());

  const std::uint64_t lost =
      g_overload.statuses.lost + g_loss.statuses.lost +
      (g_joins.empty()
           ? 0
           : g_joins[0].statuses.lost + g_joins[1].statuses.lost) +
      g_loss.statuses.rejected + g_loss.statuses.shutdown +
      g_loss.statuses.expired;
  std::uint64_t join_plan_misses = 0, join_not_ok = 0;
  for (const JoinResult& j : g_joins) {
    join_plan_misses += j.plan_misses;
    join_not_ok += j.statuses.rejected + j.statuses.quota +
                   j.statuses.expired + j.statuses.shutdown +
                   j.statuses.lost;
  }
  std::printf("\npaid p99 %.2f ms against its %.0f ms budget under 2x "
              "overload; %llu requests lost across every scenario\n",
              g_overload.paid_p99_ms, kPaidBudgetSeconds * 1e3,
              static_cast<unsigned long long>(lost));

  const JsonObject overload_json =
      JsonObject()
          .add("paid_submitted", g_overload.paid_submitted)
          .add("free_submitted", g_overload.free_submitted)
          .add("paid_completed", g_overload.paid_completed)
          .add("free_completed", g_overload.free_completed)
          .add("paid_quota_rejected", g_overload.paid_quota_rejected)
          .add("free_quota_rejected", g_overload.free_quota_rejected)
          .add("paid_expired", g_overload.paid_expired)
          .add("free_expired", g_overload.free_expired)
          .add("paid_p50_ms", g_overload.paid_p50_ms)
          .add("paid_p99_ms", g_overload.paid_p99_ms)
          .add("free_p50_ms", g_overload.free_p50_ms)
          .add("free_p99_ms", g_overload.free_p99_ms);
  const JsonObject loss_json =
      JsonObject()
          .add("requests", loss_requests())
          .add("ok", g_loss.statuses.ok)
          .add("requeued", g_loss.requeued)
          .add("stolen_groups", g_loss.stolen)
          .add("completed", g_loss.completed);
  std::vector<std::string> joins_json;
  for (const JoinResult& j : g_joins)
    joins_json.push_back(JsonObject()
                             .add("mode", j.mode)
                             .add("ok", j.statuses.ok)
                             .add("degraded_rps", j.degraded_rps)
                             .add("joined_rps", j.joined_rps)
                             .add("rps_gain", j.rps_gain)
                             .add("plan_misses", j.plan_misses)
                             .to_string());

  JsonObject out;
  out.add("bench", "cluster_chaos")
      .add("smoke", smoke())
      .add("seed", seed_base())
      .add("paid_budget_ms", kPaidBudgetSeconds * 1e3)
      .add_raw("overload", overload_json.to_string())
      .add_raw("device_loss", loss_json.to_string())
      .add_raw("hot_join", json_array(joins_json))
      // Gated metrics. chaos_lost_requests_total folds in every way a
      // request could silently vanish or wrongly degrade: unknown statuses
      // anywhere, plus any non-kOk outcome in the loss/join scenarios
      // (their loads are within capacity, so everything must serve).
      .add("chaos_lost_requests_total", lost + join_not_ok)
      .add("overload_paid_p99_ms", g_overload.paid_p99_ms)
      .add("overload_paid_expired", g_overload.paid_expired)
      .add("overload_paid_quota_rejected", g_overload.paid_quota_rejected)
      .add("overload_free_quota_rejected", g_overload.free_quota_rejected)
      .add("hotjoin_warm_rps_gain",
           g_joins.empty() ? 0.0 : g_joins[0].rps_gain)
      .add("hotjoin_cold_rps_gain",
           g_joins.empty() ? 0.0 : g_joins[1].rps_gain)
      .add("chaos_plan_misses_after_warm", join_plan_misses);
  write_bench_json("cluster_chaos", out);
}

}  // namespace
}  // namespace convbound::bench

int main(int argc, char** argv) {
  convbound::bench::register_all();
  return convbound::bench::run_all(argc, argv,
                                   convbound::bench::print_summary);
}
