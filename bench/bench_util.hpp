// Shared plumbing for the benchmark harness.
//
// Each bench binary registers one google-benchmark per experimental point
// (run exactly once — the simulator is deterministic, so repetition adds
// nothing), collects the results in a registry, and prints the paper-style
// summary table after benchmark::RunSpecifiedBenchmarks().
//
// Problem sizes are scaled down from the paper's (C_in 256 -> 64, image
// sizes capped at 112) so the whole harness executes real arithmetic in
// minutes on a CPU; EXPERIMENTS.md records the mapping. The *shapes* of the
// results (who wins, how speedups trend with H_in / mu / C_out) are the
// reproduction target, not absolute GFlops.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "convbound/convbound.hpp"

namespace convbound::bench {

/// Result sink shared between registered benchmarks and the summary
/// printer. Keyed by an experiment-specific label.
class Registry {
 public:
  void put(const std::string& key, double value) { values_[key] = value; }
  double get(const std::string& key) const {
    const auto it = values_.find(key);
    CB_CHECK_MSG(it != values_.end(), "missing bench result '" << key << "'");
    return it->second;
  }
  bool has(const std::string& key) const { return values_.count(key) > 0; }

  static Registry& instance() {
    static Registry r;
    return r;
  }

 private:
  std::map<std::string, double> values_;
};

/// Registers a single-iteration benchmark whose body runs `fn` once and
/// reports the returned stats as counters.
inline void register_point(const std::string& name,
                           std::function<LaunchStats()> fn) {
  benchmark::RegisterBenchmark(name.c_str(),
                               [fn = std::move(fn), name](benchmark::State& st) {
                                 LaunchStats stats;
                                 for (auto _ : st) stats = fn();
                                 st.counters["sim_ms"] = stats.sim_time * 1e3;
                                 st.counters["GFlops"] = stats.gflops();
                                 st.counters["io_MB"] =
                                     static_cast<double>(stats.bytes_total()) /
                                     1e6;
                                 Registry::instance().put(name + "/time",
                                                          stats.sim_time);
                                 Registry::instance().put(
                                     name + "/io",
                                     static_cast<double>(stats.bytes_total()));
                               })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

inline ConvShape make_shape(std::int64_t batch, std::int64_t cin,
                            std::int64_t hw, std::int64_t cout,
                            std::int64_t k, std::int64_t stride,
                            std::int64_t pad) {
  ConvShape s;
  s.batch = batch;
  s.cin = cin;
  s.hin = s.win = hw;
  s.cout = cout;
  s.kh = s.kw = k;
  s.stride = stride;
  s.pad = pad;
  s.validate();
  return s;
}

/// Standard bench main: run all registered benchmarks, then the summary.
inline int run_all(int argc, char** argv,
                   const std::function<void()>& print_summary) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}

}  // namespace convbound::bench
