// Shared plumbing for the benchmark harness.
//
// Each bench binary registers one google-benchmark per experimental point
// (run exactly once — the simulator is deterministic, so repetition adds
// nothing), collects the results in a registry, and prints the paper-style
// summary table after benchmark::RunSpecifiedBenchmarks().
//
// Problem sizes are scaled down from the paper's (C_in 256 -> 64, image
// sizes capped at 112) so the whole harness executes real arithmetic in
// minutes on a CPU; EXPERIMENTS.md records the mapping. The *shapes* of the
// results (who wins, how speedups trend with H_in / mu / C_out) are the
// reproduction target, not absolute GFlops.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "convbound/convbound.hpp"

namespace convbound::bench {

/// Minimal ordered JSON emitter for machine-readable BENCH_*.json files —
/// dependency-free, enough for flat objects, arrays and one nesting level.
class JsonObject {
 public:
  JsonObject& add(const std::string& key, double v) {
    return add_raw(key, fmt_number(v));
  }
  JsonObject& add(const std::string& key, int v) {
    return add_raw(key, std::to_string(v));
  }
  // Exact (doubles go through a 6-significant-digit formatter; seeds and
  // counters must round-trip).
  JsonObject& add(const std::string& key, std::uint64_t v) {
    return add_raw(key, std::to_string(v));
  }
  JsonObject& add(const std::string& key, bool v) {
    return add_raw(key, v ? "true" : "false");
  }
  JsonObject& add(const std::string& key, const std::string& v) {
    return add_raw(key, quote(v));
  }
  // Without this overload a string literal would convert to bool.
  JsonObject& add(const std::string& key, const char* v) {
    return add_raw(key, quote(v));
  }
  JsonObject& add(const std::string& key, const std::vector<double>& v) {
    std::string out = "[";
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i) out += ",";
      out += fmt_number(v[i]);
    }
    return add_raw(key, out + "]");
  }
  JsonObject& add(const std::string& key, const std::vector<int>& v) {
    std::string out = "[";
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i) out += ",";
      out += std::to_string(v[i]);
    }
    return add_raw(key, out + "]");
  }
  /// Pre-serialised value (a nested object or array of objects).
  JsonObject& add_raw(const std::string& key, const std::string& raw) {
    if (!fields_.empty()) fields_ += ",";
    fields_ += quote(key) + ":" + raw;
    return *this;
  }
  std::string to_string() const { return "{" + fields_ + "}"; }

  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out + "\"";
  }
  static std::string fmt_number(double v) {
    std::ostringstream os;
    os << v;
    return os.str();
  }

 private:
  std::string fields_;
};

/// CI smoke scale for the serving/cluster load generators.
inline bool serve_smoke() {
  return std::getenv("CONVBOUND_SERVE_SMOKE") != nullptr;
}

/// Request-input RNG seed for the serving/cluster benches: a per-bench
/// fixed default, overridable with CONVBOUND_BENCH_SEED, and recorded in
/// the bench JSON so CI regression comparisons reproduce bit-for-bit.
inline std::uint64_t bench_seed(std::uint64_t default_seed) {
  const char* s = std::getenv("CONVBOUND_BENCH_SEED");
  return s != nullptr ? std::strtoull(s, nullptr, 10) : default_seed;
}

/// Joins pre-serialised JSON values into an array.
inline std::string json_array(const std::vector<std::string>& items) {
  std::string out = "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += ",";
    out += items[i];
  }
  return out + "]";
}

/// Writes a BENCH_<name>.json trajectory file next to the working directory
/// (override the directory with CONVBOUND_BENCH_DIR).
inline void write_bench_json(const std::string& bench_name,
                             const JsonObject& obj) {
  const char* dir = std::getenv("CONVBOUND_BENCH_DIR");
  const std::string path =
      (dir != nullptr ? std::string(dir) + "/" : std::string()) + "BENCH_" +
      bench_name + ".json";
  std::ofstream out(path, std::ios::trunc);
  CB_CHECK_MSG(out.good(), "cannot write bench json '" << path << "'");
  out << obj.to_string() << "\n";
  std::printf("wrote %s\n", path.c_str());
}

/// Result sink shared between registered benchmarks and the summary
/// printer. Keyed by an experiment-specific label.
class Registry {
 public:
  void put(const std::string& key, double value) { values_[key] = value; }
  double get(const std::string& key) const {
    const auto it = values_.find(key);
    CB_CHECK_MSG(it != values_.end(), "missing bench result '" << key << "'");
    return it->second;
  }
  bool has(const std::string& key) const { return values_.count(key) > 0; }

  static Registry& instance() {
    static Registry r;
    return r;
  }

 private:
  std::map<std::string, double> values_;
};

/// Registers a single-iteration benchmark whose body runs `fn` once and
/// reports the returned stats as counters.
inline void register_point(const std::string& name,
                           std::function<LaunchStats()> fn) {
  benchmark::RegisterBenchmark(name.c_str(),
                               [fn = std::move(fn), name](benchmark::State& st) {
                                 LaunchStats stats;
                                 for (auto _ : st) stats = fn();
                                 st.counters["sim_ms"] = stats.sim_time * 1e3;
                                 st.counters["GFlops"] = stats.gflops();
                                 st.counters["io_MB"] =
                                     static_cast<double>(stats.bytes_total()) /
                                     1e6;
                                 Registry::instance().put(name + "/time",
                                                          stats.sim_time);
                                 Registry::instance().put(
                                     name + "/io",
                                     static_cast<double>(stats.bytes_total()));
                               })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

inline ConvShape make_shape(std::int64_t batch, std::int64_t cin,
                            std::int64_t hw, std::int64_t cout,
                            std::int64_t k, std::int64_t stride,
                            std::int64_t pad) {
  ConvShape s;
  s.batch = batch;
  s.cin = cin;
  s.hin = s.win = hw;
  s.cout = cout;
  s.kh = s.kw = k;
  s.stride = stride;
  s.pad = pad;
  s.validate();
  return s;
}

/// Standard bench main: run all registered benchmarks, then the summary.
inline int run_all(int argc, char** argv,
                   const std::function<void()>& print_summary) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}

}  // namespace convbound::bench
