// Cluster scaling: fleet modelled throughput vs device count, and
// bound-aware routing vs round-robin on a heterogeneous fleet.
//
// Two sweeps, both at saturating load (every request enqueued before the
// fleet starts, so groups always fill and the modelled numbers are
// reproducible run to run):
//
//  1. Homogeneous scaling: 1 -> 2 -> 4 identical V100 devices serving the
//     same prefilled workload. The fleet figure of merit is modelled
//     requests per second with makespan semantics (completed requests /
//     busiest device's simulated seconds); with full batches and a balanced
//     router it should scale near-linearly — the acceptance bar is >= 2.5x
//     from 1 to 4 devices.
//
//  2. Heterogeneous fleet: [dense, hbm, v100, titanx] — two synthetic
//     corner specs plus two paper GPUs — serving a workload mixing a
//     compute-bound model (5x5 stride-2, many channels; Winograd-ineligible
//     so its arithmetic intensity stays high) and a bandwidth-bound model
//     (1x1, huge image, few channels). The bound-aware Router routes each
//     model to the device type the Eq 20/22 + roofline predictions favour
//     and balances the spill; round-robin ignores the cost model. The
//     paper-shape claim: bound-aware > round-robin in fleet modelled rps.
//
// The request-input RNG seed is fixed (override: CONVBOUND_BENCH_SEED) and
// recorded in BENCH_cluster_scaling.json so CI regression comparisons are
// reproducible. CONVBOUND_SERVE_SMOKE=1 shrinks shapes and request counts
// for CI smoke runs.
#include "bench_util.hpp"

#include <future>

namespace convbound::bench {
namespace {

bool smoke() { return serve_smoke(); }
std::uint64_t seed_base() { return bench_seed(20260727ull); }

int num_requests() { return smoke() ? 48 : 160; }
constexpr int kDeviceWorkers = 2;

// Compute-bound corner: a 5x5 kernel keeps arithmetic intensity at
// 2 * cin * k^2 flops per output element, and stride 2 keeps Winograd
// (which would slash the flop count) out of the candidate set.
ServedModel compute_model() {
  ConvShape s;
  s.cin = s.cout = 48;
  s.hin = s.win = smoke() ? 15 : 19;
  s.kh = s.kw = 5;
  s.stride = 2;
  s.pad = 2;
  s.validate();
  return make_served_model("compute", {{"c0", s}}, {});
}

// Bandwidth-bound corner: 1x1 over a large image reuses almost nothing.
ServedModel wide_model() {
  ConvShape s;
  s.cin = s.cout = 16;
  s.hin = s.win = smoke() ? 64 : 128;
  s.kh = s.kw = 1;
  s.pad = 0;
  s.validate();
  return make_served_model("wide", {{"w0", s}}, {});
}

struct RunResult {
  std::string fleet;
  std::string policy;
  int devices = 0;
  double fleet_modelled_rps = 0;  ///< completed / busiest device sim-seconds
  /// Fleet wall p50/p99 from the bucket-exact merged latency histogram.
  double p50_ms = 0, p99_ms = 0;
  double mean_batch = 0;
  std::uint64_t completed = 0, stolen = 0, plan_misses = 0;
  std::vector<std::string> device_json;
};

std::vector<RunResult> g_runs;

DeviceConfig device_of(const MachineSpec& spec) {
  DeviceConfig d;
  d.spec = spec;
  d.workers = kDeviceWorkers;
  // Effectively unbounded pending caps: the caps exist to bound *wall*
  // latency per device, but the host drains every simulated device at the
  // same host speed, so under sustained saturation they would make
  // placement follow host availability instead of the policy under test.
  // This experiment compares placement policies on *modelled* makespan, so
  // admission control is opted out (it stays exercised by the unit tests
  // and the cluster CLI) — which also keeps every placement a
  // deterministic function of the request order, run to run.
  d.max_pending_groups = num_requests();
  return d;
}

RunResult run_fleet(const std::string& fleet_name,
                    const std::vector<MachineSpec>& specs,
                    RoutePolicy policy) {
  std::vector<ServedModel> models;
  models.push_back(compute_model());
  models.push_back(wide_model());

  ClusterOptions opts;
  for (const MachineSpec& s : specs) opts.devices.push_back(device_of(s));
  opts.policy = policy;
  opts.max_queue = static_cast<std::size_t>(num_requests());
  opts.max_delay = std::chrono::microseconds(2000);
  opts.batch_policy.max_bucket = 4;
  ClusterServer cluster(models, opts);

  // Saturating load: everything is queued before the fleet starts, so the
  // scheduler always finds full groups and the run is load-deterministic.
  const std::uint64_t seed = seed_base();
  std::vector<std::future<InferResponse>> futures;
  for (int i = 0; i < num_requests(); ++i) {
    const ServedModel& m = models[static_cast<std::size_t>(i) % models.size()];
    futures.push_back(
        cluster.submit({m.name, make_request_input(m, seed + i)}));
  }
  cluster.start();
  std::uint64_t failed = 0;
  for (auto& f : futures)
    if (f.get().status != ServeStatus::kOk) ++failed;
  CB_CHECK_MSG(failed == 0, failed << " requests failed in " << fleet_name);

  const ClusterSnapshot s = cluster.stats();
  cluster.stop();

  RunResult r;
  r.fleet = fleet_name;
  r.policy = to_string(policy);
  r.devices = static_cast<int>(specs.size());
  r.fleet_modelled_rps = s.fleet.modelled_rps;
  r.p50_ms = s.fleet.latency_p50 * 1e3;
  r.p99_ms = s.fleet.latency_p99 * 1e3;
  r.mean_batch = s.fleet.mean_batch_size;
  r.completed = s.fleet.completed;
  r.stolen = s.stolen_groups;
  for (const DeviceSnapshot& d : s.devices) {
    r.plan_misses += d.stats.plan_misses_after_warm;
    r.device_json.push_back(JsonObject()
                                .add("device", d.name)
                                .add("placements",
                                     static_cast<int>(d.placements))
                                .add("completed",
                                     static_cast<int>(d.stats.completed))
                                .add("sim_seconds", d.stats.sim_seconds)
                                .add("modelled_rps", d.stats.modelled_rps)
                                .to_string());
  }
  return r;
}

void register_all() {
  benchmark::RegisterBenchmark("cluster/scaling", [](benchmark::State& st) {
    for (auto _ : st) {
      for (int n : {1, 2, 4}) {
        std::vector<MachineSpec> specs(static_cast<std::size_t>(n),
                                       MachineSpec::v100());
        g_runs.push_back(run_fleet("homogeneous-" + std::to_string(n) +
                                       "x-v100",
                                   specs, RoutePolicy::kBoundAware));
      }
      const std::vector<MachineSpec> hetero = {
          MachineSpec::compute_optimized(), MachineSpec::bandwidth_optimized(),
          MachineSpec::v100(), MachineSpec::titan_x()};
      g_runs.push_back(
          run_fleet("heterogeneous", hetero, RoutePolicy::kBoundAware));
      g_runs.push_back(
          run_fleet("heterogeneous", hetero, RoutePolicy::kRoundRobin));
    }
  })->Iterations(1)->Unit(benchmark::kSecond);
}

const RunResult* find_run(const std::string& fleet, const std::string& policy) {
  for (const auto& r : g_runs)
    if (r.fleet == fleet && r.policy == policy) return &r;
  return nullptr;
}

void print_summary() {
  std::printf("\n=== Cluster scaling: fleet modelled throughput at "
              "saturating load (%d requests, %d workers/device, "
              "seed %llu) ===\n",
              num_requests(), kDeviceWorkers,
              static_cast<unsigned long long>(seed_base()));

  Table t({"fleet", "policy", "devices", "fleet modelled req/s",
           "p50 / p99 ms", "mean batch", "stolen groups"});
  for (const auto& r : g_runs)
    t.add_row({r.fleet, r.policy, std::to_string(r.devices),
               Table::fmt(r.fleet_modelled_rps, 0),
               Table::fmt(r.p50_ms, 2) + " / " + Table::fmt(r.p99_ms, 2),
               Table::fmt(r.mean_batch, 2), std::to_string(r.stolen)});
  std::printf("%s", t.to_string().c_str());

  const RunResult* one = find_run("homogeneous-1x-v100", "bound-aware");
  const RunResult* four = find_run("homogeneous-4x-v100", "bound-aware");
  const RunResult* bound = find_run("heterogeneous", "bound-aware");
  const RunResult* rr = find_run("heterogeneous", "round-robin");
  const double scaling =
      one != nullptr && four != nullptr && one->fleet_modelled_rps > 0
          ? four->fleet_modelled_rps / one->fleet_modelled_rps
          : 0;
  const double bound_over_rr =
      bound != nullptr && rr != nullptr && rr->fleet_modelled_rps > 0
          ? bound->fleet_modelled_rps / rr->fleet_modelled_rps
          : 0;
  std::printf("\n1 -> 4 homogeneous devices: %.2fx modelled fleet "
              "throughput (acceptance: >= 2.5x)\n",
              scaling);
  std::printf("heterogeneous fleet: bound-aware / round-robin = %.2fx "
              "modelled fleet throughput (acceptance: > 1x)\n",
              bound_over_rr);
  std::uint64_t plan_misses = 0;
  for (const auto& r : g_runs) plan_misses += r.plan_misses;
  std::printf("plan-cache misses after warm across every run: %llu\n",
              static_cast<unsigned long long>(plan_misses));

  std::vector<std::string> runs_json;
  for (const auto& r : g_runs)
    runs_json.push_back(
        JsonObject()
            .add("fleet", r.fleet)
            .add("policy", r.policy)
            .add("devices", r.devices)
            .add("fleet_modelled_rps", r.fleet_modelled_rps)
            .add("p50_ms", r.p50_ms)
            .add("p99_ms", r.p99_ms)
            .add("mean_batch", r.mean_batch)
            .add("completed", static_cast<int>(r.completed))
            .add("stolen_groups", static_cast<int>(r.stolen))
            .add("plan_misses_after_warm", static_cast<int>(r.plan_misses))
            .add_raw("per_device", json_array(r.device_json))
            .to_string());
  JsonObject out;
  out.add("bench", "cluster_scaling")
      .add("smoke", smoke())
      .add("seed", seed_base())
      .add("requests", num_requests())
      .add("workers_per_device", kDeviceWorkers)
      .add_raw("runs", json_array(runs_json))
      .add("scaling_modelled_rps_1_to_4", scaling)
      .add("hetero_bound_aware_over_round_robin", bound_over_rr)
      .add("hetero_bound_aware_modelled_rps",
           bound != nullptr ? bound->fleet_modelled_rps : 0)
      // Bucket-exact fleet tail on the heterogeneous bound-aware run — the
      // p99 gate metric (wall-valued, so its band in gates.json is wide).
      .add("hetero_bound_aware_p99_ms", bound != nullptr ? bound->p99_ms : 0)
      .add("plan_misses_after_warm_total", static_cast<int>(plan_misses));
  write_bench_json("cluster_scaling", out);
}

}  // namespace
}  // namespace convbound::bench

int main(int argc, char** argv) {
  convbound::bench::register_all();
  return convbound::bench::run_all(argc, argv,
                                   convbound::bench::print_summary);
}
