// Figure 13: sensitivity to the accelerator architecture — achieved GFlops
// of (a) our dataflow with the auto-tuning engine, (b) a TVM-like tuned
// configuration and (c) the vendor-library-like baseline, across three
// machine models (1080Ti / Titan X / gfx906) on the paper's four cases.
//
// Paper shapes use C_in = 512; scaled here to C_in = 128, C_out = 64
// (EXPERIMENTS.md records the mapping).
#include "bench_util.hpp"

#include "convbound/tune/tuners.hpp"

namespace convbound::bench {
namespace {

constexpr int kBudget = 40;

struct Case {
  std::string name;
  ConvShape shape;
  bool winograd;
};

struct Cell {
  double ours = 0, tvm = 0, vendor = 0;
};
std::map<std::string, Cell> g_cells;  // key: case|machine

std::vector<Case> cases() {
  return {
      {"direct 28x28 mu1", make_shape(1, 128, 28, 64, 3, 1, 1), false},
      {"direct 112x112 mu1", make_shape(1, 128, 112, 64, 3, 1, 1), false},
      {"direct 112x112 mu2", make_shape(1, 128, 112, 64, 3, 2, 1), false},
      {"winograd 112x112", make_shape(1, 128, 112, 64, 3, 1, 1), true},
  };
}

std::vector<MachineSpec> machines() {
  return {MachineSpec::gtx1080ti(), MachineSpec::titan_x(),
          MachineSpec::gfx906()};
}

double tuned_gflops(SimGpu& gpu, const Case& c, bool prune) {
  DomainOptions opts;
  opts.winograd = c.winograd;
  opts.prune_with_optimality = prune;
  const auto domain = SearchDomain::build(c.shape, gpu.spec(), opts);
  ConvMeasurer m(gpu, domain, 5);
  AteTuner::Params params;
  if (prune) {
    // Our engine starts from the template's analytic default schedule.
    params.seeds.push_back(c.winograd
                               ? default_winograd_config(c.shape, 2, gpu.spec())
                               : default_tiled_config(c.shape, gpu.spec()));
  }
  AteTuner tuner(5, params);
  const TuneResult r = tuner.run(m, kBudget);
  return m.gflops(r.best_seconds);
}

double vendor_gflops(SimGpu& gpu, const Case& c) {
  const ConvProblem p = make_problem(c.shape, 5);
  Tensor4<float> out(c.shape.batch, c.shape.cout, c.shape.hout(),
                     c.shape.wout());
  LaunchStats stats;
  if (c.winograd) {
    stats = winograd_phased_sim(gpu, p.input, p.weights, c.shape, 2, out);
  } else {
    stats = run_conv(gpu, ConvAlgorithm::kCudnnDirect, p.input, p.weights,
                     c.shape)
                .stats;
  }
  return static_cast<double>(c.shape.flops()) / stats.sim_time / 1e9;
}

void register_all() {
  for (const Case& c : cases()) {
    for (const MachineSpec& spec : machines()) {
      const std::string key = c.name + "|" + spec.name;
      benchmark::RegisterBenchmark(
          ("fig13/" + key).c_str(), [c, spec, key](benchmark::State& st) {
            for (auto _ : st) {
              SimGpu gpu(spec);
              Cell cell;
              cell.ours = tuned_gflops(gpu, c, /*prune=*/true);
              cell.tvm = tuned_gflops(gpu, c, /*prune=*/false);
              cell.vendor = vendor_gflops(gpu, c);
              g_cells[key] = cell;
            }
          })
          ->Iterations(1)
          ->Unit(benchmark::kSecond);
    }
  }
}

void print_summary() {
  std::printf("\n=== Figure 13: architecture sensitivity (GFlops) ===\n");
  for (const Case& c : cases()) {
    std::printf("\n--- %s ---\n", c.name.c_str());
    Table t({"machine", "ours (ATE)", "TVM-like", "vendor-like",
             "ours/vendor", "ours/TVM"});
    for (const MachineSpec& spec : machines()) {
      const Cell& cell = g_cells[c.name + "|" + spec.name];
      t.add_row({spec.name, Table::fmt(cell.ours, 0),
                 Table::fmt(cell.tvm, 0), Table::fmt(cell.vendor, 0),
                 Table::fmt(cell.ours / cell.vendor, 2),
                 Table::fmt(cell.ours / cell.tvm, 2)});
    }
    std::printf("%s", t.to_string().c_str());
  }
  std::printf("\npaper shape to check: ours >= TVM-like >= vendor-like on "
              "every architecture; the ordering is consistent across "
              "machines (portability of the dataflow).\n");
}

}  // namespace
}  // namespace convbound::bench

int main(int argc, char** argv) {
  convbound::bench::register_all();
  return convbound::bench::run_all(argc, argv,
                                   convbound::bench::print_summary);
}
