// Figure 10: batched direct convolution — speedup of the dataflow over the
// cuDNN-like baseline as batch size grows, for three input sizes.
//
// Paper: H_in in {14, 56, 112}, batch in {32, 64, 128}, C_out = 128,
// C_in = 256, 3x3, mu = 1, 1080Ti.
// Scaled: C_in = 64, C_out = 32, batch in {8, 16, 32}.
#include "bench_util.hpp"

namespace convbound::bench {
namespace {

const std::vector<std::int64_t> kHin = {14, 56, 112};
const std::vector<std::int64_t> kBatch = {8, 16, 32};

std::string key(std::int64_t hin, std::int64_t batch, const char* impl) {
  return "fig10/hin" + std::to_string(hin) + "/b" + std::to_string(batch) +
         "/" + impl;
}

void register_all() {
  for (std::int64_t hin : kHin) {
    for (std::int64_t batch : kBatch) {
      const ConvShape s = make_shape(batch, 64, hin, 32, 3, 1, 1);
      register_point(key(hin, batch, "ours"), [s] {
        SimGpu gpu(MachineSpec::gtx1080ti());
        const ConvProblem p = make_problem(s, 1);
        Tensor4<float> out(s.batch, s.cout, s.hout(), s.wout());
        const ConvConfig cfg = default_tiled_config(s, gpu.spec());
        return direct_tiled_sim(gpu, p.input, p.weights, s, cfg, out);
      });
      register_point(key(hin, batch, "cudnn"), [s] {
        SimGpu gpu(MachineSpec::gtx1080ti());
        const ConvProblem p = make_problem(s, 1);
        return run_conv(gpu, ConvAlgorithm::kCudnnDirect, p.input, p.weights,
                        s)
            .stats;
      });
    }
  }
}

void print_summary() {
  auto& reg = Registry::instance();
  std::printf("\n=== Figure 10: batched direct convolution, speedup over "
              "cuDNN-like baseline ===\n");
  Table t({"Hin \\ batch", "8", "16", "32"});
  for (std::int64_t hin : kHin) {
    std::vector<std::string> row{std::to_string(hin)};
    for (std::int64_t batch : kBatch) {
      const double ours = reg.get(key(hin, batch, "ours") + "/time");
      const double base = reg.get(key(hin, batch, "cudnn") + "/time");
      row.push_back(Table::fmt(base / ours, 2));
    }
    t.add_row(std::move(row));
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\npaper shape to check: speedup grows (or holds) with batch "
              "size at every H_in, as in the paper's three panels.\n");
}

}  // namespace
}  // namespace convbound::bench

int main(int argc, char** argv) {
  convbound::bench::register_all();
  return convbound::bench::run_all(argc, argv,
                                   convbound::bench::print_summary);
}
