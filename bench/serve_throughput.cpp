// Serving throughput: open-loop load generator sweeping offered load x
// batching policy over (scaled-down) zoo models.
//
// For each (offered rps, policy) cell a fresh server is started, `kRequests`
// requests are injected at fixed inter-arrival times, and the run reports
// achieved wall throughput, the modelled-accelerator throughput (requests
// per simulated GPU second — the machine-model figure of merit), and wall
// latency percentiles. Policies: "batched" (bound-guided bucket per model)
// vs "batch1" (every request its own batch — the unbatched baseline).
//
// The paper-shape claim: at saturating offered load, micro-batching serves
// more requests/sec than batch-size-1 at the same load, because batches
// amortise per-launch overhead and fill the machine's waves; at low load
// batching degrades gracefully to single-request groups (max-delay window).
// Results land in BENCH_serve_throughput.json.
//
// CONVBOUND_SERVE_SMOKE=1 shrinks the sweep for CI smoke runs.
#include "bench_util.hpp"

#include <future>
#include <thread>

#include "convbound/util/timer.hpp"

namespace convbound::bench {
namespace {

bool smoke() { return serve_smoke(); }
std::uint64_t seed_base() { return bench_seed(50000ull); }

constexpr int kWorkers = 2;

std::vector<double> offered_loads() {
  return smoke() ? std::vector<double>{400, 1600}
                 : std::vector<double>{100, 400, 1600};
}
int num_requests() { return smoke() ? 24 : 96; }

std::vector<ServedModel> bench_models() {
  ServedModelOptions scale;
  scale.max_layers = 3;
  scale.channel_cap = 16;
  scale.spatial_cap = 28;
  std::vector<ServedModel> models;
  models.push_back(make_served_model("squeezenet", squeezenet_v10(), scale));
  models.push_back(make_served_model("resnet-18", resnet18(), scale));
  return models;
}

struct RunResult {
  std::string policy;
  double offered_rps = 0;
  double achieved_rps = 0;   ///< completed / wall (this host)
  double modelled_rps = 0;   ///< completed / simulated accelerator seconds
  double p50_ms = 0, p95_ms = 0, p99_ms = 0;
  double mean_batch = 0;
  std::uint64_t completed = 0, rejected = 0, batches = 0;
  std::uint64_t plan_misses = 0;
};

std::vector<RunResult> g_runs;
std::map<std::string, std::int64_t> g_buckets;  // model -> bound-guided bucket

RunResult run_load(const std::vector<ServedModel>& models,
                   const std::string& policy, std::int64_t force_bucket,
                   double offered_rps) {
  ServerOptions opts;
  opts.workers = kWorkers;
  opts.replicas = kWorkers;  // all workers can run same-model batches
  // Window sized so groups fill from the backlog once the host saturates;
  // at light load it is the latency price of batching (visible in p50).
  opts.max_delay = std::chrono::microseconds(4000);
  opts.force_bucket = force_bucket;
  // Bucket 4: at these request sizes the amortisation curve has flattened
  // by 4 (see the bucket table) and partial-group padding stays small.
  opts.policy.max_bucket = 4;
  InferenceServer server(models, opts);
  server.start();
  if (force_bucket == 0)
    for (const auto& m : models) g_buckets[m.name] = server.bucket_of(m.name);

  const int n = num_requests();
  const std::uint64_t seed = seed_base();
  std::vector<InferRequest> requests;
  requests.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const ServedModel& m = models[static_cast<std::size_t>(i) % models.size()];
    requests.push_back({m.name, make_request_input(m, seed + i)});
  }

  // Open loop: fixed inter-arrival injection, regardless of completions.
  std::vector<std::future<InferResponse>> futures;
  futures.reserve(requests.size());
  const auto t0 = ServeClock::now();
  const auto interarrival = std::chrono::duration_cast<ServeClock::duration>(
      std::chrono::duration<double>(1.0 / offered_rps));
  for (int i = 0; i < n; ++i) {
    std::this_thread::sleep_until(t0 + i * interarrival);
    futures.push_back(server.submit(std::move(requests[static_cast<std::size_t>(i)])));
  }
  for (auto& f : futures) (void)f.get();
  const double wall =
      std::chrono::duration<double>(ServeClock::now() - t0).count();

  const StatsSnapshot s = server.stats();
  server.stop();
  RunResult r;
  r.policy = policy;
  r.offered_rps = offered_rps;
  r.completed = s.completed;
  r.rejected = s.rejected;
  r.batches = s.batches;
  r.achieved_rps = static_cast<double>(s.completed) / wall;
  r.modelled_rps = s.modelled_rps;
  r.p50_ms = s.latency_p50 * 1e3;
  r.p95_ms = s.latency_p95 * 1e3;
  r.p99_ms = s.latency_p99 * 1e3;
  r.mean_batch = s.mean_batch_size;
  r.plan_misses = s.plan_misses_after_warm;
  return r;
}

void register_all() {
  benchmark::RegisterBenchmark("serve/throughput", [](benchmark::State& st) {
    for (auto _ : st) {
      const auto models = bench_models();
      for (double load : offered_loads()) {
        g_runs.push_back(run_load(models, "batch1", 1, load));
        g_runs.push_back(run_load(models, "batched", 0, load));
      }
    }
  })->Iterations(1)->Unit(benchmark::kSecond);
}

const RunResult* find_run(const std::string& policy, double load) {
  for (const auto& r : g_runs)
    if (r.policy == policy && r.offered_rps == load) return &r;
  return nullptr;
}

void print_summary() {
  std::printf("\n=== Serving throughput: offered load x batching policy "
              "(%d requests per cell, %d workers, V100 model) ===\n",
              num_requests(), kWorkers);
  std::string buckets = "bound-guided buckets:";
  for (const auto& [model, b] : g_buckets)
    buckets += " " + model + "=" + std::to_string(b);
  std::printf("%s\n", buckets.c_str());

  Table t({"offered req/s", "policy", "achieved req/s", "modelled req/s",
           "p50 ms", "p99 ms", "mean batch", "rejected"});
  for (const auto& r : g_runs) {
    t.add_row({Table::fmt(r.offered_rps, 0), r.policy,
               Table::fmt(r.achieved_rps, 1), Table::fmt(r.modelled_rps, 0),
               Table::fmt(r.p50_ms, 2), Table::fmt(r.p99_ms, 2),
               Table::fmt(r.mean_batch, 2), std::to_string(r.rejected)});
  }
  std::printf("%s", t.to_string().c_str());

  const double peak = offered_loads().back();
  const RunResult* batched = find_run("batched", peak);
  const RunResult* batch1 = find_run("batch1", peak);
  double modelled_ratio = 0, wall_ratio = 0;
  if (batched != nullptr && batch1 != nullptr &&
      batch1->modelled_rps > 0 && batch1->achieved_rps > 0) {
    modelled_ratio = batched->modelled_rps / batch1->modelled_rps;
    wall_ratio = batched->achieved_rps / batch1->achieved_rps;
    std::printf("\nat %0.f req/s offered: batched vs batch1 = %.2fx modelled "
                "throughput, %.2fx wall (p99 %.2f vs %.2f ms)\n",
                peak, modelled_ratio, wall_ratio, batched->p99_ms,
                batch1->p99_ms);
  }
  std::printf("paper shape to check: batched >= batch1 in modelled req/s at "
              "the saturating load, converging to ~1x at the lightest "
              "load.\n");

  std::vector<std::string> runs_json;
  for (const auto& r : g_runs) {
    runs_json.push_back(
        JsonObject()
            .add("policy", r.policy)
            .add("offered_rps", r.offered_rps)
            .add("achieved_rps", r.achieved_rps)
            .add("modelled_rps", r.modelled_rps)
            .add("p50_ms", r.p50_ms)
            .add("p95_ms", r.p95_ms)
            .add("p99_ms", r.p99_ms)
            .add("mean_batch", r.mean_batch)
            .add("completed", static_cast<int>(r.completed))
            .add("rejected", static_cast<int>(r.rejected))
            .add("batches", static_cast<int>(r.batches))
            .add("plan_misses_after_warm", static_cast<int>(r.plan_misses))
            .to_string());
  }
  std::vector<std::string> bucket_json;
  for (const auto& [model, b] : g_buckets)
    bucket_json.push_back(JsonObject()
                              .add("model", model)
                              .add("bucket", static_cast<int>(b))
                              .to_string());
  double batched_modelled_rps_at_peak = 0;
  if (batched != nullptr) batched_modelled_rps_at_peak = batched->modelled_rps;
  // Histogram-derived (bucket-exact) wall p99 at the saturating load: the
  // tail-latency gate metric (wide band in gates.json — wall tails on a
  // shared runner are noisy; the gate catches the 2x-class regressions the
  // old weighted-percentile merge could hide).
  double batched_p99_ms_at_peak = 0;
  if (batched != nullptr) batched_p99_ms_at_peak = batched->p99_ms;
  JsonObject out;
  out.add("bench", "serve_throughput")
      .add("smoke", smoke())
      .add("seed", seed_base())
      .add("requests_per_cell", num_requests())
      .add("workers", kWorkers)
      .add("batched_modelled_rps_at_peak", batched_modelled_rps_at_peak)
      .add("batched_p99_ms_at_peak", batched_p99_ms_at_peak)
      .add_raw("bound_guided_buckets", json_array(bucket_json))
      .add_raw("runs", json_array(runs_json))
      .add("batched_vs_batch1_modelled_ratio_at_peak", modelled_ratio)
      .add("batched_vs_batch1_wall_ratio_at_peak", wall_ratio);
  write_bench_json("serve_throughput", out);
}

}  // namespace
}  // namespace convbound::bench

int main(int argc, char** argv) {
  convbound::bench::register_all();
  return convbound::bench::run_all(argc, argv,
                                   convbound::bench::print_summary);
}
