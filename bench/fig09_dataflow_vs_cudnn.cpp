// Figure 9: relative speedup of the I/O-optimal dataflows over the
// cuDNN-like baseline, on the 1080Ti machine model.
//
// Paper grid: H_in = W_in in {14, 56, 112, 196, 224}, C_out in
// {128, 256, 512, 1024}, C_in = 256, 3x3 kernels; panels for direct
// convolution at mu in {1, 2, 4} and for Winograd.
// Scaled grid here: H_in in {14, 28, 56, 112}, C_out in {32, 64, 128, 256},
// C_in = 64 (see EXPERIMENTS.md); the comparison structure is identical.
//
// Every point goes through the plan layer: the Planner emits per-algorithm
// plans (the baseline's best-of-direct resolution included) and a shared
// Workspace/Executor runs them, so the bench exercises the same planning
// path as the API and model inference, and the output arena is reused
// across the whole grid. e is pinned to 2 to match the paper's
// F(2x2, 3x3) Winograd panels.
#include "bench_util.hpp"

namespace convbound::bench {
namespace {

const std::vector<std::int64_t> kHin = {14, 28, 56, 112};
const std::vector<std::int64_t> kCout = {32, 64, 128, 256};
constexpr std::int64_t kCin = 64;

ConvExecutor& executor() {
  static Workspace ws;
  static ConvExecutor exec(ws);
  return exec;
}

LaunchStats run_point(const ConvShape& s, ConvAlgorithm algo) {
  SimGpu gpu(MachineSpec::gtx1080ti());
  Planner planner;  // plan_algorithm is not memoised; nothing to share
  PlannerOptions opts;
  opts.force_e = 2;  // the paper's F(2x2, 3x3) panels
  const ConvPlan plan = planner.plan_algorithm(gpu, s, algo, opts);
  const ConvProblem p = make_problem(s, 1);
  return executor().execute(gpu, plan, p.input, p.weights).stats;
}

std::string key(const char* panel, std::int64_t hin, std::int64_t cout,
                const char* impl) {
  return std::string("fig09/") + panel + "/hin" + std::to_string(hin) +
         "/cout" + std::to_string(cout) + "/" + impl;
}

void register_direct_panel(std::int64_t mu) {
  const std::string panel = "mu" + std::to_string(mu);
  for (std::int64_t cout : kCout) {
    for (std::int64_t hin : kHin) {
      const ConvShape s = make_shape(1, kCin, hin, cout, 3, mu, 1);
      register_point(key(panel.c_str(), hin, cout, "ours"), [s] {
        return run_point(s, ConvAlgorithm::kDirectTiled);
      });
      register_point(key(panel.c_str(), hin, cout, "cudnn"), [s] {
        return run_point(s, ConvAlgorithm::kCudnnDirect);
      });
    }
  }
}

void register_winograd_panel() {
  for (std::int64_t cout : kCout) {
    for (std::int64_t hin : kHin) {
      const ConvShape s = make_shape(1, kCin, hin, cout, 3, 1, 1);
      register_point(key("wino", hin, cout, "ours"), [s] {
        return run_point(s, ConvAlgorithm::kWinogradFused);
      });
      register_point(key("wino", hin, cout, "cudnn"), [s] {
        return run_point(s, ConvAlgorithm::kWinogradPhased);
      });
    }
  }
}

void print_summary() {
  auto& reg = Registry::instance();
  double product = 1;
  int n = 0;
  for (const char* panel : {"mu1", "mu2", "mu4", "wino"}) {
    std::printf("\n=== Figure 9 panel: %s (speedup of ours over cuDNN-like "
                "baseline) ===\n",
                panel);
    Table t({"Cout \\ Hin", "14", "28", "56", "112"});
    for (std::int64_t cout : kCout) {
      std::vector<std::string> row{std::to_string(cout)};
      for (std::int64_t hin : kHin) {
        const double ours = reg.get(key(panel, hin, cout, "ours") + "/time");
        const double base = reg.get(key(panel, hin, cout, "cudnn") + "/time");
        row.push_back(Table::fmt(base / ours, 2));
        product *= base / ours;
        ++n;
      }
      t.add_row(std::move(row));
    }
    std::printf("%s", t.to_string().c_str());
  }
  std::printf("\ngeometric-mean speedup across the grid: %.2fx "
              "(paper: 3.32x average on the unscaled grid)\n",
              std::pow(product, 1.0 / n));
}

}  // namespace
}  // namespace convbound::bench

int main(int argc, char** argv) {
  using namespace convbound::bench;
  register_direct_panel(1);
  register_direct_panel(2);
  register_direct_panel(4);
  register_winograd_panel();
  return run_all(argc, argv, print_summary);
}
