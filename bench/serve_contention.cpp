// Producer-contention bench for the serving front door: submit-path
// throughput of the sharded ingest (ShardedRequestQueue +
// StripedServerStats) vs the pre-shard single-queue design, swept over
// producer thread counts x shard counts.
//
// The baseline is a bench-local replica of the seed front door, kept
// faithful to the code this PR replaced: one mutex around a std::deque,
// an O(depth) most-urgent scan per wait_front, an O(depth) gather + sort
// per collect, a submit path that locks twice (depth() for stats, then
// push), and ONE ServerStats mutex shared by every producer and the
// collector. The sharded side is the real production path: facade
// admission on relaxed atomics, lock-striped shard insert, per-shard
// stats stripes, ordered-map EDF store (O(log n) insert, O(1) front).
//
// Each cell pushes the same fixed number of requests (8 models,
// round-robin per producer, no deadlines so EDF degrades to FIFO and
// expiry never fires) through P producer threads against one collector
// draining batches of up to 16; producers retry on kFull, so every
// request is eventually admitted and throughput = total / submit-phase
// wall. On a multi-core host the win is lock-striping; on a single core
// it is the removed work per operation (the O(depth) scans, the
// collect-time sort, the double-lock submit, the single stats mutex) —
// both are real front-door costs, so the ratio gates either way.
//
// The gate metric is submit_throughput_scaling_16p: sharded (16 shards)
// over single-queue baseline at 16 producers, same machine, same cell
// size. Results land in BENCH_serve_contention.json;
// CONVBOUND_SERVE_SMOKE=1 shrinks the sweep for CI.
#include "bench_util.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "convbound/serve/sharded_queue.hpp"
#include "convbound/serve/stats.hpp"
#include "convbound/util/table.hpp"
#include "convbound/util/timer.hpp"

namespace convbound::bench {
namespace {

bool smoke() { return serve_smoke(); }

constexpr std::size_t kBatch = 16;
constexpr int kNumModels = 8;

// The cell must push well past capacity so producers hit backpressure and
// the submit rate is gated by the collector's drain rate — that is where
// the baseline pays its O(depth) scans and collect-time sort. A cell that
// fits inside capacity never blocks and measures only the (cheap, O(1))
// push itself, which flattens the ratio to ~1x. Capacity is the same in
// BOTH modes for the same reason: the baseline's per-batch cost is
// O(capacity) once the queue backs up, and shrinking it for smoke would
// shrink exactly the cost being measured.
std::size_t capacity() { return 8192; }
int ops_per_cell() { return smoke() ? 24000 : 48000; }
std::vector<int> producer_counts() {
  return smoke() ? std::vector<int>{1, 8, 16}
                 : std::vector<int>{1, 2, 4, 8, 16, 32};
}
std::vector<int> shard_counts() {
  return smoke() ? std::vector<int>{16} : std::vector<int>{1, 4, 16};
}

std::string model_name(int i) { return "model-" + std::to_string(i % kNumModels); }

PendingRequest make_pending(int i) {
  PendingRequest p;
  p.request.model = model_name(i);
  p.enqueued = ServeClock::now();
  return p;
}

// ---------------------------------------------------------------------------
// Baseline: faithful replica of the seed's single-queue front door.
// Deliberately NOT the current RequestQueue — the point is to measure the
// design this PR replaced: deque storage, O(n) urgency scans, sort-at-
// collect, and no facade hooks.
class LegacyQueue {
 public:
  explicit LegacyQueue(std::size_t capacity) : capacity_(capacity) {}

  // Seed-style submit recorded stats from a separate depth() read — the
  // double-lock the sharded path (and satellite 1) removed. Kept split
  // into two locked calls on purpose.
  std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  bool push(PendingRequest&& p) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(p));
    }
    cv_.notify_all();
    return true;
  }

  bool wait_front(std::string* model) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    // O(depth) most-urgent scan, as in the seed's most_urgent_locked().
    const PendingRequest* best = &items_.front();
    for (const PendingRequest& p : items_) {
      if (p.effective_deadline() < best->effective_deadline() ||
          (p.effective_deadline() == best->effective_deadline() &&
           p.enqueued < best->enqueued))
        best = &p;
    }
    *model = best->request.model;
    return true;
  }

  std::vector<PendingRequest> collect(const std::string& model,
                                      std::size_t max_n) {
    std::unique_lock<std::mutex> lock(mu_);
    // O(depth) index gather, then a sort by urgency — the seed's
    // collect-time ordering cost the ordered-map store eliminated.
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < items_.size(); ++i)
      if (items_[i].request.model == model) idx.push_back(i);
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      const auto da = items_[a].effective_deadline();
      const auto db = items_[b].effective_deadline();
      if (da != db) return da < db;
      return items_[a].enqueued < items_[b].enqueued;
    });
    if (idx.size() > max_n) idx.resize(max_n);
    std::vector<PendingRequest> out;
    out.reserve(idx.size());
    for (std::size_t i : idx) out.push_back(std::move(items_[i]));
    std::sort(idx.rbegin(), idx.rend());
    for (std::size_t i : idx)
      items_.erase(items_.begin() + static_cast<std::ptrdiff_t>(i));
    return out;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<PendingRequest> items_;
  const std::size_t capacity_;
  bool closed_ = false;
};

struct CellResult {
  std::string impl;  ///< "single-queue" or "sharded"
  int shards = 0;    ///< 0 for the baseline
  int producers = 0;
  double submit_rps = 0;    ///< admitted pushes / submit-phase wall
  double submit_wall_s = 0;
  double total_wall_s = 0;  ///< through the last collected batch
  std::uint64_t collected = 0;
  std::uint64_t batches = 0;
};

std::vector<CellResult> g_cells;

void complete_batch(std::vector<PendingRequest>& chunk, ServerStats& sink,
                    std::uint64_t* collected, std::uint64_t* batches) {
  if (chunk.empty()) return;
  std::vector<double> latencies;
  latencies.reserve(chunk.size());
  const auto now = ServeClock::now();
  for (PendingRequest& p : chunk) {
    latencies.push_back(
        std::chrono::duration<double>(now - p.enqueued).count());
    InferResponse resp;
    resp.status = ServeStatus::kOk;
    p.promise.set_value(std::move(resp));
  }
  sink.record_batch(chunk.size(), 0.0, latencies);
  *collected += chunk.size();
  ++*batches;
}

CellResult run_single_queue(int producers) {
  LegacyQueue q(capacity());
  ServerStats stats;  // ONE stats mutex for producers and the collector
  stats.mark_start();
  const int total = ops_per_cell();
  const int per = total / producers;
  const int actual = per * producers;

  std::uint64_t collected = 0, batches = 0;
  std::thread collector([&] {
    std::string model;
    while (q.wait_front(&model)) {
      std::vector<PendingRequest> chunk = q.collect(model, kBatch);
      complete_batch(chunk, stats, &collected, &batches);
    }
  });

  WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(producers));
  for (int t = 0; t < producers; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < per; ++i) {
        PendingRequest p = make_pending(t * per + i);
        while (!q.push(std::move(p))) std::this_thread::yield();
        // Seed submit path: depth() takes the queue lock a second time
        // just to feed the stats record.
        stats.record_submitted(q.depth());
      }
    });
  }
  for (auto& t : threads) t.join();
  const double submit_wall = timer.seconds();
  q.close();
  collector.join();
  const double total_wall = timer.seconds();

  CellResult r;
  r.impl = "single-queue";
  r.producers = producers;
  r.submit_wall_s = submit_wall;
  r.total_wall_s = total_wall;
  r.submit_rps = static_cast<double>(actual) / submit_wall;
  r.collected = collected;
  r.batches = batches;
  CB_CHECK_MSG(collected == static_cast<std::uint64_t>(actual),
               "single-queue cell lost requests: " << collected << " of "
                                                   << actual);
  return r;
}

CellResult run_sharded(int producers, int shards) {
  ShardedRequestQueue q(capacity(), static_cast<std::size_t>(shards));
  StripedServerStats stats(static_cast<std::size_t>(shards));
  stats.mark_start();
  const int total = ops_per_cell();
  const int per = total / producers;
  const int actual = per * producers;

  std::uint64_t collected = 0, batches = 0;
  std::thread collector([&] {
    std::string model;
    ServeTimePoint enq;
    while (q.wait_front(&model, &enq)) {
      // min() deadline = gather what is queued now, without re-waiting
      // for a full group (wait_front already proved the model has work).
      std::vector<PendingRequest> chunk =
          q.collect(model, kBatch, ServeTimePoint::min());
      complete_batch(chunk, stats.exec_stripe(), &collected, &batches);
    }
  });

  WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(producers));
  for (int t = 0; t < producers; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < per; ++i) {
        PendingRequest p = make_pending(t * per + i);
        ServerStats& stripe = stats.stripe(q.shard_of(p.request.model, 0));
        std::size_t depth_after = 0;
        while (q.push(std::move(p), &depth_after) !=
               ShardedRequestQueue::Admit::kOk)
          std::this_thread::yield();
        stripe.record_submitted(depth_after);
      }
    });
  }
  for (auto& t : threads) t.join();
  const double submit_wall = timer.seconds();
  q.close();
  collector.join();
  const double total_wall = timer.seconds();

  CellResult r;
  r.impl = "sharded";
  r.shards = shards;
  r.producers = producers;
  r.submit_wall_s = submit_wall;
  r.total_wall_s = total_wall;
  r.submit_rps = static_cast<double>(actual) / submit_wall;
  r.collected = collected;
  r.batches = batches;
  const StatsSnapshot snap = stats.snapshot();
  CB_CHECK_MSG(snap.submitted == static_cast<std::uint64_t>(actual),
               "striped stats undercount: " << snap.submitted << " of "
                                            << actual);
  CB_CHECK_MSG(collected == static_cast<std::uint64_t>(actual),
               "sharded cell lost requests: " << collected << " of "
                                              << actual);
  return r;
}

void register_all() {
  benchmark::RegisterBenchmark("serve/contention", [](benchmark::State& st) {
    for (auto _ : st) {
      for (int p : producer_counts()) {
        g_cells.push_back(run_single_queue(p));
        for (int s : shard_counts())
          g_cells.push_back(run_sharded(p, s));
      }
    }
  })->Iterations(1)->Unit(benchmark::kSecond);
}

const CellResult* find_cell(const std::string& impl, int shards,
                            int producers) {
  for (const auto& c : g_cells)
    if (c.impl == impl && c.shards == shards && c.producers == producers)
      return &c;
  return nullptr;
}

void print_summary() {
  std::printf("\n=== Serving front-door contention: submit throughput, "
              "%d requests per cell, batch %zu, capacity %zu ===\n",
              ops_per_cell(), kBatch, capacity());
  Table t({"producers", "impl", "shards", "submit Mreq/s", "submit wall s",
           "total wall s", "batches"});
  for (const auto& c : g_cells) {
    t.add_row({std::to_string(c.producers), c.impl,
               c.shards > 0 ? std::to_string(c.shards) : "-",
               Table::fmt(c.submit_rps / 1e6, 3),
               Table::fmt(c.submit_wall_s, 3), Table::fmt(c.total_wall_s, 3),
               std::to_string(c.batches)});
  }
  std::printf("%s", t.to_string().c_str());

  const int gate_shards = shard_counts().back();
  const CellResult* legacy16 = find_cell("single-queue", 0, 16);
  const CellResult* sharded16 = find_cell("sharded", gate_shards, 16);
  double scaling_16p = 0;
  if (legacy16 != nullptr && sharded16 != nullptr && legacy16->submit_rps > 0)
    scaling_16p = sharded16->submit_rps / legacy16->submit_rps;
  std::printf("\nat 16 producers: sharded(%d) vs single-queue = %.2fx submit "
              "throughput (gate: >= 3x)\n",
              gate_shards, scaling_16p);

  std::vector<std::string> cells_json;
  for (const auto& c : g_cells) {
    cells_json.push_back(JsonObject()
                             .add("impl", c.impl)
                             .add("shards", c.shards)
                             .add("producers", c.producers)
                             .add("submit_rps", c.submit_rps)
                             .add("submit_wall_s", c.submit_wall_s)
                             .add("total_wall_s", c.total_wall_s)
                             .add("collected", c.collected)
                             .add("batches", c.batches)
                             .to_string());
  }
  JsonObject out;
  out.add("bench", "serve_contention")
      .add("smoke", smoke())
      .add("ops_per_cell", ops_per_cell())
      .add("capacity", static_cast<int>(capacity()))
      .add("batch", static_cast<int>(kBatch))
      .add("models", kNumModels)
      .add("gate_shards", gate_shards)
      .add_raw("cells", json_array(cells_json))
      .add("submit_throughput_scaling_16p", scaling_16p);
  write_bench_json("serve_contention", out);
}

}  // namespace
}  // namespace convbound::bench

int main(int argc, char** argv) {
  convbound::bench::register_all();
  return convbound::bench::run_all(argc, argv,
                                   convbound::bench::print_summary);
}
