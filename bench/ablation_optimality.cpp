// Ablation of the design choices DESIGN.md calls out:
//   1. the optimality condition x*y = R*z (on-condition vs off-condition
//      tiles at the same shared-memory budget);
//   2. output-stationary accumulation (ours) vs no output-channel reuse
//      (z = 1, the naive kernel);
//   3. the S_b <= S_sm/2 occupancy rule (one resident block vs two);
//   4. search-space pruning ratio (what Table 2's compression measures).
#include "bench_util.hpp"

#include "convbound/tune/domain.hpp"

namespace convbound::bench {
namespace {

ConvShape layer() { return make_shape(1, 128, 56, 128, 3, 1, 1); }

struct TileResult {
  std::string label;
  double residual;
  double io_mb;
  double sim_ms;
};
std::vector<TileResult> g_tiles;
std::vector<std::string> g_notes;

void register_tile_ablation() {
  struct Cfg {
    const char* label;
    std::int64_t x, y, z;
  };
  // All tiles use ~576 output elements (same S_b footprint class); only the
  // first two satisfy x*y = 9*z.
  for (const Cfg& c : {Cfg{"on-condition (8,9,8)", 8, 9, 8},
                       Cfg{"on-condition (12,12,16)", 12, 12, 16},
                       Cfg{"flat (24,24,1)", 24, 24, 1},
                       Cfg{"deep (2,2,128)", 2, 2, 128},
                       Cfg{"square-ish (8,8,9)", 8, 8, 9}}) {
    benchmark::RegisterBenchmark(
        (std::string("ablation_optimality/tile/") + c.label).c_str(),
        [c](benchmark::State& st) {
          for (auto _ : st) {
            const ConvShape s = layer();
            SimGpu gpu(MachineSpec::gtx1080ti());
            const ConvProblem p = make_problem(s, 3);
            Tensor4<float> out(s.batch, s.cout, s.hout(), s.wout());
            ConvConfig cfg;
            cfg.x = c.x;
            cfg.y = c.y;
            cfg.z = c.z;
            cfg.nxt = cfg.nyt = 4;
            cfg.nzt = 2;
            const auto stats =
                direct_tiled_sim(gpu, p.input, p.weights, s, cfg, out);
            g_tiles.push_back(
                {c.label, optimality_residual(s, c.x, c.y, c.z),
                 static_cast<double>(stats.bytes_total()) / 1e6,
                 stats.sim_time * 1e3});
          }
        })
        ->Iterations(1);
  }
}

void register_stationarity_and_occupancy() {
  benchmark::RegisterBenchmark(
      "ablation_optimality/output_stationarity", [](benchmark::State& st) {
        for (auto _ : st) {
          const ConvShape s = layer();
          SimGpu gpu(MachineSpec::gtx1080ti());
          const ConvProblem p = make_problem(s, 3);
          Tensor4<float> out(s.batch, s.cout, s.hout(), s.wout());
          const auto ours = direct_tiled_sim(
              gpu, p.input, p.weights, s,
              default_tiled_config(s, gpu.spec()), out);
          const auto naive = direct_naive_sim(gpu, p.input, p.weights, s, out);
          char buf[160];
          std::snprintf(buf, sizeof(buf),
                        "output-stationary tiles move %.2fx less data than "
                        "the z=1 kernel (%.1f MB vs %.1f MB)",
                        static_cast<double>(naive.bytes_total()) /
                            static_cast<double>(ours.bytes_total()),
                        static_cast<double>(ours.bytes_total()) / 1e6,
                        static_cast<double>(naive.bytes_total()) / 1e6);
          g_notes.emplace_back(buf);
        }
      })->Iterations(1);

  benchmark::RegisterBenchmark(
      "ablation_optimality/occupancy_rule", [](benchmark::State& st) {
        for (auto _ : st) {
          const ConvShape s = layer();
          SimGpu gpu(MachineSpec::gtx1080ti());
          const ConvProblem p = make_problem(s, 3);
          Tensor4<float> out(s.batch, s.cout, s.hout(), s.wout());
          ConvConfig cfg = default_tiled_config(s, gpu.spec());
          // Two resident blocks (S_b = S_sm/2) vs one (S_b = S_sm).
          cfg.smem_budget = gpu.spec().shared_mem_per_sm / 2;
          const auto two = direct_tiled_sim(gpu, p.input, p.weights, s, cfg,
                                            out);
          cfg.smem_budget = gpu.spec().shared_mem_per_sm;
          const auto one = direct_tiled_sim(gpu, p.input, p.weights, s, cfg,
                                            out);
          char buf[160];
          std::snprintf(buf, sizeof(buf),
                        "S_b = S_sm/2 (>=2 resident blocks) is %.2fx faster "
                        "than S_b = S_sm at equal tiling",
                        one.sim_time / two.sim_time);
          g_notes.emplace_back(buf);
        }
      })->Iterations(1);

  benchmark::RegisterBenchmark(
      "ablation_optimality/pruning_ratio", [](benchmark::State& st) {
        for (auto _ : st) {
          const ConvShape s = layer();
          const MachineSpec spec = MachineSpec::gtx1080ti();
          const auto pruned = SearchDomain::build(
              s, spec, {.prune_with_optimality = true});
          const auto full = SearchDomain::build(
              s, spec, {.prune_with_optimality = false});
          char buf[160];
          std::snprintf(
              buf, sizeof(buf),
              "optimality pruning keeps %llu of %llu configurations (%.1f%%)",
              static_cast<unsigned long long>(pruned.size()),
              static_cast<unsigned long long>(full.size()),
              100.0 * static_cast<double>(pruned.size()) /
                  static_cast<double>(full.size()));
          g_notes.emplace_back(buf);
        }
      })->Iterations(1);
}

void print_summary() {
  std::printf("\n=== Ablation 1: the optimality condition x*y = R*z "
              "(same budget, different tile aspect) ===\n");
  Table t({"tile", "|log(xy/Rz)|", "I/O (MB)", "sim time (ms)"});
  for (const auto& r : g_tiles) {
    t.add_row({r.label, Table::fmt(r.residual, 2), Table::fmt(r.io_mb, 1),
               Table::fmt(r.sim_ms, 3)});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\nexpected: I/O grows with the residual |log(x*y / R*z)|.\n");
  std::printf("\n=== Ablations 2-4 ===\n");
  for (const auto& n : g_notes) std::printf("  - %s\n", n.c_str());
}

}  // namespace
}  // namespace convbound::bench

int main(int argc, char** argv) {
  convbound::bench::register_tile_ablation();
  convbound::bench::register_stationarity_and_occupancy();
  return convbound::bench::run_all(argc, argv,
                                   convbound::bench::print_summary);
}
