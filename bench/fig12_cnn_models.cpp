// Figure 12: end-to-end conv inference time of five CNN models, our tuned
// dataflows vs the cuDNN-like baseline, V100 machine model.
//
// Per-layer algorithm selection mirrors both systems: the baseline picks
// the best of {naive direct, im2col, phased Winograd} per layer; ours picks
// the better of {tiled direct, fused Winograd} with analytically derived
// configurations (the tuner's starting point — tuning every layer of five
// models is left to examples/autotune_layer to keep this bench fast).
#include "bench_util.hpp"

namespace convbound::bench {
namespace {

struct ModelRow {
  std::string name;
  double base_ms = 0, ours_ms = 0;
};
std::vector<ModelRow> g_rows;

void register_all() {
  for (const auto& [name, layers] : model_zoo(1)) {
    benchmark::RegisterBenchmark(
        ("fig12/" + name).c_str(),
        [name = name, layers = layers](benchmark::State& st) {
          for (auto _ : st) {
            SimGpu gpu(MachineSpec::v100());
            const ModelReport base =
                run_model(gpu, name, layers, ModelStrategy::kBaseline);
            const ModelReport ours =
                run_model(gpu, name, layers, ModelStrategy::kOursDefault);
            g_rows.push_back(
                {name, base.total_seconds * 1e3, ours.total_seconds * 1e3});
          }
        })
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
}

void print_summary() {
  std::printf("\n=== Figure 12: end-to-end conv inference time (ms), V100 "
              "model ===\n");
  Table t({"model", "cuDNN-like (ms)", "ours (ms)", "speedup"});
  for (const auto& r : g_rows) {
    t.add_row({r.name, Table::fmt(r.base_ms, 2), Table::fmt(r.ours_ms, 2),
               Table::fmt(r.base_ms / r.ours_ms, 2)});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\npaper reference points: SqueezeNet 2.67x, Vgg-19 1.09x, "
              "ResNet-18 1.02x, ResNet-34 1.09x, Inception-v3 1.23x.\n");
}

}  // namespace
}  // namespace convbound::bench

int main(int argc, char** argv) {
  convbound::bench::register_all();
  return convbound::bench::run_all(argc, argv,
                                   convbound::bench::print_summary);
}
