// Figure 12: end-to-end conv inference time of five CNN models, our
// dataflows vs the cuDNN-like baseline, V100 machine model.
//
// Both systems select per-layer algorithms through the plan layer: the
// baseline plans over {naive direct, im2col, phased Winograd}, ours over
// {tiled direct, fused Winograd} with analytically derived configurations
// (the tuner's starting point — tuning every layer of five models is left
// to examples/autotune_layer to keep this bench fast). Each model reuses an
// InferenceSession, so layers are planned once and executed through the
// shared workspace arena.
//
// Emits BENCH_fig12_cnn_models.json (per-model seconds per strategy +
// speedup) so the perf trajectory covers end-to-end inference, not just
// tuning.
#include "bench_util.hpp"

namespace convbound::bench {
namespace {

struct ModelRow {
  std::string name;
  double conv_gflop = 0;
  double base_ms = 0, ours_ms = 0;
};
std::vector<ModelRow> g_rows;

void register_all() {
  for (const auto& [name, layers] : model_zoo(1)) {
    benchmark::RegisterBenchmark(
        ("fig12/" + name).c_str(),
        [name = name, layers = layers](benchmark::State& st) {
          for (auto _ : st) {
            SimGpu gpu(MachineSpec::v100());
            InferenceSession session;
            const ModelReport base = run_model(
                gpu, name, layers, ModelStrategy::kBaseline, session);
            const ModelReport ours = run_model(
                gpu, name, layers, ModelStrategy::kOursDefault, session);
            g_rows.push_back({name,
                              static_cast<double>(model_flops(layers)) / 1e9,
                              base.total_seconds * 1e3,
                              ours.total_seconds * 1e3});
          }
        })
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
}

void print_summary() {
  std::printf("\n=== Figure 12: end-to-end conv inference time (ms), V100 "
              "model ===\n");
  Table t({"model", "cuDNN-like (ms)", "ours (ms)", "speedup"});
  double product = 1;
  for (const auto& r : g_rows) {
    t.add_row({r.name, Table::fmt(r.base_ms, 2), Table::fmt(r.ours_ms, 2),
               Table::fmt(r.base_ms / r.ours_ms, 2)});
    product *= r.base_ms / r.ours_ms;
  }
  const double geomean =
      g_rows.empty() ? 0.0
                     : std::pow(product, 1.0 / static_cast<double>(
                                              g_rows.size()));
  std::printf("%s", t.to_string().c_str());
  std::printf("\npaper reference points: SqueezeNet 2.67x, Vgg-19 1.09x, "
              "ResNet-18 1.02x, ResNet-34 1.09x, Inception-v3 1.23x.\n");

  std::vector<std::string> models;
  for (const auto& r : g_rows) {
    models.push_back(JsonObject()
                         .add("name", r.name)
                         .add("conv_gflop", r.conv_gflop)
                         .add("baseline_seconds", r.base_ms * 1e-3)
                         .add("ours_default_seconds", r.ours_ms * 1e-3)
                         .add("speedup", r.base_ms / r.ours_ms)
                         .to_string());
  }
  JsonObject out;
  out.add("bench", "fig12_cnn_models")
      .add("machine", "v100")
      .add("geomean_speedup", geomean)
      .add_raw("models", json_array(models));
  write_bench_json("fig12_cnn_models", out);
}

}  // namespace
}  // namespace convbound::bench

int main(int argc, char** argv) {
  convbound::bench::register_all();
  return convbound::bench::run_all(argc, argv,
                                   convbound::bench::print_summary);
}
