// Explore the paper's I/O lower bounds for a convolution shape across fast
// memory sizes, alongside the dataflow I/O predictions (Equations 21/23).
//
//   ./lower_bound_explorer [cin hin cout ker stride]
#include <cstdio>
#include <cstdlib>

#include "convbound/convbound.hpp"

int main(int argc, char** argv) {
  using namespace convbound;

  ConvShape s;
  s.cin = argc > 1 ? std::atoll(argv[1]) : 256;
  s.hin = s.win = argc > 2 ? std::atoll(argv[2]) : 56;
  s.cout = argc > 3 ? std::atoll(argv[3]) : 128;
  s.kh = s.kw = argc > 4 ? std::atoll(argv[4]) : 3;
  s.stride = argc > 5 ? std::atoll(argv[5]) : 1;
  s.pad = 0;
  s.validate();

  std::printf("shape: %s   R = %.2f\n\n", s.to_string().c_str(), s.reuse());

  const bool wino = s.kh == s.kw && s.stride == 1;
  Table t(wino ? std::vector<std::string>{"S (KiB floats)", "Q_DC lower (MB)",
                                          "Q_DC dataflow (MB)",
                                          "Q_WA lower (MB)",
                                          "Q_WA dataflow (MB)"}
               : std::vector<std::string>{"S (KiB floats)", "Q_DC lower (MB)",
                                          "Q_DC dataflow (MB)"});
  for (double S : {1024.0, 4096.0, 16384.0, 65536.0, 262144.0}) {
    std::vector<std::string> row;
    row.push_back(Table::fmt(S / 1024.0, 0));
    row.push_back(
        Table::fmt(direct_conv_lower_bound(s, S) * 4e-6, 2));
    row.push_back(Table::fmt(direct_dataflow_io(s, S, 1) * 4e-6, 2));
    if (wino) {
      row.push_back(Table::fmt(winograd_lower_bound(s, 2, S) * 4e-6, 2));
      row.push_back(Table::fmt(winograd_dataflow_io(s, 2, S, 1) * 4e-6, 2));
    }
    t.add_row(std::move(row));
  }
  std::printf("%s\n", t.to_string().c_str());

  // Optimal output tile under a typical per-block budget.
  const double budget = 12 * 1024;
  const OptimalTile tile = optimal_output_tile(s, budget);
  std::printf(
      "optimality condition x*y = R*z at a %.0f-element block budget:\n"
      "  x = %lld, y = %lld, z = %lld  (x*y = %lld vs R*z = %.0f)\n",
      budget, static_cast<long long>(tile.x), static_cast<long long>(tile.y),
      static_cast<long long>(tile.z), static_cast<long long>(tile.x * tile.y),
      s.reuse() * static_cast<double>(tile.z));
  return 0;
}
