// Quickstart: run one convolution with the I/O-optimal dataflow, compare its
// measured off-chip traffic against the paper's lower bound and against the
// cuDNN-like baseline.
//
//   ./quickstart
#include <cstdio>

#include "convbound/convbound.hpp"

int main() {
  using namespace convbound;

  // A ResNet-ish layer: 64 -> 128 channels, 56x56, 3x3, stride 1.
  ConvShape s;
  s.cin = 64;
  s.hin = s.win = 56;
  s.cout = 128;
  s.kh = s.kw = 3;
  s.pad = 1;

  SimGpu gpu(MachineSpec::v100());
  std::printf("machine: %s  (S = %lld floats/SM)\n", gpu.spec().name.c_str(),
              static_cast<long long>(gpu.spec().smem_floats()));
  std::printf("problem: %s  (%.2f GFLOP)\n", s.to_string().c_str(),
              static_cast<double>(s.flops()) / 1e9);

  const ConvProblem p = make_problem(s, /*seed=*/1);

  // Our dataflow (Section 5.2), configured by the optimality condition.
  const ConvResult ours = conv2d(gpu, p.input, p.weights, s);
  // cuDNN-like baseline: best of {naive direct, im2col+GEMM}.
  const ConvResult base =
      run_conv(gpu, ConvAlgorithm::kCudnnDirect, p.input, p.weights, s);

  // Verify both against the naive host reference.
  const Tensor4<float> expect = conv2d_ref(p.input, p.weights, s);
  CB_CHECK(allclose(expect, ours.output, 1e-3, 1e-3));
  CB_CHECK(allclose(expect, base.output, 1e-3, 1e-3));

  const double S = static_cast<double>(gpu.spec().smem_floats());
  const double bound_bytes = direct_conv_lower_bound(s, S) * sizeof(float);

  Table t({"implementation", "sim time (us)", "GFlops", "I/O (MB)",
           "x lower bound"});
  auto add = [&](const char* name, const LaunchStats& st) {
    t.add_row({name, Table::fmt(st.sim_time * 1e6, 1),
               Table::fmt(st.gflops(), 0),
               Table::fmt(static_cast<double>(st.bytes_total()) / 1e6, 2),
               Table::fmt(static_cast<double>(st.bytes_total()) / bound_bytes,
                          2)});
  };
  add("ours (I/O-optimal dataflow)", ours.stats);
  add("cuDNN-like baseline", base.stats);
  std::printf("\n%s\n", t.to_string().c_str());
  std::printf("theoretical minimum I/O (Thm 4.12): %.2f MB\n",
              bound_bytes / 1e6);
  std::printf("speedup over baseline: %.2fx\n",
              base.stats.sim_time / ours.stats.sim_time);
  return 0;
}
