// Play the red-blue pebble game on real convolution DAGs and watch the
// measured traffic approach the analytic lower bound as the schedule
// improves — the paper's theory made tangible.
//
//   ./pebble_playground
#include <cstdio>

#include "convbound/convbound.hpp"

int main() {
  using namespace convbound;

  ConvDagShape ds;
  ds.cin = 8;
  ds.hin = ds.win = 12;
  ds.cout = 16;
  ds.ker = 3;

  ConvShape s;
  s.cin = ds.cin;
  s.hin = ds.hin;
  s.win = ds.win;
  s.cout = ds.cout;

  const std::size_t S = 512;
  std::printf("direct convolution DAG: %s, fast memory S = %zu values\n",
              s.to_string().c_str(), S);
  std::printf("analytic lower bound (leading term): %.0f transfers\n\n",
              direct_conv_lower_bound_leading(s, static_cast<double>(S)));

  Table t({"schedule (x, y, z)", "x*y = R*z?", "loads", "stores", "total Q"});
  struct Case {
    TileSpec tile;
    const char* note;
  };
  // R = 9: the (6, 6, 4) and (3, 3, 1) tiles satisfy the optimality
  // condition; the others deliberately violate it.
  for (const Case& c : {Case{{1, 1, 1}, "no"}, Case{{3, 3, 1}, "yes"},
                        Case{{12, 12, 1}, "no"}, Case{{2, 2, 8}, "no"},
                        Case{{6, 6, 4}, "yes"}}) {
    const Dag dag = direct_conv_dag(ds, c.tile);
    const GameResult r = play_pebble_game(dag, S);
    t.add_row({"(" + std::to_string(c.tile.x) + ", " +
                   std::to_string(c.tile.y) + ", " +
                   std::to_string(c.tile.z) + ")",
               c.note, Table::fmt_int(static_cast<long long>(r.loads)),
               Table::fmt_int(static_cast<long long>(r.stores)),
               Table::fmt_int(static_cast<long long>(r.total()))});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "On-condition schedules (x*y = R*z) land closest to the bound —\n"
      "exactly the Section 5.2 design rule the auto-tuner exploits.\n");
  return 0;
}
