// Dynamic micro-batching inference server in ~60 lines: three client
// threads fire requests at two (scaled-down) zoo models; the server groups
// them into bound-guided micro-batches over warm, pre-planned sessions.
//
//   ./serve_demo
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "convbound/convbound.hpp"

int main() {
  using namespace convbound;

  // Scaled-down pipelines (first 3 conv layers, channels <= 16, images
  // <= 28) so the demo runs in seconds on a laptop.
  ServedModelOptions scale;
  scale.max_layers = 3;
  scale.channel_cap = 16;
  scale.spatial_cap = 28;
  std::vector<ServedModel> models;
  models.push_back(make_served_model("squeezenet", squeezenet_v10(), scale));
  models.push_back(make_served_model("resnet-18", resnet18(), scale));

  ServerOptions opts;
  opts.workers = 2;
  opts.max_delay = std::chrono::microseconds(1000);
  InferenceServer server(models, opts);
  server.start();  // plans + warms every (model, bucket) session

  for (const auto& m : models) {
    const BucketChoice& c = server.bucket_choice(m.name);
    std::printf("%s: bound-guided batch bucket = %lld\n", m.name.c_str(),
                static_cast<long long>(c.bucket));
    for (const auto& s : c.scores)
      std::printf("  bucket %-2lld  pred %7.2f us/request  batch %7.2f us%s\n",
                  static_cast<long long>(s.bucket),
                  s.predicted_seconds_per_request * 1e6,
                  s.predicted_batch_seconds * 1e6,
                  s.chosen ? "   <- chosen" : "");
  }

  // Failures are counted, not thrown: an exception escaping a client
  // thread would std::terminate the process.
  constexpr int kClients = 3, kPerClient = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const ServedModel& m = models[(c + i) % models.size()];
        const Tensor4<float> input =
            make_request_input(m, 100u * c + i);
        const InferResponse r = server.submit({m.name, input}).get();
        // Responses are batch-transparent: identical to an unbatched
        // single-threaded reference run.
        if (r.status != ServeStatus::kOk ||
            !allclose(reference_run(m, input), r.output, 1e-3, 1e-3))
          ++failures;
      }
    });
  }
  for (auto& t : clients) t.join();
  CB_CHECK_MSG(failures.load() == 0,
               failures.load() << " requests failed or mismatched");

  const StatsSnapshot s = server.stats();
  std::printf("\nserved %llu requests in %llu micro-batches "
              "(mean batch %.2f)\n",
              static_cast<unsigned long long>(s.completed),
              static_cast<unsigned long long>(s.batches), s.mean_batch_size);
  std::printf("latency p50/p95/p99: %.2f / %.2f / %.2f ms (wall)\n",
              s.latency_p50 * 1e3, s.latency_p95 * 1e3, s.latency_p99 * 1e3);
  std::printf("modelled accelerator throughput: %.0f requests/s\n",
              s.modelled_rps);
  std::printf("plan-cache misses after warmup: %llu (plans stay warm)\n",
              static_cast<unsigned long long>(s.plan_misses_after_warm));
  server.stop();
  return 0;
}
