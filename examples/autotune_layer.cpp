// Auto-tune one convolution layer with the paper's engine and print the
// search trace — a miniature of Figure 11 on your terminal.
//
//   ./autotune_layer [budget]
#include <cstdio>
#include <cstdlib>

#include "convbound/convbound.hpp"

int main(int argc, char** argv) {
  using namespace convbound;
  const int budget = argc > 1 ? std::atoi(argv[1]) : 64;

  // AlexNet conv3.
  ConvShape s;
  s.cin = 256;
  s.hin = s.win = 13;
  s.cout = 384;
  s.kh = s.kw = 3;
  s.pad = 1;

  SimGpu gpu(MachineSpec::v100());
  std::printf("tuning %s on %s, budget = %d trials\n", s.to_string().c_str(),
              gpu.spec().name.c_str(), budget);

  AutotuneOptions opts;
  opts.budget = budget;
  const AutotuneOutcome out = autotune_conv(gpu, s, opts);

  std::printf("search domain: %llu configurations (optimality-pruned)\n\n",
              static_cast<unsigned long long>(out.domain.size()));

  Table t({"trial", "best GFlops", "config found"});
  const double flops = static_cast<double>(s.flops());
  for (const auto& rec : out.result.history) {
    // Print only the trials that improved the incumbent.
    if (rec.seconds > rec.best_seconds) continue;
    t.add_row({Table::fmt_int(rec.trial),
               Table::fmt(flops / rec.best_seconds / 1e9, 0),
               rec.config.to_string()});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("best: %s -> %.0f GFlops\n",
              out.result.best.to_string().c_str(), out.best_gflops);
  std::printf("converged at trial %d of %d\n",
              out.result.trials_to_converge(), budget);
  return 0;
}
