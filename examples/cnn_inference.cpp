// End-to-end conv inference of a CNN model: our dataflows vs the cuDNN-like
// baseline, per layer (a runnable slice of Figure 12).
//
//   ./cnn_inference [squeezenet|resnet18|alexnet|mobilenet]
#include <cstdio>
#include <cstring>

#include "convbound/convbound.hpp"

int main(int argc, char** argv) {
  using namespace convbound;
  const char* which = argc > 1 ? argv[1] : "squeezenet";

  std::vector<ConvLayer> layers;
  if (std::strcmp(which, "resnet18") == 0) {
    layers = resnet18();
  } else if (std::strcmp(which, "alexnet") == 0) {
    layers = alexnet();
  } else if (std::strcmp(which, "mobilenet") == 0) {
    layers = mobilenet_v1();
  } else {
    which = "squeezenet";
    layers = squeezenet_v10();
  }

  SimGpu gpu(MachineSpec::v100());
  std::printf("%s: %zu conv layers, %.2f GFLOP total, on %s\n\n", which,
              layers.size(), static_cast<double>(model_flops(layers)) / 1e9,
              gpu.spec().name.c_str());

  // One long-lived session carries the plan memo, tune cache, and workspace
  // arena across both strategy runs (and any repeated passes).
  InferenceSession session;
  const ModelReport base =
      run_model(gpu, which, layers, ModelStrategy::kBaseline, session);
  const ModelReport ours =
      run_model(gpu, which, layers, ModelStrategy::kOursDefault, session);

  Table t({"layer", "shape", "baseline (us)", "ours (us)", "speedup",
           "winning algo"});
  for (std::size_t i = 0; i < layers.size(); ++i) {
    t.add_row({base.layers[i].name, layers[i].shape.to_string(),
               Table::fmt(base.layers[i].seconds * 1e6, 1),
               Table::fmt(ours.layers[i].seconds * 1e6, 1),
               Table::fmt(base.layers[i].seconds / ours.layers[i].seconds, 2),
               ours.layers[i].algorithm});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("total: baseline %.3f ms, ours %.3f ms  ->  %.2fx speedup\n",
              base.total_seconds * 1e3, ours.total_seconds * 1e3,
              base.total_seconds / ours.total_seconds);
  return 0;
}
