#!/usr/bin/env python3
"""Unit tests for tools/lint_convbound.py, run against the fixtures in
tests/lint_fixtures/. Registered as the `lint_convbound_selftest` ctest;
the companion `lint_convbound` ctest runs the linter over the real tree."""

import json
import os
import shutil
import subprocess
import sys
import tempfile
import unittest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINTER = os.path.join(REPO, "tools", "lint_convbound.py")
FIXTURES = os.path.join(REPO, "tests", "lint_fixtures")


def run_linter(*args):
    proc = subprocess.run(
        [sys.executable, LINTER, *args],
        capture_output=True, text=True, cwd=REPO)
    return proc.returncode, proc.stdout


def findings(output, rule):
    return [ln for ln in output.splitlines() if f"[{rule}]" in ln]


class BareLockTest(unittest.TestCase):
    def test_flags_manual_lock_calls(self):
        code, out = run_linter("--gates", "",
                               os.path.join(FIXTURES, "bad_lock.cpp"))
        self.assertEqual(code, 1)
        hits = findings(out, "bare-lock")
        self.assertEqual(len(hits), 4, out)
        for needle in ("mu_.lock", "mu_.unlock", "stats_mutex.try_lock",
                       "stats_mutex.unlock"):
            self.assertTrue(any(needle in h for h in hits), needle)
        # The RAII guard's unlock() must not be flagged.
        self.assertFalse(any("guard." in h for h in hits), out)


class AtomicOrderTest(unittest.TestCase):
    def test_flags_defaulted_and_implicit_accesses(self):
        code, out = run_linter("--gates", "",
                               os.path.join(FIXTURES, "bad_atomic.cpp"))
        self.assertEqual(code, 1)
        hits = findings(out, "atomic-order")
        self.assertEqual(len(hits), 5, out)
        self.assertTrue(any("stopped_.load()" in h for h in hits))
        self.assertTrue(any("started_.store(true)" in h for h in hits))
        self.assertTrue(any("counter_.fetch_add(1)" in h for h in hits))
        self.assertEqual(
            len([h for h in hits if "implicit atomic access" in h]), 2, out)
        # The non-atomic Ctx::store call must not be flagged.
        self.assertFalse(any("ctx" in h.lower() for h in hits), out)


class CheckContractTest(unittest.TestCase):
    def test_flags_streams_and_dtor_throws(self):
        code, out = run_linter("--gates", "",
                               os.path.join(FIXTURES, "bad_check.cpp"))
        self.assertEqual(code, 1)
        hits = findings(out, "check-contract")
        self.assertEqual(len(hits), 3, out)
        self.assertEqual(
            len([h for h in hits if "shift operand" in h]), 2, out)
        self.assertEqual(
            len([h for h in hits if "destructor" in h]), 1, out)


class GoodFileTest(unittest.TestCase):
    def test_idiomatic_code_is_clean(self):
        code, out = run_linter("--gates", "",
                               os.path.join(FIXTURES, "good.cpp"))
        self.assertEqual(code, 0, out)


class FixModeTest(unittest.TestCase):
    def test_fix_rewrites_defaulted_load_store(self):
        with tempfile.TemporaryDirectory() as tmp:
            target = os.path.join(tmp, "fix_input.cpp")
            shutil.copy(os.path.join(FIXTURES, "fix_input.cpp"), target)
            code, out = run_linter("--fix", "--gates", "", target)
            with open(target) as f:
                got = f.read()
            with open(os.path.join(FIXTURES, "fix_expected.cpp")) as f:
                want = f.read()
            self.assertEqual(got, want)
            # fetch_add stays unfixed and keeps the run red.
            self.assertEqual(code, 1)
            self.assertTrue(any("fetch_add" in h
                                for h in findings(out, "atomic-order")), out)
            # Re-running on the fixed file leaves only the fetch_add finding
            # and changes nothing (idempotent).
            code2, out2 = run_linter("--fix", "--gates", "", target)
            with open(target) as f:
                self.assertEqual(f.read(), want)
            self.assertEqual(len(findings(out2, "atomic-order")), 1, out2)


class BenchGatesTest(unittest.TestCase):
    def _write_gates(self, tmp, metric):
        bench = os.path.join(tmp, "bench")
        baselines = os.path.join(bench, "baselines")
        os.makedirs(baselines)
        with open(os.path.join(bench, "demo.cpp"), "w") as f:
            f.write('out["modelled_rps"] = rps;\n')
        gates = os.path.join(baselines, "gates.json")
        with open(gates, "w") as f:
            json.dump({"gates": [{"file": "BENCH_demo.json",
                                  "metric": metric,
                                  "direction": "higher"}]}, f)
        return gates

    def test_metric_present_passes(self):
        with tempfile.TemporaryDirectory() as tmp:
            gates = self._write_gates(tmp, "modelled_rps")
            code, out = run_linter(
                "--gates", gates, os.path.join(FIXTURES, "good.cpp"))
            self.assertEqual(code, 0, out)

    def test_missing_metric_fails(self):
        with tempfile.TemporaryDirectory() as tmp:
            gates = self._write_gates(tmp, "renamed_metric")
            code, out = run_linter(
                "--gates", gates, os.path.join(FIXTURES, "good.cpp"))
            self.assertEqual(code, 1)
            self.assertTrue(findings(out, "bench-gates"), out)


class RealTreeTest(unittest.TestCase):
    def test_repo_sources_are_clean(self):
        code, out = run_linter(
            os.path.join(REPO, "src"),
            os.path.join(REPO, "tools", "convbound_cli.cpp"),
            os.path.join(REPO, "bench"))
        self.assertEqual(code, 0, out)


if __name__ == "__main__":
    unittest.main()
