#!/usr/bin/env python3
"""Project-specific static checks for convbound.

Complements the compiler-side analyses (clang -Wthread-safety, clang-tidy)
with rules those tools cannot express because they encode *project*
conventions, not C++ semantics:

  bare-lock      Manual mu.lock()/mu.unlock()/mu.try_lock() on a
                 mutex-named receiver. All locking goes through the RAII
                 helpers in convbound/util/mutex.hpp (the only file allowed
                 to touch a raw mutex) so clang's thread-safety analysis
                 sees every acquire/release.

  atomic-order   Every std::atomic access must name an explicit
                 std::memory_order. Defaulted seq_cst hides the author's
                 intent (was seq_cst chosen, or merely inherited?), and
                 implicit reads/writes (`if (stopped_)`, `++counter_`,
                 `flag_ = true`) hide that an atomic is involved at all.
                 `--fix` rewrites defaulted load()/store() calls to explicit
                 std::memory_order_seq_cst (the semantics-preserving
                 spelling; relaxing further stays a human decision).

  check-contract CB_CHECK/CB_ASSERT must match check.hpp's
                 exception-vs-terminate contract: CB_CHECK/CB_ASSERT take a
                 bare condition (streaming `<< "msg"` into them turns the
                 message into a shift operand — use CB_CHECK_MSG); throwing
                 checks (CB_CHECK*) must not run inside destructors, where
                 an escaping exception is std::terminate (use CB_ASSERT).

  bench-gates    Every metric referenced by bench/baselines/gates.json must
                 appear as a string literal in the bench source that emits
                 the gated JSON file — a renamed metric otherwise passes CI
                 silently (bench_compare treats a missing metric as a config
                 error only at gate time, long after the rename landed).

Usage:
  tools/lint_convbound.py [--fix] [--gates bench/baselines/gates.json] PATH...

PATHs are files or directories (searched for *.cpp/*.hpp). Exits non-zero
when any finding remains.
"""

import argparse
import json
import os
import re
import sys

# The one file allowed to operate on raw std::mutex: the annotated RAII
# wrapper layer itself.
BARE_LOCK_ALLOWLIST = ("util/mutex.hpp",)

ATOMIC_METHODS = (
    "load|store|exchange|fetch_add|fetch_sub|fetch_or|fetch_and|fetch_xor|"
    "compare_exchange_weak|compare_exchange_strong"
)

ATOMIC_DECL_RE = re.compile(
    r"std::atomic<[^<>;]*(?:<[^<>]*>)?[^<>;]*>\s+(\w+)\s*(?:\{|=|;)")
LOCK_CALL_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*(?:\.|->)\s*(lock|unlock|try_lock)\s*\(")
DTOR_RE = re.compile(r"~\w+\s*\([^)]*\)\s*(?:noexcept[^{;]*)?\{")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blanks comments and string/char literal *contents* (delimiters stay),
    preserving length and newlines so offsets and line numbers survive."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n
                                 and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = out[i + 1] = " "
                i += 2
        elif c in "\"'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out[i] = " "
                    i += 1
                    if i < n and text[i] != "\n":
                        out[i] = " "
                    i += 1
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            i += 1
        else:
            i += 1
    return "".join(out)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def balanced_args(text, open_paren):
    """Returns (args, end) for the parenthesized list starting at
    text[open_paren] == '('; end is the index of the closing ')'."""
    depth = 0
    for i in range(open_paren, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren + 1:i], i
    return text[open_paren + 1:], len(text)


# ---------------------------------------------------------------- rules ----


def check_bare_locks(path, stripped):
    if path.replace(os.sep, "/").endswith(BARE_LOCK_ALLOWLIST):
        return []
    findings = []
    for m in LOCK_CALL_RE.finditer(stripped):
        receiver, method = m.group(1), m.group(2)
        if "mu" not in receiver.lower() and "mutex" not in receiver.lower():
            continue  # RAII guard objects ("lock.unlock()") are the helpers
        findings.append(Finding(
            path, line_of(stripped, m.start()), "bare-lock",
            f"manual {receiver}.{method}() — use MutexLock/UniqueLock from "
            "convbound/util/mutex.hpp so the thread-safety analysis sees "
            "the acquire/release"))
    return findings


def paired_header(path):
    """src/<mod>/src/foo.cpp -> src/<mod>/include/convbound/<mod>/foo.hpp"""
    norm = path.replace(os.sep, "/")
    m = re.search(r"(.*)/([^/]+)/src/([^/]+)\.cpp$", norm)
    if not m:
        return None
    root, mod, stem = m.groups()
    cand = f"{root}/{mod}/include/convbound/{mod}/{stem}.hpp"
    return cand if os.path.exists(cand) else None


def atomic_names(stripped_texts):
    names = set()
    for text in stripped_texts:
        for m in ATOMIC_DECL_RE.finditer(text):
            names.add(m.group(1))
    return names


def check_atomic_orders(path, stripped, names, fixes):
    """Flags atomic accesses without an explicit memory order. Appends
    (start, end, replacement) spans to `fixes` for --fix-able cases."""
    findings = []
    if not names:
        return findings
    method_re = re.compile(
        r"\b(" + "|".join(re.escape(n) for n in names) +
        r")\s*(?:\.|->)\s*(" + ATOMIC_METHODS + r")\s*\(")
    spans = []  # offsets covered by a method call (incl. args)
    for m in method_re.finditer(stripped):
        name, method = m.group(1), m.group(2)
        open_paren = stripped.index("(", m.end() - 1)
        args, close = balanced_args(stripped, open_paren)
        spans.append((m.start(), close + 1))
        if "memory_order" in args:
            continue
        ln = line_of(stripped, m.start())
        findings.append(Finding(
            path, ln, "atomic-order",
            f"{name}.{method}({args.strip()}) without an explicit "
            "std::memory_order"))
        if method == "load" and args.strip() == "":
            fixes.append((open_paren + 1, close,
                          "std::memory_order_seq_cst"))
        elif method == "store" and args.strip() != "":
            fixes.append((close, close,
                          ", std::memory_order_seq_cst"))
    # Implicit touches: a bare use of the atomic's name that is not a
    # method call (operator++, operator=, contextual bool conversion, ...).
    bare_re = re.compile(
        r"(?<![\w.>])(" + "|".join(re.escape(n) for n in names) + r")\b")
    for m in bare_re.finditer(stripped):
        if any(s <= m.start() < e for s, e in spans):
            continue
        after = stripped[m.end():m.end() + 32].lstrip()
        if after.startswith(".") or after.startswith("->"):
            continue  # start of a (possibly flagged-above) method call
        line_start = stripped.rfind("\n", 0, m.start()) + 1
        line_end = stripped.find("\n", m.start())
        line_text = stripped[line_start:line_end if line_end >= 0 else None]
        if "std::atomic" in line_text or "atomic<" in line_text:
            continue  # the declaration itself
        findings.append(Finding(
            path, line_of(stripped, m.start()), "atomic-order",
            f"implicit atomic access of '{m.group(1)}' — spell it as "
            "load()/store()/fetch_*() with an explicit std::memory_order"))
    return findings


def check_check_contract(path, text, stripped):
    findings = []
    # Streaming into the non-_MSG macros: only flag a `<<` that feeds a
    # string literal (checked against the raw text), so legitimate bit
    # shifts in conditions stay legal.
    for macro in ("CB_CHECK", "CB_ASSERT"):
        for m in re.finditer(r"\b" + macro + r"\s*\(", stripped):
            if stripped[m.end() - 1 - len(macro) - 16:m.start()].rstrip() \
                    .endswith("#define"):
                continue
            if macro == "CB_CHECK" and \
                    stripped[m.end():m.end() + 4].startswith("_MSG"):
                continue
            args, close = balanced_args(stripped, m.end() - 1)
            raw_args = text[m.end():close]
            if re.search(r"<<\s*\"", raw_args):
                findings.append(Finding(
                    path, line_of(stripped, m.start()), "check-contract",
                    f"{macro} takes a bare condition; the streamed message "
                    "becomes a shift operand — use CB_CHECK_MSG"))
    # Throwing checks in destructors -> std::terminate.
    for m in DTOR_RE.finditer(stripped):
        open_brace = stripped.index("{", m.end() - 1)
        depth, i = 0, open_brace
        while i < len(stripped):
            if stripped[i] == "{":
                depth += 1
            elif stripped[i] == "}":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        body = stripped[open_brace:i]
        cm = re.search(r"\bCB_CHECK(_MSG)?\s*\(", body)
        if cm:
            findings.append(Finding(
                path, line_of(stripped, open_brace + cm.start()),
                "check-contract",
                "CB_CHECK in a destructor throws convbound::Error out of a "
                "dtor (std::terminate) — use CB_ASSERT for invariants here"))
    return findings


def check_bench_gates(gates_path):
    findings = []
    try:
        with open(gates_path) as f:
            gates = json.load(f)
    except (OSError, ValueError) as e:
        return [Finding(gates_path, 1, "bench-gates",
                        f"cannot parse gates file: {e}")]
    bench_dir = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(gates_path))))
    sources = {}
    for gate in gates.get("gates", []):
        fname, metric = gate.get("file", ""), gate.get("metric", "")
        m = re.match(r"BENCH_(\w+)\.json$", fname)
        if not m:
            findings.append(Finding(gates_path, 1, "bench-gates",
                                    f"unrecognized gated file '{fname}'"))
            continue
        src = os.path.join(bench_dir, m.group(1) + ".cpp")
        if src not in sources:
            try:
                with open(src) as f:
                    sources[src] = f.read()
            except OSError:
                sources[src] = None
        if sources[src] is None:
            findings.append(Finding(
                gates_path, 1, "bench-gates",
                f"gated file '{fname}' has no bench source {src}"))
            continue
        if f'"{metric}"' not in sources[src]:
            findings.append(Finding(
                src, 1, "bench-gates",
                f"gated metric '{metric}' (from {os.path.basename(gates_path)}"
                f" / {fname}) is not emitted as a string literal here — "
                "renaming a gated metric silently disarms its CI gate"))
    return findings


# ----------------------------------------------------------------- main ----


def lint_file(path, fix):
    with open(path) as f:
        text = f.read()
    stripped = strip_comments_and_strings(text)
    findings = []
    findings += check_bare_locks(path, stripped)

    header = paired_header(path)
    texts = [stripped]
    if header:
        with open(header) as f:
            texts.append(strip_comments_and_strings(f.read()))
    fixes = []
    findings += check_atomic_orders(path, stripped, atomic_names(texts),
                                    fixes)
    findings += check_check_contract(path, text, stripped)

    if fix and fixes:
        for start, end, repl in sorted(fixes, reverse=True):
            text = text[:start] + repl + text[end:]
        with open(path, "w") as f:
            f.write(text)
        fixed = {line_of(stripped, s) for s, _, _ in fixes}
        findings = [fn for fn in findings
                    if not (fn.rule == "atomic-order" and fn.line in fixed
                            and "without an explicit" in fn.message)]
        print(f"{path}: fixed {len(fixes)} defaulted load()/store() "
              "call(s) to std::memory_order_seq_cst")
    return findings


def collect_paths(paths):
    out = []
    for p in paths:
        if os.path.isdir(p):
            for root, _, files in os.walk(p):
                for f in sorted(files):
                    if f.endswith((".cpp", ".hpp")):
                        out.append(os.path.join(root, f))
        else:
            out.append(p)
    return out


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="+", help="files or directories to lint")
    ap.add_argument("--fix", action="store_true",
                    help="rewrite defaulted atomic load()/store() calls to "
                         "explicit std::memory_order_seq_cst")
    ap.add_argument("--gates", default=None,
                    help="gates.json to cross-check against bench sources "
                         "(default: bench/baselines/gates.json when present)")
    args = ap.parse_args(argv)

    findings = []
    for path in collect_paths(args.paths):
        findings += lint_file(path, args.fix)

    gates = args.gates
    if gates is None and os.path.exists("bench/baselines/gates.json"):
        gates = "bench/baselines/gates.json"
    if gates:
        findings += check_bench_gates(gates)

    for f in findings:
        print(f)
    if findings:
        print(f"lint_convbound: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
