#!/usr/bin/env bash
# One-command local repro of the static-analysis CI job (docs/ci.md):
#
#   1. clang build with CONVBOUND_THREAD_SAFETY=ON
#      (-Wthread-safety -Werror=thread-safety + the negative compile check
#      that proves the annotations are load-bearing)
#   2. clang-tidy over every TU in src/ using the .clang-tidy profile
#   3. tools/lint_convbound.py over src/, tools/convbound_cli.cpp, bench/
#
# Needs clang + clang-tidy on PATH (steps that lack their tool are skipped
# with a warning so the linter still runs on gcc-only boxes).
#
#   tools/check_static.sh [build-dir]     # default: build-static
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD="${1:-build-static}"

status=0

if command -v clang++ >/dev/null; then
  echo "== [1/3] clang thread-safety build (CONVBOUND_THREAD_SAFETY=ON)"
  cmake -B "$BUILD" -S . \
    -DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++ \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    -DCONVBOUND_THREAD_SAFETY=ON -DCONVBOUND_WERROR=ON
  cmake --build "$BUILD" -j
else
  echo "WARNING: clang++ not found - skipping thread-safety build" >&2
  status=1
fi

if command -v clang-tidy >/dev/null && [ -f "$BUILD/compile_commands.json" ]; then
  echo "== [2/3] clang-tidy over src/"
  # run-clang-tidy parallelizes across TUs; fall back to a serial loop when
  # only the bare clang-tidy binary is installed.
  if command -v run-clang-tidy >/dev/null; then
    run-clang-tidy -p "$BUILD" -quiet "$(pwd)/src/.*\.cpp$"
  else
    find src -name '*.cpp' -print0 |
      xargs -0 -n1 -P"$(nproc)" clang-tidy -p "$BUILD" --quiet
  fi
else
  echo "WARNING: clang-tidy (or compile_commands.json) missing - skipping" >&2
  status=1
fi

echo "== [3/3] project linter (tools/lint_convbound.py)"
python3 tools/lint_convbound.py src tools/convbound_cli.cpp bench

if [ "$status" -ne 0 ]; then
  echo "NOTE: some steps were skipped (missing tools); CI runs all three." >&2
fi
exit "$status"
