// convbound-cli — command-line front end for the library.
//
// Subcommands:
//   bound  --cin N --in N --cout N [--ker N --stride N --pad N --smem KB]
//       Print I/O lower bounds and dataflow predictions for a shape.
//   run    --cin N --in N --cout N [...] [--machine NAME] [--algo NAME]
//       Execute one convolution on the simulated machine and report stats.
//   tune   --cin N --in N --cout N [...] [--budget N] [--cache FILE]
//          [--workers N] [--tuner bnb|ate|sa|ga|random]
//          [--checkpoint FILE] [--resume 1]
//       Auto-tune the dataflow with the batched parallel measurement
//       engine (--workers 0 = one per hardware thread); optionally
//       persist the result to a cache. --checkpoint writes the resumable
//       search state after every measured batch; --resume 1 continues a
//       checkpointed search bit-identically up to --budget total trials
//       (see docs/tuning.md). The bnb tuner prints its pruning stats and
//       reports when the result is a certified optimum.
//   models [--machine NAME]
//       Compare baseline vs our dataflows across the CNN model zoo.
//   plan   --model NAME | --cin N --in N --cout N [...]
//          [--mode analytic|measured|tuned] [--set ours|baseline]
//          [--budget N] [--cache FILE] [--machine NAME]
//       Bound-guided planning. With --model, print the per-layer plan table
//       (algorithm, config, predicted I/O vs the I/O lower bound); with a
//       single shape, print the full candidate ranking. --mode tuned
//       consults/fills the tune cache; analytic (default) executes nothing.
//   serve  [--models CSV] [--clients N] [--producers N] [--requests N]
//          [--layers N] [--chan-cap N] [--spatial-cap N] [--serve-workers N]
//          [--replicas N] [--queue N] [--shards N] [--delay-us N]
//          [--bucket N] [--max-bucket N] [--mode measured|tuned]
//          [--budget N] [--machine NAME] [--trace-out FILE]
//          [--metrics-out FILE]
//       Closed-loop self-benchmark of the micro-batching inference server:
//       N client threads each send `requests` back-to-back requests across
//       the (scaled-down) models; prints the bound-guided bucket tables,
//       throughput, latency percentiles, and the batch-size histogram.
//       --bucket 0 (default) = bound-guided bucket; 1 = unbatched baseline.
//       --shards sets the front door's ingest shards (lock-striped submit;
//       1 = single-queue exact-EDF); --producers overrides --clients for
//       the number of submitting threads (contention knob).
//   cluster [--devices CSV] [--policy bound|rr|least] [--models CSV]
//           [--clients N] [--requests N] [--layers N] [--chan-cap N]
//           [--spatial-cap N] [--dev-workers N] [--replicas N]
//           [--pending N] [--queue N] [--shards N] [--delay-us N]
//           [--bucket N] [--max-bucket N] [--mode measured|tuned] [--budget N]
//           [--classes CSV] [--congestion PCT]
//           [--kill N] [--kill-after-ms N] [--revive warm|cold]
//           [--trace-out FILE] [--metrics-out FILE]
//       Closed-loop self-benchmark of the heterogeneous multi-accelerator
//       cluster: --devices lists one MachineSpec per simulated device
//       (e.g. "v100,hbm,dense"); the bound-aware Router places each request
//       group on the device with the best predicted per-request time, with
//       work stealing when it saturates. Prints per-device placement /
//       throughput tables and the fleet summary; exits non-zero on any
//       failed request or per-device plan-cache miss after warmup.
//       --classes declares tenant classes as name:budget_ms:weight triples
//       (e.g. "paid:50:3,free:0:1"; budget 0 = no latency budget); client
//       threads are assigned classes round-robin and the summary adds a
//       per-class table (kQuotaExceeded counts as load shedding, not
//       failure). --kill N fails device N --kill-after-ms (default 5) into
//       the load; --revive brings it back warm (surviving engine) or cold
//       (rebuilt + re-warmed hot-join) halfway through the remaining load.
//
// Observability (serve and cluster; see docs/observability.md):
//   --trace-out FILE    enables tracing and writes a Chrome trace-event JSON
//                       (load in Perfetto / chrome://tracing) of the run:
//                       admission, queue residency, batch formation,
//                       placement, execution, completion — correlated by
//                       request and batch id.
//   --metrics-out FILE  writes the final stats snapshot as Prometheus-style
//                       text exposition (counters, gauges, and the
//                       per-stage latency histograms).
//
// Machines: 1080ti, titanx, v100 (default), gfx906, hbm, dense, test.
// Models: squeezenet, vgg-19, resnet-18, resnet-34, inception-v3, mobilenet.
// Algorithms: tiled (default), naive, im2col, cudnn, winograd, phased, fft.
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "convbound/convbound.hpp"
#include "convbound/serve/obs_export.hpp"
#include "convbound/tune/cache.hpp"
#include "convbound/util/timer.hpp"

namespace {

using namespace convbound;

struct Args {
  std::map<std::string, std::string> kv;

  std::int64_t geti(const std::string& key, std::int64_t def) const {
    const auto it = kv.find(key);
    return it == kv.end() ? def : std::stoll(it->second);
  }
  std::string gets(const std::string& key, const std::string& def) const {
    const auto it = kv.find(key);
    return it == kv.end() ? def : it->second;
  }
};

Args parse(int argc, char** argv, int start) {
  Args a;
  for (int i = start; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    CB_CHECK_MSG(key.rfind("--", 0) == 0, "expected --flag, got " << key);
    a.kv[key.substr(2)] = argv[i + 1];
  }
  return a;
}


ConvShape shape_from(const Args& a) {
  ConvShape s;
  s.batch = a.geti("batch", 1);
  s.cin = a.geti("cin", 64);
  s.hin = s.win = a.geti("in", 56);
  s.cout = a.geti("cout", 64);
  s.kh = s.kw = a.geti("ker", 3);
  s.stride = a.geti("stride", 1);
  s.pad = a.geti("pad", s.kh / 2);
  s.groups = a.geti("groups", 1);
  s.validate();
  return s;
}

int cmd_bound(const Args& a) {
  const ConvShape s = shape_from(a);
  const double S = static_cast<double>(a.geti("smem", 96) * 1024 / 4);
  std::printf("shape: %s   R = %.2f   S = %.0f floats\n",
              s.to_string().c_str(), s.reuse(), S);
  std::printf("direct conv lower bound (Thm 4.12):   %.3f MB\n",
              direct_conv_lower_bound(s, S) * 4e-6);
  std::printf("direct dataflow I/O (Eq 21, Np=1):    %.3f MB\n",
              direct_dataflow_io(s, S, 1) * 4e-6);
  if (algorithm_supports(ConvAlgorithm::kWinogradFused, s)) {
    std::printf("winograd lower bound (Thm 4.20, e=2): %.3f MB\n",
                winograd_lower_bound(s, 2, S) * 4e-6);
    std::printf("winograd dataflow I/O (Np=1):         %.3f MB\n",
                winograd_dataflow_io(s, 2, S, 1) * 4e-6);
  }
  const OptimalTile t = optimal_output_tile(s, S / 4);
  std::printf("optimality-condition tile at S/4 budget: x=%lld y=%lld z=%lld\n",
              static_cast<long long>(t.x), static_cast<long long>(t.y),
              static_cast<long long>(t.z));
  return 0;
}

int cmd_run(const Args& a) {
  const ConvShape s = shape_from(a);
  SimGpu gpu(spec_by_name(a.gets("machine", "v100")));
  const std::string algo_name = a.gets("algo", "tiled");
  const ConvProblem p = make_problem(s, a.geti("seed", 1));
  Tensor4<float> out(s.batch, s.cout, s.hout(), s.wout());

  LaunchStats stats;
  if (algo_name == "fft") {
    stats = fft_conv_sim(gpu, p.input, p.weights, s, out);
  } else {
    const std::map<std::string, ConvAlgorithm> algos = {
        {"tiled", ConvAlgorithm::kDirectTiled},
        {"naive", ConvAlgorithm::kDirectNaive},
        {"im2col", ConvAlgorithm::kIm2col},
        {"cudnn", ConvAlgorithm::kCudnnDirect},
        {"winograd", ConvAlgorithm::kWinogradFused},
        {"phased", ConvAlgorithm::kWinogradPhased}};
    const auto it = algos.find(algo_name);
    CB_CHECK_MSG(it != algos.end(), "unknown algorithm '" << algo_name << "'");
    CB_CHECK_MSG(algorithm_supports(it->second, s),
                 to_string(it->second) << " does not support "
                                       << s.to_string());
    const ConvConfig cfg =
        it->second == ConvAlgorithm::kWinogradFused
            ? default_winograd_config(s, 2, gpu.spec())
            : default_tiled_config(s, gpu.spec());
    ConvResult r = run_conv(gpu, it->second, p.input, p.weights, s, cfg);
    stats = r.stats;
    out = std::move(r.output);
  }
  // Verify against the reference oracle.
  const Tensor4<float> expect = conv2d_ref(p.input, p.weights, s);
  const bool ok = allclose(expect, out, 1e-3, 1e-3);
  std::printf("%s on %s (%s)\n", algo_name.c_str(), gpu.spec().name.c_str(),
              s.to_string().c_str());
  std::printf("  correct:   %s\n", ok ? "yes" : "NO  <-- bug!");
  std::printf("  sim time:  %.3f us\n", stats.sim_time * 1e6);
  std::printf("  GFlops:    %.0f\n", stats.gflops());
  // Exact Thm 4.12 can be vacuous (zero) at small scales; fall back to the
  // leading term so the ratio stays informative.
  const double S = static_cast<double>(gpu.spec().smem_floats());
  const double bound = std::max(direct_conv_lower_bound(s, S),
                                direct_conv_lower_bound_leading(s, S));
  std::printf("  I/O:       %.3f MB (%.1fx the Thm 4.12 bound)\n",
              static_cast<double>(stats.bytes_total()) / 1e6,
              static_cast<double>(stats.bytes_total()) / 4.0 / bound);
  return ok ? 0 : 1;
}

int cmd_tune(const Args& a) {
  const ConvShape s = shape_from(a);
  SimGpu gpu(spec_by_name(a.gets("machine", "v100")));
  AutotuneOptions opts;
  opts.budget = static_cast<int>(a.geti("budget", 64));
  opts.winograd = a.geti("winograd", 0) != 0;
  opts.seed = static_cast<std::uint64_t>(a.geti("seed", 1));
  opts.workers = static_cast<int>(a.geti("workers", 0));
  opts.tuner = a.gets("tuner", "ate");
  opts.checkpoint = a.gets("checkpoint", "");
  opts.resume = a.geti("resume", 0) != 0;

  const std::string cache_path = a.gets("cache", "");
  const std::string key =
      TuneCache::make_key(gpu.spec(), s, opts.winograd, opts.e);
  TuneCache cache;
  if (!cache_path.empty()) {
    try {
      cache = TuneCache::load(cache_path);
      // A resume continues its checkpoint even when the cache already has
      // an answer (the search may still improve on the cached one).
      if (const auto hit = cache.get(key); hit && !opts.resume) {
        std::printf("cache hit: %s -> %.0f GFlops (%s)\n", key.c_str(),
                    hit->gflops, hit->config.to_string().c_str());
        return 0;
      }
    } catch (const Error&) {
      // no cache file yet — will create one below
    }
  }

  const AutotuneOutcome outcome = autotune_conv(gpu, s, opts);
  if (outcome.resumed_from_trials > 0)
    std::printf("resumed from %s at trial %d\n", opts.checkpoint.c_str(),
                outcome.resumed_from_trials);
  std::printf("domain: %llu configurations; best after %zu trials (%s):\n",
              static_cast<unsigned long long>(outcome.domain.size()),
              outcome.result.history.size(), opts.tuner.c_str());
  std::printf("  %s -> %.0f GFlops (converged at trial %d)\n",
              outcome.result.best.to_string().c_str(), outcome.best_gflops,
              outcome.result.trials_to_converge());
  for (const auto& [stat, value] : outcome.tuner_stats)
    std::printf("  %s: %.0f\n", stat.c_str(), value);
  if (outcome.proven_optimal)
    std::printf("  certified optimal: every unmeasured configuration was "
                "pruned by an admissible bound\n");
  if (!cache_path.empty()) {
    cache.put(key, {outcome.result.best, outcome.best_gflops});
    cache.save(cache_path);
    std::printf("saved to %s\n", cache_path.c_str());
  }
  return 0;
}

std::vector<ConvLayer> model_by_name(const std::string& name,
                                     std::int64_t batch) {
  auto lower = [](const std::string& s) {
    std::string out;
    for (char c : s)
      if (c != '-' && c != '_')
        out += static_cast<char>(std::tolower(c));
    return out;
  };
  const std::string want = lower(name);
  auto zoo = model_zoo(batch);
  zoo.emplace_back("MobileNet-v1", mobilenet_v1(batch));
  for (auto& [zoo_name, layers] : zoo) {
    const std::string have = lower(zoo_name);
    if (have == want || have.rfind(want, 0) == 0) return std::move(layers);
  }
  CB_CHECK_MSG(false, "unknown model '" << name
                                        << "' (squeezenet|vgg-19|resnet-18|"
                                           "resnet-34|inception-v3|mobilenet)");
  return {};
}

PlannerOptions planner_options_from(const Args& a) {
  PlannerOptions opts;
  const std::string mode = a.gets("mode", "analytic");
  if (mode == "analytic") {
    opts.mode = PlanMode::kAnalytic;
  } else if (mode == "measured") {
    opts.mode = PlanMode::kMeasured;
  } else if (mode == "tuned") {
    opts.mode = PlanMode::kTuned;
  } else {
    CB_CHECK_MSG(false, "unknown mode '" << mode
                                         << "' (analytic|measured|tuned)");
  }
  const std::string set = a.gets("set", "ours");
  CB_CHECK_MSG(set == "ours" || set == "baseline",
               "unknown candidate set '" << set << "' (ours|baseline)");
  opts.candidates =
      set == "ours" ? CandidateSet::kOurs : CandidateSet::kBaseline;
  opts.tune_budget = static_cast<int>(a.geti("budget", 32));
  opts.seed = static_cast<std::uint64_t>(a.geti("seed", 42));
  opts.workers = static_cast<int>(a.geti("workers", 0));
  return opts;
}

int cmd_plan(const Args& a) {
  SimGpu gpu(spec_by_name(a.gets("machine", "v100")));
  const PlannerOptions opts = planner_options_from(a);

  const std::string cache_path = a.gets("cache", "");
  TuneCache cache;
  if (!cache_path.empty()) {
    try {
      cache = TuneCache::load(cache_path);
    } catch (const Error&) {
      // no cache file yet — tuned planning will create one below
    }
  }
  Planner planner(&cache);

  auto mb = [](double elems) { return elems * 4e-6; };
  const std::string model_name = a.gets("model", "");
  if (!model_name.empty()) {
    const auto layers = model_by_name(model_name, a.geti("batch", 1));
    Table t({"layer", "shape", "algorithm", "config", "pred I/O MB",
             "bound MB", "ratio"});
    double total_io = 0, total_pred_s = 0;
    for (const auto& layer : layers) {
      const ConvPlan p = planner.plan(gpu, layer.shape, opts);
      t.add_row({layer.name, layer.shape.to_string(), p.label(),
                 p.config.to_string(), Table::fmt(mb(p.predicted_io_elems), 3),
                 Table::fmt(mb(p.lower_bound_elems), 3),
                 Table::fmt(p.bound_ratio(), 2)});
      total_io += p.predicted_io_elems;
      total_pred_s += p.predicted_seconds;
    }
    std::printf("%s on %s (%s planning)\n", model_name.c_str(),
                gpu.spec().name.c_str(), a.gets("mode", "analytic").c_str());
    std::printf("%s", t.to_string().c_str());
    std::printf("total predicted I/O: %.2f MB   total %s time: %.3f ms\n",
                mb(total_io),
                opts.mode == PlanMode::kAnalytic ? "roofline" : "measured",
                total_pred_s * 1e3);
  } else {
    const ConvShape s = shape_from(a);
    const auto cands = planner.enumerate(gpu, s, opts);
    std::printf("candidates for %s on %s (best first):\n",
                s.to_string().c_str(), gpu.spec().name.c_str());
    Table t({"algorithm", "config", "pred I/O MB", "bound MB", "ratio",
             opts.mode == PlanMode::kAnalytic ? "roofline ms" : "measured ms",
             "note"});
    for (std::size_t i = 0; i < cands.size(); ++i) {
      const auto& c = cands[i];
      t.add_row({plan_label(c.algorithm, c.e, c.tuned), c.config.to_string(),
                 Table::fmt(mb(c.predicted_io_elems), 3),
                 Table::fmt(mb(c.lower_bound_elems), 3),
                 Table::fmt(c.lower_bound_elems > 0
                                ? c.predicted_io_elems / c.lower_bound_elems
                                : 0.0,
                            2),
                 Table::fmt(c.predicted_seconds * 1e3, 4),
                 c.infeasible ? "infeasible"
                              : (i == 0 ? "<- plan" : "")});
    }
    std::printf("%s", t.to_string().c_str());
  }

  if (!cache_path.empty() && opts.mode == PlanMode::kTuned) {
    cache.save(cache_path);
    std::printf("tune cache saved to %s\n", cache_path.c_str());
  }
  return 0;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// --trace-out turns tracing on; must run before the load starts (events
/// are only recorded while enabled).
void maybe_enable_tracing(const Args& a) {
  if (!a.gets("trace-out", "").empty()) ObsRegistry::set_enabled(true);
}

/// Writes the Chrome trace (--trace-out) and/or the Prometheus text
/// exposition of `s` (--metrics-out) after the load completes.
void dump_observability(const Args& a, const StatsSnapshot& s,
                        const std::string& job) {
  const std::string trace_path = a.gets("trace-out", "");
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    CB_CHECK_MSG(out.good(), "cannot open --trace-out " << trace_path);
    ObsRegistry::global().dump_chrome_trace(out);
    std::printf("trace written to %s (load in https://ui.perfetto.dev)\n",
                trace_path.c_str());
  }
  const std::string metrics_path = a.gets("metrics-out", "");
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    CB_CHECK_MSG(out.good(), "cannot open --metrics-out " << metrics_path);
    publish_snapshot(ObsRegistry::global(), "job=\"" + job + "\"", s);
    ObsRegistry::global().dump_metrics_text(out);
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }
}

int cmd_serve(const Args& a) {
  ServedModelOptions scale;
  scale.max_layers = static_cast<std::size_t>(a.geti("layers", 3));
  scale.channel_cap = a.geti("chan-cap", 16);
  scale.spatial_cap = a.geti("spatial-cap", 28);

  std::vector<ServedModel> models;
  for (const std::string& name :
       split_csv(a.gets("models", "squeezenet,resnet-18")))
    models.push_back(
        make_served_model(name, model_by_name(name, 1), scale));

  ServerOptions opts;
  opts.machine = spec_by_name(a.gets("machine", "v100"));
  opts.workers = static_cast<int>(a.geti("serve-workers", 2));
  opts.replicas = static_cast<int>(a.geti("replicas", 1));
  opts.max_queue = static_cast<std::size_t>(a.geti("queue", 256));
  opts.shards = static_cast<std::size_t>(a.geti("shards", 4));
  opts.max_delay = std::chrono::microseconds(a.geti("delay-us", 2000));
  opts.force_bucket = a.geti("bucket", 0);
  opts.policy.max_bucket = a.geti("max-bucket", 8);
  const std::string mode = a.gets("mode", "measured");
  CB_CHECK_MSG(mode == "measured" || mode == "tuned",
               "serve planning mode must be measured|tuned");
  opts.plan_mode = mode == "tuned" ? PlanMode::kTuned : PlanMode::kMeasured;
  opts.tune_budget = static_cast<int>(a.geti("budget", 16));

  maybe_enable_tracing(a);
  InferenceServer server(models, opts);
  WallTimer warm_timer;
  server.start();
  std::printf("started: %zu models on %s, %d workers, warmup %.2fs "
              "(planning + workspace warm; serving does neither)\n\n",
              models.size(), opts.machine.name.c_str(), opts.workers,
              warm_timer.seconds());

  Table buckets({"model", "bucket", "pred us/req by bucket",
                 "batch us at chosen"});
  for (const auto& m : models) {
    const BucketChoice& c = server.bucket_choice(m.name);
    std::string curve;
    double chosen_batch_us = 0;
    for (const auto& s : c.scores) {
      if (!curve.empty()) curve += "  ";
      curve += std::to_string(s.bucket) + ":" +
               Table::fmt(s.predicted_seconds_per_request * 1e6, 1) +
               (s.feasible ? "" : "!");
      if (s.bucket == c.bucket) chosen_batch_us = s.predicted_batch_seconds;
    }
    buckets.add_row({m.name, std::to_string(c.bucket), curve,
                     Table::fmt(chosen_batch_us * 1e6, 1)});
  }
  std::printf("%s\n", buckets.to_string().c_str());

  // --producers is the contention knob for the sharded front door: it
  // overrides --clients as the number of submitting threads.
  const int clients =
      static_cast<int>(a.geti("producers", a.geti("clients", 4)));
  const int per_client = static_cast<int>(a.geti("requests", 16));
  WallTimer load_timer;
  // Failures are counted, never thrown: an exception escaping a client
  // thread would std::terminate the whole benchmark.
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int i = 0; i < per_client; ++i) {
        const ServedModel& m = models[(c + i) % models.size()];
        const InferResponse r =
            server
                .submit({m.name, make_request_input(m, 7000u * c + i)})
                .get();
        if (r.status != ServeStatus::kOk) {
          failures.fetch_add(1, std::memory_order_relaxed);
          std::fprintf(stderr, "request failed: %s %s\n",
                       to_string(r.status), r.error.c_str());
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall = load_timer.seconds();
  const StatsSnapshot s = server.stats();
  server.stop();

  std::printf("closed loop: %d clients x %d requests in %.2fs\n", clients,
              per_client, wall);
  Table t({"metric", "value"});
  t.add_row({"completed", std::to_string(s.completed)});
  t.add_row({"micro-batches", std::to_string(s.batches)});
  t.add_row({"mean batch size", Table::fmt(s.mean_batch_size, 2)});
  t.add_row({"throughput (wall)",
             Table::fmt(static_cast<double>(s.completed) / wall, 1) +
                 " req/s"});
  t.add_row({"throughput (modelled accel)",
             Table::fmt(s.modelled_rps, 0) + " req/s"});
  t.add_row({"latency p50 / p95 / p99 (ms)",
             Table::fmt(s.latency_p50 * 1e3, 2) + " / " +
                 Table::fmt(s.latency_p95 * 1e3, 2) + " / " +
                 Table::fmt(s.latency_p99 * 1e3, 2)});
  // Stage decomposition of the same completed requests: the three stages
  // sum to the end-to-end latency per request.
  t.add_row({"stage p99: queue / batch / exec (ms)",
             Table::fmt(s.queue_wait_p99 * 1e3, 2) + " / " +
                 Table::fmt(s.batch_delay_p99 * 1e3, 2) + " / " +
                 Table::fmt(s.exec_p99 * 1e3, 2)});
  t.add_row({"shed: full / quota / shutdown / expired",
             std::to_string(s.rejected) + " / " +
                 std::to_string(s.quota_rejected) + " / " +
                 std::to_string(s.shutdown_rejected) + " / " +
                 std::to_string(s.expired)});
  t.add_row({"max queue depth", std::to_string(s.max_queue_depth)});
  std::string shard_hwm;
  for (std::size_t i = 0; i < s.shard_max_depths.size(); ++i)
    shard_hwm += (i ? " " : "") + std::to_string(s.shard_max_depths[i]);
  t.add_row({"shard depth high-water marks", shard_hwm});
  t.add_row({"shard imbalance (max/mean)",
             Table::fmt(s.shard_imbalance, 2)});
  t.add_row({"plan-cache misses after warm",
             std::to_string(s.plan_misses_after_warm)});
  t.add_row({"workspace",
             std::to_string(s.workspace_buffers) + " buffers, " +
                 Table::fmt(static_cast<double>(s.workspace_bytes) / 1e6, 2) +
                 " MB"});
  std::printf("%s", t.to_string().c_str());

  std::string hist = "batch-size histogram:";
  for (const auto& [size, count] : s.batch_histogram)
    hist += " " + std::to_string(size) + "x" + std::to_string(count);
  std::printf("%s\n", hist.c_str());
  dump_observability(a, s, "serve");
  if (failures.load(std::memory_order_relaxed) > 0)
    std::fprintf(stderr, "%d requests failed\n", failures.load(std::memory_order_relaxed));
  return failures.load(std::memory_order_relaxed) == 0 && s.plan_misses_after_warm == 0 ? 0 : 1;
}

int cmd_cluster(const Args& a) {
  ServedModelOptions scale;
  scale.max_layers = static_cast<std::size_t>(a.geti("layers", 3));
  scale.channel_cap = a.geti("chan-cap", 16);
  scale.spatial_cap = a.geti("spatial-cap", 28);

  std::vector<ServedModel> models;
  for (const std::string& name :
       split_csv(a.gets("models", "squeezenet,resnet-18")))
    models.push_back(
        make_served_model(name, model_by_name(name, 1), scale));

  ClusterOptions opts;
  for (const std::string& spec : split_csv(a.gets("devices", "v100,hbm,dense"))) {
    DeviceConfig d;
    d.spec = spec_by_name(spec);
    d.workers = static_cast<int>(a.geti("dev-workers", 2));
    d.replicas = static_cast<int>(a.geti("replicas", 0));
    d.max_pending_groups = static_cast<int>(a.geti("pending", 0));
    opts.devices.push_back(std::move(d));
  }
  opts.policy = route_policy_by_name(a.gets("policy", "bound"));
  opts.max_queue = static_cast<std::size_t>(a.geti("queue", 1024));
  opts.shards = static_cast<std::size_t>(a.geti("shards", 4));
  opts.max_delay = std::chrono::microseconds(a.geti("delay-us", 2000));
  opts.force_bucket = a.geti("bucket", 0);
  opts.batch_policy.max_bucket = a.geti("max-bucket", 8);
  const std::string mode = a.gets("mode", "measured");
  CB_CHECK_MSG(mode == "measured" || mode == "tuned",
               "cluster planning mode must be measured|tuned");
  opts.plan_mode = mode == "tuned" ? PlanMode::kTuned : PlanMode::kMeasured;
  opts.tune_budget = static_cast<int>(a.geti("budget", 16));

  // Tenant classes: "name:budget_ms:weight" triples; trailing fields are
  // optional (budget 0 = no latency budget, weight defaults to 1).
  for (const std::string& spec : split_csv(a.gets("classes", ""))) {
    TenantClass c;
    const std::size_t colon1 = spec.find(':');
    c.name = spec.substr(0, colon1);
    if (colon1 != std::string::npos) {
      const std::size_t colon2 = spec.find(':', colon1 + 1);
      c.latency_budget_seconds =
          std::stod(spec.substr(colon1 + 1, colon2 - colon1 - 1)) / 1e3;
      if (colon2 != std::string::npos)
        c.quota_weight = std::stod(spec.substr(colon2 + 1));
    }
    opts.classes.push_back(std::move(c));
  }
  opts.admission_congestion =
      static_cast<double>(a.geti("congestion", 50)) / 100.0;
  const bool tenanted = !opts.classes.empty();

  const std::int64_t kill = a.geti("kill", -1);
  const std::string revive = a.gets("revive", "");
  CB_CHECK_MSG(revive.empty() || revive == "warm" || revive == "cold",
               "--revive must be warm|cold");
  CB_CHECK_MSG(revive.empty() || kill >= 0, "--revive needs --kill");

  maybe_enable_tracing(a);
  ClusterServer cluster(models, opts);
  WallTimer warm_timer;
  cluster.start();
  std::printf("started: %zu models on %zu devices (%s routing), warmup "
              "%.2fs (planning + workspace warm; serving does neither)\n\n",
              models.size(), cluster.num_devices(),
              to_string(opts.policy), warm_timer.seconds());

  // The router's cost table: predicted per-request time of each model's
  // chosen bucket on each device — what placement decisions read.
  Table costs({"device", "model", "bucket", "pred us/req"});
  for (std::size_t i = 0; i < cluster.num_devices(); ++i) {
    for (const auto& m : models) {
      const BucketChoice& c = cluster.device(i).engine().bucket_choice(m.name);
      double per_req = 0;
      for (const auto& s : c.scores)
        if (s.chosen) per_req = s.predicted_seconds_per_request;
      costs.add_row({cluster.device(i).name(), m.name,
                     std::to_string(c.bucket), Table::fmt(per_req * 1e6, 2)});
    }
  }
  std::printf("%s\n", costs.to_string().c_str());

  const int clients = static_cast<int>(a.geti("clients", 4));
  const int per_client = static_cast<int>(a.geti("requests", 16));
  WallTimer load_timer;
  // Failures are counted, never thrown: an exception escaping a client
  // thread would std::terminate the whole benchmark. Under tenancy the
  // quota/backpressure/budget outcomes are the feature working (explicit
  // load shedding), so they are tallied separately, not as failures.
  std::atomic<int> failures{0};
  std::atomic<int> shed{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int i = 0; i < per_client; ++i) {
        const ServedModel& m = models[(c + i) % models.size()];
        InferRequest req{m.name, make_request_input(m, 7000u * c + i)};
        if (tenanted)
          req.tenant =
              opts.classes[static_cast<std::size_t>(c) % opts.classes.size()]
                  .name;
        const InferResponse r = cluster.submit(std::move(req)).get();
        if (r.status == ServeStatus::kOk) continue;
        const bool is_shed = tenanted &&
                             (r.status == ServeStatus::kQuotaExceeded ||
                              r.status == ServeStatus::kRejected ||
                              r.status == ServeStatus::kDeadlineExceeded);
        if (is_shed) {
          shed.fetch_add(1, std::memory_order_relaxed);
        } else {
          failures.fetch_add(1, std::memory_order_relaxed);
          std::fprintf(stderr, "request failed: %s %s\n",
                       to_string(r.status), r.error.c_str());
        }
      }
    });
  }
  // Chaos, driven from the main thread while the clients hammer the fleet:
  // kill mid-load, optionally hot-join the device back.
  std::size_t chaos_requeued = 0;
  if (kill >= 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(a.geti("kill-after-ms", 5)));
    chaos_requeued = cluster.fail_device(static_cast<std::size_t>(kill));
    if (!revive.empty()) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(a.geti("kill-after-ms", 5)));
      cluster.revive_device(
          static_cast<std::size_t>(kill),
          revive == "warm" ? ReviveMode::kWarm : ReviveMode::kCold);
    }
  }
  for (auto& t : threads) t.join();
  const double wall = load_timer.seconds();
  const ClusterSnapshot s = cluster.stats();
  cluster.stop();

  std::printf("closed loop: %d clients x %d requests in %.2fs\n", clients,
              per_client, wall);
  Table devices({"device", "alive", "placed", "batches", "mean batch",
                 "completed", "modelled req/s", "plan misses"});
  std::uint64_t plan_misses = 0;
  for (const DeviceSnapshot& d : s.devices) {
    devices.add_row({d.name, d.alive ? "yes" : "DEAD",
                     std::to_string(d.placements),
                     std::to_string(d.stats.batches),
                     Table::fmt(d.stats.mean_batch_size, 2),
                     std::to_string(d.stats.completed),
                     Table::fmt(d.stats.modelled_rps, 0),
                     std::to_string(d.stats.plan_misses_after_warm)});
    plan_misses += d.stats.plan_misses_after_warm;
  }
  std::printf("%s\n", devices.to_string().c_str());

  if (tenanted && !s.fleet.classes.empty()) {
    Table classes({"class", "submitted", "completed", "quota-rej", "rejected",
                   "shutdown", "expired", "p50 / p99 ms"});
    for (const auto& [name, c] : s.fleet.classes)
      classes.add_row({name, std::to_string(c.submitted),
                       std::to_string(c.completed),
                       std::to_string(c.quota_rejected),
                       std::to_string(c.rejected),
                       std::to_string(c.shutdown_rejected),
                       std::to_string(c.expired),
                       Table::fmt(c.latency_p50 * 1e3, 2) + " / " +
                           Table::fmt(c.latency_p99 * 1e3, 2)});
    std::printf("%s\n", classes.to_string().c_str());
  }

  Table t({"metric", "value"});
  t.add_row({"completed", std::to_string(s.fleet.completed)});
  t.add_row({"micro-batches", std::to_string(s.fleet.batches)});
  t.add_row({"throughput (wall)",
             Table::fmt(static_cast<double>(s.fleet.completed) / wall, 1) +
                 " req/s"});
  t.add_row({"throughput (modelled fleet)",
             Table::fmt(s.fleet.modelled_rps, 0) + " req/s"});
  t.add_row({"stolen groups (work stealing)",
             std::to_string(s.stolen_groups)});
  t.add_row({"latency p50 / p95 / p99 (ms)",
             Table::fmt(s.fleet.latency_p50 * 1e3, 2) + " / " +
                 Table::fmt(s.fleet.latency_p95 * 1e3, 2) + " / " +
                 Table::fmt(s.fleet.latency_p99 * 1e3, 2)});
  t.add_row({"stage p99: queue / batch / exec (ms)",
             Table::fmt(s.fleet.queue_wait_p99 * 1e3, 2) + " / " +
                 Table::fmt(s.fleet.batch_delay_p99 * 1e3, 2) + " / " +
                 Table::fmt(s.fleet.exec_p99 * 1e3, 2)});
  t.add_row({"shed: full / quota / shutdown / expired",
             std::to_string(s.fleet.rejected) + " / " +
                 std::to_string(s.fleet.quota_rejected) + " / " +
                 std::to_string(s.fleet.shutdown_rejected) + " / " +
                 std::to_string(s.fleet.expired)});
  t.add_row({"max queue depth", std::to_string(s.fleet.max_queue_depth)});
  t.add_row({"shard imbalance (max/mean)",
             Table::fmt(s.fleet.shard_imbalance, 2)});
  if (kill >= 0)
    t.add_row({"chaos: failures / revives / requeued",
               std::to_string(s.device_failures) + " / " +
                   std::to_string(s.device_revives) + " / " +
                   std::to_string(s.requeued_requests) + " (" +
                   std::to_string(chaos_requeued) + " at kill)"});
  t.add_row({"plan-cache misses after warm (fleet)",
             std::to_string(plan_misses)});
  std::printf("%s", t.to_string().c_str());
  dump_observability(a, s.fleet, "cluster");

  if (shed.load(std::memory_order_relaxed) > 0)
    std::printf("%d requests shed (quota / backpressure / budget)\n",
                shed.load(std::memory_order_relaxed));
  if (failures.load(std::memory_order_relaxed) > 0)
    std::fprintf(stderr, "%d requests failed\n", failures.load(std::memory_order_relaxed));
  return failures.load(std::memory_order_relaxed) == 0 && plan_misses == 0 ? 0 : 1;
}

int cmd_models(const Args& a) {
  SimGpu gpu(spec_by_name(a.gets("machine", "v100")));
  Table t({"model", "conv GFLOP", "baseline (ms)", "ours (ms)", "speedup"});
  auto zoo = model_zoo(a.geti("batch", 1));
  zoo.emplace_back("MobileNet-v1", mobilenet_v1(a.geti("batch", 1)));
  for (const auto& [name, layers] : zoo) {
    const ModelReport base =
        run_model(gpu, name, layers, ModelStrategy::kBaseline);
    const ModelReport ours =
        run_model(gpu, name, layers, ModelStrategy::kOursDefault);
    t.add_row({name,
               Table::fmt(static_cast<double>(model_flops(layers)) / 1e9, 2),
               Table::fmt(base.total_seconds * 1e3, 2),
               Table::fmt(ours.total_seconds * 1e3, 2),
               Table::fmt(base.total_seconds / ours.total_seconds, 2)});
  }
  std::printf("%s", t.to_string().c_str());
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: convbound-cli <bound|run|tune|plan|models|serve|"
               "cluster> [--flag value]...\n"
               "  see the header comment of tools/convbound_cli.cpp\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    const Args a = parse(argc, argv, 2);
    if (cmd == "bound") return cmd_bound(a);
    if (cmd == "run") return cmd_run(a);
    if (cmd == "tune") return cmd_tune(a);
    if (cmd == "plan") return cmd_plan(a);
    if (cmd == "models") return cmd_models(a);
    if (cmd == "serve") return cmd_serve(a);
    if (cmd == "cluster") return cmd_cluster(a);
    return usage();
  } catch (const convbound::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
