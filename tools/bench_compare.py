#!/usr/bin/env python3
"""CI perf-regression gate over the BENCH_*.json trajectory files.

Compares a fresh smoke-scale bench run against the committed baselines in
bench/baselines/, metric by metric, as declared in the baselines' gates.json:

    {
      "default_tolerance": 0.10,
      "gates": [
        {"file": "BENCH_x.json", "metric": "m", "direction": "higher"},
        {"file": "BENCH_x.json", "metric": "n", "direction": "lower",
         "absolute_max": 0, "tolerance": 0.35, "note": "why this band"}
      ]
    }

Semantics per gate:
  direction "higher"  fresh >= baseline * (1 - tolerance)   else REGRESSION
  direction "lower"   fresh <= baseline * (1 + tolerance)   else REGRESSION
  absolute_max        additionally: fresh <= absolute_max   else REGRESSION
  absolute_min        additionally: fresh >= absolute_min   else REGRESSION

Improvements beyond the tolerance band are reported (so baselines get
refreshed — see docs/ci.md) but never fail the gate. Exit code: 0 when every
gate holds, 1 on any regression, 2 on bad usage/missing files.

Usage:
    python3 tools/bench_compare.py \
        --baseline-dir bench/baselines --fresh-dir bench-json
"""

import argparse
import json
import os
import sys


def load_json(path):
    try:
        with open(path) as f:
            return json.load(f)
    except FileNotFoundError:
        print(f"bench_compare: missing {path}", file=sys.stderr)
        sys.exit(2)
    except json.JSONDecodeError as e:
        print(f"bench_compare: {path} is not valid JSON: {e}", file=sys.stderr)
        sys.exit(2)


def band_desc(gate, tol):
    """One-line description of a gate's acceptance band, for error reports.

    A collected error names a metric CI could not even compare; printing the
    band the metric was supposed to satisfy alongside it tells the reader
    what the gate *would* have checked without a round-trip to gates.json.
    """
    parts = [f"direction {gate.get('direction', 'higher')}",
             f"tolerance {tol:.0%}"]
    if "absolute_min" in gate:
        parts.append(f"absolute_min {gate['absolute_min']}")
    if "absolute_max" in gate:
        parts.append(f"absolute_max {gate['absolute_max']}")
    return ", ".join(parts)


def lookup(doc, metric, role, path, errors, band):
    """Returns the metric's value, or None after recording a clear error.

    Missing keys are *collected*, not fatal one at a time: a gates.json that
    names several metrics a bench no longer (or does not yet) emit reports
    every gap in one run instead of one KeyError-style bail per CI round.
    Each error carries the gate's band (see band_desc).
    """
    if metric not in doc:
        errors.append(
            f"metric '{metric}' not in {role} {path} "
            f"(top-level keys: {', '.join(sorted(doc)) or 'none'}) — the "
            "bench must emit it and the baseline must be refreshed "
            f"(docs/ci.md) [gate band: {band}]")
        return None
    v = doc[metric]
    if not isinstance(v, (int, float)) or isinstance(v, bool):
        errors.append(
            f"metric '{metric}' in {role} {path} is {type(v).__name__}, "
            f"not a number — gates compare scalar metrics only "
            f"[gate band: {band}]")
        return None
    return float(v)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline-dir", required=True,
                    help="directory with committed BENCH_*.json + gates.json")
    ap.add_argument("--fresh-dir", required=True,
                    help="directory with the fresh smoke-run BENCH_*.json")
    args = ap.parse_args()

    gates_path = os.path.join(args.baseline_dir, "gates.json")
    if not os.path.isfile(gates_path):
        print(f"bench_compare: no {gates_path}", file=sys.stderr)
        return 2
    config = load_json(gates_path)
    default_tol = float(config.get("default_tolerance", 0.10))
    gates = config.get("gates", [])
    if not gates:
        print("bench_compare: gates.json declares no gates", file=sys.stderr)
        return 2

    regressions = 0
    improvements = 0
    cache = {}
    rows = []
    errors = []
    for g in gates:
        fname, metric = g.get("file"), g.get("metric")
        if not fname or not metric:
            errors.append(f"gate entry needs 'file' and 'metric': {g}")
            continue
        direction = g.get("direction", "higher")
        tol = float(g.get("tolerance", default_tol))
        band = band_desc(g, tol)
        missing_file = False
        for role, d in (("base", args.baseline_dir), ("fresh", args.fresh_dir)):
            key = (role, fname)
            if key not in cache:
                path = os.path.join(d, fname)
                if os.path.isfile(path):
                    cache[key] = load_json(path)
                else:
                    errors.append(
                        f"missing {role} file {path} (gated metric "
                        f"'{metric}') [gate band: {band}]")
                    cache[key] = None
            if cache[key] is None:
                missing_file = True
        if missing_file:
            continue
        base = lookup(cache[("base", fname)], metric, "baseline", fname,
                      errors, band)
        fresh = lookup(cache[("fresh", fname)], metric, "fresh", fname,
                       errors, band)
        if base is None or fresh is None:
            continue

        status = "ok"
        if direction == "higher":
            if fresh < base * (1.0 - tol):
                status = "REGRESSION"
            elif fresh > base * (1.0 + tol):
                status = "improved"
        elif direction == "lower":
            if fresh > base * (1.0 + tol):
                status = "REGRESSION"
            elif fresh < base * (1.0 - tol):
                status = "improved"
        else:
            print(f"bench_compare: bad direction '{direction}'",
                  file=sys.stderr)
            return 2
        if "absolute_max" in g and fresh > float(g["absolute_max"]):
            status = "REGRESSION"
        if "absolute_min" in g and fresh < float(g["absolute_min"]):
            status = "REGRESSION"

        regressions += status == "REGRESSION"
        improvements += status == "improved"
        if base != 0:
            delta = (fresh / base - 1.0) * 100
        else:
            delta = 0.0 if fresh == 0 else float("inf")
        rows.append((fname, metric, direction, f"{base:.6g}", f"{fresh:.6g}",
                     f"{delta:+.1f}%", f"{tol:.0%}", status))

    widths = [max(len(r[i]) for r in rows + [tuple("file metric dir baseline "
              "fresh delta band status".split())]) for i in range(8)]
    header = ("file", "metric", "dir", "baseline", "fresh", "delta", "band",
              "status")
    for r in [header] + rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))

    if errors:
        print(f"\nbench_compare: {len(errors)} gate configuration "
              "error(s) — every gated metric must exist in both the "
              "baseline and the fresh run:", file=sys.stderr)
        for e in errors:
            print(f"  - {e}", file=sys.stderr)
        return 2
    if regressions:
        print(f"\nbench_compare: {regressions} gate(s) regressed beyond "
              "their tolerance band", file=sys.stderr)
        return 1
    if improvements:
        print(f"\nbench_compare: {improvements} metric(s) improved beyond "
              "the band — consider refreshing bench/baselines/ (docs/ci.md)")
    print("bench_compare: all gates pass")
    return 0


if __name__ == "__main__":
    sys.exit(main())
