#include "convbound/convbound.hpp"

#include <algorithm>

namespace convbound {

ConvResult conv2d(SimGpu& gpu, const Tensor4<float>& input,
                  const Tensor4<float>& weights, const ConvShape& s) {
  // One-shot convenience path: plan (measured, our dataflows) and execute.
  // Callers with repeated traffic should hold their own Planner/Executor to
  // amortise planning and reuse the workspace arena.
  Planner planner;
  const ConvPlan plan = planner.plan(gpu, s, PlannerOptions{});
  ConvResult res{Tensor4<float>(s.batch, s.cout, s.hout(), s.wout()), {}};
  res.stats = run_plan(gpu, plan, input, weights, res.output);
  return res;
}

double conv_lower_bound(const ConvShape& s, double S) {
  double q = direct_conv_lower_bound(s, S);
  if (algorithm_supports(ConvAlgorithm::kWinogradFused, s)) {
    q = std::min(q, winograd_lower_bound(s, 2, S));
  }
  return q;
}

}  // namespace convbound
