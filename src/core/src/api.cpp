#include "convbound/convbound.hpp"

#include <algorithm>

namespace convbound {

ConvResult conv2d(SimGpu& gpu, const Tensor4<float>& input,
                  const Tensor4<float>& weights, const ConvShape& s) {
  const ConvConfig dc = default_tiled_config(s, gpu.spec());
  ConvResult direct =
      run_conv(gpu, ConvAlgorithm::kDirectTiled, input, weights, s, dc);
  if (!algorithm_supports(ConvAlgorithm::kWinogradFused, s) || s.kh != 3)
    return direct;
  const ConvConfig wc = default_winograd_config(s, 2, gpu.spec());
  ConvResult wino =
      run_conv(gpu, ConvAlgorithm::kWinogradFused, input, weights, s, wc, 2);
  return wino.stats.sim_time < direct.stats.sim_time ? std::move(wino)
                                                     : std::move(direct);
}

double conv_lower_bound(const ConvShape& s, double S) {
  double q = direct_conv_lower_bound(s, S);
  if (algorithm_supports(ConvAlgorithm::kWinogradFused, s)) {
    q = std::min(q, winograd_lower_bound(s, 2, S));
  }
  return q;
}

}  // namespace convbound
