// convbound — I/O lower bounds and I/O-optimal auto-tuned convolutions.
//
// Umbrella header: reproduction of "I/O Lower Bounds for Auto-tuning of
// Convolutions in CNNs" (Zhang, Xiao, Tan — PPoPP 2021).
//
// Quickstart:
//   SimGpu gpu(MachineSpec::v100());
//   ConvShape s{.batch=1, .cin=256, .hin=56, .win=56, .cout=128};
//   auto p = make_problem(s, /*seed=*/1);
//   auto r = conv2d(gpu, p.input, p.weights, s);           // best algorithm
//   double q_min = direct_conv_lower_bound(s, gpu.spec().smem_floats());
#pragma once

#include "convbound/bounds/composite.hpp"
#include "convbound/bounds/conv_bounds.hpp"
#include "convbound/bounds/matmul_bounds.hpp"
#include "convbound/cluster/cluster.hpp"
#include "convbound/conv/algorithms.hpp"
#include "convbound/conv/reference.hpp"
#include "convbound/fft/fft.hpp"
#include "convbound/fft/fft_conv.hpp"
#include "convbound/gemm/gemm.hpp"
#include "convbound/machine/machine_spec.hpp"
#include "convbound/machine/sim_gpu.hpp"
#include "convbound/ml/gbt.hpp"
#include "convbound/nets/inference.hpp"
#include "convbound/obs/trace.hpp"
#include "convbound/nets/models.hpp"
#include "convbound/pebble/dag.hpp"
#include "convbound/pebble/game.hpp"
#include "convbound/pebble/generators.hpp"
#include "convbound/plan/conv_plan.hpp"
#include "convbound/plan/executor.hpp"
#include "convbound/plan/planner.hpp"
#include "convbound/plan/workspace.hpp"
#include "convbound/serve/batch_policy.hpp"
#include "convbound/serve/model.hpp"
#include "convbound/serve/server.hpp"
#include "convbound/tensor/conv_shape.hpp"
#include "convbound/tensor/tensor.hpp"
#include "convbound/tune/engine.hpp"
#include "convbound/tune/tuners.hpp"
#include "convbound/util/rng.hpp"
#include "convbound/util/table.hpp"

namespace convbound {

/// Highest-level convenience: runs the best of our dataflows for `s` with
/// analytically derived default configurations (no tuning pass) and returns
/// the output plus execution statistics.
ConvResult conv2d(SimGpu& gpu, const Tensor4<float>& input,
                  const Tensor4<float>& weights, const ConvShape& s);

/// I/O lower bound (elements) for the better applicable algorithm on a
/// machine with fast memory S (elements): min over direct (Thm 4.12) and,
/// when applicable, Winograd with e = 2 (Thm 4.20).
double conv_lower_bound(const ConvShape& s, double S);

}  // namespace convbound
