// Classical Hong-Kung style matrix-multiplication I/O bound, used purely as
// a cross-check of the pebble-game engine against known theory.
#pragma once

#include <cstdint>

namespace convbound {

/// Lower bound on Q (elements) for C = A*B with A m-by-k, B k-by-n on a
/// machine with fast memory S, in the classical Hong-Kung constant
/// Q >= m*k*n / (2*sqrt(2)*sqrt(S)).
double matmul_lower_bound(std::int64_t m, std::int64_t k, std::int64_t n,
                          double S);

/// I/O of the canonical square-tiled schedule (tiles of sqrt(S/3)):
/// ~ 2*m*k*n/sqrt(S/3) + output writes. Upper bound for sandwiching tests.
double matmul_tiled_io(std::int64_t m, std::int64_t k, std::int64_t n,
                       double S);

}  // namespace convbound
