// General I/O lower-bound theory for composite algorithms (Section 4.1).
//
// A composite algorithm is a multi-step partition G_1..G_n of a DAG. Each
// step j contributes two maximum vertex-generation functions:
//   phi_j(k) — most vertices of U_j generable from k dominator inputs,
//   psi_j(k) — most vertices of the step's *output set* so generable.
// Theorem 4.5 bounds any S-partition class size by
//   T(S) = S + max_{sum k_j <= S} phi_1(k_1) + phi_2(k_2 + psi_1(k_1)) + ...
// and Theorem 4.6 turns that into the I/O bound Q >= S*(|V|/T(2S) - 1).
#pragma once

#include <functional>
#include <span>
#include <vector>

namespace convbound {

/// One step of a multi-step partition. Both callbacks must be monotone
/// non-decreasing (they are maxima over growing input sets).
struct SubComputation {
  std::function<double(double)> phi;
  std::function<double(double)> psi;
};

/// Evaluates T(S) of Equation (5) by maximising over the budget simplex
/// {k_1 + ... + k_n <= S} on a regular grid with `grid` points per axis.
/// Because every phi/psi is monotone, the optimum uses the whole budget, so
/// the last step receives the remaining budget exactly.
double composite_T(std::span<const SubComputation> steps, double S,
                   int grid = 96);

/// Theorem 4.6: Q >= S * (|V| / T(2S) - 1), where |V| counts the DAG's
/// internal + output vertices covered by the S-partition argument.
double composite_lower_bound(double num_vertices, double S,
                             std::span<const SubComputation> steps,
                             int grid = 96);

}  // namespace convbound
