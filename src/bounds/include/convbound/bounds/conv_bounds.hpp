// Closed-form I/O lower bounds and dataflow I/O predictions for the two
// convolution algorithms (Sections 4.2, 4.3, 5.2, 5.3).
//
// All quantities are in *elements* (values moved), matching the red-blue
// pebble game; multiply by sizeof(float) for bytes.
#pragma once

#include <cstdint>
#include <vector>

#include "convbound/bounds/composite.hpp"
#include "convbound/tensor/conv_shape.hpp"

namespace convbound {

// ---------------------------------------------------------------- direct --

/// |V_inter ∪ V_out| of the direct-convolution DAG (Lemma 4.8):
/// (2*Wker*Hker*Cin - 1) * Wout*Hout*Cout, per image; batched multiplies.
double direct_conv_dag_vertices(const ConvShape& s);

/// phi/psi of the direct convolution's two steps (Lemmas 4.9, 4.10), for use
/// with the composite evaluator. S is the fast-memory size in elements.
std::vector<SubComputation> direct_conv_steps(const ConvShape& s, double S);

/// T(S) <= 4*S*sqrt(R*S) + S - 1 (Lemma 4.11).
double direct_conv_T(const ConvShape& s, double S);

/// Theorem 4.12 in its exact proof form Q >= S*(|V|/T(2S) - 1).
double direct_conv_lower_bound(const ConvShape& s, double S);

/// Headline asymptotic form: Wker*Hker*Cin*Wout*Hout*Cout / (4*sqrt(2*R*S)).
double direct_conv_lower_bound_leading(const ConvShape& s, double S);

/// Equation (20): reads for the Section 5.2 dataflow with an x*y*z output
/// tile (x along H_out, y along W_out, z along C_out).
double direct_dataflow_reads(const ConvShape& s, std::int64_t x,
                             std::int64_t y, std::int64_t z);

/// Equation (21): total dataflow I/O with N_p processors sharing fast memory
/// S (each block uses S/N_p); picks the optimal tile internally.
double direct_dataflow_io(const ConvShape& s, double S, int np);

/// Minimum of Equation (20) over the tile box [1,x_max]x[1,y_max]x[1,z_max].
/// Rewriting (20) as reads = B*HWC_out*KKC_in*(1/(x*y) + 1/(R*z)) shows it
/// is strictly decreasing in each of x, y and z, so the box minimum sits at
/// the upper corner — an O(1) range query. Used by the branch-and-bound
/// tuner as an admissible per-subtree I/O floor.
double direct_dataflow_reads_min(const ConvShape& s, std::int64_t x_max,
                                 std::int64_t y_max, std::int64_t z_max);

// -------------------------------------------------------------- winograd --

/// |V_inter ∪ V_out| of the Winograd DAG (Lemma 4.14's exact count, not just
/// the O-form): per (tile, cout) F(e,r) instance, summed over the image.
double winograd_dag_vertices(const ConvShape& s, std::int64_t e);

/// phi/psi of the four Winograd steps (Lemmas 4.15-4.18).
std::vector<SubComputation> winograd_steps(const ConvShape& s, std::int64_t e,
                                           double S);

/// T(S) via the explicit inequality (18).
double winograd_T(const ConvShape& s, std::int64_t e, double S);

/// Theorem 4.20 in exact proof form Q >= S*(|V|/T(2S) - 1).
double winograd_lower_bound(const ConvShape& s, std::int64_t e, double S);

/// Headline form: Wout*Hout*Cout*Cin*(e+r-1)*r / (e*sqrt(S)).
double winograd_lower_bound_leading(const ConvShape& s, std::int64_t e,
                                    double S);

/// Equation (22): reads for the Section 5.3 dataflow with an x*y*z tile.
double winograd_dataflow_reads(const ConvShape& s, std::int64_t e,
                               std::int64_t x, std::int64_t y, std::int64_t z);

/// Total Winograd dataflow I/O with N_p processors (Section 5.3's choice
/// 2*(e+r-1)^2/e^2 * xyz ~= S/N_p).
double winograd_dataflow_io(const ConvShape& s, std::int64_t e, double S,
                            int np);

/// Minimum of Equation (22) over the tile box [1,x_max]x[1,y_max]x[1,z_max]:
/// reads = B*Cin*HWC_out*(1/z + r^2/(x*y)), strictly decreasing in each
/// coordinate, so again evaluated at the upper corner.
double winograd_dataflow_reads_min(const ConvShape& s, std::int64_t e,
                                   std::int64_t x_max, std::int64_t y_max,
                                   std::int64_t z_max);

// ---------------------------------------------------- optimality condition --

/// The paper's optimality condition x*y = R*z solved under a tile budget of
/// `budget` output elements: z = sqrt(budget/R), x*y = sqrt(budget*R),
/// clamped to the actual output dimensions.
struct OptimalTile {
  std::int64_t x = 1, y = 1, z = 1;
  std::int64_t elems() const { return x * y * z; }
};
OptimalTile optimal_output_tile(const ConvShape& s, double budget_elems);

/// Deviation from the optimality condition: |log(x*y / (R*z))|; zero when
/// the condition holds exactly. Used to rank tuner configurations.
double optimality_residual(const ConvShape& s, std::int64_t x, std::int64_t y,
                           std::int64_t z);

}  // namespace convbound
