#include "convbound/bounds/matmul_bounds.hpp"

#include <cmath>

#include "convbound/util/check.hpp"

namespace convbound {

double matmul_lower_bound(std::int64_t m, std::int64_t k, std::int64_t n,
                          double S) {
  CB_CHECK(m > 0 && k > 0 && n > 0 && S > 0);
  return static_cast<double>(m) * static_cast<double>(k) *
         static_cast<double>(n) / (2.0 * std::sqrt(2.0) * std::sqrt(S));
}

double matmul_tiled_io(std::int64_t m, std::int64_t k, std::int64_t n,
                       double S) {
  CB_CHECK(m > 0 && k > 0 && n > 0 && S > 3);
  const double t = std::sqrt(S / 3.0);
  return 2.0 * static_cast<double>(m) * static_cast<double>(k) *
             static_cast<double>(n) / t +
         static_cast<double>(m) * static_cast<double>(n);
}

}  // namespace convbound
