#include "convbound/bounds/conv_bounds.hpp"

#include <algorithm>
#include <cmath>

#include "convbound/util/check.hpp"
#include "convbound/util/math.hpp"

namespace convbound {

namespace {
double sq(double v) { return v * v; }
}  // namespace

// ---------------------------------------------------------------- direct --

double direct_conv_dag_vertices(const ConvShape& s) {
  s.validate();
  const double per_image =
      (2.0 * static_cast<double>(s.kh * s.kw * s.cin_per_group()) - 1.0) *
      static_cast<double>(s.hout() * s.wout() * s.cout);
  return per_image * static_cast<double>(s.batch);
}

std::vector<SubComputation> direct_conv_steps(const ConvShape& s, double S) {
  const double R = s.reuse();
  std::vector<SubComputation> steps(2);
  // Lemma 4.9: phi_1(h) = psi_1(h) = 2*S*sqrt(R*h).
  steps[0].phi = [R, S](double h) {
    return h <= 0 ? 0.0 : 2.0 * S * std::sqrt(R * h);
  };
  steps[0].psi = steps[0].phi;
  // Lemma 4.10: phi_2(h) = h - 1; step 2 has no output-set forwarding.
  steps[1].phi = [](double h) { return std::max(0.0, h - 1.0); };
  steps[1].psi = [](double) { return 0.0; };
  return steps;
}

double direct_conv_T(const ConvShape& s, double S) {
  const double R = s.reuse();
  return 4.0 * S * std::sqrt(R * S) + S - 1.0;
}

double direct_conv_lower_bound(const ConvShape& s, double S) {
  CB_CHECK(S > 0);
  const double V = direct_conv_dag_vertices(s);
  const double T2S = direct_conv_T(s, 2.0 * S);
  return std::max(0.0, S * (V / T2S - 1.0));
}

double direct_conv_lower_bound_leading(const ConvShape& s, double S) {
  const double R = s.reuse();
  return static_cast<double>(s.kh * s.kw * s.cin_per_group()) *
         static_cast<double>(s.hout() * s.wout() * s.cout) *
         static_cast<double>(s.batch) / (4.0 * std::sqrt(2.0 * R * S));
}

double direct_dataflow_reads(const ConvShape& s, std::int64_t x,
                             std::int64_t y, std::int64_t z) {
  s.validate();
  CB_CHECK(x > 0 && y > 0 && z > 0);
  const double R = s.reuse();
  const double out_blocks =
      static_cast<double>(s.hout() * s.wout() * s.cout) /
      static_cast<double>(x * y * z);
  // Per block: Wker*Hker*Cin weights for z kernels + x'*y'*Cin inputs with
  // x'y' = mu^2*x*y = Wker*Hker*x*y/R (Cin per group for grouped shapes).
  const double per_block =
      static_cast<double>(s.kh * s.kw * s.cin_per_group()) *
      (static_cast<double>(z) + static_cast<double>(x * y) / R);
  return static_cast<double>(s.batch) * out_blocks * per_block;
}

double direct_dataflow_io(const ConvShape& s, double S, int np) {
  CB_CHECK(np > 0);
  const double R = s.reuse();
  const double budget = S / np;  // x*y*z ~= S/N_p
  // Equation (21) with xy = R*z: reads = 2*HWC_out*KKC_in / sqrt(R*budget).
  const double reads =
      2.0 * static_cast<double>(s.hout() * s.wout() * s.cout) *
      static_cast<double>(s.kh * s.kw * s.cin_per_group()) /
      std::sqrt(R * budget);
  const double writes = static_cast<double>(s.hout() * s.wout() * s.cout);
  return static_cast<double>(s.batch) * (reads + writes);
}

double direct_dataflow_reads_min(const ConvShape& s, std::int64_t x_max,
                                 std::int64_t y_max, std::int64_t z_max) {
  // Equation (20) factors as B*HWC_out*KKC_in*(1/(x*y) + 1/(R*z)): both
  // summands shrink as any coordinate grows, so over a box the minimum is
  // attained at (x_max, y_max, z_max).
  return direct_dataflow_reads(s, x_max, y_max, z_max);
}

// -------------------------------------------------------------- winograd --

double winograd_dag_vertices(const ConvShape& s, std::int64_t e) {
  s.validate();
  CB_CHECK_MSG(s.kh == s.kw, "Winograd requires square kernels");
  CB_CHECK_MSG(s.stride == 1, "Winograd requires stride 1");
  const std::int64_t r = s.kh;
  const double a2 = sq(static_cast<double>(e + r - 1));
  const double r2 = static_cast<double>(r * r);
  const double e2 = static_cast<double>(e * e);
  const double cin = static_cast<double>(s.cin);
  // Per F(e,r) instance (one tile, one output channel), following the
  // Lemma 4.14 proof exactly:
  //   step 1a: (2*a2 - 1) * a2 * cin     (input transform trees)
  //   step 1b: (2*r2 - 1) * a2 * cin     (kernel transform trees)
  //   step 2 :  a2 * cin                 (element-wise products)
  //   step 3 : (cin - 1) * a2            (channel summation trees)
  //   step 4 : (2*a2 - 1) * e2           (output transform trees)
  const double per_instance = (2.0 * a2 - 1.0) * a2 * cin +
                              (2.0 * r2 - 1.0) * a2 * cin + a2 * cin +
                              (cin - 1.0) * a2 + (2.0 * a2 - 1.0) * e2;
  const double instances = static_cast<double>(s.hout() * s.wout()) / e2 *
                           static_cast<double>(s.cout) *
                           static_cast<double>(s.batch);
  return per_instance * instances;
}

std::vector<SubComputation> winograd_steps(const ConvShape& s, std::int64_t e,
                                           double S) {
  CB_CHECK(s.kh == s.kw);
  const std::int64_t r = s.kh;
  const double a2 = sq(static_cast<double>(e + r - 1));
  const double er = static_cast<double>(e * r);
  const double e2 = static_cast<double>(e * e);

  std::vector<SubComputation> steps(4);
  // Lemma 4.15.
  steps[0].phi = [a2, er](double h) {
    return h <= 0 ? 0.0 : 6.0 * h * a2 * a2 / er;
  };
  steps[0].psi = [a2, er](double h) {
    return h <= 0 ? 0.0 : 3.0 * h * a2 / er;
  };
  // Lemma 4.16.
  steps[1].phi = [a2, e2, S](double h) {
    if (h <= 0) return 0.0;
    return h * std::sqrt(h) + a2 * S / e2 * std::sqrt(h);
  };
  steps[1].psi = steps[1].phi;
  // Lemma 4.17.
  steps[2].phi = [](double h) { return std::max(0.0, h - 1.0); };
  steps[2].psi = [a2, e2, S](double h) {
    return std::min(h / 2.0, S * a2 / e2);
  };
  // Lemma 4.18.
  steps[3].phi = [a2, e2, S](double h) {
    if (h <= 0) return 0.0;
    return std::min((2.0 * h - 1.0) * e2, (2.0 * a2 - 1.0) * S);
  };
  steps[3].psi = [](double) { return 0.0; };
  return steps;
}

double winograd_T(const ConvShape& s, std::int64_t e, double S) {
  CB_CHECK(s.kh == s.kw);
  const std::int64_t r = s.kh;
  const double a = static_cast<double>(e + r - 1);
  const double a2 = a * a;
  const double er = static_cast<double>(e * r);
  const double e2 = static_cast<double>(e * e);
  // Inequality (18): T(S) <= S + T1(S) + T2(S, 0) + a2*(1/e2 + 2)*S, with
  // T1(k) = 6*k*a2^2/er and T2(k1,k2) = h*sqrt(h) + a2/e2*S*sqrt(h) where
  // h = k2 + 3*k1*a2/er. The paper's (18) silently drops the psi_2 -> phi_3
  // forwarding term (phi_3(h) = h - 1 applied to the step-2 output set,
  // which is as large as T2 again); we add it back so the closed form
  // provably dominates the exact simplex maximisation — this only changes
  // the bound's constant, not its Theta(S^1.5) order.
  const double h = 3.0 * S * a2 / er;
  const double T1 = 6.0 * S * a2 * a2 / er;
  const double T2 = h * std::sqrt(h) + a2 / e2 * S * std::sqrt(h);
  return S + T1 + 2.0 * T2 + a2 * (1.0 / e2 + 2.0) * S;
}

double winograd_lower_bound(const ConvShape& s, std::int64_t e, double S) {
  CB_CHECK(S > 0);
  const double V = winograd_dag_vertices(s, e);
  const double T2S = winograd_T(s, e, 2.0 * S);
  return std::max(0.0, S * (V / T2S - 1.0));
}

double winograd_lower_bound_leading(const ConvShape& s, std::int64_t e,
                                    double S) {
  CB_CHECK(s.kh == s.kw);
  const std::int64_t r = s.kh;
  return static_cast<double>(s.hout() * s.wout() * s.cout) *
         static_cast<double>(s.cin) * static_cast<double>(e + r - 1) *
         static_cast<double>(r) * static_cast<double>(s.batch) /
         (static_cast<double>(e) * std::sqrt(S));
}

double winograd_dataflow_reads(const ConvShape& s, std::int64_t /*e*/,
                               std::int64_t x, std::int64_t y,
                               std::int64_t z) {
  s.validate();
  CB_CHECK(s.kh == s.kw && s.stride == 1);
  CB_CHECK(x > 0 && y > 0 && z > 0);
  const std::int64_t r = s.kh;
  const double out_blocks =
      static_cast<double>(s.hout() * s.wout() * s.cout) /
      static_cast<double>(x * y * z);
  // Equation (22): x*y*Cin inputs + z*r^2*Cin weights per block.
  const double per_block =
      static_cast<double>(s.cin) *
      (static_cast<double>(x * y) + static_cast<double>(z * r * r));
  return static_cast<double>(s.batch) * out_blocks * per_block;
}

double winograd_dataflow_io(const ConvShape& s, std::int64_t e, double S,
                            int np) {
  CB_CHECK(np > 0);
  CB_CHECK(s.kh == s.kw);
  const std::int64_t r = s.kh;
  const double a = static_cast<double>(e + r - 1);
  // 2*(a/e)^2 * xyz ~= S/N_p.
  const double xyz = S / np * sq(static_cast<double>(e)) / (2.0 * a * a);
  const double reads = 2.0 *
                       static_cast<double>(s.hout() * s.wout() * s.cout) *
                       static_cast<double>(s.cin) * static_cast<double>(r) /
                       std::sqrt(xyz);
  const double writes = static_cast<double>(s.hout() * s.wout() * s.cout);
  return static_cast<double>(s.batch) * (reads + writes);
}

double winograd_dataflow_reads_min(const ConvShape& s, std::int64_t e,
                                   std::int64_t x_max, std::int64_t y_max,
                                   std::int64_t z_max) {
  // Equation (22) factors as B*Cin*HWC_out*(1/z + r^2/(x*y)): strictly
  // decreasing in each coordinate, so the box minimum is the upper corner.
  return winograd_dataflow_reads(s, e, x_max, y_max, z_max);
}

// ---------------------------------------------------- optimality condition --

OptimalTile optimal_output_tile(const ConvShape& s, double budget_elems) {
  s.validate();
  CB_CHECK(budget_elems >= 1);
  const double R = std::max(1.0, s.reuse());
  OptimalTile t;
  // x*y = R*z and x*y*z = budget -> z = sqrt(budget/R).
  double z = std::sqrt(budget_elems / R);
  t.z = std::clamp<std::int64_t>(static_cast<std::int64_t>(std::round(z)), 1,
                                 s.cout);
  double xy = budget_elems / static_cast<double>(t.z);
  // Split xy as square as the output allows.
  double side = std::sqrt(xy);
  t.x = std::clamp<std::int64_t>(static_cast<std::int64_t>(std::round(side)),
                                 1, s.hout());
  t.y = std::clamp<std::int64_t>(
      static_cast<std::int64_t>(std::round(xy / static_cast<double>(t.x))), 1,
      s.wout());
  return t;
}

double optimality_residual(const ConvShape& s, std::int64_t x, std::int64_t y,
                           std::int64_t z) {
  CB_CHECK(x > 0 && y > 0 && z > 0);
  const double R = std::max(1.0, s.reuse());
  return std::abs(std::log(static_cast<double>(x * y) /
                           (R * static_cast<double>(z))));
}

}  // namespace convbound
