#include "convbound/bounds/composite.hpp"

#include <algorithm>

#include "convbound/util/check.hpp"

namespace convbound {

namespace {

/// Recursively assigns budget to steps j..n-1 given `carry` = psi-forwarded
/// vertices from previous steps, returning the best achievable phi sum.
double best_tail(std::span<const SubComputation> steps, std::size_t j,
                 double budget, double carry, int grid) {
  const auto& step = steps[j];
  if (j + 1 == steps.size()) {
    // Monotonicity: give the final step everything that is left.
    return step.phi(budget + carry);
  }
  double best = 0;
  for (int g = 0; g <= grid; ++g) {
    const double kj = budget * static_cast<double>(g) / grid;
    const double here = step.phi(kj + carry);
    const double forwarded = step.psi(kj + carry);
    const double rest =
        best_tail(steps, j + 1, budget - kj, forwarded, grid);
    best = std::max(best, here + rest);
  }
  return best;
}

}  // namespace

double composite_T(std::span<const SubComputation> steps, double S,
                   int grid) {
  CB_CHECK(!steps.empty());
  CB_CHECK(S > 0);
  CB_CHECK(grid >= 2);
  return S + best_tail(steps, 0, S, 0.0, grid);
}

double composite_lower_bound(double num_vertices, double S,
                             std::span<const SubComputation> steps,
                             int grid) {
  const double T2S = composite_T(steps, 2 * S, grid);
  return std::max(0.0, S * (num_vertices / T2S - 1.0));
}

}  // namespace convbound
