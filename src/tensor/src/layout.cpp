#include "convbound/tensor/layout.hpp"

#include <algorithm>
#include <cctype>

#include "convbound/util/check.hpp"

namespace convbound {

std::string to_string(Layout layout) {
  switch (layout) {
    case Layout::kNCHW: return "NCHW";
    case Layout::kNCWH: return "NCWH";
    case Layout::kNHWC: return "NHWC";
  }
  return "?";
}

Layout layout_from_string(const std::string& name) {
  std::string up = name;
  std::transform(up.begin(), up.end(), up.begin(),
                 [](unsigned char ch) { return std::toupper(ch); });
  if (up == "NCHW" || up == "CHW") return Layout::kNCHW;
  if (up == "NCWH" || up == "CWH") return Layout::kNCWH;
  if (up == "NHWC" || up == "HWC") return Layout::kNHWC;
  CB_CHECK_MSG(false, "unknown layout '" << name << "'");
  return Layout::kNCHW;  // unreachable
}

Strides4 make_strides(Layout layout, std::int64_t n, std::int64_t c,
                      std::int64_t h, std::int64_t w) {
  CB_CHECK(n > 0 && c > 0 && h > 0 && w > 0);
  Strides4 s{};
  switch (layout) {
    case Layout::kNCHW:
      s.w = 1; s.h = w; s.c = h * w; s.n = c * h * w;
      break;
    case Layout::kNCWH:
      s.h = 1; s.w = h; s.c = h * w; s.n = c * h * w;
      break;
    case Layout::kNHWC:
      s.c = 1; s.w = c; s.h = w * c; s.n = h * w * c;
      break;
  }
  return s;
}

}  // namespace convbound
