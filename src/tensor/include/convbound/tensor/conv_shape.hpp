// Geometry of a 2-D convolution problem (the paper's Section 2.2 notation).
#pragma once

#include <cstdint>
#include <string>

#include "convbound/util/check.hpp"

namespace convbound {

struct ConvShape {
  std::int64_t batch = 1;
  std::int64_t cin = 1;
  std::int64_t hin = 1, win = 1;
  std::int64_t cout = 1;
  std::int64_t kh = 3, kw = 3;
  std::int64_t stride = 1;  ///< the paper's mu
  std::int64_t pad = 0;
  /// Channel groups; groups == cin == cout is a depthwise convolution
  /// (MobileNet / ShuffleNet style).
  std::int64_t groups = 1;

  std::int64_t hout() const { return (hin + 2 * pad - kh) / stride + 1; }
  std::int64_t wout() const { return (win + 2 * pad - kw) / stride + 1; }

  /// Input channels each output channel reads.
  std::int64_t cin_per_group() const { return cin / groups; }
  std::int64_t cout_per_group() const { return cout / groups; }

  /// Multiply-add pairs counted as 2 FLOPs, the convention used by the
  /// paper's GFlops numbers.
  std::int64_t flops() const {
    return 2 * batch * cout * hout() * wout() * cin_per_group() * kh * kw;
  }

  std::int64_t input_elems() const { return batch * cin * hin * win; }
  std::int64_t weight_elems() const {
    return cout * cin_per_group() * kh * kw;
  }
  std::int64_t output_elems() const { return batch * cout * hout() * wout(); }

  /// Maximum sliding-window reuse of one input element (Equation 13):
  /// R = Wker*Hker / mu^2.
  double reuse() const {
    return static_cast<double>(kh * kw) /
           static_cast<double>(stride * stride);
  }

  void validate() const {
    CB_CHECK_MSG(batch > 0 && cin > 0 && hin > 0 && win > 0 && cout > 0 &&
                     kh > 0 && kw > 0 && stride > 0 && pad >= 0 && groups > 0,
                 "invalid ConvShape " << to_string());
    CB_CHECK_MSG(hout() > 0 && wout() > 0,
                 "kernel larger than padded input: " << to_string());
    CB_CHECK_MSG(cin % groups == 0 && cout % groups == 0,
                 "groups must divide both channel counts: " << to_string());
  }

  std::string to_string() const {
    return "conv[b=" + std::to_string(batch) + " cin=" + std::to_string(cin) +
           " in=" + std::to_string(hin) + "x" + std::to_string(win) +
           " cout=" + std::to_string(cout) + " k=" + std::to_string(kh) +
           "x" + std::to_string(kw) + " s=" + std::to_string(stride) +
           " p=" + std::to_string(pad) +
           (groups > 1 ? " g=" + std::to_string(groups) : "") + "]";
  }

  bool operator==(const ConvShape&) const = default;
};

}  // namespace convbound
