// Dense 4-D tensor with selectable layout.
//
// In the simulator this buffer *is* the slow (global/off-chip) memory of the
// red-blue pebble game; kernels may only touch it through counted transfers.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "convbound/tensor/layout.hpp"
#include "convbound/util/check.hpp"
#include "convbound/util/rng.hpp"

namespace convbound {

template <typename T>
class Tensor4 {
 public:
  Tensor4() : Tensor4(1, 1, 1, 1) {}

  Tensor4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w,
          Layout layout = Layout::kNCHW)
      : n_(n), c_(c), h_(h), w_(w), layout_(layout),
        strides_(make_strides(layout, n, c, h, w)),
        data_(static_cast<std::size_t>(n * c * h * w)) {}

  std::int64_t n() const { return n_; }
  std::int64_t c() const { return c_; }
  std::int64_t h() const { return h_; }
  std::int64_t w() const { return w_; }
  Layout layout() const { return layout_; }
  const Strides4& strides() const { return strides_; }
  std::int64_t size() const { return n_ * c_ * h_ * w_; }
  std::size_t size_bytes() const {
    return static_cast<std::size_t>(size()) * sizeof(T);
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  std::span<T> span() { return {data_.data(), data_.size()}; }
  std::span<const T> span() const { return {data_.data(), data_.size()}; }

  std::int64_t index(std::int64_t in, std::int64_t ic, std::int64_t ih,
                     std::int64_t iw) const {
    return in * strides_.n + ic * strides_.c + ih * strides_.h +
           iw * strides_.w;
  }

  T& operator()(std::int64_t in, std::int64_t ic, std::int64_t ih,
                std::int64_t iw) {
    return data_[static_cast<std::size_t>(index(in, ic, ih, iw))];
  }
  const T& operator()(std::int64_t in, std::int64_t ic, std::int64_t ih,
                      std::int64_t iw) const {
    return data_[static_cast<std::size_t>(index(in, ic, ih, iw))];
  }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  /// Fills with deterministic uniform values in [-1, 1).
  void fill_random(Rng& rng) {
    for (auto& v : data_) v = static_cast<T>(rng.uniform(-1.0, 1.0));
  }

  /// Copies values into a tensor of another layout (same logical shape).
  Tensor4<T> to_layout(Layout layout) const {
    Tensor4<T> out(n_, c_, h_, w_, layout);
    for (std::int64_t in = 0; in < n_; ++in)
      for (std::int64_t ic = 0; ic < c_; ++ic)
        for (std::int64_t ih = 0; ih < h_; ++ih)
          for (std::int64_t iw = 0; iw < w_; ++iw)
            out(in, ic, ih, iw) = (*this)(in, ic, ih, iw);
    return out;
  }

 private:
  std::int64_t n_, c_, h_, w_;
  Layout layout_;
  Strides4 strides_;
  std::vector<T> data_;
};

/// Largest absolute element-wise difference between two same-shape tensors.
template <typename T>
double max_abs_diff(const Tensor4<T>& a, const Tensor4<T>& b) {
  CB_CHECK(a.n() == b.n() && a.c() == b.c() && a.h() == b.h() &&
           a.w() == b.w());
  double m = 0;
  for (std::int64_t in = 0; in < a.n(); ++in)
    for (std::int64_t ic = 0; ic < a.c(); ++ic)
      for (std::int64_t ih = 0; ih < a.h(); ++ih)
        for (std::int64_t iw = 0; iw < a.w(); ++iw) {
          const double d = std::abs(static_cast<double>(a(in, ic, ih, iw)) -
                                    static_cast<double>(b(in, ic, ih, iw)));
          if (d > m) m = d;
        }
  return m;
}

/// True when all elements agree within |a-b| <= atol + rtol*|b|.
template <typename T>
bool allclose(const Tensor4<T>& a, const Tensor4<T>& b, double rtol = 1e-4,
              double atol = 1e-5) {
  CB_CHECK(a.n() == b.n() && a.c() == b.c() && a.h() == b.h() &&
           a.w() == b.w());
  for (std::int64_t in = 0; in < a.n(); ++in)
    for (std::int64_t ic = 0; ic < a.c(); ++ic)
      for (std::int64_t ih = 0; ih < a.h(); ++ih)
        for (std::int64_t iw = 0; iw < a.w(); ++iw) {
          const double av = static_cast<double>(a(in, ic, ih, iw));
          const double bv = static_cast<double>(b(in, ic, ih, iw));
          if (std::abs(av - bv) > atol + rtol * std::abs(bv)) return false;
        }
  return true;
}

}  // namespace convbound
