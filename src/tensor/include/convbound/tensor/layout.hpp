// Memory layouts for 4-D activation tensors.
//
// The paper's search domain (Table 1) includes the layout as a tunable
// parameter (CHW / CWH / HWC per image); with the batch dimension prepended
// these are NCHW, NCWH and NHWC.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace convbound {

enum class Layout : std::uint8_t { kNCHW, kNCWH, kNHWC };

/// Human-readable name ("NCHW", ...).
std::string to_string(Layout layout);

/// Parses "NCHW"/"NCWH"/"NHWC" (case-insensitive). Throws on unknown names.
Layout layout_from_string(const std::string& name);

/// All supported layouts, for parameter sweeps.
inline constexpr std::array<Layout, 3> kAllLayouts = {
    Layout::kNCHW, Layout::kNCWH, Layout::kNHWC};

/// Row-major strides (in elements) of dimension order (n, c, h, w) for a
/// tensor of shape [n, c, h, w] stored in `layout`.
struct Strides4 {
  std::int64_t n, c, h, w;
};

Strides4 make_strides(Layout layout, std::int64_t n, std::int64_t c,
                      std::int64_t h, std::int64_t w);

}  // namespace convbound
