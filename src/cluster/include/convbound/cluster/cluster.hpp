// Heterogeneous multi-accelerator sharded serving.
//
//   clients ──submit()──► ShardedRequestQueue ──► BatchScheduler ──► Router
//                         (fleet-wide, lock-       (same-model       (bound-aware
//                          striped shards,          groups)           placement,
//                          backpressure)               │              per-device
//                                                      ▼              caps, work
//                                        ClusterDevice[placement]     stealing)
//                                        engine + workers per device
//
// One front door, N simulated accelerators with *different* MachineSpecs.
// Every device owns its full serving stack (bound-guided buckets for its
// own spec, planners, tune cache, warm sessions, worker pool); the Router
// places each request group on the device with the best predicted
// per-request completion, using the paper's analytic cost model (Eq 20/22
// dataflow I/O + roofline per device) instead of measuring — the same
// machinery that makes plans rank differently across machines in the fig13
// arch-sensitivity experiment. When the preferred device's pending queue is
// at its cap, the group is stolen by the next-best device; when all devices
// are saturated, backlog pools in the fleet queue (bounded, rejecting:
// backpressure stays explicit).
//
// Groups are same-model and a model's micro-batch bucket differs per device
// (chosen against each spec), so the scheduler collects *after* placement
// at the placed device's bucket — that is the Placement generalization in
// serve/scheduler.hpp.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "convbound/cluster/device.hpp"
#include "convbound/cluster/router.hpp"
#include "convbound/serve/engine.hpp"
#include "convbound/serve/model.hpp"
#include "convbound/serve/scheduler.hpp"
#include "convbound/serve/sharded_queue.hpp"
#include "convbound/serve/stats.hpp"
#include "convbound/serve/tenancy.hpp"

namespace convbound {

struct ClusterOptions {
  /// The fleet: one entry per simulated accelerator (specs may repeat for a
  /// homogeneous fleet or differ for a heterogeneous one).
  std::vector<DeviceConfig> devices;
  RoutePolicy policy = RoutePolicy::kBoundAware;
  /// Fleet queue capacity; submits beyond it are rejected (backpressure).
  std::size_t max_queue = 1024;
  /// Ingest shards in the fleet front door (sub-queues + stats stripes).
  /// Submit is lock-striped across them; capacity/quota stay global. 1
  /// recovers single-queue exact-EDF ordering.
  std::size_t shards = 4;
  /// How long the scheduler holds a partial group past its oldest arrival.
  std::chrono::microseconds max_delay{2000};
  /// 0 = bound-guided bucket per (model, device); otherwise fixed.
  std::int64_t force_bucket = 0;
  BatchPolicyOptions batch_policy;
  PlanMode plan_mode = PlanMode::kMeasured;
  int tune_budget = 16;
  std::uint64_t seed = 42;
  /// Tenant / priority classes (first = catch-all default). Empty keeps the
  /// pre-tenancy single-class behaviour: FIFO-equivalent EDF, no quotas.
  std::vector<TenantClass> classes;
  /// Queue-fill fraction at which weighted-fair per-class shares start
  /// binding; below it admission is work-conserving.
  double admission_congestion = 0.5;

  EngineOptions engine_options() const {
    EngineOptions e;
    e.force_bucket = force_bucket;
    e.policy = batch_policy;
    // Bucket feasibility must account for the scheduler's group-formation
    // window, which lives here, not in the policy options the caller set.
    e.policy.max_delay_seconds =
        std::chrono::duration<double>(max_delay).count();
    e.plan_mode = plan_mode;
    e.tune_budget = tune_budget;
    e.seed = seed;
    return e;  // machine/replicas are overridden per device
  }
};

struct DeviceSnapshot {
  std::string name;
  std::string spec_name;
  /// Groups the Router placed on this device (>= stats.batches while
  /// groups are still queued on the device).
  std::uint64_t placements = 0;
  bool alive = true;
  StatsSnapshot stats;
};

struct ClusterSnapshot {
  /// Fleet-wide merge (see merge_snapshots): modelled_rps is the makespan
  /// figure total-completed / busiest-device-sim-seconds; submitted /
  /// rejected / queue depths are the front door's.
  StatsSnapshot fleet;
  std::vector<DeviceSnapshot> devices;
  /// Groups placed on a non-preferred device (work-stealing fallback).
  std::uint64_t stolen_groups = 0;
  // Chaos accounting.
  std::uint64_t device_failures = 0;
  std::uint64_t device_revives = 0;
  /// Requests re-queued off a dead device (stranded groups + groups whose
  /// placement raced the failure), none lost.
  std::uint64_t requeued_requests = 0;
};

class ClusterServer {
 public:
  ClusterServer(std::vector<ServedModel> models, ClusterOptions opts);
  /// Stops and drains if still running.
  ~ClusterServer();

  ClusterServer(const ClusterServer&) = delete;
  ClusterServer& operator=(const ClusterServer&) = delete;

  /// Warms every device (the only place planning/tuning happen anywhere in
  /// the fleet), builds the Router from the per-device bucket predictions,
  /// and starts the scheduler. Checks (throws convbound::Error) on a second
  /// start() or a start() after stop().
  void start();

  /// Closes the fleet queue, drains the scheduler and every device, and
  /// completes still-queued requests with kShutdown. Idempotent.
  void stop();

  /// Thread-safe; never blocks. kRejected when the fleet queue is full,
  /// kQuotaExceeded when the request's class is over its weighted-fair
  /// share under overload, and kShutdown after stop() (the queue's closed
  /// state decides shutdown races — a submit that loses to a concurrent
  /// stop() always resolves, never hangs). Requests may be queued before
  /// start().
  std::future<InferResponse> submit(InferRequest request);

  /// Chaos: kills device `i` mid-flight. Its running batch completes with
  /// real statuses; every queued-but-unstarted group is pulled back, its
  /// Router reservation released, and its requests re-queued through the
  /// front queue so the surviving devices absorb them via the Router's
  /// steal path — zero silent loss. Returns the number of re-queued
  /// requests. Valid after start().
  std::size_t fail_device(std::size_t i);

  /// Brings a failed device back (kWarm: restart with its surviving warm
  /// engine; kCold: rebuild + re-warm from scratch — a hot-join). The
  /// Router's cost table for the device is refreshed from the revived
  /// engine's warm-time bucket predictions before placement resumes; the
  /// rest of the fleet keeps serving throughout. Valid after start().
  void revive_device(std::size_t i, ReviveMode mode);

  ClusterSnapshot stats() const;

  /// Valid after start() (the Router is built from warm-time predictions).
  const Router& router() const;

  std::size_t num_devices() const { return devices_.size(); }
  const ClusterDevice& device(std::size_t i) const { return *devices_[i]; }
  ClusterDevice& device(std::size_t i) { return *devices_[i]; }
  const ServedModel& model(const std::string& name) const;
  const ClusterOptions& options() const { return opts_; }

 private:
  /// Returns a failed-placement group's requests to the front queue (or
  /// answers them kShutdown when it is closed). Returns how many were
  /// re-queued (all of them, unless shut down).
  std::size_t requeue_group(std::vector<PendingRequest> group);

  ClusterOptions opts_;
  std::map<std::string, ServedModel> models_;
  TenantTable tenants_;
  /// Front-door counters (submitted / rejected / queue watermark), one
  /// stripe per ingest shard plus the exec stripe for queue-side expiry;
  /// each device records its own execution-side stats. snapshot() folds
  /// every stripe — reading a single stripe would drop what the other
  /// shards' producers recorded.
  StripedServerStats stats_;
  std::vector<std::unique_ptr<ClusterDevice>> devices_;
  ShardedRequestQueue queue_;
  std::unique_ptr<Router> router_;
  std::unique_ptr<BatchScheduler> scheduler_;
  /// Lifecycle bits are seq_cst: started_ is flipped after router_ is
  /// assigned and read as the gate before touching it, so the store/load
  /// pair must order that publication; stopped_ decides stop() idempotence
  /// across threads. The chaos counters are independent monotonic tallies
  /// (relaxed — nothing is published through them; snapshot readers accept
  /// point-in-time values).
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  // Chaos accounting.
  std::atomic<std::uint64_t> device_failures_{0};
  std::atomic<std::uint64_t> device_revives_{0};
  std::atomic<std::uint64_t> requeued_requests_{0};
};

}  // namespace convbound
