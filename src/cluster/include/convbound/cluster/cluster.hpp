// Heterogeneous multi-accelerator sharded serving.
//
//   clients ──submit()──► RequestQueue ──► BatchScheduler ──► Router
//                         (fleet-wide,       (same-model        (bound-aware
//                          backpressure)      groups)            placement,
//                                                │               per-device
//                                                ▼               caps, work
//                                   ClusterDevice[placement]     stealing)
//                                   engine + workers per device
//
// One front door, N simulated accelerators with *different* MachineSpecs.
// Every device owns its full serving stack (bound-guided buckets for its
// own spec, planners, tune cache, warm sessions, worker pool); the Router
// places each request group on the device with the best predicted
// per-request completion, using the paper's analytic cost model (Eq 20/22
// dataflow I/O + roofline per device) instead of measuring — the same
// machinery that makes plans rank differently across machines in the fig13
// arch-sensitivity experiment. When the preferred device's pending queue is
// at its cap, the group is stolen by the next-best device; when all devices
// are saturated, backlog pools in the fleet queue (bounded, rejecting:
// backpressure stays explicit).
//
// Groups are same-model and a model's micro-batch bucket differs per device
// (chosen against each spec), so the scheduler collects *after* placement
// at the placed device's bucket — that is the Placement generalization in
// serve/scheduler.hpp.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "convbound/cluster/device.hpp"
#include "convbound/cluster/router.hpp"
#include "convbound/serve/engine.hpp"
#include "convbound/serve/model.hpp"
#include "convbound/serve/queue.hpp"
#include "convbound/serve/scheduler.hpp"
#include "convbound/serve/stats.hpp"

namespace convbound {

struct ClusterOptions {
  /// The fleet: one entry per simulated accelerator (specs may repeat for a
  /// homogeneous fleet or differ for a heterogeneous one).
  std::vector<DeviceConfig> devices;
  RoutePolicy policy = RoutePolicy::kBoundAware;
  /// Fleet queue capacity; submits beyond it are rejected (backpressure).
  std::size_t max_queue = 1024;
  /// How long the scheduler holds a partial group past its oldest arrival.
  std::chrono::microseconds max_delay{2000};
  /// 0 = bound-guided bucket per (model, device); otherwise fixed.
  std::int64_t force_bucket = 0;
  BatchPolicyOptions batch_policy;
  PlanMode plan_mode = PlanMode::kMeasured;
  int tune_budget = 16;
  std::uint64_t seed = 42;

  EngineOptions engine_options() const {
    EngineOptions e;
    e.force_bucket = force_bucket;
    e.policy = batch_policy;
    // Bucket feasibility must account for the scheduler's group-formation
    // window, which lives here, not in the policy options the caller set.
    e.policy.max_delay_seconds =
        std::chrono::duration<double>(max_delay).count();
    e.plan_mode = plan_mode;
    e.tune_budget = tune_budget;
    e.seed = seed;
    return e;  // machine/replicas are overridden per device
  }
};

struct DeviceSnapshot {
  std::string name;
  std::string spec_name;
  /// Groups the Router placed on this device (>= stats.batches while
  /// groups are still queued on the device).
  std::uint64_t placements = 0;
  StatsSnapshot stats;
};

struct ClusterSnapshot {
  /// Fleet-wide merge (see merge_snapshots): modelled_rps is the makespan
  /// figure total-completed / busiest-device-sim-seconds; submitted /
  /// rejected / queue depths are the front door's.
  StatsSnapshot fleet;
  std::vector<DeviceSnapshot> devices;
  /// Groups placed on a non-preferred device (work-stealing fallback).
  std::uint64_t stolen_groups = 0;
};

class ClusterServer {
 public:
  ClusterServer(std::vector<ServedModel> models, ClusterOptions opts);
  /// Stops and drains if still running.
  ~ClusterServer();

  ClusterServer(const ClusterServer&) = delete;
  ClusterServer& operator=(const ClusterServer&) = delete;

  /// Warms every device (the only place planning/tuning happen anywhere in
  /// the fleet), builds the Router from the per-device bucket predictions,
  /// and starts the scheduler.
  void start();

  /// Closes the fleet queue, drains the scheduler and every device, and
  /// completes still-queued requests with kShutdown. Idempotent.
  void stop();

  /// Thread-safe; never blocks. kRejected when the fleet queue is full,
  /// kShutdown after stop(). Requests may be queued before start().
  std::future<InferResponse> submit(InferRequest request);

  ClusterSnapshot stats() const;

  /// Valid after start() (the Router is built from warm-time predictions).
  const Router& router() const;

  std::size_t num_devices() const { return devices_.size(); }
  const ClusterDevice& device(std::size_t i) const { return *devices_[i]; }
  ClusterDevice& device(std::size_t i) { return *devices_[i]; }
  const ServedModel& model(const std::string& name) const;
  const ClusterOptions& options() const { return opts_; }

 private:
  ClusterOptions opts_;
  std::map<std::string, ServedModel> models_;
  /// Front-door counters (submitted / rejected / queue watermark); each
  /// device records its own execution-side stats.
  ServerStats stats_;
  std::vector<std::unique_ptr<ClusterDevice>> devices_;
  RequestQueue queue_;
  std::unique_ptr<Router> router_;
  std::unique_ptr<BatchScheduler> scheduler_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
};

}  // namespace convbound
