// One simulated accelerator in a heterogeneous fleet.
//
// A ClusterDevice pairs a ServeEngine (bound-guided buckets, per-model
// planners, TuneCache, warm SessionPool — all chosen against *this
// device's* MachineSpec) with its own executor workers and its own
// ServerStats. Devices share the fleet's immutable ServedModel weights but
// nothing mutable: planning on one device never touches another, and the
// per-device zero-plan-miss / zero-alloc steady-state invariant holds
// independently for every spec in the fleet.
//
// The device does not pull work; the cluster's scheduler pushes groups the
// Router placed on it via enqueue(). Admission control lives in the Router
// (per-device pending caps), so the device's internal task queue stays
// shallow by construction.
//
// Chaos lifecycle: fail() kills the device mid-flight — workers stop after
// the batch they are running (its requests complete normally and its
// on_done releases the Router reservation), and every queued-but-unstarted
// group is handed back to the caller so the cluster can re-queue it through
// the Router's surviving devices (zero silent loss). revive() brings the
// device back: kWarm reuses the existing warm engine (sessions and plans
// survived the failure — a restart), kCold rebuilds the whole engine from
// scratch and re-warms it (a replacement device hot-joining the fleet).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "convbound/machine/machine_spec.hpp"
#include "convbound/serve/engine.hpp"
#include "convbound/serve/model.hpp"
#include "convbound/serve/queue.hpp"
#include "convbound/serve/stats.hpp"
#include "convbound/util/mutex.hpp"
#include "convbound/util/thread_annotations.hpp"

namespace convbound {

struct DeviceConfig {
  MachineSpec spec;
  /// Display name; empty = "d<i>:<spec name>" assigned by the cluster.
  std::string name;
  /// Executor worker threads on this device.
  int workers = 1;
  /// Sessions per (model, bucket); 0 = one per worker.
  int replicas = 0;
  /// Per-device queue depth: groups in flight + queued before the Router
  /// steals to another device; 0 = 2 * workers.
  int max_pending_groups = 0;

  int effective_replicas() const { return replicas > 0 ? replicas : workers; }
  int effective_pending() const {
    return max_pending_groups > 0 ? max_pending_groups : 2 * workers;
  }
};

/// How a failed device comes back; see ClusterDevice::revive().
enum class ReviveMode {
  kWarm,  ///< restart: the warm engine (plans, sessions) survived
  kCold,  ///< replacement: rebuild + re-warm the engine from scratch
};

class ClusterDevice {
 public:
  /// A Router-placed group a failed device never started. The cluster
  /// re-queues its requests; on_done is the pending Router reservation.
  struct StrandedGroup {
    std::vector<PendingRequest> group;
    std::string model;
    std::function<void()> on_done;
  };

  /// `models` is unowned and must outlive the device (the cluster owns one
  /// map shared by the whole fleet).
  ClusterDevice(const std::map<std::string, ServedModel>& models,
                DeviceConfig config, const EngineOptions& engine_opts);
  ~ClusterDevice();

  ClusterDevice(const ClusterDevice&) = delete;
  ClusterDevice& operator=(const ClusterDevice&) = delete;

  /// Warms the engine (all planning/tuning) and starts the workers.
  void start();

  /// Runs every queued group to completion and joins the workers.
  /// Idempotent.
  void drain();

  /// Queues one Router-placed group for execution; true on acceptance.
  /// `on_done` runs after the group completes (success or failure) — the
  /// cluster uses it to return the Router reservation. False when the
  /// device is dead (or not running): the group is moved from ONLY on
  /// acceptance, so on refusal the caller still holds every request
  /// (promises intact) and owns its requeue.
  bool enqueue(std::vector<PendingRequest>&& group, const std::string& model,
               std::function<void()> on_done);

  /// Chaos: kills the device. Workers stop after their current batch (its
  /// requests complete with real statuses and its on_done runs); every
  /// queued-but-unstarted group is returned to the caller, promises and
  /// Router reservations intact. Idempotent (a dead device strands
  /// nothing).
  std::vector<StrandedGroup> fail();

  /// Brings a failed device back and restarts its workers. kCold rebuilds
  /// the engine against the same spec and re-warms it — the only planning
  /// that ever happens after fleet start, and it happens entirely on the
  /// caller's thread so the running fleet never stalls.
  void revive(ReviveMode mode);

  bool alive() const;

  /// Device-side counters (batches, latencies, plan misses, workspace).
  StatsSnapshot stats() const;

  const std::string& name() const { return config_.name; }
  const DeviceConfig& config() const { return config_; }
  /// The pointer read takes engine_mu_ so it cannot tear against a cold
  /// revive's engine swap; the *reference* stays valid only as long as no
  /// cold revive runs, which the cluster's lifecycle guarantees for every
  /// caller (start()-time cost-table reads and test probes).
  ServeEngine& engine() {
    MutexLock lock(engine_mu_);
    return *engine_;
  }
  const ServeEngine& engine() const {
    MutexLock lock(engine_mu_);
    return *engine_;
  }

 private:
  struct Task {
    std::vector<PendingRequest> group;
    std::string model;
    std::function<void()> on_done;
  };

  enum class Mode { kRunning, kDraining, kFailing };

  void spawn_workers();
  void worker_loop();
  /// Joins (and clears) the workers; callable with mu_ released only.
  void join_workers();

  DeviceConfig config_;
  const std::map<std::string, ServedModel>* models_;
  EngineOptions engine_opts_;
  ServerStats stats_;
  /// Behind a pointer so a cold revive can rebuild it. engine_mu_ guards
  /// the *pointer* (swap vs. concurrent stats() polls and worker reads);
  /// the pointee is the thread-safe ServeEngine, used outside the lock by
  /// design. Every reader loads the pointer under engine_mu_ into a local
  /// first — workers are always joined before a swap, so the pointee a
  /// worker is using is never destroyed under it.
  mutable Mutex engine_mu_;
  std::unique_ptr<ServeEngine> engine_ CB_GUARDED_BY(engine_mu_);

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<Task> tasks_ CB_GUARDED_BY(mu_);
  std::vector<std::thread> workers_ CB_GUARDED_BY(mu_);
  Mode mode_ CB_GUARDED_BY(mu_) = Mode::kRunning;
  bool started_ CB_GUARDED_BY(mu_) = false;
  bool alive_ CB_GUARDED_BY(mu_) = false;
};

}  // namespace convbound
