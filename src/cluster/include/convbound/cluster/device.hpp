// One simulated accelerator in a heterogeneous fleet.
//
// A ClusterDevice pairs a ServeEngine (bound-guided buckets, per-model
// planners, TuneCache, warm SessionPool — all chosen against *this
// device's* MachineSpec) with its own executor worker pool and its own
// ServerStats. Devices share the fleet's immutable ServedModel weights but
// nothing mutable: planning on one device never touches another, and the
// per-device zero-plan-miss / zero-alloc steady-state invariant holds
// independently for every spec in the fleet.
//
// The device does not pull work; the cluster's scheduler pushes groups the
// Router placed on it via enqueue(). Admission control lives in the Router
// (per-device pending caps), so the pool's internal task queue stays
// shallow by construction.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "convbound/machine/machine_spec.hpp"
#include "convbound/serve/engine.hpp"
#include "convbound/serve/model.hpp"
#include "convbound/serve/queue.hpp"
#include "convbound/serve/stats.hpp"
#include "convbound/util/thread_pool.hpp"

namespace convbound {

struct DeviceConfig {
  MachineSpec spec;
  /// Display name; empty = "d<i>:<spec name>" assigned by the cluster.
  std::string name;
  /// Executor worker threads on this device.
  int workers = 1;
  /// Sessions per (model, bucket); 0 = one per worker.
  int replicas = 0;
  /// Per-device queue depth: groups in flight + queued before the Router
  /// steals to another device; 0 = 2 * workers.
  int max_pending_groups = 0;

  int effective_replicas() const { return replicas > 0 ? replicas : workers; }
  int effective_pending() const {
    return max_pending_groups > 0 ? max_pending_groups : 2 * workers;
  }
};

class ClusterDevice {
 public:
  /// `models` is unowned and must outlive the device (the cluster owns one
  /// map shared by the whole fleet).
  ClusterDevice(const std::map<std::string, ServedModel>& models,
                DeviceConfig config, const EngineOptions& engine_opts);

  ClusterDevice(const ClusterDevice&) = delete;
  ClusterDevice& operator=(const ClusterDevice&) = delete;

  /// Warms the engine (all planning/tuning) and starts the worker pool.
  void start();

  /// Runs every queued group to completion and joins the workers.
  /// Idempotent.
  void drain();

  /// Queues one Router-placed group for execution. `on_done` runs after the
  /// group completes (success or failure) — the cluster uses it to return
  /// the Router reservation.
  void enqueue(std::vector<PendingRequest> group, const std::string& model,
               std::function<void()> on_done);

  /// Device-side counters (batches, latencies, plan misses, workspace).
  StatsSnapshot stats() const;

  const std::string& name() const { return config_.name; }
  const DeviceConfig& config() const { return config_; }
  ServeEngine& engine() { return engine_; }
  const ServeEngine& engine() const { return engine_; }

 private:
  DeviceConfig config_;
  ServerStats stats_;
  ServeEngine engine_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace convbound
