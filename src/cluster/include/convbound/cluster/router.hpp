// Bound-aware placement of request groups onto heterogeneous devices.
//
// The router owns the cluster's placement decision: for each same-model
// group the scheduler is about to form, pick the device that minimises the
// *predicted* per-request completion time
//
//     score(d, m) = (virtual_seconds(d) + batch_seconds(d, m))
//                   / bucket(d, m)
//
// where batch_seconds(d, m) is the predicted whole-batch time of model m's
// chosen bucket on device d, read from the plan layer at warm time (SimGpu
// dry-run predictions under kMeasured/kTuned planning, pure Eq 20/22
// dataflow I/O + roofline under kAnalytic; the bucket itself comes from
// choose_batch_bucket against each device's spec) and
// virtual_seconds(d) is d's virtual clock: the predicted busy time of
// everything ever placed on it. Greedily equalising predicted finish times
// is classic list scheduling on the modelled makespan — fast devices take
// proportionally more groups, each model gravitates to the spec the bounds
// layer says suits it, and slow devices still absorb overflow instead of
// idling. Dividing by the device's bucket makes the score a per-request
// figure: a device that amortises 8 requests per batch beats an equally
// fast device that serves them one by one. The clock is virtual *modelled*
// time, deliberately not drained by host-side completions: the host
// executes every simulated device at the same host speed, so draining
// would erase exactly the heterogeneity the placement exists to exploit —
// and placements stay a deterministic function of the request order. No
// device is ever measured at routing time — the cost model *is* the
// paper's bounds layer, which is exactly why plans (and placements) rank
// differently across MachineSpecs (the fig13 effect).
//
// Placement is subject to a per-device pending-group cap: when the
// preferred device is saturated the group is *stolen* by the next-best
// device below its cap (work-stealing fallback, counted in the snapshot);
// when every device is saturated, reserve() blocks until a completion frees
// capacity — that is the moment fleet backlog starts pooling in the front
// queue, where it keeps batching up and counts toward backpressure.
//
// Baseline policies for the bench/tests: kRoundRobin rotates placements
// device by device (skipping saturated devices — that is the rotation
// itself, not a steal, so the steal counter stays 0), kLeastLoaded picks
// the fewest pending groups. Both ignore the cost model.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "convbound/serve/scheduler.hpp"
#include "convbound/util/mutex.hpp"
#include "convbound/util/thread_annotations.hpp"

namespace convbound {

enum class RoutePolicy {
  kBoundAware,   ///< minimise predicted per-request completion (default)
  kRoundRobin,   ///< rotate devices, ignoring the cost model
  kLeastLoaded,  ///< fewest pending groups, ignoring the cost model
};

const char* to_string(RoutePolicy p);
/// bound|rr|least -> policy; throws on an unknown name.
RoutePolicy route_policy_by_name(const std::string& name);

class Router {
 public:
  /// Predicted cost of one chosen-bucket batch of a model on one device
  /// (the per-request figure is batch_seconds / bucket, derived in
  /// score()).
  struct ModelCost {
    std::int64_t bucket = 1;
    double batch_seconds = 0;  ///< predicted whole-batch time
  };

  struct DeviceEntry {
    std::string name;
    /// Groups in flight + queued behind this device's workers; reserve()
    /// never exceeds it (the per-device queue depth).
    int max_pending_groups = 2;
    std::map<std::string, ModelCost> costs;  ///< model -> predicted cost
  };

  Router(RoutePolicy policy, std::vector<DeviceEntry> devices);

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// The device this policy would pick for `model` at the current load,
  /// ignoring saturation (deterministic given pending state; at idle this
  /// is purely the bound-guided preference). Exposed for unit tests and
  /// reporting.
  int preferred_device(const std::string& model) const;

  /// Blocks until some *alive* device is below its pending cap, places a
  /// group of `model` on the best such device, and returns that device's
  /// placement (its bucket for the model + its index). Each reserve() must
  /// be paired with exactly one complete(). When the fleet is fully dead
  /// and close() was called, returns device = -1 instead of blocking
  /// forever — the caller owns the unplaced group (shutdown path).
  Placement reserve(const std::string& model);

  /// Frees the capacity reserved for one group of `model` on `device`.
  void complete(int device, const std::string& model);

  /// Chaos lifecycle: a dead device is excluded from preference and
  /// placement (the existing steal path routes around it); set_alive(true)
  /// re-admits it and wakes blocked reserve() calls. Pending accounting is
  /// untouched — in-flight reservations still complete() normally.
  void set_alive(int device, bool alive);
  bool alive(int device) const;

  /// Replaces one device's cost table (hot-join: a cold-revived engine
  /// re-predicts its buckets/batch times at warm time). The virtual clock
  /// keeps its history so accumulated load still counts against the device.
  void update_costs(int device, std::map<std::string, ModelCost> costs);

  /// Marks the router shutting down: reserve() on a fully-dead fleet stops
  /// blocking and returns device = -1. Placement on live devices continues
  /// (stop() drains the queue through them).
  void close();

  struct Snapshot {
    std::vector<std::uint64_t> placements;  ///< groups placed per device
    /// Groups placed on a non-preferred device because the preferred one
    /// was saturated (work-stealing fallback). Always 0 under round-robin:
    /// the rotation has no cost preference to steal from, so passing a
    /// saturated device's turn is not a steal.
    std::uint64_t stolen = 0;
    std::vector<int> pending_groups;
    /// Per-device virtual clocks (predicted modelled busy seconds, total).
    std::vector<double> virtual_seconds;
    std::vector<bool> alive;
  };
  Snapshot snapshot() const;

  RoutePolicy policy() const { return policy_; }
  /// Device count. devices_ never grows or shrinks after the constructor
  /// (only element fields mutate, under mu_), so reading its size lock-free
  /// is safe; the analysis exemption states that, it does not waive it.
  int size() const CB_NO_THREAD_SAFETY_ANALYSIS {
    return static_cast<int>(devices_.size());
  }

 private:
  struct DeviceState {
    DeviceEntry entry;
    int pending_groups = 0;
    double virtual_seconds = 0;
    std::uint64_t placements = 0;
    bool alive = true;
  };

  /// The const helpers below walk guarded placement state (devices_,
  /// rr_next_), so callers must hold mu_ — CB_REQUIRES makes the analyzer
  /// enforce what the old *_locked naming only suggested.
  const ModelCost& cost(const DeviceState& d, const std::string& model) const
      CB_REQUIRES(mu_);
  double score(const DeviceState& d, const std::string& model) const
      CB_REQUIRES(mu_);
  /// Whether device `i` may take a placement: alive, and (when
  /// `only_available`) below its pending cap. A named method rather than a
  /// lambda inside pick() because the analyzer treats lambdas as separate
  /// functions that do not inherit the caller's held locks.
  bool placeable(int i, bool only_available) const CB_REQUIRES(mu_);
  /// Best *alive* device for `model` under `policy_`; when
  /// `only_available`, also skip devices at their pending cap (-1 if none
  /// qualifies).
  int pick(const std::string& model, bool only_available) const
      CB_REQUIRES(mu_);
  bool any_alive_locked() const CB_REQUIRES(mu_);

  RoutePolicy policy_;
  mutable Mutex mu_;
  CondVar cv_;
  std::vector<DeviceState> devices_ CB_GUARDED_BY(mu_);
  std::uint64_t stolen_ CB_GUARDED_BY(mu_) = 0;
  int rr_next_ CB_GUARDED_BY(mu_) = 0;
  bool closed_ CB_GUARDED_BY(mu_) = false;
};

}  // namespace convbound
