#include "convbound/cluster/router.hpp"

#include <algorithm>
#include <limits>

#include "convbound/util/check.hpp"

namespace convbound {

const char* to_string(RoutePolicy p) {
  switch (p) {
    case RoutePolicy::kBoundAware: return "bound-aware";
    case RoutePolicy::kRoundRobin: return "round-robin";
    case RoutePolicy::kLeastLoaded: return "least-loaded";
  }
  return "?";
}

RoutePolicy route_policy_by_name(const std::string& name) {
  if (name == "bound") return RoutePolicy::kBoundAware;
  if (name == "rr") return RoutePolicy::kRoundRobin;
  if (name == "least") return RoutePolicy::kLeastLoaded;
  CB_CHECK_MSG(false, "unknown route policy '" << name
                                               << "' (bound|rr|least)");
  return RoutePolicy::kBoundAware;
}

Router::Router(RoutePolicy policy, std::vector<DeviceEntry> devices)
    : policy_(policy) {
  CB_CHECK_MSG(!devices.empty(), "router needs at least one device");
  devices_.reserve(devices.size());
  for (auto& e : devices) {
    CB_CHECK_MSG(e.max_pending_groups >= 1,
                 "device '" << e.name << "' needs pending capacity >= 1");
    CB_CHECK_MSG(!e.costs.empty(),
                 "device '" << e.name << "' has no model costs");
    DeviceState st;
    st.entry = std::move(e);
    devices_.push_back(std::move(st));
  }
}

const Router::ModelCost& Router::cost(const DeviceState& d,
                                      const std::string& model) const {
  const auto it = d.entry.costs.find(model);
  CB_CHECK_MSG(it != d.entry.costs.end(), "device '" << d.entry.name
                                                     << "' cannot serve '"
                                                     << model << "'");
  return it->second;
}

double Router::score(const DeviceState& d, const std::string& model) const {
  const ModelCost& c = cost(d, model);
  return (d.virtual_seconds + c.batch_seconds) /
         static_cast<double>(c.bucket);
}

bool Router::any_alive_locked() const {
  for (const DeviceState& d : devices_)
    if (d.alive) return true;
  return false;
}

// Dead devices are invisible to both preference and placement: excluding
// them here is what routes a dead device's traffic through the existing
// steal path instead of a separate failover mechanism.
bool Router::placeable(int i, bool only_available) const {
  const DeviceState& d = devices_[static_cast<std::size_t>(i)];
  if (!d.alive) return false;
  return !only_available || d.pending_groups < d.entry.max_pending_groups;
}

int Router::pick(const std::string& model, bool only_available) const {
  const int n = size();
  if (policy_ == RoutePolicy::kRoundRobin) {
    // Rotate; a saturated device passes its turn to the next one.
    for (int off = 0; off < n; ++off) {
      const int i = (rr_next_ + off) % n;
      if (placeable(i, only_available)) return i;
    }
    return -1;
  }

  int best = -1;
  double best_score = std::numeric_limits<double>::infinity();
  for (int i = 0; i < n; ++i) {
    if (!placeable(i, only_available)) continue;
    const DeviceState& d = devices_[static_cast<std::size_t>(i)];
    const double s = policy_ == RoutePolicy::kLeastLoaded
                         ? static_cast<double>(d.pending_groups)
                         : score(d, model);
    if (s < best_score) {  // strict: ties break toward the lower index
      best_score = s;
      best = i;
    }
  }
  return best;
}

int Router::preferred_device(const std::string& model) const {
  MutexLock lock(mu_);
  const int i = pick(model, /*only_available=*/false);
  CB_CHECK_MSG(i >= 0, "no device can serve '" << model << "'");
  return i;
}

Placement Router::reserve(const std::string& model) {
  UniqueLock lock(mu_);
  // A fully-dead fleet blocks (a revive may restore capacity) unless the
  // router is closing — then the caller gets device = -1 and owns the
  // group, instead of stop() deadlocking behind a reserve() that can
  // never succeed.
  int chosen = pick(model, /*only_available=*/true);
  while (chosen < 0 && !(closed_ && !any_alive_locked())) {
    cv_.wait(lock);
    chosen = pick(model, /*only_available=*/true);
  }
  if (chosen < 0) return Placement{1, -1};
  // The steal counter compares against the unconstrained preference: a
  // group landing somewhere other than its best device means the fallback
  // kicked in. Round-robin has no cost preference — a saturated device
  // passing its turn is the rotation working as designed, so only the
  // cost-driven policies (bound-aware, least-loaded) count steals.
  if (policy_ != RoutePolicy::kRoundRobin) {
    const int preferred = pick(model, /*only_available=*/false);
    if (chosen != preferred) ++stolen_;
  }
  // Advance past the device that actually took the group: after a steal,
  // the rotation must not hand the stealing device its own upcoming turn
  // as well (it would get consecutive groups and starve the next device).
  if (policy_ == RoutePolicy::kRoundRobin) rr_next_ = (chosen + 1) % size();

  DeviceState& d = devices_[static_cast<std::size_t>(chosen)];
  const ModelCost& c = cost(d, model);
  ++d.pending_groups;
  d.virtual_seconds += c.batch_seconds;  // the virtual clock never drains
  ++d.placements;
  // The cost-table prediction rides along so the scheduler's placement
  // trace event can show what the router believed this batch would cost.
  return Placement{c.bucket, chosen, c.batch_seconds};
}

void Router::complete(int device, const std::string& model) {
  {
    MutexLock lock(mu_);
    CB_CHECK_MSG(device >= 0 && device < size(),
                 "complete() for unknown device " << device);
    DeviceState& d = devices_[static_cast<std::size_t>(device)];
    cost(d, model);  // validates the pair
    CB_CHECK_MSG(d.pending_groups > 0,
                 "complete() without a reservation on '" << d.entry.name
                                                         << "'");
    // Only the liveness cap drains; the virtual clock keeps its history so
    // scores stay proportional to each device's accumulated modelled work.
    --d.pending_groups;
  }
  cv_.notify_all();
}

void Router::set_alive(int device, bool alive) {
  {
    MutexLock lock(mu_);
    CB_CHECK_MSG(device >= 0 && device < size(),
                 "set_alive() for unknown device " << device);
    devices_[static_cast<std::size_t>(device)].alive = alive;
  }
  // A revive restores capacity a blocked reserve() may be waiting for; a
  // kill may flip a blocked reserve() into the closed-fleet bailout.
  cv_.notify_all();
}

bool Router::alive(int device) const {
  MutexLock lock(mu_);
  CB_CHECK_MSG(device >= 0 && device < size(),
               "alive() for unknown device " << device);
  return devices_[static_cast<std::size_t>(device)].alive;
}

void Router::update_costs(int device, std::map<std::string, ModelCost> costs) {
  MutexLock lock(mu_);
  CB_CHECK_MSG(device >= 0 && device < size(),
               "update_costs() for unknown device " << device);
  CB_CHECK_MSG(!costs.empty(), "device '"
                                   << devices_[static_cast<std::size_t>(device)]
                                          .entry.name
                                   << "' cost update has no model costs");
  devices_[static_cast<std::size_t>(device)].entry.costs = std::move(costs);
}

void Router::close() {
  {
    MutexLock lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

Router::Snapshot Router::snapshot() const {
  MutexLock lock(mu_);
  Snapshot s;
  s.stolen = stolen_;
  for (const DeviceState& d : devices_) {
    s.placements.push_back(d.placements);
    s.pending_groups.push_back(d.pending_groups);
    s.virtual_seconds.push_back(d.virtual_seconds);
    s.alive.push_back(d.alive);
  }
  return s;
}

}  // namespace convbound
