#include "convbound/cluster/cluster.hpp"

#include <utility>

#include "convbound/util/check.hpp"
#include "convbound/util/thread_pool.hpp"

namespace convbound {

ClusterServer::ClusterServer(std::vector<ServedModel> models,
                             ClusterOptions opts)
    : opts_(std::move(opts)),
      models_(index_models(std::move(models))),
      queue_(opts_.max_queue) {
  CB_CHECK_MSG(!opts_.devices.empty(), "cluster needs at least one device");
  // The fleet queue answers expired requests itself (promptly, freeing
  // capacity); they never reach a device, so the front door counts them.
  queue_.set_on_expired([this](std::size_t n) { stats_.record_expired(n); });
  const EngineOptions eopts = opts_.engine_options();
  for (std::size_t i = 0; i < opts_.devices.size(); ++i) {
    DeviceConfig cfg = opts_.devices[i];
    if (cfg.name.empty())
      cfg.name = "d" + std::to_string(i) + ":" + cfg.spec.name;
    devices_.push_back(
        std::make_unique<ClusterDevice>(models_, std::move(cfg), eopts));
  }
}

ClusterServer::~ClusterServer() { stop(); }

void ClusterServer::start() {
  CB_CHECK_MSG(!started_, "cluster already started");
  // Devices warm serially here but each warm() parallelises internally
  // across the global pool, so fleet startup still scales with cores.
  for (auto& d : devices_) d->start();

  // The Router's cost table comes from the plan layer at warm time: for
  // every (device, model), the predicted whole-batch time of the bucket
  // choose_batch_bucket picked against that device's spec — SimGpu dry-run
  // predictions under the default kMeasured planning, pure Eq 20/22 +
  // roofline under kAnalytic. Routing itself never measures anything; it
  // reads these per-device predictions.
  std::vector<Router::DeviceEntry> entries;
  for (auto& d : devices_) {
    Router::DeviceEntry e;
    e.name = d->name();
    e.max_pending_groups = d->config().effective_pending();
    for (const auto& [name, model] : models_) {
      Router::ModelCost cost;
      cost.bucket = d->engine().bucket_of(name);
      cost.batch_seconds = d->engine().predicted_batch_seconds(name);
      e.costs.emplace(name, cost);
    }
    entries.push_back(std::move(e));
  }
  router_ = std::make_unique<Router>(opts_.policy, std::move(entries));

  scheduler_ = std::make_unique<BatchScheduler>(
      queue_, opts_.max_delay,
      [this](const std::string& m) { return router_->reserve(m); },
      [this](std::vector<PendingRequest> group, const std::string& m,
             const Placement& p) {
        devices_[static_cast<std::size_t>(p.device)]->enqueue(
            std::move(group), m,
            [this, d = p.device, m] { router_->complete(d, m); });
      });
  stats_.mark_start();
  started_ = true;
  scheduler_->start();
}

void ClusterServer::stop() {
  if (stopped_.exchange(true)) return;
  queue_.close();
  // The scheduler drains the closed queue (placing every remaining group),
  // then exits; devices must stay alive until it joins because reserve()
  // unblocks only through their completions.
  if (scheduler_ != nullptr) scheduler_->join();
  for (auto& d : devices_) d->drain();
  // Only a never-started cluster still holds queued requests here.
  for (auto& p : queue_.drain()) {
    InferResponse r;
    r.status = ServeStatus::kShutdown;
    p.promise.set_value(std::move(r));
  }
}

std::future<InferResponse> ClusterServer::submit(InferRequest request) {
  validate_request(models_, request);
  PendingRequest p;
  p.request = std::move(request);
  p.enqueued = ServeClock::now();
  std::future<InferResponse> fut = p.promise.get_future();

  if (stopped_) {
    InferResponse r;
    r.status = ServeStatus::kShutdown;
    p.promise.set_value(std::move(r));
    return fut;
  }
  if (!queue_.push(std::move(p))) {
    // `p` is untouched on a failed push (full or closed); stop() flips
    // stopped_ before closing the queue, so re-reading it distinguishes a
    // shutdown race from genuine backpressure.
    InferResponse r;
    if (stopped_) {
      r.status = ServeStatus::kShutdown;
    } else {
      r.status = ServeStatus::kRejected;
      stats_.record_rejected();
    }
    p.promise.set_value(std::move(r));
    return fut;
  }
  stats_.record_submitted(queue_.depth());
  return fut;
}

ClusterSnapshot ClusterServer::stats() const {
  ClusterSnapshot snap;
  Router::Snapshot route;
  // started_ (atomic) is flipped after router_ is assigned, so gating on it
  // keeps a stats() poll racing start() off the half-built pointer.
  if (started_) route = router_->snapshot();
  snap.stolen_groups = route.stolen;

  std::vector<StatsSnapshot> parts;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    DeviceSnapshot d;
    d.name = devices_[i]->name();
    d.spec_name = devices_[i]->config().spec.name;
    d.stats = devices_[i]->stats();
    if (i < route.placements.size()) d.placements = route.placements[i];
    parts.push_back(d.stats);
    snap.devices.push_back(std::move(d));
  }

  snap.fleet = merge_snapshots(parts);
  // Front-door truth overrides the merge: devices never see submissions or
  // rejections, and the fleet clock starts at cluster start(). Requests the
  // fleet queue expired before placement are the front door's too — they
  // add to the devices' collect-time expirations.
  const StatsSnapshot front = stats_.snapshot();
  snap.fleet.submitted = front.submitted;
  snap.fleet.rejected = front.rejected;
  snap.fleet.expired += front.expired;
  snap.fleet.wall_seconds = front.wall_seconds;
  snap.fleet.throughput_rps =
      front.wall_seconds > 0
          ? static_cast<double>(snap.fleet.completed) / front.wall_seconds
          : 0;
  snap.fleet.queue_depth = queue_.depth();
  snap.fleet.max_queue_depth = front.max_queue_depth;
  return snap;
}

const Router& ClusterServer::router() const {
  CB_CHECK_MSG(router_ != nullptr, "router exists only after start()");
  return *router_;
}

const ServedModel& ClusterServer::model(const std::string& name) const {
  const auto it = models_.find(name);
  CB_CHECK_MSG(it != models_.end(), "unknown served model '" << name << "'");
  return it->second;
}

}  // namespace convbound
