#include "convbound/cluster/cluster.hpp"

#include <utility>

#include "convbound/obs/trace.hpp"
#include "convbound/util/check.hpp"
#include "convbound/util/thread_pool.hpp"

namespace convbound {

ClusterServer::ClusterServer(std::vector<ServedModel> models,
                             ClusterOptions opts)
    : opts_(std::move(opts)),
      models_(index_models(std::move(models))),
      tenants_(opts_.classes),
      stats_(opts_.shards),
      queue_(opts_.max_queue, opts_.shards) {
  CB_CHECK_MSG(!opts_.devices.empty(), "cluster needs at least one device");
  queue_.set_tenancy(&tenants_, opts_.admission_congestion);
  // The fleet queue answers expired requests itself (promptly, freeing
  // capacity); they never reach a device, so the front door counts them —
  // on the exec stripe, keeping expiry off the submit stripes' locks.
  queue_.set_on_expired([this](std::size_t cls, std::size_t n) {
    stats_.exec_stripe().record_expired(
        n, cls < tenants_.size() ? tenants_.cls(cls).name : std::string());
  });
  EngineOptions eopts = opts_.engine_options();
  for (std::size_t i = 0; i < opts_.devices.size(); ++i) {
    DeviceConfig cfg = opts_.devices[i];
    if (cfg.name.empty())
      cfg.name = "d" + std::to_string(i) + ":" + cfg.spec.name;
    // Each device engine stamps its fleet index on trace events, so a
    // trace separates the devices into their own process rows.
    eopts.device_ordinal = static_cast<int>(i);
    devices_.push_back(
        std::make_unique<ClusterDevice>(models_, std::move(cfg), eopts));
  }
}

ClusterServer::~ClusterServer() { stop(); }

void ClusterServer::start() {
  CB_CHECK_MSG(!stopped_.load(std::memory_order_seq_cst),
               "cluster cannot restart after stop()");
  CB_CHECK_MSG(!started_.load(std::memory_order_seq_cst),
               "cluster already started");
  // Devices warm serially here but each warm() parallelises internally
  // across the global pool, so fleet startup still scales with cores.
  for (auto& d : devices_) d->start();

  // The Router's cost table comes from the plan layer at warm time: for
  // every (device, model), the predicted whole-batch time of the bucket
  // choose_batch_bucket picked against that device's spec — SimGpu dry-run
  // predictions under the default kMeasured planning, pure Eq 20/22 +
  // roofline under kAnalytic. Routing itself never measures anything; it
  // reads these per-device predictions.
  std::vector<Router::DeviceEntry> entries;
  for (auto& d : devices_) {
    Router::DeviceEntry e;
    e.name = d->name();
    e.max_pending_groups = d->config().effective_pending();
    for (const auto& [name, model] : models_) {
      Router::ModelCost cost;
      cost.bucket = d->engine().bucket_of(name);
      cost.batch_seconds = d->engine().predicted_batch_seconds(name);
      e.costs.emplace(name, cost);
    }
    entries.push_back(std::move(e));
  }
  router_ = std::make_unique<Router>(opts_.policy, std::move(entries));

  scheduler_ = std::make_unique<BatchScheduler>(
      queue_, opts_.max_delay,
      [this](const std::string& m) { return router_->reserve(m); },
      [this](std::vector<PendingRequest> group, const std::string& m,
             const Placement& p) {
        // device < 0: the router bailed out of a fully-dead closing fleet
        // (no reservation held). The group was collected off the closed
        // queue, so its requests resolve kShutdown via requeue_group.
        if (p.device < 0) {
          requeue_group(std::move(group));
          return;
        }
        const bool accepted = devices_[static_cast<std::size_t>(p.device)]
                                  ->enqueue(std::move(group), m,
                                            [this, d = p.device, m] {
                                              router_->complete(d, m);
                                            });
        if (!accepted) {
          // The device died between reserve() and enqueue(). enqueue left
          // the group with us; release the reservation and send every
          // request back through the front queue (zero loss).
          router_->complete(p.device, m);
          requeued_requests_.fetch_add(requeue_group(std::move(group)),
                                       std::memory_order_relaxed);
        }
      });
  stats_.mark_start();
  started_.store(true, std::memory_order_seq_cst);
  scheduler_->start();
}

void ClusterServer::stop() {
  if (stopped_.exchange(true, std::memory_order_seq_cst)) return;
  queue_.close();
  // Closing the router lets a reserve() blocked on a fully-dead fleet
  // return (device = -1) instead of deadlocking the scheduler join below;
  // placement on live devices is unaffected, so the drain still serves.
  if (router_ != nullptr) router_->close();
  // The scheduler drains the closed queue (placing every remaining group),
  // then exits; devices must stay alive until it joins because reserve()
  // unblocks only through their completions.
  if (scheduler_ != nullptr) scheduler_->join();
  for (auto& d : devices_) d->drain();
  // Only a never-started cluster still holds queued requests here.
  for (auto& p : queue_.drain()) {
    InferResponse r;
    r.status = ServeStatus::kShutdown;
    p.promise.set_value(std::move(r));
  }
}

std::future<InferResponse> ClusterServer::submit(InferRequest request) {
  validate_request(models_, request);
  PendingRequest p;
  p.class_index = tenants_.resolve(request.tenant);
  p.tenant_class = tenants_.cls(p.class_index).name;
  p.request = std::move(request);
  p.enqueued = ServeClock::now();
  p.class_deadline = tenants_.effective_deadline(p.class_index, p.enqueued,
                                                 ServeTimePoint::max());
  const std::string cls = p.tenant_class;
  std::future<InferResponse> fut = p.promise.get_future();
  // Correlation id only when tracing (see InferenceServer::submit).
  const bool tracing = obs::on();
  if (tracing) p.trace_id = ObsRegistry::next_request_id();
  const std::uint64_t trace_id = p.trace_id;
  const ServeTimePoint enqueued = p.enqueued;

  // Stats recording goes to this request's shard stripe, so producers
  // hashed to different shards never contend on a stats lock either.
  ServerStats& stripe =
      stats_.stripe(queue_.shard_of(p.request.model, p.class_index));

  if (stopped_.load(std::memory_order_seq_cst)) {
    InferResponse r;
    r.status = ServeStatus::kShutdown;
    stripe.record_shutdown_rejected(cls);
    obs::instant(TraceStage::kShed, enqueued, trace_id, 0, -1,
                 static_cast<double>(ServeStatus::kShutdown));
    p.promise.set_value(std::move(r));
    return fut;
  }
  // `p` is untouched on a non-kOk push; the queue's own closed flag (not a
  // re-read of stopped_) decides shutdown races, so a submit that loses to
  // a concurrent stop() resolves kShutdown instead of hanging.
  std::size_t depth_after = 0;
  switch (queue_.push(std::move(p), &depth_after)) {
    case RequestQueue::Admit::kOk:
      // depth_after came out of the push itself — the old code re-locked
      // the queue with queue_.depth() right after push released it.
      stripe.record_submitted(depth_after, cls);
      obs::instant(TraceStage::kAdmit, enqueued, trace_id, 0, -1,
                   static_cast<double>(depth_after));
      return fut;
    case RequestQueue::Admit::kFull: {
      InferResponse r;
      r.status = ServeStatus::kRejected;
      stripe.record_rejected(cls);
      obs::instant(TraceStage::kShed, enqueued, trace_id, 0, -1,
                   static_cast<double>(ServeStatus::kRejected));
      p.promise.set_value(std::move(r));
      return fut;
    }
    case RequestQueue::Admit::kQuota: {
      InferResponse r;
      r.status = ServeStatus::kQuotaExceeded;
      stripe.record_quota_rejected(cls);
      obs::instant(TraceStage::kShed, enqueued, trace_id, 0, -1,
                   static_cast<double>(ServeStatus::kQuotaExceeded));
      p.promise.set_value(std::move(r));
      return fut;
    }
    case RequestQueue::Admit::kClosed: {
      InferResponse r;
      r.status = ServeStatus::kShutdown;
      stripe.record_shutdown_rejected(cls);
      obs::instant(TraceStage::kShed, enqueued, trace_id, 0, -1,
                   static_cast<double>(ServeStatus::kShutdown));
      p.promise.set_value(std::move(r));
      return fut;
    }
  }
  return fut;  // unreachable
}

std::size_t ClusterServer::requeue_group(std::vector<PendingRequest> group) {
  std::size_t requeued = 0;
  for (auto& p : group) {
    if (queue_.readmit(std::move(p))) {
      ++requeued;
    } else {
      // Queue closed: the fleet is shutting down; resolve instead of
      // re-queueing into a queue nobody will drain for serving.
      InferResponse r;
      r.status = ServeStatus::kShutdown;
      p.promise.set_value(std::move(r));
    }
  }
  return requeued;
}

std::size_t ClusterServer::fail_device(std::size_t i) {
  CB_CHECK_MSG(started_.load(std::memory_order_seq_cst),
               "fail_device() before start()");
  CB_CHECK_MSG(i < devices_.size(), "fail_device() for unknown device " << i);
  // Order matters: mark the device dead in the router first so no *new*
  // placement lands on it, then strand whatever its queue already held.
  // A placement that raced past set_alive is bounced by enqueue() and
  // re-queued by the dispatch path above — either way, zero loss.
  router_->set_alive(static_cast<int>(i), false);
  std::vector<ClusterDevice::StrandedGroup> stranded = devices_[i]->fail();
  device_failures_.fetch_add(1, std::memory_order_relaxed);
  std::size_t requeued = 0;
  for (auto& s : stranded) {
    // The reservation pinned by the stranded group returns first so the
    // surviving devices' capacity accounting is exact before the requests
    // re-enter the queue.
    if (s.on_done) s.on_done();
    requeued += requeue_group(std::move(s.group));
  }
  requeued_requests_.fetch_add(requeued, std::memory_order_relaxed);
  return requeued;
}

void ClusterServer::revive_device(std::size_t i, ReviveMode mode) {
  CB_CHECK_MSG(started_.load(std::memory_order_seq_cst),
               "revive_device() before start()");
  CB_CHECK_MSG(i < devices_.size(),
               "revive_device() for unknown device " << i);
  devices_[i]->revive(mode);
  // Hot-join: refresh the router's cost row from the revived engine's
  // warm-time predictions *before* re-admitting the device, so the first
  // placement after the join already sees the rebuilt buckets. The rest of
  // the fleet keeps placing on its own rows throughout.
  std::map<std::string, Router::ModelCost> costs;
  for (const auto& [name, model] : models_) {
    Router::ModelCost cost;
    cost.bucket = devices_[i]->engine().bucket_of(name);
    cost.batch_seconds = devices_[i]->engine().predicted_batch_seconds(name);
    costs.emplace(name, cost);
  }
  router_->update_costs(static_cast<int>(i), std::move(costs));
  router_->set_alive(static_cast<int>(i), true);
  device_revives_.fetch_add(1, std::memory_order_relaxed);
}

ClusterSnapshot ClusterServer::stats() const {
  ClusterSnapshot snap;
  Router::Snapshot route;
  // started_ (atomic) is flipped after router_ is assigned, so gating on it
  // keeps a stats() poll racing start() off the half-built pointer.
  if (started_.load(std::memory_order_seq_cst)) route = router_->snapshot();
  snap.stolen_groups = route.stolen;
  snap.device_failures = device_failures_.load(std::memory_order_relaxed);
  snap.device_revives = device_revives_.load(std::memory_order_relaxed);
  snap.requeued_requests = requeued_requests_.load(std::memory_order_relaxed);

  std::vector<StatsSnapshot> parts;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    DeviceSnapshot d;
    d.name = devices_[i]->name();
    d.spec_name = devices_[i]->config().spec.name;
    d.stats = devices_[i]->stats();
    d.alive = i < route.alive.size() ? route.alive[i] : devices_[i]->alive();
    if (i < route.placements.size()) d.placements = route.placements[i];
    parts.push_back(d.stats);
    snap.devices.push_back(std::move(d));
  }

  snap.fleet = merge_snapshots(parts);
  // Front-door truth overrides the merge: devices never see submissions or
  // rejections, and the fleet clock starts at cluster start(). Requests the
  // fleet queue expired before placement are the front door's too — they
  // add to the devices' collect-time expirations, as do the front door's
  // per-class slices (submits, rejections, queue-side expiry).
  // StripedServerStats::snapshot() folds every per-shard stripe before this
  // override — reading a single stripe here would report only the slice of
  // submissions that hashed to that shard (the skewed-stripe regression
  // test in tests/stats_test.cpp pins the fold).
  const StatsSnapshot front = stats_.snapshot();
  snap.fleet.submitted = front.submitted;
  snap.fleet.rejected = front.rejected;
  snap.fleet.quota_rejected = front.quota_rejected;
  snap.fleet.shutdown_rejected = front.shutdown_rejected;
  snap.fleet.expired += front.expired;
  for (const auto& [name, part] : front.classes) {
    ClassSnapshot& c = snap.fleet.classes[name];
    c.submitted = part.submitted;
    c.rejected = part.rejected;
    c.quota_rejected = part.quota_rejected;
    c.shutdown_rejected = part.shutdown_rejected;
    c.expired += part.expired;
  }
  snap.fleet.wall_seconds = front.wall_seconds;
  snap.fleet.throughput_rps =
      front.wall_seconds > 0
          ? static_cast<double>(snap.fleet.completed) / front.wall_seconds
          : 0;
  // Shard fields describe the fleet's shared front-door queue, not any
  // device queue (devices drain scheduler groups, not shards).
  snap.fleet.queue_depth = queue_.depth();
  snap.fleet.shard_depths.resize(queue_.num_shards());
  snap.fleet.shard_max_depths.resize(queue_.num_shards());
  for (std::size_t i = 0; i < queue_.num_shards(); ++i) {
    snap.fleet.shard_depths[i] = queue_.shard_depth(i);
    snap.fleet.shard_max_depths[i] = queue_.shard_max_depth(i);
  }
  snap.fleet.shard_imbalance = shard_imbalance_ratio(snap.fleet.shard_max_depths);
  snap.fleet.max_queue_depth = front.max_queue_depth;
  return snap;
}

const Router& ClusterServer::router() const {
  CB_CHECK_MSG(router_ != nullptr, "router exists only after start()");
  return *router_;
}

const ServedModel& ClusterServer::model(const std::string& name) const {
  const auto it = models_.find(name);
  CB_CHECK_MSG(it != models_.end(), "unknown served model '" << name << "'");
  return it->second;
}

}  // namespace convbound
