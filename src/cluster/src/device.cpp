#include "convbound/cluster/device.hpp"

#include "convbound/util/check.hpp"

namespace convbound {

namespace {

EngineOptions device_engine_options(const EngineOptions& base,
                                    const DeviceConfig& config) {
  EngineOptions e = base;
  e.machine = config.spec;
  e.replicas = config.effective_replicas();
  return e;
}

}  // namespace

ClusterDevice::ClusterDevice(const std::map<std::string, ServedModel>& models,
                             DeviceConfig config,
                             const EngineOptions& engine_opts)
    : config_(std::move(config)),
      models_(&models),
      engine_opts_(engine_opts),
      engine_(std::make_unique<ServeEngine>(
          models, device_engine_options(engine_opts, config_), &stats_)) {
  CB_CHECK_MSG(config_.workers >= 1, "device workers must be >= 1");
  if (config_.name.empty()) config_.name = config_.spec.name;
}

ClusterDevice::~ClusterDevice() { drain(); }

void ClusterDevice::start() {
  {
    MutexLock lock(mu_);
    CB_CHECK_MSG(!started_, "device already started");
    started_ = true;
  }
  // Pointer under engine_mu_, pointee outside it: warm() is long and the
  // engine is thread-safe; holding the lock across it would block stats()
  // polls for the whole warm. No cold revive can race a first start().
  ServeEngine* engine = nullptr;
  {
    MutexLock lock(engine_mu_);
    engine = engine_.get();
  }
  engine->warm();
  stats_.mark_start();
  spawn_workers();
}

void ClusterDevice::spawn_workers() {
  MutexLock lock(mu_);
  CB_CHECK_MSG(workers_.empty(), "device workers already running");
  mode_ = Mode::kRunning;
  alive_ = true;
  workers_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

void ClusterDevice::worker_loop() {
  for (;;) {
    Task task;
    {
      UniqueLock lock(mu_);
      while (mode_ == Mode::kRunning && tasks_.empty()) cv_.wait(lock);
      // kFailing abandons the queue (fail() strands it for the cluster to
      // re-route); kDraining runs it dry first.
      if (mode_ == Mode::kFailing) return;
      if (tasks_.empty()) return;  // kDraining and dry
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    // RAII: the Router reservation must return even if execute_batch has a
    // defect (a leak would silently shrink the device's capacity until the
    // fleet deadlocks).
    struct Done {
      std::function<void()>* fn;
      ~Done() {
        if (*fn) (*fn)();
      }
    } run_done{&task.on_done};
    // The pointer read must be under engine_mu_ (a cold revive on another
    // thread swaps it); the batch itself runs outside the lock. The pointee
    // cannot be destroyed mid-batch: revive() requires workers_ joined.
    ServeEngine* engine = nullptr;
    {
      MutexLock lock(engine_mu_);
      engine = engine_.get();
    }
    engine->execute_batch(std::move(task.group), task.model);
  }
}

void ClusterDevice::join_workers() {
  std::vector<std::thread> workers;
  {
    MutexLock lock(mu_);
    workers.swap(workers_);
  }
  cv_.notify_all();
  for (std::thread& w : workers) w.join();
}

void ClusterDevice::drain() {
  {
    MutexLock lock(mu_);
    if (workers_.empty()) return;
    mode_ = Mode::kDraining;
  }
  join_workers();
  MutexLock lock(mu_);
  alive_ = false;
}

bool ClusterDevice::enqueue(std::vector<PendingRequest>&& group,
                            const std::string& model,
                            std::function<void()> on_done) {
  {
    MutexLock lock(mu_);
    CB_CHECK_MSG(started_, "device not started");
    // Refusal must leave `group` untouched: taking the vector by value here
    // would destroy the requests (and break their promises) the instant a
    // dead device bounced a placement that raced fail().
    if (!alive_ || mode_ != Mode::kRunning) return false;
    tasks_.push_back(Task{std::move(group), model, std::move(on_done)});
  }
  cv_.notify_one();
  return true;
}

std::vector<ClusterDevice::StrandedGroup> ClusterDevice::fail() {
  {
    MutexLock lock(mu_);
    if (!alive_) return {};
    mode_ = Mode::kFailing;
    alive_ = false;  // enqueue() starts bouncing immediately
  }
  join_workers();
  MutexLock lock(mu_);
  std::vector<StrandedGroup> stranded;
  stranded.reserve(tasks_.size());
  for (Task& t : tasks_)
    stranded.push_back(
        StrandedGroup{std::move(t.group), std::move(t.model),
                      std::move(t.on_done)});
  tasks_.clear();
  return stranded;
}

void ClusterDevice::revive(ReviveMode mode) {
  {
    MutexLock lock(mu_);
    CB_CHECK_MSG(started_, "cannot revive a never-started device");
    CB_CHECK_MSG(!alive_ && workers_.empty(),
                 "revive() on a live device '" << config_.name << "'");
  }
  if (mode == ReviveMode::kCold) {
    // Rebuild + re-warm off to the side, then swap under the stats lock:
    // pollers never see a half-built engine, and the fleet keeps serving on
    // the other devices the whole time.
    auto fresh = std::make_unique<ServeEngine>(
        *models_, device_engine_options(engine_opts_, config_), &stats_);
    fresh->warm();
    MutexLock lock(engine_mu_);
    engine_ = std::move(fresh);
  }
  spawn_workers();
}

bool ClusterDevice::alive() const {
  MutexLock lock(mu_);
  return alive_;
}

StatsSnapshot ClusterDevice::stats() const {
  StatsSnapshot s = stats_.snapshot();
  MutexLock lock(engine_mu_);
  engine_->fill_stats(s);
  return s;
}

}  // namespace convbound
