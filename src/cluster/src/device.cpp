#include "convbound/cluster/device.hpp"

#include "convbound/util/check.hpp"

namespace convbound {

ClusterDevice::ClusterDevice(const std::map<std::string, ServedModel>& models,
                             DeviceConfig config,
                             const EngineOptions& engine_opts)
    : config_(std::move(config)),
      engine_(models,
              [&] {
                EngineOptions e = engine_opts;
                e.machine = config_.spec;
                e.replicas = config_.effective_replicas();
                return e;
              }(),
              &stats_) {
  CB_CHECK_MSG(config_.workers >= 1, "device workers must be >= 1");
  if (config_.name.empty()) config_.name = config_.spec.name;
}

void ClusterDevice::start() {
  CB_CHECK_MSG(pool_ == nullptr, "device already started");
  engine_.warm();
  stats_.mark_start();
  pool_ = std::make_unique<ThreadPool>(
      static_cast<std::size_t>(config_.workers));
}

void ClusterDevice::drain() { pool_.reset(); }

void ClusterDevice::enqueue(std::vector<PendingRequest> group,
                            const std::string& model,
                            std::function<void()> on_done) {
  CB_CHECK_MSG(pool_ != nullptr, "device not started");
  (void)pool_->submit(
      [this, g = std::move(group), model, done = std::move(on_done)]() mutable {
        // RAII: the Router reservation must return even if execute_batch
        // has a defect (the task future is discarded, so a leak would
        // silently shrink the device's capacity until the fleet deadlocks).
        struct Done {
          std::function<void()>* fn;
          ~Done() {
            if (*fn) (*fn)();
          }
        } run_done{&done};
        engine_.execute_batch(std::move(g), model);
      });
}

StatsSnapshot ClusterDevice::stats() const {
  StatsSnapshot s = stats_.snapshot();
  engine_.fill_stats(s);
  return s;
}

}  // namespace convbound
