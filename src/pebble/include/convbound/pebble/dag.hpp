// Computation DAGs for red-blue pebble game analysis.
//
// Vertices are numbered in insertion order, which the builder guarantees to
// be topological (a vertex's predecessors must already exist). Edges are
// stored CSR-style in both directions.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace convbound {

using VertexId = std::uint32_t;

struct Dag {
  // predecessors, CSR
  std::vector<std::uint32_t> pred_offsets;
  std::vector<VertexId> preds;
  // successors, CSR (derived)
  std::vector<std::uint32_t> succ_offsets;
  std::vector<VertexId> succs;
  std::vector<std::uint8_t> is_output;

  std::size_t num_vertices() const { return pred_offsets.size() - 1; }
  std::size_t num_inputs = 0;    ///< vertices with no predecessors
  std::size_t num_outputs = 0;   ///< vertices marked as algorithm outputs
  std::size_t num_internal() const {
    return num_vertices() - num_inputs - num_outputs;
  }
  std::size_t max_in_degree = 0;

  bool is_input(VertexId v) const {
    return pred_offsets[v + 1] == pred_offsets[v];
  }
  std::span<const VertexId> predecessors(VertexId v) const {
    return {preds.data() + pred_offsets[v],
            preds.data() + pred_offsets[v + 1]};
  }
  std::span<const VertexId> successors(VertexId v) const {
    return {succs.data() + succ_offsets[v],
            succs.data() + succ_offsets[v + 1]};
  }
};

/// Incremental DAG constructor. Insertion order must be topological; this is
/// enforced (predecessor ids must be smaller than the new vertex's id).
class DagBuilder {
 public:
  /// Adds a source vertex (an algorithm input).
  VertexId add_input();

  /// Adds a compute vertex depending on `preds` (all previously added).
  VertexId add_vertex(std::span<const VertexId> preds);
  VertexId add_vertex(std::initializer_list<VertexId> preds) {
    return add_vertex(std::span<const VertexId>(preds.begin(), preds.size()));
  }

  /// Marks a vertex as an algorithm output (must be stored at game end).
  void mark_output(VertexId v);

  std::size_t num_vertices() const { return pred_offsets_.size() - 1; }

  /// Finalises the DAG (computes successor CSR and degree stats).
  Dag build();

 private:
  std::vector<std::uint32_t> pred_offsets_ = {0};
  std::vector<VertexId> preds_;
  std::vector<std::uint8_t> is_output_;
};

}  // namespace convbound
