// DAG generators for the algorithms analysed in the paper.
//
// The builder's insertion order doubles as the execution order of the pebble
// game, so each generator exposes scheduling knobs (tile sizes, fused vs
// phased Winograd) that reproduce the paper's dataflows as vertex orders.
#pragma once

#include <cstdint>

#include "convbound/pebble/dag.hpp"

namespace convbound {

/// Left-deep summation tree over `inputs`; returns the root.
/// Adds k-1 vertices: k-2 internal + 1 root (Lemma 4.7).
VertexId add_summation_tree(DagBuilder& b, std::span<const VertexId> inputs);

/// Linear combination tree (Lemma 4.13): every input is first scaled by a
/// coefficient held permanently in fast memory (one unary vertex each), then
/// summed. Adds 2k-1 vertices: 2k-2 internal + 1 root.
VertexId add_linear_combination_tree(DagBuilder& b,
                                     std::span<const VertexId> inputs);

/// Shape of a (single image) direct convolution DAG.
struct ConvDagShape {
  std::int64_t cin = 1, hin = 3, win = 3;
  std::int64_t cout = 1, ker = 3;  // square kernel
  std::int64_t stride = 1;

  std::int64_t hout() const { return (hin - ker) / stride + 1; }
  std::int64_t wout() const { return (win - ker) / stride + 1; }
};

/// Output tile processed as a unit; (1,1,1) is the naive one-output-at-a-time
/// schedule, the paper's dataflow uses x*y = R*z sized tiles.
struct TileSpec {
  std::int64_t x = 1, y = 1, z = 1;  // height, width, channels of out tile
};

/// Direct convolution DAG (Section 4.2): step 1 products + step 2 summation
/// trees. Construction order = execution order: per output tile, slide along
/// the input channel direction accumulating partial sums (Section 5.2).
Dag direct_conv_dag(const ConvDagShape& shape, const TileSpec& tile = {});

/// How the Winograd DAG is scheduled.
enum class WinogradOrder {
  kFused,   ///< per tile: transform, multiply, reduce, inverse-transform
  kPhased,  ///< all of step 1, then all of step 2, ... (materialises P, J)
};

struct WinogradDagShape {
  std::int64_t cin = 1;
  std::int64_t tiles_h = 1, tiles_w = 1;  ///< output is (e*tiles) square
  std::int64_t cout = 1;
  std::int64_t e = 2, r = 3;  ///< F(e x e, r x r); stride is always 1

  std::int64_t alpha() const { return e + r - 1; }  ///< transformed tile edge
  std::int64_t hout() const { return e * tiles_h; }
  std::int64_t wout() const { return e * tiles_w; }
  std::int64_t hin() const { return e * tiles_h + r - 1; }
  std::int64_t win() const { return e * tiles_w + r - 1; }
};

/// Winograd DAG (Section 4.3): the four sub-computations of Figure 5.
Dag winograd_dag(const WinogradDagShape& shape,
                 WinogradOrder order = WinogradOrder::kFused);

/// Classical C = A*B matrix multiplication DAG with summation trees, used to
/// cross-check the pebble game against the Hong-Kung bound.
Dag matmul_dag(std::int64_t m, std::int64_t k, std::int64_t n,
               std::int64_t tile_m = 1, std::int64_t tile_n = 1);

/// n-point radix-2 FFT butterfly network (n a power of two): log2(n) stages,
/// every stage-s vertex depends on partners i and i xor 2^s. The second
/// classic Hong-Kung testbed (Q = Omega(n log n / log S)).
Dag fft_dag(std::int64_t n);

}  // namespace convbound
