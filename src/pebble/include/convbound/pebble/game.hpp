// Red-blue pebble game execution engine.
//
// Plays Hong & Kung's game on a DAG for a given fast-memory capacity S:
// vertices are computed in topological (insertion) order; predecessors not
// resident in fast memory are loaded (they always have a blue copy by
// invariant), and evictions of still-live values force stores. The result is
// the I/O count Q of one concrete schedule — an *upper* bound that the
// paper's analytic lower bounds must stay below, and that well-chosen tiled
// orders drive to within a constant factor of those bounds.
#pragma once

#include <cstdint>

#include "convbound/pebble/dag.hpp"

namespace convbound {

enum class EvictionPolicy {
  kLru,     ///< least-recently-used victim
  kBelady,  ///< farthest-next-use victim (offline optimal for caches)
};

struct GameResult {
  std::uint64_t loads = 0;   ///< blue -> red transitions
  std::uint64_t stores = 0;  ///< red -> blue transitions
  std::uint64_t total() const { return loads + stores; }
};

/// Plays the game. `fast_memory` is S in values (red pebbles). Requires
/// S >= max_in_degree + 1 so every vertex is computable.
GameResult play_pebble_game(const Dag& dag, std::size_t fast_memory,
                            EvictionPolicy policy = EvictionPolicy::kBelady);

/// Trivial lower bound from cold misses alone: every input must be loaded
/// once, every output stored once. Handy sanity floor in tests.
std::uint64_t cold_traffic(const Dag& dag);

}  // namespace convbound
