#include "convbound/pebble/game.hpp"

#include <limits>
#include <queue>
#include <vector>

#include "convbound/util/check.hpp"

namespace convbound {

namespace {

constexpr std::uint32_t kNever = std::numeric_limits<std::uint32_t>::max();

/// Shared state of one game run.
struct GameState {
  const Dag& dag;
  std::size_t S;
  EvictionPolicy policy;

  std::vector<std::uint8_t> in_fast;
  std::vector<std::uint8_t> has_blue;
  /// Cursor into each vertex's (ascending) successor list: next unconsumed
  /// use. Consumers of v are executed at time == successor id.
  std::vector<std::uint32_t> use_cursor;
  std::vector<std::uint64_t> last_touch;  // LRU stamps
  std::uint64_t clock = 0;
  std::size_t resident = 0;

  // Lazy max-heap of (priority, vertex). Priority: next-use distance for
  // Belady (dead values = kNever sort first via max-heap on distance),
  // inverted recency for LRU.
  struct HeapEntry {
    std::uint64_t key;
    VertexId v;
    bool operator<(const HeapEntry& o) const { return key < o.key; }
  };
  std::priority_queue<HeapEntry> heap;

  GameResult result;

  explicit GameState(const Dag& d, std::size_t s, EvictionPolicy p)
      : dag(d), S(s), policy(p),
        in_fast(d.num_vertices(), 0),
        has_blue(d.num_vertices(), 0),
        use_cursor(d.pred_offsets.size() - 1, 0),
        last_touch(d.num_vertices(), 0) {}

  std::uint32_t next_use(VertexId v, std::uint32_t now) {
    auto succ = dag.successors(v);
    auto& cur = use_cursor[v];
    while (cur < succ.size() && succ[cur] <= now) ++cur;
    return cur < succ.size() ? succ[cur] : kNever;
  }

  std::uint64_t priority(VertexId v, std::uint32_t now) {
    if (policy == EvictionPolicy::kBelady) {
      const std::uint32_t nu = next_use(v, now);
      return nu == kNever ? std::numeric_limits<std::uint64_t>::max() : nu;
    }
    // LRU: evict the oldest touch first -> larger key = older.
    return std::numeric_limits<std::uint64_t>::max() - last_touch[v];
  }

  void touch(VertexId v, std::uint32_t now) {
    last_touch[v] = ++clock;
    heap.push({priority(v, now), v});
  }

  /// Evicts until at least one slot is free. `pinned_from` marks values that
  /// must stay (current vertex's predecessors mid-computation).
  void make_room(std::uint32_t now, const std::vector<std::uint8_t>& pinned) {
    std::vector<HeapEntry> stash;
    while (resident >= S) {
      CB_CHECK_MSG(!heap.empty(), "pebble game: everything pinned, S too small");
      HeapEntry top = heap.top();
      heap.pop();
      if (!in_fast[top.v] || top.key != priority(top.v, now)) continue;  // stale
      if (pinned[top.v]) {
        stash.push_back(top);
        continue;
      }
      // Evict top.v. A value with pending uses, or an output never written
      // back, must be stored before the red pebble is removed.
      const bool live = next_use(top.v, now) != kNever;
      const bool output_pending = dag.is_output[top.v] && !has_blue[top.v];
      if ((live || output_pending) && !has_blue[top.v]) {
        ++result.stores;
        has_blue[top.v] = 1;
      }
      in_fast[top.v] = 0;
      --resident;
    }
    for (const auto& e : stash) heap.push(e);
  }

  void place(VertexId v, std::uint32_t now,
             const std::vector<std::uint8_t>& pinned) {
    if (in_fast[v]) {
      touch(v, now);
      return;
    }
    make_room(now, pinned);
    in_fast[v] = 1;
    ++resident;
    touch(v, now);
  }
};

}  // namespace

GameResult play_pebble_game(const Dag& dag, std::size_t fast_memory,
                            EvictionPolicy policy) {
  CB_CHECK_MSG(fast_memory >= dag.max_in_degree + 1,
               "S=" << fast_memory << " cannot hold a vertex and its "
                    << dag.max_in_degree << " predecessors");
  GameState st(dag, fast_memory, policy);
  const auto n = static_cast<std::uint32_t>(dag.num_vertices());
  std::vector<std::uint8_t> pinned(dag.num_vertices(), 0);

  for (std::uint32_t v = 0; v < n; ++v) {
    if (dag.is_input(v)) {
      // Inputs are materialised lazily when first consumed.
      st.has_blue[v] = 1;
      continue;
    }
    const auto preds = dag.predecessors(v);
    for (VertexId p : preds) pinned[p] = 1;
    // Bring all predecessors into fast memory.
    for (VertexId p : preds) {
      if (!st.in_fast[p]) {
        CB_CHECK_MSG(st.has_blue[p], "value lost: vertex " << p);
        ++st.result.loads;
        st.place(p, v, pinned);
      } else {
        st.touch(p, v);
      }
    }
    // Compute v into a fresh red pebble.
    st.place(v, v, pinned);
    for (VertexId p : preds) pinned[p] = 0;
  }

  // Outputs must end on blue pebbles.
  for (std::uint32_t v = 0; v < n; ++v) {
    if (dag.is_output[v] && !st.has_blue[v]) {
      ++st.result.stores;
      st.has_blue[v] = 1;
    }
  }
  return st.result;
}

std::uint64_t cold_traffic(const Dag& dag) {
  // Count inputs actually consumed by someone, plus all outputs.
  std::uint64_t used_inputs = 0;
  for (std::size_t v = 0; v < dag.num_vertices(); ++v) {
    if (dag.is_input(static_cast<VertexId>(v)) &&
        !dag.successors(static_cast<VertexId>(v)).empty())
      ++used_inputs;
  }
  return used_inputs + dag.num_outputs;
}

}  // namespace convbound
