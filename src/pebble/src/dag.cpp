#include "convbound/pebble/dag.hpp"

#include <algorithm>

#include "convbound/util/check.hpp"

namespace convbound {

VertexId DagBuilder::add_input() {
  pred_offsets_.push_back(pred_offsets_.back());
  is_output_.push_back(0);
  return static_cast<VertexId>(pred_offsets_.size() - 2);
}

VertexId DagBuilder::add_vertex(std::span<const VertexId> preds) {
  CB_CHECK_MSG(!preds.empty(), "compute vertex needs predecessors");
  const auto id = static_cast<VertexId>(pred_offsets_.size() - 1);
  for (VertexId p : preds) {
    CB_CHECK_MSG(p < id, "predecessor " << p << " not yet added");
    preds_.push_back(p);
  }
  pred_offsets_.push_back(static_cast<std::uint32_t>(preds_.size()));
  is_output_.push_back(0);
  return id;
}

void DagBuilder::mark_output(VertexId v) {
  CB_CHECK(v < is_output_.size());
  is_output_[v] = 1;
}

Dag DagBuilder::build() {
  Dag dag;
  dag.pred_offsets = std::move(pred_offsets_);
  dag.preds = std::move(preds_);
  dag.is_output = std::move(is_output_);

  const std::size_t n = dag.num_vertices();
  dag.num_inputs = 0;
  dag.num_outputs = 0;
  dag.max_in_degree = 0;
  std::vector<std::uint32_t> out_degree(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    const auto deg = dag.pred_offsets[v + 1] - dag.pred_offsets[v];
    dag.max_in_degree = std::max<std::size_t>(dag.max_in_degree, deg);
    if (deg == 0) ++dag.num_inputs;
    if (dag.is_output[v]) ++dag.num_outputs;
    for (std::uint32_t e = dag.pred_offsets[v]; e < dag.pred_offsets[v + 1];
         ++e)
      ++out_degree[dag.preds[e]];
  }
  dag.succ_offsets.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v)
    dag.succ_offsets[v + 1] = dag.succ_offsets[v] + out_degree[v];
  dag.succs.resize(dag.preds.size());
  std::vector<std::uint32_t> cursor(dag.succ_offsets.begin(),
                                    dag.succ_offsets.end() - 1);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::uint32_t e = dag.pred_offsets[v]; e < dag.pred_offsets[v + 1];
         ++e) {
      dag.succs[cursor[dag.preds[e]]++] = static_cast<VertexId>(v);
    }
  }
  // Reset builder state so reuse is well-defined.
  pred_offsets_ = {0};
  preds_.clear();
  is_output_.clear();
  return dag;
}

}  // namespace convbound
