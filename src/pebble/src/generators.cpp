#include "convbound/pebble/generators.hpp"

#include <algorithm>
#include <vector>

#include "convbound/util/check.hpp"
#include "convbound/util/math.hpp"

namespace convbound {

VertexId add_summation_tree(DagBuilder& b, std::span<const VertexId> inputs) {
  CB_CHECK(!inputs.empty());
  if (inputs.size() == 1) return inputs[0];
  VertexId acc = b.add_vertex({inputs[0], inputs[1]});
  for (std::size_t i = 2; i < inputs.size(); ++i)
    acc = b.add_vertex({acc, inputs[i]});
  return acc;
}

VertexId add_linear_combination_tree(DagBuilder& b,
                                     std::span<const VertexId> inputs) {
  CB_CHECK(!inputs.empty());
  std::vector<VertexId> scaled;
  scaled.reserve(inputs.size());
  for (VertexId v : inputs) scaled.push_back(b.add_vertex({v}));
  return add_summation_tree(b, scaled);
}

Dag direct_conv_dag(const ConvDagShape& s, const TileSpec& tile) {
  CB_CHECK(s.hout() > 0 && s.wout() > 0);
  DagBuilder b;

  // Global inputs: image and kernels.
  std::vector<VertexId> img(
      static_cast<std::size_t>(s.cin * s.hin * s.win));
  for (auto& v : img) v = b.add_input();
  auto img_at = [&](std::int64_t c, std::int64_t h, std::int64_t w) {
    return img[static_cast<std::size_t>((c * s.hin + h) * s.win + w)];
  };
  std::vector<VertexId> ker(
      static_cast<std::size_t>(s.cout * s.cin * s.ker * s.ker));
  for (auto& v : ker) v = b.add_input();
  auto ker_at = [&](std::int64_t oc, std::int64_t c, std::int64_t kh,
                    std::int64_t kw) {
    return ker[static_cast<std::size_t>(((oc * s.cin + c) * s.ker + kh) *
                                            s.ker +
                                        kw)];
  };

  const std::int64_t hout = s.hout(), wout = s.wout();
  const std::int64_t tx = std::min(tile.x, hout), ty = std::min(tile.y, wout),
                     tz = std::min(tile.z, s.cout);

  // Per output tile: slide a channel slice along C_in, accumulating partial
  // sums for every output in the tile (the Section 5.2 dataflow order).
  for (std::int64_t oc0 = 0; oc0 < s.cout; oc0 += tz) {
    for (std::int64_t oh0 = 0; oh0 < hout; oh0 += tx) {
      for (std::int64_t ow0 = 0; ow0 < wout; ow0 += ty) {
        const std::int64_t zc = std::min(tz, s.cout - oc0);
        const std::int64_t xh = std::min(tx, hout - oh0);
        const std::int64_t yw = std::min(ty, wout - ow0);
        // partial-sum vertex per output in the tile (invalid until first add)
        std::vector<VertexId> psum(static_cast<std::size_t>(zc * xh * yw));
        std::vector<std::int64_t> nprod(psum.size(), 0);
        for (std::int64_t c = 0; c < s.cin; ++c) {
          for (std::int64_t dz = 0; dz < zc; ++dz) {
            for (std::int64_t dx = 0; dx < xh; ++dx) {
              for (std::int64_t dy = 0; dy < yw; ++dy) {
                const std::int64_t oc = oc0 + dz, oh = oh0 + dx,
                                   ow = ow0 + dy;
                const auto pi =
                    static_cast<std::size_t>((dz * xh + dx) * yw + dy);
                for (std::int64_t kh = 0; kh < s.ker; ++kh) {
                  for (std::int64_t kw = 0; kw < s.ker; ++kw) {
                    const VertexId prod = b.add_vertex(
                        {img_at(c, oh * s.stride + kh, ow * s.stride + kw),
                         ker_at(oc, c, kh, kw)});
                    // Left-deep summation chain over all products.
                    psum[pi] = (nprod[pi] == 0)
                                   ? prod
                                   : b.add_vertex({psum[pi], prod});
                    ++nprod[pi];
                  }
                }
              }
            }
          }
        }
        for (std::size_t pi = 0; pi < psum.size(); ++pi)
          b.mark_output(psum[pi]);
      }
    }
  }
  return b.build();
}

namespace {

/// Adds the transformed-tensor vertices for one channel plane: `n_out`
/// linear-combination trees, each reading all of `plane_inputs`.
std::vector<VertexId> add_transform_plane(DagBuilder& b,
                                          std::span<const VertexId> plane,
                                          std::int64_t n_out) {
  std::vector<VertexId> out;
  out.reserve(static_cast<std::size_t>(n_out));
  for (std::int64_t i = 0; i < n_out; ++i)
    out.push_back(add_linear_combination_tree(b, plane));
  return out;
}

}  // namespace

Dag winograd_dag(const WinogradDagShape& s, WinogradOrder order) {
  const std::int64_t a = s.alpha();        // e + r - 1
  const std::int64_t a2 = a * a;
  const std::int64_t r2 = s.r * s.r;
  const std::int64_t e2 = s.e * s.e;
  const std::int64_t ntiles = s.tiles_h * s.tiles_w;
  DagBuilder b;

  // Inputs: image (cin x hin x win) and kernels (cout x cin x r x r).
  std::vector<VertexId> img(
      static_cast<std::size_t>(s.cin * s.hin() * s.win()));
  for (auto& v : img) v = b.add_input();
  auto img_at = [&](std::int64_t c, std::int64_t h, std::int64_t w) {
    return img[static_cast<std::size_t>((c * s.hin() + h) * s.win() + w)];
  };
  std::vector<VertexId> ker(
      static_cast<std::size_t>(s.cout * s.cin * r2));
  for (auto& v : ker) v = b.add_input();

  // Caches of transformed tensors (created lazily in fused order).
  // P[tile][c] -> a2 vertex ids; J[k][c] -> a2 vertex ids.
  std::vector<std::vector<VertexId>> P(
      static_cast<std::size_t>(ntiles * s.cin));
  std::vector<std::vector<VertexId>> J(
      static_cast<std::size_t>(s.cout * s.cin));

  auto input_plane = [&](std::int64_t t, std::int64_t c) {
    const std::int64_t th = t / s.tiles_w, tw = t % s.tiles_w;
    std::vector<VertexId> plane;
    plane.reserve(static_cast<std::size_t>(a2));
    for (std::int64_t i = 0; i < a; ++i)
      for (std::int64_t j = 0; j < a; ++j)
        plane.push_back(img_at(c, th * s.e + i, tw * s.e + j));
    return plane;
  };
  auto kernel_plane = [&](std::int64_t k, std::int64_t c) {
    std::vector<VertexId> plane;
    plane.reserve(static_cast<std::size_t>(r2));
    for (std::int64_t i = 0; i < r2; ++i)
      plane.push_back(
          ker[static_cast<std::size_t>((k * s.cin + c) * r2 + i)]);
    return plane;
  };
  auto ensure_P = [&](std::int64_t t, std::int64_t c) -> const auto& {
    auto& slot = P[static_cast<std::size_t>(t * s.cin + c)];
    if (slot.empty()) {
      auto plane = input_plane(t, c);
      slot = add_transform_plane(b, plane, a2);
    }
    return slot;
  };
  auto ensure_J = [&](std::int64_t k, std::int64_t c) -> const auto& {
    auto& slot = J[static_cast<std::size_t>(k * s.cin + c)];
    if (slot.empty()) {
      auto plane = kernel_plane(k, c);
      slot = add_transform_plane(b, plane, a2);
    }
    return slot;
  };

  if (order == WinogradOrder::kPhased) {
    // Step 1 fully materialised first (cuDNN-style batched transforms).
    for (std::int64_t t = 0; t < ntiles; ++t)
      for (std::int64_t c = 0; c < s.cin; ++c) ensure_P(t, c);
    for (std::int64_t k = 0; k < s.cout; ++k)
      for (std::int64_t c = 0; c < s.cin; ++c) ensure_J(k, c);
  }

  // Steps 2-4 per (tile, output channel); in fused order the transforms are
  // created on first use right here.
  for (std::int64_t k = 0; k < s.cout; ++k) {
    for (std::int64_t t = 0; t < ntiles; ++t) {
      // Step 3 accumulator: running partial sums of Pi (paper's two
      // temporary arrays) — a2 chains over the channel direction.
      std::vector<VertexId> pi_acc(static_cast<std::size_t>(a2));
      for (std::int64_t c = 0; c < s.cin; ++c) {
        const auto& Ptc = ensure_P(t, c);
        const auto& Jkc = ensure_J(k, c);
        for (std::int64_t i = 0; i < a2; ++i) {
          // Step 2: element-wise product Lambda.
          const VertexId lam = b.add_vertex(
              {Ptc[static_cast<std::size_t>(i)],
               Jkc[static_cast<std::size_t>(i)]});
          // Step 3: summation along channels.
          pi_acc[static_cast<std::size_t>(i)] =
              (c == 0) ? lam
                       : b.add_vertex(
                             {pi_acc[static_cast<std::size_t>(i)], lam});
        }
      }
      // Step 4: e2 outputs, each a linear combination of all a2 Pi values.
      for (std::int64_t o = 0; o < e2; ++o) {
        const VertexId out = add_linear_combination_tree(b, pi_acc);
        b.mark_output(out);
      }
    }
  }
  return b.build();
}

Dag matmul_dag(std::int64_t m, std::int64_t k, std::int64_t n,
               std::int64_t tile_m, std::int64_t tile_n) {
  DagBuilder b;
  std::vector<VertexId> A(static_cast<std::size_t>(m * k)),
      B(static_cast<std::size_t>(k * n));
  for (auto& v : A) v = b.add_input();
  for (auto& v : B) v = b.add_input();
  tile_m = std::min(tile_m, m);
  tile_n = std::min(tile_n, n);

  for (std::int64_t i0 = 0; i0 < m; i0 += tile_m) {
    for (std::int64_t j0 = 0; j0 < n; j0 += tile_n) {
      const std::int64_t im = std::min(tile_m, m - i0);
      const std::int64_t jn = std::min(tile_n, n - j0);
      std::vector<VertexId> acc(static_cast<std::size_t>(im * jn));
      for (std::int64_t p = 0; p < k; ++p) {
        for (std::int64_t di = 0; di < im; ++di) {
          for (std::int64_t dj = 0; dj < jn; ++dj) {
            const VertexId prod = b.add_vertex(
                {A[static_cast<std::size_t>((i0 + di) * k + p)],
                 B[static_cast<std::size_t>(p * n + j0 + dj)]});
            auto& slot = acc[static_cast<std::size_t>(di * jn + dj)];
            slot = (p == 0) ? prod : b.add_vertex({slot, prod});
          }
        }
      }
      for (VertexId v : acc) b.mark_output(v);
    }
  }
  return b.build();
}

Dag fft_dag(std::int64_t n) {
  CB_CHECK_MSG(n >= 2 && (n & (n - 1)) == 0, "FFT size must be a power of 2");
  DagBuilder b;
  std::vector<VertexId> stage(static_cast<std::size_t>(n));
  for (auto& v : stage) v = b.add_input();
  for (std::int64_t half = 1; half < n; half <<= 1) {
    std::vector<VertexId> next(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      const std::int64_t partner = i ^ half;
      next[static_cast<std::size_t>(i)] =
          b.add_vertex({stage[static_cast<std::size_t>(i)],
                        stage[static_cast<std::size_t>(partner)]});
    }
    stage = std::move(next);
  }
  for (VertexId v : stage) b.mark_output(v);
  return b.build();
}

}  // namespace convbound
