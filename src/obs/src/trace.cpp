#include "convbound/obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <set>
#include <sstream>

namespace convbound {

const char* to_string(TraceStage stage) {
  switch (stage) {
    case TraceStage::kAdmit: return "admit";
    case TraceStage::kShed: return "shed";
    case TraceStage::kQueueWait: return "queue_wait";
    case TraceStage::kBatchForm: return "batch_form";
    case TraceStage::kPlacement: return "placement";
    case TraceStage::kExecute: return "execute";
    case TraceStage::kLayerExec: return "layer_exec";
    case TraceStage::kComplete: return "complete";
    case TraceStage::kExpire: return "expire";
  }
  return "?";
}

// ---------------------------------------------------------- TraceRecorder --

TraceRecorder::TraceRecorder(std::uint32_t id, std::size_t capacity)
    : id_(id) {
  ring_.resize(capacity == 0 ? 1 : capacity);
}

void TraceRecorder::record(TraceEvent e) {
  e.tid = id_;
  MutexLock lock(mu_);
  ring_[head_ % ring_.size()] = e;
  ++head_;
}

std::uint64_t TraceRecorder::recorded() const {
  MutexLock lock(mu_);
  return head_;
}

std::vector<TraceEvent> TraceRecorder::events() const {
  MutexLock lock(mu_);
  const std::size_t cap = ring_.size();
  const std::size_t n = head_ < cap ? static_cast<std::size_t>(head_) : cap;
  std::vector<TraceEvent> out;
  out.reserve(n);
  const std::uint64_t first = head_ - n;
  for (std::uint64_t i = first; i < head_; ++i) out.push_back(ring_[i % cap]);
  return out;
}

void TraceRecorder::clear() {
  MutexLock lock(mu_);
  head_ = 0;
}

// ------------------------------------------------------------ ObsRegistry --

std::atomic<bool> ObsRegistry::enabled_{false};

ObsRegistry::ObsRegistry(std::size_t ring_capacity)
    : epoch_(TraceClock::now()), ring_capacity_(ring_capacity) {}

ObsRegistry& ObsRegistry::global() {
  static ObsRegistry* reg = new ObsRegistry();  // leaked: outlives all threads
  return *reg;
}

std::uint64_t ObsRegistry::next_request_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t ObsRegistry::next_batch_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

TraceRecorder& ObsRegistry::recorder() {
  // One cached recorder per (thread, registry). A thread that alternates
  // between registries re-registers on each switch; the intended use is a
  // handful of long-lived registries (above all `global()`).
  thread_local ObsRegistry* cached_reg = nullptr;
  thread_local TraceRecorder* cached = nullptr;
  if (cached_reg != this) {
    cached = &create_recorder();
    cached_reg = this;
  }
  return *cached;
}

TraceRecorder& ObsRegistry::create_recorder() {
  MutexLock lock(mu_);
  const std::uint32_t id = static_cast<std::uint32_t>(recorders_.size());
  recorders_.emplace_back(new TraceRecorder(id, ring_capacity_));
  return *recorders_.back();
}

std::vector<TraceEvent> ObsRegistry::events() const {
  std::vector<TraceEvent> all;
  {
    MutexLock lock(mu_);
    for (const auto& r : recorders_) {
      std::vector<TraceEvent> part = r->events();
      all.insert(all.end(), part.begin(), part.end());
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return all;
}

std::vector<TraceEvent> ObsRegistry::drain() {
  std::vector<TraceEvent> all = events();
  clear();
  return all;
}

void ObsRegistry::clear() {
  MutexLock lock(mu_);
  for (const auto& r : recorders_) r->clear();
}

std::size_t ObsRegistry::num_recorders() const {
  MutexLock lock(mu_);
  return recorders_.size();
}

double ObsRegistry::us_since_epoch(TraceClock::time_point tp) const {
  return std::chrono::duration<double, std::micro>(tp - epoch_).count();
}

// ----- metrics --------------------------------------------------------------

void ObsRegistry::set_counter(const std::string& name,
                              const std::string& labels, double value,
                              const std::string& help) {
  set_scalar(name, labels, value, MetricType::kCounter, help);
}

void ObsRegistry::set_gauge(const std::string& name, const std::string& labels,
                            double value, const std::string& help) {
  set_scalar(name, labels, value, MetricType::kGauge, help);
}

void ObsRegistry::set_scalar(const std::string& name,
                             const std::string& labels, double value,
                             MetricType type, const std::string& help) {
  MutexLock lock(metrics_mu_);
  MetricFamily& fam = metrics_[name];
  fam.type = type;
  if (!help.empty()) fam.help = help;
  fam.samples[labels] = value;
}

void ObsRegistry::set_histogram(const std::string& name,
                                const std::string& labels,
                                const LatencyHistogram& hist,
                                const std::string& help) {
  MutexLock lock(metrics_mu_);
  MetricFamily& fam = metrics_[name];
  fam.type = MetricType::kHistogram;
  if (!help.empty()) fam.help = help;
  fam.hists[labels] = hist;
}

void ObsRegistry::clear_metrics() {
  MutexLock lock(metrics_mu_);
  metrics_.clear();
}

// ----- export ---------------------------------------------------------------

namespace {

// Shortest %g that keeps trace timestamps sub-microsecond exact.
void append_number(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  out += buf;
}

}  // namespace

void ObsRegistry::dump_chrome_trace(std::ostream& os) const {
  const std::vector<TraceEvent> evs = events();

  std::string out;
  out.reserve(evs.size() * 96 + 256);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";

  // Process metadata: pid 0 is the front door (events with no device),
  // pid d+1 is device ordinal d.
  std::set<std::int32_t> pids;
  for (const TraceEvent& e : evs) pids.insert(e.device < 0 ? 0 : e.device + 1);
  bool first = true;
  for (std::int32_t pid : pids) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    append_number(out, pid);
    out += ",\"tid\":0,\"args\":{\"name\":\"";
    if (pid == 0) {
      out += "front door";
    } else {
      out += "device ";
      append_u64(out, static_cast<std::uint64_t>(pid - 1));
    }
    out += "\"}}";
  }

  for (const TraceEvent& e : evs) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += to_string(e.stage);
    out += "\",\"cat\":\"convbound\",\"ph\":\"";
    switch (e.phase) {
      case TracePhase::kSpan: out += 'X'; break;
      case TracePhase::kInstant: out += 'i'; break;
      case TracePhase::kCounter: out += 'C'; break;
    }
    out += "\",\"ts\":";
    append_number(out, e.ts_us);
    if (e.phase == TracePhase::kSpan) {
      out += ",\"dur\":";
      append_number(out, e.dur_us);
    }
    if (e.phase == TracePhase::kInstant) out += ",\"s\":\"t\"";
    out += ",\"pid\":";
    append_number(out, e.device < 0 ? 0 : e.device + 1);
    out += ",\"tid\":";
    append_number(out, e.tid);
    out += ",\"args\":{";
    if (e.phase == TracePhase::kCounter) {
      out += "\"value\":";
      append_number(out, e.value);
    } else {
      out += "\"request_id\":";
      append_u64(out, e.request_id);
      out += ",\"batch_id\":";
      append_u64(out, e.batch_id);
      out += ",\"value\":";
      append_number(out, e.value);
    }
    out += "}}";
  }
  out += "]}";
  os << out;
}

std::string ObsRegistry::chrome_trace_json() const {
  std::ostringstream os;
  dump_chrome_trace(os);
  return os.str();
}

void ObsRegistry::dump_metrics_text(std::ostream& os) const {
  MutexLock lock(metrics_mu_);
  std::string out;
  for (const auto& [name, fam] : metrics_) {
    if (!fam.help.empty()) out += "# HELP " + name + " " + fam.help + "\n";
    out += "# TYPE " + name + " ";
    switch (fam.type) {
      case MetricType::kCounter: out += "counter"; break;
      case MetricType::kGauge: out += "gauge"; break;
      case MetricType::kHistogram: out += "histogram"; break;
    }
    out += '\n';
    for (const auto& [labels, value] : fam.samples) {
      out += name;
      if (!labels.empty()) out += "{" + labels + "}";
      out += ' ';
      append_number(out, value);
      out += '\n';
    }
    for (const auto& [labels, hist] : fam.hists) {
      const std::string prefix = labels.empty() ? "" : labels + ",";
      std::uint64_t cum = 0;
      for (std::size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
        const std::uint64_t c = hist.bucket_count(b);
        if (c == 0) continue;
        cum += c;
        out += name + "_bucket{" + prefix + "le=\"";
        // The overflow bucket has an unbounded upper edge.
        if (b + 1 == LatencyHistogram::kBuckets) {
          out += "+Inf";
        } else {
          append_number(out, hist.bucket_upper(b));
        }
        out += "\"} ";
        append_u64(out, cum);
        out += '\n';
      }
      out += name + "_bucket{" + prefix + "le=\"+Inf\"} ";
      append_u64(out, hist.count());
      out += '\n';
      out += name + "_sum";
      if (!labels.empty()) out += "{" + labels + "}";
      out += ' ';
      append_number(out, hist.sum());
      out += '\n';
      out += name + "_count";
      if (!labels.empty()) out += "{" + labels + "}";
      out += ' ';
      append_u64(out, hist.count());
      out += '\n';
    }
  }
  os << out;
}

std::string ObsRegistry::metrics_text() const {
  std::ostringstream os;
  dump_metrics_text(os);
  return os.str();
}

// ----- record helpers -------------------------------------------------------

namespace obs {
namespace detail {

void record_span(TraceStage stage, TraceClock::time_point begin,
                 TraceClock::time_point end, std::uint64_t request_id,
                 std::uint64_t batch_id, std::int32_t device, double value) {
  ObsRegistry& reg = ObsRegistry::global();
  TraceEvent e;
  e.phase = TracePhase::kSpan;
  e.stage = stage;
  e.ts_us = reg.us_since_epoch(begin);
  e.dur_us = std::max(0.0, reg.us_since_epoch(end) - e.ts_us);
  e.request_id = request_id;
  e.batch_id = batch_id;
  e.device = device;
  e.value = value;
  reg.recorder().record(e);
}

void record_instant(TraceStage stage, TraceClock::time_point at,
                    std::uint64_t request_id, std::uint64_t batch_id,
                    std::int32_t device, double value) {
  ObsRegistry& reg = ObsRegistry::global();
  TraceEvent e;
  e.phase = TracePhase::kInstant;
  e.stage = stage;
  e.ts_us = reg.us_since_epoch(at);
  e.request_id = request_id;
  e.batch_id = batch_id;
  e.device = device;
  e.value = value;
  reg.recorder().record(e);
}

void record_counter(TraceStage stage, TraceClock::time_point at, double value,
                    std::int32_t device) {
  ObsRegistry& reg = ObsRegistry::global();
  TraceEvent e;
  e.phase = TracePhase::kCounter;
  e.stage = stage;
  e.ts_us = reg.us_since_epoch(at);
  e.device = device;
  e.value = value;
  reg.recorder().record(e);
}

}  // namespace detail
}  // namespace obs

}  // namespace convbound
