// Low-overhead tracing + metrics registry for the serving stack.
//
// Design (see docs/observability.md):
//  - `TraceRecorder` — a fixed-size ring of POD `TraceEvent`s. Each thread
//    records into its own recorder (obtained via `ObsRegistry::recorder()`),
//    so the record path never contends with other producers; the only
//    possible contention is with a concurrent `drain()`/`events()`, which
//    takes the same per-ring mutex (an uncontended lock is two atomic ops on
//    the futex fast path). When the ring is full the oldest events are
//    overwritten — a trace always holds the newest window.
//  - Tracing is DISABLED by default. Every call site guards on
//    `ObsRegistry::enabled()` (one relaxed atomic load + branch) before
//    reading clocks or calling out of line, so the disabled cost is near
//    zero — pinned by bench/trace_overhead.cpp and a CI gate.
//  - Timestamps come from `WallTimer`'s clock (std::chrono::steady_clock,
//    the same clock the serve layer's `ServeClock` aliases), expressed as
//    microseconds since the registry epoch.
//  - Export: Chrome trace-event JSON (chrome://tracing / Perfetto) and a
//    Prometheus-style text exposition of the metrics registry.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "convbound/util/latency_histogram.hpp"
#include "convbound/util/mutex.hpp"
#include "convbound/util/thread_annotations.hpp"
#include "convbound/util/timer.hpp"

namespace convbound {

/// The clock all trace timestamps are taken from.
using TraceClock = WallTimer::Clock;

/// Lifecycle stages of a request through the serving stack. Used both as
/// span/instant names in the Chrome trace and to tag shed/expiry reasons.
enum class TraceStage : std::uint8_t {
  kAdmit,      ///< instant: submit accepted (value = queue depth after)
  kShed,       ///< instant: submit rejected (value = ServeStatus code)
  kQueueWait,  ///< span: enqueue -> collect (value = ingest shard)
  kBatchForm,  ///< span: batch formation window (value = group size)
  kPlacement,  ///< instant: router decision (value = predicted batch seconds)
  kExecute,    ///< span: batch execution (value = modelled sim seconds)
  kLayerExec,  ///< span: one plan execution (value = modelled sim seconds)
  kComplete,   ///< instant: request completed (value = latency seconds)
  kExpire,     ///< instant: deadline exceeded (value = latency seconds)
};

const char* to_string(TraceStage stage);

enum class TracePhase : std::uint8_t {
  kSpan,     ///< Chrome "X" complete event (ts + dur)
  kInstant,  ///< Chrome "i" instant event
  kCounter,  ///< Chrome "C" counter event
};

/// One POD trace event. `ts_us`/`dur_us` are microseconds since the
/// owning registry's epoch; ids are 0 / -1 when not applicable.
struct TraceEvent {
  double ts_us = 0;
  double dur_us = 0;
  double value = 0;
  std::uint64_t request_id = 0;
  std::uint64_t batch_id = 0;
  std::uint32_t tid = 0;     ///< recorder id (stamped by TraceRecorder)
  std::int32_t device = -1;  ///< device ordinal; -1 = front door / none
  TracePhase phase = TracePhase::kInstant;
  TraceStage stage = TraceStage::kAdmit;
};

/// Fixed-size ring of trace events. Writers are expected to be a single
/// thread per recorder; the mutex exists so a concurrent drain observes
/// consistent events (and keeps the type TSan-clean).
class TraceRecorder {
 public:
  /// Appends `e` (stamping `e.tid` with this recorder's id), overwriting
  /// the oldest event when the ring is full. O(1), allocation-free.
  void record(TraceEvent e);

  /// Total events ever recorded (>= the number currently retained).
  std::uint64_t recorded() const;

  /// Events currently retained, oldest first.
  std::vector<TraceEvent> events() const;

  std::uint32_t id() const { return id_; }
  /// ring_ is sized once in the constructor and never resized, so its
  /// *capacity* is immutable and safe to read lock-free; only the element
  /// contents and head_ need mu_.
  std::size_t capacity() const CB_NO_THREAD_SAFETY_ANALYSIS {
    return ring_.size();
  }

 private:
  friend class ObsRegistry;
  TraceRecorder(std::uint32_t id, std::size_t capacity);
  void clear();

  mutable Mutex mu_;
  std::vector<TraceEvent> ring_ CB_GUARDED_BY(mu_);
  std::uint64_t head_ CB_GUARDED_BY(mu_) = 0;  ///< next write = head_ % cap
  std::uint32_t id_ = 0;
};

/// Prometheus-style metric kinds.
enum class MetricType : std::uint8_t { kCounter, kGauge, kHistogram };

/// Owns trace recorders and a metrics registry, and renders both.
///
/// The process-wide instance is `ObsRegistry::global()`; the serving stack
/// records into it via the `obs::span`/`obs::instant` helpers below, which
/// are compiled away to a relaxed load + branch while tracing is disabled.
/// Tests may construct private registries (with small rings) and record
/// through explicit `create_recorder()` handles.
class ObsRegistry {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 8192;

  explicit ObsRegistry(std::size_t ring_capacity = kDefaultRingCapacity);

  ObsRegistry(const ObsRegistry&) = delete;
  ObsRegistry& operator=(const ObsRegistry&) = delete;

  /// The process-wide registry the obs:: helpers record into.
  static ObsRegistry& global();

  /// Whether trace recording is on. Off by default; call sites check this
  /// before doing any tracing work (including reading clocks).
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  static void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Process-wide correlation-id generators (monotonic, start at 1).
  static std::uint64_t next_request_id();
  static std::uint64_t next_batch_id();

  /// This thread's recorder in this registry (created on first use). The
  /// returned reference is valid for the registry's lifetime; intended for
  /// long-lived registries (in particular `global()`).
  TraceRecorder& recorder();

  /// A fresh recorder owned by this registry (for tests / explicit wiring).
  TraceRecorder& create_recorder();

  /// All retained events across recorders, sorted by timestamp.
  std::vector<TraceEvent> events() const;

  /// As `events()`, but also clears every ring.
  std::vector<TraceEvent> drain();

  /// Clears every ring (recorders stay registered).
  void clear();

  std::size_t num_recorders() const;

  /// Microseconds since this registry's construction (the trace epoch).
  double us_since_epoch(TraceClock::time_point tp) const;
  TraceClock::time_point epoch() const { return epoch_; }

  // ----- metrics registry -------------------------------------------------
  // `labels` is a pre-rendered Prometheus label body without braces, e.g.
  // `job="serve",class="paid"` (empty for none). Families are keyed by
  // name; re-setting a (name, labels) sample overwrites it.

  void set_counter(const std::string& name, const std::string& labels,
                   double value, const std::string& help = "");
  void set_gauge(const std::string& name, const std::string& labels,
                 double value, const std::string& help = "");
  void set_histogram(const std::string& name, const std::string& labels,
                     const LatencyHistogram& hist,
                     const std::string& help = "");
  void clear_metrics();

  // ----- export -----------------------------------------------------------

  /// Chrome trace-event JSON ({"traceEvents":[...]}) of `events()`.
  void dump_chrome_trace(std::ostream& os) const;
  std::string chrome_trace_json() const;

  /// Prometheus-style text exposition of the metrics registry. Histograms
  /// are emitted as cumulative `_bucket{le=...}` samples (seconds) over the
  /// LatencyHistogram's non-empty rungs, plus `_sum` and `_count`.
  void dump_metrics_text(std::ostream& os) const;
  std::string metrics_text() const;

 private:
  struct MetricFamily {
    std::string help;
    MetricType type = MetricType::kGauge;
    std::map<std::string, double> samples;          // labels -> value
    std::map<std::string, LatencyHistogram> hists;  // labels -> histogram
  };

  void set_scalar(const std::string& name, const std::string& labels,
                  double value, MetricType type, const std::string& help);

  /// Relaxed by design: the flag is an on/off gate with no data published
  /// through it (every recorder has its own mutex), and the disabled fast
  /// path must stay one plain load + branch (bench/trace_overhead.cpp).
  static std::atomic<bool> enabled_;

  const TraceClock::time_point epoch_;
  const std::size_t ring_capacity_;

  /// Guards the recorder *list*; each ring locks its own mu_.
  mutable Mutex mu_;
  std::vector<std::unique_ptr<TraceRecorder>> recorders_ CB_GUARDED_BY(mu_);

  mutable Mutex metrics_mu_;
  std::map<std::string, MetricFamily> metrics_ CB_GUARDED_BY(metrics_mu_);
};

// ----- record helpers -------------------------------------------------------
// Call-site API: `obs::span(...)` / `obs::instant(...)` record into the
// global registry's per-thread recorder. The inline wrappers check
// `ObsRegistry::enabled()` first, so when tracing is off each call costs one
// relaxed atomic load and a predictable branch. Guard any *extra* clock
// reads a call site needs behind `obs::on()`.

namespace obs {

inline bool on() { return ObsRegistry::enabled(); }

namespace detail {
void record_span(TraceStage stage, TraceClock::time_point begin,
                 TraceClock::time_point end, std::uint64_t request_id,
                 std::uint64_t batch_id, std::int32_t device, double value);
void record_instant(TraceStage stage, TraceClock::time_point at,
                    std::uint64_t request_id, std::uint64_t batch_id,
                    std::int32_t device, double value);
void record_counter(TraceStage stage, TraceClock::time_point at, double value,
                    std::int32_t device);
}  // namespace detail

inline void span(TraceStage stage, TraceClock::time_point begin,
                 TraceClock::time_point end, std::uint64_t request_id = 0,
                 std::uint64_t batch_id = 0, std::int32_t device = -1,
                 double value = 0) {
  if (!ObsRegistry::enabled()) return;
  detail::record_span(stage, begin, end, request_id, batch_id, device, value);
}

inline void instant(TraceStage stage, TraceClock::time_point at,
                    std::uint64_t request_id = 0, std::uint64_t batch_id = 0,
                    std::int32_t device = -1, double value = 0) {
  if (!ObsRegistry::enabled()) return;
  detail::record_instant(stage, at, request_id, batch_id, device, value);
}

inline void counter(TraceStage stage, TraceClock::time_point at, double value,
                    std::int32_t device = -1) {
  if (!ObsRegistry::enabled()) return;
  detail::record_counter(stage, at, value, device);
}

}  // namespace obs

}  // namespace convbound
