#include "convbound/util/latency_histogram.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "convbound/util/check.hpp"

namespace convbound {

void LatencyHistogram::record(double seconds) {
  if (!(seconds > 0)) seconds = 0;  // also squashes NaN into the underflow
  ++counts_[static_cast<std::size_t>(bucket_index(seconds))];
  if (count_ == 0) {
    min_ = max_ = seconds;
  } else {
    min_ = std::min(min_, seconds);
    max_ = std::max(max_, seconds);
  }
  ++count_;
  sum_ += seconds;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  for (int i = 0; i < kBuckets; ++i)
    counts_[static_cast<std::size_t>(i)] +=
        other.counts_[static_cast<std::size_t>(i)];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double LatencyHistogram::mean() const {
  return count_ > 0 ? sum_ / static_cast<double>(count_) : 0;
}

int LatencyHistogram::bucket_index(double seconds) {
  if (seconds < kMinSeconds) return 0;
  if (seconds >= kMaxSeconds) return kBuckets - 1;
  const int rung = static_cast<int>(
      std::log(seconds / kMinSeconds) / std::log(kGrowth));
  return 1 + std::clamp(rung, 0, kRungs - 1);
}

double LatencyHistogram::bucket_lower(int index) {
  if (index <= 0) return 0;
  if (index >= kBuckets - 1) return kMaxSeconds;
  return kMinSeconds * std::pow(kGrowth, index - 1);
}

double LatencyHistogram::bucket_upper(int index) {
  if (index <= 0) return kMinSeconds;
  if (index >= kBuckets - 1) return kMaxSeconds;  // unbounded; see header
  return kMinSeconds * std::pow(kGrowth, index);
}

double LatencyHistogram::quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count_ - 1);
  // The extremes are tracked exactly; don't let bucket interpolation blur
  // them (q=1 must report the true max, not a point inside its bucket).
  if (rank <= 0) return min_;
  if (rank >= static_cast<double>(count_ - 1)) return max_;
  std::uint64_t cum = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t c = counts_[static_cast<std::size_t>(b)];
    if (c == 0) continue;
    if (rank < static_cast<double>(cum + c)) {
      // Rank interpolation inside the bucket: samples at local ranks
      // 0..c-1 spread linearly over the bucket's extent, clamped so the
      // result never leaves the bucket (a fractional rank near the top of
      // a sparse bucket would otherwise overshoot the upper edge and break
      // the ≤5% guarantee). The overflow bucket has no upper edge; its
      // exact max stands in.
      const double within = std::clamp(
          (rank - static_cast<double>(cum) + 0.5) / static_cast<double>(c),
          0.0, 1.0);
      const double lo = bucket_lower(b);
      const double hi = b == kBuckets - 1 ? max_ : bucket_upper(b);
      const double v = lo + within * (std::max(hi, lo) - lo);
      return std::clamp(v, min_, max_);
    }
    cum += c;
  }
  return max_;
}

std::uint64_t LatencyHistogram::bucket_count(int index) const {
  CB_CHECK_MSG(index >= 0 && index < kBuckets,
               "histogram bucket index " << index << " out of range");
  return counts_[static_cast<std::size_t>(index)];
}

std::string LatencyHistogram::serialize() const {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "v1 " << count_ << ' ' << sum_ << ' ' << min_value() << ' '
     << max_value();
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t c = counts_[static_cast<std::size_t>(i)];
    if (c > 0) os << ' ' << i << ':' << c;
  }
  return os.str();
}

LatencyHistogram LatencyHistogram::deserialize(const std::string& text) {
  std::istringstream is(text);
  std::string version;
  LatencyHistogram h;
  is >> version >> h.count_ >> h.sum_ >> h.min_ >> h.max_;
  CB_CHECK_MSG(!is.fail() && version == "v1",
               "malformed latency histogram header");
  std::uint64_t total = 0;
  std::string pair;
  while (is >> pair) {
    const std::size_t colon = pair.find(':');
    CB_CHECK_MSG(colon != std::string::npos && colon > 0,
                 "malformed latency histogram bucket '" << pair << "'");
    int index = -1;
    std::uint64_t c = 0;
    try {
      index = std::stoi(pair.substr(0, colon));
      c = std::stoull(pair.substr(colon + 1));
    } catch (const std::exception&) {
      CB_CHECK_MSG(false, "malformed latency histogram bucket '" << pair
                                                                 << "'");
    }
    CB_CHECK_MSG(index >= 0 && index < kBuckets,
                 "latency histogram bucket " << index << " out of range");
    h.counts_[static_cast<std::size_t>(index)] += c;
    total += c;
  }
  CB_CHECK_MSG(total == h.count_,
               "latency histogram bucket counts sum to "
                   << total << ", header says " << h.count_);
  return h;
}

}  // namespace convbound
