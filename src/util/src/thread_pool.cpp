#include "convbound/util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "convbound/util/check.hpp"

namespace convbound {

ThreadPool::ThreadPool(std::size_t n) {
  if (n == 0) n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      UniqueLock lock(mu_);
      while (!stop_ && queue_.empty()) cv_.wait(lock);
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  CB_CHECK(begin <= end);
  const std::size_t total = end - begin;
  if (total == 0) return;
  if (total == 1) {
    fn(begin);
    return;
  }
  const std::size_t nthreads = num_threads();
  const std::size_t chunks = std::min(total, nthreads * 4);
  const std::size_t chunk = (total + chunks - 1) / chunks;

  std::vector<std::future<void>> futs;
  futs.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk;
    if (lo >= end) break;
    const std::size_t hi = std::min(end, lo + chunk);
    futs.push_back(submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  // Drain every chunk before rethrowing: chunk tasks reference `fn`, so an
  // early rethrow while siblings are still queued or running would leave
  // them calling through a dangling reference.
  std::exception_ptr first_error;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace convbound
