#include "convbound/util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "convbound/util/check.hpp"

namespace convbound {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  CB_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> row) {
  CB_CHECK_MSG(row.size() == header_.size(),
               "row arity " << row.size() << " != header arity "
                            << header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::fmt_int(long long v) { return std::to_string(v); }

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " ");
      os << row[c] << std::string(width[c] - row[c].size(), ' ') << " |";
    }
    os << '\n';
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|" : "") << std::string(width[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace convbound
