// Fixed-size work-queue thread pool.
//
// In the GPU simulator one pool worker plays the role of one streaming
// multiprocessor: thread blocks are submitted as tasks and drained by
// `num_threads()` workers, mirroring how a GPU schedules blocks onto SMs.
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "convbound/util/mutex.hpp"
#include "convbound/util/thread_annotations.hpp"

namespace convbound {

class ThreadPool {
 public:
  /// Creates `n` workers; n == 0 means hardware_concurrency().
  explicit ThreadPool(std::size_t n = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Enqueue a task; the returned future rethrows task exceptions.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      MutexLock lock(mu_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(i) for i in [begin, end) across the pool and blocks until done.
  /// Work is chunked to amortise queueing overhead.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Process-wide shared pool (sized to hardware concurrency).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar cv_;
  std::queue<std::function<void()>> queue_ CB_GUARDED_BY(mu_);
  bool stop_ CB_GUARDED_BY(mu_) = false;
};

}  // namespace convbound
