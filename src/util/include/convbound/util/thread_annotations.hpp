#pragma once

// Portable macros over Clang's thread-safety-analysis attributes
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). Under clang the
// macros expand to the real attributes and `-Wthread-safety
// -Werror=thread-safety` (CMake option CONVBOUND_THREAD_SAFETY, turned on by
// the CI static-analysis job) makes a dropped lock a *compile error*; under
// any other compiler they expand to nothing, so gcc builds are unaffected.
//
// Conventions (see docs/concurrency.md for the full lock hierarchy):
//   - Every mutex-protected member is CB_GUARDED_BY(its mutex).
//   - Every `*_locked` helper that assumes a held lock is CB_REQUIRES(it).
//   - Lock-free fast paths (reservation atomics, the eventcount version
//     counter, tracing's gate atomic) carry NO capability — each exempt
//     site has a header comment stating why the protocol is safe without
//     one, so the analysis encodes the real design rather than silencing it.
//   - Raw std::mutex is never locked directly outside convbound/util/mutex.hpp
//     (enforced by tools/lint_convbound.py): the analysis only sees locks
//     taken through the annotated Mutex/MutexLock/UniqueLock wrappers.

#if defined(__clang__)
#define CB_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define CB_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

// A type that acts as a lock/capability (e.g. convbound::Mutex).
#define CB_CAPABILITY(name) CB_THREAD_ANNOTATION(capability(name))

// An RAII type that acquires a capability in its constructor and releases it
// in its destructor (MutexLock, UniqueLock, MutexPairLock).
#define CB_SCOPED_CAPABILITY CB_THREAD_ANNOTATION(scoped_lockable)

// Data members readable/writable only while holding the named mutex.
#define CB_GUARDED_BY(x) CB_THREAD_ANNOTATION(guarded_by(x))

// Pointer members whose *pointee* is protected by the named mutex (the
// pointer itself may additionally be CB_GUARDED_BY a mutex).
#define CB_PT_GUARDED_BY(x) CB_THREAD_ANNOTATION(pt_guarded_by(x))

// Functions that acquire/release a capability and hold it past return /
// expect it held on entry.
#define CB_ACQUIRE(...) CB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define CB_RELEASE(...) CB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define CB_TRY_ACQUIRE(...) \
  CB_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// Functions the caller must invoke with the capability already held
// (the `*_locked` private-helper convention).
//
// The negative compile test (tests/annotations_negative.cpp, driven by a
// CMake try_compile pair) predefines CONVBOUND_TSA_STRIP_REQUIRES and
// recompiles the RequestQueue implementation: with CB_REQUIRES erased, the
// guarded-member accesses inside the `*_locked` helpers MUST fail the build
// under -Werror=thread-safety — proving the wall cannot silently rot.
#if defined(CONVBOUND_TSA_STRIP_REQUIRES)
#define CB_REQUIRES(...)  // deliberately erased by the negative compile test
#else
#define CB_REQUIRES(...) \
  CB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#endif

// Functions that must be called WITHOUT the capability held (deadlock
// documentation: e.g. a notifier callback that re-enters the queue).
#define CB_EXCLUDES(...) CB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Lock-ordering documentation. Clang only checks these under the optional
// -Wthread-safety-beta group; they still machine-document the hierarchy
// (shard.mu_ before wait_mu_, etc.) at the declaration site.
#define CB_ACQUIRED_BEFORE(...) \
  CB_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define CB_ACQUIRED_AFTER(...) \
  CB_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// A function that returns a reference to the capability guarding its result.
#define CB_RETURN_CAPABILITY(x) CB_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch for protocols the analysis cannot express. Every use MUST
// carry a comment with the informal proof (docs/concurrency.md collects
// them); bare uses are a review smell.
#define CB_NO_THREAD_SAFETY_ANALYSIS \
  CB_THREAD_ANNOTATION(no_thread_safety_analysis)
