// Small integer/float math helpers shared across modules.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "convbound/util/check.hpp"

namespace convbound {

/// ceil(a / b) for positive integers.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// Smallest multiple of `m` that is >= `a`.
constexpr std::int64_t round_up(std::int64_t a, std::int64_t m) {
  return ceil_div(a, m) * m;
}

/// All positive divisors of `n`, ascending.
inline std::vector<std::int64_t> divisors(std::int64_t n) {
  CB_CHECK(n > 0);
  std::vector<std::int64_t> lo, hi;
  for (std::int64_t d = 1; d * d <= n; ++d) {
    if (n % d == 0) {
      lo.push_back(d);
      if (d != n / d) hi.push_back(n / d);
    }
  }
  lo.insert(lo.end(), hi.rbegin(), hi.rend());
  return lo;
}

/// Integer floor(sqrt(n)).
inline std::int64_t isqrt(std::int64_t n) {
  CB_CHECK(n >= 0);
  auto r = static_cast<std::int64_t>(std::sqrt(static_cast<double>(n)));
  while (r > 0 && r * r > n) --r;
  while ((r + 1) * (r + 1) <= n) ++r;
  return r;
}

/// True if |a-b| <= atol + rtol*|b|.
inline bool close(double a, double b, double rtol = 1e-5, double atol = 1e-8) {
  return std::abs(a - b) <= atol + rtol * std::abs(b);
}

}  // namespace convbound
