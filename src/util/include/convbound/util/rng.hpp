// Deterministic, fast pseudo-random generation (xoshiro256** + splitmix64).
//
// Every stochastic component in the library (tensor fills, tuner search,
// genetic mutation) takes an explicit `Rng&` so whole experiments replay
// bit-identically from a single seed.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

namespace convbound {

/// xoshiro256** seeded via splitmix64. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    std::uint64_t x = seed;
    for (auto& si : s_) si = splitmix64(x);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) { return (*this)() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(
                    static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box–Muller (one value per call; simple, adequate).
  double normal() {
    double u1 = uniform();
    double u2 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Derive an independent child stream (for per-thread determinism).
  Rng split() {
    std::uint64_t seed = (*this)();
    return Rng(seed);
  }

  /// Raw generator state, for checkpoint serialization (a resumed search
  /// must continue the exact stream, not restart it from the seed).
  std::array<std::uint64_t, 4> state() const { return {s_[0], s_[1], s_[2], s_[3]}; }
  void set_state(const std::array<std::uint64_t, 4>& s) {
    for (int i = 0; i < 4; ++i) s_[i] = s[i];
  }

 private:
  static std::uint64_t splitmix64(std::uint64_t& x) {
    std::uint64_t z = (x += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  static std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace convbound
