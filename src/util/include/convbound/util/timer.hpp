// Wall-clock timing helper (host time; the simulator has its own model time).
#pragma once

#include <chrono>

namespace convbound {

class WallTimer {
 public:
  /// Monotonic clock shared by every wall-time measurement in the repo
  /// (serving timestamps and trace events use the same clock, so their
  /// time points are directly comparable).
  using Clock = std::chrono::steady_clock;

  WallTimer() : start_(Clock::now()) {}
  void reset() { start_ = Clock::now(); }
  /// Seconds elapsed since construction/reset.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double milliseconds() const { return seconds() * 1e3; }

 private:
  Clock::time_point start_;
};

}  // namespace convbound
