// Wall-clock timing helper (host time; the simulator has its own model time).
#pragma once

#include <chrono>

namespace convbound {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}
  void reset() { start_ = Clock::now(); }
  /// Seconds elapsed since construction/reset.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace convbound
