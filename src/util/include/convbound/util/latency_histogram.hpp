// Exact, mergeable latency telemetry (HDR-histogram style).
//
// A fixed geometric bucket ladder covers [1µs, 100s) at 5% relative
// resolution: bucket i spans [kMinSeconds * 1.05^i, kMinSeconds * 1.05^(i+1)),
// plus one underflow bucket below 1µs and one overflow bucket at/above 100s.
// record() is O(1) (one log + one increment), so it can sit on the serving
// batch path; memory is a fixed ~3KB of counters regardless of how long the
// server runs.
//
// The point of the ladder is *mergeability*: two histograms over disjoint
// request populations merge by bucket-wise addition, and any quantile of
// the merged histogram lands within one bucket (≤5% relative error) of the
// combined population's order statistic at that rank — a nearest-rank
// quantile, see the quantile() contract below — unlike averaging per-part
// percentiles, which is not a percentile at all and can misreport a
// heterogeneous fleet's tail by 2x or more (the bug this type exists to
// fix; see tests/stats_test.cpp). Count, sum (hence mean), min, and max
// are tracked exactly on the side, so the extremes and the mean carry no
// bucket error.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace convbound {

class LatencyHistogram {
 public:
  /// Lower edge of the first geometric bucket; values below land in the
  /// underflow bucket [0, kMinSeconds).
  static constexpr double kMinSeconds = 1e-6;
  /// Values at/above this land in the overflow bucket (their exact max is
  /// still tracked).
  static constexpr double kMaxSeconds = 100.0;
  /// Relative bucket width: each bucket's upper edge is 5% above its lower
  /// edge, bounding the quantile interpolation error to 5%.
  static constexpr double kGrowth = 1.05;
  /// Geometric rungs covering [kMinSeconds, kMaxSeconds):
  /// 1e-6 * 1.05^378 ≈ 102s >= 100s (verified by tests/stats_test.cpp).
  static constexpr int kRungs = 378;
  /// Total buckets: underflow + rungs + overflow.
  static constexpr int kBuckets = kRungs + 2;

  LatencyHistogram() : counts_(kBuckets, 0) {}

  /// O(1); negative values clamp to 0 (underflow bucket).
  void record(double seconds);

  /// Bucket-wise addition — the merged histogram is exactly the histogram
  /// of the concatenated populations.
  void merge(const LatencyHistogram& other);

  std::uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  /// Exact sum of recorded values (mean carries no bucket error).
  double sum() const { return sum_; }
  double mean() const;
  /// Exact extremes; 0 when empty.
  double min_value() const { return count_ > 0 ? min_ : 0; }
  double max_value() const { return count_ > 0 ? max_ : 0; }

  /// The q-quantile (q in [0,1]) by rank interpolation inside the bucket
  /// holding the order statistic at rank q*(count-1) (rounded down);
  /// clamped to that bucket and to the exact [min, max]. Guarantee: within
  /// one bucket (≤5% relative error inside the ladder) of that *order
  /// statistic* — i.e. a nearest-rank quantile. This is deliberately not
  /// the linearly-interpolated percentile (which averages two neighbouring
  /// order statistics): when a fractional rank falls in the gap between
  /// two widely-separated latency masses the interpolated figure is a
  /// value no request ever had, and no bounded-resolution sketch can sit
  /// within 5% of it. At ranks inside a mass the two definitions agree to
  /// within the neighbour gap (tests/stats_test.cpp checks against the
  /// interpolated reference on such populations). 0 when empty.
  double quantile(double q) const;

  /// Raw counter access (index in [0, kBuckets)).
  std::uint64_t bucket_count(int index) const;

  /// Bucket index a value lands in: 0 = underflow, 1..kRungs = ladder,
  /// kBuckets-1 = overflow.
  static int bucket_index(double seconds);
  /// Bucket edges: [bucket_lower(i), bucket_upper(i)). The underflow bucket
  /// is [0, kMinSeconds); the overflow bucket's upper edge is reported as
  /// its lower edge (its true extent is unbounded — quantiles there use the
  /// exact max instead).
  static double bucket_lower(int index);
  static double bucket_upper(int index);

  /// Compact single-line text form: "v1 <count> <sum> <min> <max>" followed
  /// by sparse "<bucket>:<count>" pairs. Round-trips through deserialize()
  /// bit-exactly for counters (doubles via max_digits10).
  std::string serialize() const;
  /// Throws convbound::Error on malformed input.
  static LatencyHistogram deserialize(const std::string& text);

  /// Equal counters and count (used by tests; the derived sums are compared
  /// separately because they round-trip through text).
  bool same_buckets(const LatencyHistogram& other) const {
    return counts_ == other.counts_;
  }

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace convbound
