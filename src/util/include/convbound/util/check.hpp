// Error-handling primitives.
//
// The library distinguishes two failure classes (C++ Core Guidelines E.x):
//   * precondition/API misuse and environmental failures -> exceptions
//     (`CB_CHECK`, `Error`), recoverable by the caller;
//   * internal invariant violations -> `CB_ASSERT`, which terminates, since
//     continuing with a corrupted simulation would silently produce wrong
//     science.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace convbound {

/// Exception type thrown on precondition violations and runtime failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "CB_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace convbound

/// Throws convbound::Error when `cond` is false. Usable with a streamed
/// message: CB_CHECK(x > 0) or CB_CHECK_MSG(x > 0, "x=" << x).
#define CB_CHECK(cond)                                                       \
  do {                                                                       \
    if (!(cond))                                                             \
      ::convbound::detail::throw_check_failure(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define CB_CHECK_MSG(cond, stream_expr)                                       \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::ostringstream cb_check_os_;                                        \
      cb_check_os_ << stream_expr;                                            \
      ::convbound::detail::throw_check_failure(#cond, __FILE__, __LINE__,     \
                                               cb_check_os_.str());           \
    }                                                                         \
  } while (0)

/// Internal invariant; violation indicates a library bug, so terminate.
#define CB_ASSERT(cond)                                                 \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::std::fprintf(stderr, "CB_ASSERT failed: %s at %s:%d\n", #cond,  \
                     __FILE__, __LINE__);                               \
      ::std::abort();                                                   \
    }                                                                   \
  } while (0)
