// Console table / CSV emission used by the benchmark harness to print
// paper-style result tables.
#pragma once

#include <string>
#include <vector>

namespace convbound {

/// Collects rows of strings and renders an aligned ASCII table or CSV.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must match the header arity.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with fixed precision.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt_int(long long v);

  /// Render with column alignment and a rule under the header.
  std::string to_string() const;
  std::string to_csv() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace convbound
