#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "convbound/util/thread_annotations.hpp"

// Annotated mutex wrappers: the ONLY place in the repo where a raw
// std::mutex is locked (enforced by tools/lint_convbound.py). Clang's
// thread-safety analysis cannot see std::mutex/std::lock_guard (libstdc++
// carries no annotations), so every lock in the concurrency core goes
// through these types — that is what turns the documented locking protocols
// (docs/concurrency.md) into compile-checked ones.
//
// Usage mirrors the standard library:
//   Mutex mu_;                    // the capability
//   int x_ CB_GUARDED_BY(mu_);    // data it protects
//   MutexLock lock(mu_);          // std::lock_guard equivalent
//   UniqueLock lock(mu_);         // std::unique_lock equivalent (cv waits)
//   cv_.wait(lock);               // CondVar wraps std::condition_variable
//
// Condition-variable waits use explicit `while (!cond) cv_.wait(lock);`
// loops, never the predicate-lambda overloads: a lambda is a separate
// function to the analysis and would not inherit the held capability, so
// predicate bodies touching guarded members would (rightly) fail to check.

namespace convbound {

class CondVar;
class MutexPairLock;

// A std::mutex the thread-safety analysis can track.
class CB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CB_ACQUIRE() { mu_.lock(); }
  void unlock() CB_RELEASE() { mu_.unlock(); }
  bool try_lock() CB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class UniqueLock;
  friend class MutexPairLock;
  std::mutex mu_;
};

// std::lock_guard equivalent.
class CB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CB_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() CB_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// std::unique_lock equivalent: releasable mid-scope and usable with CondVar.
class CB_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) CB_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~UniqueLock() CB_RELEASE() = default;

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() CB_ACQUIRE() { lock_.lock(); }
  void unlock() CB_RELEASE() { lock_.unlock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

// std::scoped_lock(a, b) equivalent: deadlock-free dual acquisition via
// std::lock (used by TuneCache::operator=, which must hold both its own and
// the source cache's mutex).
class CB_SCOPED_CAPABILITY MutexPairLock {
 public:
  MutexPairLock(Mutex& a, Mutex& b) CB_ACQUIRE(a, b) : a_(a), b_(b) {
    std::lock(a_.mu_, b_.mu_);
  }
  ~MutexPairLock() CB_RELEASE() {
    a_.mu_.unlock();
    b_.mu_.unlock();
  }

  MutexPairLock(const MutexPairLock&) = delete;
  MutexPairLock& operator=(const MutexPairLock&) = delete;

 private:
  Mutex& a_;
  Mutex& b_;
};

// std::condition_variable over UniqueLock. Waits atomically release and
// re-acquire the underlying std::mutex; the analysis (like Abseil's) treats
// the capability as continuously held across the wait, which is sound for
// callers because the guarded state is only ever observed with the lock
// held on either side of the wait.
class CondVar {
 public:
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  void wait(UniqueLock& lock) { cv_.wait(lock.lock_); }

  template <class Clock, class Duration>
  std::cv_status wait_until(
      UniqueLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

  template <class Rep, class Period>
  std::cv_status wait_for(UniqueLock& lock,
                          const std::chrono::duration<Rep, Period>& rel) {
    return cv_.wait_for(lock.lock_, rel);
  }

 private:
  std::condition_variable cv_;
};

}  // namespace convbound
