// Name-keyed tuner construction and the on-disk checkpoint format.
//
// Every search strategy is reachable through one factory and one options
// struct, so the CLI, the engine and the benches stop hard-coding
// constructor signatures; the checkpoint file wraps Tuner::save_state()
// with the tuner id and the domain identity, so a resume can verify it is
// continuing the same search before replaying any state.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "convbound/tune/bnb.hpp"
#include "convbound/tune/tuners.hpp"

namespace convbound {

/// One options struct covering every registered tuner; each strategy reads
/// the fields it understands and ignores the rest.
struct TunerOptions {
  std::uint64_t seed = 1;
  /// Configurations measured first (template-manager knowledge, e.g. the
  /// analytic default config); consumed by the seeding strategies (ate,
  /// bnb) and appended to their per-strategy seed lists.
  std::vector<ConvConfig> seeds;

  int random_batch = 16;

  double sa_t0 = 1.0;
  double sa_cooling = 0.98;
  int sa_chains = 4;

  int ga_population = 16;
  double ga_mutation_rate = 0.3;

  AteTuner::Params ate;
  BnbOptions bnb;
};

/// Canonical tuner ids, in presentation order: bnb, ate, sa, ga, random.
std::vector<std::string> tuner_names();

/// Factory keyed by Tuner::id(); also accepts the legacy display aliases
/// ("simulated-annealing", "genetic", "ate(ours)", "branch-and-bound").
/// Throws on unknown names, listing the valid ones.
std::unique_ptr<Tuner> make_tuner(const std::string& name,
                                  const TunerOptions& opts = {});

// ----------------------------------------------------------- checkpoints --
//
// File format (line-based, like the TuneCache text form):
//
//   convbound-checkpoint v1
//   key <TuneCache::make_key of the tuned problem>
//   domain-size <exact configuration count>
//   <Tuner::save_state() text, which starts "convbound-tuner-state v1">
//
// key + domain-size identify the search: a resume against a different
// shape, machine, dataflow or domain pruning flag fails loudly instead of
// replaying a foreign trace.

std::string serialize_checkpoint(const Tuner& tuner,
                                 const std::string& domain_key,
                                 std::uint64_t domain_size);

/// Rebuilds the checkpointed tuner (via make_tuner on the stored id, with
/// `opts` supplying the non-serialized strategy parameters) and restores
/// its state against `domain`. Throws if the stored key/size do not match.
std::unique_ptr<Tuner> load_checkpoint(const std::string& text,
                                       const SearchDomain& domain,
                                       const std::string& domain_key,
                                       const TunerOptions& opts = {});

/// serialize_checkpoint to `path` via write-temp + atomic rename, so a kill
/// mid-write leaves the previous checkpoint intact.
void save_checkpoint_file(const std::string& path, const Tuner& tuner,
                          const std::string& domain_key,
                          std::uint64_t domain_size);

/// Reads and load_checkpoint()s `path`; throws if the file is missing.
std::unique_ptr<Tuner> load_checkpoint_file(const std::string& path,
                                            const SearchDomain& domain,
                                            const std::string& domain_key,
                                            const TunerOptions& opts = {});

}  // namespace convbound
