// The configuration search domain (paper Table 1).
//
// The TVM-like baseline domain contains every feasible tiling (divisor tile
// sizes, thread factors, layouts, shared-memory budgets that physically
// fit). The paper's auto-tuning engine additionally prunes with the I/O
// optimality condition x*y = R*z, which implies z <= sqrt(S_b/R) and
// x*y <= sqrt(S_b*R) (Section 6.2) — that pruning is exactly what Table 2's
// "Size of Search Space" columns compare.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "convbound/conv/conv_config.hpp"
#include "convbound/machine/machine_spec.hpp"
#include "convbound/util/rng.hpp"

namespace convbound {

struct DomainOptions {
  /// Apply the optimality-condition pruning (ours). false = TVM-like space.
  bool prune_with_optimality = true;
  /// Tune the Winograd dataflow instead of the direct one.
  bool winograd = false;
  std::int64_t e = 2;  ///< Winograd output tile edge
};

class SearchDomain {
 public:
  static SearchDomain build(const ConvShape& shape, const MachineSpec& spec,
                            const DomainOptions& opts = {});

  const ConvShape& shape() const { return shape_; }
  const MachineSpec& spec() const { return spec_; }
  const DomainOptions& options() const { return opts_; }

  /// Exact number of valid configurations (counted by enumeration over the
  /// factor lattice; cheap because thread-split counts are memoised).
  std::uint64_t size() const { return size_; }

  /// True when cfg satisfies every domain constraint.
  bool contains(const ConvConfig& cfg) const;

  /// Uniform-ish sample (rejection over the factor lattice).
  ConvConfig sample(Rng& rng) const;

  /// All lattice moves of one step (adjacent divisor in one dimension,
  /// neighbouring thread split, next layout, next smem budget) that stay
  /// inside the domain.
  std::vector<ConvConfig> neighbors(const ConvConfig& cfg) const;

  const std::vector<std::int64_t>& xs() const { return xs_; }
  const std::vector<std::int64_t>& ys() const { return ys_; }
  const std::vector<std::int64_t>& zs() const { return zs_; }
  const std::vector<std::int64_t>& smem_choices() const { return smems_; }

  /// Memoised thread-split candidates for a tile size of this domain
  /// (divisors capped at the per-dimension thread limit). Empty for tile
  /// sizes outside the domain's lattice — such configurations fail
  /// contains() anyway. Built once; sample()/neighbors() are measured
  /// hot paths and must not recompute divisor tables per call.
  const std::vector<std::int64_t>& thread_splits(std::int64_t tile) const;

 private:
  bool tile_ok(std::int64_t x, std::int64_t y, std::int64_t z,
               std::int64_t smem) const;
  std::int64_t footprint_bytes(std::int64_t x, std::int64_t y,
                               std::int64_t z) const;

  ConvShape shape_;
  MachineSpec spec_;
  DomainOptions opts_;
  std::vector<std::int64_t> xs_, ys_, zs_;  // candidate tile sizes (ascending)
  std::vector<std::int64_t> smems_;         // candidate S_b (bytes, descending)
  std::map<std::int64_t, std::vector<std::int64_t>> thread_splits_;
  std::uint64_t size_ = 0;
};

}  // namespace convbound
