// The configuration search domain (paper Table 1).
//
// The TVM-like baseline domain contains every feasible tiling (divisor tile
// sizes, thread factors, layouts, shared-memory budgets that physically
// fit). The paper's auto-tuning engine additionally prunes with the I/O
// optimality condition x*y = R*z, which implies z <= sqrt(S_b/R) and
// x*y <= sqrt(S_b*R) (Section 6.2) — that pruning is exactly what Table 2's
// "Size of Search Space" columns compare.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "convbound/conv/conv_config.hpp"
#include "convbound/machine/machine_spec.hpp"
#include "convbound/util/rng.hpp"

namespace convbound {

struct DomainOptions {
  /// Apply the optimality-condition pruning (ours). false = TVM-like space.
  bool prune_with_optimality = true;
  /// Tune the Winograd dataflow instead of the direct one.
  bool winograd = false;
  std::int64_t e = 2;  ///< Winograd output tile edge
};

/// An axis-aligned sub-box of the tile lattice: half-open index ranges into
/// the candidate lists xs()/ys()/zs()/smem_choices(). Thread splits and
/// layouts are never partitioned — they stay free until a singleton box
/// (leaf) is enumerated, because the per-subtree I/O bound cannot
/// discriminate them (Equations 20/22 depend only on x, y, z and S_b).
struct DomainBox {
  std::size_t x_lo = 0, x_hi = 0;
  std::size_t y_lo = 0, y_hi = 0;
  std::size_t z_lo = 0, z_hi = 0;
  std::size_t s_lo = 0, s_hi = 0;

  /// Exactly one (x, y, z, S_b) lattice point left.
  bool singleton() const {
    return x_hi - x_lo == 1 && y_hi - y_lo == 1 && z_hi - z_lo == 1 &&
           s_hi - s_lo == 1;
  }
  bool operator==(const DomainBox&) const = default;
};

class SearchDomain {
 public:
  static SearchDomain build(const ConvShape& shape, const MachineSpec& spec,
                            const DomainOptions& opts = {});

  const ConvShape& shape() const { return shape_; }
  const MachineSpec& spec() const { return spec_; }
  const DomainOptions& options() const { return opts_; }

  /// Exact number of valid configurations (counted by enumeration over the
  /// factor lattice; cheap because thread-split counts are memoised).
  std::uint64_t size() const { return size_; }

  /// True when cfg satisfies every domain constraint.
  bool contains(const ConvConfig& cfg) const;

  /// Uniform-ish sample (rejection over the factor lattice).
  ConvConfig sample(Rng& rng) const;

  /// All lattice moves of one step (adjacent divisor in one dimension,
  /// neighbouring thread split, next layout, next smem budget) that stay
  /// inside the domain.
  std::vector<ConvConfig> neighbors(const ConvConfig& cfg) const;

  // Deterministic sub-box partitioning, shared by the branch-and-bound
  // tuner and the exhaustive-enumeration certificate test. All iteration
  // orders below are fixed functions of the candidate lists — no RNG, no
  // hashing — so subtree traversal is identical across platforms and runs.

  /// The box covering the whole lattice.
  DomainBox full_box() const;

  /// Splits `box` along its first non-singleton axis — fixed order S_b,
  /// z, x, y — into one singleton-width slice per candidate index, in
  /// index order. Children tile the parent exactly (disjoint, complete).
  /// Returns {} for a singleton box.
  std::vector<DomainBox> partition(const DomainBox& box) const;

  /// Exact number of valid configurations inside `box` (same count the
  /// domain's total size() sums over the full box).
  std::uint64_t count_configs(const DomainBox& box) const;

  /// Every valid configuration inside `box`, in fixed lattice order
  /// (x, y, z, S_b indices ascending, then thread splits nxt/nyt/nzt
  /// ascending, then kAllLayouts order). Matches count_configs.
  std::vector<ConvConfig> enumerate_configs(const DomainBox& box) const;

  const std::vector<std::int64_t>& xs() const { return xs_; }
  const std::vector<std::int64_t>& ys() const { return ys_; }
  const std::vector<std::int64_t>& zs() const { return zs_; }
  const std::vector<std::int64_t>& smem_choices() const { return smems_; }

  /// Memoised thread-split candidates for a tile size of this domain
  /// (divisors capped at the per-dimension thread limit). Empty for tile
  /// sizes outside the domain's lattice — such configurations fail
  /// contains() anyway. Built once; sample()/neighbors() are measured
  /// hot paths and must not recompute divisor tables per call.
  const std::vector<std::int64_t>& thread_splits(std::int64_t tile) const;

 private:
  bool tile_ok(std::int64_t x, std::int64_t y, std::int64_t z,
               std::int64_t smem) const;
  std::int64_t footprint_bytes(std::int64_t x, std::int64_t y,
                               std::int64_t z) const;

  ConvShape shape_;
  MachineSpec spec_;
  DomainOptions opts_;
  std::vector<std::int64_t> xs_, ys_, zs_;  // candidate tile sizes (ascending)
  std::vector<std::int64_t> smems_;         // candidate S_b (bytes, descending)
  std::map<std::int64_t, std::vector<std::int64_t>> thread_splits_;
  std::uint64_t size_ = 0;
};

}  // namespace convbound
