// One-call auto-tuning entry point (the paper's Section 6.3 loop).
#pragma once

#include "convbound/tune/tuners.hpp"

namespace convbound {

struct AutotuneOptions {
  int budget = 96;            ///< measurement trials
  std::uint64_t seed = 1;
  bool winograd = false;
  std::int64_t e = 2;
  bool prune_with_optimality = true;
  /// Parallel measurement workers for the batched evaluation pipeline;
  /// 0 = one per hardware thread. The search trace is identical for any
  /// value — workers only change wall-clock.
  int workers = 0;
  AteTuner::Params ate;
};

struct AutotuneOutcome {
  TuneResult result;
  SearchDomain domain;
  double best_gflops = 0;
};

/// Builds the (pruned) domain for `shape` on `gpu`'s machine, runs the ATE
/// tuner and returns the best configuration + trace.
AutotuneOutcome autotune_conv(SimGpu& gpu, const ConvShape& shape,
                              const AutotuneOptions& opts = {});

}  // namespace convbound
