// One-call auto-tuning entry point (the paper's Section 6.3 loop), now a
// thin driver over the stepwise Tuner API: pick a strategy from the
// registry, step it against the batched measurer, and optionally persist a
// resumable checkpoint after every measured batch.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "convbound/tune/registry.hpp"

namespace convbound {

struct AutotuneOptions {
  int budget = 96;            ///< measurement trials
  std::uint64_t seed = 1;
  bool winograd = false;
  std::int64_t e = 2;
  bool prune_with_optimality = true;
  /// Parallel measurement workers for the batched evaluation pipeline;
  /// 0 = one per hardware thread. The search trace is identical for any
  /// value — workers only change wall-clock.
  int workers = 0;
  /// Strategy id for make_tuner: "ate" (default) | "bnb" | "sa" | "ga" |
  /// "random".
  std::string tuner = "ate";
  /// When non-empty, the full search state is written here (atomic
  /// tmp+rename) after every measured batch, so a killed run loses at most
  /// the in-flight batch.
  std::string checkpoint;
  /// Load `checkpoint` and continue its trace up to `budget` total trials
  /// instead of starting fresh. The file must exist and must match the
  /// domain (key + exact configuration count).
  bool resume = false;
  AteTuner::Params ate;
};

struct AutotuneOutcome {
  TuneResult result;
  SearchDomain domain;
  double best_gflops = 0;
  /// Strategy-specific counters (bnb pruning stats; empty otherwise).
  std::vector<std::pair<std::string, double>> tuner_stats;
  /// Trials restored from the checkpoint (0 for a fresh run).
  int resumed_from_trials = 0;
  /// The strategy proved no better configuration exists (bnb only).
  bool proven_optimal = false;
};

/// Builds the (pruned) domain for `shape` on `gpu`'s machine, runs the
/// selected tuner (seeded with the analytic dataflow default) and returns
/// the best configuration + trace.
AutotuneOutcome autotune_conv(SimGpu& gpu, const ConvShape& shape,
                              const AutotuneOptions& opts = {});

}  // namespace convbound
