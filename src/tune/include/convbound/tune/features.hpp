// Feature extraction from configurations for the GBT cost model.
#pragma once

#include <vector>

#include "convbound/conv/conv_config.hpp"
#include "convbound/machine/machine_spec.hpp"
#include "convbound/tune/domain.hpp"

namespace convbound {

/// Maps a configuration to the cost model's feature vector: log tile dims,
/// thread split, layout one-hot, shared-memory pressure, occupancy,
/// optimality residual and the analytic dataflow read estimate.
std::vector<double> config_features(const SearchDomain& domain,
                                    const ConvConfig& cfg);

/// Number of features produced by config_features.
std::size_t config_feature_arity();

}  // namespace convbound
