// Measurement oracle shared by every tuner: runs the tunable kernel on the
// simulated machine and reports its modelled runtime.
#pragma once

#include <limits>
#include <optional>

#include "convbound/conv/algorithms.hpp"
#include "convbound/machine/sim_gpu.hpp"
#include "convbound/tune/domain.hpp"

namespace convbound {

struct Measurement {
  double seconds = std::numeric_limits<double>::infinity();
  LaunchStats stats;
  bool valid = false;
};

/// Owns the problem tensors and the output buffer; measure() executes the
/// configured kernel for real (counted I/O + roofline time). Invalid
/// configurations — e.g. a tile that overflows its declared S_b — come back
/// with valid == false and infinite time, exactly like a failed on-device
/// trial in TVM.
class ConvMeasurer {
 public:
  ConvMeasurer(SimGpu& gpu, const SearchDomain& domain,
               std::uint64_t seed = 42);

  Measurement measure(const ConvConfig& cfg);

  /// GFLOP/s equivalent of a runtime for this problem.
  double gflops(double seconds) const;

  /// Total kernel executions performed so far.
  std::uint64_t trials() const { return trials_; }

  const SearchDomain& domain() const { return domain_; }

 private:
  SimGpu& gpu_;
  SearchDomain domain_;
  Tensor4<float> weights_;
  std::vector<Tensor4<float>> inputs_;  // one per layout
  Tensor4<float> out_;
  std::uint64_t trials_ = 0;
};

}  // namespace convbound
