// Measurement oracle shared by every tuner: runs the tunable kernel on the
// simulated machine and reports its modelled runtime.
#pragma once

#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "convbound/conv/algorithms.hpp"
#include "convbound/machine/sim_gpu.hpp"
#include "convbound/tune/domain.hpp"

namespace convbound {

struct Measurement {
  double seconds = std::numeric_limits<double>::infinity();
  LaunchStats stats;
  bool valid = false;
};

/// The immutable half of a measurement task: problem tensors generated once
/// from a seed and then only read. Shared (by const pointer) between every
/// worker of a batched measurement engine, so replicating workers costs no
/// extra tensor memory.
struct MeasureInputs {
  Tensor4<float> weights;
  std::vector<Tensor4<float>> inputs;  // one per layout

  static std::shared_ptr<const MeasureInputs> create(const SearchDomain& domain,
                                                     std::uint64_t seed);
};

/// Executes one configured kernel against shared inputs, writing into the
/// caller-owned scratch output. Deterministic: the simulator counts exact
/// integer traffic, so the result is bit-identical no matter which thread or
/// execution mode runs it. Invalid configurations — e.g. a tile that
/// overflows its declared S_b — come back with valid == false and infinite
/// time, exactly like a failed on-device trial in TVM.
Measurement measure_config(SimGpu& gpu, const SearchDomain& domain,
                           const MeasureInputs& inputs, Tensor4<float>& out,
                           const ConvConfig& cfg);

/// Interface every tuner talks to. The batch call is the primitive —
/// implementations may evaluate the candidates concurrently, but results[i]
/// always corresponds to cfgs[i], so recording stays in proposal order and
/// search traces are independent of the worker count.
class Measurer {
 public:
  virtual ~Measurer() = default;

  virtual const SearchDomain& domain() const = 0;

  /// Measures a whole candidate batch; results align with cfgs by index.
  virtual std::vector<Measurement> measure_batch(
      const std::vector<ConvConfig>& cfgs) = 0;

  /// Convenience single-candidate measurement.
  virtual Measurement measure(const ConvConfig& cfg);

  /// Total kernel executions performed so far.
  virtual std::uint64_t trials() const = 0;

  /// GFLOP/s equivalent of a runtime for this problem.
  double gflops(double seconds) const {
    return static_cast<double>(domain().shape().flops()) / seconds / 1e9;
  }
};

/// Serial measurer: one SimGpu (striped over the pool), one scratch output.
/// The reference implementation the batched engine must agree with.
class ConvMeasurer : public Measurer {
 public:
  ConvMeasurer(SimGpu& gpu, const SearchDomain& domain,
               std::uint64_t seed = 42);

  Measurement measure(const ConvConfig& cfg) override;
  std::vector<Measurement> measure_batch(
      const std::vector<ConvConfig>& cfgs) override;

  std::uint64_t trials() const override { return trials_; }
  const SearchDomain& domain() const override { return domain_; }

 private:
  SimGpu& gpu_;
  SearchDomain domain_;
  std::shared_ptr<const MeasureInputs> inputs_;
  Tensor4<float> out_;
  std::uint64_t trials_ = 0;
};

}  // namespace convbound
