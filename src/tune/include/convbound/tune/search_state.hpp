// Line-based text serialization primitives for tuner search state.
//
// Checkpoints must resume *bit-identically*: a resumed search replays the
// exact RNG streams and incumbent comparisons of the uninterrupted run.
// Doubles therefore round-trip through C99 hexfloats (%a) — exact for every
// finite value and for infinity — and RNG state round-trips as the raw
// xoshiro words, never as a reseed. The framing is one record per line with
// a leading tag token, in the same spirit as the TuneCache text format.
#pragma once

#include <iosfwd>
#include <sstream>
#include <string>
#include <vector>

#include "convbound/conv/conv_config.hpp"
#include "convbound/util/rng.hpp"

namespace convbound::tunestate {

/// Exact text form of a double ("0x1.5bf0a8b14p+3", "inf", "-inf").
std::string fmt_f64(double v);
/// Inverse of fmt_f64; throws on tokens strtod cannot fully consume.
double parse_f64(const std::string& tok);

/// Writes the 8 ConvConfig fields space-separated, in ConvConfig::key()
/// order (x y z nxt nyt nzt layout smem).
void write_config(std::ostream& os, const ConvConfig& cfg);
/// Reads 8 fields from `is`; throws on malformed input or a layout index
/// outside kAllLayouts.
ConvConfig read_config(std::istream& is);

/// RNG state as 4 decimal uint64 words.
void write_rng(std::ostream& os, const Rng& rng);
Rng read_rng(std::istream& is);

/// Consumes a text block line by line. Each line starts with a tag token;
/// line(tag) checks the tag and hands back a stream positioned after it, so
/// malformed or truncated state files fail loudly with the offending line.
class Reader {
 public:
  explicit Reader(const std::string& text);

  bool eof() const { return next_ >= lines_.size(); }
  /// Next line's tag without consuming it ("" at EOF).
  std::string peek_tag() const;
  /// Consumes the next line; its first token must equal `tag`. Returns a
  /// stream positioned after the tag.
  std::istringstream line(const std::string& tag);

 private:
  std::vector<std::string> lines_;
  std::size_t next_ = 0;
};

}  // namespace convbound::tunestate
