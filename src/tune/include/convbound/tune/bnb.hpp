// Bound-guided branch-and-bound search (ROADMAP item 2): the paper's I/O
// lower bounds used to *prune*, not just to score.
//
// The tile lattice (x, y, z, S_b) is recursively partitioned into sub-boxes
// (DomainBox); each sub-box gets an admissible lower bound on the modelled
// runtime of every configuration inside it (subtree_lower_seconds). A box
// whose bound cannot beat the measured incumbent is discarded — its
// configurations are *provably* not optimal under the machine model and are
// never measured. Surviving singleton boxes (leaves) enumerate their free
// thread-split x layout axes in a deterministic order and measure through
// the shared Measurer. When the frontier empties the incumbent carries an
// optimality certificate: every unmeasured configuration was covered by an
// admissible pruned bound (cross-checked exhaustively in tune_bnb_test).
#pragma once

#include <cstdint>
#include <vector>

#include "convbound/tune/tuners.hpp"

namespace convbound {

struct BnbOptions {
  /// Measurement chunk size per step (surfaced configurations are
  /// re-checked against the incumbent at every pop, so a tighter incumbent
  /// still cuts off configs whose leaf bound it now covers).
  int batch = 16;
  /// Configurations measured before the search starts (template-manager
  /// knowledge, e.g. the analytic default): a strong initial incumbent is
  /// what makes early pruning bite.
  std::vector<ConvConfig> seeds;
};

/// Admissible lower bound, in seconds, on the modelled runtime of every
/// configuration inside `box`:
///
///   launch_overhead
///     + max( 4 * max(corner-min Eq 20/22 reads + writes, Thm 4.12/4.20 at
///                    the box's largest S_b) / global_bw,
///            flops floor / peak_flops )
///
/// Admissibility against the simulator (see docs/tuning.md for the full
/// argument): the kernels load at least the Eq 20/22 analytic elements
/// (divisor tiles => exact grids; the actual input halo only adds reads for
/// kernel >= stride, which every practical shape satisfies), every element
/// costs >= sizeof(float) counted bytes, the roofline's efficiency factors
/// only lower bandwidth/peak below the ideal values used here, and Eq 20/22
/// are monotone so their box minimum is the upper corner (the *_reads_min
/// range queries in src/bounds).
double subtree_lower_seconds(const SearchDomain& domain, const DomainBox& box);

class BranchAndBoundTuner : public Tuner {
 public:
  explicit BranchAndBoundTuner(const BnbOptions& opts = {}) : opts_(opts) {}
  std::string name() const override { return "branch-and-bound(bounds)"; }
  std::string id() const override { return "bnb"; }

  std::vector<ConvConfig> propose_batch(int max_batch) override;
  /// Frontier and pending-leaf queue both empty: every configuration was
  /// measured or pruned by an admissible bound, so the incumbent is a
  /// certified optimum of the domain under the machine model.
  bool exhausted() const override;

  std::vector<std::pair<std::string, double>> stats() const override;

  std::uint64_t nodes_expanded() const { return nodes_expanded_; }
  std::uint64_t subtrees_pruned() const { return subtrees_pruned_; }
  std::uint64_t leaves_opened() const { return leaves_opened_; }
  /// Configurations proven non-optimal without ever being measured.
  std::uint64_t configs_pruned() const { return configs_pruned_; }
  bool proven_optimal() const { return exhausted() && trials() > 0; }

 protected:
  void on_reset() override;
  void on_observe(const std::vector<ConvConfig>& cfgs,
                  const std::vector<Measurement>& ms) override;
  void save_extra(std::ostream& os) const override;
  void load_extra(tunestate::Reader& r) override;

 private:
  struct Node {
    DomainBox box;
    double bound = 0;  ///< subtree_lower_seconds, monotone down the tree
    /// Pop-order estimate: modelled runtime of the box's most promising
    /// configuration *with its real launch geometry* (occupancy, thread
    /// efficiency). The admissible bound is often a flat compute floor that
    /// cannot rank boxes; this steers exploration toward boxes that are
    /// actually fast so the incumbent tightens early. Ordering-only — every
    /// pruning decision still uses `bound`, so exactness is unaffected.
    double heur = 0;
    int depth = 0;
    std::uint64_t id = 0;  ///< creation order, the deterministic tie-break
  };

  /// A surfaced configuration awaiting measurement: its pop rank (roofline
  /// with real launch geometry), the admissible bound inherited from its
  /// leaf box (-inf for seeds, which are always measured), and a creation
  /// sequence number as the deterministic tie-break.
  struct Pending {
    ConvConfig cfg;
    double rank = 0;
    double bound = 0;
    std::uint64_t seq = 0;
  };

  void push_node(Node node);
  Node pop_node();
  void push_pending(Pending p);
  Pending pop_pending();
  /// Pops one frontier node: prune it, open its leaf into pending_, or
  /// partition it into bounded children.
  void expand_once(double incumbent);

  BnbOptions opts_;

  // Best-first frontier (min heur, then min bound, then max depth, then min
  // id) kept as a binary heap over nodes_, interleaved with a best-first
  // measurement pool (min rank, then min seq) over pending_: propose
  // expands boxes only while the best box's estimate could beat the best
  // already-surfaced config, so measurements mix the top-ranked configs of
  // *many* leaves instead of draining one leaf at a time. Both heap arrays
  // are what checkpoints serialize — reloading them verbatim preserves the
  // exact pop order.
  std::vector<Node> nodes_;
  std::uint64_t next_id_ = 0;
  std::vector<Pending> pending_;
  std::uint64_t next_seq_ = 0;

  std::uint64_t nodes_expanded_ = 0;
  std::uint64_t subtrees_pruned_ = 0;
  std::uint64_t leaves_opened_ = 0;
  std::uint64_t configs_pruned_ = 0;
};

}  // namespace convbound
