// Persistent store of tuned configurations, keyed by (machine, algorithm,
// problem shape) — the moral equivalent of TVM's tophub log so a model can
// be deployed without re-tuning every layer.
//
// File format: one record per line,
//   key|x y z nxt nyt nzt layout smem|gflops
// chosen over JSON to keep the library dependency-free and the files
// mergeable with line-based tools.
//
// Thread-safe: one cache may be shared by concurrent planners (the serving
// session pool tunes through a single process-wide cache). get() returns a
// copy; racing put()s keep the better-GFlops entry, so the outcome is
// order-independent.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "convbound/conv/conv_config.hpp"
#include "convbound/machine/machine_spec.hpp"
#include "convbound/util/mutex.hpp"
#include "convbound/util/thread_annotations.hpp"

namespace convbound {

class TuneCache {
 public:
  struct Entry {
    ConvConfig config;
    double gflops = 0;
  };

  TuneCache() = default;
  TuneCache(const TuneCache& other);
  TuneCache& operator=(const TuneCache& other);

  /// Canonical lookup key for a tuning task.
  static std::string make_key(const MachineSpec& spec, const ConvShape& shape,
                              bool winograd, std::int64_t e);

  /// Inserts or overwrites; keeps the better-GFlops entry on collision
  /// unless `force`.
  void put(const std::string& key, const Entry& entry, bool force = false);

  std::optional<Entry> get(const std::string& key) const;

  std::size_t size() const;

  /// Round-trippable text form.
  std::string serialize() const;
  static TuneCache deserialize(const std::string& text);

  /// File persistence. load() merges (better entries win).
  void save(const std::string& path) const;
  static TuneCache load(const std::string& path);
  void merge(const TuneCache& other);

 private:
  mutable Mutex mu_;
  std::map<std::string, Entry> entries_ CB_GUARDED_BY(mu_);
};

}  // namespace convbound
