// Batch-oriented, thread-pool-parallel measurement engine.
//
// The serial ConvMeasurer stripes each kernel's blocks across the pool, so
// tuning wall-clock scales linearly with the trial budget no matter how many
// cores the host has. BatchMeasurer flips the parallelism axis: tuners hand
// over a whole proposal batch, and candidates are evaluated concurrently by
// per-worker replicas — each one a serial-mode SimGpu plus a private scratch
// output — over shared immutable problem tensors. Cores run one candidate
// each instead of striping one candidate's blocks, so they are never
// oversubscribed, and results align with the proposal order by index, which
// keeps search traces bit-identical across worker counts.
#pragma once

#include <atomic>
#include <memory>

#include "convbound/tune/measure.hpp"
#include "convbound/util/thread_pool.hpp"

namespace convbound {

class BatchMeasurer : public Measurer {
 public:
  /// `workers` = number of measurement replicas; 0 means one per pool
  /// thread. `pool` defaults to the process-global pool.
  BatchMeasurer(const MachineSpec& spec, const SearchDomain& domain,
                std::uint64_t seed = 42, int workers = 0,
                ThreadPool* pool = nullptr);

  std::vector<Measurement> measure_batch(
      const std::vector<ConvConfig>& cfgs) override;

  const SearchDomain& domain() const override { return domain_; }
  std::uint64_t trials() const override {
    return trials_.load(std::memory_order_relaxed);
  }
  int workers() const { return static_cast<int>(workers_.size()); }

 private:
  // Mutable per-worker scratch; everything a candidate evaluation writes.
  struct Worker {
    SimGpu gpu;
    Tensor4<float> out;
    Worker(const MachineSpec& spec, const ConvShape& s)
        : gpu(spec, nullptr, ExecMode::kSerial),
          out(s.batch, s.cout, s.hout(), s.wout()) {}
  };

  SearchDomain domain_;
  std::shared_ptr<const MeasureInputs> inputs_;
  std::vector<std::unique_ptr<Worker>> workers_;
  ThreadPool* pool_;
  std::atomic<std::uint64_t> trials_{0};
};

}  // namespace convbound
