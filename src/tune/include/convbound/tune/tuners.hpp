// Search strategies over the configuration domain.
//
// RandomTuner / SimulatedAnnealingTuner / GeneticTuner reproduce the TVM
// searcher family the paper compares against (Figure 11); AteTuner is the
// paper's auto-tuning engine: a GBT cost model trained online plus n_s
// parallel random walks over the optimality-condition-pruned domain
// (Section 6.2-6.3). All tuners share one measurement oracle; "iterations"
// counts hardware (simulator) trials, the paper's cost unit.
//
// The interface is stepwise (see docs/tuning.md): the driver loop is
//
//   tuner.reset(domain);                    // or load_state() to resume
//   while (tuner.step(measurer, budget)) {  // propose -> measure -> observe
//     checkpoint = tuner.save_state();      // optional, any round boundary
//   }
//
// Proposals are generated serially from the tuner's RNG and recorded in
// proposal order, while the Measurer is free to evaluate each batch
// concurrently. The search trace is therefore a pure function of the seed —
// bit-identical whether batches run on one worker or many, and bit-identical
// across a save_state()/load_state() round trip (the checkpoint/resume
// equivalence property pinned by tune_checkpoint_test).
#pragma once

#include <memory>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "convbound/ml/gbt.hpp"
#include "convbound/tune/measure.hpp"
#include "convbound/tune/search_state.hpp"

namespace convbound {

struct TuneRecord {
  int trial = 0;                 ///< measurement index (1-based)
  ConvConfig config;
  double seconds = 0;            ///< this trial's runtime (inf when invalid)
  double best_seconds = 0;       ///< best runtime seen up to this trial
};

struct TuneResult {
  ConvConfig best;
  double best_seconds = std::numeric_limits<double>::infinity();
  std::vector<TuneRecord> history;

  double best_gflops(const Measurer& m) const {
    return m.gflops(best_seconds);
  }
  /// First trial index that reached within `slack` of the final best.
  int trials_to_converge(double slack = 0.01) const;
};

/// Stepwise, resumable search strategy. Subclasses implement proposal
/// generation (propose_batch) and learning (on_observe); the base class owns
/// the trace, the incumbent, and the serialization framing, so every tuner
/// checkpoints and resumes through the same two calls.
class Tuner {
 public:
  virtual ~Tuner() = default;

  /// Human-facing name (figure legends).
  virtual std::string name() const = 0;
  /// Registry id ("random" | "sa" | "ga" | "ate" | "bnb"); also the id
  /// stored in checkpoints so a resumed search rebuilds the right class.
  virtual std::string id() const = 0;

  /// Binds the tuner to a domain and clears all search state. The domain
  /// must outlive the tuner's stepping. Must be called (or load_state())
  /// before the first step()/propose_batch().
  void reset(const SearchDomain& domain);

  /// Next measurement batch, at most `max_batch` configurations (callers
  /// pass the remaining budget). An empty batch means the search space is
  /// exhausted — the tuner will never propose again this run.
  virtual std::vector<ConvConfig> propose_batch(int max_batch) = 0;

  /// Records a measured batch (results align with cfgs by index) into the
  /// trace and feeds it to the strategy. Must receive exactly the batch the
  /// preceding propose_batch() returned.
  void observe(const std::vector<ConvConfig>& cfgs,
               const std::vector<Measurement>& ms);

  /// True once the strategy can prove no unexplored configuration remains
  /// (branch-and-bound: frontier empty). Sampling strategies never exhaust.
  virtual bool exhausted() const { return false; }

  /// One propose -> measure -> observe round, capped at `budget` total
  /// trials. Returns true when a non-empty batch was measured. Checkpoints
  /// taken between step() calls (round boundaries) resume exactly.
  bool step(Measurer& measurer, int budget);

  /// Fresh search: reset() + step() loop. The historical one-call API.
  TuneResult run(Measurer& measurer, int budget);
  /// step() loop *without* reset — continues a loaded or partial search up
  /// to `budget` total trials (counting the restored history).
  TuneResult resume(Measurer& measurer, int budget);

  const TuneResult& result() const { return res_; }
  int trials() const { return static_cast<int>(res_.history.size()); }

  /// Strategy-specific counters (branch-and-bound pruning stats); empty for
  /// strategies with nothing to report.
  virtual std::vector<std::pair<std::string, double>> stats() const {
    return {};
  }

  /// Serializes the complete search state (trace + strategy internals) to
  /// the line-based text format described in docs/tuning.md. Only valid at
  /// a round boundary (between step() calls).
  std::string save_state() const;
  /// Restores a save_state() snapshot against `domain` (which must be built
  /// from the same shape/machine/options — the checkpoint layer verifies
  /// this, see registry.hpp). Replaces any current state.
  void load_state(const SearchDomain& domain, const std::string& text);

 protected:
  const SearchDomain& domain() const;

  /// Strategy hooks: clear internals / learn from a measured batch.
  virtual void on_reset() = 0;
  virtual void on_observe(const std::vector<ConvConfig>& cfgs,
                          const std::vector<Measurement>& ms) = 0;
  /// Strategy-specific state lines appended after the base trace section.
  virtual void save_extra(std::ostream& os) const = 0;
  virtual void load_extra(tunestate::Reader& r) = 0;

 private:
  const SearchDomain* domain_ = nullptr;
  TuneResult res_;
};

/// Uniform random sampling of the domain (TVM "random" baseline), proposed
/// in fixed-size batches. The trace is identical for any batch size because
/// samples are independent draws from one RNG stream.
class RandomTuner : public Tuner {
 public:
  explicit RandomTuner(std::uint64_t seed = 1, int batch = 16)
      : seed_(seed), rng_(seed), batch_(batch) {}
  std::string name() const override { return "random"; }
  std::string id() const override { return "random"; }
  std::vector<ConvConfig> propose_batch(int max_batch) override;

 protected:
  void on_reset() override { rng_ = Rng(seed_); }
  void on_observe(const std::vector<ConvConfig>&,
                  const std::vector<Measurement>&) override {}
  void save_extra(std::ostream& os) const override;
  void load_extra(tunestate::Reader& r) override;

 private:
  std::uint64_t seed_;
  Rng rng_;
  int batch_;
};

/// Metropolis walk over lattice neighbours with geometric cooling (TVM
/// "simulated annealing" baseline), restructured as `chains` independent
/// restart chains. Each round every chain proposes one neighbour; the batch
/// is measured together and each chain then applies its own accept rule.
class SimulatedAnnealingTuner : public Tuner {
 public:
  explicit SimulatedAnnealingTuner(std::uint64_t seed = 1, double t0 = 1.0,
                                   double cooling = 0.98, int chains = 4)
      : seed_(seed), rng_(seed), t0_(t0), cooling_(cooling), chains_(chains) {}
  std::string name() const override { return "simulated-annealing"; }
  std::string id() const override { return "sa"; }
  std::vector<ConvConfig> propose_batch(int max_batch) override;

 protected:
  void on_reset() override;
  void on_observe(const std::vector<ConvConfig>& cfgs,
                  const std::vector<Measurement>& ms) override;
  void save_extra(std::ostream& os) const override;
  void load_extra(tunestate::Reader& r) override;

 private:
  struct Chain {
    Rng rng{0};
    ConvConfig cur;
    double cur_seconds = std::numeric_limits<double>::infinity();
    bool cur_valid = false;
  };

  std::uint64_t seed_;
  Rng rng_;
  double t0_, cooling_;
  int chains_;

  std::vector<Chain> state_;
  double temp_ = 1.0;
  bool round0_done_ = false;
};

/// Tournament-selection genetic algorithm (TVM "GA" baseline), generational:
/// each generation breeds `population` children from the current pool, the
/// whole generation is measured as one batch, and (mu + lambda) elitism
/// forms the next pool.
class GeneticTuner : public Tuner {
 public:
  explicit GeneticTuner(std::uint64_t seed = 1, int population = 16,
                        double mutation_rate = 0.3)
      : seed_(seed), rng_(seed), population_(population),
        mutation_rate_(mutation_rate) {}
  std::string name() const override { return "genetic"; }
  std::string id() const override { return "ga"; }
  std::vector<ConvConfig> propose_batch(int max_batch) override;

 protected:
  void on_reset() override;
  void on_observe(const std::vector<ConvConfig>& cfgs,
                  const std::vector<Measurement>& ms) override;
  void save_extra(std::ostream& os) const override;
  void load_extra(tunestate::Reader& r) override;

 private:
  struct Individual {
    ConvConfig cfg;
    double fitness = 0;  // -runtime (higher is better); invalid = -inf
  };

  std::uint64_t seed_;
  Rng rng_;
  int population_;
  double mutation_rate_;

  std::vector<Individual> pop_;
  bool init_done_ = false;
};

/// The paper's auto-tuning engine: (1) train the GBT cost model on all
/// measurements so far, (2) run n_s parallel random walks that only accept
/// moves with lower *predicted* cost (epsilon-greedy), (3) measure the n_s
/// most promising unmeasured endpoints as one batch, (4) repeat.
class AteTuner : public Tuner {
 public:
  struct Params {
    int ns = 8;              ///< parallel walks (= measurement batch) per round
    int walk_steps = 24;     ///< lattice steps per walk
    int warmup = 16;         ///< random measurements before the model kicks in
    double epsilon = 0.1;    ///< exploration probability per step
    GbtParams gbt;
    /// Template-manager knowledge: configurations measured first (e.g. the
    /// analytic default derived from the optimality condition).
    std::vector<ConvConfig> seeds;
  };
  explicit AteTuner(std::uint64_t seed = 1) : seed_(seed), rng_(seed) {}
  AteTuner(std::uint64_t seed, const Params& params)
      : seed_(seed), rng_(seed), params_(params) {}
  std::string name() const override { return "ate(ours)"; }
  std::string id() const override { return "ate"; }
  std::vector<ConvConfig> propose_batch(int max_batch) override;

 protected:
  void on_reset() override;
  void on_observe(const std::vector<ConvConfig>& cfgs,
                  const std::vector<Measurement>& ms) override;
  void save_extra(std::ostream& os) const override;
  void load_extra(tunestate::Reader& r) override;

 private:
  std::uint64_t seed_;
  Rng rng_;
  Params params_;

  // Phases of the paper's loop: 0 = template seeds, 1 = random warm-up,
  // 2 = model-guided walks. The training set (X_/y_/seen_) is a pure
  // function of the trace, so load_state rebuilds it instead of storing it;
  // the GBT fit itself is deterministic and refits on the next round.
  int phase_ = 0;
  std::vector<std::vector<double>> X_;
  std::vector<double> y_;  // log runtime (log compresses the dynamic range)
  std::unordered_set<ConvConfig> seen_;
  Gbt model_;
};

}  // namespace convbound
