// Search strategies over the configuration domain.
//
// RandomTuner / SimulatedAnnealingTuner / GeneticTuner reproduce the TVM
// searcher family the paper compares against (Figure 11); AteTuner is the
// paper's auto-tuning engine: a GBT cost model trained online plus n_s
// parallel random walks over the optimality-condition-pruned domain
// (Section 6.2-6.3). All tuners share one measurement oracle; "iterations"
// counts hardware (simulator) trials, the paper's cost unit.
//
// Every tuner follows the propose -> measure-batch -> learn loop: proposals
// are generated serially from the tuner's RNG and recorded in proposal
// order, while the Measurer is free to evaluate the batch concurrently. The
// search trace is therefore a pure function of the seed — bit-identical
// whether batches run on one worker or many.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "convbound/ml/gbt.hpp"
#include "convbound/tune/measure.hpp"

namespace convbound {

struct TuneRecord {
  int trial = 0;                 ///< measurement index (1-based)
  ConvConfig config;
  double seconds = 0;            ///< this trial's runtime (inf when invalid)
  double best_seconds = 0;       ///< best runtime seen up to this trial
};

struct TuneResult {
  ConvConfig best;
  double best_seconds = std::numeric_limits<double>::infinity();
  std::vector<TuneRecord> history;

  double best_gflops(const Measurer& m) const {
    return m.gflops(best_seconds);
  }
  /// First trial index that reached within `slack` of the final best.
  int trials_to_converge(double slack = 0.01) const;
};

class Tuner {
 public:
  virtual ~Tuner() = default;
  virtual std::string name() const = 0;
  /// Runs `budget` measurements and returns the search trace.
  virtual TuneResult run(Measurer& measurer, int budget) = 0;
};

/// Uniform random sampling of the domain (TVM "random" baseline), proposed
/// in fixed-size batches. The trace is identical for any batch size because
/// samples are independent draws from one RNG stream.
class RandomTuner : public Tuner {
 public:
  explicit RandomTuner(std::uint64_t seed = 1, int batch = 16)
      : rng_(seed), batch_(batch) {}
  std::string name() const override { return "random"; }
  TuneResult run(Measurer& measurer, int budget) override;

 private:
  Rng rng_;
  int batch_;
};

/// Metropolis walk over lattice neighbours with geometric cooling (TVM
/// "simulated annealing" baseline), restructured as `chains` independent
/// restart chains. Each round every chain proposes one neighbour; the batch
/// is measured together and each chain then applies its own accept rule.
class SimulatedAnnealingTuner : public Tuner {
 public:
  explicit SimulatedAnnealingTuner(std::uint64_t seed = 1, double t0 = 1.0,
                                   double cooling = 0.98, int chains = 4)
      : rng_(seed), t0_(t0), cooling_(cooling), chains_(chains) {}
  std::string name() const override { return "simulated-annealing"; }
  TuneResult run(Measurer& measurer, int budget) override;

 private:
  Rng rng_;
  double t0_, cooling_;
  int chains_;
};

/// Tournament-selection genetic algorithm (TVM "GA" baseline), generational:
/// each generation breeds `population` children from the current pool, the
/// whole generation is measured as one batch, and (mu + lambda) elitism
/// forms the next pool.
class GeneticTuner : public Tuner {
 public:
  explicit GeneticTuner(std::uint64_t seed = 1, int population = 16,
                        double mutation_rate = 0.3)
      : rng_(seed), population_(population), mutation_rate_(mutation_rate) {}
  std::string name() const override { return "genetic"; }
  TuneResult run(Measurer& measurer, int budget) override;

 private:
  Rng rng_;
  int population_;
  double mutation_rate_;
};

/// The paper's auto-tuning engine: (1) train the GBT cost model on all
/// measurements so far, (2) run n_s parallel random walks that only accept
/// moves with lower *predicted* cost (epsilon-greedy), (3) measure the n_s
/// most promising unmeasured endpoints as one batch, (4) repeat.
class AteTuner : public Tuner {
 public:
  struct Params {
    int ns = 8;              ///< parallel walks (= measurement batch) per round
    int walk_steps = 24;     ///< lattice steps per walk
    int warmup = 16;         ///< random measurements before the model kicks in
    double epsilon = 0.1;    ///< exploration probability per step
    GbtParams gbt;
    /// Template-manager knowledge: configurations measured first (e.g. the
    /// analytic default derived from the optimality condition).
    std::vector<ConvConfig> seeds;
  };
  explicit AteTuner(std::uint64_t seed = 1) : rng_(seed) {}
  AteTuner(std::uint64_t seed, const Params& params)
      : rng_(seed), params_(params) {}
  std::string name() const override { return "ate(ours)"; }
  TuneResult run(Measurer& measurer, int budget) override;

 private:
  Rng rng_;
  Params params_;
};

}  // namespace convbound
