#include "convbound/tune/search_state.hpp"

#include <cstdio>
#include <cstdlib>
#include <ostream>

#include "convbound/util/check.hpp"

namespace convbound::tunestate {

std::string fmt_f64(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

double parse_f64(const std::string& tok) {
  const char* begin = tok.c_str();
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  CB_CHECK_MSG(end == begin + tok.size() && !tok.empty(),
               "malformed double token '" << tok << "'");
  return v;
}

void write_config(std::ostream& os, const ConvConfig& cfg) {
  os << cfg.key();
}

ConvConfig read_config(std::istream& is) {
  ConvConfig cfg;
  int layout = -1;
  is >> cfg.x >> cfg.y >> cfg.z >> cfg.nxt >> cfg.nyt >> cfg.nzt >> layout >>
      cfg.smem_budget;
  CB_CHECK_MSG(!is.fail(), "truncated config record");
  CB_CHECK_MSG(layout >= 0 &&
                   layout < static_cast<int>(kAllLayouts.size()),
               "config layout index " << layout << " out of range");
  cfg.layout = static_cast<Layout>(layout);
  return cfg;
}

void write_rng(std::ostream& os, const Rng& rng) {
  const auto s = rng.state();
  os << s[0] << ' ' << s[1] << ' ' << s[2] << ' ' << s[3];
}

Rng read_rng(std::istream& is) {
  std::array<std::uint64_t, 4> s{};
  is >> s[0] >> s[1] >> s[2] >> s[3];
  CB_CHECK_MSG(!is.fail(), "truncated rng record");
  Rng rng;
  rng.set_state(s);
  return rng;
}

Reader::Reader(const std::string& text) {
  std::string line;
  for (char c : text) {
    if (c == '\n') {
      lines_.push_back(std::move(line));
      line.clear();
    } else if (c != '\r') {
      line += c;
    }
  }
  if (!line.empty()) lines_.push_back(std::move(line));
}

std::string Reader::peek_tag() const {
  if (eof()) return "";
  std::istringstream is(lines_[next_]);
  std::string tag;
  is >> tag;
  return tag;
}

std::istringstream Reader::line(const std::string& tag) {
  CB_CHECK_MSG(!eof(), "truncated state: expected '" << tag << "' line");
  std::istringstream is(lines_[next_++]);
  std::string got;
  is >> got;
  CB_CHECK_MSG(got == tag, "state line tag mismatch: expected '"
                               << tag << "', got '" << got << "'");
  return is;
}

}  // namespace convbound::tunestate
