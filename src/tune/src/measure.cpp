#include "convbound/tune/measure.hpp"

#include "convbound/conv/reference.hpp"

namespace convbound {

ConvMeasurer::ConvMeasurer(SimGpu& gpu, const SearchDomain& domain,
                           std::uint64_t seed)
    : gpu_(gpu), domain_(domain),
      weights_(domain.shape().cout, domain.shape().cin_per_group(),
               domain.shape().kh,
               domain.shape().kw),
      out_(domain.shape().batch, domain.shape().cout, domain.shape().hout(),
           domain.shape().wout()) {
  const ConvShape& s = domain_.shape();
  Rng rng(seed);
  Tensor4<float> base(s.batch, s.cin, s.hin, s.win);
  base.fill_random(rng);
  weights_.fill_random(rng);
  inputs_.reserve(kAllLayouts.size());
  for (Layout l : kAllLayouts) inputs_.push_back(base.to_layout(l));
}

Measurement ConvMeasurer::measure(const ConvConfig& cfg) {
  Measurement m;
  const ConvShape& s = domain_.shape();
  const Tensor4<float>& input =
      inputs_[static_cast<std::size_t>(cfg.layout)];
  ++trials_;
  try {
    if (domain_.options().winograd) {
      m.stats = winograd_fused_sim(gpu_, input, weights_, s,
                                   domain_.options().e, cfg, out_);
    } else {
      m.stats = direct_tiled_sim(gpu_, input, weights_, s, cfg, out_);
    }
    m.seconds = m.stats.sim_time;
    m.valid = true;
  } catch (const Error&) {
    // Configuration does not physically fit (S_b overflow, thread limit...).
    m.valid = false;
  }
  return m;
}

double ConvMeasurer::gflops(double seconds) const {
  return static_cast<double>(domain_.shape().flops()) / seconds / 1e9;
}

}  // namespace convbound
