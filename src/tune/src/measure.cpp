#include "convbound/tune/measure.hpp"

#include "convbound/conv/reference.hpp"

namespace convbound {

std::shared_ptr<const MeasureInputs> MeasureInputs::create(
    const SearchDomain& domain, std::uint64_t seed) {
  const ConvShape& s = domain.shape();
  auto mi = std::make_shared<MeasureInputs>();
  mi->weights = Tensor4<float>(s.cout, s.cin_per_group(), s.kh, s.kw);
  Rng rng(seed);
  Tensor4<float> base(s.batch, s.cin, s.hin, s.win);
  base.fill_random(rng);
  mi->weights.fill_random(rng);
  mi->inputs.reserve(kAllLayouts.size());
  for (Layout l : kAllLayouts) mi->inputs.push_back(base.to_layout(l));
  return mi;
}

Measurement measure_config(SimGpu& gpu, const SearchDomain& domain,
                           const MeasureInputs& inputs, Tensor4<float>& out,
                           const ConvConfig& cfg) {
  Measurement m;
  const ConvShape& s = domain.shape();
  const Tensor4<float>& input =
      inputs.inputs[static_cast<std::size_t>(cfg.layout)];
  try {
    if (domain.options().winograd) {
      m.stats = winograd_fused_sim(gpu, input, inputs.weights, s,
                                   domain.options().e, cfg, out);
    } else {
      m.stats = direct_tiled_sim(gpu, input, inputs.weights, s, cfg, out);
    }
    m.seconds = m.stats.sim_time;
    m.valid = true;
  } catch (const Error&) {
    // Configuration does not physically fit (S_b overflow, thread limit...).
    m.valid = false;
  }
  return m;
}

Measurement Measurer::measure(const ConvConfig& cfg) {
  return measure_batch({cfg}).front();
}

ConvMeasurer::ConvMeasurer(SimGpu& gpu, const SearchDomain& domain,
                           std::uint64_t seed)
    : gpu_(gpu), domain_(domain),
      inputs_(MeasureInputs::create(domain, seed)),
      out_(domain.shape().batch, domain.shape().cout, domain.shape().hout(),
           domain.shape().wout()) {}

Measurement ConvMeasurer::measure(const ConvConfig& cfg) {
  ++trials_;
  return measure_config(gpu_, domain_, *inputs_, out_, cfg);
}

std::vector<Measurement> ConvMeasurer::measure_batch(
    const std::vector<ConvConfig>& cfgs) {
  std::vector<Measurement> out;
  out.reserve(cfgs.size());
  for (const ConvConfig& cfg : cfgs) out.push_back(measure(cfg));
  return out;
}

}  // namespace convbound
