#include "convbound/tune/tuners.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "convbound/tune/features.hpp"

namespace convbound {

namespace {

/// Appends one measurement to the trace, updating the incumbent.
void record(TuneResult& res, const ConvConfig& cfg, const Measurement& m) {
  TuneRecord rec;
  rec.trial = static_cast<int>(res.history.size()) + 1;
  rec.config = cfg;
  rec.seconds = m.seconds;
  if (m.valid && m.seconds < res.best_seconds) {
    res.best_seconds = m.seconds;
    res.best = cfg;
  }
  rec.best_seconds = res.best_seconds;
  res.history.push_back(rec);
}

void trim(std::vector<ConvConfig>& batch, int max_batch) {
  if (static_cast<int>(batch.size()) > max_batch)
    batch.resize(static_cast<std::size_t>(std::max(0, max_batch)));
}

}  // namespace

int TuneResult::trials_to_converge(double slack) const {
  const double target = best_seconds * (1.0 + slack);
  for (const auto& rec : history) {
    if (rec.best_seconds <= target) return rec.trial;
  }
  return history.empty() ? 0 : history.back().trial;
}

// ------------------------------------------------------------- Tuner base --

void Tuner::reset(const SearchDomain& domain) {
  domain_ = &domain;
  res_ = {};
  on_reset();
}

const SearchDomain& Tuner::domain() const {
  CB_CHECK_MSG(domain_ != nullptr,
               "Tuner::reset() or load_state() must run before stepping");
  return *domain_;
}

void Tuner::observe(const std::vector<ConvConfig>& cfgs,
                    const std::vector<Measurement>& ms) {
  CB_CHECK(cfgs.size() == ms.size());
  for (std::size_t i = 0; i < cfgs.size(); ++i) record(res_, cfgs[i], ms[i]);
  on_observe(cfgs, ms);
}

bool Tuner::step(Measurer& measurer, int budget) {
  const int remaining = budget - trials();
  if (remaining <= 0) return false;
  const std::vector<ConvConfig> batch = propose_batch(remaining);
  if (batch.empty()) return false;
  CB_CHECK_MSG(static_cast<int>(batch.size()) <= remaining,
               "propose_batch() exceeded the remaining budget");
  const std::vector<Measurement> ms = measurer.measure_batch(batch);
  observe(batch, ms);
  return true;
}

TuneResult Tuner::run(Measurer& measurer, int budget) {
  reset(measurer.domain());
  return resume(measurer, budget);
}

TuneResult Tuner::resume(Measurer& measurer, int budget) {
  while (step(measurer, budget)) {
  }
  return res_;
}

std::string Tuner::save_state() const {
  std::ostringstream os;
  os << "convbound-tuner-state v1\n";
  os << "id " << id() << '\n';
  os << "trials " << res_.history.size() << '\n';
  // Only (config, seconds) per trial: trial numbers, validity (seconds is
  // finite iff the measurement was valid) and the incumbent sequence are
  // derived state, recomputed on load by replaying record().
  for (const TuneRecord& rec : res_.history) {
    os << "t ";
    tunestate::write_config(os, rec.config);
    os << ' ' << tunestate::fmt_f64(rec.seconds) << '\n';
  }
  save_extra(os);
  os << "end\n";
  return os.str();
}

void Tuner::load_state(const SearchDomain& domain, const std::string& text) {
  domain_ = &domain;
  res_ = {};
  on_reset();

  tunestate::Reader r(text);
  {
    auto is = r.line("convbound-tuner-state");
    std::string version;
    is >> version;
    CB_CHECK_MSG(version == "v1", "unknown tuner-state version '" << version
                                                                  << "'");
  }
  {
    auto is = r.line("id");
    std::string got;
    is >> got;
    CB_CHECK_MSG(got == id(), "checkpoint is for tuner '"
                                  << got << "', this tuner is '" << id()
                                  << "'");
  }
  std::size_t n = 0;
  r.line("trials") >> n;
  for (std::size_t i = 0; i < n; ++i) {
    auto is = r.line("t");
    const ConvConfig cfg = tunestate::read_config(is);
    std::string tok;
    is >> tok;
    const double seconds = tunestate::parse_f64(tok);
    Measurement m;
    m.seconds = seconds;
    m.valid = std::isfinite(seconds);
    record(res_, cfg, m);
  }
  load_extra(r);
  r.line("end");
}

// ------------------------------------------------------------ RandomTuner --

std::vector<ConvConfig> RandomTuner::propose_batch(int max_batch) {
  const int n = std::min(std::max(1, batch_), max_batch);
  std::vector<ConvConfig> batch;
  batch.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) batch.push_back(domain().sample(rng_));
  return batch;
}

void RandomTuner::save_extra(std::ostream& os) const {
  os << "rng ";
  tunestate::write_rng(os, rng_);
  os << '\n';
}

void RandomTuner::load_extra(tunestate::Reader& r) {
  auto is = r.line("rng");
  rng_ = tunestate::read_rng(is);
}

// ------------------------------------------------ SimulatedAnnealingTuner --

void SimulatedAnnealingTuner::on_reset() {
  rng_ = Rng(seed_);
  state_.clear();
  temp_ = t0_;
  round0_done_ = false;
}

std::vector<ConvConfig> SimulatedAnnealingTuner::propose_batch(int max_batch) {
  std::vector<ConvConfig> props;
  if (state_.empty()) {
    // Round 0: independent per-chain RNG streams derived deterministically
    // from the tuner seed; chain count never depends on the measurer's
    // worker count. (max_batch == the full budget on the first round.)
    const int nchains = std::max(1, std::min(chains_, max_batch));
    state_.reserve(static_cast<std::size_t>(nchains));
    for (int c = 0; c < nchains; ++c) {
      Chain ch;
      ch.rng = rng_.split();
      state_.push_back(std::move(ch));
    }
    for (Chain& ch : state_) props.push_back(domain().sample(ch.rng));
  } else {
    for (Chain& ch : state_) {
      const auto moves = domain().neighbors(ch.cur);
      props.push_back(moves.empty() ? domain().sample(ch.rng)
                                    : moves[ch.rng.below(moves.size())]);
    }
  }
  trim(props, max_batch);
  return props;
}

void SimulatedAnnealingTuner::on_observe(const std::vector<ConvConfig>& cfgs,
                                         const std::vector<Measurement>& ms) {
  if (!round0_done_) {
    // Every chain adopts its starting point unconditionally (chains past a
    // budget-trimmed batch keep their invalid default state).
    for (std::size_t c = 0; c < ms.size(); ++c) {
      state_[c].cur = cfgs[c];
      state_[c].cur_seconds = ms[c].seconds;
      state_[c].cur_valid = ms[c].valid;
    }
    round0_done_ = true;
    return;
  }
  for (std::size_t c = 0; c < ms.size(); ++c) {
    Chain& ch = state_[c];
    const Measurement& nm = ms[c];
    bool accept = false;
    if (nm.valid && (!ch.cur_valid || nm.seconds <= ch.cur_seconds)) {
      accept = true;
    } else if (nm.valid && ch.cur_valid) {
      const double delta = (nm.seconds - ch.cur_seconds) / ch.cur_seconds;
      accept = ch.rng.uniform() < std::exp(-delta / std::max(1e-6, temp_));
    }
    if (accept) {
      ch.cur = cfgs[c];
      ch.cur_seconds = nm.seconds;
      ch.cur_valid = nm.valid;
    }
  }
  temp_ *= cooling_;
}

void SimulatedAnnealingTuner::save_extra(std::ostream& os) const {
  os << "rng ";
  tunestate::write_rng(os, rng_);
  os << '\n';
  os << "sa " << tunestate::fmt_f64(temp_) << ' ' << (round0_done_ ? 1 : 0)
     << ' ' << state_.size() << '\n';
  for (const Chain& ch : state_) {
    os << "chain ";
    tunestate::write_rng(os, ch.rng);
    os << ' ';
    tunestate::write_config(os, ch.cur);
    os << ' ' << tunestate::fmt_f64(ch.cur_seconds) << ' '
       << (ch.cur_valid ? 1 : 0) << '\n';
  }
}

void SimulatedAnnealingTuner::load_extra(tunestate::Reader& r) {
  {
    auto is = r.line("rng");
    rng_ = tunestate::read_rng(is);
  }
  std::size_t nchains = 0;
  {
    auto is = r.line("sa");
    std::string temp_tok;
    int done = 0;
    is >> temp_tok >> done >> nchains;
    CB_CHECK_MSG(!is.fail(), "truncated sa state line");
    temp_ = tunestate::parse_f64(temp_tok);
    round0_done_ = done != 0;
  }
  state_.clear();
  state_.reserve(nchains);
  for (std::size_t c = 0; c < nchains; ++c) {
    auto is = r.line("chain");
    Chain ch;
    ch.rng = tunestate::read_rng(is);
    ch.cur = tunestate::read_config(is);
    std::string tok;
    int valid = 0;
    is >> tok >> valid;
    CB_CHECK_MSG(!is.fail(), "truncated sa chain line");
    ch.cur_seconds = tunestate::parse_f64(tok);
    ch.cur_valid = valid != 0;
    state_.push_back(std::move(ch));
  }
}

// ----------------------------------------------------------- GeneticTuner --

void GeneticTuner::on_reset() {
  rng_ = Rng(seed_);
  pop_.clear();
  init_done_ = false;
}

std::vector<ConvConfig> GeneticTuner::propose_batch(int max_batch) {
  std::vector<ConvConfig> props;
  if (pop_.empty()) {
    // An empty pool after initialisation means nothing to breed from
    // (population 0); the historical loop stopped there too.
    if (init_done_) return {};
    // Initial generation (max_batch == the full budget on the first round).
    const int init = std::min(population_, max_batch);
    props.reserve(static_cast<std::size_t>(init));
    for (int i = 0; i < init; ++i) props.push_back(domain().sample(rng_));
    return props;
  }

  auto tournament = [&]() -> const Individual& {
    const Individual& a = pop_[rng_.below(pop_.size())];
    const Individual& b = pop_[rng_.below(pop_.size())];
    return a.fitness >= b.fitness ? a : b;
  };
  auto crossover = [&](const ConvConfig& a, const ConvConfig& b) {
    ConvConfig c = a;
    if (rng_.uniform() < 0.5) { c.x = b.x; c.nxt = b.nxt; }
    if (rng_.uniform() < 0.5) { c.y = b.y; c.nyt = b.nyt; }
    if (rng_.uniform() < 0.5) { c.z = b.z; c.nzt = b.nzt; }
    if (rng_.uniform() < 0.5) c.layout = b.layout;
    if (rng_.uniform() < 0.5) c.smem_budget = b.smem_budget;
    return c;
  };

  const int n = std::min(population_, max_batch);
  props.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    ConvConfig child = crossover(tournament().cfg, tournament().cfg);
    if (rng_.uniform() < mutation_rate_) {
      const auto moves = domain().neighbors(child);
      if (!moves.empty()) child = moves[rng_.below(moves.size())];
    }
    if (!domain().contains(child)) child = domain().sample(rng_);
    props.push_back(child);
  }
  return props;
}

void GeneticTuner::on_observe(const std::vector<ConvConfig>& cfgs,
                              const std::vector<Measurement>& ms) {
  for (std::size_t i = 0; i < ms.size(); ++i) {
    pop_.push_back(
        {cfgs[i], ms[i].valid ? -ms[i].seconds
                              : -std::numeric_limits<double>::infinity()});
  }
  if (!init_done_) {
    // The initial pool enters unsorted (seniority order), as the paper's
    // generational loop only ranks once breeding starts.
    init_done_ = true;
    return;
  }
  // (mu + lambda) elitism; stable so equal-fitness ties keep seniority.
  std::stable_sort(pop_.begin(), pop_.end(),
                   [](const Individual& a, const Individual& b) {
                     return a.fitness > b.fitness;
                   });
  if (static_cast<int>(pop_.size()) > population_)
    pop_.resize(static_cast<std::size_t>(population_));
}

void GeneticTuner::save_extra(std::ostream& os) const {
  os << "rng ";
  tunestate::write_rng(os, rng_);
  os << '\n';
  os << "ga " << (init_done_ ? 1 : 0) << ' ' << pop_.size() << '\n';
  for (const Individual& ind : pop_) {
    os << "ind ";
    tunestate::write_config(os, ind.cfg);
    os << ' ' << tunestate::fmt_f64(ind.fitness) << '\n';
  }
}

void GeneticTuner::load_extra(tunestate::Reader& r) {
  {
    auto is = r.line("rng");
    rng_ = tunestate::read_rng(is);
  }
  std::size_t npop = 0;
  {
    auto is = r.line("ga");
    int done = 0;
    is >> done >> npop;
    CB_CHECK_MSG(!is.fail(), "truncated ga state line");
    init_done_ = done != 0;
  }
  pop_.clear();
  pop_.reserve(npop);
  for (std::size_t i = 0; i < npop; ++i) {
    auto is = r.line("ind");
    Individual ind;
    ind.cfg = tunestate::read_config(is);
    std::string tok;
    is >> tok;
    CB_CHECK_MSG(!is.fail(), "truncated ga individual line");
    ind.fitness = tunestate::parse_f64(tok);
    pop_.push_back(std::move(ind));
  }
}

// --------------------------------------------------------------- AteTuner --

void AteTuner::on_reset() {
  rng_ = Rng(seed_);
  phase_ = 0;
  X_.clear();
  y_.clear();
  seen_.clear();
  model_ = Gbt();
}

std::vector<ConvConfig> AteTuner::propose_batch(int max_batch) {
  // Template-provided seeds first (snapped into the domain's S_b lattice),
  // then random warm-up (the paper's "n_s random configurations are chosen
  // as initial guesses"). Empty phases fall straight through so an empty
  // proposal always means "exhausted", never "between phases".
  if (phase_ == 0) {
    phase_ = 1;
    std::vector<ConvConfig> batch;
    std::unordered_set<ConvConfig> pending;
    for (ConvConfig seed : params_.seeds) {
      if (seed.smem_budget == 0 && !domain().smem_choices().empty()) {
        seed.smem_budget = domain().smem_choices().front();
      }
      if (pending.insert(seed).second) batch.push_back(seed);
    }
    trim(batch, max_batch);
    if (!batch.empty()) return batch;
  }
  if (phase_ == 1) {
    // Equivalent to the historical warm = min(warmup, budget) top-up:
    // max_batch is the remaining budget, so the cap applies either way.
    const int n = std::min(params_.warmup - trials(), max_batch);
    if (n > 0) {
      std::vector<ConvConfig> batch;
      batch.reserve(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) batch.push_back(domain().sample(rng_));
      return batch;
    }
    phase_ = 2;
  }

  if (X_.size() >= 4) model_.fit(X_, y_, params_.gbt);
  auto predict = [&](const ConvConfig& cfg) {
    if (!model_.trained()) return 0.0;
    return model_.predict(config_features(domain(), cfg));
  };

  // n_s parallel random walks, each converging toward lower predicted cost
  // (epsilon-greedy downhill walk on the lattice). Proposals come from the
  // single tuner RNG, in a fixed order.
  const TuneResult& res = result();
  std::vector<std::pair<double, ConvConfig>> candidates;
  for (int w = 0; w < params_.ns; ++w) {
    ConvConfig cur = res.best_seconds < 1e30 && rng_.uniform() < 0.5
                         ? res.best
                         : domain().sample(rng_);
    double cur_cost = predict(cur);
    for (int step = 0; step < params_.walk_steps; ++step) {
      const auto moves = domain().neighbors(cur);
      if (moves.empty()) break;
      const ConvConfig& next = moves[rng_.below(moves.size())];
      const double next_cost = predict(next);
      if (next_cost <= cur_cost || rng_.uniform() < params_.epsilon) {
        cur = next;
        cur_cost = next_cost;
      }
    }
    candidates.emplace_back(cur_cost, cur);
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });

  // Measure the most promising unseen endpoints as one batch; if every walk
  // landed on a known config, inject fresh randomness instead.
  std::vector<ConvConfig> batch;
  std::unordered_set<ConvConfig> pending;
  for (const auto& [cost, cfg] : candidates) {
    if (seen_.count(cfg) || !pending.insert(cfg).second) continue;
    batch.push_back(cfg);
  }
  trim(batch, max_batch);
  if (batch.empty()) batch.push_back(domain().sample(rng_));
  return batch;
}

void AteTuner::on_observe(const std::vector<ConvConfig>& cfgs,
                          const std::vector<Measurement>& ms) {
  for (std::size_t i = 0; i < ms.size(); ++i) {
    seen_.insert(cfgs[i]);
    if (ms[i].valid) {
      X_.push_back(config_features(domain(), cfgs[i]));
      y_.push_back(std::log(ms[i].seconds));
    }
  }
}

void AteTuner::save_extra(std::ostream& os) const {
  os << "rng ";
  tunestate::write_rng(os, rng_);
  os << '\n';
  // X_/y_/seen_ are a pure function of the trace (rebuilt by load_state via
  // on_observe replay below); only the phase and RNG stream are primary.
  os << "ate " << phase_ << '\n';
}

void AteTuner::load_extra(tunestate::Reader& r) {
  {
    auto is = r.line("rng");
    rng_ = tunestate::read_rng(is);
  }
  {
    auto is = r.line("ate");
    is >> phase_;
    CB_CHECK_MSG(!is.fail(), "truncated ate state line");
  }
  // Rebuild the training set from the restored trace, in trace order —
  // identical to the online accumulation (valid <=> finite seconds).
  for (const TuneRecord& rec : result().history) {
    seen_.insert(rec.config);
    if (std::isfinite(rec.seconds)) {
      X_.push_back(config_features(domain(), rec.config));
      y_.push_back(std::log(rec.seconds));
    }
  }
}

}  // namespace convbound
