#include "convbound/tune/tuners.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "convbound/tune/features.hpp"

namespace convbound {

namespace {

/// Appends one measurement to the trace, updating the incumbent.
void record(TuneResult& res, const ConvConfig& cfg, const Measurement& m) {
  TuneRecord rec;
  rec.trial = static_cast<int>(res.history.size()) + 1;
  rec.config = cfg;
  rec.seconds = m.seconds;
  if (m.valid && m.seconds < res.best_seconds) {
    res.best_seconds = m.seconds;
    res.best = cfg;
  }
  rec.best_seconds = res.best_seconds;
  res.history.push_back(rec);
}

/// Trims `batch` to the remaining budget, measures it (concurrently, if the
/// measurer supports it) and records the results in proposal order. Returns
/// the measurements of the measured prefix.
std::vector<Measurement> measure_and_record(TuneResult& res, Measurer& measurer,
                                            std::vector<ConvConfig> batch,
                                            int budget) {
  const int remaining = budget - static_cast<int>(res.history.size());
  if (remaining <= 0) return {};
  if (static_cast<int>(batch.size()) > remaining)
    batch.resize(static_cast<std::size_t>(remaining));
  std::vector<Measurement> ms = measurer.measure_batch(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) record(res, batch[i], ms[i]);
  return ms;
}

}  // namespace

int TuneResult::trials_to_converge(double slack) const {
  const double target = best_seconds * (1.0 + slack);
  for (const auto& rec : history) {
    if (rec.best_seconds <= target) return rec.trial;
  }
  return history.empty() ? 0 : history.back().trial;
}

TuneResult RandomTuner::run(Measurer& measurer, int budget) {
  TuneResult res;
  const SearchDomain& domain = measurer.domain();
  while (static_cast<int>(res.history.size()) < budget) {
    const int n = std::min(std::max(1, batch_),
                           budget - static_cast<int>(res.history.size()));
    std::vector<ConvConfig> batch;
    batch.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) batch.push_back(domain.sample(rng_));
    measure_and_record(res, measurer, std::move(batch), budget);
  }
  return res;
}

TuneResult SimulatedAnnealingTuner::run(Measurer& measurer, int budget) {
  TuneResult res;
  const SearchDomain& domain = measurer.domain();

  struct Chain {
    Rng rng;
    ConvConfig cur;
    Measurement cm;
  };
  // Independent per-chain RNG streams derived deterministically from the
  // tuner seed; chain count never depends on the measurer's worker count.
  const int nchains = std::max(1, std::min(chains_, budget));
  std::vector<Chain> chains;
  chains.reserve(static_cast<std::size_t>(nchains));
  for (int c = 0; c < nchains; ++c) chains.push_back({rng_.split(), {}, {}});

  // Round 0: every chain starts from its own random configuration.
  std::vector<ConvConfig> props;
  props.reserve(chains.size());
  for (Chain& ch : chains) props.push_back(domain.sample(ch.rng));
  {
    const auto ms = measure_and_record(res, measurer, props, budget);
    for (std::size_t c = 0; c < ms.size(); ++c) {
      chains[c].cur = props[c];
      chains[c].cm = ms[c];
    }
  }

  double temp = t0_;
  while (static_cast<int>(res.history.size()) < budget) {
    props.clear();
    for (Chain& ch : chains) {
      const auto moves = domain.neighbors(ch.cur);
      props.push_back(moves.empty() ? domain.sample(ch.rng)
                                    : moves[ch.rng.below(moves.size())]);
    }
    const auto ms = measure_and_record(res, measurer, props, budget);
    for (std::size_t c = 0; c < ms.size(); ++c) {
      Chain& ch = chains[c];
      const Measurement& nm = ms[c];
      bool accept = false;
      if (nm.valid && (!ch.cm.valid || nm.seconds <= ch.cm.seconds)) {
        accept = true;
      } else if (nm.valid && ch.cm.valid) {
        const double delta = (nm.seconds - ch.cm.seconds) / ch.cm.seconds;
        accept = ch.rng.uniform() < std::exp(-delta / std::max(1e-6, temp));
      }
      if (accept) {
        ch.cur = props[c];
        ch.cm = nm;
      }
    }
    temp *= cooling_;
  }
  return res;
}

TuneResult GeneticTuner::run(Measurer& measurer, int budget) {
  TuneResult res;
  const SearchDomain& domain = measurer.domain();
  struct Individual {
    ConvConfig cfg;
    double fitness;  // -runtime (higher is better); invalid = -inf
  };
  std::vector<Individual> pop;

  auto fitness_of = [](const Measurement& m) {
    return m.valid ? -m.seconds : -std::numeric_limits<double>::infinity();
  };
  auto tournament = [&]() -> const Individual& {
    const Individual& a = pop[rng_.below(pop.size())];
    const Individual& b = pop[rng_.below(pop.size())];
    return a.fitness >= b.fitness ? a : b;
  };
  auto crossover = [&](const ConvConfig& a, const ConvConfig& b) {
    ConvConfig c = a;
    if (rng_.uniform() < 0.5) { c.x = b.x; c.nxt = b.nxt; }
    if (rng_.uniform() < 0.5) { c.y = b.y; c.nyt = b.nyt; }
    if (rng_.uniform() < 0.5) { c.z = b.z; c.nzt = b.nzt; }
    if (rng_.uniform() < 0.5) c.layout = b.layout;
    if (rng_.uniform() < 0.5) c.smem_budget = b.smem_budget;
    return c;
  };

  // Initial generation.
  const int init = std::min(population_, budget);
  std::vector<ConvConfig> props;
  props.reserve(static_cast<std::size_t>(init));
  for (int i = 0; i < init; ++i) props.push_back(domain.sample(rng_));
  {
    const auto ms = measure_and_record(res, measurer, props, budget);
    for (std::size_t i = 0; i < ms.size(); ++i)
      pop.push_back({props[i], fitness_of(ms[i])});
  }

  while (static_cast<int>(res.history.size()) < budget && !pop.empty()) {
    // Breed one generation of children from the current pool.
    const int n = std::min(population_,
                           budget - static_cast<int>(res.history.size()));
    props.clear();
    for (int i = 0; i < n; ++i) {
      ConvConfig child = crossover(tournament().cfg, tournament().cfg);
      if (rng_.uniform() < mutation_rate_) {
        const auto moves = domain.neighbors(child);
        if (!moves.empty()) child = moves[rng_.below(moves.size())];
      }
      if (!domain.contains(child)) child = domain.sample(rng_);
      props.push_back(child);
    }
    const auto ms = measure_and_record(res, measurer, props, budget);
    for (std::size_t i = 0; i < ms.size(); ++i)
      pop.push_back({props[i], fitness_of(ms[i])});
    // (mu + lambda) elitism; stable so equal-fitness ties keep seniority.
    std::stable_sort(pop.begin(), pop.end(),
                     [](const Individual& a, const Individual& b) {
                       return a.fitness > b.fitness;
                     });
    if (static_cast<int>(pop.size()) > population_)
      pop.resize(static_cast<std::size_t>(population_));
  }
  return res;
}

TuneResult AteTuner::run(Measurer& measurer, int budget) {
  TuneResult res;
  const SearchDomain& domain = measurer.domain();

  std::vector<std::vector<double>> X;
  std::vector<double> y;  // log runtime (log compresses the dynamic range)
  std::unordered_set<ConvConfig> seen;
  Gbt model;

  // Measures a proposal batch and feeds every valid result to the model's
  // training set; returns how many candidates were actually measured.
  auto measure_and_learn = [&](std::vector<ConvConfig> batch) {
    const auto ms = measure_and_record(res, measurer, batch, budget);
    for (std::size_t i = 0; i < ms.size(); ++i) {
      seen.insert(batch[i]);
      if (ms[i].valid) {
        X.push_back(config_features(domain, batch[i]));
        y.push_back(std::log(ms[i].seconds));
      }
    }
    return ms.size();
  };

  // Template-provided seeds first (snapped into the domain's S_b lattice),
  // then random warm-up (the paper's "n_s random configurations are chosen
  // as initial guesses").
  {
    std::vector<ConvConfig> batch;
    std::unordered_set<ConvConfig> pending;
    for (ConvConfig seed : params_.seeds) {
      if (seed.smem_budget == 0 && !domain.smem_choices().empty()) {
        seed.smem_budget = domain.smem_choices().front();
      }
      if (pending.insert(seed).second) batch.push_back(seed);
    }
    measure_and_learn(std::move(batch));
  }
  const int warm = std::min(params_.warmup, budget);
  if (static_cast<int>(res.history.size()) < warm) {
    std::vector<ConvConfig> batch;
    const int n = warm - static_cast<int>(res.history.size());
    for (int i = 0; i < n; ++i) batch.push_back(domain.sample(rng_));
    measure_and_learn(std::move(batch));
  }

  while (static_cast<int>(res.history.size()) < budget) {
    if (X.size() >= 4) model.fit(X, y, params_.gbt);

    auto predict = [&](const ConvConfig& cfg) {
      if (!model.trained()) return 0.0;
      return model.predict(config_features(domain, cfg));
    };

    // n_s parallel random walks, each converging toward lower predicted
    // cost (epsilon-greedy downhill walk on the lattice). Proposals come
    // from the single tuner RNG, in a fixed order.
    std::vector<std::pair<double, ConvConfig>> candidates;
    for (int w = 0; w < params_.ns; ++w) {
      ConvConfig cur = res.best_seconds < 1e30 && rng_.uniform() < 0.5
                           ? res.best
                           : domain.sample(rng_);
      double cur_cost = predict(cur);
      for (int step = 0; step < params_.walk_steps; ++step) {
        const auto moves = domain.neighbors(cur);
        if (moves.empty()) break;
        const ConvConfig& next = moves[rng_.below(moves.size())];
        const double next_cost = predict(next);
        if (next_cost <= cur_cost || rng_.uniform() < params_.epsilon) {
          cur = next;
          cur_cost = next_cost;
        }
      }
      candidates.emplace_back(cur_cost, cur);
    }
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });

    // Measure the most promising unseen endpoints as one batch.
    std::vector<ConvConfig> batch;
    std::unordered_set<ConvConfig> pending;
    for (const auto& [cost, cfg] : candidates) {
      if (seen.count(cfg) || !pending.insert(cfg).second) continue;
      batch.push_back(cfg);
    }
    const std::size_t measured_this_round =
        measure_and_learn(std::move(batch));
    // All walks landed on known configs: inject fresh randomness.
    if (measured_this_round == 0 &&
        static_cast<int>(res.history.size()) < budget) {
      measure_and_learn({domain.sample(rng_)});
    }
  }
  return res;
}

}  // namespace convbound
