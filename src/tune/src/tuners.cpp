#include "convbound/tune/tuners.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "convbound/tune/features.hpp"

namespace convbound {

namespace {

/// Appends one measurement to the trace, updating the incumbent.
void record(TuneResult& res, const ConvConfig& cfg, const Measurement& m) {
  TuneRecord rec;
  rec.trial = static_cast<int>(res.history.size()) + 1;
  rec.config = cfg;
  rec.seconds = m.seconds;
  if (m.valid && m.seconds < res.best_seconds) {
    res.best_seconds = m.seconds;
    res.best = cfg;
  }
  rec.best_seconds = res.best_seconds;
  res.history.push_back(rec);
}

/// Key for "have we measured this config already".
std::string config_key(const ConvConfig& c) {
  return std::to_string(c.x) + "," + std::to_string(c.y) + "," +
         std::to_string(c.z) + "," + std::to_string(c.nxt) + "," +
         std::to_string(c.nyt) + "," + std::to_string(c.nzt) + "," +
         std::to_string(static_cast<int>(c.layout)) + "," +
         std::to_string(c.smem_budget);
}

}  // namespace

int TuneResult::trials_to_converge(double slack) const {
  const double target = best_seconds * (1.0 + slack);
  for (const auto& rec : history) {
    if (rec.best_seconds <= target) return rec.trial;
  }
  return history.empty() ? 0 : history.back().trial;
}

TuneResult RandomTuner::run(ConvMeasurer& measurer, int budget) {
  TuneResult res;
  for (int i = 0; i < budget; ++i) {
    const ConvConfig cfg = measurer.domain().sample(rng_);
    record(res, cfg, measurer.measure(cfg));
  }
  return res;
}

TuneResult SimulatedAnnealingTuner::run(ConvMeasurer& measurer, int budget) {
  TuneResult res;
  const SearchDomain& domain = measurer.domain();
  ConvConfig cur = domain.sample(rng_);
  Measurement cm = measurer.measure(cur);
  record(res, cur, cm);
  double temp = t0_;
  // Energy scale: relative runtime differences.
  for (int i = 1; i < budget; ++i) {
    auto moves = domain.neighbors(cur);
    ConvConfig cand =
        moves.empty() ? domain.sample(rng_) : moves[rng_.below(moves.size())];
    const Measurement nm = measurer.measure(cand);
    record(res, cand, nm);
    bool accept = false;
    if (nm.valid && (!cm.valid || nm.seconds <= cm.seconds)) {
      accept = true;
    } else if (nm.valid && cm.valid) {
      const double delta = (nm.seconds - cm.seconds) / cm.seconds;
      accept = rng_.uniform() < std::exp(-delta / std::max(1e-6, temp));
    }
    if (accept) {
      cur = cand;
      cm = nm;
    }
    temp *= cooling_;
  }
  return res;
}

TuneResult GeneticTuner::run(ConvMeasurer& measurer, int budget) {
  TuneResult res;
  const SearchDomain& domain = measurer.domain();
  struct Individual {
    ConvConfig cfg;
    double fitness;  // -runtime (higher is better); invalid = -inf
  };
  std::vector<Individual> pop;

  auto eval = [&](const ConvConfig& cfg) {
    const Measurement m = measurer.measure(cfg);
    record(res, cfg, m);
    return Individual{cfg, m.valid ? -m.seconds
                                   : -std::numeric_limits<double>::infinity()};
  };
  auto tournament = [&]() -> const Individual& {
    const Individual& a = pop[rng_.below(pop.size())];
    const Individual& b = pop[rng_.below(pop.size())];
    return a.fitness >= b.fitness ? a : b;
  };
  auto crossover = [&](const ConvConfig& a, const ConvConfig& b) {
    ConvConfig c = a;
    if (rng_.uniform() < 0.5) { c.x = b.x; c.nxt = b.nxt; }
    if (rng_.uniform() < 0.5) { c.y = b.y; c.nyt = b.nyt; }
    if (rng_.uniform() < 0.5) { c.z = b.z; c.nzt = b.nzt; }
    if (rng_.uniform() < 0.5) c.layout = b.layout;
    if (rng_.uniform() < 0.5) c.smem_budget = b.smem_budget;
    return c;
  };

  const int init = std::min(population_, budget);
  for (int i = 0; i < init; ++i) pop.push_back(eval(domain.sample(rng_)));

  while (static_cast<int>(res.history.size()) < budget) {
    ConvConfig child = crossover(tournament().cfg, tournament().cfg);
    if (rng_.uniform() < mutation_rate_) {
      const auto moves = domain.neighbors(child);
      if (!moves.empty()) child = moves[rng_.below(moves.size())];
    }
    if (!domain.contains(child)) child = domain.sample(rng_);
    Individual kid = eval(child);
    // Steady-state replacement of the worst member.
    auto worst = std::min_element(
        pop.begin(), pop.end(),
        [](const Individual& a, const Individual& b) {
          return a.fitness < b.fitness;
        });
    if (kid.fitness > worst->fitness) *worst = kid;
  }
  return res;
}

TuneResult AteTuner::run(ConvMeasurer& measurer, int budget) {
  TuneResult res;
  const SearchDomain& domain = measurer.domain();

  std::vector<std::vector<double>> X;
  std::vector<double> y;  // log runtime (log compresses the dynamic range)
  std::set<std::string> seen;
  Gbt model;

  auto measure_and_learn = [&](const ConvConfig& cfg) {
    const Measurement m = measurer.measure(cfg);
    record(res, cfg, m);
    seen.insert(config_key(cfg));
    if (m.valid) {
      X.push_back(config_features(domain, cfg));
      y.push_back(std::log(m.seconds));
    }
    return m;
  };

  // Template-provided seeds first (snapped into the domain's S_b lattice),
  // then random warm-up (the paper's "n_s random configurations are chosen
  // as initial guesses").
  for (ConvConfig seed : params_.seeds) {
    if (static_cast<int>(res.history.size()) >= budget) break;
    if (seed.smem_budget == 0 && !domain.smem_choices().empty()) {
      seed.smem_budget = domain.smem_choices().front();
    }
    if (!seen.count(config_key(seed))) measure_and_learn(seed);
  }
  const int warm = std::min(params_.warmup, budget);
  while (static_cast<int>(res.history.size()) < warm)
    measure_and_learn(domain.sample(rng_));

  while (static_cast<int>(res.history.size()) < budget) {
    if (X.size() >= 4) model.fit(X, y, params_.gbt);

    auto predict = [&](const ConvConfig& cfg) {
      if (!model.trained()) return 0.0;
      return model.predict(config_features(domain, cfg));
    };

    // n_s parallel random walks, each converging toward lower predicted
    // cost (epsilon-greedy downhill walk on the lattice).
    std::vector<std::pair<double, ConvConfig>> candidates;
    for (int w = 0; w < params_.ns; ++w) {
      ConvConfig cur = res.best_seconds < 1e30 && rng_.uniform() < 0.5
                           ? res.best
                           : domain.sample(rng_);
      double cur_cost = predict(cur);
      for (int step = 0; step < params_.walk_steps; ++step) {
        const auto moves = domain.neighbors(cur);
        if (moves.empty()) break;
        const ConvConfig& next = moves[rng_.below(moves.size())];
        const double next_cost = predict(next);
        if (next_cost <= cur_cost || rng_.uniform() < params_.epsilon) {
          cur = next;
          cur_cost = next_cost;
        }
      }
      candidates.emplace_back(cur_cost, cur);
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });

    // Measure the most promising unseen endpoints.
    int measured_this_round = 0;
    for (const auto& [cost, cfg] : candidates) {
      if (static_cast<int>(res.history.size()) >= budget) break;
      if (seen.count(config_key(cfg))) continue;
      measure_and_learn(cfg);
      ++measured_this_round;
    }
    // All walks landed on known configs: inject fresh randomness.
    if (measured_this_round == 0 &&
        static_cast<int>(res.history.size()) < budget) {
      measure_and_learn(domain.sample(rng_));
    }
  }
  return res;
}

}  // namespace convbound
