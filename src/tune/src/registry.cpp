#include "convbound/tune/registry.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "convbound/util/check.hpp"

namespace convbound {

namespace {

std::string canonical_id(const std::string& name) {
  if (name == "random") return "random";
  if (name == "sa" || name == "simulated-annealing") return "sa";
  if (name == "ga" || name == "genetic") return "ga";
  if (name == "ate" || name == "ate(ours)") return "ate";
  if (name == "bnb" || name == "branch-and-bound") return "bnb";
  CB_CHECK_MSG(false, "unknown tuner '" << name
                                        << "' (bnb|ate|sa|ga|random)");
  return {};
}

}  // namespace

std::vector<std::string> tuner_names() {
  return {"bnb", "ate", "sa", "ga", "random"};
}

std::unique_ptr<Tuner> make_tuner(const std::string& name,
                                  const TunerOptions& opts) {
  const std::string id = canonical_id(name);
  if (id == "random")
    return std::make_unique<RandomTuner>(opts.seed, opts.random_batch);
  if (id == "sa")
    return std::make_unique<SimulatedAnnealingTuner>(
        opts.seed, opts.sa_t0, opts.sa_cooling, opts.sa_chains);
  if (id == "ga")
    return std::make_unique<GeneticTuner>(opts.seed, opts.ga_population,
                                          opts.ga_mutation_rate);
  if (id == "ate") {
    AteTuner::Params params = opts.ate;
    params.seeds.insert(params.seeds.end(), opts.seeds.begin(),
                        opts.seeds.end());
    return std::make_unique<AteTuner>(opts.seed, params);
  }
  BnbOptions bnb = opts.bnb;
  bnb.seeds.insert(bnb.seeds.end(), opts.seeds.begin(), opts.seeds.end());
  return std::make_unique<BranchAndBoundTuner>(bnb);
}

std::string serialize_checkpoint(const Tuner& tuner,
                                 const std::string& domain_key,
                                 std::uint64_t domain_size) {
  CB_CHECK_MSG(domain_key.find('\n') == std::string::npos,
               "checkpoint key must not contain newlines");
  std::ostringstream os;
  os << "convbound-checkpoint v1\n";
  os << "key " << domain_key << '\n';
  os << "domain-size " << domain_size << '\n';
  os << tuner.save_state();
  return os.str();
}

std::unique_ptr<Tuner> load_checkpoint(const std::string& text,
                                       const SearchDomain& domain,
                                       const std::string& domain_key,
                                       const TunerOptions& opts) {
  std::istringstream in(text);
  std::string line;
  CB_CHECK_MSG(std::getline(in, line) && line == "convbound-checkpoint v1",
               "not a convbound checkpoint (bad header '" << line << "')");
  CB_CHECK_MSG(std::getline(in, line) && line.rfind("key ", 0) == 0,
               "checkpoint missing key line");
  const std::string stored_key = line.substr(4);
  CB_CHECK_MSG(stored_key == domain_key,
               "checkpoint is for a different search:\n  stored:  "
                   << stored_key << "\n  current: " << domain_key);
  CB_CHECK_MSG(std::getline(in, line) && line.rfind("domain-size ", 0) == 0,
               "checkpoint missing domain-size line");
  const std::uint64_t stored_size =
      std::strtoull(line.c_str() + 12, nullptr, 10);
  CB_CHECK_MSG(stored_size == domain.size(),
               "checkpoint domain has " << stored_size
                                        << " configurations, current has "
                                        << domain.size()
                                        << " (different pruning options?)");

  // The remainder is the tuner state; its second line "id <x>" names the
  // strategy to rebuild.
  const std::string state = text.substr(static_cast<std::size_t>(in.tellg()));
  tunestate::Reader peek(state);
  peek.line("convbound-tuner-state");
  std::string id;
  peek.line("id") >> id;
  std::unique_ptr<Tuner> tuner = make_tuner(id, opts);
  tuner->load_state(domain, state);
  return tuner;
}

void save_checkpoint_file(const std::string& path, const Tuner& tuner,
                          const std::string& domain_key,
                          std::uint64_t domain_size) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    CB_CHECK_MSG(out.good(), "cannot write checkpoint file " << tmp);
    out << serialize_checkpoint(tuner, domain_key, domain_size);
    CB_CHECK_MSG(out.good(), "short write to checkpoint file " << tmp);
  }
  CB_CHECK_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
               "cannot move checkpoint into place at " << path);
}

std::unique_ptr<Tuner> load_checkpoint_file(const std::string& path,
                                            const SearchDomain& domain,
                                            const std::string& domain_key,
                                            const TunerOptions& opts) {
  std::ifstream in(path);
  CB_CHECK_MSG(in.good(), "cannot read checkpoint file " << path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return load_checkpoint(buf.str(), domain, domain_key, opts);
}

}  // namespace convbound
