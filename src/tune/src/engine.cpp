#include "convbound/tune/engine.hpp"

#include "convbound/tune/batch_measure.hpp"
#include "convbound/tune/cache.hpp"

namespace convbound {

AutotuneOutcome autotune_conv(SimGpu& gpu, const ConvShape& shape,
                              const AutotuneOptions& opts) {
  DomainOptions dopts;
  dopts.prune_with_optimality = opts.prune_with_optimality;
  dopts.winograd = opts.winograd;
  dopts.e = opts.e;
  SearchDomain domain = SearchDomain::build(shape, gpu.spec(), dopts);
  const std::string key =
      TuneCache::make_key(gpu.spec(), shape, opts.winograd, opts.e);

  // Batched evaluation pipeline: per-worker serial-mode machine replicas
  // measure whole proposal batches concurrently on the caller's pool (so a
  // bounded SimGpu pool still caps CPU use). Traces are identical to the
  // serial ConvMeasurer path for the same seed.
  BatchMeasurer measurer(gpu.spec(), domain, opts.seed, opts.workers,
                         gpu.pool());

  TunerOptions topts;
  topts.seed = opts.seed;
  topts.ate = opts.ate;
  // Seed the engine with the analytic dataflow default (Section 5's
  // optimality-condition configuration) — the template manager's knowledge.
  topts.seeds.push_back(opts.winograd
                            ? default_winograd_config(shape, opts.e,
                                                      gpu.spec())
                            : default_tiled_config(shape, gpu.spec()));

  std::unique_ptr<Tuner> tuner;
  int resumed_from = 0;
  if (opts.resume) {
    CB_CHECK_MSG(!opts.checkpoint.empty(),
                 "resume requested without a checkpoint path");
    tuner = load_checkpoint_file(opts.checkpoint, domain, key, topts);
    resumed_from = tuner->trials();
  } else {
    tuner = make_tuner(opts.tuner, topts);
    tuner->reset(domain);
  }

  // Step loop with a checkpoint after every observed batch (a round
  // boundary, the only point the state format is defined at), so a killed
  // search loses at most its in-flight batch.
  while (tuner->step(measurer, opts.budget)) {
    if (!opts.checkpoint.empty())
      save_checkpoint_file(opts.checkpoint, *tuner, key, domain.size());
  }

  AutotuneOutcome out{tuner->result(), std::move(domain), 0.0,
                      tuner->stats(), resumed_from,
                      tuner->exhausted() && tuner->trials() > 0};
  if (out.result.best_seconds < 1e30)
    out.best_gflops = measurer.gflops(out.result.best_seconds);
  return out;
}

}  // namespace convbound
