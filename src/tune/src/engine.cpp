#include "convbound/tune/engine.hpp"

#include "convbound/tune/batch_measure.hpp"

namespace convbound {

AutotuneOutcome autotune_conv(SimGpu& gpu, const ConvShape& shape,
                              const AutotuneOptions& opts) {
  DomainOptions dopts;
  dopts.prune_with_optimality = opts.prune_with_optimality;
  dopts.winograd = opts.winograd;
  dopts.e = opts.e;
  SearchDomain domain = SearchDomain::build(shape, gpu.spec(), dopts);

  // Batched evaluation pipeline: per-worker serial-mode machine replicas
  // measure whole proposal batches concurrently on the caller's pool (so a
  // bounded SimGpu pool still caps CPU use). Traces are identical to the
  // serial ConvMeasurer path for the same seed.
  BatchMeasurer measurer(gpu.spec(), domain, opts.seed, opts.workers,
                         gpu.pool());
  AteTuner::Params params = opts.ate;
  // Seed the engine with the analytic dataflow default (Section 5's
  // optimality-condition configuration) — the template manager's knowledge.
  params.seeds.push_back(opts.winograd
                             ? default_winograd_config(shape, opts.e,
                                                       gpu.spec())
                             : default_tiled_config(shape, gpu.spec()));
  AteTuner tuner(opts.seed, params);
  TuneResult result = tuner.run(measurer, opts.budget);

  AutotuneOutcome out{std::move(result), std::move(domain), 0.0};
  if (out.result.best_seconds < 1e30)
    out.best_gflops = measurer.gflops(out.result.best_seconds);
  return out;
}

}  // namespace convbound
