#include "convbound/tune/batch_measure.hpp"

#include "convbound/util/math.hpp"

namespace convbound {

BatchMeasurer::BatchMeasurer(const MachineSpec& spec,
                             const SearchDomain& domain, std::uint64_t seed,
                             int workers, ThreadPool* pool)
    : domain_(domain),
      inputs_(MeasureInputs::create(domain, seed)),
      pool_(pool != nullptr ? pool : &ThreadPool::global()) {
  const std::size_t n = workers > 0 ? static_cast<std::size_t>(workers)
                                    : pool_->num_threads();
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.push_back(std::make_unique<Worker>(spec, domain_.shape()));
}

std::vector<Measurement> BatchMeasurer::measure_batch(
    const std::vector<ConvConfig>& cfgs) {
  std::vector<Measurement> results(cfgs.size());
  if (cfgs.empty()) return results;

  // Contiguous slice per worker: each replica is touched by exactly one
  // parallel_for index, and every result lands at its candidate's index, so
  // the outcome is independent of task scheduling.
  const std::size_t active = std::min(workers_.size(), cfgs.size());
  const std::size_t chunk =
      static_cast<std::size_t>(ceil_div(static_cast<std::int64_t>(cfgs.size()),
                                        static_cast<std::int64_t>(active)));
  pool_->parallel_for(0, active, [&](std::size_t w) {
    Worker& wk = *workers_[w];
    const std::size_t lo = w * chunk;
    const std::size_t hi = std::min(cfgs.size(), lo + chunk);
    for (std::size_t i = lo; i < hi; ++i)
      results[i] = measure_config(wk.gpu, domain_, *inputs_, wk.out, cfgs[i]);
  });
  trials_.fetch_add(cfgs.size(), std::memory_order_relaxed);
  return results;
}

}  // namespace convbound
