#include "convbound/tune/domain.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "convbound/bounds/conv_bounds.hpp"
#include "convbound/util/math.hpp"

namespace convbound {

namespace {

constexpr int kMaxThreadsPerDim = 32;

/// Divisors of n capped at n (ascending). For Winograd x/y, divisors of the
/// tile-count grid scaled by e.
std::vector<std::int64_t> tile_candidates(std::int64_t extent,
                                          std::int64_t multiple) {
  std::vector<std::int64_t> out;
  if (multiple <= 1) {
    out = divisors(extent);
  } else {
    for (std::int64_t d : divisors(ceil_div(extent, multiple)))
      out.push_back(d * multiple);
  }
  return out;
}

std::vector<std::int64_t> thread_candidates(std::int64_t tile) {
  std::vector<std::int64_t> out;
  for (std::int64_t d : divisors(tile))
    if (d <= kMaxThreadsPerDim) out.push_back(d);
  return out;
}

}  // namespace

const std::vector<std::int64_t>& SearchDomain::thread_splits(
    std::int64_t tile) const {
  static const std::vector<std::int64_t> kEmpty;
  const auto it = thread_splits_.find(tile);
  return it == thread_splits_.end() ? kEmpty : it->second;
}

std::int64_t SearchDomain::footprint_bytes(std::int64_t x, std::int64_t y,
                                           std::int64_t z) const {
  ConvConfig cfg;
  cfg.x = x;
  cfg.y = y;
  cfg.z = z;
  return opts_.winograd ? winograd_fused_smem_bytes(shape_, opts_.e, cfg)
                        : direct_tiled_smem_bytes(shape_, cfg);
}

bool SearchDomain::tile_ok(std::int64_t x, std::int64_t y, std::int64_t z,
                           std::int64_t smem) const {
  if (footprint_bytes(x, y, z) > smem) return false;
  if (!opts_.prune_with_optimality) return true;
  // Optimality-condition pruning (Section 6.2): z <= sqrt(S_b/R) and
  // x*y <= sqrt(S_b*R), with S_b in elements.
  const double sb =
      static_cast<double>(smem) / static_cast<double>(sizeof(float));
  const double R = std::max(1.0, shape_.reuse());
  if (static_cast<double>(z) > std::sqrt(sb / R) + 1e-9) return false;
  if (static_cast<double>(x * y) > std::sqrt(sb * R) + 1e-9) return false;
  return true;
}

SearchDomain SearchDomain::build(const ConvShape& shape,
                                 const MachineSpec& spec,
                                 const DomainOptions& opts) {
  shape.validate();
  SearchDomain d;
  d.shape_ = shape;
  d.spec_ = spec;
  d.opts_ = opts;

  const std::int64_t mult = opts.winograd ? opts.e : 1;
  d.xs_ = tile_candidates(shape.hout(), mult);
  d.ys_ = tile_candidates(shape.wout(), mult);
  d.zs_ = divisors(shape.cout);
  // S_b candidates: halvings of S_sm/2 (two resident blocks minimum).
  for (std::int64_t sb = spec.shared_mem_per_sm / 2; sb >= 2048; sb /= 2)
    d.smems_.push_back(sb);

  // Memoise the divisor tables once: sample() and neighbors() are called on
  // every tuning trial and must not recompute them.
  for (const auto* dims : {&d.xs_, &d.ys_, &d.zs_}) {
    for (std::int64_t tile : *dims) {
      if (!d.thread_splits_.count(tile))
        d.thread_splits_[tile] = thread_candidates(tile);
    }
  }

  // Exact size: sum over the lattice of valid thread-split counts.
  d.size_ = d.count_configs(d.full_box());
  return d;
}

DomainBox SearchDomain::full_box() const {
  DomainBox box;
  box.x_hi = xs_.size();
  box.y_hi = ys_.size();
  box.z_hi = zs_.size();
  box.s_hi = smems_.size();
  return box;
}

std::vector<DomainBox> SearchDomain::partition(const DomainBox& box) const {
  std::vector<DomainBox> out;
  // Fixed split order S_b -> z -> x -> y: the smem budget and the z tile
  // dominate both the footprint constraint and the Eq 20/22 bound, so
  // fixing them first tightens child bounds fastest.
  auto slice = [&](std::size_t DomainBox::* lo, std::size_t DomainBox::* hi) {
    if (box.*hi - box.*lo <= 1) return false;
    for (std::size_t i = box.*lo; i < box.*hi; ++i) {
      DomainBox child = box;
      child.*lo = i;
      child.*hi = i + 1;
      out.push_back(child);
    }
    return true;
  };
  if (slice(&DomainBox::s_lo, &DomainBox::s_hi)) return out;
  if (slice(&DomainBox::z_lo, &DomainBox::z_hi)) return out;
  if (slice(&DomainBox::x_lo, &DomainBox::x_hi)) return out;
  if (slice(&DomainBox::y_lo, &DomainBox::y_hi)) return out;
  return out;  // singleton: nothing to split
}

std::uint64_t SearchDomain::count_configs(const DomainBox& box) const {
  CB_CHECK(box.x_hi <= xs_.size() && box.y_hi <= ys_.size() &&
           box.z_hi <= zs_.size() && box.s_hi <= smems_.size());
  std::uint64_t count = 0;
  for (std::size_t xi = box.x_lo; xi < box.x_hi; ++xi) {
    const auto& tx = thread_splits(xs_[xi]);
    for (std::size_t yi = box.y_lo; yi < box.y_hi; ++yi) {
      const auto& ty = thread_splits(ys_[yi]);
      for (std::size_t zi = box.z_lo; zi < box.z_hi; ++zi) {
        const auto& tz = thread_splits(zs_[zi]);
        for (std::size_t si = box.s_lo; si < box.s_hi; ++si) {
          if (!tile_ok(xs_[xi], ys_[yi], zs_[zi], smems_[si])) continue;
          std::uint64_t splits = 0;
          for (std::int64_t a : tx)
            for (std::int64_t b : ty)
              for (std::int64_t c : tz)
                if (a * b * c <= spec_.max_threads_per_block) ++splits;
          count += splits * kAllLayouts.size();
        }
      }
    }
  }
  return count;
}

std::vector<ConvConfig> SearchDomain::enumerate_configs(
    const DomainBox& box) const {
  CB_CHECK(box.x_hi <= xs_.size() && box.y_hi <= ys_.size() &&
           box.z_hi <= zs_.size() && box.s_hi <= smems_.size());
  std::vector<ConvConfig> out;
  for (std::size_t xi = box.x_lo; xi < box.x_hi; ++xi) {
    const auto& tx = thread_splits(xs_[xi]);
    for (std::size_t yi = box.y_lo; yi < box.y_hi; ++yi) {
      const auto& ty = thread_splits(ys_[yi]);
      for (std::size_t zi = box.z_lo; zi < box.z_hi; ++zi) {
        const auto& tz = thread_splits(zs_[zi]);
        for (std::size_t si = box.s_lo; si < box.s_hi; ++si) {
          if (!tile_ok(xs_[xi], ys_[yi], zs_[zi], smems_[si])) continue;
          for (std::int64_t a : tx) {
            for (std::int64_t b : ty) {
              for (std::int64_t c : tz) {
                if (a * b * c > spec_.max_threads_per_block) continue;
                for (Layout l : kAllLayouts) {
                  ConvConfig cfg;
                  cfg.x = xs_[xi];
                  cfg.y = ys_[yi];
                  cfg.z = zs_[zi];
                  cfg.smem_budget = smems_[si];
                  cfg.nxt = static_cast<int>(a);
                  cfg.nyt = static_cast<int>(b);
                  cfg.nzt = static_cast<int>(c);
                  cfg.layout = l;
                  out.push_back(cfg);
                }
              }
            }
          }
        }
      }
    }
  }
  return out;
}

bool SearchDomain::contains(const ConvConfig& cfg) const {
  // xs_/ys_/zs_ are ascending, smems_ descending; binary search both ways.
  if (!std::binary_search(xs_.begin(), xs_.end(), cfg.x)) return false;
  if (!std::binary_search(ys_.begin(), ys_.end(), cfg.y)) return false;
  if (!std::binary_search(zs_.begin(), zs_.end(), cfg.z)) return false;
  if (!std::binary_search(smems_.begin(), smems_.end(), cfg.smem_budget,
                          std::greater<std::int64_t>()))
    return false;
  if (cfg.x % cfg.nxt != 0 || cfg.y % cfg.nyt != 0 || cfg.z % cfg.nzt != 0)
    return false;
  if (cfg.nxt > kMaxThreadsPerDim || cfg.nyt > kMaxThreadsPerDim ||
      cfg.nzt > kMaxThreadsPerDim)
    return false;
  if (cfg.threads() > spec_.max_threads_per_block) return false;
  return tile_ok(cfg.x, cfg.y, cfg.z, cfg.smem_budget);
}

ConvConfig SearchDomain::sample(Rng& rng) const {
  CB_CHECK_MSG(size_ > 0, "empty search domain for " << shape_.to_string());
  for (int attempt = 0; attempt < 10000; ++attempt) {
    ConvConfig cfg;
    cfg.x = xs_[rng.below(xs_.size())];
    cfg.y = ys_[rng.below(ys_.size())];
    cfg.z = zs_[rng.below(zs_.size())];
    cfg.smem_budget = smems_[rng.below(smems_.size())];
    const auto& tx = thread_splits(cfg.x);
    const auto& ty = thread_splits(cfg.y);
    const auto& tz = thread_splits(cfg.z);
    cfg.nxt = static_cast<int>(tx[rng.below(tx.size())]);
    cfg.nyt = static_cast<int>(ty[rng.below(ty.size())]);
    cfg.nzt = static_cast<int>(tz[rng.below(tz.size())]);
    cfg.layout = kAllLayouts[rng.below(kAllLayouts.size())];
    if (cfg.threads() <= spec_.max_threads_per_block &&
        tile_ok(cfg.x, cfg.y, cfg.z, cfg.smem_budget))
      return cfg;
  }
  CB_CHECK_MSG(false, "could not sample a valid configuration");
  return {};
}

std::vector<ConvConfig> SearchDomain::neighbors(const ConvConfig& cfg) const {
  std::vector<ConvConfig> out;
  auto push_if_valid = [&](ConvConfig c) {
    // Re-snap thread splits that no longer divide the tile.
    auto snap = [](std::int64_t tile, int t) {
      while (t > 1 && tile % t != 0) --t;
      return t;
    };
    c.nxt = snap(c.x, c.nxt);
    c.nyt = snap(c.y, c.nyt);
    c.nzt = snap(c.z, c.nzt);
    if (contains(c) && !(c == cfg)) out.push_back(c);
  };

  auto step_list = [&](const std::vector<std::int64_t>& list,
                       std::int64_t cur, auto setter) {
    const auto it = std::find(list.begin(), list.end(), cur);
    if (it == list.end()) return;
    if (it != list.begin()) {
      ConvConfig c = cfg;
      setter(c, *(it - 1));
      push_if_valid(c);
    }
    if (it + 1 != list.end()) {
      ConvConfig c = cfg;
      setter(c, *(it + 1));
      push_if_valid(c);
    }
  };

  step_list(xs_, cfg.x, [](ConvConfig& c, std::int64_t v) { c.x = v; });
  step_list(ys_, cfg.y, [](ConvConfig& c, std::int64_t v) { c.y = v; });
  step_list(zs_, cfg.z, [](ConvConfig& c, std::int64_t v) { c.z = v; });
  step_list(smems_, cfg.smem_budget,
            [](ConvConfig& c, std::int64_t v) { c.smem_budget = v; });

  // Thread-split moves.
  auto thread_moves = [&](int ConvConfig::* field, std::int64_t tile) {
    const auto& cand = thread_splits(tile);
    const auto it = std::find(cand.begin(), cand.end(),
                              static_cast<std::int64_t>(cfg.*field));
    if (it == cand.end()) return;
    if (it != cand.begin()) {
      ConvConfig c = cfg;
      c.*field = static_cast<int>(*(it - 1));
      push_if_valid(c);
    }
    if (it + 1 != cand.end()) {
      ConvConfig c = cfg;
      c.*field = static_cast<int>(*(it + 1));
      push_if_valid(c);
    }
  };
  thread_moves(&ConvConfig::nxt, cfg.x);
  thread_moves(&ConvConfig::nyt, cfg.y);
  thread_moves(&ConvConfig::nzt, cfg.z);

  // Layout moves.
  for (Layout l : kAllLayouts) {
    if (l == cfg.layout) continue;
    ConvConfig c = cfg;
    c.layout = l;
    push_if_valid(c);
  }
  return out;
}

}  // namespace convbound
