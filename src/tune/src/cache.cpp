#include "convbound/tune/cache.hpp"

#include <fstream>
#include <sstream>

#include "convbound/util/check.hpp"

namespace convbound {

TuneCache::TuneCache(const TuneCache& other) {
  MutexLock lock(other.mu_);
  entries_ = other.entries_;
}

TuneCache& TuneCache::operator=(const TuneCache& other) {
  if (this == &other) return *this;
  MutexPairLock lock(mu_, other.mu_);
  entries_ = other.entries_;
  return *this;
}

std::string TuneCache::make_key(const MachineSpec& spec,
                                const ConvShape& shape, bool winograd,
                                std::int64_t e) {
  std::ostringstream os;
  os << spec.name << ";" << (winograd ? "winograd" + std::to_string(e)
                                      : std::string("direct"))
     << ";" << shape.to_string();
  return os.str();
}

void TuneCache::put(const std::string& key, const Entry& entry, bool force) {
  CB_CHECK_MSG(key.find('|') == std::string::npos &&
                   key.find('\n') == std::string::npos,
               "cache key must not contain '|' or newlines");
  MutexLock lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end() || force || entry.gflops > it->second.gflops) {
    entries_[key] = entry;
  }
}

std::optional<TuneCache::Entry> TuneCache::get(const std::string& key) const {
  MutexLock lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::size_t TuneCache::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

std::string TuneCache::serialize() const {
  std::ostringstream os;
  MutexLock lock(mu_);
  for (const auto& [key, e] : entries_) {
    // ConvConfig::key() is the canonical field order the parser below reads.
    os << key << '|' << e.config.key() << '|' << e.gflops << '\n';
  }
  return os.str();
}

TuneCache TuneCache::deserialize(const std::string& text) {
  TuneCache cache;
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    const std::size_t p1 = line.find('|');
    const std::size_t p2 = line.rfind('|');
    CB_CHECK_MSG(p1 != std::string::npos && p2 != p1,
                 "malformed cache line " << lineno);
    const std::string key = line.substr(0, p1);
    std::istringstream cfg_is(line.substr(p1 + 1, p2 - p1 - 1));
    Entry e;
    int layout = 0;
    cfg_is >> e.config.x >> e.config.y >> e.config.z >> e.config.nxt >>
        e.config.nyt >> e.config.nzt >> layout >> e.config.smem_budget;
    CB_CHECK_MSG(!cfg_is.fail(), "malformed config on cache line " << lineno);
    CB_CHECK_MSG(layout >= 0 && layout <= 2,
                 "bad layout on cache line " << lineno);
    e.config.layout = static_cast<Layout>(layout);
    e.gflops = std::stod(line.substr(p2 + 1));
    cache.put(key, e, /*force=*/true);
  }
  return cache;
}

void TuneCache::save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  CB_CHECK_MSG(out.good(), "cannot open cache file '" << path << "'");
  out << serialize();
  CB_CHECK_MSG(out.good(), "failed writing cache file '" << path << "'");
}

TuneCache TuneCache::load(const std::string& path) {
  std::ifstream in(path);
  CB_CHECK_MSG(in.good(), "cannot read cache file '" << path << "'");
  std::ostringstream os;
  os << in.rdbuf();
  return deserialize(os.str());
}

void TuneCache::merge(const TuneCache& other) {
  if (this == &other) return;
  // Copy the source under its own lock, then insert through put() so the
  // better-entry-wins rule applies without holding both locks at once.
  std::map<std::string, Entry> src;
  {
    MutexLock lock(other.mu_);
    src = other.entries_;
  }
  for (const auto& [key, e] : src) put(key, e);
}

}  // namespace convbound
