#include "convbound/tune/bnb.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <unordered_set>

#include "convbound/bounds/conv_bounds.hpp"
#include "convbound/machine/machine_spec.hpp"
#include "convbound/util/math.hpp"

namespace convbound {

namespace {

/// Heap ordering: "worse" nodes sink. Best = smallest achievable-runtime
/// estimate (Node::heur), then smallest admissible bound, then ties broken
/// toward deeper nodes (closer to a measurable leaf), then creation order —
/// a total order with no RNG or pointer identity, so traversal is
/// deterministic across platforms and across checkpoint round trips.
bool node_worse(const double a_heur, const double a_bound, const int a_depth,
                const std::uint64_t a_id, const double b_heur,
                const double b_bound, const int b_depth,
                const std::uint64_t b_id) {
  if (a_heur != b_heur) return a_heur > b_heur;
  if (a_bound != b_bound) return a_bound > b_bound;
  if (a_depth != b_depth) return a_depth < b_depth;
  return a_id > b_id;
}

/// Measurement pop rank for one configuration. The subtree bound cannot
/// rank thread splits and layouts (Eq 20/22 do not see them), so surfaced
/// configs are ordered by the roofline model evaluated with the config's
/// actual launch geometry and the analytic dataflow traffic — this captures
/// occupancy and thread-efficiency effects, steering measurement toward the
/// likely-best configs across *all* opened leaves first so the incumbent
/// tightens as early as possible.
double leaf_rank(const SearchDomain& d, const ConvConfig& cfg) {
  const ConvShape& s = d.shape();
  LaunchConfig lc;
  lc.num_blocks = s.batch * ceil_div(s.hout(), cfg.x) *
                  ceil_div(s.wout(), cfg.y) * ceil_div(s.cout, cfg.z);
  lc.threads_per_block = cfg.threads();
  lc.smem_bytes_per_block = cfg.smem_budget;
  const double reads =
      d.options().winograd
          ? winograd_dataflow_reads(s, d.options().e, cfg.x, cfg.y, cfg.z)
          : direct_dataflow_reads(s, cfg.x, cfg.y, cfg.z);
  const double bytes =
      static_cast<double>(sizeof(float)) *
      (reads + static_cast<double>(s.output_elems()));
  return model_time(d.spec(), lc, static_cast<std::uint64_t>(bytes),
                    static_cast<std::uint64_t>(s.flops()));
}

/// Roofline estimate for one (x, y, z, S_b) lattice point with its real
/// block grid, an idealised dense thread split (all tile elements in
/// flight, clamped at the block limit), and the analytic dataflow traffic.
double point_estimate_seconds(const SearchDomain& d, std::int64_t x,
                              std::int64_t y, std::int64_t z,
                              std::int64_t smem) {
  const ConvShape& s = d.shape();
  LaunchConfig lc;
  lc.num_blocks = s.batch * ceil_div(s.hout(), x) * ceil_div(s.wout(), y) *
                  ceil_div(s.cout, z);
  lc.threads_per_block =
      std::clamp<std::int64_t>(x * y * z, 1, d.spec().max_threads_per_block);
  lc.smem_bytes_per_block = smem;
  const double reads =
      d.options().winograd
          ? winograd_dataflow_reads(s, d.options().e, x, y, z)
          : direct_dataflow_reads(s, x, y, z);
  const double bytes =
      static_cast<double>(sizeof(float)) *
      (reads + static_cast<double>(s.output_elems()));
  return model_time(d.spec(), lc, static_cast<std::uint64_t>(bytes),
                    static_cast<std::uint64_t>(s.flops()));
}

/// Node::heur for `box`: the smallest point_estimate_seconds over the box's
/// feasible lattice points — the modelled runtime of its most promising
/// configuration. Unlike subtree_lower_seconds this sees each launch
/// geometry's occupancy and thread-efficiency penalties (the optimum
/// usually sits at *moderate* tiles, not the I/O-minimising corner), so it
/// separates boxes even when the admissible bound is a flat compute floor.
/// A pure function of the box (deterministic) that only influences pop
/// order — never pruning — so it needs no admissibility argument. Cost is
/// |box lattice| roofline evaluations, paid once per created node.
double box_heuristic_seconds(const SearchDomain& d, const DomainBox& box) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t si = box.s_lo; si < box.s_hi; ++si) {
    for (std::size_t zi = box.z_lo; zi < box.z_hi; ++zi) {
      for (std::size_t xi = box.x_lo; xi < box.x_hi; ++xi) {
        for (std::size_t yi = box.y_lo; yi < box.y_hi; ++yi) {
          DomainBox point;
          point.x_lo = xi, point.x_hi = xi + 1;
          point.y_lo = yi, point.y_hi = yi + 1;
          point.z_lo = zi, point.z_hi = zi + 1;
          point.s_lo = si, point.s_hi = si + 1;
          if (d.count_configs(point) == 0) continue;
          best = std::min(
              best, point_estimate_seconds(d, d.xs()[xi], d.ys()[yi],
                                           d.zs()[zi], d.smem_choices()[si]));
        }
      }
    }
  }
  return best;
}

}  // namespace

double subtree_lower_seconds(const SearchDomain& domain,
                             const DomainBox& box) {
  CB_CHECK(box.x_hi > box.x_lo && box.y_hi > box.y_lo &&
           box.z_hi > box.z_lo && box.s_hi > box.s_lo);
  const ConvShape& s = domain.shape();
  const MachineSpec& spec = domain.spec();
  // Candidate lists are ascending for tiles, descending for S_b, so the
  // box's monotone-minimising corner is (x_hi-1, y_hi-1, z_hi-1, s_lo).
  const std::int64_t x_max = domain.xs()[box.x_hi - 1];
  const std::int64_t y_max = domain.ys()[box.y_hi - 1];
  const std::int64_t z_max = domain.zs()[box.z_hi - 1];
  const std::int64_t smem_max = domain.smem_choices()[box.s_lo];
  const double S_elems =
      static_cast<double>(smem_max) / static_cast<double>(sizeof(float));

  double reads_min = 0, thm = 0, flops_floor = 0;
  if (domain.options().winograd) {
    const std::int64_t e = domain.options().e;
    reads_min = winograd_dataflow_reads_min(s, e, x_max, y_max, z_max);
    thm = winograd_lower_bound(s, e, S_elems);
    // Compute floor: one flop per elementwise multiply of the transformed
    // tiles — a strict undercount of any Winograd execution (which also
    // pays transforms and accumulation).
    const std::int64_t r = s.kh;
    const double a2 = static_cast<double>((e + r - 1) * (e + r - 1));
    const double tiles = static_cast<double>(s.batch) *
                         static_cast<double>(ceil_div(s.hout(), e)) *
                         static_cast<double>(ceil_div(s.wout(), e));
    flops_floor = tiles * static_cast<double>(s.cin) *
                  static_cast<double>(s.cout) * a2;
  } else {
    reads_min = direct_dataflow_reads_min(s, x_max, y_max, z_max);
    thm = direct_conv_lower_bound(s, S_elems);
    flops_floor = static_cast<double>(s.flops());
  }
  // Every config in the box also writes the full output once, and no
  // execution moves fewer elements than the red-blue pebble bound at the
  // box's largest per-block fast memory (Thm 4.12/4.20; Q(S) is decreasing
  // in S). The roofline uses the machine's *ideal* bandwidth and peak —
  // model_time only ever degrades both — plus the unavoidable launch cost.
  const double writes = static_cast<double>(s.output_elems());
  const double io_elems = std::max(reads_min + writes, thm);
  const double t_mem =
      static_cast<double>(sizeof(float)) * io_elems / spec.global_bw;
  const double t_cmp = flops_floor / spec.peak_flops;
  return spec.launch_overhead + std::max(t_mem, t_cmp);
}

void BranchAndBoundTuner::push_node(Node node) {
  nodes_.push_back(std::move(node));
  std::push_heap(nodes_.begin(), nodes_.end(),
                 [](const Node& a, const Node& b) {
                   return node_worse(a.heur, a.bound, a.depth, a.id, b.heur,
                                     b.bound, b.depth, b.id);
                 });
}

BranchAndBoundTuner::Node BranchAndBoundTuner::pop_node() {
  std::pop_heap(nodes_.begin(), nodes_.end(),
                [](const Node& a, const Node& b) {
                  return node_worse(a.heur, a.bound, a.depth, a.id, b.heur,
                                    b.bound, b.depth, b.id);
                });
  Node node = std::move(nodes_.back());
  nodes_.pop_back();
  return node;
}

namespace {
/// Measurement-pool ordering: smallest rank first, creation order as the
/// deterministic tie-break.
bool pending_worse_rank(const double a_rank, const std::uint64_t a_seq,
                        const double b_rank, const std::uint64_t b_seq) {
  if (a_rank != b_rank) return a_rank > b_rank;
  return a_seq > b_seq;
}
}  // namespace

void BranchAndBoundTuner::push_pending(Pending p) {
  pending_.push_back(std::move(p));
  std::push_heap(pending_.begin(), pending_.end(),
                 [](const Pending& a, const Pending& b) {
                   return pending_worse_rank(a.rank, a.seq, b.rank, b.seq);
                 });
}

BranchAndBoundTuner::Pending BranchAndBoundTuner::pop_pending() {
  std::pop_heap(pending_.begin(), pending_.end(),
                [](const Pending& a, const Pending& b) {
                  return pending_worse_rank(a.rank, a.seq, b.rank, b.seq);
                });
  Pending p = std::move(pending_.back());
  pending_.pop_back();
  return p;
}

void BranchAndBoundTuner::on_reset() {
  nodes_.clear();
  next_id_ = 0;
  pending_.clear();
  next_seq_ = 0;
  nodes_expanded_ = 0;
  subtrees_pruned_ = 0;
  leaves_opened_ = 0;
  configs_pruned_ = 0;

  // Seeds first (deduplicated, smem snapped like AteTuner's template
  // seeds): rank/bound of -inf puts them ahead of every surfaced config and
  // makes them unprunable. They establish the incumbent that makes pruning
  // bite.
  std::unordered_set<ConvConfig> dedup;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (ConvConfig seed : opts_.seeds) {
    if (seed.smem_budget == 0 && !domain().smem_choices().empty()) {
      seed.smem_budget = domain().smem_choices().front();
    }
    if (dedup.insert(seed).second) {
      push_pending(Pending{seed, -kInf, -kInf, next_seq_++});
    }
  }

  const DomainBox root = domain().full_box();
  if (domain().count_configs(root) > 0) {
    Node n;
    n.box = root;
    n.bound = subtree_lower_seconds(domain(), root);
    n.heur = box_heuristic_seconds(domain(), root);
    n.depth = 0;
    n.id = next_id_++;
    push_node(std::move(n));
  }
}

void BranchAndBoundTuner::expand_once(const double incumbent) {
  Node node = pop_node();
  if (node.bound >= incumbent) {
    ++subtrees_pruned_;
    configs_pruned_ += domain().count_configs(node.box);
    return;
  }
  if (node.box.singleton()) {
    ++leaves_opened_;
    // Surface every configuration of the leaf into the measurement pool,
    // each carrying the leaf's admissible bound (still valid per config —
    // it lower-bounds everything in the box), so a later, tighter incumbent
    // can cut it at pop time without ever measuring it.
    for (const ConvConfig& cfg : domain().enumerate_configs(node.box)) {
      push_pending(
          Pending{cfg, leaf_rank(domain(), cfg), node.bound, next_seq_++});
    }
    return;
  }
  ++nodes_expanded_;
  for (const DomainBox& child : domain().partition(node.box)) {
    const std::uint64_t count = domain().count_configs(child);
    if (count == 0) continue;  // infeasible slice: nothing inside
    // Bounds are monotone down the tree (a child's corner is no larger),
    // but max with the parent keeps that invariant explicit.
    const double bound =
        std::max(node.bound, subtree_lower_seconds(domain(), child));
    if (bound >= incumbent) {
      ++subtrees_pruned_;
      configs_pruned_ += count;
      continue;
    }
    Node c;
    c.box = child;
    c.bound = bound;
    c.heur = box_heuristic_seconds(domain(), child);
    c.depth = node.depth + 1;
    c.id = next_id_++;
    push_node(std::move(c));
  }
}

std::vector<ConvConfig> BranchAndBoundTuner::propose_batch(int max_batch) {
  const double incumbent = result().best_seconds;
  const std::size_t want =
      std::min(static_cast<std::size_t>(std::max(1, opts_.batch)),
               static_cast<std::size_t>(max_batch));
  std::vector<ConvConfig> out;
  while (out.size() < want) {
    // Surface configs while the most promising unexpanded box could still
    // beat the best already-surfaced config (strict <, so ties measure
    // before expanding further). heur lower-bounds the pop rank of every
    // descendant config (same roofline, idealised thread split), so when
    // the comparison flips, the pool front really is the globally
    // best-ranked unmeasured configuration.
    while (!nodes_.empty() &&
           (pending_.empty() || nodes_.front().heur < pending_.front().rank)) {
      expand_once(incumbent);
    }
    if (pending_.empty()) break;  // frontier empty too: exhausted, certified
    Pending p = pop_pending();
    if (p.bound >= incumbent) {
      // The incumbent tightened past this config's leaf bound after it was
      // surfaced: provably not optimal, drop unmeasured.
      ++configs_pruned_;
      continue;
    }
    out.push_back(std::move(p.cfg));
  }
  return out;
}

bool BranchAndBoundTuner::exhausted() const {
  return nodes_.empty() && pending_.empty();
}

void BranchAndBoundTuner::on_observe(const std::vector<ConvConfig>&,
                                     const std::vector<Measurement>&) {
  // The incumbent lives in the base trace; pruning reads it in
  // propose_batch, so there is no strategy state to update here.
}

std::vector<std::pair<std::string, double>> BranchAndBoundTuner::stats()
    const {
  return {
      {"nodes_expanded", static_cast<double>(nodes_expanded_)},
      {"subtrees_pruned", static_cast<double>(subtrees_pruned_)},
      {"leaves_opened", static_cast<double>(leaves_opened_)},
      {"configs_pruned", static_cast<double>(configs_pruned_)},
      {"frontier_open", static_cast<double>(nodes_.size())},
      {"pool_pending", static_cast<double>(pending_.size())},
      {"proven_optimal", proven_optimal() ? 1.0 : 0.0},
  };
}

void BranchAndBoundTuner::save_extra(std::ostream& os) const {
  os << "bnb " << nodes_expanded_ << ' ' << subtrees_pruned_ << ' '
     << leaves_opened_ << ' ' << configs_pruned_ << ' ' << next_id_ << '\n';
  // Measurement-pool heap array order, reloaded verbatim (same argument as
  // the frontier below).
  os << "pending " << pending_.size() << ' ' << next_seq_ << '\n';
  for (const Pending& p : pending_) {
    os << "p ";
    tunestate::write_config(os, p.cfg);
    os << ' ' << tunestate::fmt_f64(p.rank) << ' '
       << tunestate::fmt_f64(p.bound) << ' ' << p.seq << '\n';
  }
  // Heap array order, reloaded verbatim: the heap property is a function of
  // the array, so pop order after resume matches the uninterrupted run.
  os << "frontier " << nodes_.size() << '\n';
  for (const Node& n : nodes_) {
    os << "n " << n.box.x_lo << ' ' << n.box.x_hi << ' ' << n.box.y_lo << ' '
       << n.box.y_hi << ' ' << n.box.z_lo << ' ' << n.box.z_hi << ' '
       << n.box.s_lo << ' ' << n.box.s_hi << ' ' << n.depth << ' ' << n.id
       << ' ' << tunestate::fmt_f64(n.bound) << ' '
       << tunestate::fmt_f64(n.heur) << '\n';
  }
}

void BranchAndBoundTuner::load_extra(tunestate::Reader& r) {
  {
    auto is = r.line("bnb");
    is >> nodes_expanded_ >> subtrees_pruned_ >> leaves_opened_ >>
        configs_pruned_ >> next_id_;
    CB_CHECK_MSG(!is.fail(), "truncated bnb state line");
  }
  std::size_t npending = 0;
  {
    auto is = r.line("pending");
    is >> npending >> next_seq_;
    CB_CHECK_MSG(!is.fail(), "truncated bnb pending line");
  }
  pending_.clear();
  pending_.reserve(npending);
  for (std::size_t i = 0; i < npending; ++i) {
    auto is = r.line("p");
    Pending p;
    p.cfg = tunestate::read_config(is);
    std::string rank_tok, bound_tok;
    is >> rank_tok >> bound_tok >> p.seq;
    CB_CHECK_MSG(!is.fail(), "truncated bnb pending entry");
    p.rank = tunestate::parse_f64(rank_tok);
    p.bound = tunestate::parse_f64(bound_tok);
    pending_.push_back(std::move(p));
  }
  std::size_t nnodes = 0;
  r.line("frontier") >> nnodes;
  nodes_.clear();
  nodes_.reserve(nnodes);
  for (std::size_t i = 0; i < nnodes; ++i) {
    auto is = r.line("n");
    Node n;
    is >> n.box.x_lo >> n.box.x_hi >> n.box.y_lo >> n.box.y_hi >>
        n.box.z_lo >> n.box.z_hi >> n.box.s_lo >> n.box.s_hi >> n.depth >>
        n.id;
    std::string bound_tok, heur_tok;
    is >> bound_tok >> heur_tok;
    CB_CHECK_MSG(!is.fail(), "truncated bnb frontier line");
    n.bound = tunestate::parse_f64(bound_tok);
    n.heur = tunestate::parse_f64(heur_tok);
    nodes_.push_back(std::move(n));
  }
}

}  // namespace convbound
