#include "convbound/tune/features.hpp"

#include <cmath>

#include "convbound/bounds/conv_bounds.hpp"
#include "convbound/util/math.hpp"

namespace convbound {

std::size_t config_feature_arity() { return 16; }

std::vector<double> config_features(const SearchDomain& domain,
                                    const ConvConfig& cfg) {
  const ConvShape& s = domain.shape();
  const MachineSpec& spec = domain.spec();
  const bool wino = domain.options().winograd;

  const std::int64_t fp =
      wino ? winograd_fused_smem_bytes(s, domain.options().e, cfg)
           : direct_tiled_smem_bytes(s, cfg);
  const std::int64_t sb =
      cfg.smem_budget > 0 ? cfg.smem_budget : std::max<std::int64_t>(fp, 1);
  const double blocks_per_sm = std::max<std::int64_t>(
      1, std::min<std::int64_t>(spec.max_blocks_per_sm,
                                spec.shared_mem_per_sm / sb));
  const double num_blocks =
      static_cast<double>(s.batch) *
      static_cast<double>(ceil_div(s.hout(), cfg.x)) *
      static_cast<double>(ceil_div(s.wout(), cfg.y)) *
      static_cast<double>(ceil_div(s.cout, cfg.z));
  const double reads =
      wino ? winograd_dataflow_reads(s, domain.options().e, cfg.x, cfg.y,
                                     cfg.z)
           : direct_dataflow_reads(s, cfg.x, cfg.y, cfg.z);

  std::vector<double> f;
  f.reserve(config_feature_arity());
  f.push_back(std::log2(static_cast<double>(cfg.x)));
  f.push_back(std::log2(static_cast<double>(cfg.y)));
  f.push_back(std::log2(static_cast<double>(cfg.z)));
  f.push_back(std::log2(static_cast<double>(cfg.tile_elems())));
  f.push_back(std::log2(static_cast<double>(cfg.nxt)));
  f.push_back(std::log2(static_cast<double>(cfg.nyt)));
  f.push_back(std::log2(static_cast<double>(cfg.nzt)));
  f.push_back(std::log2(static_cast<double>(cfg.threads())));
  f.push_back(cfg.layout == Layout::kNCHW ? 1.0 : 0.0);
  f.push_back(cfg.layout == Layout::kNCWH ? 1.0 : 0.0);
  f.push_back(cfg.layout == Layout::kNHWC ? 1.0 : 0.0);
  f.push_back(static_cast<double>(fp) / static_cast<double>(sb));
  f.push_back(blocks_per_sm);
  f.push_back(std::log2(std::max(1.0, num_blocks /
                                          static_cast<double>(spec.num_sms))));
  f.push_back(optimality_residual(s, cfg.x, cfg.y, cfg.z));
  f.push_back(std::log2(std::max(1.0, reads)));
  return f;
}

}  // namespace convbound
