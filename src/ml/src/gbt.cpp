#include "convbound/ml/gbt.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "convbound/util/check.hpp"

namespace convbound {

namespace {

struct Split {
  int feature = -1;
  double threshold = 0;
  double gain = 0;
};

/// Best squared-error split of `rows` on one feature, given globally sorted
/// indices for that feature. O(n) scan of prefix sums.
Split best_split_on_feature(const std::vector<std::vector<double>>& X,
                            const std::vector<double>& residual,
                            const std::vector<std::int32_t>& order,
                            const std::vector<std::uint8_t>& in_node,
                            int feature, int min_leaf) {
  // Collect node rows in sorted-feature order.
  double total = 0;
  std::int64_t count = 0;
  for (std::int32_t i : order) {
    if (!in_node[static_cast<std::size_t>(i)]) continue;
    total += residual[static_cast<std::size_t>(i)];
    ++count;
  }
  Split best;
  if (count < 2 * min_leaf) return best;

  const double parent_score = total * total / static_cast<double>(count);
  double left_sum = 0;
  std::int64_t left_cnt = 0;
  double prev_val = std::numeric_limits<double>::quiet_NaN();
  for (std::int32_t i : order) {
    if (!in_node[static_cast<std::size_t>(i)]) continue;
    const double v = X[static_cast<std::size_t>(i)]
                      [static_cast<std::size_t>(feature)];
    // A split is only valid *between* distinct feature values.
    if (left_cnt >= min_leaf && count - left_cnt >= min_leaf &&
        v != prev_val) {
      const double right_sum = total - left_sum;
      const double gain =
          left_sum * left_sum / static_cast<double>(left_cnt) +
          right_sum * right_sum / static_cast<double>(count - left_cnt) -
          parent_score;
      if (gain > best.gain) {
        best.feature = feature;
        best.threshold = (v + prev_val) / 2.0;
        best.gain = gain;
      }
    }
    left_sum += residual[static_cast<std::size_t>(i)];
    ++left_cnt;
    prev_val = v;
  }
  return best;
}

}  // namespace

double Gbt::Tree::eval(const std::vector<double>& x) const {
  int n = 0;
  while (nodes[static_cast<std::size_t>(n)].feature >= 0) {
    const Node& nd = nodes[static_cast<std::size_t>(n)];
    n = x[static_cast<std::size_t>(nd.feature)] <= nd.threshold ? nd.left
                                                                : nd.right;
  }
  return nodes[static_cast<std::size_t>(n)].value;
}

Gbt::Tree Gbt::fit_tree(
    const std::vector<std::vector<double>>& X,
    const std::vector<double>& residual,
    const std::vector<std::vector<std::int32_t>>& sorted_idx,
    const GbtParams& params) const {
  Tree tree;
  const std::size_t n = X.size();
  const int d = static_cast<int>(X[0].size());

  struct Work {
    int node;
    int depth;
    std::vector<std::uint8_t> in_node;  // membership mask
  };
  std::vector<Work> stack;
  tree.nodes.emplace_back();
  stack.push_back({0, 0, std::vector<std::uint8_t>(n, 1)});

  while (!stack.empty()) {
    Work w = std::move(stack.back());
    stack.pop_back();

    double sum = 0;
    std::int64_t cnt = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (w.in_node[i]) {
        sum += residual[i];
        ++cnt;
      }
    }
    Node& node = tree.nodes[static_cast<std::size_t>(w.node)];
    node.value = sum / (static_cast<double>(cnt) + params.lambda);

    if (w.depth >= params.max_depth || cnt < 2 * params.min_samples_leaf)
      continue;

    Split best;
    for (int f = 0; f < d; ++f) {
      const Split s = best_split_on_feature(
          X, residual, sorted_idx[static_cast<std::size_t>(f)], w.in_node, f,
          params.min_samples_leaf);
      if (s.gain > best.gain) best = s;
    }
    if (best.feature < 0 || best.gain <= 1e-12) continue;

    node.feature = best.feature;
    node.threshold = best.threshold;
    const int li = static_cast<int>(tree.nodes.size());
    tree.nodes.emplace_back();
    tree.nodes.emplace_back();
    tree.nodes[static_cast<std::size_t>(w.node)].left = li;
    tree.nodes[static_cast<std::size_t>(w.node)].right = li + 1;

    std::vector<std::uint8_t> left_mask(n, 0), right_mask(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      if (!w.in_node[i]) continue;
      const double v =
          X[i][static_cast<std::size_t>(best.feature)];
      (v <= best.threshold ? left_mask : right_mask)[i] = 1;
    }
    stack.push_back({li, w.depth + 1, std::move(left_mask)});
    stack.push_back({li + 1, w.depth + 1, std::move(right_mask)});
  }
  return tree;
}

void Gbt::fit(const std::vector<std::vector<double>>& X,
              const std::vector<double>& y, const GbtParams& params) {
  CB_CHECK_MSG(!X.empty() && X.size() == y.size(),
               "gbt: need non-empty, aligned X/y");
  arity_ = X[0].size();
  for (const auto& row : X)
    CB_CHECK_MSG(row.size() == arity_, "gbt: ragged feature matrix");

  trees_.clear();
  learning_rate_ = params.learning_rate;
  base_ = std::accumulate(y.begin(), y.end(), 0.0) /
          static_cast<double>(y.size());
  base_set_ = true;

  // Pre-sort row indices per feature once.
  std::vector<std::vector<std::int32_t>> sorted_idx(arity_);
  for (std::size_t f = 0; f < arity_; ++f) {
    auto& idx = sorted_idx[f];
    idx.resize(X.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::sort(idx.begin(), idx.end(), [&](std::int32_t a, std::int32_t b) {
      return X[static_cast<std::size_t>(a)][f] <
             X[static_cast<std::size_t>(b)][f];
    });
  }

  std::vector<double> pred(y.size(), base_);
  std::vector<double> residual(y.size());
  for (int t = 0; t < params.num_trees; ++t) {
    for (std::size_t i = 0; i < y.size(); ++i) residual[i] = y[i] - pred[i];
    Tree tree = fit_tree(X, residual, sorted_idx, params);
    if (tree.nodes.size() == 1 && std::abs(tree.nodes[0].value) < 1e-15)
      break;  // nothing left to learn
    for (std::size_t i = 0; i < y.size(); ++i)
      pred[i] += learning_rate_ * tree.eval(X[i]);
    trees_.push_back(std::move(tree));
  }
}

double Gbt::predict(const std::vector<double>& x) const {
  CB_CHECK_MSG(base_set_, "gbt: predict before fit");
  CB_CHECK_MSG(x.size() == arity_, "gbt: feature arity mismatch");
  double p = base_;
  for (const auto& t : trees_) p += learning_rate_ * t.eval(x);
  return p;
}

double Gbt::rmse(const std::vector<std::vector<double>>& X,
                 const std::vector<double>& y) const {
  CB_CHECK(X.size() == y.size() && !X.empty());
  double se = 0;
  for (std::size_t i = 0; i < X.size(); ++i) {
    const double d = predict(X[i]) - y[i];
    se += d * d;
  }
  return std::sqrt(se / static_cast<double>(X.size()));
}

}  // namespace convbound
