// Gradient-boosted regression trees, built from scratch.
//
// Stands in for the XGBoost cost model of the paper's auto-tuning engine
// (Section 6.1): squared-error boosting with depth-limited greedy trees and
// L2 leaf regularisation. Training sets are small (hundreds to a few
// thousand configurations), so exact sorted-scan split search is used
// instead of histograms.
#pragma once

#include <cstdint>
#include <vector>

namespace convbound {

struct GbtParams {
  int num_trees = 64;
  int max_depth = 5;
  double learning_rate = 0.15;
  double lambda = 1.0;        ///< L2 regularisation on leaf values
  int min_samples_leaf = 2;   ///< no split producing a smaller child
};

/// A boosted ensemble fit on (feature vector -> scalar target) pairs.
class Gbt {
 public:
  /// Trains from scratch (drops any previous model). All rows must share
  /// the same feature arity. Throws on empty or ragged input.
  void fit(const std::vector<std::vector<double>>& X,
           const std::vector<double>& y, const GbtParams& params = {});

  bool trained() const { return !trees_.empty() || base_set_; }

  double predict(const std::vector<double>& x) const;

  /// Root-mean-square error over a labelled set.
  double rmse(const std::vector<std::vector<double>>& X,
              const std::vector<double>& y) const;

 private:
  struct Node {
    // Leaf when feature < 0.
    int feature = -1;
    double threshold = 0;
    double value = 0;
    int left = -1, right = -1;
  };
  struct Tree {
    std::vector<Node> nodes;
    double eval(const std::vector<double>& x) const;
  };

  Tree fit_tree(const std::vector<std::vector<double>>& X,
                const std::vector<double>& residual,
                const std::vector<std::vector<std::int32_t>>& sorted_idx,
                const GbtParams& params) const;

  std::vector<Tree> trees_;
  double base_ = 0;
  double learning_rate_ = 0.1;
  bool base_set_ = false;
  std::size_t arity_ = 0;
};

}  // namespace convbound
