// Bound-guided convolution planning: one decision point for every caller
// (API, model inference, CLI, benches).
//
// The Planner enumerates the algorithms eligible for a shape through the
// centralized capability query (`algorithm_supports`), scores each candidate
// with the bounds layer (dataflow I/O predictions against the Thm 4.12/4.20
// lower bounds) and, when asked, SimGpu dry-run measurements, consults the
// TuneCache for tuned configurations (falling back to the analytic Section 5
// defaults), and emits an immutable ConvPlan for the executor. Plans are
// memoised per (machine, shape, options), so callers plan once and execute
// many times.
//
// Concurrency: plan()/enumerate() are safe to call from several threads on
// one Planner (the memo is mutex-guarded and the TuneCache is thread-safe);
// concurrent cold misses may plan the same shape twice, but the first
// memoised plan wins and every caller receives it. A shared SimGpu is safe
// too — launches keep all mutable state on the stack.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "convbound/machine/sim_gpu.hpp"
#include "convbound/plan/conv_plan.hpp"
#include "convbound/tune/cache.hpp"
#include "convbound/util/mutex.hpp"
#include "convbound/util/thread_annotations.hpp"

namespace convbound {

/// How candidates are scored and configured.
enum class PlanMode {
  /// Bounds-layer predictions only; nothing is executed. Right for "what
  /// would run" tables (CLI `plan`) and very cheap planning.
  kAnalytic,
  /// Dry-run every candidate once on the SimGpu and pick the lowest
  /// simulated time, with analytic default configurations.
  kMeasured,
  /// Like kMeasured, but tunable algorithms take their configuration from
  /// the TuneCache (autotuning on a miss and caching the result).
  kTuned,
};

/// Which algorithm family competes for the plan.
enum class CandidateSet {
  kOurs,      ///< the paper's dataflows: tiled direct + fused Winograd
  kBaseline,  ///< cuDNN-like: naive direct, im2col+GEMM, phased Winograd
};

struct PlannerOptions {
  PlanMode mode = PlanMode::kMeasured;
  CandidateSet candidates = CandidateSet::kOurs;
  /// Autotune measurement budget on a TuneCache miss (kTuned only).
  int tune_budget = 32;
  /// Seed for dry-run problem data and autotuning.
  std::uint64_t seed = 42;
  /// Parallel measurement workers for autotuning (0 = one per hw thread).
  int workers = 0;
  /// Pin the Winograd variant F(e, r); 0 = bound-guided choice.
  std::int64_t force_e = 0;
};

/// One scored planning candidate; exposed so the CLI can print the full
/// ranking, not just the winner.
struct PlanCandidate {
  ConvAlgorithm algorithm = ConvAlgorithm::kDirectTiled;
  ConvConfig config;
  std::int64_t e = 2;
  bool tuned = false;
  double predicted_io_elems = 0;
  double lower_bound_elems = 0;
  double predicted_seconds = 0;
  bool measured = false;
  /// Candidate failed its dry run (e.g. configuration exceeds shared
  /// memory); never selected.
  bool infeasible = false;
};

class Planner {
 public:
  /// `cache` (optional, unowned) is consulted and updated by kTuned plans.
  explicit Planner(TuneCache* cache = nullptr) : cache_(cache) {}

  /// Centralized capability query: the algorithms of `set` that can run
  /// `s`, per algorithm_supports. Never empty (direct always applies).
  static std::vector<ConvAlgorithm> eligible_algorithms(CandidateSet set,
                                                        const ConvShape& s);

  /// Bound-guided Winograd output-tile edge: the feasible e (transform tile
  /// e + r - 1 <= 8, capped at 4 for accuracy) minimising the roofline time
  /// of the predicted dataflow I/O + arithmetic. 0 when Winograd cannot run
  /// `s` at all.
  static std::int64_t choose_winograd_e(const ConvShape& s,
                                        const MachineSpec& spec);

  /// All scored candidates for `s`, best first. Infeasible candidates sort
  /// last and are marked rather than dropped.
  std::vector<PlanCandidate> enumerate(SimGpu& gpu, const ConvShape& s,
                                       const PlannerOptions& opts);

  /// Best candidate as an immutable plan; memoised per (machine, shape,
  /// options).
  ConvPlan plan(SimGpu& gpu, const ConvShape& s, const PlannerOptions& opts);

  /// Plans a specific algorithm instead of competing the whole set (the
  /// per-panel benches). kCudnnDirect resolves to the measured best of its
  /// two concrete implementations, so the returned plan is always directly
  /// executable.
  ConvPlan plan_algorithm(SimGpu& gpu, const ConvShape& s, ConvAlgorithm algo,
                          const PlannerOptions& opts);

  TuneCache* cache() const { return cache_; }
  std::size_t plans_memoised() const;

 private:
  PlanCandidate make_candidate(SimGpu& gpu, const ConvShape& s,
                               ConvAlgorithm algo, std::int64_t e,
                               const PlannerOptions& opts, bool dry_run);
  ConvPlan to_plan(const ConvShape& s, const PlanCandidate& c) const;

  TuneCache* cache_;
  mutable Mutex memo_mu_;
  std::map<std::string, ConvPlan> memo_ CB_GUARDED_BY(memo_mu_);
};

}  // namespace convbound
