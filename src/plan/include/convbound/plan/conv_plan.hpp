// The immutable result of planning one convolution: which algorithm, with
// which configuration, and what the bounds layer predicts for it — the
// cuDNN-style "find algorithm + workspace, then execute" split.
#pragma once

#include <cstdint>
#include <string>

#include "convbound/conv/algorithms.hpp"

namespace convbound {

/// Everything the executor needs to run one convolution, plus the analytic
/// quantities that justified the choice. Plans are plain values: cheap to
/// copy, safe to cache and to record in per-layer reports.
/// Short human label for a planned algorithm choice: name, Winograd
/// variant, tuned marker. The one formatter every report/table uses.
inline std::string plan_label(ConvAlgorithm algo, std::int64_t e,
                              bool tuned) {
  std::string out = to_string(algo);
  if (algo == ConvAlgorithm::kWinogradFused ||
      algo == ConvAlgorithm::kWinogradPhased)
    out += " e=" + std::to_string(e);
  if (tuned) out += " (tuned)";
  return out;
}

struct ConvPlan {
  ConvShape shape;
  ConvAlgorithm algorithm = ConvAlgorithm::kDirectTiled;
  /// Honoured by the tunable dataflows, ignored by the baselines.
  ConvConfig config;
  /// Winograd variant F(e x e, r x r); meaningful for the Winograd
  /// algorithms only.
  std::int64_t e = 2;
  /// True when `config` came from a TuneCache hit or an autotuning run
  /// rather than the analytic default.
  bool tuned = false;

  /// Bounds-layer I/O prediction for this algorithm + configuration
  /// (elements; 0 when no analytic model exists for the algorithm).
  double predicted_io_elems = 0;
  /// Best applicable I/O lower bound for the algorithm's family (elements).
  double lower_bound_elems = 0;
  /// Score used to rank this plan: roofline estimate in analytic planning,
  /// measured dry-run sim time otherwise.
  double predicted_seconds = 0;
  /// True when predicted_seconds is a SimGpu dry-run measurement.
  bool measured = false;

  /// Output elements the executor leases from the workspace per execution.
  std::int64_t output_elems() const { return shape.output_elems(); }

  /// Predicted I/O over the lower bound; >= 1 for a sound bound, and the
  /// paper's figure of merit for how close a dataflow is to optimal.
  double bound_ratio() const {
    return lower_bound_elems > 0 ? predicted_io_elems / lower_bound_elems
                                 : 0.0;
  }

  std::string label() const { return plan_label(algorithm, e, tuned); }

  std::string to_string() const {
    return "plan[" + label() + " " + config.to_string() + "]";
  }
};

}  // namespace convbound
