// Runs ConvPlans against a reusable Workspace arena.
#pragma once

#include "convbound/plan/conv_plan.hpp"
#include "convbound/plan/workspace.hpp"

namespace convbound {

/// Stateless plan dispatch: runs plan.algorithm with plan.config / plan.e on
/// `gpu`, writing into the caller-shaped `out`. The plan must be concrete
/// (kCudnnDirect is resolved by the planner, never executed).
LaunchStats run_plan(SimGpu& gpu, const ConvPlan& plan,
                     const Tensor4<float>& input,
                     const Tensor4<float>& weights, Tensor4<float>& out);

/// Executes plans with workspace-pooled outputs, so repeated executions
/// (inference passes, serving traffic) allocate nothing once the arena has
/// seen every plan geometry.
class ConvExecutor {
 public:
  explicit ConvExecutor(Workspace& workspace) : ws_(workspace) {}

  struct Execution {
    LaunchStats stats;
    /// Leased output; valid until the Execution (or the lease) is dropped.
    Workspace::Lease output;
  };

  /// Runs `plan`, leasing the output from the workspace.
  Execution execute(SimGpu& gpu, const ConvPlan& plan,
                    const Tensor4<float>& input,
                    const Tensor4<float>& weights);

  /// Runs `plan` into a caller-owned, pre-shaped output tensor.
  LaunchStats execute_into(SimGpu& gpu, const ConvPlan& plan,
                           const Tensor4<float>& input,
                           const Tensor4<float>& weights,
                           Tensor4<float>& out);

  Workspace& workspace() { return ws_; }

 private:
  Workspace& ws_;
};

}  // namespace convbound
