// Reusable buffer arena for plan execution.
//
// Repeated executions of the same plans (model inference passes, serving
// traffic, bench loops) should do zero per-call output/scratch allocation:
// the executor leases pre-shaped tensors from a Workspace, which grows only
// while it sees new geometries and afterwards serves every acquire from the
// pool. Counters expose exactly that steady-state property so tests can
// assert it.
//
// Thread-safe: acquire/release and the counters are internally
// synchronized, so observers (serving stats) may read while executors
// lease. The *contents* of a leased tensor still belong to exactly one
// execution stream at a time — the lease is the ownership token, like a
// cuDNN handle's workspace pointer.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "convbound/tensor/tensor.hpp"
#include "convbound/util/mutex.hpp"
#include "convbound/util/thread_annotations.hpp"

namespace convbound {

class Workspace {
  struct Slot {
    Tensor4<float> tensor;
    /// Atomic so Lease release (lock-free) can race the pool scan (which
    /// runs under the workspace mutex).
    std::atomic<bool> in_use{false};
    Slot(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w,
         Layout layout)
        : tensor(n, c, h, w, layout) {}
  };

 public:
  /// Move-only handle to a pooled tensor; returns the buffer to the pool on
  /// destruction. Contents are unspecified on acquisition (kernels write
  /// every output element).
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& o) noexcept : slot_(o.slot_) { o.slot_ = nullptr; }
    Lease& operator=(Lease&& o) noexcept {
      if (this != &o) {
        release();
        slot_ = o.slot_;
        o.slot_ = nullptr;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    Tensor4<float>& tensor() {
      CB_CHECK_MSG(slot_ != nullptr, "empty workspace lease");
      return slot_->tensor;
    }
    const Tensor4<float>& tensor() const {
      CB_CHECK_MSG(slot_ != nullptr, "empty workspace lease");
      return slot_->tensor;
    }
    explicit operator bool() const { return slot_ != nullptr; }

   private:
    friend class Workspace;
    explicit Lease(Slot* slot) : slot_(slot) {}
    void release() {
      if (slot_ != nullptr) slot_->in_use.store(false, std::memory_order_release);
      slot_ = nullptr;
    }
    Slot* slot_ = nullptr;
  };

  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Leases a tensor of the requested geometry, reusing an idle pooled
  /// buffer when one matches; allocates (and remembers) a new one otherwise.
  Lease acquire(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w,
                Layout layout = Layout::kNCHW);

  /// Distinct buffers ever allocated. Constant once the workspace has seen
  /// every geometry of a workload — the zero-steady-state-allocation
  /// property the executor relies on.
  std::size_t buffers() const;
  /// Total acquire() calls.
  std::uint64_t acquires() const;
  /// acquire() calls served from the pool without allocating.
  std::uint64_t reuses() const;
  /// Bytes held by all pooled buffers (leased or idle).
  std::uint64_t bytes_reserved() const;

  /// Frees every pooled buffer. All leases must have been released.
  void clear();

 private:
  mutable Mutex mu_;
  /// The slot *vector* (and the counters) are guarded; each Slot's in_use
  /// bit is an atomic precisely so Lease::release() — which holds no lock —
  /// can hand the buffer back while acquire() scans under mu_ (the
  /// release/acquire pair orders the tensor contents hand-off).
  std::vector<std::unique_ptr<Slot>> slots_ CB_GUARDED_BY(mu_);
  std::uint64_t acquires_ CB_GUARDED_BY(mu_) = 0;
  std::uint64_t reuses_ CB_GUARDED_BY(mu_) = 0;
};

}  // namespace convbound
