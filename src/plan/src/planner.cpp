#include "convbound/plan/planner.hpp"

#include <algorithm>
#include <cmath>

#include "convbound/bounds/conv_bounds.hpp"
#include "convbound/conv/reference.hpp"
#include "convbound/plan/executor.hpp"
#include "convbound/tune/engine.hpp"

namespace convbound {

namespace {

bool is_winograd(ConvAlgorithm algo) {
  return algo == ConvAlgorithm::kWinogradFused ||
         algo == ConvAlgorithm::kWinogradPhased;
}

bool is_tunable(ConvAlgorithm algo) {
  return algo == ConvAlgorithm::kDirectTiled ||
         algo == ConvAlgorithm::kWinogradFused;
}

double winograd_tiles(const ConvShape& s, std::int64_t e) {
  return static_cast<double>(s.batch) *
         static_cast<double>((s.hout() + e - 1) / e) *
         static_cast<double>((s.wout() + e - 1) / e);
}

/// Arithmetic estimate for ranking (FMA = 2 FLOPs): element-wise products
/// plus the input/output transform sandwiches; kernel transforms are
/// amortised and ignored.
double winograd_flops_estimate(const ConvShape& s, std::int64_t e) {
  const double a = static_cast<double>(e + s.kh - 1);
  const double tiles = winograd_tiles(s, e);
  const double products = 2.0 * tiles * static_cast<double>(s.cin) *
                          static_cast<double>(s.cout) * a * a;
  const double in_transform =
      4.0 * tiles * static_cast<double>(s.cin) * a * a * a;
  const double out_transform = 4.0 * tiles * static_cast<double>(s.cout) *
                               static_cast<double>(e) * a * a;
  return products + in_transform + out_transform;
}

/// Bounds-layer I/O prediction (elements, reads + writes) for an algorithm
/// with its chosen tile. Baselines get honest structural estimates so the
/// CLI ranking stays meaningful; only the tunable dataflows have exact
/// Equation (20)/(22) models.
double predicted_io_elems(const ConvShape& s, ConvAlgorithm algo,
                          const ConvConfig& cfg, std::int64_t e) {
  const double out = static_cast<double>(s.output_elems());
  switch (algo) {
    case ConvAlgorithm::kDirectTiled:
      return direct_dataflow_reads(s, cfg.x, cfg.y, cfg.z) + out;
    case ConvAlgorithm::kWinogradFused:
      return winograd_dataflow_reads(s, e, cfg.x, cfg.y, cfg.z) + out;
    case ConvAlgorithm::kDirectNaive:
      // Literally an 8 x 8 x 1 instance of the tiled dataflow (no
      // output-channel reuse).
      return direct_dataflow_reads(s, std::min<std::int64_t>(8, s.hout()),
                                   std::min<std::int64_t>(8, s.wout()), 1) +
             out;
    case ConvAlgorithm::kIm2col: {
      // Column matrix written then re-read by the GEMM.
      const double col = static_cast<double>(s.batch * s.hout() * s.wout()) *
                         static_cast<double>(s.cin * s.kh * s.kw);
      return static_cast<double>(s.input_elems()) + 2.0 * col +
             static_cast<double>(s.weight_elems()) + out;
    }
    case ConvAlgorithm::kWinogradPhased: {
      // U, V, M materialised in global memory (written + read once each).
      const double a2 = static_cast<double>((e + s.kh - 1) * (e + s.kh - 1));
      const double tiles = winograd_tiles(s, e);
      const double u = static_cast<double>(s.cout * s.cin) * a2;
      const double v = tiles * static_cast<double>(s.cin) * a2;
      const double m = tiles * static_cast<double>(s.cout) * a2;
      return static_cast<double>(s.input_elems()) +
             static_cast<double>(s.weight_elems()) + 2.0 * (u + v + m) + out;
    }
    case ConvAlgorithm::kCudnnDirect:
      break;
  }
  return 0;
}

double roofline_seconds(const MachineSpec& spec, double io_elems,
                        double flops) {
  const double io_s = io_elems * sizeof(float) / spec.global_bw;
  const double fl_s = flops / spec.peak_flops;
  return std::max(io_s, fl_s) + spec.launch_overhead;
}

/// Best applicable lower bound of the algorithm's family; the exact proof
/// form can be vacuous (zero) at small scales, so take the leading form too.
double family_lower_bound(const ConvShape& s, ConvAlgorithm algo,
                          std::int64_t e, double S) {
  if (is_winograd(algo))
    return std::max(winograd_lower_bound(s, e, S),
                    winograd_lower_bound_leading(s, e, S));
  return std::max(direct_conv_lower_bound(s, S),
                  direct_conv_lower_bound_leading(s, S));
}

std::string memo_key(const MachineSpec& spec, const ConvShape& s,
                     const PlannerOptions& o) {
  return spec.name + '|' + s.to_string() + '|' +
         std::to_string(static_cast<int>(o.mode)) + '|' +
         std::to_string(static_cast<int>(o.candidates)) + '|' +
         std::to_string(o.tune_budget) + '|' + std::to_string(o.seed) + '|' +
         std::to_string(o.force_e);
}

}  // namespace

std::vector<ConvAlgorithm> Planner::eligible_algorithms(CandidateSet set,
                                                        const ConvShape& s) {
  const std::vector<ConvAlgorithm> pool =
      set == CandidateSet::kOurs
          ? std::vector<ConvAlgorithm>{ConvAlgorithm::kDirectTiled,
                                       ConvAlgorithm::kWinogradFused}
          : std::vector<ConvAlgorithm>{ConvAlgorithm::kDirectNaive,
                                       ConvAlgorithm::kIm2col,
                                       ConvAlgorithm::kWinogradPhased};
  std::vector<ConvAlgorithm> out;
  for (ConvAlgorithm algo : pool)
    if (algorithm_supports(algo, s)) out.push_back(algo);
  return out;
}

std::int64_t Planner::choose_winograd_e(const ConvShape& s,
                                        const MachineSpec& spec) {
  if (!algorithm_supports(ConvAlgorithm::kWinogradFused, s)) return 0;
  const double S = static_cast<double>(spec.smem_floats());
  std::int64_t best_e = 0;
  double best_score = 0;
  // e capped at 4 (a <= r + 3): the accuracy envelope production Winograd
  // kernels use; larger tiles win on I/O but amplify transform error.
  for (std::int64_t e = 2; e <= 4; ++e) {
    if (e + s.kh - 1 > 8) continue;  // no F(e, r) transform
    const double io = winograd_dataflow_io(s, e, S, spec.num_sms);
    const double score =
        roofline_seconds(spec, io, winograd_flops_estimate(s, e));
    if (best_e == 0 || score < best_score) {
      best_e = e;
      best_score = score;
    }
  }
  return best_e;
}

PlanCandidate Planner::make_candidate(SimGpu& gpu, const ConvShape& s,
                                      ConvAlgorithm algo, std::int64_t e,
                                      const PlannerOptions& opts,
                                      bool dry_run) {
  const MachineSpec& spec = gpu.spec();
  PlanCandidate c;
  c.algorithm = algo;
  c.e = e;

  // Configuration: analytic Section 5 default, overridden by the tune cache
  // or a fresh autotuning run for the tunable dataflows in kTuned mode.
  const bool wino = algo == ConvAlgorithm::kWinogradFused;
  if (is_tunable(algo)) {
    c.config = wino ? default_winograd_config(s, e, spec)
                    : default_tiled_config(s, spec);
    if (opts.mode == PlanMode::kTuned) {
      const std::string key = TuneCache::make_key(spec, s, wino, e);
      if (cache_ != nullptr) {
        if (const auto hit = cache_->get(key)) {
          c.config = hit->config;
          c.tuned = true;
        }
      }
      if (!c.tuned) {
        AutotuneOptions aopts;
        aopts.budget = opts.tune_budget;
        aopts.seed = opts.seed;
        aopts.winograd = wino;
        aopts.e = e;
        aopts.workers = opts.workers;
        const AutotuneOutcome outcome = autotune_conv(gpu, s, aopts);
        if (outcome.result.best_seconds < 1e30) {
          c.config = outcome.result.best;
          c.tuned = true;
          if (cache_ != nullptr)
            cache_->put(key, {c.config, outcome.best_gflops});
        }
      }
    }
  }

  c.predicted_io_elems = predicted_io_elems(s, algo, c.config, e);
  c.lower_bound_elems = family_lower_bound(
      s, algo, e, static_cast<double>(spec.smem_floats()));
  const double flops = is_winograd(algo)
                           ? winograd_flops_estimate(s, e)
                           : static_cast<double>(s.flops());
  c.predicted_seconds = roofline_seconds(spec, c.predicted_io_elems, flops);

  if (dry_run) {
    ConvPlan probe = to_plan(s, c);
    const ConvProblem p = make_problem(s, opts.seed);
    Tensor4<float> out(s.batch, s.cout, s.hout(), s.wout());
    try {
      const LaunchStats stats = run_plan(gpu, probe, p.input, p.weights, out);
      c.predicted_seconds = stats.sim_time;
      c.measured = true;
    } catch (const Error&) {
      // Configuration does not physically fit (e.g. shared-memory
      // overflow); keep the candidate visible but never select it.
      c.infeasible = true;
    }
  }
  return c;
}

ConvPlan Planner::to_plan(const ConvShape& s, const PlanCandidate& c) const {
  ConvPlan p;
  p.shape = s;
  p.algorithm = c.algorithm;
  p.config = c.config;
  p.e = c.e;
  p.tuned = c.tuned;
  p.predicted_io_elems = c.predicted_io_elems;
  p.lower_bound_elems = c.lower_bound_elems;
  p.predicted_seconds = c.predicted_seconds;
  p.measured = c.measured;
  return p;
}

std::vector<PlanCandidate> Planner::enumerate(SimGpu& gpu, const ConvShape& s,
                                              const PlannerOptions& opts) {
  s.validate();
  const std::vector<ConvAlgorithm> algos =
      eligible_algorithms(opts.candidates, s);
  CB_CHECK_MSG(!algos.empty(),
               "no eligible algorithm for " << s.to_string());
  const bool dry_run = opts.mode != PlanMode::kAnalytic;

  std::vector<PlanCandidate> cands;
  for (ConvAlgorithm algo : algos) {
    std::int64_t e = 2;
    if (is_winograd(algo)) {
      e = opts.force_e > 0 ? opts.force_e
                           : choose_winograd_e(s, gpu.spec());
      if (e == 0) continue;
    }
    cands.push_back(make_candidate(gpu, s, algo, e, opts, dry_run));
  }
  std::stable_sort(cands.begin(), cands.end(),
                   [](const PlanCandidate& a, const PlanCandidate& b) {
                     if (a.infeasible != b.infeasible) return b.infeasible;
                     return a.predicted_seconds < b.predicted_seconds;
                   });
  return cands;
}

ConvPlan Planner::plan(SimGpu& gpu, const ConvShape& s,
                       const PlannerOptions& opts) {
  const std::string key = memo_key(gpu.spec(), s, opts);
  {
    MutexLock lock(memo_mu_);
    if (const auto it = memo_.find(key); it != memo_.end()) return it->second;
  }
  // Planning (dry runs, autotuning) happens outside the lock; when two
  // threads race on the same cold shape, the first emplace wins and both
  // return the memoised plan.
  const std::vector<PlanCandidate> cands = enumerate(gpu, s, opts);
  CB_CHECK_MSG(!cands.empty() && !cands.front().infeasible,
               "no feasible plan for " << s.to_string());
  const ConvPlan p = to_plan(s, cands.front());
  MutexLock lock(memo_mu_);
  return memo_.emplace(key, p).first->second;
}

std::size_t Planner::plans_memoised() const {
  MutexLock lock(memo_mu_);
  return memo_.size();
}

ConvPlan Planner::plan_algorithm(SimGpu& gpu, const ConvShape& s,
                                 ConvAlgorithm algo,
                                 const PlannerOptions& opts) {
  s.validate();
  if (algo == ConvAlgorithm::kCudnnDirect) {
    // Resolve the best-of alias to a concrete winner, as cuDNN's find
    // phase does (paper Section 7).
    PlanCandidate best;
    bool have = false;
    for (ConvAlgorithm cand :
         {ConvAlgorithm::kDirectNaive, ConvAlgorithm::kIm2col}) {
      if (!algorithm_supports(cand, s)) continue;
      PlanCandidate c = make_candidate(gpu, s, cand, 2, opts,
                                       opts.mode != PlanMode::kAnalytic);
      if (c.infeasible) continue;
      if (!have || c.predicted_seconds < best.predicted_seconds) {
        best = c;
        have = true;
      }
    }
    CB_CHECK_MSG(have, "no feasible direct baseline for " << s.to_string());
    return to_plan(s, best);
  }

  CB_CHECK_MSG(algorithm_supports(algo, s),
               to_string(algo) << " does not support " << s.to_string());
  std::int64_t e = 2;
  if (is_winograd(algo)) {
    e = opts.force_e > 0 ? opts.force_e : choose_winograd_e(s, gpu.spec());
    CB_CHECK_MSG(e > 0, "no Winograd transform for " << s.to_string());
  }
  return to_plan(s, make_candidate(gpu, s, algo, e, opts, false));
}

}  // namespace convbound
