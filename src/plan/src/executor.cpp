#include "convbound/plan/executor.hpp"

#include "convbound/conv/direct.hpp"
#include "convbound/conv/winograd.hpp"
#include "convbound/obs/trace.hpp"

namespace convbound {

namespace {

LaunchStats dispatch_plan(SimGpu& gpu, const ConvPlan& plan,
                          const Tensor4<float>& input,
                          const Tensor4<float>& weights, Tensor4<float>& out) {
  const ConvShape& s = plan.shape;
  s.validate();
  CB_CHECK_MSG(out.n() == s.batch && out.c() == s.cout &&
                   out.h() == s.hout() && out.w() == s.wout(),
               "output tensor does not match plan shape " << s.to_string());
  switch (plan.algorithm) {
    case ConvAlgorithm::kDirectTiled:
      return direct_tiled_sim(gpu, input, weights, s, plan.config, out);
    case ConvAlgorithm::kDirectNaive:
      return direct_naive_sim(gpu, input, weights, s, out);
    case ConvAlgorithm::kIm2col:
      return im2col_sim(gpu, input, weights, s, out);
    case ConvAlgorithm::kWinogradFused:
      return winograd_fused_sim(gpu, input, weights, s, plan.e, plan.config,
                                out);
    case ConvAlgorithm::kWinogradPhased:
      return winograd_phased_sim(gpu, input, weights, s, plan.e, out);
    case ConvAlgorithm::kCudnnDirect:
      break;  // falls through to the check below
  }
  CB_CHECK_MSG(false, "plan holds non-executable algorithm "
                          << to_string(plan.algorithm)
                          << " (the planner resolves best-of aliases)");
  return {};
}

}  // namespace

LaunchStats run_plan(SimGpu& gpu, const ConvPlan& plan,
                     const Tensor4<float>& input,
                     const Tensor4<float>& weights, Tensor4<float>& out) {
  // Per-layer trace spans: two clock reads per layer, gated so the
  // tracing-off path pays one relaxed load and no clocks.
  if (!obs::on())
    return dispatch_plan(gpu, plan, input, weights, out);
  const TraceClock::time_point t0 = TraceClock::now();
  LaunchStats stats = dispatch_plan(gpu, plan, input, weights, out);
  const TraceClock::time_point t1 = TraceClock::now();
  // value carries the modelled layer time; the span's wall duration is the
  // host-side simulation cost of the same layer.
  obs::span(TraceStage::kLayerExec, t0, t1, 0, 0, -1, stats.sim_time);
  return stats;
}

ConvExecutor::Execution ConvExecutor::execute(SimGpu& gpu,
                                              const ConvPlan& plan,
                                              const Tensor4<float>& input,
                                              const Tensor4<float>& weights) {
  const ConvShape& s = plan.shape;
  Workspace::Lease lease =
      ws_.acquire(s.batch, s.cout, s.hout(), s.wout(), Layout::kNCHW);
  LaunchStats stats = run_plan(gpu, plan, input, weights, lease.tensor());
  return Execution{stats, std::move(lease)};
}

LaunchStats ConvExecutor::execute_into(SimGpu& gpu, const ConvPlan& plan,
                                       const Tensor4<float>& input,
                                       const Tensor4<float>& weights,
                                       Tensor4<float>& out) {
  return run_plan(gpu, plan, input, weights, out);
}

}  // namespace convbound
