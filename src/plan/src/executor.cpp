#include "convbound/plan/executor.hpp"

#include "convbound/conv/direct.hpp"
#include "convbound/conv/winograd.hpp"

namespace convbound {

LaunchStats run_plan(SimGpu& gpu, const ConvPlan& plan,
                     const Tensor4<float>& input,
                     const Tensor4<float>& weights, Tensor4<float>& out) {
  const ConvShape& s = plan.shape;
  s.validate();
  CB_CHECK_MSG(out.n() == s.batch && out.c() == s.cout &&
                   out.h() == s.hout() && out.w() == s.wout(),
               "output tensor does not match plan shape " << s.to_string());
  switch (plan.algorithm) {
    case ConvAlgorithm::kDirectTiled:
      return direct_tiled_sim(gpu, input, weights, s, plan.config, out);
    case ConvAlgorithm::kDirectNaive:
      return direct_naive_sim(gpu, input, weights, s, out);
    case ConvAlgorithm::kIm2col:
      return im2col_sim(gpu, input, weights, s, out);
    case ConvAlgorithm::kWinogradFused:
      return winograd_fused_sim(gpu, input, weights, s, plan.e, plan.config,
                                out);
    case ConvAlgorithm::kWinogradPhased:
      return winograd_phased_sim(gpu, input, weights, s, plan.e, out);
    case ConvAlgorithm::kCudnnDirect:
      break;  // falls through to the check below
  }
  CB_CHECK_MSG(false, "plan holds non-executable algorithm "
                          << to_string(plan.algorithm)
                          << " (the planner resolves best-of aliases)");
  return {};
}

ConvExecutor::Execution ConvExecutor::execute(SimGpu& gpu,
                                              const ConvPlan& plan,
                                              const Tensor4<float>& input,
                                              const Tensor4<float>& weights) {
  const ConvShape& s = plan.shape;
  Workspace::Lease lease =
      ws_.acquire(s.batch, s.cout, s.hout(), s.wout(), Layout::kNCHW);
  LaunchStats stats = run_plan(gpu, plan, input, weights, lease.tensor());
  return Execution{stats, std::move(lease)};
}

LaunchStats ConvExecutor::execute_into(SimGpu& gpu, const ConvPlan& plan,
                                       const Tensor4<float>& input,
                                       const Tensor4<float>& weights,
                                       Tensor4<float>& out) {
  return run_plan(gpu, plan, input, weights, out);
}

}  // namespace convbound
