#include "convbound/plan/workspace.hpp"

namespace convbound {

Workspace::Lease Workspace::acquire(std::int64_t n, std::int64_t c,
                                    std::int64_t h, std::int64_t w,
                                    Layout layout) {
  CB_CHECK_MSG(n > 0 && c > 0 && h > 0 && w > 0,
               "workspace acquire with non-positive geometry");
  MutexLock lock(mu_);
  ++acquires_;
  for (auto& slot : slots_) {
    const Tensor4<float>& t = slot->tensor;
    if (t.n() == n && t.c() == c && t.h() == h && t.w() == w &&
        t.layout() == layout &&
        !slot->in_use.exchange(true, std::memory_order_acquire)) {
      ++reuses_;
      return Lease(slot.get());
    }
  }
  slots_.push_back(std::make_unique<Slot>(n, c, h, w, layout));
  slots_.back()->in_use.store(true, std::memory_order_relaxed);
  return Lease(slots_.back().get());
}

std::size_t Workspace::buffers() const {
  MutexLock lock(mu_);
  return slots_.size();
}

std::uint64_t Workspace::acquires() const {
  MutexLock lock(mu_);
  return acquires_;
}

std::uint64_t Workspace::reuses() const {
  MutexLock lock(mu_);
  return reuses_;
}

std::uint64_t Workspace::bytes_reserved() const {
  MutexLock lock(mu_);
  std::uint64_t bytes = 0;
  for (const auto& slot : slots_) bytes += slot->tensor.size_bytes();
  return bytes;
}

void Workspace::clear() {
  MutexLock lock(mu_);
  for (const auto& slot : slots_)
    CB_CHECK_MSG(!slot->in_use.load(std::memory_order_seq_cst),
                 "clearing workspace with live leases");
  slots_.clear();
}

}  // namespace convbound
