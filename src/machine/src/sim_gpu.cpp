#include "convbound/machine/sim_gpu.hpp"

#include <future>

namespace convbound {

LaunchStats SimGpu::launch(const LaunchConfig& cfg, const Kernel& kernel) {
  CB_CHECK(cfg.num_blocks > 0);
  CB_CHECK_MSG(cfg.smem_bytes_per_block <= spec_.shared_mem_per_sm,
               "requested S_b=" << cfg.smem_bytes_per_block
                                << " B > S_sm=" << spec_.shared_mem_per_sm);

  struct StripeCounters {
    std::uint64_t loaded = 0, stored = 0, flops = 0;
  };

  if (mode_ == ExecMode::kSerial) {
    // Drain every block on the calling thread. Counter totals (and therefore
    // the modelled time) are bit-identical to the striped path because they
    // are exact integer sums, independent of which thread ran which block.
    SharedMemory smem(static_cast<std::size_t>(
        cfg.smem_bytes_per_block > 0 ? cfg.smem_bytes_per_block
                                     : spec_.shared_mem_per_sm));
    LaunchStats stats;
    for (std::int64_t b = 0; b < cfg.num_blocks; ++b) {
      smem.reset();
      BlockContext ctx(b, smem);
      kernel(ctx);
      stats.bytes_loaded += ctx.bytes_loaded();
      stats.bytes_stored += ctx.bytes_stored();
      stats.flops += ctx.flops();
    }
    stats.num_blocks = static_cast<std::uint64_t>(cfg.num_blocks);
    stats.num_launches = 1;
    stats.sim_time = model_time(spec_, cfg, stats.bytes_total(), stats.flops);
    return stats;
  }

  const std::size_t nw = pool_->num_threads();
  std::vector<StripeCounters> counters(nw);
  std::vector<std::future<void>> futs;
  futs.reserve(nw);

  for (std::size_t w = 0; w < nw; ++w) {
    futs.push_back(pool_->submit([this, w, nw, &cfg, &kernel, &counters] {
      SharedMemory smem(static_cast<std::size_t>(
          cfg.smem_bytes_per_block > 0 ? cfg.smem_bytes_per_block
                                       : spec_.shared_mem_per_sm));
      StripeCounters& c = counters[w];
      for (std::int64_t b = static_cast<std::int64_t>(w); b < cfg.num_blocks;
           b += static_cast<std::int64_t>(nw)) {
        smem.reset();
        BlockContext ctx(b, smem);
        kernel(ctx);
        c.loaded += ctx.bytes_loaded();
        c.stored += ctx.bytes_stored();
        c.flops += ctx.flops();
      }
    }));
  }
  // Wait for every stripe before rethrowing: stripes reference local state,
  // so an early rethrow while siblings still run would be a use-after-free.
  std::exception_ptr first_error;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);

  LaunchStats stats;
  for (const auto& c : counters) {
    stats.bytes_loaded += c.loaded;
    stats.bytes_stored += c.stored;
    stats.flops += c.flops;
  }
  stats.num_blocks = static_cast<std::uint64_t>(cfg.num_blocks);
  stats.num_launches = 1;
  stats.sim_time = model_time(spec_, cfg, stats.bytes_total(), stats.flops);
  return stats;
}

}  // namespace convbound
