#include "convbound/machine/machine_spec.hpp"

#include <algorithm>
#include <cmath>

#include "convbound/util/check.hpp"
#include "convbound/util/math.hpp"

namespace convbound {

MachineSpec MachineSpec::gtx1080ti() {
  MachineSpec s;
  s.name = "GTX 1080 Ti (Pascal)";
  s.num_sms = 28;
  s.shared_mem_per_sm = 96 * 1024;
  s.global_bw = 484e9;
  s.peak_flops = 11.3e12;
  return s;
}

MachineSpec MachineSpec::titan_x() {
  MachineSpec s;
  s.name = "GTX Titan X (Maxwell)";
  s.num_sms = 24;
  s.shared_mem_per_sm = 96 * 1024;
  s.global_bw = 336e9;
  s.peak_flops = 6.7e12;
  return s;
}

MachineSpec MachineSpec::v100() {
  MachineSpec s;
  s.name = "Tesla V100 (Volta)";
  s.num_sms = 80;
  s.shared_mem_per_sm = 96 * 1024;
  s.global_bw = 900e9;
  s.peak_flops = 15.7e12;
  return s;
}

MachineSpec MachineSpec::gfx906() {
  MachineSpec s;
  s.name = "AMD gfx906 (Vega 20)";
  s.num_sms = 60;
  s.shared_mem_per_sm = 64 * 1024;
  s.global_bw = 1024e9;
  s.peak_flops = 13.4e12;
  return s;
}

MachineSpec MachineSpec::bandwidth_optimized() {
  MachineSpec s;
  s.name = "HBM-fat (bandwidth-optimized)";
  s.num_sms = 24;
  s.shared_mem_per_sm = 128 * 1024;
  s.global_bw = 3200e9;
  s.peak_flops = 8e12;
  s.launch_overhead = 1e-6;
  return s;
}

MachineSpec MachineSpec::compute_optimized() {
  MachineSpec s;
  s.name = "DenseCompute (flop-optimized)";
  s.num_sms = 24;
  s.shared_mem_per_sm = 64 * 1024;
  s.global_bw = 450e9;
  s.peak_flops = 40e12;
  s.launch_overhead = 1e-6;
  return s;
}

MachineSpec spec_by_name(const std::string& name) {
  if (name == "1080ti") return MachineSpec::gtx1080ti();
  if (name == "titanx") return MachineSpec::titan_x();
  if (name == "v100") return MachineSpec::v100();
  if (name == "gfx906") return MachineSpec::gfx906();
  if (name == "hbm") return MachineSpec::bandwidth_optimized();
  if (name == "dense") return MachineSpec::compute_optimized();
  if (name == "test") return MachineSpec::test_machine();
  CB_CHECK_MSG(false, "unknown machine '"
                          << name
                          << "' (1080ti|titanx|v100|gfx906|hbm|dense|test)");
  return {};
}

MachineSpec MachineSpec::test_machine() {
  MachineSpec s;
  s.name = "test machine";
  s.num_sms = 2;
  s.shared_mem_per_sm = 4 * 1024;
  s.global_bw = 1e9;
  s.peak_flops = 8e9;
  s.launch_overhead = 1e-6;
  return s;
}

double model_time(const MachineSpec& spec, const LaunchConfig& cfg,
                  std::uint64_t bytes, std::uint64_t flops) {
  CB_CHECK_MSG(cfg.num_blocks > 0, "launch with zero blocks");
  CB_CHECK_MSG(cfg.threads_per_block > 0 &&
                   cfg.threads_per_block <= spec.max_threads_per_block,
               "threads_per_block=" << cfg.threads_per_block);
  CB_CHECK_MSG(cfg.smem_bytes_per_block <= spec.shared_mem_per_sm,
               "block shared memory " << cfg.smem_bytes_per_block
                                      << " exceeds SM capacity "
                                      << spec.shared_mem_per_sm);

  // How many blocks can be resident on one SM at once.
  const std::int64_t by_smem =
      cfg.smem_bytes_per_block > 0
          ? spec.shared_mem_per_sm / cfg.smem_bytes_per_block
          : spec.max_blocks_per_sm;
  const std::int64_t blocks_per_sm =
      std::clamp<std::int64_t>(by_smem, 1, spec.max_blocks_per_sm);

  const std::int64_t slots = spec.num_sms * blocks_per_sm;
  const std::int64_t waves = ceil_div(cfg.num_blocks, slots);
  // Average concurrency over the launch (last, partially-filled wave drags
  // the average down — wave quantisation).
  const double active_blocks =
      static_cast<double>(cfg.num_blocks) / static_cast<double>(waves);
  // Blocks are distributed across SMs round-robin, so SMs fill up before
  // blocks stack on the same SM.
  const double busy_sms =
      std::min<double>(static_cast<double>(spec.num_sms), active_blocks);

  // An SM needs enough resident threads to hide latency; model saturation at
  // 128 threads/block (times resident blocks).
  const double resident_threads =
      static_cast<double>(cfg.threads_per_block) *
      std::min<double>(static_cast<double>(blocks_per_sm),
                       active_blocks / busy_sms);
  const double thread_eff = std::min(1.0, resident_threads / 128.0);

  const double sm_frac = busy_sms / static_cast<double>(spec.num_sms);
  const double bw = spec.global_bw * sm_frac * std::sqrt(thread_eff);
  const double peak = spec.peak_flops * sm_frac * thread_eff;

  const double t_mem = static_cast<double>(bytes) / bw;
  const double t_cmp = static_cast<double>(flops) / peak;
  return spec.launch_overhead + std::max(t_mem, t_cmp);
}

}  // namespace convbound
