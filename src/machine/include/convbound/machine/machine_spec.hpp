// Parameterised description of a two-level-memory accelerator.
//
// This is the "machine" of the red-blue pebble game: a pool of processors
// (SMs), each with a small fast memory (shared memory, the red pebbles), in
// front of an unbounded slow memory (global memory, the blue pebbles).
// Presets approximate the GPUs used in the paper's evaluation; absolute
// numbers are irrelevant to the reproduction (we compare shapes), but the
// ratios bandwidth:flops and the shared-memory capacities drive where the
// I/O-bound/compute-bound crossovers fall.
#pragma once

#include <cstdint>
#include <string>

namespace convbound {

struct MachineSpec {
  std::string name;
  int num_sms = 1;
  /// Fast-memory capacity per SM in bytes (the paper's S_sm).
  std::int64_t shared_mem_per_sm = 96 * 1024;
  /// Off-chip (global) memory bandwidth in bytes/second.
  double global_bw = 500e9;
  /// Peak single-precision throughput in FLOP/s (FMA = 2 FLOPs).
  double peak_flops = 10e12;
  /// Fixed cost charged per kernel launch, seconds.
  double launch_overhead = 4e-6;
  int max_threads_per_block = 1024;
  int max_blocks_per_sm = 16;

  /// Fast-memory capacity per SM in float elements (the theory's S).
  std::int64_t smem_floats() const {
    return shared_mem_per_sm / static_cast<std::int64_t>(sizeof(float));
  }

  // Presets used in the paper's evaluation (Section 7).
  static MachineSpec gtx1080ti();  // Pascal
  static MachineSpec titan_x();    // Maxwell
  static MachineSpec v100();       // Volta
  static MachineSpec gfx906();     // AMD Vega 20 (MIOpen platform)
  /// Tiny machine for unit tests (2 SMs, 4 KiB shared memory).
  static MachineSpec test_machine();

  // Synthetic heterogeneous-fleet presets. The evaluation GPUs all sit
  // within ~2x of each other in flops:bandwidth ratio; these two are pushed
  // to opposite corners so a cluster mixing them has genuinely different
  // best devices per workload — bandwidth-bound layers want `hbm`,
  // compute-bound layers want `dense` (the fig13 arch-sensitivity effect,
  // made extreme on purpose). Both use the same modest SM count so they
  // fill at test/bench problem scales and occupancy effects cancel: the
  // contrast is purely bandwidth vs flops.
  static MachineSpec bandwidth_optimized();  // "hbm": fat HBM, modest ALUs
  static MachineSpec compute_optimized();    // "dense": fat ALUs, thin bus
};

/// Preset lookup by short name: 1080ti|titanx|v100|gfx906|hbm|dense|test.
/// Throws on an unknown name (the message lists the valid ones). One
/// registry shared by the CLI, the cluster layer, and the benches.
MachineSpec spec_by_name(const std::string& name);

/// Resource footprint of one kernel launch, used by the timing model.
struct LaunchConfig {
  std::int64_t num_blocks = 1;
  int threads_per_block = 128;
  /// Shared memory requested per block in bytes (the paper's S_b).
  std::int64_t smem_bytes_per_block = 0;
};

/// Aggregate counters of one (or several, via +=) simulated kernel launches.
struct LaunchStats {
  std::uint64_t bytes_loaded = 0;  ///< global -> shared traffic
  std::uint64_t bytes_stored = 0;  ///< shared -> global traffic
  std::uint64_t flops = 0;
  std::uint64_t num_blocks = 0;
  std::uint64_t num_launches = 0;
  double sim_time = 0;  ///< modelled execution time, seconds

  std::uint64_t bytes_total() const { return bytes_loaded + bytes_stored; }
  /// Achieved throughput under the timing model, in GFLOP/s.
  double gflops() const {
    return sim_time > 0 ? static_cast<double>(flops) / sim_time / 1e9 : 0.0;
  }
  LaunchStats& operator+=(const LaunchStats& o) {
    bytes_loaded += o.bytes_loaded;
    bytes_stored += o.bytes_stored;
    flops += o.flops;
    num_blocks += o.num_blocks;
    num_launches += o.num_launches;
    sim_time += o.sim_time;
    return *this;
  }
};

/// Deterministic roofline timing model.
///
/// Resources scale with how many SMs the launch keeps busy; a block only
/// fits on an SM when its shared-memory request fits, and an SM runs at full
/// tilt only with >= 128 resident threads. Wave quantisation (ceil division
/// of blocks into waves of concurrent blocks) is modelled because it is what
/// makes the paper's constraint S_b <= S_sm/2 (two blocks per SM) pay off.
double model_time(const MachineSpec& spec, const LaunchConfig& cfg,
                  std::uint64_t bytes, std::uint64_t flops);

}  // namespace convbound
