// Executable model of a two-level-memory accelerator.
//
// Kernels run real floating-point arithmetic on host threads (one pool
// worker drains blocks like an SM drains a grid), but may only touch global
// buffers through the BlockContext load/store helpers, which (a) enforce the
// per-block shared-memory capacity S_b and (b) count every off-chip byte.
// The counted traffic is exactly the Q of the red-blue pebble game, which is
// what the paper's bounds and dataflow designs reason about.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <functional>
#include <span>
#include <vector>

#include "convbound/machine/machine_spec.hpp"
#include "convbound/util/check.hpp"
#include "convbound/util/thread_pool.hpp"

namespace convbound {

/// Bump allocator standing in for one thread block's shared memory.
/// Allocation beyond the configured capacity throws — the simulator
/// physically enforces the tuning constraint x*y*z (+tiles) <= S_b.
class SharedMemory {
 public:
  explicit SharedMemory(std::size_t capacity_bytes)
      : buf_(capacity_bytes), used_(0) {}

  template <typename T>
  std::span<T> alloc(std::size_t count) {
    const std::size_t bytes = count * sizeof(T);
    const std::size_t aligned = (used_ + alignof(T) - 1) & ~(alignof(T) - 1);
    CB_CHECK_MSG(aligned + bytes <= buf_.size(),
                 "shared memory overflow: need " << (aligned + bytes)
                                                 << " B, have " << buf_.size()
                                                 << " B");
    used_ = aligned + bytes;
    return {reinterpret_cast<T*>(buf_.data() + aligned), count};
  }

  void reset() { used_ = 0; }
  std::size_t used() const { return used_; }
  std::size_t capacity() const { return buf_.size(); }

 private:
  std::vector<std::byte> buf_;
  std::size_t used_;
};

/// Per-block execution context handed to kernels.
class BlockContext {
 public:
  BlockContext(std::int64_t block_id, SharedMemory& smem)
      : block_id_(block_id), smem_(smem) {}

  std::int64_t block_id() const { return block_id_; }
  SharedMemory& smem() { return smem_; }

  /// Counted contiguous load: global -> shared (or registers).
  template <typename T>
  void load(const T* global_src, T* dst, std::size_t count) {
    std::memcpy(dst, global_src, count * sizeof(T));
    bytes_loaded_ += count * sizeof(T);
  }

  /// Counted strided gather load (e.g. a 2-D tile out of a row-major image).
  template <typename T>
  void load_strided(const T* global_src, std::int64_t src_stride, T* dst,
                    std::size_t rows, std::size_t cols) {
    for (std::size_t r = 0; r < rows; ++r) {
      std::memcpy(dst + r * cols, global_src + static_cast<std::int64_t>(r) *
                                                   src_stride,
                  cols * sizeof(T));
    }
    bytes_loaded_ += rows * cols * sizeof(T);
  }

  /// Counted single-element load (uncoalesced access path).
  template <typename T>
  T load_one(const T* global_src) {
    bytes_loaded_ += sizeof(T);
    return *global_src;
  }

  /// Minimum off-chip transaction granularity. Gather accesses with an
  /// element stride > 1 over-fetch up to one transaction per element, which
  /// is how the tensor layout (Table 1's CHW/CWH/HWC knob) becomes visible
  /// to the tuner.
  static constexpr std::size_t kTransactionBytes = 32;

  template <typename T>
  static std::size_t gather_cost_bytes(std::int64_t elem_stride,
                                       std::size_t count) {
    const std::size_t per_elem =
        elem_stride == 1
            ? sizeof(T)
            : std::min<std::size_t>(
                  static_cast<std::size_t>(elem_stride < 0 ? -elem_stride
                                                           : elem_stride) *
                      sizeof(T),
                  kTransactionBytes);
    return count * per_elem;
  }

  /// Counted strided gather: dst[i] = global_src[i*elem_stride].
  template <typename T>
  void load_gather(const T* global_src, std::int64_t elem_stride, T* dst,
                   std::size_t count) {
    for (std::size_t i = 0; i < count; ++i)
      dst[i] = global_src[static_cast<std::int64_t>(i) * elem_stride];
    bytes_loaded_ += gather_cost_bytes<T>(elem_stride, count);
  }

  /// Counted strided scatter: global_dst[i*elem_stride] = src[i].
  template <typename T>
  void store_scatter(T* global_dst, std::int64_t elem_stride, const T* src,
                     std::size_t count) {
    for (std::size_t i = 0; i < count; ++i)
      global_dst[static_cast<std::int64_t>(i) * elem_stride] = src[i];
    bytes_stored_ += gather_cost_bytes<T>(elem_stride, count);
  }

  /// Counted contiguous store: shared/registers -> global.
  template <typename T>
  void store(T* global_dst, const T* src, std::size_t count) {
    std::memcpy(global_dst, src, count * sizeof(T));
    bytes_stored_ += count * sizeof(T);
  }

  template <typename T>
  void store_one(T* global_dst, T value) {
    *global_dst = value;
    bytes_stored_ += sizeof(T);
  }

  /// Kernels self-report arithmetic (FMA = 2 FLOPs).
  void add_flops(std::uint64_t n) { flops_ += n; }

  /// Accounting-only transfer charges, for moves performed by surrounding
  /// scalar code (e.g. a type-converting store loop).
  void charge_load(std::size_t bytes) { bytes_loaded_ += bytes; }
  void charge_store(std::size_t bytes) { bytes_stored_ += bytes; }

  std::uint64_t bytes_loaded() const { return bytes_loaded_; }
  std::uint64_t bytes_stored() const { return bytes_stored_; }
  std::uint64_t flops() const { return flops_; }

 private:
  std::int64_t block_id_;
  SharedMemory& smem_;
  std::uint64_t bytes_loaded_ = 0;
  std::uint64_t bytes_stored_ = 0;
  std::uint64_t flops_ = 0;
};

/// How SimGpu::launch distributes blocks over host resources. The counted
/// traffic and the modelled time are identical in both modes — the knob only
/// decides which host threads do the arithmetic.
enum class ExecMode {
  /// Blocks striped across the thread pool (one worker per SM). Default;
  /// right for measuring a single kernel as fast as possible.
  kStriped,
  /// All blocks drained on the calling thread. Used by the batched tuning
  /// pipeline, where parallelism lives at the candidate level and a striped
  /// launch would oversubscribe the cores.
  kSerial,
};

/// Grid launcher: executes `kernel` once per block, in parallel across the
/// pool, and aggregates counters + modelled time into LaunchStats.
class SimGpu {
 public:
  explicit SimGpu(MachineSpec spec, ThreadPool* pool = nullptr,
                  ExecMode mode = ExecMode::kStriped)
      : spec_(std::move(spec)),
        pool_(pool != nullptr ? pool : &ThreadPool::global()),
        mode_(mode) {}

  const MachineSpec& spec() const { return spec_; }
  ExecMode exec_mode() const { return mode_; }
  ThreadPool* pool() const { return pool_; }

  using Kernel = std::function<void(BlockContext&)>;

  /// Runs the grid. Blocks must write disjoint global outputs (as on a real
  /// GPU); the launcher does not serialise global stores.
  LaunchStats launch(const LaunchConfig& cfg, const Kernel& kernel);

 private:
  MachineSpec spec_;
  ThreadPool* pool_;
  ExecMode mode_;
};

}  // namespace convbound
