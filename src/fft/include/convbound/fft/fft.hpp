// Radix-2 Cooley-Tukey FFT, built from scratch as the substrate for the
// FFT-based convolution baseline (the other indirect convolution family in
// cuDNN, alongside Winograd).
#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

namespace convbound {

using Complex = std::complex<double>;

/// Smallest power of two >= n.
std::int64_t next_pow2(std::int64_t n);

/// In-place iterative radix-2 FFT. data.size() must be a power of two.
/// inverse = true computes the unscaled inverse transform (divide by N
/// yourself, or use ifft()).
void fft_inplace(std::span<Complex> data, bool inverse = false);

/// Convenience scaled inverse.
void ifft_inplace(std::span<Complex> data);

/// 2-D FFT over a rows x cols row-major buffer (both dims powers of two).
void fft2_inplace(std::span<Complex> data, std::int64_t rows,
                  std::int64_t cols, bool inverse = false);

/// Full linear convolution of two real sequences via FFT (length
/// a.size() + b.size() - 1). Reference building block for tests.
std::vector<double> fft_linear_convolve(std::span<const double> a,
                                        std::span<const double> b);

/// Classical Hong-Kung I/O lower bound for an N-point FFT with fast memory
/// S: Q = Omega(N log N / log S).
double fft_lower_bound(std::int64_t n, double S);

}  // namespace convbound
