// FFT-based convolution on the simulated accelerator (overlap-save tiling,
// the cuDNN FFT_TILING algorithm family). Stride-1 only, like cuDNN's FFT
// path. Completes the paper's taxonomy of direct vs indirect methods with
// the second indirect family next to Winograd.
#pragma once

#include "convbound/machine/sim_gpu.hpp"
#include "convbound/tensor/conv_shape.hpp"
#include "convbound/tensor/tensor.hpp"

namespace convbound {

struct FftConvConfig {
  /// FFT tile edge (power of two). Valid outputs per tile edge are
  /// tile - k + 1 (overlap-save).
  std::int64_t tile = 32;
};

/// Three-phase FFT convolution: (1) kernel FFTs cached in global memory,
/// (2) input tile FFTs cached in global memory, (3) per (tile, C_out)
/// frequency-domain accumulation over C_in + inverse FFT + store.
/// Requires stride == 1; throws otherwise.
LaunchStats fft_conv_sim(SimGpu& gpu, const Tensor4<float>& input,
                         const Tensor4<float>& weights, const ConvShape& s,
                         Tensor4<float>& out, const FftConvConfig& cfg = {});

/// Analytic I/O estimate of the three-phase schedule (elements), for the
/// crossover analysis against direct/Winograd dataflow predictions.
double fft_conv_io_estimate(const ConvShape& s, std::int64_t tile);

}  // namespace convbound
