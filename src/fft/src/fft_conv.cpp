#include "convbound/fft/fft_conv.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "convbound/fft/fft.hpp"
#include "convbound/util/math.hpp"

namespace convbound {

namespace {

/// Per-block 2-D FFT over a T x T complex buffer held in shared memory,
/// reporting butterfly FLOPs (10 per butterfly: complex mul + two adds).
void fft2_block(BlockContext& ctx, std::span<Complex> buf, std::int64_t t,
                bool inverse) {
  fft2_inplace(buf, t, t, inverse);
  const double ops_per_line =
      10.0 * static_cast<double>(t) / 2.0 * std::log2(static_cast<double>(t));
  ctx.add_flops(static_cast<std::uint64_t>(2.0 * static_cast<double>(t) *
                                           ops_per_line));
}

/// Loads input(b, c, h0:h0+t, w0:w0+t) into a complex tile (zero-padded,
/// padding free of I/O charge), via a float staging row.
void load_tile_complex(BlockContext& ctx, const Tensor4<float>& in,
                       std::int64_t b, std::int64_t c, std::int64_t h0,
                       std::int64_t w0, std::int64_t t, Complex* dst,
                       float* stage) {
  const auto& st = in.strides();
  for (std::int64_t r = 0; r < t; ++r) {
    Complex* drow = dst + r * t;
    const std::int64_t ih = h0 + r;
    if (ih < 0 || ih >= in.h()) {
      std::fill(drow, drow + t, Complex{});
      continue;
    }
    const std::int64_t lo = std::max<std::int64_t>(0, -w0);
    const std::int64_t hi = std::min<std::int64_t>(t, in.w() - w0);
    std::fill(drow, drow + t, Complex{});
    if (lo >= hi) continue;
    const float* src = in.data() + in.index(b, c, ih, w0 + lo);
    if (st.w == 1) {
      ctx.load(src, stage, static_cast<std::size_t>(hi - lo));
    } else {
      ctx.load_gather(src, st.w, stage, static_cast<std::size_t>(hi - lo));
    }
    for (std::int64_t i = 0; i < hi - lo; ++i)
      drow[lo + i] = Complex(static_cast<double>(stage[i]), 0.0);
  }
}

}  // namespace

LaunchStats fft_conv_sim(SimGpu& gpu, const Tensor4<float>& input,
                         const Tensor4<float>& weights, const ConvShape& s,
                         Tensor4<float>& out, const FftConvConfig& cfg) {
  s.validate();
  CB_CHECK_MSG(s.groups == 1, "grouped convolution: use the tiled direct kernel");
  CB_CHECK_MSG(s.stride == 1, "FFT convolution requires stride 1");
  const std::int64_t t = next_pow2(std::max({cfg.tile, s.kh + 1, s.kw + 1}));
  CB_CHECK_MSG(t <= 128, "FFT tile above the supported maximum of 128");
  const std::int64_t t2 = t * t;
  const std::int64_t tout = t - std::max(s.kh, s.kw) + 1;
  const std::int64_t hout = s.hout(), wout = s.wout();
  const std::int64_t th = ceil_div(hout, tout), tw = ceil_div(wout, tout);
  const std::int64_t ntiles = th * tw;

  // Frequency-domain caches in global memory (complex<float> storage: what
  // a real implementation would keep, and what we charge I/O for).
  std::vector<std::complex<float>> fker(
      static_cast<std::size_t>(s.cout * s.cin * t2));
  std::vector<std::complex<float>> fin(
      static_cast<std::size_t>(s.cin * ntiles * t2));

  LaunchStats total;

  // ---- Phase 1: kernel FFTs (conjugated for correlation). ----
  {
    LaunchConfig lc;
    lc.num_blocks = s.cout;
    lc.threads_per_block = 128;
    lc.smem_bytes_per_block =
        t2 * static_cast<std::int64_t>(sizeof(Complex)) + 1024;
    total += gpu.launch(lc, [&](BlockContext& ctx) {
      const std::int64_t oc = ctx.block_id();
      auto buf = ctx.smem().alloc<Complex>(static_cast<std::size_t>(t2));
      auto stage = ctx.smem().alloc<float>(static_cast<std::size_t>(s.kw));
      for (std::int64_t c = 0; c < s.cin; ++c) {
        std::fill(buf.begin(), buf.end(), Complex{});
        for (std::int64_t fh = 0; fh < s.kh; ++fh) {
          ctx.load(weights.data() + weights.index(oc, c, fh, 0), stage.data(),
                   static_cast<std::size_t>(s.kw));
          for (std::int64_t fw = 0; fw < s.kw; ++fw)
            buf[static_cast<std::size_t>(fh * t + fw)] =
                Complex(static_cast<double>(stage[static_cast<std::size_t>(
                            fw)]),
                        0.0);
        }
        fft2_block(ctx, buf, t, /*inverse=*/false);
        std::complex<float>* dst =
            fker.data() + (oc * s.cin + c) * t2;
        for (std::int64_t i = 0; i < t2; ++i) {
          const Complex v = std::conj(buf[static_cast<std::size_t>(i)]);
          dst[i] = std::complex<float>(static_cast<float>(v.real()),
                                       static_cast<float>(v.imag()));
        }
        ctx.add_flops(static_cast<std::uint64_t>(t2));
        ctx.charge_store(static_cast<std::size_t>(2 * t2) * sizeof(float));
      }
    });
  }

  for (std::int64_t b = 0; b < s.batch; ++b) {
    // ---- Phase 2: input tile FFTs. ----
    {
      LaunchConfig lc;
      lc.num_blocks = s.cin * ntiles;
      lc.threads_per_block = 128;
      lc.smem_bytes_per_block =
          t2 * static_cast<std::int64_t>(sizeof(Complex)) +
          t * static_cast<std::int64_t>(sizeof(float)) + 1024;
      total += gpu.launch(lc, [&](BlockContext& ctx) {
        const std::int64_t tile = ctx.block_id() % ntiles;
        const std::int64_t c = ctx.block_id() / ntiles;
        const std::int64_t ti = tile / tw, tj = tile % tw;
        auto buf = ctx.smem().alloc<Complex>(static_cast<std::size_t>(t2));
        auto stage = ctx.smem().alloc<float>(static_cast<std::size_t>(t));
        load_tile_complex(ctx, input, b, c, ti * tout - s.pad,
                          tj * tout - s.pad, t, buf.data(), stage.data());
        fft2_block(ctx, buf, t, /*inverse=*/false);
        std::complex<float>* dst = fin.data() + (c * ntiles + tile) * t2;
        for (std::int64_t i = 0; i < t2; ++i)
          dst[i] = std::complex<float>(
              static_cast<float>(buf[static_cast<std::size_t>(i)].real()),
              static_cast<float>(buf[static_cast<std::size_t>(i)].imag()));
        ctx.charge_store(static_cast<std::size_t>(2 * t2) * sizeof(float));
      });
    }

    // ---- Phase 3: frequency-domain reduction over C_in + inverse FFT. ----
    {
      LaunchConfig lc;
      lc.num_blocks = s.cout * ntiles;
      lc.threads_per_block = 128;
      lc.smem_bytes_per_block =
          t2 * static_cast<std::int64_t>(sizeof(Complex) +
                                         2 * sizeof(std::complex<float>)) +
          1024;
      total += gpu.launch(lc, [&](BlockContext& ctx) {
        const std::int64_t tile = ctx.block_id() % ntiles;
        const std::int64_t oc = ctx.block_id() / ntiles;
        const std::int64_t ti = tile / tw, tj = tile % tw;
        auto acc = ctx.smem().alloc<Complex>(static_cast<std::size_t>(t2));
        auto line = ctx.smem().alloc<std::complex<float>>(
            static_cast<std::size_t>(t2));
        auto kline = ctx.smem().alloc<std::complex<float>>(
            static_cast<std::size_t>(t2));
        std::fill(acc.begin(), acc.end(), Complex{});
        for (std::int64_t c = 0; c < s.cin; ++c) {
          ctx.load(reinterpret_cast<const float*>(
                       fin.data() + (c * ntiles + tile) * t2),
                   reinterpret_cast<float*>(line.data()),
                   static_cast<std::size_t>(2 * t2));
          ctx.load(reinterpret_cast<const float*>(
                       fker.data() + (oc * s.cin + c) * t2),
                   reinterpret_cast<float*>(kline.data()),
                   static_cast<std::size_t>(2 * t2));
          for (std::int64_t i = 0; i < t2; ++i) {
            acc[static_cast<std::size_t>(i)] +=
                Complex(line[static_cast<std::size_t>(i)]) *
                Complex(kline[static_cast<std::size_t>(i)]);
          }
          ctx.add_flops(static_cast<std::uint64_t>(8 * t2));
        }
        fft2_block(ctx, acc, t, /*inverse=*/true);
        const double inv = 1.0 / static_cast<double>(t2);
        // Store the valid tout x tout corner, clipped to the output.
        const std::int64_t oh0 = ti * tout, ow0 = tj * tout;
        const std::int64_t re = std::min(tout, hout - oh0);
        const std::int64_t ce = std::min(tout, wout - ow0);
        for (std::int64_t r = 0; r < re; ++r) {
          float row[128];  // tout <= t <= 128
          for (std::int64_t cc = 0; cc < ce; ++cc)
            row[cc] = static_cast<float>(
                acc[static_cast<std::size_t>(r * t + cc)].real() * inv);
          ctx.store(out.data() + out.index(b, oc, oh0 + r, ow0), row,
                    static_cast<std::size_t>(ce));
        }
      });
    }
  }
  return total;
}

double fft_conv_io_estimate(const ConvShape& s, std::int64_t tile) {
  s.validate();
  const std::int64_t t = next_pow2(std::max(tile, s.kh + 1));
  const std::int64_t tout = t - std::max(s.kh, s.kw) + 1;
  const double ntiles =
      static_cast<double>(ceil_div(s.hout(), tout)) *
      static_cast<double>(ceil_div(s.wout(), tout));
  const double t2 = static_cast<double>(t * t);
  const double kernel_phase =
      static_cast<double>(s.cout * s.cin) * (s.kh * s.kw + 2.0 * t2);
  const double input_phase =
      static_cast<double>(s.cin) * ntiles * (t2 + 2.0 * t2);
  const double reduce_phase =
      static_cast<double>(s.cout) * ntiles *
      (static_cast<double>(s.cin) * 4.0 * t2 +
       static_cast<double>(tout * tout));
  return static_cast<double>(s.batch) *
         (input_phase + reduce_phase) + kernel_phase;
}

}  // namespace convbound
