#include "convbound/fft/fft.hpp"

#include <cmath>
#include <numbers>

#include "convbound/util/check.hpp"

namespace convbound {

std::int64_t next_pow2(std::int64_t n) {
  CB_CHECK(n > 0);
  std::int64_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_inplace(std::span<Complex> data, bool inverse) {
  const std::size_t n = data.size();
  CB_CHECK_MSG(n > 0 && (n & (n - 1)) == 0, "FFT size must be a power of 2");
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = 2 * std::numbers::pi / static_cast<double>(len) *
                       (inverse ? 1.0 : -1.0);
    const Complex wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

void ifft_inplace(std::span<Complex> data) {
  fft_inplace(data, /*inverse=*/true);
  const double inv = 1.0 / static_cast<double>(data.size());
  for (auto& v : data) v *= inv;
}

void fft2_inplace(std::span<Complex> data, std::int64_t rows,
                  std::int64_t cols, bool inverse) {
  CB_CHECK(static_cast<std::int64_t>(data.size()) == rows * cols);
  // Rows.
  for (std::int64_t r = 0; r < rows; ++r)
    fft_inplace(data.subspan(static_cast<std::size_t>(r * cols),
                             static_cast<std::size_t>(cols)),
                inverse);
  // Columns (via gather/scatter through a scratch line).
  std::vector<Complex> col(static_cast<std::size_t>(rows));
  for (std::int64_t c = 0; c < cols; ++c) {
    for (std::int64_t r = 0; r < rows; ++r)
      col[static_cast<std::size_t>(r)] =
          data[static_cast<std::size_t>(r * cols + c)];
    fft_inplace(col, inverse);
    for (std::int64_t r = 0; r < rows; ++r)
      data[static_cast<std::size_t>(r * cols + c)] =
          col[static_cast<std::size_t>(r)];
  }
}

std::vector<double> fft_linear_convolve(std::span<const double> a,
                                        std::span<const double> b) {
  CB_CHECK(!a.empty() && !b.empty());
  const std::int64_t out_len =
      static_cast<std::int64_t>(a.size() + b.size()) - 1;
  const std::int64_t n = next_pow2(out_len);
  std::vector<Complex> fa(static_cast<std::size_t>(n)),
      fb(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < a.size(); ++i) fa[i] = a[i];
  for (std::size_t i = 0; i < b.size(); ++i) fb[i] = b[i];
  fft_inplace(fa);
  fft_inplace(fb);
  for (std::int64_t i = 0; i < n; ++i)
    fa[static_cast<std::size_t>(i)] *= fb[static_cast<std::size_t>(i)];
  ifft_inplace(fa);
  std::vector<double> out(static_cast<std::size_t>(out_len));
  for (std::int64_t i = 0; i < out_len; ++i)
    out[static_cast<std::size_t>(i)] = fa[static_cast<std::size_t>(i)].real();
  return out;
}

double fft_lower_bound(std::int64_t n, double S) {
  CB_CHECK(n > 1 && S > 1);
  return static_cast<double>(n) * std::log2(static_cast<double>(n)) /
         std::log2(S);
}

}  // namespace convbound
