#include "convbound/gemm/gemm.hpp"

#include <algorithm>
#include <cstring>

#include "convbound/util/check.hpp"
#include "convbound/util/math.hpp"

namespace convbound {

void gemm_ref(const float* a, const float* b, float* c, std::int64_t m,
              std::int64_t k, std::int64_t n) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) c[i * n + j] = 0.0f;
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = a[i * k + p];
      for (std::int64_t j = 0; j < n; ++j) c[i * n + j] += av * b[p * n + j];
    }
  }
}

LaunchStats gemm_sim(SimGpu& gpu, const float* a, const float* b, float* c,
                     std::int64_t m, std::int64_t k, std::int64_t n,
                     const GemmConfig& cfg) {
  CB_CHECK(m > 0 && k > 0 && n > 0);
  const std::int64_t tm = std::min(cfg.tile_m, m);
  const std::int64_t tn = std::min(cfg.tile_n, n);
  const std::int64_t tk = std::min(cfg.tile_k, k);
  const std::int64_t grid_m = ceil_div(m, tm);
  const std::int64_t grid_n = ceil_div(n, tn);

  LaunchConfig lc;
  lc.num_blocks = grid_m * grid_n;
  lc.threads_per_block = cfg.threads_per_block;
  lc.smem_bytes_per_block =
      static_cast<std::int64_t>((tm * tk + tk * tn + tm * tn) * sizeof(float));

  return gpu.launch(lc, [&, tm, tn, tk](BlockContext& ctx) {
    const std::int64_t bm = (ctx.block_id() / grid_n) * tm;
    const std::int64_t bn = (ctx.block_id() % grid_n) * tn;
    const std::int64_t em = std::min(tm, m - bm);  // effective tile dims
    const std::int64_t en = std::min(tn, n - bn);

    auto at = ctx.smem().alloc<float>(static_cast<std::size_t>(tm * tk));
    auto bt = ctx.smem().alloc<float>(static_cast<std::size_t>(tk * tn));
    auto ct = ctx.smem().alloc<float>(static_cast<std::size_t>(tm * tn));
    std::fill(ct.begin(), ct.end(), 0.0f);

    for (std::int64_t p0 = 0; p0 < k; p0 += tk) {
      const std::int64_t ek = std::min(tk, k - p0);
      ctx.load_strided(a + bm * k + p0, k, at.data(),
                       static_cast<std::size_t>(em),
                       static_cast<std::size_t>(ek));
      ctx.load_strided(b + p0 * n + bn, n, bt.data(),
                       static_cast<std::size_t>(ek),
                       static_cast<std::size_t>(en));
      for (std::int64_t i = 0; i < em; ++i) {
        for (std::int64_t p = 0; p < ek; ++p) {
          const float av = at[static_cast<std::size_t>(i * ek + p)];
          float* crow = ct.data() + i * tn;
          const float* brow = bt.data() + p * en;
          for (std::int64_t j = 0; j < en; ++j) crow[j] += av * brow[j];
        }
      }
      ctx.add_flops(static_cast<std::uint64_t>(2 * em * en * ek));
    }
    for (std::int64_t i = 0; i < em; ++i) {
      ctx.store(c + (bm + i) * n + bn, ct.data() + i * tn,
                static_cast<std::size_t>(en));
    }
  });
}

}  // namespace convbound
