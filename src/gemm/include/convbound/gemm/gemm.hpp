// Blocked GEMM on the simulated accelerator.
//
// Substrate for the im2col convolution baseline (the path cuDNN most often
// picks for "direct" convolution, per the paper's Section 7) and for the
// batched element-wise stage of phased Winograd.
#pragma once

#include <cstdint>

#include "convbound/machine/sim_gpu.hpp"

namespace convbound {

/// Host reference: C(m x n) = A(m x k) * B(k x n), row-major, C overwritten.
void gemm_ref(const float* a, const float* b, float* c, std::int64_t m,
              std::int64_t k, std::int64_t n);

struct GemmConfig {
  std::int64_t tile_m = 64;
  std::int64_t tile_n = 64;
  std::int64_t tile_k = 32;
  int threads_per_block = 128;

  std::int64_t smem_floats() const {
    return tile_m * tile_k + tile_k * tile_n + tile_m * tile_n;
  }
};

/// Simulated blocked GEMM: each block stages A/B tiles through shared
/// memory, keeps its C tile on chip, and writes it exactly once.
LaunchStats gemm_sim(SimGpu& gpu, const float* a, const float* b, float* c,
                     std::int64_t m, std::int64_t k, std::int64_t n,
                     const GemmConfig& cfg = {});

}  // namespace convbound
