// Tenant / priority classes for the serving stack.
//
// A TenantClass names a traffic class and carries its SLO surface: a
// per-class latency budget (turned into an *effective deadline* at submit
// time — the class budget ANDed with any explicit request deadline) and a
// quota weight the admission controller uses to split queue capacity under
// overload. The first configured class is the catch-all default; requests
// with an empty or unknown tenant name land there, which keeps the whole
// layer invisible to single-tenant callers.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "convbound/serve/request.hpp"

namespace convbound {

struct TenantClass {
  std::string name;
  /// Submit-to-start latency budget, seconds. <= 0 means unbounded: the
  /// request's own deadline (if any) is the only deadline.
  double latency_budget_seconds = 0;
  /// Weighted-fair share of queue capacity under overload. Shares are
  /// weight / sum(weights); must be > 0.
  double quota_weight = 1.0;
};

/// Immutable resolved view of a class list. Built once at server start;
/// lookups are read-only afterwards, so it is safe to share across threads.
class TenantTable {
 public:
  /// An empty `classes` list yields a single anonymous default class with
  /// no budget and weight 1 (the pre-tenancy behaviour). Validates names
  /// unique/non-empty (beyond the default) and weights positive.
  explicit TenantTable(std::vector<TenantClass> classes = {});

  std::size_t size() const { return classes_.size(); }
  const TenantClass& cls(std::size_t i) const { return classes_[i]; }
  const std::vector<TenantClass>& classes() const { return classes_; }

  /// Class index for a tenant name; empty or unknown names resolve to the
  /// default class (index 0).
  std::size_t resolve(const std::string& tenant) const;

  /// The effective deadline of a request in class `i` enqueued at `now`:
  /// min(request deadline, now + class budget).
  ServeTimePoint effective_deadline(std::size_t i, ServeTimePoint now,
                                    ServeTimePoint request_deadline) const;

 private:
  std::vector<TenantClass> classes_;
};

}  // namespace convbound
