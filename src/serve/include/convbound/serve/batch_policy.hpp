// Bound-guided micro-batch bucket selection.
//
// Instead of a fixed batch-size constant, the scheduler's bucket per model
// is chosen from the bounds layer: every candidate bucket is scored with the
// analytic planner (Eq 20/22 dataflow I/O predictions + roofline + launch
// overhead — the same machinery behind bench/fig10_batched_conv), and the
// smallest bucket within `knee_tolerance` of the best feasible per-request
// time wins. That lands on the knee of the amortisation curve: larger
// buckets would add padding waste and batch latency for <2% predicted gain,
// and buckets whose whole-batch time exceeds the latency budget are
// rejected outright.
#pragma once

#include <cstdint>
#include <vector>

#include "convbound/machine/machine_spec.hpp"
#include "convbound/serve/model.hpp"

namespace convbound {

struct BatchPolicyOptions {
  /// Largest candidate bucket (candidates are 1, 2, 4, ... <= max_bucket).
  std::int64_t max_bucket = 8;
  /// Reject buckets whose predicted request latency exceeds this (seconds;
  /// 0 = unconstrained). A request can wait up to the scheduler's group
  /// formation window before its batch even starts, so the figure compared
  /// is max_delay_seconds + the predicted whole-batch time — a bucket whose
  /// batch alone fits the budget is still infeasible if the formation delay
  /// eats the headroom.
  double latency_budget_seconds = 20e-3;
  /// The scheduler's group-formation window (its max_delay, seconds); the
  /// server/cluster options plumb it in via engine_options().
  double max_delay_seconds = 0;
  /// Pick the smallest bucket within this fraction of the best feasible
  /// per-request time.
  double knee_tolerance = 0.02;
};

/// One scored candidate bucket, kept for reporting (CLI/bench tables).
struct BucketScore {
  std::int64_t bucket = 1;
  /// Sum over layers of the analytic plan's predicted time / bucket.
  double predicted_seconds_per_request = 0;
  /// Predicted whole-batch accelerator time.
  double predicted_batch_seconds = 0;
  /// Bounds-layer I/O prediction per request (elements).
  double predicted_io_elems_per_request = 0;
  bool feasible = true;
  bool chosen = false;
};

struct BucketChoice {
  std::int64_t bucket = 1;
  std::vector<BucketScore> scores;
};

BucketChoice choose_batch_bucket(const ServedModel& model,
                                 const MachineSpec& spec,
                                 const BatchPolicyOptions& opts = {});

/// Scores one specific bucket (used to report forced off-ladder buckets
/// with the same analytic predictions as the scored candidates).
BucketScore score_batch_bucket(const ServedModel& model,
                               const MachineSpec& spec, std::int64_t bucket,
                               const BatchPolicyOptions& opts = {});

}  // namespace convbound
