// Publishes a StatsSnapshot into an ObsRegistry's metrics registry, so the
// serving counters, gauges, and stage-latency histograms come out of
// `ObsRegistry::dump_metrics_text()` in Prometheus text exposition format.
//
// The snapshot is the source of truth (it already folds stats stripes and,
// for the cluster, the front-door overrides); this function is a pure
// renderer — it re-sets every sample, so repeated publishes of successive
// snapshots behave like a scrape of monotonically updated metrics.
#pragma once

#include <string>

#include "convbound/obs/trace.hpp"
#include "convbound/serve/stats.hpp"

namespace convbound {

/// Writes `s` into `reg`'s metrics registry under the metric names
/// convbound_requests_total, convbound_queue_depth, ...; `labels` is a
/// pre-rendered Prometheus label body without braces (e.g. `job="serve"`,
/// may be empty) that every sample carries. Per-class slices add a
/// `class="<name>"` label; per-shard gauges add `shard="<i>"`.
void publish_snapshot(ObsRegistry& reg, const std::string& labels,
                      const StatsSnapshot& s);

}  // namespace convbound
