// Dynamic micro-batching scheduler.
//
// One thread watches the queue's oldest request, then collects up to that
// model's bucket of same-model requests, waiting at most `max_delay` past
// the oldest arrival before dispatching a partial group — the classic
// max-batch/max-delay policy. Head-of-line batching is deliberate: the
// window is bounded by max_delay, after which the next model's group is
// formed immediately.
//
// Groups are formed as late as possible: the optional `wait_slot` hook
// blocks until an executor is free *before* the group is collected, so
// under saturation the backlog pools in the request queue (where it keeps
// batching up and counts toward backpressure) instead of fragmenting into
// partial groups queued behind busy workers.
#pragma once

#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "convbound/serve/queue.hpp"

namespace convbound {

class BatchScheduler {
 public:
  /// `bucket_of` maps a model name to its micro-batch bucket; `dispatch`
  /// receives each non-empty group (called on the scheduler thread — hand
  /// off to workers quickly).
  using BucketOf = std::function<std::int64_t(const std::string&)>;
  using Dispatch =
      std::function<void(std::vector<PendingRequest>, const std::string&)>;
  /// Blocks until an executor slot is free (may be empty).
  using WaitSlot = std::function<void()>;

  BatchScheduler(RequestQueue& queue, std::chrono::microseconds max_delay,
                 BucketOf bucket_of, Dispatch dispatch,
                 WaitSlot wait_slot = {})
      : queue_(queue),
        max_delay_(max_delay),
        bucket_of_(std::move(bucket_of)),
        dispatch_(std::move(dispatch)),
        wait_slot_(std::move(wait_slot)) {}
  ~BatchScheduler() { join(); }

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  void start();
  /// Returns once the queue is closed and drained. Close the queue first.
  void join();

 private:
  void loop();

  RequestQueue& queue_;
  std::chrono::microseconds max_delay_;
  BucketOf bucket_of_;
  Dispatch dispatch_;
  WaitSlot wait_slot_;
  std::thread thread_;
};

}  // namespace convbound
