// Dynamic micro-batching scheduler.
//
// One thread watches the queue's most urgent request (via the sharded
// facade's cross-shard head scan — approximate-global-EDF, exact within a
// shard), reserves a placement for it, then collects up to the placement's
// bucket of same-model requests, waiting at most `max_delay` past the
// oldest arrival before dispatching a partial group — the classic
// max-batch/max-delay policy. Head-of-line
// batching is deliberate: the window is bounded by max_delay, after which
// the next model's group is formed immediately.
//
// Groups are formed as late as possible: `reserve` blocks until an executor
// can accept the group *before* the group is collected, so under saturation
// the backlog pools in the request queue (where it keeps batching up and
// counts toward backpressure) instead of fragmenting into partial groups
// queued behind busy workers.
//
// Placement is what generalizes this scheduler across serving tiers: the
// single-device InferenceServer reserves one of its executor slots and
// returns its own bucket for the model, while the cluster layer's Router
// picks the device with the best predicted completion and returns *that
// device's* bucket (buckets are per-MachineSpec). The scheduler itself is
// placement-agnostic; it only promises to hand the reserved placement back
// unchanged in `dispatch`.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "convbound/serve/sharded_queue.hpp"

namespace convbound {

/// Where (and at what max group size) a group will execute. `device` is an
/// owner-defined token — always 0 for the single-device server, a fleet
/// index for the cluster.
struct Placement {
  std::int64_t bucket = 1;
  int device = 0;
  /// The reserver's predicted modelled execution time for a full bucket on
  /// the chosen device (the Router's cost-table entry; the server's warm
  /// plan replay). Recorded on the placement trace event so modelled vs.
  /// wall is inspectable per batch; 0 when the reserver has no prediction.
  double predicted_batch_seconds = 0;
};

class BatchScheduler {
 public:
  /// Blocks until an executor can take a group of `model`, and returns the
  /// placement (max group size + device token). Called on the scheduler
  /// thread before each group is collected.
  using Reserve = std::function<Placement(const std::string&)>;
  /// Receives each non-empty group with its reserved placement (called on
  /// the scheduler thread — hand off to workers quickly). The dispatcher
  /// owns the reservation and must release it even for empty groups.
  using Dispatch = std::function<void(std::vector<PendingRequest>,
                                      const std::string&, const Placement&)>;

  BatchScheduler(ShardedRequestQueue& queue,
                 std::chrono::microseconds max_delay, Reserve reserve,
                 Dispatch dispatch)
      : queue_(queue),
        max_delay_(max_delay),
        reserve_(std::move(reserve)),
        dispatch_(std::move(dispatch)) {}
  ~BatchScheduler() { join(); }

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  void start();
  /// Returns once the queue is closed and drained. Close the queue first.
  void join();

 private:
  void loop();

  ShardedRequestQueue& queue_;
  std::chrono::microseconds max_delay_;
  Reserve reserve_;
  Dispatch dispatch_;
  std::thread thread_;
};

}  // namespace convbound
