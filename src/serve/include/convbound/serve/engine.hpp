// The execution half of a serving node, shared by the single-device
// InferenceServer and the cluster layer's per-device nodes.
//
// A ServeEngine owns everything one *device* needs to execute micro-batch
// groups: the bound-guided bucket choice per model (choose_batch_bucket
// against this device's MachineSpec), the power-of-two session-ladder, one
// thread-safe Planner per model, a TuneCache, and the SessionPool of warm
// replicas. warm() is the only place planning, tuning, and workspace
// allocation happen; after it, execute_batch() plans nothing and allocates
// nothing (the per-device zero-plan-miss / zero-alloc invariant, asserted
// by tests/serve_test.cpp and tests/cluster_test.cpp).
//
// The engine records execution-side events (batches, expirations, failures)
// into an injected ServerStats sink; queue-side events (submissions,
// rejections) belong to whoever owns the queue in front of the engine.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "convbound/machine/machine_spec.hpp"
#include "convbound/plan/planner.hpp"
#include "convbound/serve/batch_policy.hpp"
#include "convbound/serve/model.hpp"
#include "convbound/serve/queue.hpp"
#include "convbound/serve/session_pool.hpp"
#include "convbound/serve/stats.hpp"
#include "convbound/util/mutex.hpp"
#include "convbound/util/thread_annotations.hpp"

namespace convbound {

struct EngineOptions {
  MachineSpec machine = MachineSpec::v100();
  /// Sessions per (model, bucket): how many batches of one model may be in
  /// flight concurrently on this device.
  int replicas = 1;
  /// 0 = bound-guided bucket per model (choose_batch_bucket); otherwise a
  /// fixed bucket for every model (1 = the unbatched baseline).
  std::int64_t force_bucket = 0;
  BatchPolicyOptions policy;
  /// Planning mode for the warm sessions (kTuned autotunes through the
  /// engine's thread-safe TuneCache).
  PlanMode plan_mode = PlanMode::kMeasured;
  int tune_budget = 16;
  std::uint64_t seed = 42;
  /// Fleet ordinal stamped on this engine's trace events (0 for the
  /// single-device server; the cluster sets each device's index).
  int device_ordinal = 0;
};

class ServeEngine {
 public:
  /// `models` and `stats` are unowned and must outlive the engine.
  ServeEngine(const std::map<std::string, ServedModel>& models,
              EngineOptions opts, ServerStats* stats);

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Chooses buckets and builds + warms every session (bucket ladder x
  /// replicas per model). The only place planning and tuning happen; safe
  /// to call concurrently with stats polling, call once.
  void warm();

  /// Runs one same-model group: drops expired requests, executes the rest
  /// at the smallest covering warm bucket, and completes every promise
  /// (kOk / kDeadlineExceeded / kError). Never throws.
  void execute_batch(std::vector<PendingRequest> group,
                     const std::string& model_name);

  const ServedModel& model(const std::string& name) const;
  /// The scored bucket candidates behind `name`'s chosen bucket.
  const BucketChoice& bucket_choice(const std::string& name) const;
  /// The scheduler's max group size for `name` (the chosen bucket).
  std::int64_t bucket_of(const std::string& name) const;
  /// Warm session buckets for `name`: powers of two up to the chosen
  /// bucket. A partial group executes at the smallest covering bucket, so
  /// padding waste is at most 2x instead of chosen-bucket x.
  const std::vector<std::int64_t>& exec_buckets(const std::string& name) const;

  /// Predicted whole-batch time of `name`'s chosen bucket on this device:
  /// the sum of the warm sessions' per-layer plan predictions (SimGpu
  /// dry-run measurements under the default kMeasured/kTuned planning,
  /// bounds-layer roofline under kAnalytic). Every plan() call here hits
  /// the warm memo, so this never plans after warm() — the cluster Router
  /// reads it once at start to build its cost table.
  double predicted_batch_seconds(const std::string& name);

  /// Fills the engine-side snapshot fields: plans_memoised,
  /// plan_misses_after_warm (0 until warm() completes), and the workspace
  /// counters.
  void fill_stats(StatsSnapshot& s) const;

  const EngineOptions& options() const { return opts_; }
  const MachineSpec& machine() const { return opts_.machine; }
  TuneCache& tune_cache() { return cache_; }

 private:
  /// Total memoised plans across the per-model planners.
  std::size_t plans_memoised() const;

  const std::map<std::string, ServedModel>* models_;
  EngineOptions opts_;
  ServerStats* stats_;
  /// The exact options warm() planned with; predicted_batch_seconds()
  /// replays them so its plan() calls are memo hits. Written only by
  /// warm() before any thread serves — unguarded by design, like
  /// buckets_/exec_buckets_ below (warm() must complete before
  /// execute_batch()/bucket_of() may be called; the lifecycle guards in
  /// InferenceServer::start()/ClusterDevice::start() enforce that).
  PlannerOptions plan_opts_;
  std::map<std::string, BucketChoice> buckets_;
  std::map<std::string, std::vector<std::int64_t>> exec_buckets_;
  TuneCache cache_;
  /// One shared thread-safe Planner per model (its memo keys include the
  /// batch size, so the whole bucket ladder plans each geometry once).
  /// Declared before sessions_: sessions hold pointers into this map.
  /// planners_mu_ guards the map itself (and warm_plans_/warmed_) so a
  /// stats() poll racing warm()'s emplaces is safe; the Planners inside
  /// are individually thread-safe — which is why warm() and
  /// predicted_batch_seconds() may legitimately take a Planner* out of
  /// the map under the lock and keep using it after release (map nodes
  /// are pointer-stable; only the map structure needs the lock).
  mutable Mutex planners_mu_;
  std::map<std::string, Planner> planners_ CB_GUARDED_BY(planners_mu_);
  SessionPool sessions_;
  std::size_t warm_plans_ CB_GUARDED_BY(planners_mu_) = 0;
  bool warmed_ CB_GUARDED_BY(planners_mu_) = false;
};

}  // namespace convbound
