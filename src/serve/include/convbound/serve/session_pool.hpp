// Pre-planned, warm execution sessions per (model, batch bucket).
//
// A ServeSession owns everything one in-flight micro-batch needs — a
// serial-mode SimGpu (batch-level parallelism lives in the server's worker
// pool, mirroring the batched measurement engine), a Planner with memoised
// per-layer plans at the bucket's batch size, and a Workspace arena warmed
// over every activation geometry — so steady-state serving performs zero
// planning and zero workspace allocation. The SessionPool hands sessions
// out under exclusive leases; workers block when every replica of a key is
// busy, which bounds memory instead of growing cold sessions under load.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "convbound/machine/sim_gpu.hpp"
#include "convbound/plan/executor.hpp"
#include "convbound/plan/planner.hpp"
#include "convbound/serve/model.hpp"
#include "convbound/util/mutex.hpp"
#include "convbound/util/thread_annotations.hpp"

namespace convbound {

class ServeSession {
 public:
  /// `model` and `planner` must outlive the session. The planner is shared
  /// (it is thread-safe and memoises per shape, so replicas and bucket
  /// ladders plan each geometry exactly once between them); the workspace
  /// is per-session, since leased tensors belong to one batch at a time.
  ServeSession(const ServedModel& model, std::int64_t bucket,
               const MachineSpec& spec, Planner& planner,
               const PlannerOptions& plan_opts);

  /// Plans every layer at the bucket's batch size and runs one throwaway
  /// batch so the workspace has seen every geometry. After warm(), serving
  /// this session allocates nothing and never plans.
  void warm();

  struct BatchResult {
    LaunchStats stats;          ///< aggregated over all layers
    Workspace::Lease output;    ///< final layer output, [bucket, ...]
  };

  /// Runs the pipeline on a [bucket, cin, hin, win] input.
  BatchResult run(const Tensor4<float>& batch_input);

  const ServedModel& model() const { return *model_; }
  std::int64_t bucket() const { return bucket_; }
  Planner& planner() { return *planner_; }
  Workspace& workspace() { return workspace_; }

 private:
  const ServedModel* model_;
  std::int64_t bucket_;
  SimGpu gpu_;
  PlannerOptions plan_opts_;
  Planner* planner_;
  Workspace workspace_;
  ConvExecutor executor_;
  std::vector<ConvPlan> plans_;
};

class SessionPool {
 public:
  SessionPool() = default;
  SessionPool(const SessionPool&) = delete;
  SessionPool& operator=(const SessionPool&) = delete;

  /// Exclusive session lease; returns the replica to the pool on
  /// destruction.
  class Guard {
   public:
    Guard(Guard&& o) noexcept : pool_(o.pool_), session_(o.session_) {
      o.pool_ = nullptr;
      o.session_ = nullptr;
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    Guard& operator=(Guard&&) = delete;
    ~Guard();

    ServeSession& operator*() { return *session_; }
    ServeSession* operator->() { return session_; }

   private:
    friend class SessionPool;
    Guard(SessionPool* pool, ServeSession* session)
        : pool_(pool), session_(session) {}
    SessionPool* pool_;
    ServeSession* session_;
  };

  /// Registers (and owns) one replica for (session->model(), bucket).
  void add(std::unique_ptr<ServeSession> session);

  /// Blocks until a replica of (model, bucket) is free. Throws Error when
  /// the key was never registered.
  Guard acquire(const std::string& model, std::int64_t bucket);

  // Aggregate observability (safe while sessions are serving: Workspace
  // counters are internally synchronized). Plan counts live on the shared
  // per-model planners, not here.
  std::size_t sessions() const;
  std::size_t workspace_buffers() const;
  std::uint64_t workspace_bytes() const;

 private:
  struct Replica {
    std::unique_ptr<ServeSession> session;
    bool busy = false;
  };

  void release(ServeSession* session) CB_EXCLUDES(mu_);

  mutable Mutex mu_;
  CondVar cv_;
  /// Key: model|bucket. The map (and every Replica's busy bit) is guarded;
  /// the *sessions themselves* are not — a leased session is owned
  /// exclusively by its Guard holder until release(), so the pool lock
  /// never serializes batch execution.
  std::map<std::string, std::vector<Replica>> replicas_ CB_GUARDED_BY(mu_);
};

}  // namespace convbound
