// In-process dynamic micro-batching inference server on the plan layer.
//
//   clients ──submit()──► ShardedRequestQueue ──► BatchScheduler ──► ThreadPool
//                         (N lock-striped        (same-model          workers
//                          shards, global         groups, bound-        │
//                          backpressure)          guided bucket,        ▼
//                                                 max-delay window)  ServeEngine
//                                                               (warm plans +
//                                                                workspaces per
//                                                                model×bucket)
//
// The execution half (bucket choice, planners, warm sessions, batch
// execution) lives in ServeEngine and is shared with the cluster layer
// (src/cluster), which runs one engine per heterogeneous device behind a
// bound-aware Router. This class is the single-device composition: one
// engine, one queue, one scheduler, `workers` executor slots.
//
// Planning, tuning, and workspace growth all happen in start(); the
// steady-state serving path performs zero planning and zero workspace
// allocation (asserted by tests/serve_test.cpp via the stats counters).
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "convbound/machine/machine_spec.hpp"
#include "convbound/plan/planner.hpp"
#include "convbound/serve/batch_policy.hpp"
#include "convbound/serve/engine.hpp"
#include "convbound/serve/model.hpp"
#include "convbound/serve/scheduler.hpp"
#include "convbound/serve/sharded_queue.hpp"
#include "convbound/serve/stats.hpp"
#include "convbound/serve/tenancy.hpp"
#include "convbound/util/mutex.hpp"
#include "convbound/util/thread_annotations.hpp"
#include "convbound/util/thread_pool.hpp"

namespace convbound {

struct ServerOptions {
  MachineSpec machine = MachineSpec::v100();
  /// Batch-executor worker threads.
  int workers = 2;
  /// Sessions per (model, bucket): how many batches of one model may be in
  /// flight concurrently.
  int replicas = 1;
  /// Queue capacity; submits beyond it are rejected (backpressure).
  std::size_t max_queue = 256;
  /// Ingest shards in the front door (sub-queues + stats stripes). Submit
  /// is lock-striped across them; capacity/quota stay global. 1 recovers
  /// single-queue exact-EDF ordering.
  std::size_t shards = 4;
  /// How long the scheduler holds a partial group past its oldest arrival.
  std::chrono::microseconds max_delay{2000};
  /// 0 = bound-guided bucket per model (choose_batch_bucket); otherwise a
  /// fixed bucket for every model (1 = the unbatched baseline).
  std::int64_t force_bucket = 0;
  BatchPolicyOptions policy;
  /// Planning mode for the warm sessions (kTuned autotunes through the
  /// shared thread-safe TuneCache).
  PlanMode plan_mode = PlanMode::kMeasured;
  int tune_budget = 16;
  std::uint64_t seed = 42;
  /// Tenant / priority classes (first = catch-all default). Empty keeps the
  /// pre-tenancy single-class behaviour: FIFO-equivalent EDF, no quotas.
  std::vector<TenantClass> classes;
  /// Queue-fill fraction at which weighted-fair per-class shares start
  /// binding; below it admission is work-conserving.
  double admission_congestion = 0.5;

  /// The execution-side subset, as the engine wants it.
  EngineOptions engine_options() const {
    EngineOptions e;
    e.machine = machine;
    e.replicas = replicas;
    e.force_bucket = force_bucket;
    e.policy = policy;
    // Bucket feasibility must account for the scheduler's group-formation
    // window, which lives here, not in the policy options the caller set.
    e.policy.max_delay_seconds =
        std::chrono::duration<double>(max_delay).count();
    e.plan_mode = plan_mode;
    e.tune_budget = tune_budget;
    e.seed = seed;
    return e;
  }
};

class InferenceServer {
 public:
  InferenceServer(std::vector<ServedModel> models, ServerOptions opts);
  /// Stops and drains if still running.
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Chooses buckets, builds + warms every session (the only place planning
  /// and tuning happen), and starts the scheduler and workers. Checks
  /// (throws convbound::Error) on a second start() or a start() after
  /// stop(): the warm sessions are torn down by stop() and cannot restart.
  void start();

  /// Closes the queue, lets the scheduler drain it, and joins everything.
  /// Queued-but-unserved requests complete with kShutdown. Idempotent.
  void stop();

  /// Thread-safe; never blocks. The future completes with kRejected when
  /// the queue is full, kQuotaExceeded when the request's class is over its
  /// weighted-fair share under overload, and kShutdown after stop() (the
  /// queue's own closed state decides shutdown races, so a submit that
  /// loses to a concurrent stop() always resolves — never hangs). Requests
  /// may be queued before start(); they are served once the server starts.
  std::future<InferResponse> submit(InferRequest request);

  StatsSnapshot stats() const;

  const ServedModel& model(const std::string& name) const;
  /// The scored bucket candidates behind `name`'s chosen bucket.
  const BucketChoice& bucket_choice(const std::string& name) const {
    return engine_.bucket_choice(name);
  }
  /// The scheduler's max group size for `name` (the chosen bucket).
  std::int64_t bucket_of(const std::string& name) const {
    return engine_.bucket_of(name);
  }
  /// Warm session buckets for `name`: powers of two up to the chosen
  /// bucket.
  const std::vector<std::int64_t>& exec_buckets(
      const std::string& name) const {
    return engine_.exec_buckets(name);
  }
  const ServerOptions& options() const { return opts_; }
  TuneCache& tune_cache() { return engine_.tune_cache(); }

 private:
  /// Executor-slot gate: the scheduler blocks here before forming a group,
  /// so batching happens as late as possible and saturation backlog pools
  /// in the request queue.
  void wait_for_slot();
  void release_slot();

  ServerOptions opts_;
  std::map<std::string, ServedModel> models_;
  TenantTable tenants_;
  /// Predicted full-bucket batch seconds per model, read from the warm
  /// engine once in start() so the reserve path never re-plans; feeds the
  /// placement trace events (modelled vs. wall per batch).
  std::map<std::string, double> predicted_;
  /// One stripe per ingest shard + the exec stripe the engine records
  /// into; snapshot() folds them all.
  StripedServerStats stats_;
  ServeEngine engine_;
  ShardedRequestQueue queue_;
  std::unique_ptr<BatchScheduler> scheduler_;
  std::unique_ptr<ThreadPool> workers_;
  Mutex slots_mu_;
  CondVar slots_cv_;
  int free_slots_ CB_GUARDED_BY(slots_mu_) = 0;
  /// Lifecycle bits: atomics (not slots_mu_) because submit() reads
  /// stopped_ lock-free on the hot path and stop() must be idempotent
  /// from any thread. seq_cst: stopped_/started_ order the visibility of
  /// scheduler_/workers_ teardown and router-style start handshakes.
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
};

}  // namespace convbound
