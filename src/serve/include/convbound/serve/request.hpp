// Request/response types of the inference server.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "convbound/tensor/tensor.hpp"

namespace convbound {

/// The serving clock. Wall time (latencies, deadlines, batch windows) is
/// host time; the modelled accelerator time of a batch is reported
/// separately in the response/stats.
using ServeClock = std::chrono::steady_clock;
using ServeTimePoint = ServeClock::time_point;

/// One inference request: a single-image input for `model` (geometry must
/// match the model's input layer). Requests whose deadline passes before
/// execution starts are completed with kDeadlineExceeded instead of run.
struct InferRequest {
  std::string model;
  Tensor4<float> input;  ///< [1, cin, hin, win], NCHW
  ServeTimePoint deadline = ServeTimePoint::max();
  /// Tenant / priority class name. Resolved against the server's configured
  /// TenantClass table at submit time; empty or unknown names fall into the
  /// catch-all default class, so single-tenant callers never set it (the
  /// default initializer keeps shorter aggregate inits warning-clean).
  std::string tenant{};
};

enum class ServeStatus {
  kOk,
  kRejected,          ///< queue full on submit (backpressure)
  kQuotaExceeded,     ///< class over its weighted-fair share under overload
  kDeadlineExceeded,  ///< deadline passed while queued
  kShutdown,          ///< server stopped before the request ran
  kError,             ///< execution failed; see InferResponse::error
};

inline const char* to_string(ServeStatus s) {
  switch (s) {
    case ServeStatus::kOk: return "ok";
    case ServeStatus::kRejected: return "rejected";
    case ServeStatus::kQuotaExceeded: return "quota-exceeded";
    case ServeStatus::kDeadlineExceeded: return "deadline-exceeded";
    case ServeStatus::kShutdown: return "shutdown";
    case ServeStatus::kError: return "error";
  }
  return "?";
}

struct InferResponse {
  ServeStatus status = ServeStatus::kError;
  /// Final-layer output for this request's lane, [1, cout, hout, wout].
  /// Valid only when status == kOk.
  Tensor4<float> output;
  /// Submit-to-completion wall latency, seconds.
  double latency_seconds = 0;
  /// How many live requests shared this request's micro-batch.
  int batch_size = 0;
  /// Modelled accelerator time of the whole micro-batch, seconds.
  double batch_sim_seconds = 0;
  std::string error;
};

}  // namespace convbound
