// Serving observability: counters, latency telemetry, batch-size
// histogram. ServerStats guards one accumulator with one mutex; the sharded
// front door gives each ingest shard its own ServerStats *stripe*
// (StripedServerStats below) so submit-path recording never contends on a
// global stats lock — stripes are folded bucket-wise at snapshot time via
// merge_snapshots, which the exact mergeable LatencyHistogram makes
// lossless.
//
// Latencies live in a log-bucketed LatencyHistogram (fixed geometric
// ladder, 5% relative resolution from 1µs to 100s — see
// convbound/util/latency_histogram.hpp): O(1) record, bounded memory for a
// long-running server, and — the property the cluster layer needs — exact
// merge by bucket-wise addition, so fleet percentiles computed after the
// merge are true percentiles of the combined request population (within one
// bucket), not a weighted average of per-device percentiles. Counters,
// mean, and max stay exact throughout.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "convbound/serve/request.hpp"
#include "convbound/util/latency_histogram.hpp"
#include "convbound/util/mutex.hpp"
#include "convbound/util/thread_annotations.hpp"

namespace convbound {

/// Per-tenant-class slice of the counters. Populated only for requests
/// that carry a resolved class name; a single-tenant server's snapshot has
/// an empty `classes` map, exactly as before tenancy existed.
struct ClassSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;           ///< backpressure (kRejected: queue full)
  std::uint64_t quota_rejected = 0;     ///< weighted-fair admission (kQuotaExceeded)
  std::uint64_t shutdown_rejected = 0;  ///< submit raced server stop (kShutdown)
  std::uint64_t expired = 0;            ///< effective deadline passed (kDeadlineExceeded)
  LatencyHistogram latency;
  double latency_p50 = 0;
  double latency_p99 = 0;
  double latency_mean = 0;
  double latency_max = 0;
  /// Per-stage decomposition of the completed requests' latency (same
  /// stage boundaries as StatsSnapshot's; see there).
  LatencyHistogram queue_wait;
  LatencyHistogram batch_delay;
  LatencyHistogram exec;
  double queue_wait_p99 = 0;
  double batch_delay_p99 = 0;
  double exec_p99 = 0;
};

/// Point-in-time copy of the server's counters with derived quantities.
struct StatsSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;           ///< backpressure (queue full)
  std::uint64_t quota_rejected = 0;     ///< over-share class under overload
  std::uint64_t shutdown_rejected = 0;  ///< submit raced server stop
  std::uint64_t expired = 0;            ///< deadline passed while queued
  std::uint64_t failed = 0;             ///< execution errors
  std::uint64_t batches = 0;

  double wall_seconds = 0;         ///< since mark_start()
  double throughput_rps = 0;       ///< completed / wall_seconds
  /// Total modelled accelerator seconds across batches, and the request
  /// rate one modelled accelerator sustains — the simulator-side figure of
  /// merit (wall numbers measure this host, modelled numbers the machine
  /// model the paper reasons about).
  double sim_seconds = 0;
  double modelled_rps = 0;

  /// Submit-to-completion wall latencies of completed requests: the full
  /// mergeable histogram plus the derived quantities every consumer reads.
  /// The percentiles are histogram-derived (≤5% bucket error); max and
  /// mean are exact.
  LatencyHistogram latency;
  double latency_p50 = 0;
  double latency_p95 = 0;
  double latency_p99 = 0;
  double latency_max = 0;
  double latency_mean = 0;

  /// Stage decomposition of the same completed requests, recorded from the
  /// same timestamps the end-to-end latency uses, so the stages satisfy an
  /// exact accounting identity per request:
  ///   queue_wait (enqueue -> collect) + batch_delay (collect -> exec
  ///   start) + exec (exec start -> completion) == end-to-end latency
  /// and therefore sum(queue_wait) + sum(batch_delay) + sum(exec) ==
  /// sum(latency) over any snapshot (up to float rounding; pinned by test).
  LatencyHistogram queue_wait;
  LatencyHistogram batch_delay;
  LatencyHistogram exec;
  double queue_wait_p50 = 0, queue_wait_p99 = 0, queue_wait_mean = 0;
  double batch_delay_p50 = 0, batch_delay_p99 = 0, batch_delay_mean = 0;
  double exec_p50 = 0, exec_p99 = 0, exec_mean = 0;

  /// Live micro-batch size -> batch count.
  std::vector<std::pair<int, std::uint64_t>> batch_histogram;
  double mean_batch_size = 0;

  /// Per-class slices keyed by resolved class name. Empty when the server
  /// has no tenant classes configured.
  std::map<std::string, ClassSnapshot> classes;

  /// Front-door depth at snapshot time. A fleet merge SUMS the parts'
  /// depths (total requests queued across devices); only the high-water
  /// mark below takes the max.
  std::size_t queue_depth = 0;
  std::size_t max_queue_depth = 0;  ///< high-water mark

  /// Per-ingest-shard depths (at snapshot time) and high-water marks,
  /// filled by the server/cluster from the sharded queue; empty for
  /// consumers that never set them. Merged element-wise (sum).
  std::vector<std::size_t> shard_depths;
  std::vector<std::size_t> shard_max_depths;
  /// max/mean over shard_max_depths: 1.0 = perfectly even ingest, higher =
  /// skew from the hash(model)+class shard rule. 0 when unset.
  double shard_imbalance = 0;

  // Session-pool state (filled by the server).
  std::size_t plans_memoised = 0;
  std::uint64_t plan_misses_after_warm = 0;
  std::size_t workspace_buffers = 0;
  std::uint64_t workspace_bytes = 0;
};

/// Fleet-wide view of per-device snapshots, treating the parts as devices
/// running *in parallel* (the cluster layer's semantics):
///   - counters, sim_seconds, histograms, and memo/workspace sizes sum;
///   - wall_seconds and queue depths take the max;
///   - modelled_rps = total completed / max part sim_seconds — the
///     makespan figure: at saturation the busiest device's modelled time is
///     when the fleet finishes;
///   - latency percentiles are recomputed from the bucket-wise merge of the
///     parts' LatencyHistograms, so the fleet p50/p95/p99 are exact
///     percentiles of the combined population (within one 5% bucket);
///     max/mean stay exact.
StatsSnapshot merge_snapshots(const std::vector<StatsSnapshot>& parts);

/// max/mean of the per-shard values (the shard-imbalance ratio); 0 when
/// the vector is empty or all-zero.
double shard_imbalance_ratio(const std::vector<std::size_t>& shard_values);

class ServerStats {
 public:
  /// Per-request stage durations (seconds), computed by the executor from
  /// the request's enqueue/collect/exec-start/done timestamps.
  struct StageLatencies {
    double queue_wait = 0;
    double batch_delay = 0;
    double exec = 0;
  };

  void mark_start();

  /// The `cls` parameters name the request's resolved tenant class; ""
  /// (the default) skips per-class attribution, so single-tenant callers
  /// pay nothing and see no class map.
  void record_submitted(std::size_t queue_depth_after,
                        const std::string& cls = {});
  void record_rejected(const std::string& cls = {});
  void record_quota_rejected(const std::string& cls = {});
  /// A submit that lost the race with server stop (ServeStatus::kShutdown).
  void record_shutdown_rejected(const std::string& cls = {});
  void record_expired(std::size_t n, const std::string& cls = {});
  void record_failed(std::size_t n);
  /// One executed micro-batch: group size, modelled batch time, and the
  /// per-request wall latencies. `classes`, when non-empty, runs parallel
  /// to `latencies` and attributes each completion to its tenant class;
  /// `stages`, when non-empty, runs parallel to `latencies` and feeds the
  /// per-stage decomposition histograms.
  void record_batch(std::size_t group, double sim_seconds,
                    const std::vector<double>& latencies,
                    const std::vector<std::string>& classes = {},
                    const std::vector<StageLatencies>& stages = {});

  /// Derived values only; the session-pool and queue-depth fields are the
  /// server's to fill.
  StatsSnapshot snapshot() const;

 private:
  /// Per-class accumulator (histogram + counters); caller holds mu_.
  struct ClassCounters {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t quota_rejected = 0;
    std::uint64_t shutdown_rejected = 0;
    std::uint64_t expired = 0;
    LatencyHistogram latency;
    LatencyHistogram queue_wait;
    LatencyHistogram batch_delay;
    LatencyHistogram exec;
  };
  ClassCounters& class_counters(const std::string& cls) CB_REQUIRES(mu_);

  mutable Mutex mu_;
  ServeTimePoint start_ CB_GUARDED_BY(mu_){};
  std::uint64_t submitted_ CB_GUARDED_BY(mu_) = 0;
  std::uint64_t completed_ CB_GUARDED_BY(mu_) = 0;
  std::uint64_t rejected_ CB_GUARDED_BY(mu_) = 0;
  std::uint64_t quota_rejected_ CB_GUARDED_BY(mu_) = 0;
  std::uint64_t shutdown_rejected_ CB_GUARDED_BY(mu_) = 0;
  std::uint64_t expired_ CB_GUARDED_BY(mu_) = 0;
  std::uint64_t failed_ CB_GUARDED_BY(mu_) = 0;
  std::uint64_t batches_ CB_GUARDED_BY(mu_) = 0;
  double sim_seconds_ CB_GUARDED_BY(mu_) = 0;
  /// Every completion, O(1) per record.
  LatencyHistogram latency_ CB_GUARDED_BY(mu_);
  LatencyHistogram queue_wait_ CB_GUARDED_BY(mu_);
  LatencyHistogram batch_delay_ CB_GUARDED_BY(mu_);
  LatencyHistogram exec_ CB_GUARDED_BY(mu_);
  std::map<int, std::uint64_t> histogram_ CB_GUARDED_BY(mu_);
  std::map<std::string, ClassCounters> classes_ CB_GUARDED_BY(mu_);
  std::size_t max_queue_depth_ CB_GUARDED_BY(mu_) = 0;
};

/// Lock-striped server stats for the sharded front door: one ServerStats
/// stripe per ingest shard (submit-path recording goes to the stripe of
/// the shard the request hashed to, so producers on different shards never
/// share a stats mutex) plus one dedicated *exec* stripe the batch
/// executor records completions into (the executor is one thread; giving
/// it its own stripe keeps it off every producer's lock).
///
/// snapshot() folds ALL stripes through merge_snapshots — counters sum,
/// latency histograms add bucket-wise (exact), wall time takes the max,
/// modelled rps is recomputed from total completions over the makespan.
/// Reading any single stripe as if it were the whole server (the PR 6
/// front-door override bug this replaces) undercounts by whatever landed
/// on the other stripes; the skewed-stripe regression test pins this.
class StripedServerStats {
 public:
  /// `stripes` submit stripes (>= 1, clamped) + the exec stripe.
  explicit StripedServerStats(std::size_t stripes);
  StripedServerStats(const StripedServerStats&) = delete;
  StripedServerStats& operator=(const StripedServerStats&) = delete;

  void mark_start();

  /// Submit-path stripe `i` (callers pass the ingest shard index; values
  /// >= num_stripes() wrap).
  ServerStats& stripe(std::size_t i) { return *stripes_[i % num_stripes()]; }
  /// The executor's dedicated stripe (batches, failures, expiry).
  ServerStats& exec_stripe() { return *stripes_.back(); }
  /// Submit stripes only (excludes the exec stripe).
  std::size_t num_stripes() const { return stripes_.size() - 1; }

  /// Fold of every stripe (submit + exec); see class comment.
  StatsSnapshot snapshot() const;

 private:
  /// [0, n) submit stripes, [n] exec stripe. The vector itself is
  /// immutable after construction (no facade lock, by design — that is
  /// the whole point of striping); each stripe locks its own mu_.
  std::vector<std::unique_ptr<ServerStats>> stripes_;
};

}  // namespace convbound
