// Serving observability: counters, latency percentiles, batch-size
// histogram. One mutex guards everything — recording happens per batch and
// per rejection, far off any per-element hot path.
//
// Latencies are kept in a fixed-size uniform reservoir (algorithm R), so a
// long-running server's memory and snapshot cost stay bounded; below the
// reservoir capacity the percentiles are exact, above it they are an
// unbiased sample estimate. Counters and the mean stay exact throughout.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "convbound/serve/request.hpp"
#include "convbound/util/rng.hpp"

namespace convbound {

/// Point-in-time copy of the server's counters with derived quantities.
struct StatsSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;   ///< backpressure (queue full)
  std::uint64_t expired = 0;    ///< deadline passed while queued
  std::uint64_t failed = 0;     ///< execution errors
  std::uint64_t batches = 0;

  double wall_seconds = 0;         ///< since mark_start()
  double throughput_rps = 0;       ///< completed / wall_seconds
  /// Total modelled accelerator seconds across batches, and the request
  /// rate one modelled accelerator sustains — the simulator-side figure of
  /// merit (wall numbers measure this host, modelled numbers the machine
  /// model the paper reasons about).
  double sim_seconds = 0;
  double modelled_rps = 0;

  // Submit-to-completion wall latency over completed requests, seconds.
  double latency_p50 = 0;
  double latency_p95 = 0;
  double latency_p99 = 0;
  double latency_max = 0;
  double latency_mean = 0;

  /// Live micro-batch size -> batch count.
  std::vector<std::pair<int, std::uint64_t>> batch_histogram;
  double mean_batch_size = 0;

  std::size_t queue_depth = 0;      ///< at snapshot time
  std::size_t max_queue_depth = 0;  ///< high-water mark

  // Session-pool state (filled by the server).
  std::size_t plans_memoised = 0;
  std::uint64_t plan_misses_after_warm = 0;
  std::size_t workspace_buffers = 0;
  std::uint64_t workspace_bytes = 0;
};

/// Fleet-wide view of per-device snapshots, treating the parts as devices
/// running *in parallel* (the cluster layer's semantics):
///   - counters, sim_seconds, histograms, and memo/workspace sizes sum;
///   - wall_seconds and queue depths take the max;
///   - modelled_rps = total completed / max part sim_seconds — the
///     makespan figure: at saturation the busiest device's modelled time is
///     when the fleet finishes;
///   - latency percentiles are completed-weighted means of the parts'
///     percentiles (an approximation — exact fleet percentiles would need
///     the raw reservoirs), max/mean are exact.
StatsSnapshot merge_snapshots(const std::vector<StatsSnapshot>& parts);

class ServerStats {
 public:
  void mark_start();

  void record_submitted(std::size_t queue_depth_after);
  void record_rejected();
  void record_expired(std::size_t n);
  void record_failed(std::size_t n);
  /// One executed micro-batch: group size, modelled batch time, and the
  /// per-request wall latencies.
  void record_batch(std::size_t group, double sim_seconds,
                    const std::vector<double>& latencies);

  /// Derived values only; the session-pool and queue-depth fields are the
  /// server's to fill.
  StatsSnapshot snapshot() const;

  /// Latency-reservoir capacity (doubles retained at most).
  static constexpr std::size_t kLatencyReservoir = 1 << 16;

 private:
  mutable std::mutex mu_;
  ServeTimePoint start_{};
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t expired_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t batches_ = 0;
  double sim_seconds_ = 0;
  double latency_sum_ = 0;
  double latency_max_ = 0;
  std::vector<double> latencies_;  ///< uniform reservoir over completions
  Rng reservoir_rng_{0x5e28e};
  std::map<int, std::uint64_t> histogram_;
  std::size_t max_queue_depth_ = 0;
};

}  // namespace convbound
