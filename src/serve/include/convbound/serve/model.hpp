// A deployable model: a chained conv pipeline with fixed weights.
//
// The zoo inventories (src/nets/models.hpp) list conv layers with
// independent geometries — real networks glue them together with pooling /
// activation layers that the paper (and this library) does not accelerate.
// Serving needs an end-to-end *function* of the request input, so a
// ServedModel chains the conv layers with a deterministic host-side adapter
// (nearest-neighbour resize + channel modulo + softsign) standing in for
// that glue. The adapter is part of the served function — the single-thread
// reference pipeline applies the identical chain — but, like the glue
// layers in run_model, it is host work and not counted as accelerator I/O.
//
// Because every conv algorithm processes batch lanes independently, the
// served output of a request is the same whichever micro-batch it rides in;
// that is what makes dynamic batching transparent to clients.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "convbound/nets/models.hpp"
#include "convbound/serve/request.hpp"
#include "convbound/tensor/tensor.hpp"

namespace convbound {

struct ServedModelOptions {
  /// Keep only the first N conv layers (0 = all). Smoke/CI scale.
  std::size_t max_layers = 0;
  /// Cap channel counts (0 = uncapped). Rounded to a multiple of the
  /// layer's group count; depthwise layers scale groups along.
  std::int64_t channel_cap = 0;
  /// Cap input H/W (0 = uncapped); kernel/stride/pad are kept.
  std::int64_t spatial_cap = 0;
  /// Seed for the model's fixed weights.
  std::uint64_t weight_seed = 42;
};

struct ServedModel {
  std::string name;
  /// Batch-1 layer geometries; the session plans them at its bucket size.
  std::vector<ConvLayer> layers;
  /// Fixed per-layer weights, [cout, cin/groups, kh, kw]. Generated once at
  /// construction, shared by every batch bucket and session replica.
  std::vector<Tensor4<float>> weights;

  std::int64_t input_c() const { return layers.front().shape.cin; }
  std::int64_t input_h() const { return layers.front().shape.hin; }
  std::int64_t input_w() const { return layers.front().shape.win; }
};

/// Builds a servable pipeline from a layer inventory, applying the scaling
/// caps and generating the fixed weights.
ServedModel make_served_model(const std::string& name,
                              std::vector<ConvLayer> layers,
                              const ServedModelOptions& opts = {});

/// `shape` at a different batch size (the micro-batch bucket).
ConvShape shape_at_batch(ConvShape shape, std::int64_t batch);

/// The inter-layer glue: out(n,c,h,w) = softsign(prev(n, c % C', map(h),
/// map(w))) with nearest-neighbour spatial mapping. Bounded output (softsign
/// is 1-Lipschitz into (-1,1)), so chained pipelines stay numerically tame
/// and algorithm-level FP differences do not amplify layer over layer.
/// `out` supplies the target geometry (any batch; lanes are independent).
void adapt_activation(const Tensor4<float>& prev, Tensor4<float>& out);

/// Deterministic single-image request input, [1, cin, hin, win].
Tensor4<float> make_request_input(const ServedModel& model,
                                  std::uint64_t seed);

/// Indexes a model list by name, rejecting empty lists and duplicate
/// names. Shared by the single-device server and the cluster front door.
std::map<std::string, ServedModel> index_models(
    std::vector<ServedModel> models);

/// Looks up `request.model` in `models` and CB_CHECKs the input geometry
/// ([1, cin, hin, win] NCHW). Shared by the single-device server and the
/// cluster front door, so both reject malformed requests identically.
const ServedModel& validate_request(
    const std::map<std::string, ServedModel>& models,
    const InferRequest& request);

/// Single-threaded oracle: runs the pipeline on `input` (any batch size)
/// with conv2d_ref for every layer and the same adapter chain the server
/// executes. Serving responses must allclose() this per lane.
Tensor4<float> reference_run(const ServedModel& model,
                             const Tensor4<float>& input);

}  // namespace convbound
