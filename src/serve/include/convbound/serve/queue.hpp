// Thread-safe bounded request queue with EDF ordering and weighted-fair
// admission.
//
// Many client threads push; one BatchScheduler thread inspects the most
// urgent entry and collects same-model groups. Bounded capacity is the
// server's backpressure mechanism: push fails instead of blocking, so
// overload turns into explicit rejections rather than unbounded latency.
//
// Ordering is earliest-deadline-first on the *effective* deadline — the
// request's explicit deadline ANDed with its tenant class's latency budget
// (ties broken by arrival time, then insertion order, so budget-free
// traffic degrades to FIFO). Entries live in a map ordered by
// (effective_deadline, enqueued, seq): push is a sorted insert (O(log n)),
// the most urgent entry is begin() (O(1) — this used to be an O(n) scan
// per wait_front/collect), expired entries are a *prefix* of the map so
// expiry pops from the front instead of sweeping everything, and collect
// walks in EDF order so groups come out most-urgent-first without a sort.
//
// Admission is two-tier. Below the congestion threshold the queue is
// work-conserving: any class may use any free slot. At or above it, each
// class is capped at its weighted-fair share of capacity
// (weight_c / sum(weights) x capacity, min 1), so a flood of low-priority
// traffic cannot starve a high-priority class of headroom; over-share
// pushes fail with Admit::kQuota and the server answers kQuotaExceeded.
//
// The queue owns deadline expiry for whatever sits in it: wait_front() and
// collect() first sweep out every entry whose effective deadline has
// passed, completing its promise with kDeadlineExceeded immediately — a
// dead request is answered promptly (instead of riding the full max-delay +
// executor-slot wait to batch-collect time) and stops occupying queue
// capacity the backpressure policy charges live traffic for. The engine's
// own collect-time deadline check stays as the backstop for requests that
// expire after leaving the queue.
//
// This class is also the *shard* type of ShardedRequestQueue
// (convbound/serve/sharded_queue.hpp): the facade owns N of these, runs
// global capacity/quota itself on relaxed atomics, and inserts through
// readmit() (which bypasses the per-shard checks but respects close). The
// facade-facing hooks are set_notifier() (wake the facade's cross-shard
// waiters), peek_front()/peek_model() (non-blocking head inspection for
// most-urgent-shard selection), count_model_live() (group formation
// across shards), and sweep_expired().
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <string>
#include <vector>

#include "convbound/serve/request.hpp"
#include "convbound/serve/tenancy.hpp"
#include "convbound/util/mutex.hpp"
#include "convbound/util/thread_annotations.hpp"

namespace convbound {

/// A queued request plus its completion promise, arrival time, and the
/// tenant-class fields the submit path resolved for it. Defaults keep the
/// struct usable without any tenancy configuration.
struct PendingRequest {
  InferRequest request;
  std::promise<InferResponse> promise;
  ServeTimePoint enqueued{};
  std::size_t class_index = 0;
  /// Resolved class name ("" for the anonymous default) — carried so the
  /// executor can attribute latency/expiry to the class without a table.
  std::string tenant_class;
  /// enqueued + class latency budget; max() when the class has no budget.
  ServeTimePoint class_deadline = ServeTimePoint::max();

  /// Trace correlation id (assigned at submit when tracing is enabled; 0
  /// otherwise) and the batch id the scheduler stamps at group formation.
  std::uint64_t trace_id = 0;
  std::uint64_t batch_id = 0;
  /// When the scheduler collected this request into a batch — the
  /// queue_wait / batch_delay stage boundary. Default (epoch) means "never
  /// collected"; the executor falls back to its own start time.
  ServeTimePoint collected{};
  /// Ingest shard this request landed on (stamped by ShardedRequestQueue).
  std::uint32_t shard = 0;

  /// The deadline EDF ordering and expiry act on.
  ServeTimePoint effective_deadline() const {
    return request.deadline < class_deadline ? request.deadline
                                             : class_deadline;
  }
};

class RequestQueue {
 public:
  /// Push verdict. The caller completes the promise itself on non-kOk:
  /// kFull -> kRejected, kQuota -> kQuotaExceeded, kClosed -> kShutdown.
  /// Returning kClosed (instead of making the caller re-read its own
  /// stopped flag) is what makes submit-vs-stop race-free: the queue's
  /// mutex decides which side won.
  enum class Admit { kOk, kFull, kQuota, kClosed };

  explicit RequestQueue(std::size_t capacity) : capacity_(capacity) {}
  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Installs the tenant table quota admission consults. `table` must
  /// outlive the queue and be called before any thread touches it; without
  /// one, every entry is class 0 and quota never binds (single-tenant
  /// behaviour). `congestion` in [0,1] is the fill fraction at which
  /// per-class shares start binding.
  void set_tenancy(const TenantTable* table, double congestion);

  /// Called with (class index, count) for requests the queue just expired
  /// (their promises are already completed with kDeadlineExceeded). Set
  /// once, before any thread touches the queue; the owner uses it to keep
  /// its `expired` counters in step with the resolved futures.
  void set_on_expired(std::function<void(std::size_t, std::size_t)> fn) {
    on_expired_ = std::move(fn);
  }

  /// Extra wakeup hook for a facade waiting across several queues: called
  /// (outside the lock) whenever this queue's own cv is notified — after
  /// push, readmit, and close. Set once, before any thread touches the
  /// queue.
  void set_notifier(std::function<void()> fn) { notifier_ = std::move(fn); }

  /// Admission-checked insert; see Admit. A full queue (or an over-quota
  /// class) is swept for expired entries before the rejection stands —
  /// dead occupants never cost live traffic a rejection. On kOk,
  /// `depth_after` (when non-null) receives the post-insert depth, taken
  /// under the same lock as the insert — the submit path's stats recording
  /// must not re-lock the queue just to read the depth it already knew.
  Admit push(PendingRequest&& p, std::size_t* depth_after = nullptr);

  /// Re-inserts a request that already passed admission once (device-loss
  /// requeue, or a ShardedRequestQueue insert that cleared the facade's
  /// global admission). Bypasses capacity and quota — the request must not
  /// be silently lost to backpressure it already cleared — but respects
  /// close(): false means the queue is closed and the caller owns the
  /// promise (shutdown path). On success, `depth_after` (when non-null)
  /// receives the post-insert depth, taken under the insert lock (the
  /// sharded facade uses it for per-shard high-water marks).
  bool readmit(PendingRequest&& p, std::size_t* depth_after = nullptr);

  /// Blocks until the queue holds a live (non-expired) entry or is closed.
  /// Expired entries encountered while waiting are answered and dropped.
  /// True with the most urgent live entry's model + arrival time (EDF
  /// order); false when closed and drained.
  bool wait_front(std::string* model, ServeTimePoint* enqueued);

  /// Non-blocking wait_front: sweeps expiry, then reports the most urgent
  /// live entry's model, arrival, and effective deadline. False when empty.
  bool peek_front(std::string* model, ServeTimePoint* enqueued,
                  ServeTimePoint* effective_deadline);

  /// Sweeps expiry, then reports the effective deadline of the most urgent
  /// live entry of `model`. False when the queue holds none.
  bool peek_model(const std::string& model,
                  ServeTimePoint* effective_deadline);

  /// Sweeps expiry, then counts live entries of `model`.
  std::size_t count_model_live(const std::string& model);

  /// Answers and removes every expired entry (see on_expired).
  void sweep_expired();

  /// Waits until `max_n` live requests of `model` are queued, `deadline`
  /// passes, or the queue closes; then removes and returns up to `max_n` of
  /// them, most urgent first (possibly empty if another collector raced
  /// them away). Expired entries of *any* model are answered and dropped
  /// along the way rather than collected.
  std::vector<PendingRequest> collect(const std::string& model,
                                      std::size_t max_n,
                                      ServeTimePoint deadline);

  /// Wakes all waiters; subsequent pushes fail. Queued entries remain for
  /// wait_front/collect/drain.
  void close();

  /// Removes everything (shutdown path).
  std::vector<PendingRequest> drain();

  std::size_t depth() const;
  std::size_t capacity() const { return capacity_; }
  /// Queued entries of class `i` (for tests and admission introspection).
  std::size_t class_depth(std::size_t i) const;

 private:
  /// EDF position: effective deadline, then arrival, then insertion order
  /// (seq) so entries with identical timestamps stay FIFO and keys are
  /// unique.
  struct UrgencyKey {
    ServeTimePoint deadline;
    ServeTimePoint enqueued;
    std::uint64_t seq;
    bool operator<(const UrgencyKey& o) const {
      if (deadline != o.deadline) return deadline < o.deadline;
      if (enqueued != o.enqueued) return enqueued < o.enqueued;
      return seq < o.seq;
    }
  };

  /// Answers (kDeadlineExceeded) and removes every entry whose effective
  /// deadline is before `now`. Expired entries are a prefix of the
  /// EDF-ordered map, so this pops from the front — O(expired * log n),
  /// not a full sweep. Reports per-class counts through on_expired_.
  void expire_locked(ServeTimePoint now) CB_REQUIRES(mu_);

  /// Weighted-fair share of `capacity_` for class `i` (>= 1). Reads only
  /// immutable tenancy config, but keeps the caller-holds-mu_ contract
  /// uniform across the `*_locked` helpers.
  std::size_t class_share(std::size_t i) const CB_REQUIRES(mu_);

  /// Admission predicates for push(); named helpers (not lambdas) so the
  /// thread-safety analysis sees the held capability at every guarded read.
  bool over_capacity_locked() const CB_REQUIRES(mu_);
  bool over_quota_locked(std::size_t class_index) const CB_REQUIRES(mu_);

  /// Sorted insert.
  void insert_locked(PendingRequest&& p) CB_REQUIRES(mu_);

  /// Removes the entry at `it`, maintaining the per-model and per-class
  /// counts; returns the moved-out request.
  PendingRequest remove_locked(std::map<UrgencyKey, PendingRequest>::iterator it)
      CB_REQUIRES(mu_);

  void bump_class(std::size_t i, std::ptrdiff_t delta) CB_REQUIRES(mu_);

  /// Wakes this queue's waiters and the facade notifier. Called after the
  /// lock is released: the notifier re-enters facade state, so calling it
  /// under mu_ would nest foreign locks below a shard lock.
  void notify_all() CB_EXCLUDES(mu_);

  mutable Mutex mu_;
  CondVar cv_;
  /// EDF order: begin() is the most urgent entry.
  std::map<UrgencyKey, PendingRequest> items_ CB_GUARDED_BY(mu_);
  std::uint64_t next_seq_ CB_GUARDED_BY(mu_) = 0;
  /// Live entries per model, so group-formation predicates are O(1)
  /// instead of an O(n) scan per cv wakeup.
  std::map<std::string, std::size_t> model_counts_ CB_GUARDED_BY(mu_);
  /// Immutable after construction; readable without the lock.
  std::size_t capacity_;
  bool closed_ CB_GUARDED_BY(mu_) = false;
  // on_expired_ / notifier_ / table_ / congestion_ / weight_sum_ are
  // set-once-before-threads configuration (documented on their setters):
  // no guard, by design — after setup they are only ever read.
  std::function<void(std::size_t, std::size_t)> on_expired_;
  std::function<void()> notifier_;
  const TenantTable* table_ = nullptr;
  double congestion_ = 1.0;
  double weight_sum_ = 1.0;
  /// Per-class queued counts.
  std::vector<std::size_t> class_depth_ CB_GUARDED_BY(mu_);
};

}  // namespace convbound
