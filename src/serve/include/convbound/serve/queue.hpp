// Thread-safe bounded request queue.
//
// Many client threads push; one BatchScheduler thread inspects the oldest
// entry and collects same-model groups. Bounded capacity is the server's
// backpressure mechanism: push fails instead of blocking, so overload turns
// into explicit rejections rather than unbounded latency.
//
// The queue owns deadline expiry for whatever sits in it: wait_front() and
// collect() first sweep out every entry whose deadline has passed,
// completing its promise with kDeadlineExceeded immediately — a dead
// request is answered promptly (instead of riding the full max-delay +
// executor-slot wait to batch-collect time) and stops occupying queue
// capacity the backpressure policy charges live traffic for. The engine's
// own collect-time deadline check stays as the backstop for requests that
// expire after leaving the queue.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <vector>

#include "convbound/serve/request.hpp"

namespace convbound {

/// A queued request plus its completion promise and arrival time.
struct PendingRequest {
  InferRequest request;
  std::promise<InferResponse> promise;
  ServeTimePoint enqueued{};
};

class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity) : capacity_(capacity) {}
  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Called with the number of requests the queue just expired (their
  /// promises are already completed with kDeadlineExceeded). Set once,
  /// before any thread touches the queue; the owner uses it to keep its
  /// `expired` counter in step with the resolved futures.
  void set_on_expired(std::function<void(std::size_t)> fn) {
    on_expired_ = std::move(fn);
  }

  /// False when the queue is full or closed (the caller completes the
  /// promise with kRejected / kShutdown itself). A full queue is swept for
  /// expired entries before the rejection stands — dead occupants never
  /// cost live traffic a kRejected.
  bool push(PendingRequest&& p);

  /// Blocks until the queue holds a live (non-expired) entry or is closed.
  /// Expired entries encountered while waiting are answered and dropped.
  /// True with the oldest live entry's model + arrival time; false when
  /// closed and drained.
  bool wait_front(std::string* model, ServeTimePoint* enqueued);

  /// Waits until `max_n` live requests of `model` are queued, `deadline`
  /// passes, or the queue closes; then removes and returns up to `max_n` of
  /// them, oldest first (possibly empty if another collector raced them
  /// away). Expired entries of *any* model are answered and dropped along
  /// the way rather than collected.
  std::vector<PendingRequest> collect(const std::string& model,
                                      std::size_t max_n,
                                      ServeTimePoint deadline);

  /// Wakes all waiters; subsequent pushes fail. Queued entries remain for
  /// wait_front/collect/drain.
  void close();

  /// Removes everything (shutdown path).
  std::vector<PendingRequest> drain();

  std::size_t depth() const;
  std::size_t capacity() const { return capacity_; }

 private:
  /// Answers (kDeadlineExceeded) and removes every entry whose deadline is
  /// before `now`; reports the count through on_expired_. Caller holds mu_.
  void expire_locked(ServeTimePoint now);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<PendingRequest> items_;
  std::size_t capacity_;
  bool closed_ = false;
  std::function<void(std::size_t)> on_expired_;
};

}  // namespace convbound
