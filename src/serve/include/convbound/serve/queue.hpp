// Thread-safe bounded request queue.
//
// Many client threads push; one BatchScheduler thread inspects the oldest
// entry and collects same-model groups. Bounded capacity is the server's
// backpressure mechanism: push fails instead of blocking, so overload turns
// into explicit rejections rather than unbounded latency.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <vector>

#include "convbound/serve/request.hpp"

namespace convbound {

/// A queued request plus its completion promise and arrival time.
struct PendingRequest {
  InferRequest request;
  std::promise<InferResponse> promise;
  ServeTimePoint enqueued{};
};

class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity) : capacity_(capacity) {}
  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// False when the queue is full or closed (the caller completes the
  /// promise with kRejected / kShutdown itself).
  bool push(PendingRequest&& p);

  /// Blocks until the queue is non-empty or closed. True with the oldest
  /// entry's model + arrival time; false when closed and drained.
  bool wait_front(std::string* model, ServeTimePoint* enqueued);

  /// Waits until `max_n` requests of `model` are queued, `deadline` passes,
  /// or the queue closes; then removes and returns up to `max_n` of them,
  /// oldest first (possibly empty if another collector raced them away).
  std::vector<PendingRequest> collect(const std::string& model,
                                      std::size_t max_n,
                                      ServeTimePoint deadline);

  /// Wakes all waiters; subsequent pushes fail. Queued entries remain for
  /// wait_front/collect/drain.
  void close();

  /// Removes everything (shutdown path).
  std::vector<PendingRequest> drain();

  std::size_t depth() const;
  std::size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<PendingRequest> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace convbound
