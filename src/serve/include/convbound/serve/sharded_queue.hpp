// Sharded serving front door: N RequestQueue shards behind a facade that
// preserves the single-queue contract.
//
// Why: every producer thread, the scheduler, and every stats read used to
// serialize on ONE queue mutex (and the depth() read on the submit path
// took it twice). At high producer counts the lock — not the accelerators —
// is the bottleneck. Sharding splits the mutex N ways and moves the global
// accounting (depth, per-class totals) onto relaxed atomics, so submit is
// lock-striped: two uncontended atomic ops plus one shard mutex instead of
// the global mutex, and depth()/class_depth() are lock-free reads.
//
// Shard selection: shard_of(model, class) = (hash(model) + class_index)
// mod N. Hashing the model keeps each model's traffic on one shard per
// class (collect touches at most `num_classes` shards, and within a shard
// EDF order is exact); adding the class index as tiebreak spreads a hot
// model's tenant classes across shards instead of piling them onto one.
//
// Admission is decided at the facade on relaxed atomics *before* touching
// any shard, reservation-style: depth is fetch_add'd, checked against
// global capacity, and undone on rejection (likewise the per-class counter
// against its weighted-fair share when fill >= congestion x capacity).
// The counters therefore never exceed their caps and strict global
// capacity/quota semantics survive sharding — per-shard capacity never
// binds (each shard is sized to the global capacity). A capacity rejection
// sweeps all shards for expired entries once and retries, matching the
// single-queue rule that dead occupants never cost live traffic a
// rejection. The shard insert itself goes through RequestQueue::readmit,
// which bypasses the shard's own capacity/quota but respects close — the
// shard's closed bit decides submit-vs-stop races exactly as before.
//
// Ordering is approximate-global-EDF: exact EDF within each shard;
// wait_front scans the N shard heads and reports the globally most urgent
// one. A request can be collected before a *more* urgent request of a
// different model+class pair that hashed to another shard whose head was
// less urgent at scan time — the inversion is bounded at shard
// granularity (never within a shard, and wait_front itself always names
// the true global minimum at scan time; see docs/serving.md and the
// ApproximateGlobalEdf test).
//
// Expiry stays queue-owned per shard; the facade interposes on each
// shard's on_expired to keep the global atomics in step before forwarding
// to the owner's callback. Cross-shard blocking (wait_front, collect's
// group wait) uses a facade-level condition variable with a version
// counter: every shard notification bumps the version, so a waiter never
// sleeps through a push to a shard it wasn't watching.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "convbound/serve/queue.hpp"
#include "convbound/serve/tenancy.hpp"
#include "convbound/util/mutex.hpp"
#include "convbound/util/thread_annotations.hpp"

namespace convbound {

class ShardedRequestQueue {
 public:
  using Admit = RequestQueue::Admit;

  /// `capacity` is the *global* bound; `shards` >= 1 (clamped).
  ShardedRequestQueue(std::size_t capacity, std::size_t shards);
  ShardedRequestQueue(const ShardedRequestQueue&) = delete;
  ShardedRequestQueue& operator=(const ShardedRequestQueue&) = delete;

  /// Same contract as RequestQueue::set_tenancy; call before any thread
  /// touches the queue. Quota is enforced on the facade's cross-shard
  /// class totals, not per shard.
  void set_tenancy(const TenantTable* table, double congestion);

  /// Same contract as RequestQueue::set_on_expired: (class index, count)
  /// for queue-expired requests, called after the global counters already
  /// reflect the removal.
  void set_on_expired(std::function<void(std::size_t, std::size_t)> fn) {
    on_expired_ = std::move(fn);
  }

  /// The shard `(model, class_index)` traffic lands on. Exposed so the
  /// submit path can route its stats recording to the matching stripe.
  std::size_t shard_of(const std::string& model,
                       std::size_t class_index) const {
    return (std::hash<std::string>{}(model) + class_index) % shards_.size();
  }

  /// Facade-level admission (strict global capacity + weighted-fair
  /// quota), then sharded insert. On kOk, `depth_after` receives the
  /// global depth right after this insert's reservation.
  Admit push(PendingRequest&& p, std::size_t* depth_after = nullptr);

  /// Bypasses capacity and quota (requeue path); false when closed.
  bool readmit(PendingRequest&& p);

  /// Blocks until some shard holds a live entry or the queue is closed
  /// and empty. Reports the most urgent shard head (approximate-global-
  /// EDF; exact at scan time).
  bool wait_front(std::string* model, ServeTimePoint* enqueued);

  /// Waits until `max_n` live requests of `model` are queued across the
  /// shards the model can land on, `deadline` passes, or the queue
  /// closes; then gathers up to `max_n`, visiting candidate shards most-
  /// urgent-head-first (each shard's chunk is exact-EDF).
  std::vector<PendingRequest> collect(const std::string& model,
                                      std::size_t max_n,
                                      ServeTimePoint deadline);

  /// Answers and removes expired entries in every shard.
  void sweep_expired();

  void close();
  std::vector<PendingRequest> drain();

  /// Lock-free global depth (relaxed read of the reservation counter).
  std::size_t depth() const { return depth_.load(std::memory_order_relaxed); }
  std::size_t capacity() const { return capacity_; }
  std::size_t num_shards() const { return shards_.size(); }
  /// Lock-free cross-shard total for class `i`.
  std::size_t class_depth(std::size_t i) const;
  /// Per-shard depth (shard mutex; tests/introspection only).
  std::size_t shard_depth(std::size_t s) const { return shards_[s]->depth(); }
  /// Per-shard high-water mark (lock-free read): the deepest shard `s` has
  /// ever been right after an insert. Feeds StatsSnapshot::shard_max_depths
  /// and the shard-imbalance ratio.
  std::size_t shard_max_depth(std::size_t s) const {
    return shard_hwm_[s]->load(std::memory_order_relaxed);
  }

 private:
  /// Bumps the facade version and wakes cross-shard waiters. Called by
  /// every shard's notifier and after facade-side removals. Lock-free
  /// when no waiter is registered (the common case on the submit hot
  /// path): one seq_cst increment plus one seq_cst load. CB_EXCLUDES
  /// documents the `shard.mu_ -> wait_mu_` lock order: notify() runs
  /// *after* a shard releases its mutex (RequestQueue::notify_all is
  /// itself CB_EXCLUDES(mu_)), and nothing ever takes a shard mutex
  /// while holding wait_mu_.
  void notify() CB_EXCLUDES(wait_mu_);

  /// Sleeps until the version moves past `seen` (or `deadline`, when
  /// non-null). The seq_cst version/waiters pair makes this a classic
  /// eventcount: a notifier that misses the waiter count is guaranteed to
  /// have published its version bump before the waiter's predicate reads
  /// it, so no wakeup is lost.
  void wait_version(std::uint64_t seen, const ServeTimePoint* deadline)
      CB_EXCLUDES(wait_mu_);

  /// Cross-shard counter for class `i`; out-of-range indices fold into
  /// class 0 (only reachable when callers bypass set_tenancy's contract —
  /// accounting degrades, never UB).
  std::atomic<std::size_t>& cls_counter(std::size_t i) {
    return *class_depth_[i < class_depth_.size() ? i : 0];
  }

  /// Weighted-fair share of global capacity for class `i` (>= 1).
  std::size_t class_share(std::size_t i) const;

  /// Undoes a push reservation (rejection/closed paths).
  void unreserve(std::size_t class_index, bool reserved_quota);

  /// Subtracts `n` removed entries of class `cls` from the global
  /// counters (collect/drain/expiry paths).
  void note_removed(std::size_t cls, std::size_t n);

  /// Live entries of `model` across its candidate shards.
  std::size_t count_model_live(const std::string& model,
                               const std::vector<std::size_t>& candidates);

  /// Distinct shards `(model, class)` can land on for any configured
  /// class — the only shards collect has to visit.
  std::vector<std::size_t> candidate_shards(const std::string& model) const;

  /// Raises shard `s`'s high-water mark to `depth` (relaxed CAS loop).
  void raise_shard_hwm(std::size_t s, std::size_t depth);

  // Each shard locks its own RequestQueue::mu_ internally; the facade
  // never holds two shard mutexes at once, and never holds wait_mu_ while
  // taking a shard mutex (lock order: shard.mu_ -> wait_mu_, enforced by
  // the CB_EXCLUDES annotations on notify()/wait_version() — every
  // wait_mu_ acquisition happens with no shard lock held or after the
  // shard released it inside notify_all).
  std::vector<std::unique_ptr<RequestQueue>> shards_;
  /// Per-shard insert-time depth maxima (see shard_max_depth). Lock-free
  /// by design: monotone relaxed CAS raise; exact because readmit hands
  /// out the post-insert depth it computed under the shard lock.
  std::vector<std::unique_ptr<std::atomic<std::size_t>>> shard_hwm_;
  const std::size_t capacity_;

  // Reservation counters: never exceed capacity_ / the class share.
  // Deliberately NOT guarded by any mutex: admission is a relaxed CAS
  // slot claim (depth_ can only move capacity-ward via a successful CAS,
  // so it never overshoots even transiently) and the per-class counters
  // are fetch_add reservations undone on rejection. The informal proof
  // lives in docs/concurrency.md ("Facade reservation atomics").
  std::atomic<std::size_t> depth_{0};
  std::vector<std::unique_ptr<std::atomic<std::size_t>>> class_depth_;

  // Cross-shard wakeup: shards notify -> version bump; waiters sleep on
  // cv_ until the version moves. The facade mutex is only taken by
  // waiters and by notifiers that observe waiters_ > 0, so it is not on
  // the contended submit path. version_/waiters_ form the eventcount's
  // Dekker pairing (seq_cst on both sides) and are intentionally
  // unguarded: notify() reads waiters_ *outside* wait_mu_ — the proof
  // that no wakeup is lost is the seq_cst ordering, not the lock
  // (docs/concurrency.md "Eventcount").
  mutable Mutex wait_mu_;
  CondVar cv_;
  std::atomic<std::uint64_t> version_{0};
  std::atomic<std::size_t> waiters_{0};

  std::atomic<bool> closed_{false};
  std::function<void(std::size_t, std::size_t)> on_expired_;
  const TenantTable* table_ = nullptr;
  double congestion_ = 1.0;
  double weight_sum_ = 1.0;
  std::size_t num_classes_ = 1;
};

}  // namespace convbound
