#include "convbound/serve/scheduler.hpp"

#include "convbound/util/check.hpp"

namespace convbound {

void BatchScheduler::start() {
  CB_CHECK_MSG(!thread_.joinable(), "scheduler already started");
  thread_ = std::thread([this] { loop(); });
}

void BatchScheduler::join() {
  if (thread_.joinable()) thread_.join();
}

void BatchScheduler::loop() {
  std::string model;
  ServeTimePoint enqueued;
  while (queue_.wait_front(&model, &enqueued)) {
    // Reserve before collecting: only this thread removes from the queue,
    // so the oldest entry (and its arrival time) is stable across the wait,
    // and any backlog built up meanwhile fattens the group. The placement's
    // bucket is the reserved executor's — per-device buckets differ.
    const Placement placement = reserve_(model);
    std::vector<PendingRequest> group = queue_.collect(
        model, static_cast<std::size_t>(placement.bucket),
        enqueued + max_delay_);
    // Dispatch even a (theoretically) empty group: the dispatcher owns the
    // reservation taken above and must return it.
    dispatch_(std::move(group), model, placement);
  }
}

}  // namespace convbound
