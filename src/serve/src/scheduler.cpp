#include "convbound/serve/scheduler.hpp"

#include "convbound/obs/trace.hpp"
#include "convbound/util/check.hpp"

namespace convbound {

void BatchScheduler::start() {
  CB_CHECK_MSG(!thread_.joinable(), "scheduler already started");
  thread_ = std::thread([this] { loop(); });
}

void BatchScheduler::join() {
  if (thread_.joinable()) thread_.join();
}

void BatchScheduler::loop() {
  std::string model;
  ServeTimePoint enqueued;
  while (queue_.wait_front(&model, &enqueued)) {
    // Reserve before collecting: only this thread removes from the queue,
    // so the oldest entry (and its arrival time) is stable across the wait,
    // and any backlog built up meanwhile fattens the group. The placement's
    // bucket is the reserved executor's — per-device buckets differ.
    const Placement placement = reserve_(model);
    const bool tracing = obs::on();
    const ServeTimePoint form_start =
        tracing ? ServeClock::now() : ServeTimePoint{};
    std::vector<PendingRequest> group = queue_.collect(
        model, static_cast<std::size_t>(placement.bucket),
        enqueued + max_delay_);
    // One clock read per *batch* stamps the queue_wait / batch_delay stage
    // boundary on every member (negligible next to batch execution).
    const ServeTimePoint collected = ServeClock::now();
    if (!group.empty()) {
      const std::uint64_t batch_id =
          tracing ? ObsRegistry::next_batch_id() : 0;
      for (PendingRequest& p : group) {
        p.collected = collected;
        p.batch_id = batch_id;
      }
      if (tracing) {
        obs::span(TraceStage::kBatchForm, form_start, collected, 0, batch_id,
                  placement.device, static_cast<double>(group.size()));
        obs::instant(TraceStage::kPlacement, collected, 0, batch_id,
                     placement.device, placement.predicted_batch_seconds);
      }
    }
    // Dispatch even a (theoretically) empty group: the dispatcher owns the
    // reservation taken above and must return it.
    dispatch_(std::move(group), model, placement);
  }
}

}  // namespace convbound
