#include "convbound/serve/sharded_queue.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace convbound {

ShardedRequestQueue::ShardedRequestQueue(std::size_t capacity,
                                         std::size_t shards)
    : capacity_(capacity) {
  const std::size_t n = std::max<std::size_t>(1, shards);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Each shard is sized to the *global* capacity so per-shard capacity
    // never binds; the facade's reservation counters are the only
    // capacity/quota authority.
    auto q = std::make_unique<RequestQueue>(capacity);
    q->set_notifier([this] { notify(); });
    q->set_on_expired([this](std::size_t cls, std::size_t cnt) {
      note_removed(cls, cnt);
      if (on_expired_) on_expired_(cls, cnt);
    });
    shards_.push_back(std::move(q));
    shard_hwm_.push_back(std::make_unique<std::atomic<std::size_t>>(0));
  }
  class_depth_.push_back(std::make_unique<std::atomic<std::size_t>>(0));
}

void ShardedRequestQueue::set_tenancy(const TenantTable* table,
                                      double congestion) {
  table_ = table;
  congestion_ = std::clamp(congestion, 0.0, 1.0);
  weight_sum_ = 0;
  num_classes_ = 1;
  if (table_) {
    for (const TenantClass& c : table_->classes()) weight_sum_ += c.quota_weight;
    num_classes_ = std::max<std::size_t>(1, table_->size());
    while (class_depth_.size() < num_classes_)
      class_depth_.push_back(std::make_unique<std::atomic<std::size_t>>(0));
  }
  if (weight_sum_ <= 0) weight_sum_ = 1.0;
}

std::size_t ShardedRequestQueue::class_share(std::size_t i) const {
  if (!table_ || i >= table_->size()) return capacity_;
  const double frac = table_->cls(i).quota_weight / weight_sum_;
  const auto share = static_cast<std::size_t>(
      std::floor(frac * static_cast<double>(capacity_)));
  return std::max<std::size_t>(1, share);
}

void ShardedRequestQueue::notify() {
  version_.fetch_add(1, std::memory_order_seq_cst);
  if (waiters_.load(std::memory_order_seq_cst) > 0) {
    // The lock pairs with wait_version's locked predicate check: without
    // it a waiter could pass the predicate and sleep after this
    // notify_all already fired.
    MutexLock lock(wait_mu_);
    cv_.notify_all();
  }
}

void ShardedRequestQueue::wait_version(std::uint64_t seen,
                                       const ServeTimePoint* deadline) {
  UniqueLock lock(wait_mu_);
  waiters_.fetch_add(1, std::memory_order_seq_cst);
  while (version_.load(std::memory_order_seq_cst) == seen) {
    if (deadline) {
      if (cv_.wait_until(lock, *deadline) == std::cv_status::timeout) break;
    } else {
      cv_.wait(lock);
    }
  }
  waiters_.fetch_sub(1, std::memory_order_seq_cst);
}

void ShardedRequestQueue::unreserve(std::size_t class_index,
                                    bool reserved_quota) {
  if (reserved_quota)
    cls_counter(class_index).fetch_sub(1, std::memory_order_relaxed);
  depth_.fetch_sub(1, std::memory_order_relaxed);
  // A waiter blocked on "closed and empty" must see the counter drop.
  notify();
}

void ShardedRequestQueue::raise_shard_hwm(std::size_t s, std::size_t depth) {
  std::atomic<std::size_t>& hwm = *shard_hwm_[s];
  std::size_t cur = hwm.load(std::memory_order_relaxed);
  while (cur < depth &&
         !hwm.compare_exchange_weak(cur, depth, std::memory_order_relaxed)) {
  }
}

void ShardedRequestQueue::note_removed(std::size_t cls, std::size_t n) {
  if (n == 0) return;
  cls_counter(cls).fetch_sub(n, std::memory_order_relaxed);
  depth_.fetch_sub(n, std::memory_order_relaxed);
  notify();
}

ShardedRequestQueue::Admit ShardedRequestQueue::push(PendingRequest&& p,
                                                     std::size_t* depth_after) {
  if (closed_.load(std::memory_order_relaxed)) return Admit::kClosed;
  const std::size_t cls = p.class_index;
  const auto threshold = static_cast<std::size_t>(
      congestion_ * static_cast<double>(capacity_));
  std::size_t reserved_depth = 0;
  // Reservation-style admission on relaxed atomics: claim a slot (CAS, so
  // depth_ never overshoots capacity even transiently — depth() is a
  // documented invariant), check quota, undo on rejection. The first
  // rejection of either kind sweeps expired entries out of all shards and
  // retries (matching the single-queue rule that dead occupants never cost
  // live traffic a rejection).
  bool swept = false;
  for (;;) {
    std::size_t cur = depth_.load(std::memory_order_relaxed);
    if (cur >= capacity_) {
      if (!swept) {
        swept = true;
        sweep_expired();
        continue;
      }
      return Admit::kFull;
    }
    if (!depth_.compare_exchange_weak(cur, cur + 1,
                                      std::memory_order_relaxed))
      continue;
    const std::size_t cd =
        cls_counter(cls).fetch_add(1, std::memory_order_relaxed);
    if (table_ && cur >= threshold && cd >= class_share(cls)) {
      cls_counter(cls).fetch_sub(1, std::memory_order_relaxed);
      depth_.fetch_sub(1, std::memory_order_relaxed);
      if (!swept) {
        swept = true;
        sweep_expired();
        continue;
      }
      return Admit::kQuota;
    }
    reserved_depth = cur + 1;
    break;
  }
  const std::size_t s = shard_of(p.request.model, cls);
  p.shard = static_cast<std::uint32_t>(s);
  // readmit bypasses the shard's own capacity/quota (the facade already
  // admitted this request) but respects close: the shard's closed bit is
  // the submit-vs-stop authority, exactly as in the single-queue design.
  std::size_t shard_depth_after = 0;
  if (!shards_[s]->readmit(std::move(p), &shard_depth_after)) {
    unreserve(cls, /*reserved_quota=*/true);
    return Admit::kClosed;
  }
  raise_shard_hwm(s, shard_depth_after);
  if (depth_after) *depth_after = reserved_depth;
  return Admit::kOk;
}

bool ShardedRequestQueue::readmit(PendingRequest&& p) {
  const std::size_t cls = p.class_index;
  depth_.fetch_add(1, std::memory_order_relaxed);
  cls_counter(cls).fetch_add(1, std::memory_order_relaxed);
  const std::size_t s = shard_of(p.request.model, cls);
  p.shard = static_cast<std::uint32_t>(s);
  std::size_t shard_depth_after = 0;
  if (!shards_[s]->readmit(std::move(p), &shard_depth_after)) {
    unreserve(cls, /*reserved_quota=*/true);
    return false;
  }
  raise_shard_hwm(s, shard_depth_after);
  return true;
}

bool ShardedRequestQueue::wait_front(std::string* model,
                                     ServeTimePoint* enqueued) {
  for (;;) {
    const std::uint64_t seen = version_.load(std::memory_order_seq_cst);
    // Scan the shard heads; each peek sweeps that shard's expired prefix.
    // The chosen head is the true global minimum at scan time — the
    // approximation is only that it can be overtaken by a more urgent
    // push to another shard after we return.
    bool found = false;
    ServeTimePoint best_dl{};
    ServeTimePoint best_enq{};
    std::string m;
    for (auto& shard : shards_) {
      std::string sm;
      ServeTimePoint enq, dl;
      if (!shard->peek_front(&sm, &enq, &dl)) continue;
      if (!found || dl < best_dl || (dl == best_dl && enq < best_enq)) {
        found = true;
        best_dl = dl;
        best_enq = enq;
        m = std::move(sm);
      }
    }
    if (found) {
      *model = std::move(m);
      *enqueued = best_enq;
      return true;
    }
    if (closed_.load(std::memory_order_seq_cst) &&
        depth_.load(std::memory_order_seq_cst) == 0)
      return false;
    // Either open-and-empty, or closed with reservations still in flight
    // (a racing push will insert — making the next scan find it — or
    // undo, which drops depth_ to zero; both bump the version).
    wait_version(seen, nullptr);
  }
}

std::vector<std::size_t> ShardedRequestQueue::candidate_shards(
    const std::string& model) const {
  // (hash + class) mod N over all configured classes: the only shards any
  // request for `model` can occupy.
  std::vector<std::size_t> out;
  for (std::size_t c = 0; c < num_classes_; ++c) {
    const std::size_t s = shard_of(model, c);
    if (std::find(out.begin(), out.end(), s) == out.end()) out.push_back(s);
  }
  return out;
}

std::size_t ShardedRequestQueue::count_model_live(
    const std::string& model, const std::vector<std::size_t>& candidates) {
  std::size_t n = 0;
  for (std::size_t s : candidates) n += shards_[s]->count_model_live(model);
  return n;
}

std::vector<PendingRequest> ShardedRequestQueue::collect(
    const std::string& model, std::size_t max_n, ServeTimePoint deadline) {
  const std::vector<std::size_t> candidates = candidate_shards(model);
  // Phase 1: wait for a full group, the batch deadline, or close — the
  // same trigger set as the single queue, but counting live entries
  // across every shard the model can land on.
  for (;;) {
    const std::uint64_t seen = version_.load(std::memory_order_seq_cst);
    if (closed_.load(std::memory_order_seq_cst)) break;
    if (count_model_live(model, candidates) >= max_n) break;
    if (ServeClock::now() >= deadline) break;
    wait_version(seen, &deadline);
  }

  // Phase 2: gather, most-urgent shard head first so the cross-shard
  // concatenation tracks global EDF at shard granularity (each shard's
  // chunk is itself exact-EDF).
  std::vector<std::pair<ServeTimePoint, std::size_t>> order;
  for (std::size_t s : candidates) {
    ServeTimePoint dl;
    if (shards_[s]->peek_model(model, &dl)) order.emplace_back(dl, s);
  }
  std::sort(order.begin(), order.end());

  std::vector<PendingRequest> out;
  for (const auto& [dl, s] : order) {
    if (out.size() >= max_n) break;
    // Past deadline => the shard's collect gathers what it has right now
    // without waiting again.
    std::vector<PendingRequest> chunk =
        shards_[s]->collect(model, max_n - out.size(), ServeTimePoint::min());
    for (PendingRequest& p : chunk) {
      note_removed(p.class_index, 1);
      out.push_back(std::move(p));
    }
  }
  return out;
}

void ShardedRequestQueue::sweep_expired() {
  for (auto& shard : shards_) shard->sweep_expired();
}

void ShardedRequestQueue::close() {
  closed_.store(true, std::memory_order_seq_cst);
  for (auto& shard : shards_) shard->close();
  notify();
}

std::vector<PendingRequest> ShardedRequestQueue::drain() {
  std::vector<PendingRequest> out;
  for (auto& shard : shards_) {
    std::vector<PendingRequest> chunk = shard->drain();
    for (PendingRequest& p : chunk) {
      note_removed(p.class_index, 1);
      out.push_back(std::move(p));
    }
  }
  return out;
}

std::size_t ShardedRequestQueue::class_depth(std::size_t i) const {
  if (i >= class_depth_.size()) return 0;
  return class_depth_[i]->load(std::memory_order_relaxed);
}

}  // namespace convbound
