#include "convbound/serve/batch_policy.hpp"

#include "convbound/machine/sim_gpu.hpp"
#include "convbound/plan/planner.hpp"
#include "convbound/util/check.hpp"

namespace convbound {

namespace {

BucketScore score_one(Planner& planner, SimGpu& gpu, const ServedModel& model,
                      std::int64_t b, const BatchPolicyOptions& opts) {
  PlannerOptions popts;
  popts.mode = PlanMode::kAnalytic;  // bounds predictions only, no execution
  popts.candidates = CandidateSet::kOurs;
  BucketScore score;
  score.bucket = b;
  for (const auto& layer : model.layers) {
    const ConvPlan p =
        planner.plan(gpu, shape_at_batch(layer.shape, b), popts);
    score.predicted_batch_seconds += p.predicted_seconds;
    score.predicted_io_elems_per_request +=
        p.predicted_io_elems / static_cast<double>(b);
  }
  score.predicted_seconds_per_request =
      score.predicted_batch_seconds / static_cast<double>(b);
  // Feasibility is end-to-end: the scheduler may hold the group open for
  // its whole formation window before the batch starts, so the budget must
  // cover max_delay + the predicted batch time, not the batch time alone.
  score.feasible =
      opts.latency_budget_seconds <= 0 ||
      opts.max_delay_seconds + score.predicted_batch_seconds <=
          opts.latency_budget_seconds;
  return score;
}

}  // namespace

BucketScore score_batch_bucket(const ServedModel& model,
                               const MachineSpec& spec, std::int64_t bucket,
                               const BatchPolicyOptions& opts) {
  CB_CHECK_MSG(bucket >= 1, "bucket must be >= 1");
  SimGpu gpu(spec);
  Planner planner;
  return score_one(planner, gpu, model, bucket, opts);
}

BucketChoice choose_batch_bucket(const ServedModel& model,
                                 const MachineSpec& spec,
                                 const BatchPolicyOptions& opts) {
  CB_CHECK_MSG(opts.max_bucket >= 1, "max_bucket must be >= 1");
  SimGpu gpu(spec);
  Planner planner;

  BucketChoice choice;
  for (std::int64_t b = 1; b <= opts.max_bucket; b *= 2)
    choice.scores.push_back(score_one(planner, gpu, model, b, opts));

  double best = 0;
  bool have_best = false;
  for (const auto& s : choice.scores) {
    if (!s.feasible) continue;
    if (!have_best || s.predicted_seconds_per_request < best) {
      best = s.predicted_seconds_per_request;
      have_best = true;
    }
  }
  // Bucket 1 is always a valid fallback even when every candidate busts the
  // latency budget (a model that slow cannot be served any faster unbatched).
  choice.bucket = 1;
  if (have_best) {
    for (auto& s : choice.scores) {
      if (s.feasible &&
          s.predicted_seconds_per_request <=
              best * (1.0 + opts.knee_tolerance)) {
        choice.bucket = s.bucket;
        break;  // smallest bucket at the knee
      }
    }
  }
  for (auto& s : choice.scores) s.chosen = s.bucket == choice.bucket;
  return choice;
}

}  // namespace convbound
