#include "convbound/serve/engine.hpp"

#include <algorithm>

#include "convbound/obs/trace.hpp"
#include "convbound/util/check.hpp"
#include "convbound/util/thread_pool.hpp"

namespace convbound {

namespace {

double seconds_between(ServeTimePoint from, ServeTimePoint to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

ServeEngine::ServeEngine(const std::map<std::string, ServedModel>& models,
                         EngineOptions opts, ServerStats* stats)
    : models_(&models), opts_(std::move(opts)), stats_(stats) {
  CB_CHECK_MSG(!models.empty(), "engine needs at least one model");
  CB_CHECK_MSG(opts_.replicas >= 1, "replicas must be >= 1");
  CB_CHECK_MSG(stats_ != nullptr, "engine needs a stats sink");
}

void ServeEngine::warm() {
  {
    MutexLock lock(planners_mu_);
    CB_CHECK_MSG(!warmed_ && planners_.empty(), "engine already warmed");
  }
  PlannerOptions popts;
  popts.mode = opts_.plan_mode;
  popts.candidates = CandidateSet::kOurs;
  popts.tune_budget = opts_.tune_budget;
  popts.seed = opts_.seed;
  plan_opts_ = popts;

  // Sessions are constructed serially (cheap), then warmed in parallel —
  // planner, tune cache, and per-session workspaces are all safe under
  // concurrent warm(), so startup scales with cores instead of with
  // models x buckets x replicas.
  std::vector<std::unique_ptr<ServeSession>> fresh;
  for (const auto& [name, model] : *models_) {
    // Bound-guided bucket choice; the full candidate scoring is kept for
    // reporting even when the bucket is forced.
    BucketChoice choice =
        choose_batch_bucket(model, opts_.machine, opts_.policy);
    if (opts_.force_bucket > 0) {
      choice.bucket = opts_.force_bucket;
      bool scored = false;
      for (const auto& s : choice.scores)
        scored = scored || s.bucket == choice.bucket;
      // An off-ladder forced bucket (e.g. 3) gets a real analytic score so
      // reporting still shows what was chosen and what it costs.
      if (!scored)
        choice.scores.push_back(score_batch_bucket(model, opts_.machine,
                                                   choice.bucket,
                                                   opts_.policy));
      for (auto& s : choice.scores) s.chosen = s.bucket == choice.bucket;
    }
    buckets_.emplace(name, std::move(choice));

    // Warm one session ladder per replica: powers of two up to the chosen
    // bucket (plus the chosen bucket itself when forced off-ladder), so a
    // partial group runs at the smallest covering bucket.
    std::vector<std::int64_t> ladder;
    for (std::int64_t b = 1; b < buckets_.at(name).bucket; b *= 2)
      ladder.push_back(b);
    ladder.push_back(buckets_.at(name).bucket);
    exec_buckets_.emplace(name, ladder);

    Planner* planner = nullptr;
    {
      MutexLock lock(planners_mu_);
      planner = &planners_
                     .emplace(std::piecewise_construct,
                              std::forward_as_tuple(name),
                              std::forward_as_tuple(&cache_))
                     .first->second;  // map nodes are stable after unlock
    }
    for (std::int64_t b : ladder)
      for (int r = 0; r < opts_.replicas; ++r)
        fresh.push_back(std::make_unique<ServeSession>(
            model, b, opts_.machine, *planner, popts));
  }
  ThreadPool::global().parallel_for(
      0, fresh.size(), [&](std::size_t i) { fresh[i]->warm(); });
  for (auto& session : fresh) sessions_.add(std::move(session));
  {
    const std::size_t warm = plans_memoised();
    MutexLock lock(planners_mu_);
    warm_plans_ = warm;
    warmed_ = true;
  }
}

void ServeEngine::execute_batch(std::vector<PendingRequest> group,
                                const std::string& model_name) {
  // Complete every not-yet-completed promise with kError; promises that
  // were already satisfied before a mid-loop throw are skipped.
  std::vector<PendingRequest> live;
  const auto fail_batch = [&](const char* what) {
    stats_->record_failed(live.size());
    for (auto& p : live) {
      InferResponse r;
      r.status = ServeStatus::kError;
      r.error = what;
      try {
        p.promise.set_value(std::move(r));
      } catch (const std::future_error&) {
      }
    }
  };

  try {
    // Everything from here to completion — batch assembly, padding, the
    // session run — is the request's *exec* stage; `now` is its start.
    const ServeTimePoint now = ServeClock::now();
    live.reserve(group.size());
    for (auto& p : group) {
      if (p.effective_deadline() < now) {
        InferResponse r;
        r.status = ServeStatus::kDeadlineExceeded;
        r.latency_seconds = seconds_between(p.enqueued, now);
        obs::instant(TraceStage::kExpire, now, p.trace_id, p.batch_id,
                     opts_.device_ordinal, r.latency_seconds);
        // Record before completing: a client that sees its future resolve
        // must also see the stats reflect it.
        stats_->record_expired(1, p.tenant_class);
        p.promise.set_value(std::move(r));
      } else {
        live.push_back(std::move(p));
      }
    }
    if (live.empty()) return;

    // Smallest warm bucket covering the group (the ladder ends at the
    // scheduler's max group size, so one always exists).
    const std::vector<std::int64_t>& ladder = exec_buckets(model_name);
    std::int64_t bucket = ladder.back();
    for (std::int64_t b : ladder) {
      if (b >= static_cast<std::int64_t>(live.size())) {
        bucket = b;
        break;
      }
    }
    SessionPool::Guard session = sessions_.acquire(model_name, bucket);
    const ServedModel& m = session->model();
    const std::int64_t lane_elems =
        m.input_c() * m.input_h() * m.input_w();

    Workspace::Lease in = session->workspace().acquire(
        bucket, m.input_c(), m.input_h(), m.input_w());
    Tensor4<float>& batch = in.tensor();
    for (std::size_t i = 0; i < live.size(); ++i) {
      const Tensor4<float>& src = live[i].request.input;
      std::copy(src.data(), src.data() + lane_elems,
                batch.data() + static_cast<std::int64_t>(i) * lane_elems);
    }
    // Padded lanes cannot influence live lanes (conv algorithms process
    // batch lanes independently); zero them anyway so every execution of a
    // partial group is bit-reproducible.
    std::fill(batch.data() +
                  static_cast<std::int64_t>(live.size()) * lane_elems,
              batch.data() + batch.size(), 0.0f);

    ServeSession::BatchResult res = session->run(batch);
    const Tensor4<float>& out = res.output.tensor();
    const std::int64_t out_lane = out.c() * out.h() * out.w();
    const ServeTimePoint done = ServeClock::now();

    std::vector<InferResponse> responses;
    std::vector<double> latencies;
    std::vector<std::string> classes;
    std::vector<ServerStats::StageLatencies> stages;
    responses.reserve(live.size());
    latencies.reserve(live.size());
    classes.reserve(live.size());
    stages.reserve(live.size());
    const bool tracing = obs::on();
    for (std::size_t i = 0; i < live.size(); ++i) {
      InferResponse r;
      r.status = ServeStatus::kOk;
      r.output = Tensor4<float>(1, out.c(), out.h(), out.w());
      std::copy(out.data() + static_cast<std::int64_t>(i) * out_lane,
                out.data() + static_cast<std::int64_t>(i + 1) * out_lane,
                r.output.data());
      r.latency_seconds = seconds_between(live[i].enqueued, done);
      r.batch_size = static_cast<int>(live.size());
      r.batch_sim_seconds = res.stats.sim_time;
      latencies.push_back(r.latency_seconds);
      classes.push_back(live[i].tenant_class);
      // Stage decomposition from the same timestamps the end-to-end latency
      // uses, so queue_wait + batch_delay + exec == latency exactly. A
      // request that never went through the scheduler (unstamped
      // `collected`) charges its whole pre-exec wait to queue_wait.
      ServeTimePoint collected = live[i].collected;
      if (collected == ServeTimePoint{} || collected < live[i].enqueued ||
          collected > now)
        collected = now;
      ServerStats::StageLatencies st;
      st.queue_wait = seconds_between(live[i].enqueued, collected);
      st.batch_delay = seconds_between(collected, now);
      st.exec = seconds_between(now, done);
      stages.push_back(st);
      if (tracing) {
        obs::span(TraceStage::kQueueWait, live[i].enqueued, collected,
                  live[i].trace_id, live[i].batch_id, opts_.device_ordinal,
                  static_cast<double>(live[i].shard));
        obs::instant(TraceStage::kComplete, done, live[i].trace_id,
                     live[i].batch_id, opts_.device_ordinal,
                     r.latency_seconds);
      }
      responses.push_back(std::move(r));
    }
    // The execute span carries the modelled batch time as its value, so a
    // trace shows modelled vs. wall per batch (dur vs. args.value).
    obs::span(TraceStage::kExecute, now, done, 0, live.front().batch_id,
              opts_.device_ordinal, res.stats.sim_time);
    // Record before completing any promise: a client that sees its future
    // resolve must also see the stats reflect the whole batch.
    stats_->record_batch(live.size(), res.stats.sim_time, latencies, classes,
                         stages);
    for (std::size_t i = 0; i < live.size(); ++i)
      live[i].promise.set_value(std::move(responses[i]));
  } catch (const std::exception& e) {
    fail_batch(e.what());
  } catch (...) {
    fail_batch("unknown execution error");
  }
}

double ServeEngine::predicted_batch_seconds(const std::string& name) {
  const ServedModel& m = model(name);
  const std::int64_t bucket = bucket_of(name);
  Planner* planner = nullptr;
  {
    MutexLock lock(planners_mu_);
    const auto it = planners_.find(name);
    CB_CHECK_MSG(it != planners_.end(),
                 "no planner for '" << name << "' (engine not warmed)");
    planner = &it->second;
  }
  // Matches the sessions' SimGpu setup, although nothing executes: every
  // shape below was planned during warm() with the same options, so each
  // plan() is a memo hit.
  SimGpu gpu(opts_.machine, &ThreadPool::global(), ExecMode::kSerial);
  double seconds = 0;
  for (const auto& layer : m.layers)
    seconds += planner
                   ->plan(gpu, shape_at_batch(layer.shape, bucket),
                          plan_opts_)
                   .predicted_seconds;
  return seconds;
}

std::size_t ServeEngine::plans_memoised() const {
  MutexLock lock(planners_mu_);
  std::size_t n = 0;
  for (const auto& [name, planner] : planners_) n += planner.plans_memoised();
  return n;
}

void ServeEngine::fill_stats(StatsSnapshot& s) const {
  s.plans_memoised = plans_memoised();
  std::size_t warm_plans = 0;
  bool warmed = false;
  {
    MutexLock lock(planners_mu_);
    warm_plans = warm_plans_;
    warmed = warmed_;
  }
  if (warmed && s.plans_memoised >= warm_plans)
    s.plan_misses_after_warm = s.plans_memoised - warm_plans;
  s.workspace_buffers = sessions_.workspace_buffers();
  s.workspace_bytes = sessions_.workspace_bytes();
}

const ServedModel& ServeEngine::model(const std::string& name) const {
  const auto it = models_->find(name);
  CB_CHECK_MSG(it != models_->end(),
               "unknown served model '" << name << "'");
  return it->second;
}

const BucketChoice& ServeEngine::bucket_choice(const std::string& name) const {
  const auto it = buckets_.find(name);
  CB_CHECK_MSG(it != buckets_.end(),
               "no bucket for '" << name << "' (engine not warmed)");
  return it->second;
}

std::int64_t ServeEngine::bucket_of(const std::string& name) const {
  return bucket_choice(name).bucket;
}

const std::vector<std::int64_t>& ServeEngine::exec_buckets(
    const std::string& name) const {
  const auto it = exec_buckets_.find(name);
  CB_CHECK_MSG(it != exec_buckets_.end(),
               "no session ladder for '" << name << "' (engine not warmed)");
  return it->second;
}

}  // namespace convbound
