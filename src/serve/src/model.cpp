#include "convbound/serve/model.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "convbound/conv/reference.hpp"
#include "convbound/util/check.hpp"
#include "convbound/util/rng.hpp"

namespace convbound {

namespace {

std::int64_t cap_channels(std::int64_t c, std::int64_t groups,
                          std::int64_t cap) {
  if (cap <= 0 || c <= cap) return c;
  return std::max(groups, cap / groups * groups);
}

ConvShape scaled_shape(ConvShape s, const ServedModelOptions& opts) {
  const bool depthwise = s.groups == s.cin && s.groups == s.cout;
  if (depthwise) {
    if (opts.channel_cap > 0) {
      const std::int64_t c = std::min(s.cin, opts.channel_cap);
      s.cin = s.cout = s.groups = c;
    }
  } else {
    s.cin = cap_channels(s.cin, s.groups, opts.channel_cap);
    s.cout = cap_channels(s.cout, s.groups, opts.channel_cap);
  }
  if (opts.spatial_cap > 0) {
    s.hin = std::min(s.hin, opts.spatial_cap);
    s.win = std::min(s.win, opts.spatial_cap);
  }
  // Keep the padded image at least one kernel wide.
  s.hin = std::max(s.hin, s.kh - 2 * s.pad);
  s.win = std::max(s.win, s.kw - 2 * s.pad);
  s.validate();
  return s;
}

}  // namespace

ServedModel make_served_model(const std::string& name,
                              std::vector<ConvLayer> layers,
                              const ServedModelOptions& opts) {
  CB_CHECK_MSG(!layers.empty(), "served model '" << name << "' has no layers");
  if (opts.max_layers > 0 && layers.size() > opts.max_layers)
    layers.resize(opts.max_layers);

  ServedModel m;
  m.name = name;
  m.layers.reserve(layers.size());
  m.weights.reserve(layers.size());
  for (auto& layer : layers) {
    ConvLayer scaled{layer.name, scaled_shape(layer.shape, opts)};
    scaled.shape.batch = 1;
    // Weights are generated at the batch-1 geometry, so they are identical
    // whichever batch bucket later executes the layer.
    const ConvProblem p = make_problem(
        scaled.shape, opts.weight_seed ^ std::hash<std::string>{}(layer.name));
    m.weights.push_back(p.weights);
    m.layers.push_back(std::move(scaled));
  }
  return m;
}

ConvShape shape_at_batch(ConvShape shape, std::int64_t batch) {
  CB_CHECK_MSG(batch > 0, "batch bucket must be positive");
  shape.batch = batch;
  shape.validate();
  return shape;
}

void adapt_activation(const Tensor4<float>& prev, Tensor4<float>& out) {
  CB_CHECK_MSG(prev.n() == out.n(),
               "adapter must preserve the batch dimension");
  for (std::int64_t n = 0; n < out.n(); ++n)
    for (std::int64_t c = 0; c < out.c(); ++c)
      for (std::int64_t h = 0; h < out.h(); ++h)
        for (std::int64_t w = 0; w < out.w(); ++w) {
          const float v = prev(n, c % prev.c(), h * prev.h() / out.h(),
                               w * prev.w() / out.w());
          out(n, c, h, w) = v / (1.0f + std::abs(v));  // softsign
        }
}

Tensor4<float> make_request_input(const ServedModel& model,
                                  std::uint64_t seed) {
  Tensor4<float> in(1, model.input_c(), model.input_h(), model.input_w());
  Rng rng(seed);
  in.fill_random(rng);
  return in;
}

std::map<std::string, ServedModel> index_models(
    std::vector<ServedModel> models) {
  CB_CHECK_MSG(!models.empty(), "serving needs at least one model");
  std::map<std::string, ServedModel> out;
  for (auto& m : models) {
    const std::string name = m.name;
    // Construction-time validation: a malformed model must fail the server
    // constructor loudly, not surface as a crash in warm() or a batch.
    CB_CHECK_MSG(!name.empty(), "served model with an empty name");
    CB_CHECK_MSG(!m.layers.empty(),
                 "served model '" << name << "' has no layers");
    CB_CHECK_MSG(m.weights.size() == m.layers.size(),
                 "served model '" << name << "' has " << m.layers.size()
                                  << " layers but " << m.weights.size()
                                  << " weight tensors");
    for (const ConvLayer& layer : m.layers) layer.shape.validate();
    CB_CHECK_MSG(out.emplace(name, std::move(m)).second,
                 "duplicate served model '" << name << "'");
  }
  return out;
}

const ServedModel& validate_request(
    const std::map<std::string, ServedModel>& models,
    const InferRequest& request) {
  const auto it = models.find(request.model);
  CB_CHECK_MSG(it != models.end(),
               "unknown served model '" << request.model << "'");
  const ServedModel& m = it->second;
  CB_CHECK_MSG(request.input.n() == 1 && request.input.c() == m.input_c() &&
                   request.input.h() == m.input_h() &&
                   request.input.w() == m.input_w() &&
                   request.input.layout() == Layout::kNCHW,
               "request input must be [1, " << m.input_c() << ", "
                                            << m.input_h() << ", "
                                            << m.input_w() << "] NCHW");
  return m;
}

Tensor4<float> reference_run(const ServedModel& model,
                             const Tensor4<float>& input) {
  CB_CHECK_MSG(input.c() == model.input_c() && input.h() == model.input_h() &&
                   input.w() == model.input_w(),
               "input geometry does not match model '" << model.name << "'");
  Tensor4<float> cur = input;
  for (std::size_t i = 0; i < model.layers.size(); ++i) {
    const ConvShape s = shape_at_batch(model.layers[i].shape, cur.n());
    Tensor4<float> out = conv2d_ref(cur, model.weights[i], s);
    if (i + 1 == model.layers.size()) return out;
    const ConvShape& next = model.layers[i + 1].shape;
    Tensor4<float> adapted(cur.n(), next.cin, next.hin, next.win);
    adapt_activation(out, adapted);
    cur = std::move(adapted);
  }
  return cur;  // unreachable (layers is non-empty)
}

}  // namespace convbound
