#include "convbound/serve/stats.hpp"

#include <algorithm>

namespace convbound {

namespace {

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

StatsSnapshot merge_snapshots(const std::vector<StatsSnapshot>& parts) {
  StatsSnapshot s;
  std::map<int, std::uint64_t> histogram;
  double latency_weighted[3] = {0, 0, 0};
  double makespan = 0;
  double latency_mean_weighted = 0;
  for (const StatsSnapshot& p : parts) {
    s.submitted += p.submitted;
    s.completed += p.completed;
    s.rejected += p.rejected;
    s.expired += p.expired;
    s.failed += p.failed;
    s.batches += p.batches;
    s.sim_seconds += p.sim_seconds;
    s.wall_seconds = std::max(s.wall_seconds, p.wall_seconds);
    s.queue_depth = std::max(s.queue_depth, p.queue_depth);
    s.max_queue_depth = std::max(s.max_queue_depth, p.max_queue_depth);
    s.latency_max = std::max(s.latency_max, p.latency_max);
    s.plans_memoised += p.plans_memoised;
    s.plan_misses_after_warm += p.plan_misses_after_warm;
    s.workspace_buffers += p.workspace_buffers;
    s.workspace_bytes += p.workspace_bytes;
    makespan = std::max(makespan, p.sim_seconds);
    const double w = static_cast<double>(p.completed);
    latency_weighted[0] += w * p.latency_p50;
    latency_weighted[1] += w * p.latency_p95;
    latency_weighted[2] += w * p.latency_p99;
    latency_mean_weighted += w * p.latency_mean;
    for (const auto& [size, count] : p.batch_histogram)
      histogram[size] += count;
  }
  if (s.completed > 0) {
    const double w = static_cast<double>(s.completed);
    s.latency_p50 = latency_weighted[0] / w;
    s.latency_p95 = latency_weighted[1] / w;
    s.latency_p99 = latency_weighted[2] / w;
    s.latency_mean = latency_mean_weighted / w;
  }
  if (s.wall_seconds > 0)
    s.throughput_rps = static_cast<double>(s.completed) / s.wall_seconds;
  if (makespan > 0)
    s.modelled_rps = static_cast<double>(s.completed) / makespan;
  std::uint64_t grouped = 0;
  for (const auto& [size, count] : histogram) {
    s.batch_histogram.emplace_back(size, count);
    grouped += static_cast<std::uint64_t>(size) * count;
  }
  if (s.batches > 0)
    s.mean_batch_size =
        static_cast<double>(grouped) / static_cast<double>(s.batches);
  return s;
}

void ServerStats::mark_start() {
  std::lock_guard<std::mutex> lock(mu_);
  start_ = ServeClock::now();
}

void ServerStats::record_submitted(std::size_t queue_depth_after) {
  std::lock_guard<std::mutex> lock(mu_);
  ++submitted_;
  max_queue_depth_ = std::max(max_queue_depth_, queue_depth_after);
}

void ServerStats::record_rejected() {
  std::lock_guard<std::mutex> lock(mu_);
  ++submitted_;
  ++rejected_;
}

void ServerStats::record_expired(std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  expired_ += n;
}

void ServerStats::record_failed(std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  failed_ += n;
}

void ServerStats::record_batch(std::size_t group, double sim_seconds,
                               const std::vector<double>& latencies) {
  std::lock_guard<std::mutex> lock(mu_);
  ++batches_;
  sim_seconds_ += sim_seconds;
  ++histogram_[static_cast<int>(group)];
  for (double l : latencies) {
    ++completed_;
    latency_sum_ += l;
    latency_max_ = std::max(latency_max_, l);
    if (latencies_.size() < kLatencyReservoir) {
      latencies_.push_back(l);
    } else {
      // Algorithm R: keep each of the completed_ latencies with equal
      // probability kLatencyReservoir / completed_.
      const std::uint64_t j = reservoir_rng_.below(completed_);
      if (j < kLatencyReservoir) latencies_[static_cast<std::size_t>(j)] = l;
    }
  }
}

StatsSnapshot ServerStats::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  StatsSnapshot s;
  s.submitted = submitted_;
  s.completed = completed_;
  s.rejected = rejected_;
  s.expired = expired_;
  s.failed = failed_;
  s.batches = batches_;
  s.sim_seconds = sim_seconds_;
  s.max_queue_depth = max_queue_depth_;
  if (start_ != ServeTimePoint{}) {
    s.wall_seconds =
        std::chrono::duration<double>(ServeClock::now() - start_).count();
  }
  if (s.wall_seconds > 0)
    s.throughput_rps = static_cast<double>(s.completed) / s.wall_seconds;
  if (s.sim_seconds > 0)
    s.modelled_rps = static_cast<double>(s.completed) / s.sim_seconds;

  std::vector<double> sorted = latencies_;
  std::sort(sorted.begin(), sorted.end());
  s.latency_p50 = percentile(sorted, 0.50);
  s.latency_p95 = percentile(sorted, 0.95);
  s.latency_p99 = percentile(sorted, 0.99);
  s.latency_max = latency_max_;
  s.latency_mean = completed_ > 0
                       ? latency_sum_ / static_cast<double>(completed_)
                       : 0;

  std::uint64_t grouped = 0;
  for (const auto& [size, count] : histogram_) {
    s.batch_histogram.emplace_back(size, count);
    grouped += static_cast<std::uint64_t>(size) * count;
  }
  if (batches_ > 0)
    s.mean_batch_size =
        static_cast<double>(grouped) / static_cast<double>(batches_);
  return s;
}

}  // namespace convbound
