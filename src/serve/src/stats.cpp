#include "convbound/serve/stats.hpp"

#include <algorithm>

namespace convbound {

namespace {

/// The histogram-derived latency fields, shared by the single-device
/// snapshot and the fleet merge so every consumer sees the same numbers.
void fill_latency_fields(StatsSnapshot& s) {
  s.latency_p50 = s.latency.quantile(0.50);
  s.latency_p95 = s.latency.quantile(0.95);
  s.latency_p99 = s.latency.quantile(0.99);
  s.latency_max = s.latency.max_value();
  s.latency_mean = s.latency.mean();
  s.queue_wait_p50 = s.queue_wait.quantile(0.50);
  s.queue_wait_p99 = s.queue_wait.quantile(0.99);
  s.queue_wait_mean = s.queue_wait.mean();
  s.batch_delay_p50 = s.batch_delay.quantile(0.50);
  s.batch_delay_p99 = s.batch_delay.quantile(0.99);
  s.batch_delay_mean = s.batch_delay.mean();
  s.exec_p50 = s.exec.quantile(0.50);
  s.exec_p99 = s.exec.quantile(0.99);
  s.exec_mean = s.exec.mean();
}

void fill_class_latency_fields(ClassSnapshot& c) {
  c.latency_p50 = c.latency.quantile(0.50);
  c.latency_p99 = c.latency.quantile(0.99);
  c.latency_mean = c.latency.mean();
  c.latency_max = c.latency.max_value();
  c.queue_wait_p99 = c.queue_wait.quantile(0.99);
  c.batch_delay_p99 = c.batch_delay.quantile(0.99);
  c.exec_p99 = c.exec.quantile(0.99);
}

}  // namespace

double shard_imbalance_ratio(const std::vector<std::size_t>& shard_values) {
  if (shard_values.empty()) return 0;
  std::size_t max = 0;
  std::size_t total = 0;
  for (std::size_t v : shard_values) {
    max = std::max(max, v);
    total += v;
  }
  if (total == 0) return 0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(shard_values.size());
  return static_cast<double>(max) / mean;
}

StatsSnapshot merge_snapshots(const std::vector<StatsSnapshot>& parts) {
  StatsSnapshot s;
  std::map<int, std::uint64_t> histogram;
  double makespan = 0;
  for (const StatsSnapshot& p : parts) {
    s.submitted += p.submitted;
    s.completed += p.completed;
    s.rejected += p.rejected;
    s.quota_rejected += p.quota_rejected;
    s.shutdown_rejected += p.shutdown_rejected;
    s.expired += p.expired;
    s.failed += p.failed;
    s.batches += p.batches;
    s.sim_seconds += p.sim_seconds;
    s.wall_seconds = std::max(s.wall_seconds, p.wall_seconds);
    // Depth at snapshot time SUMS: the fleet's queued population is the
    // total across device front doors. Only the high-water mark is a max —
    // "deepest any single door ever got" (summing per-part marks taken at
    // different instants would overstate it).
    s.queue_depth += p.queue_depth;
    s.max_queue_depth = std::max(s.max_queue_depth, p.max_queue_depth);
    if (!p.shard_depths.empty()) {
      if (s.shard_depths.size() < p.shard_depths.size())
        s.shard_depths.resize(p.shard_depths.size(), 0);
      for (std::size_t i = 0; i < p.shard_depths.size(); ++i)
        s.shard_depths[i] += p.shard_depths[i];
    }
    if (!p.shard_max_depths.empty()) {
      if (s.shard_max_depths.size() < p.shard_max_depths.size())
        s.shard_max_depths.resize(p.shard_max_depths.size(), 0);
      for (std::size_t i = 0; i < p.shard_max_depths.size(); ++i)
        s.shard_max_depths[i] += p.shard_max_depths[i];
    }
    s.plans_memoised += p.plans_memoised;
    s.plan_misses_after_warm += p.plan_misses_after_warm;
    s.workspace_buffers += p.workspace_buffers;
    s.workspace_bytes += p.workspace_bytes;
    makespan = std::max(makespan, p.sim_seconds);
    // Bucket-wise addition: the merged histogram is exactly the histogram
    // of the combined request population, so the fleet percentiles below
    // are real percentiles — not the completed-weighted average of
    // per-device percentiles this merge used to report, which understated
    // a heterogeneous fleet's tail whenever the slow device held it.
    s.latency.merge(p.latency);
    s.queue_wait.merge(p.queue_wait);
    s.batch_delay.merge(p.batch_delay);
    s.exec.merge(p.exec);
    for (const auto& [size, count] : p.batch_histogram)
      histogram[size] += count;
    // Per-class slices merge the same way: counters sum, histograms add
    // bucket-wise, so per-class fleet percentiles stay true percentiles.
    for (const auto& [name, part] : p.classes) {
      ClassSnapshot& c = s.classes[name];
      c.submitted += part.submitted;
      c.completed += part.completed;
      c.rejected += part.rejected;
      c.quota_rejected += part.quota_rejected;
      c.shutdown_rejected += part.shutdown_rejected;
      c.expired += part.expired;
      c.latency.merge(part.latency);
      c.queue_wait.merge(part.queue_wait);
      c.batch_delay.merge(part.batch_delay);
      c.exec.merge(part.exec);
    }
  }
  s.shard_imbalance = shard_imbalance_ratio(s.shard_max_depths);
  fill_latency_fields(s);
  for (auto& [name, c] : s.classes) fill_class_latency_fields(c);
  if (s.wall_seconds > 0)
    s.throughput_rps = static_cast<double>(s.completed) / s.wall_seconds;
  if (makespan > 0)
    s.modelled_rps = static_cast<double>(s.completed) / makespan;
  std::uint64_t grouped = 0;
  for (const auto& [size, count] : histogram) {
    s.batch_histogram.emplace_back(size, count);
    grouped += static_cast<std::uint64_t>(size) * count;
  }
  if (s.batches > 0)
    s.mean_batch_size =
        static_cast<double>(grouped) / static_cast<double>(s.batches);
  return s;
}

void ServerStats::mark_start() {
  MutexLock lock(mu_);
  start_ = ServeClock::now();
}

ServerStats::ClassCounters& ServerStats::class_counters(
    const std::string& cls) {
  return classes_[cls];
}

void ServerStats::record_submitted(std::size_t queue_depth_after,
                                   const std::string& cls) {
  MutexLock lock(mu_);
  ++submitted_;
  max_queue_depth_ = std::max(max_queue_depth_, queue_depth_after);
  if (!cls.empty()) ++class_counters(cls).submitted;
}

void ServerStats::record_rejected(const std::string& cls) {
  MutexLock lock(mu_);
  ++submitted_;
  ++rejected_;
  if (!cls.empty()) {
    ClassCounters& c = class_counters(cls);
    ++c.submitted;
    ++c.rejected;
  }
}

void ServerStats::record_quota_rejected(const std::string& cls) {
  MutexLock lock(mu_);
  ++submitted_;
  ++quota_rejected_;
  if (!cls.empty()) {
    ClassCounters& c = class_counters(cls);
    ++c.submitted;
    ++c.quota_rejected;
  }
}

void ServerStats::record_shutdown_rejected(const std::string& cls) {
  MutexLock lock(mu_);
  ++submitted_;
  ++shutdown_rejected_;
  if (!cls.empty()) {
    ClassCounters& c = class_counters(cls);
    ++c.submitted;
    ++c.shutdown_rejected;
  }
}

void ServerStats::record_expired(std::size_t n, const std::string& cls) {
  MutexLock lock(mu_);
  expired_ += n;
  if (!cls.empty()) class_counters(cls).expired += n;
}

void ServerStats::record_failed(std::size_t n) {
  MutexLock lock(mu_);
  failed_ += n;
}

void ServerStats::record_batch(std::size_t group, double sim_seconds,
                               const std::vector<double>& latencies,
                               const std::vector<std::string>& classes,
                               const std::vector<StageLatencies>& stages) {
  MutexLock lock(mu_);
  ++batches_;
  sim_seconds_ += sim_seconds;
  ++histogram_[static_cast<int>(group)];
  for (std::size_t i = 0; i < latencies.size(); ++i) {
    ++completed_;
    latency_.record(latencies[i]);
    const bool staged = i < stages.size();
    if (staged) {
      queue_wait_.record(stages[i].queue_wait);
      batch_delay_.record(stages[i].batch_delay);
      exec_.record(stages[i].exec);
    }
    if (i < classes.size() && !classes[i].empty()) {
      ClassCounters& c = class_counters(classes[i]);
      ++c.completed;
      c.latency.record(latencies[i]);
      if (staged) {
        c.queue_wait.record(stages[i].queue_wait);
        c.batch_delay.record(stages[i].batch_delay);
        c.exec.record(stages[i].exec);
      }
    }
  }
}

StatsSnapshot ServerStats::snapshot() const {
  MutexLock lock(mu_);
  StatsSnapshot s;
  s.submitted = submitted_;
  s.completed = completed_;
  s.rejected = rejected_;
  s.quota_rejected = quota_rejected_;
  s.shutdown_rejected = shutdown_rejected_;
  s.expired = expired_;
  s.failed = failed_;
  s.batches = batches_;
  s.sim_seconds = sim_seconds_;
  s.max_queue_depth = max_queue_depth_;
  if (start_ != ServeTimePoint{}) {
    s.wall_seconds =
        std::chrono::duration<double>(ServeClock::now() - start_).count();
  }
  if (s.wall_seconds > 0)
    s.throughput_rps = static_cast<double>(s.completed) / s.wall_seconds;
  if (s.sim_seconds > 0)
    s.modelled_rps = static_cast<double>(s.completed) / s.sim_seconds;

  s.latency = latency_;
  s.queue_wait = queue_wait_;
  s.batch_delay = batch_delay_;
  s.exec = exec_;
  fill_latency_fields(s);

  for (const auto& [name, counters] : classes_) {
    ClassSnapshot c;
    c.submitted = counters.submitted;
    c.completed = counters.completed;
    c.rejected = counters.rejected;
    c.quota_rejected = counters.quota_rejected;
    c.shutdown_rejected = counters.shutdown_rejected;
    c.expired = counters.expired;
    c.latency = counters.latency;
    c.queue_wait = counters.queue_wait;
    c.batch_delay = counters.batch_delay;
    c.exec = counters.exec;
    fill_class_latency_fields(c);
    s.classes.emplace(name, std::move(c));
  }

  std::uint64_t grouped = 0;
  for (const auto& [size, count] : histogram_) {
    s.batch_histogram.emplace_back(size, count);
    grouped += static_cast<std::uint64_t>(size) * count;
  }
  if (batches_ > 0)
    s.mean_batch_size =
        static_cast<double>(grouped) / static_cast<double>(batches_);
  return s;
}

StripedServerStats::StripedServerStats(std::size_t stripes) {
  const std::size_t n = std::max<std::size_t>(1, stripes);
  stripes_.reserve(n + 1);
  for (std::size_t i = 0; i < n + 1; ++i)
    stripes_.push_back(std::make_unique<ServerStats>());
}

void StripedServerStats::mark_start() {
  for (auto& s : stripes_) s->mark_start();
}

StatsSnapshot StripedServerStats::snapshot() const {
  // Every stripe, submit and exec alike: a snapshot that read only one
  // stripe would miss whatever the other shards' producers recorded.
  std::vector<StatsSnapshot> parts;
  parts.reserve(stripes_.size());
  for (const auto& s : stripes_) parts.push_back(s->snapshot());
  return merge_snapshots(parts);
}

}  // namespace convbound
