#include "convbound/serve/stats.hpp"

#include <algorithm>

namespace convbound {

namespace {

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

void ServerStats::mark_start() {
  std::lock_guard<std::mutex> lock(mu_);
  start_ = ServeClock::now();
}

void ServerStats::record_submitted(std::size_t queue_depth_after) {
  std::lock_guard<std::mutex> lock(mu_);
  ++submitted_;
  max_queue_depth_ = std::max(max_queue_depth_, queue_depth_after);
}

void ServerStats::record_rejected() {
  std::lock_guard<std::mutex> lock(mu_);
  ++submitted_;
  ++rejected_;
}

void ServerStats::record_expired(std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  expired_ += n;
}

void ServerStats::record_failed(std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  failed_ += n;
}

void ServerStats::record_batch(std::size_t group, double sim_seconds,
                               const std::vector<double>& latencies) {
  std::lock_guard<std::mutex> lock(mu_);
  ++batches_;
  sim_seconds_ += sim_seconds;
  ++histogram_[static_cast<int>(group)];
  for (double l : latencies) {
    ++completed_;
    latency_sum_ += l;
    latency_max_ = std::max(latency_max_, l);
    if (latencies_.size() < kLatencyReservoir) {
      latencies_.push_back(l);
    } else {
      // Algorithm R: keep each of the completed_ latencies with equal
      // probability kLatencyReservoir / completed_.
      const std::uint64_t j = reservoir_rng_.below(completed_);
      if (j < kLatencyReservoir) latencies_[static_cast<std::size_t>(j)] = l;
    }
  }
}

StatsSnapshot ServerStats::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  StatsSnapshot s;
  s.submitted = submitted_;
  s.completed = completed_;
  s.rejected = rejected_;
  s.expired = expired_;
  s.failed = failed_;
  s.batches = batches_;
  s.sim_seconds = sim_seconds_;
  s.max_queue_depth = max_queue_depth_;
  if (start_ != ServeTimePoint{}) {
    s.wall_seconds =
        std::chrono::duration<double>(ServeClock::now() - start_).count();
  }
  if (s.wall_seconds > 0)
    s.throughput_rps = static_cast<double>(s.completed) / s.wall_seconds;
  if (s.sim_seconds > 0)
    s.modelled_rps = static_cast<double>(s.completed) / s.sim_seconds;

  std::vector<double> sorted = latencies_;
  std::sort(sorted.begin(), sorted.end());
  s.latency_p50 = percentile(sorted, 0.50);
  s.latency_p95 = percentile(sorted, 0.95);
  s.latency_p99 = percentile(sorted, 0.99);
  s.latency_max = latency_max_;
  s.latency_mean = completed_ > 0
                       ? latency_sum_ / static_cast<double>(completed_)
                       : 0;

  std::uint64_t grouped = 0;
  for (const auto& [size, count] : histogram_) {
    s.batch_histogram.emplace_back(size, count);
    grouped += static_cast<std::uint64_t>(size) * count;
  }
  if (batches_ > 0)
    s.mean_batch_size =
        static_cast<double>(grouped) / static_cast<double>(batches_);
  return s;
}

}  // namespace convbound
