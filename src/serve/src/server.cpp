#include "convbound/serve/server.hpp"

#include <algorithm>

#include "convbound/obs/trace.hpp"
#include "convbound/util/check.hpp"

namespace convbound {

InferenceServer::InferenceServer(std::vector<ServedModel> models,
                                 ServerOptions opts)
    : opts_(std::move(opts)),
      models_(index_models(std::move(models))),
      tenants_(opts_.classes),
      stats_(opts_.shards),
      engine_(models_, opts_.engine_options(), &stats_.exec_stripe()),
      queue_(opts_.max_queue, opts_.shards) {
  CB_CHECK_MSG(opts_.workers >= 1, "workers must be >= 1");
  queue_.set_tenancy(&tenants_, opts_.admission_congestion);
  // The queue answers expired requests itself (promptly, freeing capacity);
  // it reports them here so the stats stay in step with the futures. Expiry
  // runs on whichever thread swept it; the exec stripe keeps it off the
  // submit stripes' locks.
  queue_.set_on_expired([this](std::size_t cls, std::size_t n) {
    stats_.exec_stripe().record_expired(
        n, cls < tenants_.size() ? tenants_.cls(cls).name : std::string());
  });
}

InferenceServer::~InferenceServer() { stop(); }

void InferenceServer::start() {
  CB_CHECK_MSG(!stopped_.load(std::memory_order_seq_cst),
               "server cannot restart after stop()");
  CB_CHECK_MSG(!started_.load(std::memory_order_seq_cst),
               "server already started");
  engine_.warm();
  // Memo-hit replay of the warm plans: one lookup table for the placement
  // trace events instead of a predicted_batch_seconds() call per group.
  for (const auto& [name, model] : models_)
    predicted_[name] = engine_.predicted_batch_seconds(name);

  workers_ = std::make_unique<ThreadPool>(
      static_cast<std::size_t>(opts_.workers));
  free_slots_ = opts_.workers;
  scheduler_ = std::make_unique<BatchScheduler>(
      queue_, opts_.max_delay,
      [this](const std::string& m) {
        wait_for_slot();
        return Placement{engine_.bucket_of(m), 0, predicted_.at(m)};
      },
      [this](std::vector<PendingRequest> group, const std::string& m,
             const Placement&) {
        (void)workers_->submit(
            [this, g = std::move(group), m]() mutable {
              // RAII: the slot must return even if execute_batch throws
              // (its future is discarded, so a leak would silently eat an
              // executor slot until the scheduler deadlocks).
              struct SlotReturn {
                InferenceServer* server;
                ~SlotReturn() { server->release_slot(); }
              } slot_return{this};
              engine_.execute_batch(std::move(g), m);
            });
      });
  stats_.mark_start();
  started_.store(true, std::memory_order_seq_cst);
  scheduler_->start();
}

void InferenceServer::stop() {
  if (stopped_.exchange(true, std::memory_order_seq_cst)) return;
  queue_.close();
  // The scheduler drains the closed queue (collect returns immediately once
  // closed), dispatching every remaining group, then exits.
  if (scheduler_ != nullptr) scheduler_->join();
  // ThreadPool destruction runs all queued batch tasks to completion.
  workers_.reset();
  // Only a never-started server still holds queued requests here.
  for (auto& p : queue_.drain()) {
    InferResponse r;
    r.status = ServeStatus::kShutdown;
    p.promise.set_value(std::move(r));
  }
}

std::future<InferResponse> InferenceServer::submit(InferRequest request) {
  validate_request(models_, request);
  PendingRequest p;
  p.class_index = tenants_.resolve(request.tenant);
  p.tenant_class = tenants_.cls(p.class_index).name;
  p.request = std::move(request);
  p.enqueued = ServeClock::now();
  p.class_deadline = tenants_.effective_deadline(p.class_index, p.enqueued,
                                                 ServeTimePoint::max());
  const std::string cls = p.tenant_class;
  std::future<InferResponse> fut = p.promise.get_future();
  // Correlation id only when tracing: the fetch_add on a shared counter is
  // cheap but not free, and the submit hot path is gated at zero overhead
  // with tracing off (bench/trace_overhead.cpp).
  const bool tracing = obs::on();
  if (tracing) p.trace_id = ObsRegistry::next_request_id();
  const std::uint64_t trace_id = p.trace_id;
  const ServeTimePoint enqueued = p.enqueued;

  // Stats recording goes to this request's shard stripe, so producers
  // hashed to different shards never contend on a stats lock either.
  ServerStats& stripe =
      stats_.stripe(queue_.shard_of(p.request.model, p.class_index));

  if (stopped_.load(std::memory_order_seq_cst)) {
    InferResponse r;
    r.status = ServeStatus::kShutdown;
    stripe.record_shutdown_rejected(cls);
    obs::instant(TraceStage::kShed, enqueued, trace_id, 0, -1,
                 static_cast<double>(ServeStatus::kShutdown));
    p.promise.set_value(std::move(r));
    return fut;
  }
  // `p` is untouched on a non-kOk push; the queue's own closed flag (not a
  // re-read of stopped_) decides shutdown races, so a submit that loses to
  // a concurrent stop() resolves kShutdown instead of hanging.
  std::size_t depth_after = 0;
  switch (queue_.push(std::move(p), &depth_after)) {
    case RequestQueue::Admit::kOk:
      // depth_after came out of the push itself — the old code re-locked
      // the queue with queue_.depth() right after push released it.
      stripe.record_submitted(depth_after, cls);
      obs::instant(TraceStage::kAdmit, enqueued, trace_id, 0, -1,
                   static_cast<double>(depth_after));
      return fut;
    case RequestQueue::Admit::kFull: {
      InferResponse r;
      r.status = ServeStatus::kRejected;
      stripe.record_rejected(cls);
      obs::instant(TraceStage::kShed, enqueued, trace_id, 0, -1,
                   static_cast<double>(ServeStatus::kRejected));
      p.promise.set_value(std::move(r));
      return fut;
    }
    case RequestQueue::Admit::kQuota: {
      InferResponse r;
      r.status = ServeStatus::kQuotaExceeded;
      stripe.record_quota_rejected(cls);
      obs::instant(TraceStage::kShed, enqueued, trace_id, 0, -1,
                   static_cast<double>(ServeStatus::kQuotaExceeded));
      p.promise.set_value(std::move(r));
      return fut;
    }
    case RequestQueue::Admit::kClosed: {
      InferResponse r;
      r.status = ServeStatus::kShutdown;
      stripe.record_shutdown_rejected(cls);
      obs::instant(TraceStage::kShed, enqueued, trace_id, 0, -1,
                   static_cast<double>(ServeStatus::kShutdown));
      p.promise.set_value(std::move(r));
      return fut;
    }
  }
  return fut;  // unreachable
}

void InferenceServer::wait_for_slot() {
  UniqueLock lock(slots_mu_);
  while (free_slots_ <= 0) slots_cv_.wait(lock);
  --free_slots_;
}

void InferenceServer::release_slot() {
  {
    MutexLock lock(slots_mu_);
    ++free_slots_;
  }
  slots_cv_.notify_one();
}

StatsSnapshot InferenceServer::stats() const {
  StatsSnapshot s = stats_.snapshot();
  s.queue_depth = queue_.depth();
  s.shard_depths.resize(queue_.num_shards());
  s.shard_max_depths.resize(queue_.num_shards());
  for (std::size_t i = 0; i < queue_.num_shards(); ++i) {
    s.shard_depths[i] = queue_.shard_depth(i);
    s.shard_max_depths[i] = queue_.shard_max_depth(i);
  }
  s.shard_imbalance = shard_imbalance_ratio(s.shard_max_depths);
  engine_.fill_stats(s);
  return s;
}

const ServedModel& InferenceServer::model(const std::string& name) const {
  const auto it = models_.find(name);
  CB_CHECK_MSG(it != models_.end(), "unknown served model '" << name << "'");
  return it->second;
}

}  // namespace convbound
