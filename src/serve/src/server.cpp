#include "convbound/serve/server.hpp"

#include <algorithm>

#include "convbound/util/check.hpp"

namespace convbound {

namespace {

double seconds_between(ServeTimePoint from, ServeTimePoint to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

InferenceServer::InferenceServer(std::vector<ServedModel> models,
                                 ServerOptions opts)
    : opts_(std::move(opts)), queue_(opts_.max_queue) {
  CB_CHECK_MSG(!models.empty(), "server needs at least one model");
  CB_CHECK_MSG(opts_.workers >= 1 && opts_.replicas >= 1,
               "workers and replicas must be >= 1");
  for (auto& m : models) {
    const std::string name = m.name;
    CB_CHECK_MSG(models_.emplace(name, std::move(m)).second,
                 "duplicate served model '" << name << "'");
  }
}

InferenceServer::~InferenceServer() { stop(); }

void InferenceServer::start() {
  CB_CHECK_MSG(!started_, "server already started");
  PlannerOptions popts;
  popts.mode = opts_.plan_mode;
  popts.candidates = CandidateSet::kOurs;
  popts.tune_budget = opts_.tune_budget;
  popts.seed = opts_.seed;

  // Sessions are constructed serially (cheap), then warmed in parallel —
  // planner, tune cache, and per-session workspaces are all safe under
  // concurrent warm(), so startup scales with cores instead of with
  // models x buckets x replicas.
  std::vector<std::unique_ptr<ServeSession>> fresh;
  for (auto& [name, model] : models_) {
    // Bound-guided bucket choice; the full candidate scoring is kept for
    // reporting even when the bucket is forced.
    BucketChoice choice =
        choose_batch_bucket(model, opts_.machine, opts_.policy);
    if (opts_.force_bucket > 0) {
      choice.bucket = opts_.force_bucket;
      bool scored = false;
      for (const auto& s : choice.scores)
        scored = scored || s.bucket == choice.bucket;
      // An off-ladder forced bucket (e.g. 3) gets a real analytic score so
      // reporting still shows what was chosen and what it costs.
      if (!scored)
        choice.scores.push_back(score_batch_bucket(model, opts_.machine,
                                                   choice.bucket,
                                                   opts_.policy));
      for (auto& s : choice.scores) s.chosen = s.bucket == choice.bucket;
    }
    buckets_.emplace(name, std::move(choice));

    // Warm one session ladder per replica: powers of two up to the chosen
    // bucket (plus the chosen bucket itself when forced off-ladder), so a
    // partial group runs at the smallest covering bucket.
    std::vector<std::int64_t> ladder;
    for (std::int64_t b = 1; b < buckets_.at(name).bucket; b *= 2)
      ladder.push_back(b);
    ladder.push_back(buckets_.at(name).bucket);
    exec_buckets_.emplace(name, ladder);

    Planner* planner = nullptr;
    {
      std::lock_guard<std::mutex> lock(planners_mu_);
      planner = &planners_
                     .emplace(std::piecewise_construct,
                              std::forward_as_tuple(name),
                              std::forward_as_tuple(&cache_))
                     .first->second;  // map nodes are stable after unlock
    }
    for (std::int64_t b : ladder)
      for (int r = 0; r < opts_.replicas; ++r)
        fresh.push_back(std::make_unique<ServeSession>(
            model, b, opts_.machine, *planner, popts));
  }
  ThreadPool::global().parallel_for(
      0, fresh.size(), [&](std::size_t i) { fresh[i]->warm(); });
  for (auto& session : fresh) sessions_.add(std::move(session));
  {
    const std::size_t warm = plans_memoised();
    std::lock_guard<std::mutex> lock(planners_mu_);
    warm_plans_ = warm;
  }

  workers_ = std::make_unique<ThreadPool>(
      static_cast<std::size_t>(opts_.workers));
  free_slots_ = opts_.workers;
  scheduler_ = std::make_unique<BatchScheduler>(
      queue_, opts_.max_delay,
      [this](const std::string& m) { return bucket_of(m); },
      [this](std::vector<PendingRequest> group, const std::string& m) {
        (void)workers_->submit(
            [this, g = std::move(group), m]() mutable {
              // RAII: the slot must return even if execute_batch throws
              // (its future is discarded, so a leak would silently eat an
              // executor slot until the scheduler deadlocks).
              struct SlotReturn {
                InferenceServer* server;
                ~SlotReturn() { server->release_slot(); }
              } slot_return{this};
              execute_batch(std::move(g), m);
            });
      },
      [this] { wait_for_slot(); });
  stats_.mark_start();
  started_ = true;
  scheduler_->start();
}

void InferenceServer::stop() {
  if (stopped_.exchange(true)) return;
  queue_.close();
  // The scheduler drains the closed queue (collect returns immediately once
  // closed), dispatching every remaining group, then exits.
  if (scheduler_ != nullptr) scheduler_->join();
  // ThreadPool destruction runs all queued batch tasks to completion.
  workers_.reset();
  // Only a never-started server still holds queued requests here.
  for (auto& p : queue_.drain()) {
    InferResponse r;
    r.status = ServeStatus::kShutdown;
    p.promise.set_value(std::move(r));
  }
}

std::future<InferResponse> InferenceServer::submit(InferRequest request) {
  const ServedModel& m = model(request.model);
  CB_CHECK_MSG(request.input.n() == 1 && request.input.c() == m.input_c() &&
                   request.input.h() == m.input_h() &&
                   request.input.w() == m.input_w() &&
                   request.input.layout() == Layout::kNCHW,
               "request input must be [1, " << m.input_c() << ", "
                                            << m.input_h() << ", "
                                            << m.input_w() << "] NCHW");
  PendingRequest p;
  p.request = std::move(request);
  p.enqueued = ServeClock::now();
  std::future<InferResponse> fut = p.promise.get_future();

  if (stopped_) {
    InferResponse r;
    r.status = ServeStatus::kShutdown;
    p.promise.set_value(std::move(r));
    return fut;
  }
  if (!queue_.push(std::move(p))) {
    // `p` is untouched on a failed push (full or closed). stop() flips
    // stopped_ before closing the queue, so re-reading it distinguishes a
    // shutdown race from genuine backpressure.
    InferResponse r;
    if (stopped_) {
      r.status = ServeStatus::kShutdown;
    } else {
      r.status = ServeStatus::kRejected;
      stats_.record_rejected();
    }
    p.promise.set_value(std::move(r));
    return fut;
  }
  stats_.record_submitted(queue_.depth());
  return fut;
}

void InferenceServer::execute_batch(std::vector<PendingRequest> group,
                                    const std::string& model_name) {
  // Complete every not-yet-completed promise with kError; promises that
  // were already satisfied before a mid-loop throw are skipped.
  std::vector<PendingRequest> live;
  const auto fail_batch = [&](const char* what) {
    stats_.record_failed(live.size());
    for (auto& p : live) {
      InferResponse r;
      r.status = ServeStatus::kError;
      r.error = what;
      try {
        p.promise.set_value(std::move(r));
      } catch (const std::future_error&) {
      }
    }
  };

  try {
    const ServeTimePoint now = ServeClock::now();
    live.reserve(group.size());
    for (auto& p : group) {
      if (p.request.deadline < now) {
        InferResponse r;
        r.status = ServeStatus::kDeadlineExceeded;
        r.latency_seconds = seconds_between(p.enqueued, now);
        // Record before completing: a client that sees its future resolve
        // must also see the stats reflect it.
        stats_.record_expired(1);
        p.promise.set_value(std::move(r));
      } else {
        live.push_back(std::move(p));
      }
    }
    if (live.empty()) return;

    // Smallest warm bucket covering the group (the ladder ends at the
    // scheduler's max group size, so one always exists).
    const std::vector<std::int64_t>& ladder = exec_buckets(model_name);
    std::int64_t bucket = ladder.back();
    for (std::int64_t b : ladder) {
      if (b >= static_cast<std::int64_t>(live.size())) {
        bucket = b;
        break;
      }
    }
    SessionPool::Guard session = sessions_.acquire(model_name, bucket);
    const ServedModel& m = session->model();
    const std::int64_t lane_elems =
        m.input_c() * m.input_h() * m.input_w();

    Workspace::Lease in = session->workspace().acquire(
        bucket, m.input_c(), m.input_h(), m.input_w());
    Tensor4<float>& batch = in.tensor();
    for (std::size_t i = 0; i < live.size(); ++i) {
      const Tensor4<float>& src = live[i].request.input;
      std::copy(src.data(), src.data() + lane_elems,
                batch.data() + static_cast<std::int64_t>(i) * lane_elems);
    }
    // Padded lanes cannot influence live lanes (conv algorithms process
    // batch lanes independently); zero them anyway so every execution of a
    // partial group is bit-reproducible.
    std::fill(batch.data() +
                  static_cast<std::int64_t>(live.size()) * lane_elems,
              batch.data() + batch.size(), 0.0f);

    ServeSession::BatchResult res = session->run(batch);
    const Tensor4<float>& out = res.output.tensor();
    const std::int64_t out_lane = out.c() * out.h() * out.w();
    const ServeTimePoint done = ServeClock::now();

    std::vector<InferResponse> responses;
    std::vector<double> latencies;
    responses.reserve(live.size());
    latencies.reserve(live.size());
    for (std::size_t i = 0; i < live.size(); ++i) {
      InferResponse r;
      r.status = ServeStatus::kOk;
      r.output = Tensor4<float>(1, out.c(), out.h(), out.w());
      std::copy(out.data() + static_cast<std::int64_t>(i) * out_lane,
                out.data() + static_cast<std::int64_t>(i + 1) * out_lane,
                r.output.data());
      r.latency_seconds = seconds_between(live[i].enqueued, done);
      r.batch_size = static_cast<int>(live.size());
      r.batch_sim_seconds = res.stats.sim_time;
      latencies.push_back(r.latency_seconds);
      responses.push_back(std::move(r));
    }
    // Record before completing any promise: a client that sees its future
    // resolve must also see the stats reflect the whole batch.
    stats_.record_batch(live.size(), res.stats.sim_time, latencies);
    for (std::size_t i = 0; i < live.size(); ++i)
      live[i].promise.set_value(std::move(responses[i]));
  } catch (const std::exception& e) {
    fail_batch(e.what());
  } catch (...) {
    fail_batch("unknown execution error");
  }
}

void InferenceServer::wait_for_slot() {
  std::unique_lock<std::mutex> lock(slots_mu_);
  slots_cv_.wait(lock, [this] { return free_slots_ > 0; });
  --free_slots_;
}

void InferenceServer::release_slot() {
  {
    std::lock_guard<std::mutex> lock(slots_mu_);
    ++free_slots_;
  }
  slots_cv_.notify_one();
}

std::size_t InferenceServer::plans_memoised() const {
  std::lock_guard<std::mutex> lock(planners_mu_);
  std::size_t n = 0;
  for (const auto& [name, planner] : planners_) n += planner.plans_memoised();
  return n;
}

StatsSnapshot InferenceServer::stats() const {
  StatsSnapshot s = stats_.snapshot();
  s.queue_depth = queue_.depth();
  s.plans_memoised = plans_memoised();
  std::size_t warm_plans = 0;
  {
    std::lock_guard<std::mutex> lock(planners_mu_);
    warm_plans = warm_plans_;
  }
  if (started_ && s.plans_memoised >= warm_plans)
    s.plan_misses_after_warm = s.plans_memoised - warm_plans;
  s.workspace_buffers = sessions_.workspace_buffers();
  s.workspace_bytes = sessions_.workspace_bytes();
  return s;
}

const ServedModel& InferenceServer::model(const std::string& name) const {
  const auto it = models_.find(name);
  CB_CHECK_MSG(it != models_.end(), "unknown served model '" << name << "'");
  return it->second;
}

const BucketChoice& InferenceServer::bucket_choice(
    const std::string& name) const {
  const auto it = buckets_.find(name);
  CB_CHECK_MSG(it != buckets_.end(),
               "no bucket for '" << name << "' (server not started)");
  return it->second;
}

std::int64_t InferenceServer::bucket_of(const std::string& name) const {
  return bucket_choice(name).bucket;
}

const std::vector<std::int64_t>& InferenceServer::exec_buckets(
    const std::string& name) const {
  const auto it = exec_buckets_.find(name);
  CB_CHECK_MSG(it != exec_buckets_.end(),
               "no session ladder for '" << name
                                         << "' (server not started)");
  return it->second;
}

}  // namespace convbound
