#include "convbound/serve/server.hpp"

#include <algorithm>

#include "convbound/util/check.hpp"

namespace convbound {

InferenceServer::InferenceServer(std::vector<ServedModel> models,
                                 ServerOptions opts)
    : opts_(std::move(opts)),
      models_(index_models(std::move(models))),
      engine_(models_, opts_.engine_options(), &stats_),
      queue_(opts_.max_queue) {
  CB_CHECK_MSG(opts_.workers >= 1, "workers must be >= 1");
  // The queue answers expired requests itself (promptly, freeing capacity);
  // it reports them here so the stats stay in step with the futures.
  queue_.set_on_expired([this](std::size_t n) { stats_.record_expired(n); });
}

InferenceServer::~InferenceServer() { stop(); }

void InferenceServer::start() {
  CB_CHECK_MSG(!started_, "server already started");
  engine_.warm();

  workers_ = std::make_unique<ThreadPool>(
      static_cast<std::size_t>(opts_.workers));
  free_slots_ = opts_.workers;
  scheduler_ = std::make_unique<BatchScheduler>(
      queue_, opts_.max_delay,
      [this](const std::string& m) {
        wait_for_slot();
        return Placement{engine_.bucket_of(m), 0};
      },
      [this](std::vector<PendingRequest> group, const std::string& m,
             const Placement&) {
        (void)workers_->submit(
            [this, g = std::move(group), m]() mutable {
              // RAII: the slot must return even if execute_batch throws
              // (its future is discarded, so a leak would silently eat an
              // executor slot until the scheduler deadlocks).
              struct SlotReturn {
                InferenceServer* server;
                ~SlotReturn() { server->release_slot(); }
              } slot_return{this};
              engine_.execute_batch(std::move(g), m);
            });
      });
  stats_.mark_start();
  started_ = true;
  scheduler_->start();
}

void InferenceServer::stop() {
  if (stopped_.exchange(true)) return;
  queue_.close();
  // The scheduler drains the closed queue (collect returns immediately once
  // closed), dispatching every remaining group, then exits.
  if (scheduler_ != nullptr) scheduler_->join();
  // ThreadPool destruction runs all queued batch tasks to completion.
  workers_.reset();
  // Only a never-started server still holds queued requests here.
  for (auto& p : queue_.drain()) {
    InferResponse r;
    r.status = ServeStatus::kShutdown;
    p.promise.set_value(std::move(r));
  }
}

std::future<InferResponse> InferenceServer::submit(InferRequest request) {
  validate_request(models_, request);
  PendingRequest p;
  p.request = std::move(request);
  p.enqueued = ServeClock::now();
  std::future<InferResponse> fut = p.promise.get_future();

  if (stopped_) {
    InferResponse r;
    r.status = ServeStatus::kShutdown;
    p.promise.set_value(std::move(r));
    return fut;
  }
  if (!queue_.push(std::move(p))) {
    // `p` is untouched on a failed push (full or closed). stop() flips
    // stopped_ before closing the queue, so re-reading it distinguishes a
    // shutdown race from genuine backpressure.
    InferResponse r;
    if (stopped_) {
      r.status = ServeStatus::kShutdown;
    } else {
      r.status = ServeStatus::kRejected;
      stats_.record_rejected();
    }
    p.promise.set_value(std::move(r));
    return fut;
  }
  stats_.record_submitted(queue_.depth());
  return fut;
}

void InferenceServer::wait_for_slot() {
  std::unique_lock<std::mutex> lock(slots_mu_);
  slots_cv_.wait(lock, [this] { return free_slots_ > 0; });
  --free_slots_;
}

void InferenceServer::release_slot() {
  {
    std::lock_guard<std::mutex> lock(slots_mu_);
    ++free_slots_;
  }
  slots_cv_.notify_one();
}

StatsSnapshot InferenceServer::stats() const {
  StatsSnapshot s = stats_.snapshot();
  s.queue_depth = queue_.depth();
  engine_.fill_stats(s);
  return s;
}

const ServedModel& InferenceServer::model(const std::string& name) const {
  const auto it = models_.find(name);
  CB_CHECK_MSG(it != models_.end(), "unknown served model '" << name << "'");
  return it->second;
}

}  // namespace convbound
