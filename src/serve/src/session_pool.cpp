#include "convbound/serve/session_pool.hpp"

#include "convbound/util/check.hpp"

namespace convbound {

namespace {

std::string pool_key(const std::string& model, std::int64_t bucket) {
  return model + "|" + std::to_string(bucket);
}

}  // namespace

// ------------------------------------------------------- ServeSession ----

ServeSession::ServeSession(const ServedModel& model, std::int64_t bucket,
                           const MachineSpec& spec, Planner& planner,
                           const PlannerOptions& plan_opts)
    : model_(&model),
      bucket_(bucket),
      // Serial block draining: each in-flight batch occupies exactly one
      // worker thread, like the per-worker replicas of BatchMeasurer.
      gpu_(spec, &ThreadPool::global(), ExecMode::kSerial),
      plan_opts_(plan_opts),
      planner_(&planner),
      executor_(workspace_) {
  CB_CHECK_MSG(bucket_ >= 1, "batch bucket must be >= 1");
}

void ServeSession::warm() {
  plans_.clear();
  plans_.reserve(model_->layers.size());
  for (const auto& layer : model_->layers)
    plans_.push_back(planner_->plan(gpu_, shape_at_batch(layer.shape, bucket_),
                                    plan_opts_));
  // One throwaway pass touches every workspace geometry (layer outputs and
  // adapter staging buffers), so serving starts allocation-free.
  Workspace::Lease in = workspace_.acquire(bucket_, model_->input_c(),
                                           model_->input_h(),
                                           model_->input_w());
  in.tensor().fill(0.0f);
  (void)run(in.tensor());
}

ServeSession::BatchResult ServeSession::run(
    const Tensor4<float>& batch_input) {
  CB_CHECK_MSG(plans_.size() == model_->layers.size(),
               "session for '" << model_->name << "' not warmed");
  CB_CHECK_MSG(batch_input.n() == bucket_,
               "batch input has " << batch_input.n()
                                  << " lanes, session bucket is " << bucket_);
  BatchResult result;
  Workspace::Lease cur;  // holds the adapter output between layers
  const Tensor4<float>* input = &batch_input;
  for (std::size_t i = 0; i < plans_.size(); ++i) {
    ConvExecutor::Execution ex =
        executor_.execute(gpu_, plans_[i], *input, model_->weights[i]);
    result.stats += ex.stats;
    if (i + 1 == plans_.size()) {
      result.output = std::move(ex.output);
      break;
    }
    const ConvShape& next = model_->layers[i + 1].shape;
    Workspace::Lease adapted =
        workspace_.acquire(bucket_, next.cin, next.hin, next.win);
    adapt_activation(ex.output.tensor(), adapted.tensor());
    cur = std::move(adapted);  // releases the previous adapter buffer
    input = &cur.tensor();
  }
  return result;
}

// -------------------------------------------------------- SessionPool ----

SessionPool::Guard::~Guard() {
  if (pool_ != nullptr) pool_->release(session_);
}

void SessionPool::add(std::unique_ptr<ServeSession> session) {
  CB_CHECK(session != nullptr);
  const std::string key =
      pool_key(session->model().name, session->bucket());
  MutexLock lock(mu_);
  replicas_[key].push_back(Replica{std::move(session), false});
}

SessionPool::Guard SessionPool::acquire(const std::string& model,
                                        std::int64_t bucket) {
  const std::string key = pool_key(model, bucket);
  UniqueLock lock(mu_);
  const auto it = replicas_.find(key);
  CB_CHECK_MSG(it != replicas_.end(),
               "no session registered for " << key);
  for (;;) {
    for (auto& r : it->second) {
      if (!r.busy) {
        r.busy = true;
        return Guard(this, r.session.get());
      }
    }
    cv_.wait(lock);
  }
}

void SessionPool::release(ServeSession* session) {
  {
    MutexLock lock(mu_);
    for (auto& [key, reps] : replicas_) {
      for (auto& r : reps) {
        if (r.session.get() == session) {
          r.busy = false;
          goto released;
        }
      }
    }
  released:;
  }
  cv_.notify_all();
}

std::size_t SessionPool::sessions() const {
  MutexLock lock(mu_);
  std::size_t n = 0;
  for (const auto& [key, reps] : replicas_) n += reps.size();
  return n;
}

std::size_t SessionPool::workspace_buffers() const {
  MutexLock lock(mu_);
  std::size_t n = 0;
  for (const auto& [key, reps] : replicas_)
    for (const auto& r : reps) n += r.session->workspace().buffers();
  return n;
}

std::uint64_t SessionPool::workspace_bytes() const {
  MutexLock lock(mu_);
  std::uint64_t n = 0;
  for (const auto& [key, reps] : replicas_)
    for (const auto& r : reps) n += r.session->workspace().bytes_reserved();
  return n;
}

}  // namespace convbound
