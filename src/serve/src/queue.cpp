#include "convbound/serve/queue.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "convbound/obs/trace.hpp"

namespace convbound {

void RequestQueue::set_tenancy(const TenantTable* table, double congestion) {
  // Setup-time call (before any concurrent user), but class_depth_ is
  // lock-guarded state: taking mu_ keeps the write visibly consistent with
  // the annotation instead of carving out an exemption for one line.
  MutexLock lock(mu_);
  table_ = table;
  congestion_ = std::clamp(congestion, 0.0, 1.0);
  weight_sum_ = 0;
  if (table_) {
    for (const TenantClass& c : table_->classes()) weight_sum_ += c.quota_weight;
    class_depth_.assign(table_->size(), 0);
  }
  if (weight_sum_ <= 0) weight_sum_ = 1.0;
}

void RequestQueue::bump_class(std::size_t i, std::ptrdiff_t delta) {
  if (class_depth_.size() <= i) class_depth_.resize(i + 1, 0);
  class_depth_[i] = static_cast<std::size_t>(
      static_cast<std::ptrdiff_t>(class_depth_[i]) + delta);
}

std::size_t RequestQueue::class_share(std::size_t i) const {
  if (!table_ || i >= table_->size()) return capacity_;
  const double frac = table_->cls(i).quota_weight / weight_sum_;
  const auto share = static_cast<std::size_t>(
      std::floor(frac * static_cast<double>(capacity_)));
  return std::max<std::size_t>(1, share);
}

void RequestQueue::insert_locked(PendingRequest&& p) {
  bump_class(p.class_index, +1);
  ++model_counts_[p.request.model];
  UrgencyKey key{p.effective_deadline(), p.enqueued, next_seq_++};
  items_.emplace_hint(items_.end(), key, std::move(p));
}

PendingRequest RequestQueue::remove_locked(
    std::map<UrgencyKey, PendingRequest>::iterator it) {
  PendingRequest p = std::move(it->second);
  bump_class(p.class_index, -1);
  auto mit = model_counts_.find(p.request.model);
  if (mit != model_counts_.end() && --mit->second == 0)
    model_counts_.erase(mit);
  items_.erase(it);
  return p;
}

void RequestQueue::expire_locked(ServeTimePoint now) {
  // Expired entries are exactly the prefix of the EDF-ordered map whose
  // key deadline is before now (key.deadline == effective_deadline).
  std::vector<std::size_t> per_class;
  std::size_t total = 0;
  while (!items_.empty() && items_.begin()->first.deadline < now) {
    PendingRequest p = remove_locked(items_.begin());
    InferResponse r;
    r.status = ServeStatus::kDeadlineExceeded;
    r.latency_seconds =
        std::chrono::duration<double>(now - p.enqueued).count();
    obs::instant(TraceStage::kExpire, now, p.trace_id, p.batch_id, -1,
                 r.latency_seconds);
    p.promise.set_value(std::move(r));
    if (per_class.size() <= p.class_index) per_class.resize(p.class_index + 1, 0);
    ++per_class[p.class_index];
    ++total;
  }
  // Completed futures must never be visible before the counter reflects
  // them, so the report happens under mu_ (the handler takes its own lock).
  if (total > 0 && on_expired_) {
    for (std::size_t c = 0; c < per_class.size(); ++c)
      if (per_class[c] > 0) on_expired_(c, per_class[c]);
  }
}

bool RequestQueue::over_capacity_locked() const {
  return items_.size() >= capacity_;
}

bool RequestQueue::over_quota_locked(std::size_t class_index) const {
  if (!table_) return false;
  // Work-conserving below the congestion threshold: any class may use
  // any free slot while the queue is mostly empty.
  const auto threshold = static_cast<std::size_t>(
      congestion_ * static_cast<double>(capacity_));
  if (items_.size() < threshold) return false;
  const std::size_t depth =
      class_index < class_depth_.size() ? class_depth_[class_index] : 0;
  return depth >= class_share(class_index);
}

RequestQueue::Admit RequestQueue::push(PendingRequest&& p,
                                       std::size_t* depth_after) {
  {
    MutexLock lock(mu_);
    if (closed_) return Admit::kClosed;
    // Only sweep when an admission check is about to bite (keeps the happy
    // path O(1)): dead occupants must not cost live traffic a rejection.
    if (over_capacity_locked() || over_quota_locked(p.class_index)) {
      expire_locked(ServeClock::now());
      if (over_capacity_locked()) return Admit::kFull;
      if (over_quota_locked(p.class_index)) return Admit::kQuota;
    }
    insert_locked(std::move(p));
    if (depth_after) *depth_after = items_.size();
  }
  notify_all();
  return Admit::kOk;
}

bool RequestQueue::readmit(PendingRequest&& p, std::size_t* depth_after) {
  {
    MutexLock lock(mu_);
    if (closed_) return false;
    insert_locked(std::move(p));
    if (depth_after) *depth_after = items_.size();
  }
  notify_all();
  return true;
}

bool RequestQueue::wait_front(std::string* model, ServeTimePoint* enqueued) {
  UniqueLock lock(mu_);
  for (;;) {
    expire_locked(ServeClock::now());
    if (!items_.empty()) {
      const auto& front = items_.begin()->second;
      *model = front.request.model;
      *enqueued = front.enqueued;
      return true;
    }
    if (closed_) return false;
    cv_.wait(lock);
  }
}

bool RequestQueue::peek_front(std::string* model, ServeTimePoint* enqueued,
                              ServeTimePoint* effective_deadline) {
  MutexLock lock(mu_);
  expire_locked(ServeClock::now());
  if (items_.empty()) return false;
  const auto& it = *items_.begin();
  if (model) *model = it.second.request.model;
  if (enqueued) *enqueued = it.second.enqueued;
  if (effective_deadline) *effective_deadline = it.first.deadline;
  return true;
}

bool RequestQueue::peek_model(const std::string& model,
                              ServeTimePoint* effective_deadline) {
  MutexLock lock(mu_);
  expire_locked(ServeClock::now());
  if (model_counts_.find(model) == model_counts_.end()) return false;
  for (const auto& [key, p] : items_) {
    if (p.request.model == model) {
      if (effective_deadline) *effective_deadline = key.deadline;
      return true;
    }
  }
  return false;
}

std::size_t RequestQueue::count_model_live(const std::string& model) {
  MutexLock lock(mu_);
  expire_locked(ServeClock::now());
  auto it = model_counts_.find(model);
  return it == model_counts_.end() ? 0 : it->second;
}

void RequestQueue::sweep_expired() {
  MutexLock lock(mu_);
  expire_locked(ServeClock::now());
}

std::vector<PendingRequest> RequestQueue::collect(const std::string& model,
                                                  std::size_t max_n,
                                                  ServeTimePoint deadline) {
  UniqueLock lock(mu_);
  // Explicit wait loop (not the predicate-lambda overload: the analysis
  // checks lambda bodies as separate functions without the held lock).
  // Sweeping on every wakeup keeps dead requests from counting toward (or
  // blocking) group formation.
  for (;;) {
    expire_locked(ServeClock::now());
    if (closed_) break;
    auto it = model_counts_.find(model);
    if (it != model_counts_.end() && it->second >= max_n) break;
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
  }
  expire_locked(ServeClock::now());

  // The map is already EDF-ordered, so a front-to-back walk yields this
  // model's entries most-urgent-first; no sort needed.
  std::vector<PendingRequest> out;
  for (auto it = items_.begin(); it != items_.end() && out.size() < max_n;) {
    if (it->second.request.model == model) {
      auto victim = it++;
      out.push_back(remove_locked(victim));
    } else {
      ++it;
    }
  }
  return out;
}

void RequestQueue::close() {
  {
    MutexLock lock(mu_);
    closed_ = true;
  }
  notify_all();
}

std::vector<PendingRequest> RequestQueue::drain() {
  MutexLock lock(mu_);
  std::vector<PendingRequest> out;
  out.reserve(items_.size());
  for (auto& [key, p] : items_) out.push_back(std::move(p));
  items_.clear();
  model_counts_.clear();
  std::fill(class_depth_.begin(), class_depth_.end(), 0);
  return out;
}

void RequestQueue::notify_all() {
  cv_.notify_all();
  if (notifier_) notifier_();
}

std::size_t RequestQueue::depth() const {
  MutexLock lock(mu_);
  return items_.size();
}

std::size_t RequestQueue::class_depth(std::size_t i) const {
  MutexLock lock(mu_);
  return i < class_depth_.size() ? class_depth_[i] : 0;
}

}  // namespace convbound
