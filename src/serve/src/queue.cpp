#include "convbound/serve/queue.hpp"

#include <algorithm>

namespace convbound {

bool RequestQueue::push(PendingRequest&& p) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(p));
  }
  cv_.notify_all();
  return true;
}

bool RequestQueue::wait_front(std::string* model, ServeTimePoint* enqueued) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
  if (items_.empty()) return false;
  *model = items_.front().request.model;
  *enqueued = items_.front().enqueued;
  return true;
}

std::vector<PendingRequest> RequestQueue::collect(const std::string& model,
                                                  std::size_t max_n,
                                                  ServeTimePoint deadline) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto have_group = [&] {
    if (closed_) return true;
    std::size_t n = 0;
    for (const auto& p : items_)
      if (p.request.model == model && ++n >= max_n) return true;
    return false;
  };
  cv_.wait_until(lock, deadline, have_group);

  std::vector<PendingRequest> out;
  out.reserve(max_n);
  for (auto it = items_.begin(); it != items_.end() && out.size() < max_n;) {
    if (it->request.model == model) {
      out.push_back(std::move(*it));
      it = items_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::vector<PendingRequest> RequestQueue::drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PendingRequest> out(std::make_move_iterator(items_.begin()),
                                  std::make_move_iterator(items_.end()));
  items_.clear();
  return out;
}

std::size_t RequestQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

}  // namespace convbound
