#include "convbound/serve/queue.hpp"

#include <algorithm>

namespace convbound {

void RequestQueue::expire_locked(ServeTimePoint now) {
  std::size_t n = 0;
  for (auto it = items_.begin(); it != items_.end();) {
    if (it->request.deadline < now) {
      InferResponse r;
      r.status = ServeStatus::kDeadlineExceeded;
      r.latency_seconds =
          std::chrono::duration<double>(now - it->enqueued).count();
      it->promise.set_value(std::move(r));
      it = items_.erase(it);
      ++n;
    } else {
      ++it;
    }
  }
  // Completed futures must never be visible before the counter reflects
  // them, so the report happens under mu_ (the handler takes its own lock).
  if (n > 0 && on_expired_) on_expired_(n);
}

bool RequestQueue::push(PendingRequest&& p) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return false;
    // Only sweep when the capacity check is about to bite (keeps the happy
    // path O(1)): dead occupants must not cost live traffic a rejection.
    if (items_.size() >= capacity_) {
      expire_locked(ServeClock::now());
      if (items_.size() >= capacity_) return false;
    }
    items_.push_back(std::move(p));
  }
  cv_.notify_all();
  return true;
}

bool RequestQueue::wait_front(std::string* model, ServeTimePoint* enqueued) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    expire_locked(ServeClock::now());
    if (!items_.empty()) {
      *model = items_.front().request.model;
      *enqueued = items_.front().enqueued;
      return true;
    }
    if (closed_) return false;
    cv_.wait(lock);
  }
}

std::vector<PendingRequest> RequestQueue::collect(const std::string& model,
                                                  std::size_t max_n,
                                                  ServeTimePoint deadline) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto have_group = [&] {
    if (closed_) return true;
    // Sweeping inside the predicate keeps dead requests from counting
    // toward (or blocking) group formation; the lock is held here.
    expire_locked(ServeClock::now());
    std::size_t n = 0;
    for (const auto& p : items_)
      if (p.request.model == model && ++n >= max_n) return true;
    return false;
  };
  cv_.wait_until(lock, deadline, have_group);
  expire_locked(ServeClock::now());

  std::vector<PendingRequest> out;
  out.reserve(max_n);
  for (auto it = items_.begin(); it != items_.end() && out.size() < max_n;) {
    if (it->request.model == model) {
      out.push_back(std::move(*it));
      it = items_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::vector<PendingRequest> RequestQueue::drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PendingRequest> out(std::make_move_iterator(items_.begin()),
                                  std::make_move_iterator(items_.end()));
  items_.clear();
  return out;
}

std::size_t RequestQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

}  // namespace convbound
