#include "convbound/serve/queue.hpp"

#include <algorithm>
#include <cmath>

namespace convbound {

void RequestQueue::set_tenancy(const TenantTable* table, double congestion) {
  table_ = table;
  congestion_ = std::clamp(congestion, 0.0, 1.0);
  weight_sum_ = 0;
  if (table_) {
    for (const TenantClass& c : table_->classes()) weight_sum_ += c.quota_weight;
    class_depth_.assign(table_->size(), 0);
  }
  if (weight_sum_ <= 0) weight_sum_ = 1.0;
}

void RequestQueue::bump_class(std::size_t i, std::ptrdiff_t delta) {
  if (class_depth_.size() <= i) class_depth_.resize(i + 1, 0);
  class_depth_[i] = static_cast<std::size_t>(
      static_cast<std::ptrdiff_t>(class_depth_[i]) + delta);
}

std::size_t RequestQueue::class_share(std::size_t i) const {
  if (!table_ || i >= table_->size()) return capacity_;
  const double frac = table_->cls(i).quota_weight / weight_sum_;
  const auto share = static_cast<std::size_t>(
      std::floor(frac * static_cast<double>(capacity_)));
  return std::max<std::size_t>(1, share);
}

std::size_t RequestQueue::most_urgent_locked() const {
  std::size_t best = items_.size();
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (best == items_.size()) {
      best = i;
      continue;
    }
    const auto di = items_[i].effective_deadline();
    const auto db = items_[best].effective_deadline();
    if (di < db || (di == db && items_[i].enqueued < items_[best].enqueued))
      best = i;
  }
  return best;
}

void RequestQueue::expire_locked(ServeTimePoint now) {
  std::vector<std::size_t> per_class;
  std::size_t total = 0;
  for (auto it = items_.begin(); it != items_.end();) {
    if (it->effective_deadline() < now) {
      InferResponse r;
      r.status = ServeStatus::kDeadlineExceeded;
      r.latency_seconds =
          std::chrono::duration<double>(now - it->enqueued).count();
      it->promise.set_value(std::move(r));
      bump_class(it->class_index, -1);
      if (per_class.size() <= it->class_index)
        per_class.resize(it->class_index + 1, 0);
      ++per_class[it->class_index];
      ++total;
      it = items_.erase(it);
    } else {
      ++it;
    }
  }
  // Completed futures must never be visible before the counter reflects
  // them, so the report happens under mu_ (the handler takes its own lock).
  if (total > 0 && on_expired_) {
    for (std::size_t c = 0; c < per_class.size(); ++c)
      if (per_class[c] > 0) on_expired_(c, per_class[c]);
  }
}

RequestQueue::Admit RequestQueue::push(PendingRequest&& p) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return Admit::kClosed;
    const auto over_capacity = [&] { return items_.size() >= capacity_; };
    const auto over_quota = [&] {
      if (!table_) return false;
      // Work-conserving below the congestion threshold: any class may use
      // any free slot while the queue is mostly empty.
      const auto threshold = static_cast<std::size_t>(
          congestion_ * static_cast<double>(capacity_));
      if (items_.size() < threshold) return false;
      const std::size_t depth = p.class_index < class_depth_.size()
                                    ? class_depth_[p.class_index]
                                    : 0;
      return depth >= class_share(p.class_index);
    };
    // Only sweep when an admission check is about to bite (keeps the happy
    // path O(1)): dead occupants must not cost live traffic a rejection.
    if (over_capacity() || over_quota()) {
      expire_locked(ServeClock::now());
      if (over_capacity()) return Admit::kFull;
      if (over_quota()) return Admit::kQuota;
    }
    bump_class(p.class_index, +1);
    items_.push_back(std::move(p));
  }
  cv_.notify_all();
  return Admit::kOk;
}

bool RequestQueue::readmit(PendingRequest&& p) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return false;
    bump_class(p.class_index, +1);
    items_.push_back(std::move(p));
  }
  cv_.notify_all();
  return true;
}

bool RequestQueue::wait_front(std::string* model, ServeTimePoint* enqueued) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    expire_locked(ServeClock::now());
    if (!items_.empty()) {
      const std::size_t i = most_urgent_locked();
      *model = items_[i].request.model;
      *enqueued = items_[i].enqueued;
      return true;
    }
    if (closed_) return false;
    cv_.wait(lock);
  }
}

std::vector<PendingRequest> RequestQueue::collect(const std::string& model,
                                                  std::size_t max_n,
                                                  ServeTimePoint deadline) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto have_group = [&] {
    if (closed_) return true;
    // Sweeping inside the predicate keeps dead requests from counting
    // toward (or blocking) group formation; the lock is held here.
    expire_locked(ServeClock::now());
    std::size_t n = 0;
    for (const auto& p : items_)
      if (p.request.model == model && ++n >= max_n) return true;
    return false;
  };
  cv_.wait_until(lock, deadline, have_group);
  expire_locked(ServeClock::now());

  // Gather this model's entries most-urgent-first (EDF on effective
  // deadline, arrival as tiebreak), cap at max_n, then remove by index.
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < items_.size(); ++i)
    if (items_[i].request.model == model) idx.push_back(i);
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    const auto da = items_[a].effective_deadline();
    const auto db = items_[b].effective_deadline();
    if (da != db) return da < db;
    if (items_[a].enqueued != items_[b].enqueued)
      return items_[a].enqueued < items_[b].enqueued;
    return a < b;
  });
  if (idx.size() > max_n) idx.resize(max_n);

  std::vector<PendingRequest> out;
  out.reserve(idx.size());
  for (std::size_t i : idx) {
    bump_class(items_[i].class_index, -1);
    out.push_back(std::move(items_[i]));
  }
  // Erase from the back so earlier indices stay valid.
  std::sort(idx.begin(), idx.end(), std::greater<std::size_t>());
  for (std::size_t i : idx)
    items_.erase(items_.begin() + static_cast<std::ptrdiff_t>(i));
  return out;
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::vector<PendingRequest> RequestQueue::drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PendingRequest> out(std::make_move_iterator(items_.begin()),
                                  std::make_move_iterator(items_.end()));
  items_.clear();
  std::fill(class_depth_.begin(), class_depth_.end(), 0);
  return out;
}

std::size_t RequestQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

std::size_t RequestQueue::class_depth(std::size_t i) const {
  std::lock_guard<std::mutex> lock(mu_);
  return i < class_depth_.size() ? class_depth_[i] : 0;
}

}  // namespace convbound
