#include "convbound/serve/tenancy.hpp"

#include <chrono>

#include "convbound/util/check.hpp"

namespace convbound {

TenantTable::TenantTable(std::vector<TenantClass> classes)
    : classes_(std::move(classes)) {
  if (classes_.empty()) {
    // Pre-tenancy behaviour: one anonymous class, no budget, weight 1.
    classes_.push_back(TenantClass{});
  }
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    const TenantClass& c = classes_[i];
    CB_CHECK_MSG(c.quota_weight > 0,
                 "tenant class '" << c.name << "' has non-positive quota "
                 "weight " << c.quota_weight);
    // The default class (index 0) may be anonymous; every other class needs
    // a name to be addressable from a request.
    CB_CHECK_MSG(i == 0 || !c.name.empty(),
                 "tenant class " << i << " has an empty name");
    for (std::size_t j = 0; j < i; ++j) {
      CB_CHECK_MSG(classes_[j].name != c.name || c.name.empty(),
                   "duplicate tenant class name '" << c.name << "'");
    }
  }
}

std::size_t TenantTable::resolve(const std::string& tenant) const {
  if (!tenant.empty()) {
    for (std::size_t i = 0; i < classes_.size(); ++i)
      if (classes_[i].name == tenant) return i;
  }
  return 0;  // catch-all default
}

ServeTimePoint TenantTable::effective_deadline(
    std::size_t i, ServeTimePoint now, ServeTimePoint request_deadline) const {
  const double budget = classes_[i].latency_budget_seconds;
  if (budget <= 0) return request_deadline;
  const auto class_deadline =
      now + std::chrono::duration_cast<ServeClock::duration>(
                std::chrono::duration<double>(budget));
  return request_deadline < class_deadline ? request_deadline : class_deadline;
}

}  // namespace convbound
