#include "convbound/serve/obs_export.hpp"

#include <cstddef>

namespace convbound {

namespace {

/// Joins the caller's label body with extra labels, keeping the
/// brace-less Prometheus body form (`a="x",b="y"`).
std::string join_labels(const std::string& base, const std::string& extra) {
  if (base.empty()) return extra;
  if (extra.empty()) return base;
  return base + "," + extra;
}

}  // namespace

void publish_snapshot(ObsRegistry& reg, const std::string& labels,
                      const StatsSnapshot& s) {
  // ----- request counters ---------------------------------------------------
  const std::string help_req =
      "Requests by terminal disposition (completed / shed / expired / "
      "failed); submitted counts every arrival.";
  reg.set_counter("convbound_requests_submitted_total", labels,
                  static_cast<double>(s.submitted), help_req);
  reg.set_counter("convbound_requests_completed_total", labels,
                  static_cast<double>(s.completed), help_req);
  // Shed reasons split the old single `rejected` counter (satellite b):
  // queue-full backpressure, weighted-fair quota, and shutdown races each
  // get their own reason label.
  const std::string help_shed = "Requests shed at admission, by reason.";
  reg.set_counter("convbound_requests_shed_total",
                  join_labels(labels, "reason=\"full\""),
                  static_cast<double>(s.rejected), help_shed);
  reg.set_counter("convbound_requests_shed_total",
                  join_labels(labels, "reason=\"quota\""),
                  static_cast<double>(s.quota_rejected), help_shed);
  reg.set_counter("convbound_requests_shed_total",
                  join_labels(labels, "reason=\"shutdown\""),
                  static_cast<double>(s.shutdown_rejected), help_shed);
  reg.set_counter("convbound_requests_expired_total", labels,
                  static_cast<double>(s.expired),
                  "Requests whose deadline passed before execution.");
  reg.set_counter("convbound_requests_failed_total", labels,
                  static_cast<double>(s.failed),
                  "Requests completed with an execution error.");
  reg.set_counter("convbound_batches_total", labels,
                  static_cast<double>(s.batches),
                  "Executed micro-batches.");

  // ----- throughput / queue gauges -----------------------------------------
  reg.set_gauge("convbound_throughput_rps", labels, s.throughput_rps,
                "Completed requests per wall second since start.");
  reg.set_gauge("convbound_modelled_rps", labels, s.modelled_rps,
                "Completed requests per modelled accelerator second.");
  reg.set_gauge("convbound_mean_batch_size", labels, s.mean_batch_size,
                "Mean live micro-batch size.");
  reg.set_gauge("convbound_queue_depth", labels,
                static_cast<double>(s.queue_depth),
                "Front-door queue depth at snapshot time.");
  reg.set_gauge("convbound_queue_depth_max", labels,
                static_cast<double>(s.max_queue_depth),
                "Front-door queue depth high-water mark.");
  const std::string help_shard =
      "Per-ingest-shard queue depth (current / high-water).";
  for (std::size_t i = 0; i < s.shard_depths.size(); ++i)
    reg.set_gauge("convbound_shard_depth",
                  join_labels(labels, "shard=\"" + std::to_string(i) + "\""),
                  static_cast<double>(s.shard_depths[i]), help_shard);
  for (std::size_t i = 0; i < s.shard_max_depths.size(); ++i)
    reg.set_gauge(
        "convbound_shard_depth_max",
        join_labels(labels, "shard=\"" + std::to_string(i) + "\""),
        static_cast<double>(s.shard_max_depths[i]), help_shard);
  if (!s.shard_max_depths.empty())
    reg.set_gauge("convbound_shard_imbalance", labels, s.shard_imbalance,
                  "max/mean of per-shard high-water depths (1.0 = even).");

  // ----- latency histograms -------------------------------------------------
  reg.set_histogram("convbound_request_latency_seconds", labels, s.latency,
                    "End-to-end submit-to-completion latency.");
  const std::string help_stage =
      "Stage decomposition of completed-request latency; the three stages "
      "sum to the end-to-end latency per request.";
  reg.set_histogram("convbound_stage_queue_wait_seconds", labels,
                    s.queue_wait, help_stage);
  reg.set_histogram("convbound_stage_batch_delay_seconds", labels,
                    s.batch_delay, help_stage);
  reg.set_histogram("convbound_stage_exec_seconds", labels, s.exec,
                    help_stage);

  // ----- per-class slices ---------------------------------------------------
  for (const auto& [name, c] : s.classes) {
    const std::string cls = join_labels(labels, "class=\"" + name + "\"");
    reg.set_counter("convbound_class_requests_submitted_total", cls,
                    static_cast<double>(c.submitted), help_req);
    reg.set_counter("convbound_class_requests_completed_total", cls,
                    static_cast<double>(c.completed), help_req);
    reg.set_counter("convbound_class_requests_shed_total",
                    join_labels(cls, "reason=\"full\""),
                    static_cast<double>(c.rejected), help_shed);
    reg.set_counter("convbound_class_requests_shed_total",
                    join_labels(cls, "reason=\"quota\""),
                    static_cast<double>(c.quota_rejected), help_shed);
    reg.set_counter("convbound_class_requests_shed_total",
                    join_labels(cls, "reason=\"shutdown\""),
                    static_cast<double>(c.shutdown_rejected), help_shed);
    reg.set_counter("convbound_class_requests_expired_total", cls,
                    static_cast<double>(c.expired), help_req);
    reg.set_histogram("convbound_class_request_latency_seconds", cls,
                      c.latency, help_stage);
  }
}

}  // namespace convbound
