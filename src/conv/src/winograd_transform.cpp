#include "convbound/conv/winograd_transform.hpp"

#include <array>
#include <cmath>

#include "convbound/util/check.hpp"
#include "convbound/util/rng.hpp"

namespace convbound {

namespace {

/// Canonical evaluation points; small magnitudes first to keep the
/// transforms well-conditioned (same policy as Lavin & Gray / wincnn).
constexpr std::array<double, 9> kPoints = {0,  1,   -1,  2,  -2,
                                           0.5, -0.5, 3,  -3};

/// Coefficients of prod_{j in points} (x - p_j), ascending powers.
std::vector<double> poly_from_roots(const std::vector<double>& roots) {
  std::vector<double> c = {1.0};
  for (double rt : roots) {
    std::vector<double> nc(c.size() + 1, 0.0);
    for (std::size_t i = 0; i < c.size(); ++i) {
      nc[i + 1] += c[i];
      nc[i] -= rt * c[i];
    }
    c = nc;
  }
  return c;
}

}  // namespace

WinogradTransform make_winograd_transform(std::int64_t e, std::int64_t r) {
  CB_CHECK_MSG(e >= 1 && r >= 1, "F(" << e << "," << r << ")");
  const std::int64_t a = e + r - 1;
  CB_CHECK_MSG(a >= 2 && a - 1 <= static_cast<std::int64_t>(kPoints.size()),
               "F(" << e << "," << r << ") needs " << a - 1
                    << " evaluation points; supported max is "
                    << kPoints.size());

  WinogradTransform t;
  t.e = e;
  t.r = r;
  t.a = a;
  t.AT.assign(static_cast<std::size_t>(e * a), 0.0);
  t.G.assign(static_cast<std::size_t>(a * r), 0.0);
  t.BT.assign(static_cast<std::size_t>(a * a), 0.0);

  const std::int64_t nf = a - 1;  // number of finite points
  std::vector<double> pts(kPoints.begin(), kPoints.begin() + nf);

  // G: kernel evaluation rows [1, p, ..., p^{r-1}]; infinity row = e_{r-1}.
  for (std::int64_t j = 0; j < nf; ++j) {
    double pw = 1.0;
    for (std::int64_t i = 0; i < r; ++i) {
      t.G[static_cast<std::size_t>(j * r + i)] = pw;
      pw *= pts[static_cast<std::size_t>(j)];
    }
  }
  t.G[static_cast<std::size_t>((a - 1) * r + (r - 1))] = 1.0;

  // AT = (data-side evaluation matrix)^T: AT[i][j] = p_j^i, infinity column
  // = e_{e-1}.
  for (std::int64_t j = 0; j < nf; ++j) {
    double pw = 1.0;
    for (std::int64_t i = 0; i < e; ++i) {
      t.AT[static_cast<std::size_t>(i * a + j)] = pw;
      pw *= pts[static_cast<std::size_t>(j)];
    }
  }
  t.AT[static_cast<std::size_t>((e - 1) * a + (a - 1))] = 1.0;

  // BT = C^T where C interpolates: column j < a-1 holds the coefficients of
  // the Lagrange basis l_j(x) over the finite points; column a-1 holds the
  // coefficients of M(x) = prod (x - p_j).
  for (std::int64_t j = 0; j < nf; ++j) {
    std::vector<double> others;
    double fj = 1.0;
    for (std::int64_t i = 0; i < nf; ++i) {
      if (i == j) continue;
      others.push_back(pts[static_cast<std::size_t>(i)]);
      fj *= pts[static_cast<std::size_t>(j)] - pts[static_cast<std::size_t>(i)];
    }
    const auto lj = poly_from_roots(others);  // degree a-2
    for (std::size_t i = 0; i < lj.size(); ++i) {
      // BT[j][i] = C[i][j] = coeff_i(l_j) / f_j.
      t.BT[static_cast<std::size_t>(j * a) + i] = lj[i] / fj;
    }
  }
  const auto m = poly_from_roots(pts);  // degree a-1, a coefficients
  for (std::size_t i = 0; i < m.size(); ++i)
    t.BT[static_cast<std::size_t>((a - 1) * a) + i] = m[i];

  // Self-verification: y_i = sum_k g_k d_{i+k} must equal AT[(Gg) ⊙ (BTd)].
  Rng rng(0x5eedc0de);
  std::vector<double> g(static_cast<std::size_t>(r)),
      d(static_cast<std::size_t>(a));
  for (auto& v : g) v = rng.uniform(-1, 1);
  for (auto& v : d) v = rng.uniform(-1, 1);
  std::vector<double> gg(static_cast<std::size_t>(a), 0.0),
      dd(static_cast<std::size_t>(a), 0.0);
  for (std::int64_t j = 0; j < a; ++j) {
    for (std::int64_t i = 0; i < r; ++i)
      gg[static_cast<std::size_t>(j)] +=
          t.g(j, i) * g[static_cast<std::size_t>(i)];
    for (std::int64_t i = 0; i < a; ++i)
      dd[static_cast<std::size_t>(j)] +=
          t.bt(j, i) * d[static_cast<std::size_t>(i)];
  }
  for (std::int64_t i = 0; i < e; ++i) {
    double y = 0.0;
    for (std::int64_t j = 0; j < a; ++j)
      y += t.at(i, j) * gg[static_cast<std::size_t>(j)] *
           dd[static_cast<std::size_t>(j)];
    double want = 0.0;
    for (std::int64_t kk = 0; kk < r; ++kk)
      want += g[static_cast<std::size_t>(kk)] *
              d[static_cast<std::size_t>(i + kk)];
    CB_CHECK_MSG(std::abs(y - want) < 1e-8,
                 "Winograd transform self-check failed for F(" << e << ","
                                                               << r << ")");
  }
  return t;
}

std::uint64_t wino_matmul(const double* A, const float* B, float* out,
                          std::int64_t rows_a, std::int64_t inner,
                          std::int64_t cols_b) {
  std::uint64_t macs = 0;
  for (std::int64_t i = 0; i < rows_a; ++i) {
    for (std::int64_t j = 0; j < cols_b; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < inner; ++p) {
        const double a = A[i * inner + p];
        if (a == 0.0) continue;
        acc += a * static_cast<double>(B[p * cols_b + j]);
        ++macs;
      }
      out[i * cols_b + j] = static_cast<float>(acc);
    }
  }
  return macs;
}

std::uint64_t wino_sandwich(const double* M, std::int64_t rows,
                            std::int64_t inner, const float* D, float* out,
                            float* scratch) {
  // scratch = M * D  (rows x inner);  out = scratch * M^T (rows x rows).
  std::uint64_t macs = wino_matmul(M, D, scratch, rows, inner, inner);
  for (std::int64_t i = 0; i < rows; ++i) {
    for (std::int64_t j = 0; j < rows; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < inner; ++p) {
        const double m = M[j * inner + p];
        if (m == 0.0) continue;
        acc += static_cast<double>(scratch[i * inner + p]) * m;
        ++macs;
      }
      out[i * rows + j] = static_cast<float>(acc);
    }
  }
  return macs;
}

}  // namespace convbound
