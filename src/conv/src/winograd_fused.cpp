#include <algorithm>

#include "convbound/conv/winograd.hpp"
#include "convbound/util/math.hpp"
#include "tile_io.hpp"

namespace convbound {

std::int64_t winograd_fused_smem_bytes(const ConvShape& s, std::int64_t e,
                                       const ConvConfig& cfg) {
  const std::int64_t r = s.kh;
  const std::int64_t a = e + r - 1;
  const std::int64_t tiles = (cfg.x / e) * (cfg.y / e);
  const std::int64_t floats = tiles * cfg.z * a * a        // Pi accumulators
                              + (cfg.x + r - 1) * (cfg.y + r - 1)  // input
                              + cfg.z * r * r              // kernel slices
                              + cfg.z * a * a              // U cache
                              + 2 * a * a;                 // V + scratch
  return floats * static_cast<std::int64_t>(sizeof(float));
}

LaunchStats winograd_fused_sim(SimGpu& gpu, const Tensor4<float>& input,
                               const Tensor4<float>& weights,
                               const ConvShape& s, std::int64_t e,
                               const ConvConfig& cfg, Tensor4<float>& out) {
  s.validate();
  CB_CHECK_MSG(s.groups == 1, "grouped convolution: use the tiled direct kernel");
  CB_CHECK(s.kh == s.kw && s.stride == 1);
  const std::int64_t r = s.kh;
  const auto t = make_winograd_transform(e, r);
  const std::int64_t a = t.a, a2 = a * a, r2 = r * r;

  const std::int64_t hout = s.hout(), wout = s.wout();
  // Tile dims rounded to multiples of e and clamped to the output.
  const std::int64_t x =
      std::clamp<std::int64_t>(round_up(cfg.x, e), e, round_up(hout, e));
  const std::int64_t y =
      std::clamp<std::int64_t>(round_up(cfg.y, e), e, round_up(wout, e));
  const std::int64_t z = std::min(cfg.z, s.cout);
  const std::int64_t tbx = x / e, tby = y / e;  // winograd tiles per block
  const std::int64_t total_th = ceil_div(hout, e), total_tw = ceil_div(wout, e);
  const std::int64_t nbx = ceil_div(total_th, tbx),
                     nby = ceil_div(total_tw, tby),
                     nbz = ceil_div(s.cout, z);

  const std::int64_t in_rows = x + r - 1, in_cols = y + r - 1;
  const std::int64_t smem_floats =
      tbx * tby * z * a2 + in_rows * in_cols + z * r2 + z * a2 + 2 * a2;

  LaunchConfig lc;
  lc.num_blocks = s.batch * nbz * nbx * nby;
  lc.threads_per_block = cfg.threads();
  const std::int64_t needed =
      smem_floats * static_cast<std::int64_t>(sizeof(float));
  lc.smem_bytes_per_block = cfg.smem_budget > 0 ? cfg.smem_budget : needed;

  return gpu.launch(lc, [&, x, y, z](BlockContext& ctx) {
    std::int64_t id = ctx.block_id();
    const std::int64_t iby = id % nby; id /= nby;
    const std::int64_t ibx = id % nbx; id /= nbx;
    const std::int64_t ibz = id % nbz; id /= nbz;
    const std::int64_t b = id;
    const std::int64_t t0h = ibx * tbx, t0w = iby * tby, oc0 = ibz * z;
    const std::int64_t etx = std::min(tbx, total_th - t0h);
    const std::int64_t ety = std::min(tby, total_tw - t0w);
    const std::int64_t ez = std::min(z, s.cout - oc0);

    auto pi = ctx.smem().alloc<float>(
        static_cast<std::size_t>(tbx * tby * z * a2));
    auto tile = ctx.smem().alloc<float>(
        static_cast<std::size_t>(in_rows * in_cols));
    auto wbuf = ctx.smem().alloc<float>(static_cast<std::size_t>(z * r2));
    auto ubuf = ctx.smem().alloc<float>(static_cast<std::size_t>(z * a2));
    auto vbuf = ctx.smem().alloc<float>(static_cast<std::size_t>(a2));
    auto scratch = ctx.smem().alloc<float>(static_cast<std::size_t>(a2));
    std::fill(pi.begin(), pi.end(), 0.0f);

    const std::int64_t rows_eff = etx * e + r - 1;
    const std::int64_t cols_eff = ety * e + r - 1;

    for (std::int64_t c = 0; c < s.cin; ++c) {
      // One input region and z kernel slices per channel step (alpha = 1).
      detail::load_input_tile(ctx, input, b, c, t0h * e - s.pad,
                              t0w * e - s.pad, rows_eff, cols_eff,
                              tile.data());
      for (std::int64_t dz = 0; dz < ez; ++dz)
        ctx.load(weights.data() + weights.index(oc0 + dz, c, 0, 0),
                 wbuf.data() + dz * r2, static_cast<std::size_t>(r2));
      // Transformed kernels for this channel (recomputed per block — the
      // recomputation the paper's model permits to save I/O).
      for (std::int64_t dz = 0; dz < ez; ++dz) {
        const std::uint64_t macs =
            wino_sandwich(t.G.data(), a, r, wbuf.data() + dz * r2,
                          ubuf.data() + dz * a2, scratch.data());
        ctx.add_flops(2 * macs);
      }
      for (std::int64_t ti = 0; ti < etx; ++ti) {
        for (std::int64_t tj = 0; tj < ety; ++tj) {
          // V for this winograd tile, from the staged input region.
          float dtile[64];  // a <= 8
          for (std::int64_t i = 0; i < a; ++i)
            for (std::int64_t j = 0; j < a; ++j)
              dtile[i * a + j] =
                  tile[static_cast<std::size_t>((ti * e + i) * cols_eff +
                                                tj * e + j)];
          const std::uint64_t vmacs = wino_sandwich(
              t.BT.data(), a, a, dtile, vbuf.data(), scratch.data());
          ctx.add_flops(2 * vmacs);
          for (std::int64_t dz = 0; dz < ez; ++dz) {
            float* acc =
                pi.data() + ((dz * tbx + ti) * tby + tj) * a2;
            const float* u = ubuf.data() + dz * a2;
            for (std::int64_t i = 0; i < a2; ++i) acc[i] += vbuf[static_cast<std::size_t>(i)] * u[i];
            ctx.add_flops(static_cast<std::uint64_t>(2 * a2));
          }
        }
      }
    }
    // Inverse-transform and store each tile's e x e outputs exactly once.
    for (std::int64_t dz = 0; dz < ez; ++dz) {
      for (std::int64_t ti = 0; ti < etx; ++ti) {
        for (std::int64_t tj = 0; tj < ety; ++tj) {
          float ytile[64];
          float yscratch[64];
          const float* acc = pi.data() + ((dz * tbx + ti) * tby + tj) * a2;
          const std::uint64_t ymacs =
              wino_sandwich(t.AT.data(), e, a, acc, ytile, yscratch);
          ctx.add_flops(2 * ymacs);
          const std::int64_t oh = (t0h + ti) * e, ow = (t0w + tj) * e;
          detail::store_output_tile(ctx, out, b, oc0 + dz, oh, ow, e, e,
                                    ytile, e);
        }
      }
    }
  });
}

}  // namespace convbound
