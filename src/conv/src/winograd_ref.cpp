#include <vector>

#include "convbound/conv/winograd.hpp"
#include "convbound/util/math.hpp"

namespace convbound {

Tensor4<float> winograd_ref(const Tensor4<float>& input,
                            const Tensor4<float>& weights, const ConvShape& s,
                            std::int64_t e) {
  s.validate();
  CB_CHECK_MSG(s.kh == s.kw, "Winograd requires square kernels");
  CB_CHECK_MSG(s.stride == 1, "Winograd requires stride 1");
  const std::int64_t r = s.kh;
  const auto t = make_winograd_transform(e, r);
  const std::int64_t a = t.a;

  const std::int64_t hout = s.hout(), wout = s.wout();
  const std::int64_t th = ceil_div(hout, e), tw = ceil_div(wout, e);
  Tensor4<float> out(s.batch, s.cout, hout, wout);

  std::vector<float> d(static_cast<std::size_t>(a * a));
  std::vector<float> v(static_cast<std::size_t>(a * a));
  std::vector<float> u(static_cast<std::size_t>(a * a));
  std::vector<float> pi(static_cast<std::size_t>(a * a));
  std::vector<float> y(static_cast<std::size_t>(e * e));
  std::vector<float> scratch(static_cast<std::size_t>(a * a));

  for (std::int64_t b = 0; b < s.batch; ++b) {
    for (std::int64_t k = 0; k < s.cout; ++k) {
      for (std::int64_t ti = 0; ti < th; ++ti) {
        for (std::int64_t tj = 0; tj < tw; ++tj) {
          std::fill(pi.begin(), pi.end(), 0.0f);
          for (std::int64_t c = 0; c < s.cin; ++c) {
            // Gather the a x a input tile (zero padded).
            for (std::int64_t i = 0; i < a; ++i) {
              for (std::int64_t j = 0; j < a; ++j) {
                const std::int64_t ih = ti * e + i - s.pad;
                const std::int64_t iw = tj * e + j - s.pad;
                d[static_cast<std::size_t>(i * a + j)] =
                    (ih < 0 || ih >= s.hin || iw < 0 || iw >= s.win)
                        ? 0.0f
                        : input(b, c, ih, iw);
              }
            }
            wino_sandwich(t.BT.data(), a, a, d.data(), v.data(),
                          scratch.data());
            // U = G g G^T.
            std::vector<float> g(static_cast<std::size_t>(r * r));
            for (std::int64_t i = 0; i < r; ++i)
              for (std::int64_t j = 0; j < r; ++j)
                g[static_cast<std::size_t>(i * r + j)] = weights(k, c, i, j);
            wino_sandwich(t.G.data(), a, r, g.data(), u.data(),
                          scratch.data());
            for (std::int64_t i = 0; i < a * a; ++i)
              pi[static_cast<std::size_t>(i)] +=
                  v[static_cast<std::size_t>(i)] *
                  u[static_cast<std::size_t>(i)];
          }
          wino_sandwich(t.AT.data(), e, a, pi.data(), y.data(),
                        scratch.data());
          for (std::int64_t i = 0; i < e && ti * e + i < hout; ++i)
            for (std::int64_t j = 0; j < e && tj * e + j < wout; ++j)
              out(b, k, ti * e + i, tj * e + j) =
                  y[static_cast<std::size_t>(i * e + j)];
        }
      }
    }
  }
  return out;
}

}  // namespace convbound
