#include "convbound/conv/backward.hpp"

namespace convbound {

Tensor4<float> conv2d_backward_data_ref(const Tensor4<float>& grad_out,
                                        const Tensor4<float>& weights,
                                        const ConvShape& s) {
  s.validate();
  CB_CHECK(grad_out.n() == s.batch && grad_out.c() == s.cout &&
           grad_out.h() == s.hout() && grad_out.w() == s.wout());
  CB_CHECK(weights.n() == s.cout && weights.c() == s.cin_per_group() &&
           weights.h() == s.kh && weights.w() == s.kw);

  Tensor4<float> grad_in(s.batch, s.cin, s.hin, s.win);
  grad_in.fill(0.0f);
  const std::int64_t cpg = s.cin_per_group();
  // Scatter formulation: every output gradient contributes to the inputs
  // inside its receptive field — transposing the forward loop is the least
  // error-prone reference.
  for (std::int64_t b = 0; b < s.batch; ++b) {
    for (std::int64_t oc = 0; oc < s.cout; ++oc) {
      const std::int64_t c0 = (oc / s.cout_per_group()) * cpg;
      for (std::int64_t oh = 0; oh < s.hout(); ++oh) {
        for (std::int64_t ow = 0; ow < s.wout(); ++ow) {
          const float g = grad_out(b, oc, oh, ow);
          for (std::int64_t dc = 0; dc < cpg; ++dc) {
            for (std::int64_t fh = 0; fh < s.kh; ++fh) {
              for (std::int64_t fw = 0; fw < s.kw; ++fw) {
                const std::int64_t ih = oh * s.stride + fh - s.pad;
                const std::int64_t iw = ow * s.stride + fw - s.pad;
                if (ih < 0 || ih >= s.hin || iw < 0 || iw >= s.win) continue;
                grad_in(b, c0 + dc, ih, iw) += g * weights(oc, dc, fh, fw);
              }
            }
          }
        }
      }
    }
  }
  return grad_in;
}

Tensor4<float> conv2d_backward_weights_ref(const Tensor4<float>& input,
                                           const Tensor4<float>& grad_out,
                                           const ConvShape& s) {
  s.validate();
  CB_CHECK(input.n() == s.batch && input.c() == s.cin &&
           input.h() == s.hin && input.w() == s.win);
  CB_CHECK(grad_out.n() == s.batch && grad_out.c() == s.cout &&
           grad_out.h() == s.hout() && grad_out.w() == s.wout());

  Tensor4<float> grad_w(s.cout, s.cin_per_group(), s.kh, s.kw);
  grad_w.fill(0.0f);
  const std::int64_t cpg = s.cin_per_group();
  for (std::int64_t b = 0; b < s.batch; ++b) {
    for (std::int64_t oc = 0; oc < s.cout; ++oc) {
      const std::int64_t c0 = (oc / s.cout_per_group()) * cpg;
      for (std::int64_t oh = 0; oh < s.hout(); ++oh) {
        for (std::int64_t ow = 0; ow < s.wout(); ++ow) {
          const float g = grad_out(b, oc, oh, ow);
          for (std::int64_t dc = 0; dc < cpg; ++dc) {
            for (std::int64_t fh = 0; fh < s.kh; ++fh) {
              for (std::int64_t fw = 0; fw < s.kw; ++fw) {
                const std::int64_t ih = oh * s.stride + fh - s.pad;
                const std::int64_t iw = ow * s.stride + fw - s.pad;
                if (ih < 0 || ih >= s.hin || iw < 0 || iw >= s.win) continue;
                grad_w(oc, dc, fh, fw) += g * input(b, c0 + dc, ih, iw);
              }
            }
          }
        }
      }
    }
  }
  return grad_w;
}

ConvShape backward_data_equivalent_shape(const ConvShape& s) {
  s.validate();
  CB_CHECK_MSG(s.groups == 1, "mapping defined for groups == 1");
  // Full correlation of the stride-dilated (hout x wout) gradient with the
  // flipped kernel: logically an image of the dilated extent, cout input
  // channels, cin output channels, stride 1, full padding.
  ConvShape b;
  b.batch = s.batch;
  b.cin = s.cout;
  b.hin = (s.hout() - 1) * s.stride + 1;
  b.win = (s.wout() - 1) * s.stride + 1;
  b.cout = s.cin;
  b.kh = s.kh;
  b.kw = s.kw;
  b.stride = 1;
  b.pad = s.kh - 1;
  // The padded extent must recover the forward input (without the forward
  // padding ring): hin = dilated + 2*(k-1) - (k-1) = dilated + k - 1.
  b.validate();
  return b;
}

ConvShape backward_weights_equivalent_shape(const ConvShape& s) {
  s.validate();
  CB_CHECK_MSG(s.groups == 1, "mapping defined for groups == 1");
  // Correlation of the input image with the output gradient used as a
  // (hout x wout) "kernel": one kh x kw output plane per (cout, cin) pair.
  ConvShape b;
  b.batch = s.batch;
  b.cin = s.cout;  // reduction over output channels' gradients
  b.hin = s.hin + 2 * s.pad;
  b.win = s.win + 2 * s.pad;
  b.cout = s.cin;
  b.kh = s.hout();
  b.kw = s.wout();
  b.stride = 1;
  b.pad = 0;
  b.validate();
  return b;
}

}  // namespace convbound
