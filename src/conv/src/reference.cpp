#include "convbound/conv/reference.hpp"

namespace convbound {

Tensor4<float> conv2d_ref(const Tensor4<float>& input,
                          const Tensor4<float>& weights, const ConvShape& s) {
  s.validate();
  CB_CHECK(input.n() == s.batch && input.c() == s.cin && input.h() == s.hin &&
           input.w() == s.win);
  CB_CHECK(weights.n() == s.cout && weights.c() == s.cin_per_group() &&
           weights.h() == s.kh && weights.w() == s.kw);

  Tensor4<float> out(s.batch, s.cout, s.hout(), s.wout());
  const std::int64_t cpg = s.cin_per_group();
  for (std::int64_t b = 0; b < s.batch; ++b) {
    for (std::int64_t oc = 0; oc < s.cout; ++oc) {
      const std::int64_t c0 = (oc / s.cout_per_group()) * cpg;
      for (std::int64_t oh = 0; oh < s.hout(); ++oh) {
        for (std::int64_t ow = 0; ow < s.wout(); ++ow) {
          double acc = 0;
          for (std::int64_t dc = 0; dc < cpg; ++dc) {
            const std::int64_t c = c0 + dc;
            for (std::int64_t fh = 0; fh < s.kh; ++fh) {
              for (std::int64_t fw = 0; fw < s.kw; ++fw) {
                const std::int64_t ih = oh * s.stride + fh - s.pad;
                const std::int64_t iw = ow * s.stride + fw - s.pad;
                if (ih < 0 || ih >= s.hin || iw < 0 || iw >= s.win) continue;
                acc += static_cast<double>(input(b, c, ih, iw)) *
                       static_cast<double>(weights(oc, dc, fh, fw));
              }
            }
          }
          out(b, oc, oh, ow) = static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

ConvProblem make_problem(const ConvShape& s, std::uint64_t seed,
                         Layout layout) {
  s.validate();
  Rng rng(seed);
  ConvProblem p{Tensor4<float>(s.batch, s.cin, s.hin, s.win, layout),
                Tensor4<float>(s.cout, s.cin_per_group(), s.kh, s.kw)};
  p.input.fill_random(rng);
  p.weights.fill_random(rng);
  return p;
}

}  // namespace convbound
