#include <algorithm>
#include <vector>

#include "convbound/conv/winograd.hpp"
#include "convbound/gemm/gemm.hpp"
#include "convbound/util/math.hpp"
#include "tile_io.hpp"

namespace convbound {

namespace {

constexpr std::int64_t kTileChunk = 64;  ///< winograd tiles per block

}  // namespace

LaunchStats winograd_phased_sim(SimGpu& gpu, const Tensor4<float>& input,
                                const Tensor4<float>& weights,
                                const ConvShape& s, std::int64_t e,
                                Tensor4<float>& out) {
  s.validate();
  CB_CHECK_MSG(s.groups == 1, "grouped convolution: use the tiled direct kernel");
  CB_CHECK(s.kh == s.kw && s.stride == 1);
  const std::int64_t r = s.kh;
  const auto t = make_winograd_transform(e, r);
  const std::int64_t a = t.a, a2 = a * a, r2 = r * r;

  const std::int64_t hout = s.hout(), wout = s.wout();
  const std::int64_t th = ceil_div(hout, e), tw = ceil_div(wout, e);
  const std::int64_t ntiles = th * tw;

  // Global scratch tensors (slow memory): U[a2][cout][cin],
  // V[a2][cin][ntiles], M[a2][cout][ntiles], reused across batch images.
  std::vector<float> U(static_cast<std::size_t>(a2 * s.cout * s.cin));
  std::vector<float> V(static_cast<std::size_t>(a2 * s.cin * ntiles));
  std::vector<float> M(static_cast<std::size_t>(a2 * s.cout * ntiles));

  LaunchStats total;

  // ---- Phase 1: kernel transform (once; kernels are batch-invariant). ----
  {
    LaunchConfig lc;
    lc.num_blocks = s.cout;
    lc.threads_per_block = 128;
    lc.smem_bytes_per_block =
        (r2 + 2 * a2) * static_cast<std::int64_t>(sizeof(float));
    total += gpu.launch(lc, [&](BlockContext& ctx) {
      const std::int64_t k = ctx.block_id();
      auto g = ctx.smem().alloc<float>(static_cast<std::size_t>(r2));
      auto u = ctx.smem().alloc<float>(static_cast<std::size_t>(a2));
      auto scratch = ctx.smem().alloc<float>(static_cast<std::size_t>(a2));
      for (std::int64_t c = 0; c < s.cin; ++c) {
        ctx.load(weights.data() + weights.index(k, c, 0, 0), g.data(),
                 static_cast<std::size_t>(r2));
        const std::uint64_t macs = wino_sandwich(t.G.data(), a, r, g.data(),
                                                 u.data(), scratch.data());
        ctx.add_flops(2 * macs);
        // Scatter to U[pos][k][c]: strided by cout*cin per position.
        for (std::int64_t pos = 0; pos < a2; ++pos)
          ctx.store_one(
              U.data() + (pos * s.cout + k) * s.cin + c,
              u[static_cast<std::size_t>(pos)]);
      }
    });
  }

  for (std::int64_t b = 0; b < s.batch; ++b) {
    // ---- Phase 2: input transform, V[pos][c][tile]. ----
    {
      const std::int64_t chunks = ceil_div(ntiles, kTileChunk);
      LaunchConfig lc;
      lc.num_blocks = s.cin * chunks;
      lc.threads_per_block = 128;
      lc.smem_bytes_per_block =
          (kTileChunk * a2 + 3 * a2) *
          static_cast<std::int64_t>(sizeof(float));
      total += gpu.launch(lc, [&](BlockContext& ctx) {
        const std::int64_t chunk = ctx.block_id() % chunks;
        const std::int64_t c = ctx.block_id() / chunks;
        const std::int64_t tile0 = chunk * kTileChunk;
        const std::int64_t tiles_here =
            std::min<std::int64_t>(kTileChunk, ntiles - tile0);
        auto vchunk = ctx.smem().alloc<float>(
            static_cast<std::size_t>(kTileChunk * a2));
        auto d = ctx.smem().alloc<float>(static_cast<std::size_t>(a2));
        auto v = ctx.smem().alloc<float>(static_cast<std::size_t>(a2));
        auto scratch = ctx.smem().alloc<float>(static_cast<std::size_t>(a2));
        for (std::int64_t dt = 0; dt < tiles_here; ++dt) {
          const std::int64_t tile = tile0 + dt;
          const std::int64_t ti = tile / tw, tj = tile % tw;
          // Phased kernels re-read halo rows per tile (the (a/e)^2 input
          // amplification the fused dataflow avoids).
          detail::load_input_tile(ctx, input, b, c, ti * e - s.pad,
                                  tj * e - s.pad, a, a, d.data());
          const std::uint64_t macs = wino_sandwich(
              t.BT.data(), a, a, d.data(), v.data(), scratch.data());
          ctx.add_flops(2 * macs);
          for (std::int64_t pos = 0; pos < a2; ++pos)
            vchunk[static_cast<std::size_t>(pos * kTileChunk + dt)] =
                v[static_cast<std::size_t>(pos)];
        }
        for (std::int64_t pos = 0; pos < a2; ++pos)
          ctx.store(V.data() + (pos * s.cin + c) * ntiles + tile0,
                    vchunk.data() + pos * kTileChunk,
                    static_cast<std::size_t>(tiles_here));
      });
    }

    // ---- Phase 3: one GEMM per transformed position:
    //      M[pos] (cout x ntiles) = U[pos] (cout x cin) * V[pos].
    for (std::int64_t pos = 0; pos < a2; ++pos) {
      total += gemm_sim(gpu, U.data() + pos * s.cout * s.cin,
                        V.data() + pos * s.cin * ntiles,
                        M.data() + pos * s.cout * ntiles, s.cout, s.cin,
                        ntiles);
    }

    // ---- Phase 4: inverse output transform. ----
    {
      const std::int64_t chunks = ceil_div(ntiles, kTileChunk);
      LaunchConfig lc;
      lc.num_blocks = s.cout * chunks;
      lc.threads_per_block = 128;
      lc.smem_bytes_per_block =
          (kTileChunk * a2 + 3 * a2) *
          static_cast<std::int64_t>(sizeof(float));
      total += gpu.launch(lc, [&](BlockContext& ctx) {
        const std::int64_t chunk = ctx.block_id() % chunks;
        const std::int64_t k = ctx.block_id() / chunks;
        const std::int64_t tile0 = chunk * kTileChunk;
        const std::int64_t tiles_here =
            std::min<std::int64_t>(kTileChunk, ntiles - tile0);
        auto mchunk = ctx.smem().alloc<float>(
            static_cast<std::size_t>(kTileChunk * a2));
        auto pi = ctx.smem().alloc<float>(static_cast<std::size_t>(a2));
        auto y = ctx.smem().alloc<float>(
            static_cast<std::size_t>(t.e * t.e));
        auto scratch = ctx.smem().alloc<float>(
            static_cast<std::size_t>(t.e * a));
        for (std::int64_t pos = 0; pos < a2; ++pos)
          ctx.load(M.data() + (pos * s.cout + k) * ntiles + tile0,
                   mchunk.data() + pos * kTileChunk,
                   static_cast<std::size_t>(tiles_here));
        for (std::int64_t dt = 0; dt < tiles_here; ++dt) {
          const std::int64_t tile = tile0 + dt;
          const std::int64_t ti = tile / tw, tj = tile % tw;
          for (std::int64_t pos = 0; pos < a2; ++pos)
            pi[static_cast<std::size_t>(pos)] =
                mchunk[static_cast<std::size_t>(pos * kTileChunk + dt)];
          const std::uint64_t macs = wino_sandwich(
              t.AT.data(), e, a, pi.data(), y.data(), scratch.data());
          ctx.add_flops(2 * macs);
          detail::store_output_tile(ctx, out, b, k, ti * e, tj * e, e, e,
                                    y.data(), e);
        }
      });
    }
  }
  return total;
}

}  // namespace convbound
