// Internal helpers for moving 2-D tiles between global tensors and shared
// memory with exact I/O accounting (padding reads are free: real kernels
// synthesise zeros on chip).
#pragma once

#include <algorithm>
#include <cstring>

#include "convbound/machine/sim_gpu.hpp"
#include "convbound/tensor/tensor.hpp"

namespace convbound::detail {

/// Loads input(b, c, h0:h0+rows, w0:w0+cols) into dst (packed rows*cols),
/// zero-filling out-of-range positions without counting them as traffic.
/// Honours the tensor layout: W-contiguous layouts load row segments,
/// others pay gather (transaction-granular) cost.
inline void load_input_tile(BlockContext& ctx, const Tensor4<float>& in,
                            std::int64_t b, std::int64_t c, std::int64_t h0,
                            std::int64_t w0, std::int64_t rows,
                            std::int64_t cols, float* dst) {
  const auto& st = in.strides();
  for (std::int64_t r = 0; r < rows; ++r) {
    float* drow = dst + r * cols;
    const std::int64_t ih = h0 + r;
    if (ih < 0 || ih >= in.h()) {
      std::memset(drow, 0, static_cast<std::size_t>(cols) * sizeof(float));
      continue;
    }
    const std::int64_t lo = std::max<std::int64_t>(0, -w0);
    const std::int64_t hi = std::min<std::int64_t>(cols, in.w() - w0);
    if (lo > 0)
      std::memset(drow, 0, static_cast<std::size_t>(lo) * sizeof(float));
    if (hi < cols)
      std::memset(drow + hi, 0,
                  static_cast<std::size_t>(cols - hi) * sizeof(float));
    if (lo >= hi) continue;
    const float* src = in.data() + in.index(b, c, ih, w0 + lo);
    if (st.w == 1) {
      ctx.load(src, drow + lo, static_cast<std::size_t>(hi - lo));
    } else {
      ctx.load_gather(src, st.w, drow + lo, static_cast<std::size_t>(hi - lo));
    }
  }
}

/// Stores a packed rows*cols tile into out(b, c, h0:, w0:), clipped to the
/// tensor bounds. Out tensors are NCHW, so rows are contiguous.
inline void store_output_tile(BlockContext& ctx, Tensor4<float>& out,
                              std::int64_t b, std::int64_t c, std::int64_t h0,
                              std::int64_t w0, std::int64_t rows,
                              std::int64_t cols, const float* src,
                              std::int64_t src_stride) {
  const std::int64_t re = std::min(rows, out.h() - h0);
  const std::int64_t ce = std::min(cols, out.w() - w0);
  for (std::int64_t r = 0; r < re; ++r) {
    ctx.store(out.data() + out.index(b, c, h0 + r, w0),
              src + r * src_stride, static_cast<std::size_t>(ce));
  }
}

}  // namespace convbound::detail
