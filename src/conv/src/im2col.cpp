#include <vector>

#include "convbound/conv/direct.hpp"
#include "convbound/util/math.hpp"
#include "tile_io.hpp"

namespace convbound {

namespace {

/// Builds the column matrix col[(c*kh+fh)*kw+fw][oh*wout+ow] for one image.
/// Blocks own one (channel, output row) pair: they stage the kh input rows
/// the output row touches, then emit kh*kw column-matrix row segments.
LaunchStats im2col_expand(SimGpu& gpu, const Tensor4<float>& input,
                          const ConvShape& s, std::int64_t b, float* col) {
  const std::int64_t hout = s.hout(), wout = s.wout();
  const std::int64_t in_cols = (wout - 1) * s.stride + s.kw;

  LaunchConfig lc;
  lc.num_blocks = s.cin * hout;
  lc.threads_per_block = 128;
  lc.smem_bytes_per_block = (s.kh * in_cols + wout) *
                            static_cast<std::int64_t>(sizeof(float));

  return gpu.launch(lc, [&](BlockContext& ctx) {
    const std::int64_t oh = ctx.block_id() % hout;
    const std::int64_t c = ctx.block_id() / hout;
    auto rows = ctx.smem().alloc<float>(
        static_cast<std::size_t>(s.kh * in_cols));
    auto seg = ctx.smem().alloc<float>(static_cast<std::size_t>(wout));

    detail::load_input_tile(ctx, input, b, c, oh * s.stride - s.pad, -s.pad,
                            s.kh, in_cols, rows.data());
    for (std::int64_t fh = 0; fh < s.kh; ++fh) {
      for (std::int64_t fw = 0; fw < s.kw; ++fw) {
        for (std::int64_t ow = 0; ow < wout; ++ow)
          seg[static_cast<std::size_t>(ow)] =
              rows[static_cast<std::size_t>(fh * in_cols + ow * s.stride +
                                            fw)];
        const std::int64_t row = (c * s.kh + fh) * s.kw + fw;
        ctx.store(col + row * (hout * wout) + oh * wout, seg.data(),
                  static_cast<std::size_t>(wout));
      }
    }
  });
}

}  // namespace

LaunchStats im2col_sim(SimGpu& gpu, const Tensor4<float>& input,
                       const Tensor4<float>& weights, const ConvShape& s,
                       Tensor4<float>& out, const GemmConfig& gemm_cfg) {
  s.validate();
  CB_CHECK_MSG(s.groups == 1, "grouped convolution: use the tiled direct kernel");
  CB_CHECK(out.n() == s.batch && out.c() == s.cout &&
           out.h() == s.hout() && out.w() == s.wout());
  const std::int64_t k = s.cin * s.kh * s.kw;
  const std::int64_t n = s.hout() * s.wout();
  std::vector<float> col(static_cast<std::size_t>(k * n));

  LaunchStats total;
  for (std::int64_t b = 0; b < s.batch; ++b) {
    total += im2col_expand(gpu, input, s, b, col.data());
    // Weights [cout, cin*kh*kw] are already a row-major matrix in NCHW.
    float* out_mat = out.data() + out.index(b, 0, 0, 0);
    total += gemm_sim(gpu, weights.data(), col.data(), out_mat, s.cout, k, n,
                      gemm_cfg);
  }
  return total;
}

}  // namespace convbound
