#include <algorithm>

#include "convbound/conv/direct.hpp"
#include "convbound/util/math.hpp"
#include "tile_io.hpp"

namespace convbound {

LaunchStats direct_naive_sim(SimGpu& gpu, const Tensor4<float>& input,
                             const Tensor4<float>& weights, const ConvShape& s,
                             Tensor4<float>& out) {
  s.validate();
  const std::int64_t hout = s.hout(), wout = s.wout();
  const std::int64_t x = std::min<std::int64_t>(8, hout);
  const std::int64_t y = std::min<std::int64_t>(8, wout);
  const std::int64_t nx = ceil_div(hout, x), ny = ceil_div(wout, y);
  const std::int64_t in_rows = (x - 1) * s.stride + s.kh;
  const std::int64_t in_cols = (y - 1) * s.stride + s.kw;
  const std::int64_t kker = s.kh * s.kw;

  LaunchConfig lc;
  lc.num_blocks = s.batch * s.cout * nx * ny;
  lc.threads_per_block = 64;
  lc.smem_bytes_per_block =
      (x * y + in_rows * in_cols + kker) *
      static_cast<std::int64_t>(sizeof(float));

  return gpu.launch(lc, [&, x, y](BlockContext& ctx) {
    std::int64_t id = ctx.block_id();
    const std::int64_t iy = id % ny; id /= ny;
    const std::int64_t ix = id % nx; id /= nx;
    const std::int64_t oc = id % s.cout; id /= s.cout;
    const std::int64_t b = id;
    const std::int64_t oh0 = ix * x, ow0 = iy * y;
    const std::int64_t ex = std::min(x, hout - oh0);
    const std::int64_t ey = std::min(y, wout - ow0);

    auto acc = ctx.smem().alloc<float>(static_cast<std::size_t>(x * y));
    auto tile =
        ctx.smem().alloc<float>(static_cast<std::size_t>(in_rows * in_cols));
    auto wbuf = ctx.smem().alloc<float>(static_cast<std::size_t>(kker));
    std::fill(acc.begin(), acc.end(), 0.0f);

    const std::int64_t rows_eff = (ex - 1) * s.stride + s.kh;
    const std::int64_t cols_eff = (ey - 1) * s.stride + s.kw;

    const std::int64_t cpg = s.cin_per_group();
    const std::int64_t c_base = (oc / s.cout_per_group()) * cpg;
    for (std::int64_t dc = 0; dc < cpg; ++dc) {
      // z = 1: the same input tile is re-fetched for every output channel.
      detail::load_input_tile(ctx, input, b, c_base + dc,
                              oh0 * s.stride - s.pad, ow0 * s.stride - s.pad,
                              rows_eff, cols_eff, tile.data());
      ctx.load(weights.data() + weights.index(oc, dc, 0, 0), wbuf.data(),
               static_cast<std::size_t>(kker));
      for (std::int64_t dx = 0; dx < ex; ++dx) {
        for (std::int64_t dy = 0; dy < ey; ++dy) {
          float sum = 0.0f;
          const float* base =
              tile.data() + dx * s.stride * cols_eff + dy * s.stride;
          for (std::int64_t fh = 0; fh < s.kh; ++fh) {
            const float* trow = base + fh * cols_eff;
            const float* wrow = wbuf.data() + fh * s.kw;
            for (std::int64_t fw = 0; fw < s.kw; ++fw)
              sum += trow[fw] * wrow[fw];
          }
          acc[static_cast<std::size_t>(dx * y + dy)] += sum;
        }
      }
      ctx.add_flops(static_cast<std::uint64_t>(2 * ex * ey * kker));
    }
    detail::store_output_tile(ctx, out, b, oc, oh0, ow0, ex, ey, acc.data(),
                              y);
  });
}

}  // namespace convbound
