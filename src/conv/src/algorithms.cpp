#include "convbound/conv/algorithms.hpp"

#include <algorithm>

#include "convbound/bounds/conv_bounds.hpp"
#include "convbound/util/math.hpp"

namespace convbound {

std::string to_string(ConvAlgorithm algo) {
  switch (algo) {
    case ConvAlgorithm::kDirectTiled: return "direct-tiled(ours)";
    case ConvAlgorithm::kDirectNaive: return "direct-naive";
    case ConvAlgorithm::kIm2col: return "im2col+gemm";
    case ConvAlgorithm::kCudnnDirect: return "cudnn-direct(best-of)";
    case ConvAlgorithm::kWinogradFused: return "winograd-fused(ours)";
    case ConvAlgorithm::kWinogradPhased: return "winograd-phased";
  }
  return "?";
}

bool algorithm_supports(ConvAlgorithm algo, const ConvShape& s) {
  switch (algo) {
    case ConvAlgorithm::kWinogradFused:
    case ConvAlgorithm::kWinogradPhased:
      // Square non-trivial kernel, unit stride, ungrouped (the minimal
      // filtering identity has no grouped/strided form), and a kernel edge
      // r for which an F(e >= 2, r) transform exists (e + r - 1 <= 8).
      return s.kh == s.kw && s.stride == 1 && s.groups == 1 && s.kh >= 2 &&
             s.kh <= 7;
    case ConvAlgorithm::kIm2col:
      // The column-matrix layout assumes every output channel reads every
      // input channel; grouped shapes take the direct paths instead.
      return s.groups == 1;
    case ConvAlgorithm::kDirectTiled:
    case ConvAlgorithm::kDirectNaive:
    case ConvAlgorithm::kCudnnDirect:
      return true;
  }
  return false;
}

ConvResult run_conv(SimGpu& gpu, ConvAlgorithm algo,
                    const Tensor4<float>& input, const Tensor4<float>& weights,
                    const ConvShape& s, const ConvConfig& cfg,
                    std::int64_t e) {
  s.validate();
  ConvResult res{Tensor4<float>(s.batch, s.cout, s.hout(), s.wout()), {}};
  switch (algo) {
    case ConvAlgorithm::kDirectTiled:
      res.stats = direct_tiled_sim(gpu, input, weights, s, cfg, res.output);
      break;
    case ConvAlgorithm::kDirectNaive:
      res.stats = direct_naive_sim(gpu, input, weights, s, res.output);
      break;
    case ConvAlgorithm::kIm2col:
      res.stats = im2col_sim(gpu, input, weights, s, res.output);
      break;
    case ConvAlgorithm::kCudnnDirect: {
      // cuDNN picks the better of its direct implementations per shape
      // (paper Section 7: "we compare with the best one of two direct
      // implementations in cuDNN"). Grouped shapes only have the direct
      // path.
      ConvResult naive{Tensor4<float>(s.batch, s.cout, s.hout(), s.wout()),
                       {}};
      naive.stats = direct_naive_sim(gpu, input, weights, s, naive.output);
      if (s.groups > 1) return naive;
      ConvResult i2c{Tensor4<float>(s.batch, s.cout, s.hout(), s.wout()), {}};
      i2c.stats = im2col_sim(gpu, input, weights, s, i2c.output);
      return naive.stats.sim_time <= i2c.stats.sim_time ? std::move(naive)
                                                        : std::move(i2c);
    }
    case ConvAlgorithm::kWinogradFused:
      res.stats =
          winograd_fused_sim(gpu, input, weights, s, e, cfg, res.output);
      break;
    case ConvAlgorithm::kWinogradPhased:
      res.stats = winograd_phased_sim(gpu, input, weights, s, e, res.output);
      break;
  }
  return res;
}

ConvConfig default_tiled_config(const ConvShape& s, const MachineSpec& spec) {
  // S_b <= S_sm / 2 so two blocks fit per SM (Table 1); the output tile gets
  // roughly half of S_b, the rest covers the input tile and weight slice.
  const std::int64_t budget = spec.smem_floats() / 4;
  const OptimalTile t = optimal_output_tile(s, static_cast<double>(budget));
  ConvConfig cfg;
  cfg.x = t.x;
  cfg.y = t.y;
  cfg.z = t.z;
  cfg.nxt = static_cast<int>(std::min<std::int64_t>(8, t.x));
  cfg.nyt = static_cast<int>(std::min<std::int64_t>(8, t.y));
  cfg.nzt = std::max(1, static_cast<int>(std::min<std::int64_t>(
                            t.z, 256 / (cfg.nxt * cfg.nyt))));
  cfg.smem_budget = 0;  // derive from footprint
  return cfg;
}

ConvConfig default_winograd_config(const ConvShape& s, std::int64_t e,
                                   const MachineSpec& spec) {
  const std::int64_t r = s.kh;
  const std::int64_t a = e + r - 1;
  // Section 5.3: 2*(a/e)^2 * xyz ~= S/N_p with the budget S_sm/2 per block.
  const double budget = static_cast<double>(spec.smem_floats()) / 2.0 *
                        static_cast<double>(e * e) /
                        (2.0 * static_cast<double>(a * a));
  OptimalTile t = optimal_output_tile(s, budget);
  ConvConfig cfg;
  cfg.x = std::max<std::int64_t>(e, (t.x / e) * e);
  cfg.y = std::max<std::int64_t>(e, (t.y / e) * e);
  cfg.z = t.z;
  cfg.nxt = static_cast<int>(std::min<std::int64_t>(8, cfg.x));
  cfg.nyt = static_cast<int>(std::min<std::int64_t>(8, cfg.y));
  cfg.nzt = std::max(1, static_cast<int>(std::min<std::int64_t>(
                            cfg.z, 256 / (cfg.nxt * cfg.nyt))));
  cfg.smem_budget = 0;
  return cfg;
}

}  // namespace convbound
