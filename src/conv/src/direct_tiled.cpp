#include <algorithm>

#include "convbound/conv/direct.hpp"
#include "convbound/util/math.hpp"
#include "tile_io.hpp"

namespace convbound {

std::int64_t direct_tiled_smem_bytes(const ConvShape& s,
                                     const ConvConfig& cfg) {
  const std::int64_t in_rows = (cfg.x - 1) * s.stride + s.kh;
  const std::int64_t in_cols = (cfg.y - 1) * s.stride + s.kw;
  const std::int64_t floats =
      cfg.x * cfg.y * cfg.z + in_rows * in_cols + cfg.z * s.kh * s.kw;
  return floats * static_cast<std::int64_t>(sizeof(float));
}

LaunchStats direct_tiled_sim(SimGpu& gpu, const Tensor4<float>& input,
                             const Tensor4<float>& weights,
                             const ConvShape& s, const ConvConfig& cfg,
                             Tensor4<float>& out) {
  s.validate();
  CB_CHECK(cfg.x > 0 && cfg.y > 0 && cfg.z > 0);
  CB_CHECK(input.n() == s.batch && input.c() == s.cin &&
           input.h() == s.hin && input.w() == s.win);
  CB_CHECK(out.n() == s.batch && out.c() == s.cout &&
           out.h() == s.hout() && out.w() == s.wout());

  const std::int64_t hout = s.hout(), wout = s.wout();
  const std::int64_t x = std::min(cfg.x, hout), y = std::min(cfg.y, wout);
  // Grouped convolution: a z-tile must not straddle a channel group, so the
  // clamped z is snapped down to a divisor of cout_per_group.
  std::int64_t z = std::min(cfg.z, s.cout_per_group());
  while (s.cout_per_group() % z != 0) --z;
  const std::int64_t cpg = s.cin_per_group();
  const std::int64_t nx = ceil_div(hout, x), ny = ceil_div(wout, y),
                     nz = ceil_div(s.cout, z);
  const std::int64_t in_rows = (x - 1) * s.stride + s.kh;
  const std::int64_t in_cols = (y - 1) * s.stride + s.kw;
  const std::int64_t kker = s.kh * s.kw;

  LaunchConfig lc;
  lc.num_blocks = s.batch * nz * nx * ny;
  lc.threads_per_block = cfg.threads();
  const std::int64_t needed =
      (x * y * z + in_rows * in_cols + z * kker) *
      static_cast<std::int64_t>(sizeof(float));
  lc.smem_bytes_per_block = cfg.smem_budget > 0 ? cfg.smem_budget : needed;

  return gpu.launch(lc, [&, x, y, z](BlockContext& ctx) {
    // Decode block -> (batch, z-block, x-block, y-block).
    std::int64_t id = ctx.block_id();
    const std::int64_t iy = id % ny; id /= ny;
    const std::int64_t ix = id % nx; id /= nx;
    const std::int64_t iz = id % nz; id /= nz;
    const std::int64_t b = id;
    const std::int64_t oh0 = ix * x, ow0 = iy * y, oc0 = iz * z;
    const std::int64_t ex = std::min(x, hout - oh0);
    const std::int64_t ey = std::min(y, wout - ow0);
    const std::int64_t ez = std::min(z, s.cout - oc0);

    auto acc = ctx.smem().alloc<float>(static_cast<std::size_t>(x * y * z));
    auto tile =
        ctx.smem().alloc<float>(static_cast<std::size_t>(in_rows * in_cols));
    auto wbuf = ctx.smem().alloc<float>(static_cast<std::size_t>(z * kker));
    std::fill(acc.begin(), acc.end(), 0.0f);

    const std::int64_t rows_eff = (ex - 1) * s.stride + s.kh;
    const std::int64_t cols_eff = (ey - 1) * s.stride + s.kw;

    // Slide the x'*y' input tile along the (group's) channel direction
    // (alpha = 1).
    const std::int64_t c_base = (oc0 / s.cout_per_group()) * cpg;
    for (std::int64_t dc = 0; dc < cpg; ++dc) {
      detail::load_input_tile(ctx, input, b, c_base + dc,
                              oh0 * s.stride - s.pad, ow0 * s.stride - s.pad,
                              rows_eff, cols_eff, tile.data());
      for (std::int64_t dz = 0; dz < ez; ++dz) {
        ctx.load(weights.data() + weights.index(oc0 + dz, dc, 0, 0),
                 wbuf.data() + dz * kker, static_cast<std::size_t>(kker));
      }
      // Partial update of the resident output sub-block.
      for (std::int64_t dz = 0; dz < ez; ++dz) {
        const float* wk = wbuf.data() + dz * kker;
        for (std::int64_t dx = 0; dx < ex; ++dx) {
          for (std::int64_t dy = 0; dy < ey; ++dy) {
            float sum = 0.0f;
            const float* base =
                tile.data() + dx * s.stride * cols_eff + dy * s.stride;
            for (std::int64_t fh = 0; fh < s.kh; ++fh) {
              const float* trow = base + fh * cols_eff;
              const float* wrow = wk + fh * s.kw;
              for (std::int64_t fw = 0; fw < s.kw; ++fw)
                sum += trow[fw] * wrow[fw];
            }
            acc[static_cast<std::size_t>((dz * x + dx) * y + dy)] += sum;
          }
        }
      }
      ctx.add_flops(static_cast<std::uint64_t>(2 * ez * ex * ey * kker));
    }
    // Outputs leave the chip exactly once.
    for (std::int64_t dz = 0; dz < ez; ++dz) {
      detail::store_output_tile(ctx, out, b, oc0 + dz, oh0, ow0, ex, ey,
                                acc.data() + dz * x * y, y);
    }
  });
}

}  // namespace convbound
