// Direct-convolution implementations on the simulated accelerator.
#pragma once

#include "convbound/conv/conv_config.hpp"
#include "convbound/gemm/gemm.hpp"
#include "convbound/machine/sim_gpu.hpp"
#include "convbound/tensor/conv_shape.hpp"
#include "convbound/tensor/tensor.hpp"

namespace convbound {

/// The paper's near I/O-optimal dataflow (Section 5.2): one block owns an
/// x*y*z output sub-block held entirely in shared memory; an x'*y' input
/// tile slides along the channel direction (alpha = 1); inputs and weights
/// are read exactly once per block and outputs are written exactly once.
/// `out` must be pre-shaped [batch, cout, hout, wout] NCHW.
LaunchStats direct_tiled_sim(SimGpu& gpu, const Tensor4<float>& input,
                             const Tensor4<float>& weights,
                             const ConvShape& s, const ConvConfig& cfg,
                             Tensor4<float>& out);

/// Generic direct kernel standing in for cuDNN's non-im2col direct path:
/// fixed 8x8 spatial tiles, one output channel per block (z = 1), so the
/// input tile is re-read C_out times — correct and competent, but with no
/// output-channel data reuse.
LaunchStats direct_naive_sim(SimGpu& gpu, const Tensor4<float>& input,
                             const Tensor4<float>& weights, const ConvShape& s,
                             Tensor4<float>& out);

/// im2col + blocked GEMM, the path cuDNN usually prefers for direct
/// convolution (paper Section 7). The column matrix is materialised in
/// global memory (counted), then multiplied by the weight matrix.
LaunchStats im2col_sim(SimGpu& gpu, const Tensor4<float>& input,
                       const Tensor4<float>& weights, const ConvShape& s,
                       Tensor4<float>& out, const GemmConfig& gemm_cfg = {});

}  // namespace convbound
