// Unified entry point over all convolution implementations.
#pragma once

#include <string>

#include "convbound/conv/conv_config.hpp"
#include "convbound/conv/direct.hpp"
#include "convbound/conv/winograd.hpp"

namespace convbound {

enum class ConvAlgorithm {
  kDirectTiled,     ///< paper dataflow, Section 5.2 (tunable)
  kDirectNaive,     ///< generic direct kernel (baseline component)
  kIm2col,          ///< im2col + GEMM (baseline component)
  kCudnnDirect,     ///< best of {kDirectNaive, kIm2col} — the paper's cuDNN
                    ///< direct-convolution comparison point
  kWinogradFused,   ///< paper dataflow, Section 5.3 (tunable)
  kWinogradPhased,  ///< cuDNN-style Winograd baseline
};

std::string to_string(ConvAlgorithm algo);

/// The centralized capability query: true when `algo` can run `s`. All
/// eligibility rules live here — Winograd needs a square 2..7 kernel,
/// stride 1 and groups == 1; im2col needs groups == 1; the direct paths
/// take anything. Callers (planner, CLI, benches) must not re-derive these.
bool algorithm_supports(ConvAlgorithm algo, const ConvShape& s);

struct ConvResult {
  Tensor4<float> output;
  LaunchStats stats;
};

/// Runs `algo` on the simulated machine. `cfg` is honoured by the tunable
/// algorithms and ignored by the baselines; `e` selects the Winograd
/// variant F(e x e, r x r).
ConvResult run_conv(SimGpu& gpu, ConvAlgorithm algo,
                    const Tensor4<float>& input, const Tensor4<float>& weights,
                    const ConvShape& s, const ConvConfig& cfg = {},
                    std::int64_t e = 2);

/// Default untuned-but-sane config for the tiled dataflow: the optimality
/// condition tile x*y = R*z under the budget S_sm/(2 * elements).
ConvConfig default_tiled_config(const ConvShape& s, const MachineSpec& spec);

/// Same for the fused Winograd dataflow (tile budget from Section 5.3).
ConvConfig default_winograd_config(const ConvShape& s, std::int64_t e,
                                   const MachineSpec& spec);

}  // namespace convbound
