// Naive host convolution used as the correctness oracle for every simulated
// kernel.
#pragma once

#include "convbound/tensor/conv_shape.hpp"
#include "convbound/tensor/tensor.hpp"

namespace convbound {

/// Direct 7-loop convolution. `input` is [batch, cin, hin, win] in any
/// layout; `weights` is [cout, cin, kh, kw] (layout field ignored; logical
/// indexing). Returns [batch, cout, hout, wout] in NCHW.
Tensor4<float> conv2d_ref(const Tensor4<float>& input,
                          const Tensor4<float>& weights, const ConvShape& s);

/// Makes a deterministic random problem instance (input + weights).
struct ConvProblem {
  Tensor4<float> input;
  Tensor4<float> weights;
};
ConvProblem make_problem(const ConvShape& s, std::uint64_t seed,
                         Layout layout = Layout::kNCHW);

}  // namespace convbound
