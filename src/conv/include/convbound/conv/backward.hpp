// Training-mode convolutions: gradients w.r.t. the input (backward-data)
// and the weights (backward-weights).
//
// Both are themselves convolutions, so the paper's lower bounds and the
// optimality condition apply after a shape mapping:
//   backward-data    ≙ correlation of the (stride-dilated) output gradient
//                      with the spatially flipped kernel;
//   backward-weights ≙ correlation of the input with the output gradient,
//                      producing a kh x kw "image" per (cout, cin) pair.
// The *_equivalent_shape helpers expose those mappings so callers can price
// training steps with the same Thm 4.12 machinery used for inference.
#pragma once

#include "convbound/tensor/conv_shape.hpp"
#include "convbound/tensor/tensor.hpp"

namespace convbound {

/// dL/dinput given dL/doutput ("grad_out" is [batch, cout, hout, wout]).
/// Reference host implementation (the oracle for gradient tests).
Tensor4<float> conv2d_backward_data_ref(const Tensor4<float>& grad_out,
                                        const Tensor4<float>& weights,
                                        const ConvShape& s);

/// dL/dweights given the forward input and dL/doutput.
Tensor4<float> conv2d_backward_weights_ref(const Tensor4<float>& input,
                                           const Tensor4<float>& grad_out,
                                           const ConvShape& s);

/// The forward-convolution shape whose I/O cost model matches the
/// backward-data pass (full correlation of the dilated grad with the
/// flipped kernel). Only defined for groups == 1.
ConvShape backward_data_equivalent_shape(const ConvShape& s);

/// Ditto for backward-weights: a "convolution" whose outputs are the
/// kh*kw*cin*cout weight gradients and whose reduction runs over the
/// batch * hout * wout samples.
ConvShape backward_weights_equivalent_shape(const ConvShape& s);

}  // namespace convbound
