// A tunable implementation configuration — the paper's Table 1 parameters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "convbound/tensor/conv_shape.hpp"
#include "convbound/tensor/layout.hpp"

namespace convbound {

/// One point of the configuration space searched by the auto-tuner.
/// x, y, z tile the output image along (H_out, W_out, C_out); nxt/nyt/nzt
/// partition the tile among threads; the layout selects the activation
/// storage order; smem_budget is the shared memory S_b granted per block.
struct ConvConfig {
  std::int64_t x = 1, y = 1, z = 1;
  int nxt = 1, nyt = 1, nzt = 1;
  Layout layout = Layout::kNCHW;
  /// S_b in bytes. 0 = derive from the kernel's actual footprint.
  std::int64_t smem_budget = 0;

  int threads() const { return nxt * nyt * nzt; }
  std::int64_t tile_elems() const { return x * y * z; }

  std::string to_string() const {
    return "cfg[x=" + std::to_string(x) + " y=" + std::to_string(y) +
           " z=" + std::to_string(z) + " t=" + std::to_string(nxt) + "x" +
           std::to_string(nyt) + "x" + std::to_string(nzt) +
           " layout=" + convbound::to_string(layout) +
           " smem=" + std::to_string(smem_budget) + "B]";
  }

  bool operator==(const ConvConfig&) const = default;

  /// Canonical compact key covering exactly the fields operator== compares,
  /// in the order the tune-cache file format stores them.
  std::string key() const {
    return std::to_string(x) + ' ' + std::to_string(y) + ' ' +
           std::to_string(z) + ' ' + std::to_string(nxt) + ' ' +
           std::to_string(nyt) + ' ' + std::to_string(nzt) + ' ' +
           std::to_string(static_cast<int>(layout)) + ' ' +
           std::to_string(smem_budget);
  }

  /// operator==-consistent hash over the same fields.
  std::size_t hash() const {
    auto mix = [](std::size_t h, std::uint64_t v) {
      return h ^ (static_cast<std::size_t>(v) + 0x9e3779b97f4a7c15ull +
                  (h << 6) + (h >> 2));
    };
    std::size_t h = mix(0, static_cast<std::uint64_t>(x));
    h = mix(h, static_cast<std::uint64_t>(y));
    h = mix(h, static_cast<std::uint64_t>(z));
    h = mix(h, static_cast<std::uint64_t>(nxt));
    h = mix(h, static_cast<std::uint64_t>(nyt));
    h = mix(h, static_cast<std::uint64_t>(nzt));
    h = mix(h, static_cast<std::uint64_t>(layout));
    h = mix(h, static_cast<std::uint64_t>(smem_budget));
    return h;
  }
};

/// Shared-memory footprint (bytes) of the direct tiled dataflow for `cfg`
/// on problem `s`: output tile + one input channel-slice tile + z kernel
/// slices (Section 5.2 with alpha = 1).
std::int64_t direct_tiled_smem_bytes(const ConvShape& s, const ConvConfig& cfg);

/// Shared-memory footprint of the fused Winograd dataflow (Section 5.3):
/// Pi accumulators (x*y*z*(a/e)^2) + input region + z kernel slices +
/// transformed-kernel cache + scratch.
std::int64_t winograd_fused_smem_bytes(const ConvShape& s, std::int64_t e,
                                       const ConvConfig& cfg);

}  // namespace convbound

template <>
struct std::hash<convbound::ConvConfig> {
  std::size_t operator()(const convbound::ConvConfig& c) const noexcept {
    return c.hash();
  }
};
