// A tunable implementation configuration — the paper's Table 1 parameters.
#pragma once

#include <cstdint>
#include <string>

#include "convbound/tensor/conv_shape.hpp"
#include "convbound/tensor/layout.hpp"

namespace convbound {

/// One point of the configuration space searched by the auto-tuner.
/// x, y, z tile the output image along (H_out, W_out, C_out); nxt/nyt/nzt
/// partition the tile among threads; the layout selects the activation
/// storage order; smem_budget is the shared memory S_b granted per block.
struct ConvConfig {
  std::int64_t x = 1, y = 1, z = 1;
  int nxt = 1, nyt = 1, nzt = 1;
  Layout layout = Layout::kNCHW;
  /// S_b in bytes. 0 = derive from the kernel's actual footprint.
  std::int64_t smem_budget = 0;

  int threads() const { return nxt * nyt * nzt; }
  std::int64_t tile_elems() const { return x * y * z; }

  std::string to_string() const {
    return "cfg[x=" + std::to_string(x) + " y=" + std::to_string(y) +
           " z=" + std::to_string(z) + " t=" + std::to_string(nxt) + "x" +
           std::to_string(nyt) + "x" + std::to_string(nzt) +
           " layout=" + convbound::to_string(layout) +
           " smem=" + std::to_string(smem_budget) + "B]";
  }

  bool operator==(const ConvConfig&) const = default;
};

/// Shared-memory footprint (bytes) of the direct tiled dataflow for `cfg`
/// on problem `s`: output tile + one input channel-slice tile + z kernel
/// slices (Section 5.2 with alpha = 1).
std::int64_t direct_tiled_smem_bytes(const ConvShape& s, const ConvConfig& cfg);

/// Shared-memory footprint of the fused Winograd dataflow (Section 5.3):
/// Pi accumulators (x*y*z*(a/e)^2) + input region + z kernel slices +
/// transformed-kernel cache + scratch.
std::int64_t winograd_fused_smem_bytes(const ConvShape& s, std::int64_t e,
                                       const ConvConfig& cfg);

}  // namespace convbound
