// Winograd minimal-filtering transform matrices F(e x e, r x r).
//
// Generated for arbitrary (e, r) by the transposed Cook-Toom construction:
// a bilinear linear-convolution algorithm over e+r-2 finite evaluation
// points plus the point at infinity is transposed (Tellegen's principle)
// into the correlation form  Y = A^T [ (G g G^T) ⊙ (B^T d B) ] A.
#pragma once

#include <cstdint>
#include <vector>

namespace convbound {

struct WinogradTransform {
  std::int64_t e = 2;  ///< outputs per tile edge
  std::int64_t r = 3;  ///< kernel edge
  std::int64_t a = 4;  ///< e + r - 1, transformed tile edge

  std::vector<double> AT;  ///< e x a output transform
  std::vector<double> G;   ///< a x r kernel transform
  std::vector<double> BT;  ///< a x a input transform

  double at(std::int64_t i, std::int64_t j) const { return AT[i * a + j]; }
  double g(std::int64_t i, std::int64_t j) const { return G[i * r + j]; }
  double bt(std::int64_t i, std::int64_t j) const { return BT[i * a + j]; }
};

/// Builds the transform for F(e x e, r x r). Supports e + r - 1 <= 8.
/// The construction is self-verified at build time against a random 1-D
/// correlation; an Error is thrown if the identity fails (should never
/// happen — it guards against bad evaluation-point choices).
WinogradTransform make_winograd_transform(std::int64_t e, std::int64_t r);

// --- dense helpers on row-major double/float matrices --------------------

/// out(rows_a x cols_b) = A(rows_a x inner) * B(inner x cols_b); double
/// accumulate, float storage. Zero coefficients of A are skipped (the
/// transforms are sparse); returns the number of multiply-adds performed.
std::uint64_t wino_matmul(const double* A, const float* B, float* out,
                          std::int64_t rows_a, std::int64_t inner,
                          std::int64_t cols_b);

/// V = BT * D * BT^T for an a x a tile (the 2-D input transform); likewise
/// usable for U = G*g*G^T and Y = AT*Pi*AT^T with the right dimensions.
/// rows x inner times inner x inner times inner x rows -> rows x rows.
/// Returns multiply-add count (sparsity-aware), so callers can report
/// honest FLOPs — real Winograd kernels exploit exactly this structure.
std::uint64_t wino_sandwich(const double* M, std::int64_t rows,
                            std::int64_t inner, const float* D, float* out,
                            float* scratch);

}  // namespace convbound
