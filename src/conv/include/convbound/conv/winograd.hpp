// Winograd convolution implementations (stride 1, square kernels).
#pragma once

#include "convbound/conv/conv_config.hpp"
#include "convbound/conv/winograd_transform.hpp"
#include "convbound/machine/sim_gpu.hpp"
#include "convbound/tensor/conv_shape.hpp"
#include "convbound/tensor/tensor.hpp"

namespace convbound {

/// Host reference Winograd (correctness oracle for the simulated kernels,
/// itself validated against conv2d_ref in the test suite).
Tensor4<float> winograd_ref(const Tensor4<float>& input,
                            const Tensor4<float>& weights, const ConvShape& s,
                            std::int64_t e);

/// The paper's near I/O-optimal fused dataflow (Section 5.3): one block owns
/// an x*y*z output sub-block; per input channel it loads one input region
/// and z kernel slices, transforms on the fly, and accumulates the Pi
/// temporary arrays in shared memory; outputs are written exactly once.
/// cfg.x and cfg.y should be multiples of e (clamped/rounded otherwise).
LaunchStats winograd_fused_sim(SimGpu& gpu, const Tensor4<float>& input,
                               const Tensor4<float>& weights,
                               const ConvShape& s, std::int64_t e,
                               const ConvConfig& cfg, Tensor4<float>& out);

/// cuDNN-style phased Winograd: four separate kernels materialising the
/// transformed kernels U, transformed inputs V and products M in global
/// memory, with a batched GEMM per transformed-tile position.
LaunchStats winograd_phased_sim(SimGpu& gpu, const Tensor4<float>& input,
                                const Tensor4<float>& weights,
                                const ConvShape& s, std::int64_t e,
                                Tensor4<float>& out);

}  // namespace convbound
