// Convolution-layer inventories of the CNN models used in the paper's
// end-to-end evaluation (Figure 12) and auto-tuning table (Table 2).
//
// Only convolution layers are listed (they dominate inference time and are
// the only layers either system accelerates); pooling/activation layers
// merely determine the spatial sizes encoded here.
#pragma once

#include <string>
#include <vector>

#include "convbound/tensor/conv_shape.hpp"

namespace convbound {

struct ConvLayer {
  std::string name;
  ConvShape shape;
};

std::vector<ConvLayer> alexnet(std::int64_t batch = 1);
std::vector<ConvLayer> squeezenet_v10(std::int64_t batch = 1);
std::vector<ConvLayer> vgg19(std::int64_t batch = 1);
std::vector<ConvLayer> resnet18(std::int64_t batch = 1);
std::vector<ConvLayer> resnet34(std::int64_t batch = 1);
std::vector<ConvLayer> inception_v3(std::int64_t batch = 1);
/// Depthwise-separable network (grouped convolutions; the MobileNet-class
/// workloads the paper's introduction motivates).
std::vector<ConvLayer> mobilenet_v1(std::int64_t batch = 1);

/// All models keyed by the names used in Figure 12.
std::vector<std::pair<std::string, std::vector<ConvLayer>>> model_zoo(
    std::int64_t batch = 1);

/// Total conv FLOPs of a model.
std::int64_t model_flops(const std::vector<ConvLayer>& layers);

}  // namespace convbound
