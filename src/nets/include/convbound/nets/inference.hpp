// End-to-end (conv-only) model inference on the simulated machine,
// comparing the paper's tuned dataflows against the cuDNN-like baseline.
//
// All per-layer algorithm selection goes through the plan layer: each layer
// is planned once (Planner memoises per machine + shape + strategy) and
// executed per pass through a shared Workspace arena, so repeated passes do
// zero output/scratch allocation and re-use tuned configurations.
#pragma once

#include "convbound/machine/sim_gpu.hpp"
#include "convbound/nets/models.hpp"
#include "convbound/plan/executor.hpp"
#include "convbound/plan/planner.hpp"

namespace convbound {

enum class ModelStrategy {
  kBaseline,      ///< cuDNN-like: best of {direct-naive, im2col, phased wino}
  kOursDefault,   ///< our dataflows with the analytic default configuration
  kOursTuned,     ///< our dataflows with a per-layer ATE tuning pass
};

struct LayerTiming {
  std::string name;
  ConvShape shape;
  double seconds = 0;
  std::string algorithm;
  std::uint64_t io_bytes = 0;
  /// The executed plan: algorithm, config, Winograd e, bound ratio.
  ConvPlan plan;
};

struct ModelReport {
  std::string model;
  ModelStrategy strategy{};
  double total_seconds = 0;
  std::vector<LayerTiming> layers;
};

/// Long-lived planning + execution state for repeated inference. Holds the
/// tune cache the planner consults, the memoised plans, and the workspace
/// arena the executor leases outputs from — keep one session alive across
/// run_model calls and the steady state allocates nothing per layer.
class InferenceSession {
 public:
  InferenceSession() : planner_(&cache_), executor_(workspace_) {}
  InferenceSession(const InferenceSession&) = delete;
  InferenceSession& operator=(const InferenceSession&) = delete;

  TuneCache& cache() { return cache_; }
  Planner& planner() { return planner_; }
  Workspace& workspace() { return workspace_; }
  ConvExecutor& executor() { return executor_; }

 private:
  TuneCache cache_;
  Planner planner_;
  Workspace workspace_;
  ConvExecutor executor_;
};

/// Runs every conv layer once with the chosen strategy, planning through
/// `session`. For kOursTuned, `tune_budget` measurement trials are spent per
/// layer on a tune-cache miss (tuning time is not part of the reported
/// inference time, as in the paper).
ModelReport run_model(SimGpu& gpu, const std::string& model_name,
                      const std::vector<ConvLayer>& layers,
                      ModelStrategy strategy, InferenceSession& session,
                      int tune_budget = 32, std::uint64_t seed = 42);

/// Convenience overload with a throwaway session (plans and tuned configs
/// are not reused across calls).
ModelReport run_model(SimGpu& gpu, const std::string& model_name,
                      const std::vector<ConvLayer>& layers,
                      ModelStrategy strategy, int tune_budget = 32,
                      std::uint64_t seed = 42);

}  // namespace convbound
