// End-to-end (conv-only) model inference on the simulated machine,
// comparing the paper's tuned dataflows against the cuDNN-like baseline.
#pragma once

#include "convbound/machine/sim_gpu.hpp"
#include "convbound/nets/models.hpp"

namespace convbound {

enum class ModelStrategy {
  kBaseline,      ///< cuDNN-like: best of {direct-naive, im2col, phased wino}
  kOursDefault,   ///< our dataflows with the analytic default configuration
  kOursTuned,     ///< our dataflows with a per-layer ATE tuning pass
};

struct LayerTiming {
  std::string name;
  ConvShape shape;
  double seconds = 0;
  std::string algorithm;
  std::uint64_t io_bytes = 0;
};

struct ModelReport {
  std::string model;
  ModelStrategy strategy{};
  double total_seconds = 0;
  std::vector<LayerTiming> layers;
};

/// Runs every conv layer once with the chosen strategy. For kOursTuned,
/// `tune_budget` measurement trials are spent per layer (tuning time is not
/// part of the reported inference time, as in the paper).
ModelReport run_model(SimGpu& gpu, const std::string& model_name,
                      const std::vector<ConvLayer>& layers,
                      ModelStrategy strategy, int tune_budget = 32,
                      std::uint64_t seed = 42);

}  // namespace convbound
