#include "convbound/nets/models.hpp"

#include <numeric>

namespace convbound {

namespace {

ConvShape conv(std::int64_t batch, std::int64_t cin, std::int64_t hw,
               std::int64_t cout, std::int64_t k, std::int64_t stride,
               std::int64_t pad) {
  ConvShape s;
  s.batch = batch;
  s.cin = cin;
  s.hin = s.win = hw;
  s.cout = cout;
  s.kh = s.kw = k;
  s.stride = stride;
  s.pad = pad;
  s.validate();
  return s;
}

}  // namespace

std::vector<ConvLayer> alexnet(std::int64_t b) {
  return {
      {"conv1", conv(b, 3, 227, 96, 11, 4, 0)},
      {"conv2", conv(b, 96, 27, 256, 5, 1, 2)},
      {"conv3", conv(b, 256, 13, 384, 3, 1, 1)},
      {"conv4", conv(b, 384, 13, 256, 3, 1, 1)},
      {"conv5", conv(b, 256, 13, 256, 3, 1, 1)},
  };
}

std::vector<ConvLayer> squeezenet_v10(std::int64_t b) {
  std::vector<ConvLayer> layers;
  layers.push_back({"conv1", conv(b, 3, 224, 96, 7, 2, 0)});
  // Fire modules: squeeze 1x1, expand 1x1 and expand 3x3 (pad 1).
  auto fire = [&](const std::string& name, std::int64_t cin, std::int64_t hw,
                  std::int64_t sq, std::int64_t ex) {
    layers.push_back({name + "/squeeze1x1", conv(b, cin, hw, sq, 1, 1, 0)});
    layers.push_back({name + "/expand1x1", conv(b, sq, hw, ex, 1, 1, 0)});
    layers.push_back({name + "/expand3x3", conv(b, sq, hw, ex, 3, 1, 1)});
  };
  fire("fire2", 96, 55, 16, 64);
  fire("fire3", 128, 55, 16, 64);
  fire("fire4", 128, 55, 32, 128);
  fire("fire5", 256, 27, 32, 128);
  fire("fire6", 256, 27, 48, 192);
  fire("fire7", 384, 27, 48, 192);
  fire("fire8", 384, 27, 64, 256);
  fire("fire9", 512, 13, 64, 256);
  layers.push_back({"conv10", conv(b, 512, 13, 1000, 1, 1, 0)});
  return layers;
}

std::vector<ConvLayer> vgg19(std::int64_t b) {
  std::vector<ConvLayer> layers;
  auto stage = [&](int idx, std::int64_t cin, std::int64_t cout,
                   std::int64_t hw, int convs) {
    for (int i = 0; i < convs; ++i) {
      layers.push_back({"conv" + std::to_string(idx) + "_" +
                            std::to_string(i + 1),
                        conv(b, i == 0 ? cin : cout, hw, cout, 3, 1, 1)});
    }
  };
  stage(1, 3, 64, 224, 2);
  stage(2, 64, 128, 112, 2);
  stage(3, 128, 256, 56, 4);
  stage(4, 256, 512, 28, 4);
  stage(5, 512, 512, 14, 4);
  return layers;
}

namespace {

/// Residual stages shared by ResNet-18/34 (basic blocks, two 3x3 convs).
std::vector<ConvLayer> resnet_basic(std::int64_t b,
                                    const std::vector<int>& blocks) {
  std::vector<ConvLayer> layers;
  layers.push_back({"conv1", conv(b, 3, 224, 64, 7, 2, 3)});
  const std::int64_t widths[4] = {64, 128, 256, 512};
  const std::int64_t sizes[4] = {56, 28, 14, 7};
  std::int64_t cin = 64;
  for (int st = 0; st < 4; ++st) {
    const std::int64_t w = widths[st], hw = sizes[st];
    for (int blk = 0; blk < blocks[static_cast<std::size_t>(st)]; ++blk) {
      const bool down = (st > 0 && blk == 0);
      const std::string base =
          "layer" + std::to_string(st + 1) + "." + std::to_string(blk);
      // First conv of a downsampling block runs at the previous resolution
      // with stride 2.
      layers.push_back({base + ".conv1",
                        conv(b, cin, down ? hw * 2 : hw, w, 3, down ? 2 : 1,
                             1)});
      layers.push_back({base + ".conv2", conv(b, w, hw, w, 3, 1, 1)});
      if (down) {
        layers.push_back(
            {base + ".downsample", conv(b, cin, hw * 2, w, 1, 2, 0)});
      }
      cin = w;
    }
  }
  return layers;
}

}  // namespace

std::vector<ConvLayer> resnet18(std::int64_t b) {
  return resnet_basic(b, {2, 2, 2, 2});
}

std::vector<ConvLayer> resnet34(std::int64_t b) {
  return resnet_basic(b, {3, 4, 6, 3});
}

std::vector<ConvLayer> inception_v3(std::int64_t b) {
  std::vector<ConvLayer> layers;
  // Stem.
  layers.push_back({"stem/conv1", conv(b, 3, 299, 32, 3, 2, 0)});
  layers.push_back({"stem/conv2", conv(b, 32, 149, 32, 3, 1, 0)});
  layers.push_back({"stem/conv3", conv(b, 32, 147, 64, 3, 1, 1)});
  layers.push_back({"stem/conv4", conv(b, 64, 73, 80, 1, 1, 0)});
  layers.push_back({"stem/conv5", conv(b, 80, 73, 192, 3, 1, 0)});
  // Three Inception-A modules at 35x35 (1x1 / 5x5 / double-3x3 / pool-proj).
  auto inception_a = [&](const std::string& name, std::int64_t cin,
                         std::int64_t pool_proj) {
    layers.push_back({name + "/1x1", conv(b, cin, 35, 64, 1, 1, 0)});
    layers.push_back({name + "/5x5_reduce", conv(b, cin, 35, 48, 1, 1, 0)});
    layers.push_back({name + "/5x5", conv(b, 48, 35, 64, 5, 1, 2)});
    layers.push_back({name + "/3x3_reduce", conv(b, cin, 35, 64, 1, 1, 0)});
    layers.push_back({name + "/3x3a", conv(b, 64, 35, 96, 3, 1, 1)});
    layers.push_back({name + "/3x3b", conv(b, 96, 35, 96, 3, 1, 1)});
    layers.push_back({name + "/pool_proj", conv(b, cin, 35, pool_proj, 1, 1, 0)});
  };
  inception_a("mixed0", 192, 32);
  inception_a("mixed1", 256, 64);
  inception_a("mixed2", 288, 64);
  // Reduction-A to 17x17.
  layers.push_back({"mixed3/3x3", conv(b, 288, 35, 384, 3, 2, 0)});
  layers.push_back({"mixed3/d3x3_reduce", conv(b, 288, 35, 64, 1, 1, 0)});
  layers.push_back({"mixed3/d3x3a", conv(b, 64, 35, 96, 3, 1, 1)});
  layers.push_back({"mixed3/d3x3b", conv(b, 96, 35, 96, 3, 2, 0)});
  // Inception-B modules at 17x17 (7x7 factorised as 7x7 equivalent cost:
  // modelled as 1x7+7x1 pairs via two 7-wide convs; we encode them as the
  // dominant 1x1-reduced 3x3-equivalent pair with kh=kw=7 collapsed —
  // keeping the arithmetic honest matters more than branch topology here).
  auto inception_b = [&](const std::string& name, std::int64_t mid) {
    layers.push_back({name + "/1x1", conv(b, 768, 17, 192, 1, 1, 0)});
    layers.push_back({name + "/7x7_reduce", conv(b, 768, 17, mid, 1, 1, 0)});
    layers.push_back({name + "/7x7", conv(b, mid, 17, 192, 7, 1, 3)});
    layers.push_back({name + "/pool_proj", conv(b, 768, 17, 192, 1, 1, 0)});
  };
  inception_b("mixed4", 128);
  inception_b("mixed5", 160);
  inception_b("mixed6", 160);
  inception_b("mixed7", 192);
  // Reduction-B to 8x8.
  layers.push_back({"mixed8/3x3_reduce", conv(b, 768, 17, 192, 1, 1, 0)});
  layers.push_back({"mixed8/3x3", conv(b, 192, 17, 320, 3, 2, 0)});
  // Inception-C modules at 8x8.
  auto inception_c = [&](const std::string& name, std::int64_t cin) {
    layers.push_back({name + "/1x1", conv(b, cin, 8, 320, 1, 1, 0)});
    layers.push_back({name + "/3x3_reduce", conv(b, cin, 8, 384, 1, 1, 0)});
    layers.push_back({name + "/3x3", conv(b, 384, 8, 384, 3, 1, 1)});
    layers.push_back({name + "/pool_proj", conv(b, cin, 8, 192, 1, 1, 0)});
  };
  inception_c("mixed9", 1280);
  inception_c("mixed10", 2048);
  return layers;
}

std::vector<ConvLayer> mobilenet_v1(std::int64_t b) {
  std::vector<ConvLayer> layers;
  ConvShape first = conv(b, 3, 224, 32, 3, 2, 1);
  layers.push_back({"conv1", first});
  struct Block {
    std::int64_t cin, cout, hw;  // hw = input size of the depthwise conv
    std::int64_t stride;
  };
  const std::vector<Block> blocks = {
      {32, 64, 112, 1},   {64, 128, 112, 2},  {128, 128, 56, 1},
      {128, 256, 56, 2},  {256, 256, 28, 1},  {256, 512, 28, 2},
      {512, 512, 14, 1},  {512, 512, 14, 1},  {512, 512, 14, 1},
      {512, 512, 14, 1},  {512, 512, 14, 1},  {512, 1024, 14, 2},
      {1024, 1024, 7, 1},
  };
  int idx = 2;
  for (const Block& blk : blocks) {
    ConvShape dw = conv(b, blk.cin, blk.hw, blk.cin, 3, blk.stride, 1);
    dw.groups = blk.cin;  // depthwise
    dw.validate();
    layers.push_back({"conv" + std::to_string(idx) + "_dw", dw});
    const std::int64_t hw_out = dw.hout();
    layers.push_back({"conv" + std::to_string(idx) + "_pw",
                      conv(b, blk.cin, hw_out, blk.cout, 1, 1, 0)});
    ++idx;
  }
  return layers;
}

std::vector<std::pair<std::string, std::vector<ConvLayer>>> model_zoo(
    std::int64_t batch) {
  return {
      {"SqueezeNet", squeezenet_v10(batch)},
      {"Vgg-19", vgg19(batch)},
      {"ResNet-18", resnet18(batch)},
      {"ResNet-34", resnet34(batch)},
      {"Inception-v3", inception_v3(batch)},
  };
}

std::int64_t model_flops(const std::vector<ConvLayer>& layers) {
  return std::accumulate(layers.begin(), layers.end(), std::int64_t{0},
                         [](std::int64_t acc, const ConvLayer& l) {
                           return acc + l.shape.flops();
                         });
}

}  // namespace convbound
