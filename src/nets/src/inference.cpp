#include "convbound/nets/inference.hpp"

#include <algorithm>

#include "convbound/conv/algorithms.hpp"
#include "convbound/conv/reference.hpp"
#include "convbound/tune/engine.hpp"

namespace convbound {

namespace {

struct Candidate {
  std::string name;
  LaunchStats stats;
};

Candidate best_of(std::vector<Candidate> cands) {
  CB_CHECK(!cands.empty());
  return *std::min_element(cands.begin(), cands.end(),
                           [](const Candidate& a, const Candidate& b) {
                             return a.stats.sim_time < b.stats.sim_time;
                           });
}

}  // namespace

ModelReport run_model(SimGpu& gpu, const std::string& model_name,
                      const std::vector<ConvLayer>& layers,
                      ModelStrategy strategy, int tune_budget,
                      std::uint64_t seed) {
  ModelReport report;
  report.model = model_name;
  report.strategy = strategy;

  for (const auto& layer : layers) {
    const ConvShape& s = layer.shape;
    ConvProblem p = make_problem(s, seed ^ std::hash<std::string>{}(layer.name));
    Tensor4<float> out(s.batch, s.cout, s.hout(), s.wout());
    const bool wino_ok =
        algorithm_supports(ConvAlgorithm::kWinogradFused, s) && s.kh == 3;
    CB_CHECK(s.groups == 1 || !wino_ok);

    std::vector<Candidate> cands;
    switch (strategy) {
      case ModelStrategy::kBaseline: {
        cands.push_back(
            {"direct-naive", direct_naive_sim(gpu, p.input, p.weights, s, out)});
        if (s.groups == 1) {
          cands.push_back(
              {"im2col", im2col_sim(gpu, p.input, p.weights, s, out)});
        }
        if (wino_ok) {
          cands.push_back({"winograd-phased",
                           winograd_phased_sim(gpu, p.input, p.weights, s, 2,
                                               out)});
        }
        break;
      }
      case ModelStrategy::kOursDefault: {
        const ConvConfig dc = default_tiled_config(s, gpu.spec());
        cands.push_back({"direct-tiled",
                         direct_tiled_sim(gpu, p.input, p.weights, s, dc, out)});
        if (wino_ok) {
          const ConvConfig wc = default_winograd_config(s, 2, gpu.spec());
          cands.push_back({"winograd-fused",
                           winograd_fused_sim(gpu, p.input, p.weights, s, 2,
                                              wc, out)});
        }
        break;
      }
      case ModelStrategy::kOursTuned: {
        AutotuneOptions opts;
        opts.budget = tune_budget;
        opts.seed = seed;
        AutotuneOutcome direct = autotune_conv(gpu, s, opts);
        ConvConfig dc = direct.result.best_seconds < 1e30
                            ? direct.result.best
                            : default_tiled_config(s, gpu.spec());
        cands.push_back({"direct-tiled(tuned)",
                         direct_tiled_sim(gpu, p.input, p.weights, s, dc, out)});
        if (wino_ok) {
          opts.winograd = true;
          AutotuneOutcome wino = autotune_conv(gpu, s, opts);
          ConvConfig wc = wino.result.best_seconds < 1e30
                              ? wino.result.best
                              : default_winograd_config(s, 2, gpu.spec());
          cands.push_back({"winograd-fused(tuned)",
                           winograd_fused_sim(gpu, p.input, p.weights, s, 2,
                                              wc, out)});
        }
        break;
      }
    }

    const Candidate best = best_of(std::move(cands));
    LayerTiming t;
    t.name = layer.name;
    t.shape = s;
    t.seconds = best.stats.sim_time;
    t.algorithm = best.name;
    t.io_bytes = best.stats.bytes_total();
    report.total_seconds += t.seconds;
    report.layers.push_back(std::move(t));
  }
  return report;
}

}  // namespace convbound
