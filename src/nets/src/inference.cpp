#include "convbound/nets/inference.hpp"

#include "convbound/conv/reference.hpp"

namespace convbound {

namespace {

PlannerOptions options_for(ModelStrategy strategy, int tune_budget,
                           std::uint64_t seed) {
  PlannerOptions opts;
  opts.seed = seed;
  switch (strategy) {
    case ModelStrategy::kBaseline:
      opts.candidates = CandidateSet::kBaseline;
      opts.mode = PlanMode::kMeasured;
      break;
    case ModelStrategy::kOursDefault:
      opts.candidates = CandidateSet::kOurs;
      opts.mode = PlanMode::kMeasured;
      break;
    case ModelStrategy::kOursTuned:
      opts.candidates = CandidateSet::kOurs;
      opts.mode = PlanMode::kTuned;
      opts.tune_budget = tune_budget;
      break;
  }
  return opts;
}

}  // namespace

ModelReport run_model(SimGpu& gpu, const std::string& model_name,
                      const std::vector<ConvLayer>& layers,
                      ModelStrategy strategy, InferenceSession& session,
                      int tune_budget, std::uint64_t seed) {
  ModelReport report;
  report.model = model_name;
  report.strategy = strategy;
  const PlannerOptions opts = options_for(strategy, tune_budget, seed);

  for (const auto& layer : layers) {
    const ConvShape& s = layer.shape;
    // Plan once per (machine, shape, strategy) — memoised in the session —
    // then execute through the workspace arena.
    const ConvPlan plan = session.planner().plan(gpu, s, opts);
    const ConvProblem p =
        make_problem(s, seed ^ std::hash<std::string>{}(layer.name));
    const ConvExecutor::Execution ex =
        session.executor().execute(gpu, plan, p.input, p.weights);

    LayerTiming t;
    t.name = layer.name;
    t.shape = s;
    t.seconds = ex.stats.sim_time;
    t.algorithm = plan.label();
    t.io_bytes = ex.stats.bytes_total();
    t.plan = plan;
    report.total_seconds += t.seconds;
    report.layers.push_back(std::move(t));
  }
  return report;
}

ModelReport run_model(SimGpu& gpu, const std::string& model_name,
                      const std::vector<ConvLayer>& layers,
                      ModelStrategy strategy, int tune_budget,
                      std::uint64_t seed) {
  InferenceSession session;
  return run_model(gpu, model_name, layers, strategy, session, tune_budget,
                   seed);
}

}  // namespace convbound
