// Fixture: manual lock()/unlock() on a mutex-named receiver.
// Expected findings: 4x bare-lock (mu_.lock, mu_.unlock,
// stats_mutex->try_lock, stats_mutex->unlock). The RAII guard call
// `guard.unlock()` must NOT be flagged (receiver is not a mutex).
#include <mutex>

struct Widget {
  void poke() {
    mu_.lock();  // finding: bare-lock
    ++count_;
    mu_.unlock();  // finding: bare-lock
  }
  bool try_poke(std::mutex* stats_mutex) {
    if (stats_mutex->try_lock()) {  // finding: bare-lock
      stats_mutex->unlock();  // finding: bare-lock
      return true;
    }
    return false;
  }
  void fine() {
    std::unique_lock<std::mutex> guard(mu_);
    guard.unlock();  // ok: RAII guard, not a mutex
  }
  std::mutex mu_;
  int count_ = 0;
};
