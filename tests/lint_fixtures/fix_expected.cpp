// Fixture: --fix input. Defaulted load()/store() calls are rewritten to
// explicit std::memory_order_seq_cst; fetch_add and implicit touches are
// reported but left alone (relaxing them is a human decision).
#include <atomic>

struct Flags {
  bool get() const { return v_.load(std::memory_order_seq_cst); }
  void set(bool b) { v_.store(b, std::memory_order_seq_cst); }
  void set_ticket(int t) { ticket_.store(t + 1, std::memory_order_seq_cst); }
  long bump() { return ticket_.fetch_add(1); }
  bool ok() const { return v_.load(std::memory_order_acquire); }
  std::atomic<bool> v_{false};
  std::atomic<long> ticket_{0};
};
