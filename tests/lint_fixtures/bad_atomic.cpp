// Fixture: atomic accesses without an explicit std::memory_order.
// Expected findings:
//   - stopped_.load()            -> atomic-order (and --fix-able)
//   - started_.store(true)       -> atomic-order (and --fix-able)
//   - counter_.fetch_add(1)      -> atomic-order (not auto-fixed)
//   - `if (stopped_)`            -> implicit atomic access
//   - `++counter_`               -> implicit atomic access
// Explicit-order calls and the non-atomic `ctx.store(...)` helper call
// must NOT be flagged.
#include <atomic>

struct Ctx {
  void store(int, int) {}
};

struct Server {
  bool running() const { return !stopped_.load(); }
  void start() { started_.store(true); }
  void bump() { counter_.fetch_add(1); }
  void implicit() {
    if (stopped_) return;
    ++counter_;
  }
  void fine(Ctx& ctx) {
    stopped_.store(true, std::memory_order_seq_cst);
    (void)counter_.load(std::memory_order_relaxed);
    ctx.store(1, 2);  // ok: not an atomic — Ctx::store is a plain method
  }
  std::atomic<bool> stopped_{false};
  std::atomic<bool> started_{false};
  std::atomic<long> counter_{0};
};
