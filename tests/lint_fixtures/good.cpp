// Fixture: idiomatic convbound concurrency code. Zero findings expected.
// Exercises the patterns most likely to false-positive:
//   - RAII guards (MutexLock-style) including guard.unlock() mid-scope
//   - explicit memory orders on every atomic touch
//   - atomic names mentioned in comments and strings ("stopped_.load()")
//   - bit shifts inside CB_CHECK conditions
#include <atomic>
#include <mutex>

#include "convbound/util/check.hpp"

struct Pool {
  void drain() {
    std::unique_lock<std::mutex> lock(m_);
    lock.unlock();  // ok: guard object
    // stopped_.load() in this comment must not be flagged; neither must
    // the string below.
    last_error_ = "stopped_ was set";  // plain string mentioning an atomic
    stopped_.store(true, std::memory_order_seq_cst);
    while (!done_.load(std::memory_order_acquire)) {
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    CB_CHECK((1 << 4) == 16);
    CB_CHECK_MSG(hits_.load(std::memory_order_relaxed) >= 0,
                 "hits=" << hits_.load(std::memory_order_relaxed));
  }
  std::mutex m_;
  const char* last_error_ = nullptr;
  std::atomic<bool> stopped_{false};
  std::atomic<bool> done_{false};
  std::atomic<long> hits_{0};
};
