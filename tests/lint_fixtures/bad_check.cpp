// Fixture: CB_CHECK/CB_ASSERT contract violations.
// Expected findings:
//   - CB_CHECK(n > 0 << "msg")   -> check-contract (streamed message)
//   - CB_ASSERT(p << "null")     -> check-contract (streamed message)
//   - CB_CHECK in ~Holder()      -> check-contract (throw in dtor)
// Legit uses (bare CB_CHECK, CB_CHECK_MSG with a stream, a genuine
// bit-shift condition, CB_ASSERT in a dtor) must NOT be flagged.
#include "convbound/util/check.hpp"

struct Holder {
  ~Holder() {
    CB_CHECK(closed_);  // finding: throwing check in a destructor
    CB_ASSERT(refs_ == 0);  // ok: aborts, never throws
  }
  void set(int n, void* p) {
    CB_CHECK(n > 0 << "n must be positive");  // finding: streamed message
    CB_ASSERT(p << "p must not be null");  // finding: streamed message
    CB_CHECK_MSG(n < 64, "n=" << n);  // ok: _MSG takes a stream
    CB_CHECK((n << 2) < 256);  // ok: genuine bit shift, no string literal
  }
  bool closed_ = false;
  int refs_ = 0;
};
