#include <gtest/gtest.h>

#include "convbound/bounds/conv_bounds.hpp"
#include "convbound/bounds/matmul_bounds.hpp"
#include "convbound/pebble/dag.hpp"
#include "convbound/pebble/game.hpp"
#include "convbound/pebble/generators.hpp"

namespace convbound {
namespace {

TEST(DagBuilder, TopologicalInsertionEnforced) {
  DagBuilder b;
  const VertexId i0 = b.add_input();
  const VertexId i1 = b.add_input();
  const VertexId v = b.add_vertex({i0, i1});
  EXPECT_EQ(v, 2u);
  EXPECT_THROW(b.add_vertex({static_cast<VertexId>(99)}), Error);
}

TEST(DagBuilder, BuildComputesDegreesAndCounts) {
  DagBuilder b;
  const VertexId i0 = b.add_input();
  const VertexId i1 = b.add_input();
  const VertexId v = b.add_vertex({i0, i1});
  b.mark_output(v);
  const Dag dag = b.build();
  EXPECT_EQ(dag.num_vertices(), 3u);
  EXPECT_EQ(dag.num_inputs, 2u);
  EXPECT_EQ(dag.num_outputs, 1u);
  EXPECT_EQ(dag.num_internal(), 0u);
  EXPECT_EQ(dag.max_in_degree, 2u);
  EXPECT_EQ(dag.successors(i0).size(), 1u);
  EXPECT_EQ(dag.predecessors(v).size(), 2u);
}

TEST(SummationTree, Lemma47VertexCount) {
  // A summation tree with k inputs has k-2 internal vertices and 1 output.
  for (std::size_t k : {2u, 3u, 7u, 16u}) {
    DagBuilder b;
    std::vector<VertexId> in(k);
    for (auto& v : in) v = b.add_input();
    const VertexId root = add_summation_tree(b, in);
    b.mark_output(root);
    const Dag dag = b.build();
    EXPECT_EQ(dag.num_vertices(), k + (k - 1));
    EXPECT_EQ(dag.num_internal(), k - 2);
    EXPECT_EQ(dag.num_outputs, 1u);
  }
}

TEST(LinearCombinationTree, Lemma413VertexCount) {
  // 2k-2 internal vertices and 1 output.
  for (std::size_t k : {2u, 4u, 9u}) {
    DagBuilder b;
    std::vector<VertexId> in(k);
    for (auto& v : in) v = b.add_input();
    const VertexId root = add_linear_combination_tree(b, in);
    b.mark_output(root);
    const Dag dag = b.build();
    EXPECT_EQ(dag.num_internal(), 2 * k - 2);
    EXPECT_EQ(dag.num_outputs, 1u);
  }
}

TEST(DirectConvDag, Lemma48VertexCount) {
  ConvDagShape s;
  s.cin = 3;
  s.hin = s.win = 6;
  s.cout = 4;
  s.ker = 3;
  s.stride = 1;
  const Dag dag = direct_conv_dag(s);
  const auto expect_internal_plus_out =
      (2 * s.ker * s.ker * s.cin - 1) * s.hout() * s.wout() * s.cout;
  EXPECT_EQ(dag.num_internal() + dag.num_outputs,
            static_cast<std::size_t>(expect_internal_plus_out));
  EXPECT_EQ(dag.num_outputs,
            static_cast<std::size_t>(s.hout() * s.wout() * s.cout));
  EXPECT_EQ(dag.num_inputs, static_cast<std::size_t>(
                                s.cin * s.hin * s.win +
                                s.cout * s.cin * s.ker * s.ker));
}

TEST(DirectConvDag, StridedShapeCounts) {
  ConvDagShape s;
  s.cin = 2;
  s.hin = s.win = 7;
  s.cout = 2;
  s.ker = 3;
  s.stride = 2;
  EXPECT_EQ(s.hout(), 3);
  const Dag dag = direct_conv_dag(s);
  EXPECT_EQ(dag.num_outputs, static_cast<std::size_t>(3 * 3 * 2));
}

TEST(DirectConvDag, TilingPreservesStructure) {
  ConvDagShape s;
  s.cin = 2;
  s.hin = s.win = 6;
  s.cout = 4;
  const Dag naive = direct_conv_dag(s, TileSpec{1, 1, 1});
  const Dag tiled = direct_conv_dag(s, TileSpec{2, 2, 2});
  EXPECT_EQ(naive.num_vertices(), tiled.num_vertices());
  EXPECT_EQ(naive.num_outputs, tiled.num_outputs);
  EXPECT_EQ(naive.num_inputs, tiled.num_inputs);
}

TEST(WinogradDag, Lemma414VertexCount) {
  WinogradDagShape s;
  s.cin = 2;
  s.tiles_h = s.tiles_w = 2;
  s.cout = 2;
  s.e = 2;
  s.r = 3;
  const Dag dag = winograd_dag(s);
  const std::int64_t a2 = s.alpha() * s.alpha();
  const std::int64_t ntiles = s.tiles_h * s.tiles_w;
  // Exact construction count: transforms are shared (P once per (tile, c),
  // J once per (k, c)); steps 2-4 per (tile, k).
  const std::int64_t exact =
      ntiles * s.cin * a2 * (2 * a2 - 1)                    // step 1a
      + s.cout * s.cin * a2 * (2 * s.r * s.r - 1)           // step 1b
      + ntiles * s.cout * s.cin * a2                        // step 2
      + ntiles * s.cout * (s.cin - 1) * a2                  // step 3
      + ntiles * s.cout * s.e * s.e * (2 * a2 - 1);         // step 4
  EXPECT_EQ(dag.num_internal() + dag.num_outputs,
            static_cast<std::size_t>(exact));
  // Lemma 4.14 counts each F(e,r) instance independently (transforms
  // recomputed per instance), so it upper-bounds the deduplicated DAG.
  const double per_instance =
      (2.0 * a2 - 1) * a2 * s.cin + (2.0 * s.r * s.r - 1) * a2 * s.cin +
      a2 * s.cin + (s.cin - 1) * a2 + (2.0 * a2 - 1) * s.e * s.e;
  EXPECT_LE(static_cast<double>(dag.num_internal() + dag.num_outputs),
            per_instance * static_cast<double>(ntiles * s.cout));
}

TEST(WinogradDag, FusedAndPhasedSameStructure) {
  WinogradDagShape s;
  s.cin = 2;
  s.tiles_h = s.tiles_w = 2;
  s.cout = 2;
  const Dag fused = winograd_dag(s, WinogradOrder::kFused);
  const Dag phased = winograd_dag(s, WinogradOrder::kPhased);
  EXPECT_EQ(fused.num_vertices(), phased.num_vertices());
  EXPECT_EQ(fused.num_outputs, phased.num_outputs);
}

// ------------------------------------------------------------- the game --

TEST(PebbleGame, TinyChainExactCounts) {
  // in0 -> v -> out: S=3, one load per input, one store of the output.
  DagBuilder b;
  const VertexId i0 = b.add_input();
  const VertexId i1 = b.add_input();
  const VertexId v = b.add_vertex({i0, i1});
  b.mark_output(v);
  const Dag dag = b.build();
  const GameResult r = play_pebble_game(dag, 3);
  EXPECT_EQ(r.loads, 2u);
  EXPECT_EQ(r.stores, 1u);
}

TEST(PebbleGame, RequiresEnoughRedPebbles) {
  DagBuilder b;
  const VertexId i0 = b.add_input();
  const VertexId i1 = b.add_input();
  b.mark_output(b.add_vertex({i0, i1}));
  const Dag dag = b.build();
  EXPECT_THROW(play_pebble_game(dag, 2), Error);
}

TEST(PebbleGame, QAtLeastColdTraffic) {
  ConvDagShape s;
  s.cin = 2;
  s.hin = s.win = 6;
  s.cout = 2;
  const Dag dag = direct_conv_dag(s, TileSpec{2, 2, 2});
  const GameResult r = play_pebble_game(dag, 64);
  EXPECT_GE(r.total(), cold_traffic(dag));
}

TEST(PebbleGame, MonotoneInFastMemory) {
  ConvDagShape s;
  s.cin = 3;
  s.hin = s.win = 8;
  s.cout = 4;
  const Dag dag = direct_conv_dag(s, TileSpec{2, 2, 2});
  std::uint64_t prev = UINT64_MAX;
  for (std::size_t S : {16u, 64u, 256u, 1024u}) {
    const GameResult r = play_pebble_game(dag, S);
    // Belady-with-writeback is a heuristic, so allow small non-monotonic
    // noise; the trend across 64x more memory must still be firmly down.
    EXPECT_LE(static_cast<double>(r.total()),
              static_cast<double>(prev) * 1.05 + 16);
    prev = std::min(prev, r.total());
  }
  const auto small = play_pebble_game(dag, 16);
  const auto large = play_pebble_game(dag, 1024);
  EXPECT_LT(large.total() * 2, small.total());
}

TEST(PebbleGame, BeladyNoWorseThanLruOnTiledConv) {
  ConvDagShape s;
  s.cin = 2;
  s.hin = s.win = 8;
  s.cout = 2;
  const Dag dag = direct_conv_dag(s, TileSpec{2, 2, 2});
  const auto belady = play_pebble_game(dag, 96, EvictionPolicy::kBelady);
  const auto lru = play_pebble_game(dag, 96, EvictionPolicy::kLru);
  EXPECT_LE(belady.total(), lru.total() * 11 / 10);
}

TEST(PebbleGame, BigMemoryTouchesEveryValueOnce) {
  ConvDagShape s;
  s.cin = 2;
  s.hin = s.win = 5;
  s.cout = 2;
  const Dag dag = direct_conv_dag(s);
  // S >= |V|: only cold loads + final stores remain.
  const GameResult r = play_pebble_game(dag, dag.num_vertices() + 2);
  EXPECT_EQ(r.total(), cold_traffic(dag));
}

TEST(PebbleGame, MatmulRespectsHongKungBound) {
  const std::int64_t n = 10;
  const Dag dag = matmul_dag(n, n, n, 4, 4);
  const std::size_t S = 48;
  const GameResult r = play_pebble_game(dag, S);
  EXPECT_GE(static_cast<double>(r.total()),
            matmul_lower_bound(n, n, n, static_cast<double>(S)));
}

TEST(PebbleGame, TiledOrderBeatsNaiveOrderOnConv) {
  // The Section 5.2 dataflow order (x*y = R*z tiles) must move less data
  // than the one-output-at-a-time order under the same fast memory.
  ConvDagShape s;
  s.cin = 4;
  s.hin = s.win = 10;
  s.cout = 8;
  const std::size_t S = 256;
  const auto naive =
      play_pebble_game(direct_conv_dag(s, TileSpec{1, 1, 1}), S);
  // R = 9 => x*y = 9*z: (x,y,z) = (3,3,1) scaled: use (6,6,4): xy=36=9*4.
  const auto tiled =
      play_pebble_game(direct_conv_dag(s, TileSpec{6, 6, 4}), S);
  EXPECT_LT(tiled.total(), naive.total());
}

TEST(PebbleGame, MeasuredQAboveDirectConvLowerBound) {
  ConvDagShape ds;
  ds.cin = 4;
  ds.hin = ds.win = 10;
  ds.cout = 8;
  const std::size_t S = 128;
  const auto game =
      play_pebble_game(direct_conv_dag(ds, TileSpec{6, 6, 4}), S);

  ConvShape s;
  s.cin = ds.cin;
  s.hin = ds.hin;
  s.win = ds.win;
  s.cout = ds.cout;
  s.kh = s.kw = ds.ker;
  const double bound = direct_conv_lower_bound(s, static_cast<double>(S));
  EXPECT_GE(static_cast<double>(game.total()), bound);
}

TEST(PebbleGame, MeasuredQAboveWinogradLowerBound) {
  WinogradDagShape ws;
  ws.cin = 2;
  ws.tiles_h = ws.tiles_w = 3;
  ws.cout = 2;
  const std::size_t S = 128;
  const auto game = play_pebble_game(winograd_dag(ws), S);

  ConvShape s;
  s.cin = ws.cin;
  s.hin = ws.hin();
  s.win = ws.win();
  s.cout = ws.cout;
  s.kh = s.kw = ws.r;
  const double bound = winograd_lower_bound(s, ws.e, static_cast<double>(S));
  EXPECT_GE(static_cast<double>(game.total()), bound);
}

TEST(PebbleGame, FusedWinogradOrderBeatsPhased) {
  WinogradDagShape ws;
  ws.cin = 4;
  ws.tiles_h = ws.tiles_w = 3;
  ws.cout = 4;
  const std::size_t S = 256;
  const auto fused = play_pebble_game(winograd_dag(ws, WinogradOrder::kFused), S);
  const auto phased =
      play_pebble_game(winograd_dag(ws, WinogradOrder::kPhased), S);
  EXPECT_LT(fused.total(), phased.total());
}

}  // namespace
}  // namespace convbound
