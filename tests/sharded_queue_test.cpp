// ShardedRequestQueue: the sharded front door must preserve the single
// queue's contract — Admit verdicts, strict global capacity, weighted-fair
// quota summed across shards, queue-owned expiry, close/drain semantics —
// while ordering is approximate-global-EDF (exact within a shard;
// wait_front names the true global minimum at scan time).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "convbound/serve/sharded_queue.hpp"

namespace convbound {
namespace {

PendingRequest pending(const std::string& model,
                       ServeTimePoint deadline = ServeTimePoint::max(),
                       std::size_t class_index = 0) {
  PendingRequest p;
  p.request.model = model;
  p.request.deadline = deadline;
  p.class_index = class_index;
  p.enqueued = ServeClock::now();
  return p;
}

/// A model name that lands on a different shard than `other` (for class 0).
std::string model_on_other_shard(const ShardedRequestQueue& q,
                                 const std::string& other) {
  const std::size_t avoid = q.shard_of(other, 0);
  for (int i = 0; i < 1024; ++i) {
    const std::string m = "m" + std::to_string(i);
    if (q.shard_of(m, 0) != avoid) return m;
  }
  ADD_FAILURE() << "no model found off shard " << avoid;
  return other;
}

TEST(ShardedQueue, PreservesAdmitContractWithGlobalCapacity) {
  // Capacity 4 is *global*: each shard would individually accept far more,
  // so a kFull on the 5th push proves the facade's reservation counter —
  // not any shard — is the capacity authority.
  ShardedRequestQueue q(4, 4);
  ASSERT_EQ(q.num_shards(), 4u);
  std::size_t depth_after = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_EQ(q.push(pending("m" + std::to_string(i)), &depth_after),
              RequestQueue::Admit::kOk);
    // Satellite fix: the post-insert depth comes out of push itself (the
    // old submit path re-locked the queue via depth()).
    EXPECT_EQ(depth_after, i + 1);
  }
  EXPECT_EQ(q.push(pending("m0")), RequestQueue::Admit::kFull);
  EXPECT_EQ(q.depth(), 4u);

  // Collect each model back; the facade routes to the candidate shards.
  std::size_t collected = 0;
  for (std::size_t i = 0; i < 4; ++i)
    collected += q.collect("m" + std::to_string(i), 4, ServeClock::now()).size();
  EXPECT_EQ(collected, 4u);
  EXPECT_EQ(q.depth(), 0u);

  q.close();
  EXPECT_EQ(q.push(pending("m0")), RequestQueue::Admit::kClosed);
  std::string model;
  ServeTimePoint enq;
  EXPECT_FALSE(q.wait_front(&model, &enq));  // closed + drained
}

TEST(ShardedQueue, WeightedFairQuotaSumsAcrossShards) {
  // Same shape as the single-queue quota test (capacity 8, paid:free 3:1
  // -> shares 6/2, congestion 0.5 -> binds at depth 4), but each free push
  // uses a different model so the entries spread over different shards: the
  // 5th free push must still be kQuota even though no single shard holds
  // more than a couple of free entries — quota is the cross-shard total.
  const TenantTable table(
      {TenantClass{"paid", 0, 3.0}, TenantClass{"free", 0, 1.0}});
  ShardedRequestQueue q(8, 4);
  q.set_tenancy(&table, 0.5);
  const std::size_t paid = table.resolve("paid");
  const std::size_t free_cls = table.resolve("free");

  for (int i = 0; i < 4; ++i)
    ASSERT_EQ(q.push(pending("m" + std::to_string(i), ServeTimePoint::max(),
                             free_cls)),
              RequestQueue::Admit::kOk)
        << i;
  EXPECT_EQ(q.push(pending("m4", ServeTimePoint::max(), free_cls)),
            RequestQueue::Admit::kQuota);
  EXPECT_EQ(q.class_depth(free_cls), 4u);
  for (int i = 0; i < 4; ++i)
    ASSERT_EQ(q.push(pending("m" + std::to_string(i), ServeTimePoint::max(),
                             paid)),
              RequestQueue::Admit::kOk)
        << i;
  EXPECT_EQ(q.push(pending("m0", ServeTimePoint::max(), paid)),
            RequestQueue::Admit::kFull);
  EXPECT_EQ(q.push(pending("m0", ServeTimePoint::max(), free_cls)),
            RequestQueue::Admit::kFull);
  EXPECT_EQ(q.class_depth(paid), 4u);

  q.close();
  for (auto& p : q.drain()) p.promise.set_value(InferResponse{});
  EXPECT_EQ(q.depth(), 0u);
  EXPECT_EQ(q.class_depth(paid), 0u);
  EXPECT_EQ(q.class_depth(free_cls), 0u);
}

TEST(ShardedQueue, ApproximateGlobalEdfPinsTheBound) {
  ShardedRequestQueue q(16, 2);
  const std::string a = "a";
  const std::string b = model_on_other_shard(q, a);
  const auto now = ServeClock::now();
  const auto at = [&](int ms) { return now + std::chrono::milliseconds(ms); };

  // A less urgent entry on a's shard, a more urgent one on b's shard.
  ASSERT_EQ(q.push(pending(a, at(100'000))), RequestQueue::Admit::kOk);
  ASSERT_EQ(q.push(pending(b, at(10'000))), RequestQueue::Admit::kOk);

  // Exact half of the guarantee: wait_front reports the true global
  // minimum at scan time — the cross-shard head scan found b.
  std::string model;
  ServeTimePoint enq;
  ASSERT_TRUE(q.wait_front(&model, &enq));
  EXPECT_EQ(model, b);

  // Approximate half (the documented worst case): a collector that asks
  // for model `a` anyway receives a's entry although a strictly more
  // urgent b-entry exists on another shard. The inversion is at shard
  // granularity — it can never happen within one shard, which the
  // within-shard collect below pins.
  auto inverted = q.collect(a, 1, ServeClock::now());
  ASSERT_EQ(inverted.size(), 1u);
  EXPECT_EQ(inverted[0].request.model, a);

  // Within a shard EDF stays exact, with FIFO tie-break on arrival: three
  // same-model entries come back deadline-ordered regardless of push order.
  ASSERT_EQ(q.push(pending(b, at(90'000))), RequestQueue::Admit::kOk);
  ASSERT_EQ(q.push(pending(b, at(30'000))), RequestQueue::Admit::kOk);
  auto group = q.collect(b, 3, ServeClock::now());
  ASSERT_EQ(group.size(), 3u);
  EXPECT_EQ(group[0].effective_deadline(), at(10'000));
  EXPECT_EQ(group[1].effective_deadline(), at(30'000));
  EXPECT_EQ(group[2].effective_deadline(), at(90'000));

  // shards = 1 degenerates to the exact single-queue global EDF: the
  // facade's head scan has one head, so no inversion is possible.
  ShardedRequestQueue single(16, 1);
  ASSERT_EQ(single.push(pending(a, at(100'000))), RequestQueue::Admit::kOk);
  ASSERT_EQ(single.push(pending(b, at(10'000))), RequestQueue::Admit::kOk);
  ASSERT_TRUE(single.wait_front(&model, &enq));
  EXPECT_EQ(model, b);
  for (auto& p : single.drain()) p.promise.set_value(InferResponse{});
}

TEST(ShardedQueue, QueueOwnedExpiryFreesGlobalCapacity) {
  ShardedRequestQueue q(2, 4);
  std::atomic<std::size_t> expired_reported{0};
  q.set_on_expired([&](std::size_t, std::size_t n) { expired_reported += n; });

  PendingRequest dead =
      pending("a", ServeClock::now() - std::chrono::seconds(1));
  std::future<InferResponse> dead_fut = dead.promise.get_future();
  ASSERT_EQ(q.push(std::move(dead)), RequestQueue::Admit::kOk);
  ASSERT_EQ(q.push(pending("b")), RequestQueue::Admit::kOk);
  // At capacity with a dead occupant: the facade sweeps every shard before
  // letting the rejection stand, so "c" takes the dead entry's slot.
  EXPECT_EQ(q.push(pending("c")), RequestQueue::Admit::kOk);
  ASSERT_EQ(dead_fut.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(dead_fut.get().status, ServeStatus::kDeadlineExceeded);
  EXPECT_EQ(expired_reported.load(), 1u);
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_EQ(q.push(pending("d")), RequestQueue::Admit::kFull);

  q.close();
  for (auto& p : q.drain()) p.promise.set_value(InferResponse{});
}

TEST(ShardedQueue, MultiProducerMultiCollectorStressConservesEveryFuture) {
  // The satellite stress: >= 8 producers x 4 shards with two racing
  // collectors, expiring deadlines, and a mid-stream close. Every future
  // resolves exactly once (a double completion throws std::future_error
  // inside the queue) and the per-class accounting identity holds across
  // shards afterwards.
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 200;
  constexpr std::size_t kCapacity = 64;
  const TenantTable table(
      {TenantClass{"paid", 0, 3.0}, TenantClass{"free", 0, 1.0}});
  ShardedRequestQueue q(kCapacity, 4);
  // congestion 1.0: quota never binds, but per-class counters stay live so
  // the identity below exercises the cross-shard accounting.
  q.set_tenancy(&table, 1.0);
  std::atomic<std::size_t> expired_reported{0};
  q.set_on_expired([&](std::size_t, std::size_t n) { expired_reported += n; });

  std::vector<std::future<InferResponse>> futs(
      static_cast<std::size_t>(kProducers * kPerProducer));
  std::atomic<std::size_t> accepted{0};

  std::vector<std::thread> collectors;
  for (int c = 0; c < 2; ++c) {
    collectors.emplace_back([&] {
      std::string model;
      ServeTimePoint enq;
      for (;;) {
        if (!q.wait_front(&model, &enq)) return;  // closed + drained
        // Two collectors race for the same fronts; an empty group (the
        // other collector won) is fine.
        for (auto& p : q.collect(model, 4,
                                 ServeClock::now() +
                                     std::chrono::microseconds(200))) {
          InferResponse r;
          r.status = ServeStatus::kOk;
          p.promise.set_value(std::move(r));
        }
      }
    });
  }

  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerProducer; ++i) {
        PendingRequest p;
        p.request.model = "m" + std::to_string(i % 3);
        p.class_index = static_cast<std::size_t>((t + i) % 2);
        const int kind = (t + i) % 3;
        if (kind == 0)
          p.request.deadline = ServeClock::now() - std::chrono::seconds(1);
        else if (kind == 1)
          p.request.deadline =
              ServeClock::now() + std::chrono::microseconds(50 * (i % 7));
        p.enqueued = ServeClock::now();
        const std::size_t slot =
            static_cast<std::size_t>(t * kPerProducer + i);
        futs[slot] = p.promise.get_future();
        switch (q.push(std::move(p))) {
          case RequestQueue::Admit::kOk:
            ++accepted;
            break;
          case RequestQueue::Admit::kFull:
          case RequestQueue::Admit::kQuota:
          case RequestQueue::Admit::kClosed: {
            InferResponse r;
            r.status = ServeStatus::kRejected;
            p.promise.set_value(std::move(r));
            break;
          }
        }
        EXPECT_LE(q.depth(), kCapacity);
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  for (auto& t : producers) t.join();
  for (auto& t : collectors) t.join();

  std::size_t drained = 0;
  for (auto& p : q.drain()) {
    InferResponse r;
    r.status = ServeStatus::kShutdown;
    p.promise.set_value(std::move(r));
    ++drained;
  }

  std::size_t ok = 0, rejected = 0, expired = 0, shutdown = 0;
  for (auto& f : futs) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(30)),
              std::future_status::ready);
    switch (f.get().status) {
      case ServeStatus::kOk: ++ok; break;
      case ServeStatus::kRejected: ++rejected; break;
      case ServeStatus::kDeadlineExceeded: ++expired; break;
      case ServeStatus::kShutdown: ++shutdown; break;
      default: FAIL() << "unexpected status";
    }
  }
  // Conservation: every request resolved exactly one way, the queue's
  // expiry report matches the futures, and nothing leaked.
  EXPECT_EQ(ok + rejected + expired + shutdown, futs.size());
  EXPECT_EQ(accepted.load(), ok + expired + drained);
  EXPECT_EQ(expired_reported.load(), expired);
  EXPECT_EQ(shutdown, drained);

  // Per-class accounting identity across shards: after the drain the
  // facade's lock-free counters and every shard's own depth are all zero —
  // reservations, expiry, collects, and drains balanced exactly.
  EXPECT_EQ(q.depth(), 0u);
  EXPECT_EQ(q.class_depth(0), 0u);
  EXPECT_EQ(q.class_depth(1), 0u);
  std::size_t shard_total = 0;
  for (std::size_t s = 0; s < q.num_shards(); ++s)
    shard_total += q.shard_depth(s);
  EXPECT_EQ(shard_total, 0u);
}

}  // namespace
}  // namespace convbound
