#include <gtest/gtest.h>

#include "convbound/conv/algorithms.hpp"
#include "convbound/conv/reference.hpp"
#include "convbound/conv/winograd.hpp"
#include "convbound/conv/winograd_transform.hpp"

namespace convbound {
namespace {

ConvShape shape(std::int64_t b, std::int64_t cin, std::int64_t hw,
                std::int64_t cout, std::int64_t k, std::int64_t pad) {
  ConvShape s;
  s.batch = b;
  s.cin = cin;
  s.hin = s.win = hw;
  s.cout = cout;
  s.kh = s.kw = k;
  s.stride = 1;
  s.pad = pad;
  return s;
}

// ------------------------------------------------------------ transforms --

struct ErPair {
  std::int64_t e, r;
};

class TransformConstruction : public ::testing::TestWithParam<ErPair> {};

TEST_P(TransformConstruction, OneDimensionalIdentityHolds) {
  // make_winograd_transform self-verifies the correlation identity and
  // throws on failure; surviving construction is the assertion.
  const auto [e, r] = GetParam();
  const WinogradTransform t = make_winograd_transform(e, r);
  EXPECT_EQ(t.a, e + r - 1);
  EXPECT_EQ(t.AT.size(), static_cast<std::size_t>(e * t.a));
  EXPECT_EQ(t.G.size(), static_cast<std::size_t>(t.a * r));
  EXPECT_EQ(t.BT.size(), static_cast<std::size_t>(t.a * t.a));
}

INSTANTIATE_TEST_SUITE_P(Pairs, TransformConstruction,
                         ::testing::Values(ErPair{2, 2}, ErPair{2, 3},
                                           ErPair{3, 2}, ErPair{3, 3},
                                           ErPair{4, 3}, ErPair{2, 5},
                                           ErPair{6, 3}, ErPair{4, 4}));

TEST(TransformConstruction, F23MatchesClassicMatrices) {
  // The e=2, r=3 transform over points {0, 1, -1} must reproduce the
  // classic BT up to the per-point scaling freedom; verify BT's first row
  // (point 0): l_0 = (x^2-1)/(-1) => [1, 0, -1, 0] exactly.
  const auto t = make_winograd_transform(2, 3);
  EXPECT_NEAR(t.bt(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(t.bt(0, 1), 0.0, 1e-12);
  EXPECT_NEAR(t.bt(0, 2), -1.0, 1e-12);
  EXPECT_NEAR(t.bt(0, 3), 0.0, 1e-12);
}

TEST(TransformConstruction, RejectsOversizedTiles) {
  EXPECT_THROW(make_winograd_transform(8, 5), Error);
}

// ------------------------------------------------------------ reference --

struct WinoRefCase {
  ConvShape s;
  std::int64_t e;
};

class WinogradRefCorrectness : public ::testing::TestWithParam<WinoRefCase> {};

TEST_P(WinogradRefCorrectness, MatchesDirectReference) {
  const auto& p = GetParam();
  const ConvProblem prob = make_problem(p.s, 31);
  const Tensor4<float> expect = conv2d_ref(prob.input, prob.weights, p.s);
  const Tensor4<float> got = winograd_ref(prob.input, prob.weights, p.s, p.e);
  EXPECT_TRUE(allclose(expect, got, 1e-3, 1e-3))
      << p.s.to_string() << " e=" << p.e
      << " maxdiff=" << max_abs_diff(expect, got);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WinogradRefCorrectness,
    ::testing::Values(
        WinoRefCase{shape(1, 1, 6, 1, 3, 0), 2},
        WinoRefCase{shape(1, 3, 8, 4, 3, 1), 2},
        WinoRefCase{shape(1, 3, 9, 2, 3, 1), 4},    // F(4,3)
        WinoRefCase{shape(1, 2, 9, 3, 2, 0), 3},    // F(3,2)
        WinoRefCase{shape(2, 2, 10, 3, 3, 1), 2},   // batch
        WinoRefCase{shape(1, 2, 11, 2, 3, 1), 2},   // ragged tiles
        WinoRefCase{shape(1, 2, 12, 2, 5, 2), 2},   // 5x5 kernel
        WinoRefCase{shape(1, 4, 13, 4, 3, 1), 6}));  // F(6,3)

// -------------------------------------------------------------- kernels --

struct WinoSimCase {
  ConvShape s;
  std::int64_t e;
  ConvConfig cfg;
};

ConvConfig wcfg(std::int64_t x, std::int64_t y, std::int64_t z,
                Layout layout = Layout::kNCHW) {
  ConvConfig c;
  c.x = x;
  c.y = y;
  c.z = z;
  c.layout = layout;
  return c;
}

class WinogradFusedCorrectness
    : public ::testing::TestWithParam<WinoSimCase> {};

TEST_P(WinogradFusedCorrectness, MatchesDirectReference) {
  const auto& p = GetParam();
  const ConvProblem prob = make_problem(p.s, 37, p.cfg.layout);
  const Tensor4<float> expect = conv2d_ref(prob.input, prob.weights, p.s);
  SimGpu gpu(MachineSpec::v100());
  Tensor4<float> out(p.s.batch, p.s.cout, p.s.hout(), p.s.wout());
  winograd_fused_sim(gpu, prob.input, prob.weights, p.s, p.e, p.cfg, out);
  EXPECT_TRUE(allclose(expect, out, 1e-3, 1e-3))
      << p.s.to_string() << " e=" << p.e << " " << p.cfg.to_string()
      << " maxdiff=" << max_abs_diff(expect, out);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WinogradFusedCorrectness,
    ::testing::Values(
        WinoSimCase{shape(1, 1, 6, 1, 3, 0), 2, wcfg(2, 2, 1)},
        WinoSimCase{shape(1, 3, 8, 4, 3, 1), 2, wcfg(4, 4, 2)},
        WinoSimCase{shape(1, 3, 10, 4, 3, 1), 2, wcfg(4, 6, 4)},
        WinoSimCase{shape(1, 2, 9, 3, 3, 1), 2, wcfg(2, 2, 3)},  // ragged
        WinoSimCase{shape(2, 2, 8, 2, 3, 1), 2, wcfg(4, 4, 2)},  // batch
        WinoSimCase{shape(1, 2, 9, 2, 3, 0), 4, wcfg(4, 4, 2)},  // F(4,3)
        WinoSimCase{shape(1, 3, 8, 4, 3, 1), 2,
                    wcfg(4, 4, 2, Layout::kNHWC)},
        WinoSimCase{shape(1, 2, 12, 3, 2, 0), 3, wcfg(3, 3, 3)},   // F(3,2)
        WinoSimCase{shape(1, 2, 12, 2, 5, 2), 2, wcfg(4, 4, 2)}));  // F(2,5)

class WinogradPhasedCorrectness : public ::testing::TestWithParam<WinoRefCase> {
};

TEST_P(WinogradPhasedCorrectness, MatchesDirectReference) {
  const auto& p = GetParam();
  const ConvProblem prob = make_problem(p.s, 41);
  const Tensor4<float> expect = conv2d_ref(prob.input, prob.weights, p.s);
  SimGpu gpu(MachineSpec::v100());
  Tensor4<float> out(p.s.batch, p.s.cout, p.s.hout(), p.s.wout());
  winograd_phased_sim(gpu, prob.input, prob.weights, p.s, p.e, out);
  EXPECT_TRUE(allclose(expect, out, 1e-3, 1e-3))
      << p.s.to_string() << " e=" << p.e;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WinogradPhasedCorrectness,
    ::testing::Values(WinoRefCase{shape(1, 1, 6, 1, 3, 0), 2},
                      WinoRefCase{shape(1, 3, 8, 4, 3, 1), 2},
                      WinoRefCase{shape(1, 2, 9, 3, 3, 1), 2},
                      WinoRefCase{shape(2, 2, 8, 2, 3, 1), 2},
                      WinoRefCase{shape(1, 2, 9, 2, 3, 0), 4}));

TEST(WinogradFused, OutputsStoredExactlyOnce) {
  const ConvShape s = shape(1, 4, 16, 4, 3, 1);
  const ConvProblem prob = make_problem(s, 3);
  SimGpu gpu(MachineSpec::v100());
  Tensor4<float> out(s.batch, s.cout, s.hout(), s.wout());
  const auto stats = winograd_fused_sim(gpu, prob.input, prob.weights, s, 2,
                                        wcfg(8, 8, 4), out);
  EXPECT_EQ(stats.bytes_stored,
            static_cast<std::uint64_t>(s.output_elems() * 4));
}

TEST(WinogradFused, LessIoThanPhased) {
  const ConvShape s = shape(1, 32, 28, 32, 3, 1);
  const ConvProblem prob = make_problem(s, 17);
  SimGpu gpu(MachineSpec::gtx1080ti());
  Tensor4<float> out(s.batch, s.cout, s.hout(), s.wout());
  const ConvConfig c = default_winograd_config(s, 2, gpu.spec());
  const auto fused =
      winograd_fused_sim(gpu, prob.input, prob.weights, s, 2, c, out);
  const auto phased =
      winograd_phased_sim(gpu, prob.input, prob.weights, s, 2, out);
  EXPECT_LT(fused.bytes_total(), phased.bytes_total());
}

TEST(WinogradFused, FewerFlopsThanDirectForThreeByThree) {
  // The whole point of Winograd: fewer multiplications. Compare counted
  // flops of fused winograd vs the direct tiled kernel on the same shape.
  const ConvShape s = shape(1, 16, 24, 16, 3, 1);
  const ConvProblem prob = make_problem(s, 19);
  SimGpu gpu(MachineSpec::v100());
  Tensor4<float> out(s.batch, s.cout, s.hout(), s.wout());
  const auto wino = winograd_fused_sim(gpu, prob.input, prob.weights, s, 4,
                                       wcfg(8, 8, 8), out);
  const auto direct = direct_tiled_sim(gpu, prob.input, prob.weights, s,
                                       wcfg(8, 8, 8), out);
  // Element-wise stage flops scale as (a/e)^2 = 2.25 vs 9 MACs per output;
  // transforms add overhead, so just require a strict win.
  EXPECT_LT(wino.flops, direct.flops);
}

TEST(WinogradFused, SmemBudgetEnforced) {
  const ConvShape s = shape(1, 8, 16, 8, 3, 1);
  const ConvProblem prob = make_problem(s, 3);
  SimGpu gpu(MachineSpec::v100());
  Tensor4<float> out(s.batch, s.cout, s.hout(), s.wout());
  ConvConfig c = wcfg(16, 16, 8);
  c.smem_budget = 2048;
  EXPECT_THROW(
      winograd_fused_sim(gpu, prob.input, prob.weights, s, 2, c, out), Error);
}

}  // namespace
}  // namespace convbound
