#include <gtest/gtest.h>

#include "convbound/conv/reference.hpp"
#include "convbound/nets/inference.hpp"
#include "convbound/plan/executor.hpp"
#include "convbound/plan/planner.hpp"
#include "convbound/plan/workspace.hpp"
#include "convbound/util/rng.hpp"

namespace convbound {
namespace {

ConvShape shape(std::int64_t cin, std::int64_t hw, std::int64_t cout,
                std::int64_t k, std::int64_t stride, std::int64_t pad,
                std::int64_t groups = 1) {
  ConvShape s;
  s.cin = cin;
  s.hin = s.win = hw;
  s.cout = cout;
  s.kh = s.kw = k;
  s.stride = stride;
  s.pad = pad;
  s.groups = groups;
  s.validate();
  return s;
}

// ------------------------------------------------- capability query ------

TEST(Eligibility, CentralizedInAlgorithmSupports) {
  // Grouped: no Winograd, no im2col; direct paths stay.
  const ConvShape grouped = shape(8, 10, 8, 3, 1, 1, 4);
  EXPECT_FALSE(algorithm_supports(ConvAlgorithm::kWinogradFused, grouped));
  EXPECT_FALSE(algorithm_supports(ConvAlgorithm::kIm2col, grouped));
  EXPECT_TRUE(algorithm_supports(ConvAlgorithm::kDirectTiled, grouped));
  EXPECT_TRUE(algorithm_supports(ConvAlgorithm::kDirectNaive, grouped));

  // Strided: no Winograd.
  EXPECT_FALSE(algorithm_supports(ConvAlgorithm::kWinogradFused,
                                  shape(4, 10, 4, 3, 2, 1)));
  // 5x5 stride 1 is Winograd-eligible (F(2..4, 5) transforms exist).
  EXPECT_TRUE(algorithm_supports(ConvAlgorithm::kWinogradFused,
                                 shape(4, 12, 4, 5, 1, 2)));
  // 1x1 and over-large kernels are not (no useful F(e, r) transform).
  EXPECT_FALSE(algorithm_supports(ConvAlgorithm::kWinogradFused,
                                  shape(4, 10, 4, 1, 1, 0)));
  EXPECT_FALSE(algorithm_supports(ConvAlgorithm::kWinogradFused,
                                  shape(4, 20, 4, 9, 1, 4)));
  // Non-square kernel: no Winograd.
  ConvShape rect = shape(4, 12, 4, 3, 1, 1);
  rect.kw = 5;
  rect.pad = 0;
  rect.validate();
  EXPECT_FALSE(algorithm_supports(ConvAlgorithm::kWinogradFused, rect));
}

TEST(Eligibility, PlannerEnumeratesBySet) {
  const ConvShape s = shape(8, 12, 8, 3, 1, 1);
  const auto ours =
      Planner::eligible_algorithms(CandidateSet::kOurs, s);
  EXPECT_EQ(ours.size(), 2u);  // tiled direct + fused Winograd
  const auto base =
      Planner::eligible_algorithms(CandidateSet::kBaseline, s);
  EXPECT_EQ(base.size(), 3u);  // naive, im2col, phased

  const ConvShape dw = shape(8, 12, 8, 3, 1, 1, 8);  // depthwise
  EXPECT_EQ(Planner::eligible_algorithms(CandidateSet::kOurs, dw).size(),
            1u);
  EXPECT_EQ(Planner::eligible_algorithms(CandidateSet::kBaseline, dw).size(),
            1u);
}

// -------------------------------------------------------- fuzz plans -----

// Randomized shapes (grouped, strided, non-square kernels and images):
// every plan the planner emits must execute and match the reference
// convolution, for both candidate sets.
TEST(Planner, FuzzPlansExecuteAndMatchReference) {
  Rng rng(20260727);
  SimGpu gpu(MachineSpec::v100());
  Planner planner;
  Workspace ws;
  ConvExecutor exec(ws);

  for (int trial = 0; trial < 24; ++trial) {
    ConvShape s;
    s.batch = rng.range(1, 2);
    s.cin = rng.range(1, 8);
    s.cout = rng.range(1, 8);
    s.hin = rng.range(6, 18);
    s.win = rng.range(6, 18);  // non-square images
    const std::int64_t kernels[] = {1, 2, 3, 5};
    s.kh = kernels[rng.below(4)];
    s.kw = rng.below(4) == 0 ? kernels[rng.below(4)] : s.kh;  // non-square
    s.stride = rng.range(1, 2);
    s.pad = rng.below(2) == 0 ? 0 : std::min(s.kh, s.kw) / 2;
    if (rng.below(3) == 0) {  // grouped / depthwise
      const std::int64_t g = rng.below(2) == 0 ? 2 : 4;
      s.cin = ((s.cin + g - 1) / g) * g;
      s.cout = ((s.cout + g - 1) / g) * g;
      s.groups = g;
    }
    s.hin = std::max(s.hin, s.kh - 2 * s.pad);
    s.win = std::max(s.win, s.kw - 2 * s.pad);
    ASSERT_NO_THROW(s.validate()) << s.to_string();

    const ConvProblem p = make_problem(s, 1000 + trial);
    const Tensor4<float> expect = conv2d_ref(p.input, p.weights, s);
    for (CandidateSet set : {CandidateSet::kOurs, CandidateSet::kBaseline}) {
      PlannerOptions opts;
      opts.candidates = set;
      opts.mode = PlanMode::kMeasured;
      const ConvPlan plan = planner.plan(gpu, s, opts);
      EXPECT_GT(plan.lower_bound_elems, 0) << plan.to_string();
      ConvExecutor::Execution ex =
          exec.execute(gpu, plan, p.input, p.weights);
      EXPECT_GT(ex.stats.sim_time, 0);
      EXPECT_TRUE(allclose(expect, ex.output.tensor(), 1e-3, 1e-3))
          << s.to_string() << " via " << plan.to_string() << " maxdiff="
          << max_abs_diff(expect, ex.output.tensor());
    }
  }
}

// ----------------------------------------------------- tune-cache path ---

TEST(Planner, WarmTuneCacheChangesPlanConfig) {
  SimGpu gpu(MachineSpec::v100());
  // Strided shape: only the tiled direct dataflow competes, so the plan's
  // config is exactly the tuned config.
  const ConvShape s = shape(8, 14, 16, 3, 2, 1);

  PlannerOptions opts;
  opts.mode = PlanMode::kTuned;
  opts.tune_budget = 8;
  opts.seed = 5;

  TuneCache cache;
  Planner cold_planner(&cache);
  const ConvPlan cold = cold_planner.plan(gpu, s, opts);
  EXPECT_TRUE(cold.tuned);
  // The autotuned result landed in the cache.
  const std::string key = TuneCache::make_key(gpu.spec(), s, false, 2);
  ASSERT_TRUE(cache.get(key).has_value());
  EXPECT_EQ(cache.get(key)->config, cold.config);

  // Warm the cache with a different (valid) configuration; a fresh planner
  // must emit it instead of re-tuning.
  ConvConfig custom;
  custom.x = custom.y = custom.z = 1;
  ASSERT_NE(custom, cold.config);
  cache.put(key, {custom, /*gflops=*/1e9}, /*force=*/true);
  Planner warm_planner(&cache);
  const ConvPlan warm = warm_planner.plan(gpu, s, opts);
  EXPECT_TRUE(warm.tuned);
  EXPECT_EQ(warm.config, custom);
}

TEST(Planner, MemoisesPlans) {
  SimGpu gpu(MachineSpec::v100());
  Planner planner;
  const ConvShape s = shape(4, 10, 4, 3, 1, 1);
  PlannerOptions opts;
  (void)planner.plan(gpu, s, opts);
  const std::size_t n = planner.plans_memoised();
  EXPECT_EQ(n, 1u);
  (void)planner.plan(gpu, s, opts);
  EXPECT_EQ(planner.plans_memoised(), n);  // hit, not a new entry
}

// ------------------------------------------------------- workspace -------

TEST(Workspace, PoolsByGeometryAndCountsReuse) {
  Workspace ws;
  {
    Workspace::Lease a = ws.acquire(1, 2, 3, 4);
    Workspace::Lease b = ws.acquire(1, 2, 3, 4);  // simultaneous -> 2nd slot
    EXPECT_EQ(ws.buffers(), 2u);
    EXPECT_EQ(ws.reuses(), 0u);
  }
  {
    Workspace::Lease c = ws.acquire(1, 2, 3, 4);  // pooled
    EXPECT_EQ(ws.buffers(), 2u);
    EXPECT_EQ(ws.reuses(), 1u);
    Workspace::Lease d = ws.acquire(2, 2, 3, 4);  // new geometry
    EXPECT_EQ(ws.buffers(), 3u);
  }
  EXPECT_EQ(ws.acquires(), 4u);
  EXPECT_GT(ws.bytes_reserved(), 0u);
  ws.clear();
  EXPECT_EQ(ws.buffers(), 0u);
}

// The acceptance property of the executor/workspace split: a second
// inference pass over the same model performs zero output/scratch
// allocations — every lease is served from the warm arena, and plans are
// not re-planned or re-tuned.
TEST(Workspace, SecondInferencePassAllocatesNothing) {
  SimGpu gpu(MachineSpec::v100());
  std::vector<ConvLayer> layers;
  layers.push_back({"l1", shape(4, 12, 8, 3, 1, 1)});
  layers.push_back({"l2", shape(8, 12, 8, 3, 2, 1)});

  InferenceSession session;
  const ModelReport first = run_model(gpu, "tiny", layers,
                                      ModelStrategy::kOursTuned, session,
                                      /*tune_budget=*/8);
  const std::size_t warm_buffers = session.workspace().buffers();
  const std::size_t warm_plans = session.planner().plans_memoised();
  EXPECT_GT(warm_buffers, 0u);
  EXPECT_EQ(warm_plans, layers.size());

  const ModelReport second = run_model(gpu, "tiny", layers,
                                       ModelStrategy::kOursTuned, session,
                                       /*tune_budget=*/8);
  EXPECT_EQ(session.workspace().buffers(), warm_buffers);   // zero allocs
  EXPECT_EQ(session.planner().plans_memoised(), warm_plans);  // plan-once
  EXPECT_GE(session.workspace().reuses(), layers.size());
  EXPECT_DOUBLE_EQ(first.total_seconds, second.total_seconds);

  // The chosen plan is recorded per layer.
  for (const auto& l : second.layers) {
    EXPECT_EQ(l.plan.shape, l.shape);
    EXPECT_TRUE(l.plan.tuned);
    EXPECT_FALSE(l.algorithm.empty());
  }
}

// ---------------------------------------------------------- executor -----

TEST(Executor, ExecuteIntoMatchesLeasedExecution) {
  SimGpu gpu(MachineSpec::v100());
  const ConvShape s = shape(4, 11, 6, 3, 1, 1);
  Planner planner;
  const ConvPlan plan = planner.plan(gpu, s, PlannerOptions{});
  const ConvProblem p = make_problem(s, 9);

  Workspace ws;
  ConvExecutor exec(ws);
  ConvExecutor::Execution ex = exec.execute(gpu, plan, p.input, p.weights);

  Tensor4<float> out(s.batch, s.cout, s.hout(), s.wout());
  const LaunchStats stats =
      exec.execute_into(gpu, plan, p.input, p.weights, out);
  EXPECT_DOUBLE_EQ(stats.sim_time, ex.stats.sim_time);
  EXPECT_TRUE(allclose(out, ex.output.tensor(), 0, 0));

  Tensor4<float> wrong(s.batch, s.cout + 1, s.hout(), s.wout());
  EXPECT_THROW(exec.execute_into(gpu, plan, p.input, p.weights, wrong),
               Error);
}

}  // namespace
}  // namespace convbound
