// Compile-only proof that the thread-safety annotations are load-bearing.
//
// This TU is never linked into anything. CMake compiles it twice via
// try_compile when CONVBOUND_THREAD_SAFETY=ON under clang:
//
//   1. as-is                          -> must COMPILE (the annotated queue
//                                        is warning-clean under
//                                        -Werror=thread-safety)
//   2. -DCONVBOUND_TSA_STRIP_REQUIRES -> must FAIL: the macro hook in
//                                        thread_annotations.hpp erases every
//                                        CB_REQUIRES, so RequestQueue's
//                                        *_locked helpers no longer declare
//                                        they need mu_ — and their bodies,
//                                        which touch mu_-guarded members,
//                                        trip -Wthread-safety.
//
// If a refactor ever neuters the analysis (no-op macros under clang, a
// dropped -Wthread-safety flag, un-annotated members), case 2 starts
// compiling and the configure step aborts — the annotations cannot rot
// silently.
//
// RequestQueue is the subject because it is the most annotation-dense type:
// guarded members, CB_REQUIRES helpers, and a CB_EXCLUDES notifier.
#include "queue.cpp"  // src/serve/src, on the include path for this TU only
