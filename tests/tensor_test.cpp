#include <gtest/gtest.h>

#include "convbound/tensor/conv_shape.hpp"
#include "convbound/tensor/layout.hpp"
#include "convbound/tensor/tensor.hpp"

namespace convbound {
namespace {

TEST(Layout, Names) {
  EXPECT_EQ(to_string(Layout::kNCHW), "NCHW");
  EXPECT_EQ(layout_from_string("nhwc"), Layout::kNHWC);
  EXPECT_EQ(layout_from_string("CWH"), Layout::kNCWH);
  EXPECT_THROW(layout_from_string("bogus"), Error);
}

TEST(Layout, StridesNCHW) {
  const auto s = make_strides(Layout::kNCHW, 2, 3, 4, 5);
  EXPECT_EQ(s.w, 1);
  EXPECT_EQ(s.h, 5);
  EXPECT_EQ(s.c, 20);
  EXPECT_EQ(s.n, 60);
}

TEST(Layout, StridesNHWC) {
  const auto s = make_strides(Layout::kNHWC, 2, 3, 4, 5);
  EXPECT_EQ(s.c, 1);
  EXPECT_EQ(s.w, 3);
  EXPECT_EQ(s.h, 15);
  EXPECT_EQ(s.n, 60);
}

TEST(Layout, StridesNCWH) {
  const auto s = make_strides(Layout::kNCWH, 1, 2, 3, 4);
  EXPECT_EQ(s.h, 1);
  EXPECT_EQ(s.w, 3);
  EXPECT_EQ(s.c, 12);
}

class LayoutRoundTrip : public ::testing::TestWithParam<Layout> {};

TEST_P(LayoutRoundTrip, ValuesSurviveLayoutConversion) {
  Rng rng(11);
  Tensor4<float> t(2, 3, 5, 7, Layout::kNCHW);
  t.fill_random(rng);
  const Tensor4<float> u = t.to_layout(GetParam());
  EXPECT_EQ(u.layout(), GetParam());
  for (std::int64_t n = 0; n < 2; ++n)
    for (std::int64_t c = 0; c < 3; ++c)
      for (std::int64_t h = 0; h < 5; ++h)
        for (std::int64_t w = 0; w < 7; ++w)
          ASSERT_EQ(t(n, c, h, w), u(n, c, h, w));
}

INSTANTIATE_TEST_SUITE_P(AllLayouts, LayoutRoundTrip,
                         ::testing::Values(Layout::kNCHW, Layout::kNCWH,
                                           Layout::kNHWC));

TEST(Tensor, IndexingIsDense) {
  Tensor4<float> t(2, 2, 2, 2);
  float v = 0;
  for (std::int64_t n = 0; n < 2; ++n)
    for (std::int64_t c = 0; c < 2; ++c)
      for (std::int64_t h = 0; h < 2; ++h)
        for (std::int64_t w = 0; w < 2; ++w) t(n, c, h, w) = v++;
  // NCHW: last dim fastest.
  EXPECT_EQ(t.data()[0], 0.0f);
  EXPECT_EQ(t.data()[1], 1.0f);
  EXPECT_EQ(t.data()[15], 15.0f);
}

TEST(Tensor, FillAndCompare) {
  Tensor4<float> a(1, 2, 3, 4), b(1, 2, 3, 4);
  a.fill(1.5f);
  b.fill(1.5f);
  EXPECT_TRUE(allclose(a, b));
  EXPECT_EQ(max_abs_diff(a, b), 0.0);
  b(0, 1, 2, 3) = 2.0f;
  EXPECT_FALSE(allclose(a, b));
  EXPECT_NEAR(max_abs_diff(a, b), 0.5, 1e-7);
}

TEST(Tensor, SizeBytes) {
  Tensor4<float> t(2, 3, 4, 5);
  EXPECT_EQ(t.size(), 120);
  EXPECT_EQ(t.size_bytes(), 480u);
}

TEST(ConvShape, OutputDims) {
  ConvShape s;
  s.hin = s.win = 224;
  s.kh = s.kw = 3;
  s.stride = 1;
  s.pad = 1;
  EXPECT_EQ(s.hout(), 224);
  s.stride = 2;
  EXPECT_EQ(s.hout(), 112);
  s.pad = 0;
  EXPECT_EQ(s.hout(), 111);
}

TEST(ConvShape, Flops) {
  ConvShape s;
  s.batch = 2;
  s.cin = 3;
  s.hin = s.win = 5;
  s.cout = 4;
  s.kh = s.kw = 3;
  // hout = wout = 3; flops = 2*2*4*3*3*3*9.
  EXPECT_EQ(s.flops(), 2 * 2 * 4 * 3 * 3 * 3 * 9);
}

TEST(ConvShape, ReuseMatchesEquation13) {
  ConvShape s;
  s.kh = s.kw = 3;
  s.stride = 1;
  EXPECT_DOUBLE_EQ(s.reuse(), 9.0);
  s.stride = 2;
  EXPECT_DOUBLE_EQ(s.reuse(), 2.25);
}

TEST(ConvShape, ValidateRejectsBadKernels) {
  ConvShape s;
  s.hin = s.win = 2;
  s.kh = s.kw = 5;
  EXPECT_THROW(s.validate(), Error);
}

}  // namespace
}  // namespace convbound
