#include <gtest/gtest.h>

#include "convbound/conv/direct.hpp"
#include "convbound/conv/reference.hpp"
#include "convbound/fft/fft.hpp"
#include "convbound/fft/fft_conv.hpp"
#include "convbound/pebble/game.hpp"
#include "convbound/pebble/generators.hpp"

namespace convbound {
namespace {

TEST(Fft, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1);
  EXPECT_EQ(next_pow2(2), 2);
  EXPECT_EQ(next_pow2(3), 4);
  EXPECT_EQ(next_pow2(1023), 1024);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<Complex> v(6);
  EXPECT_THROW(fft_inplace(v), Error);
}

TEST(Fft, RoundTripIsIdentity) {
  Rng rng(1);
  std::vector<Complex> v(64), orig;
  for (auto& x : v) x = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
  orig = v;
  fft_inplace(v);
  ifft_inplace(v);
  for (std::size_t i = 0; i < v.size(); ++i)
    EXPECT_NEAR(std::abs(v[i] - orig[i]), 0.0, 1e-10);
}

TEST(Fft, DeltaTransformsToOnes) {
  std::vector<Complex> v(16, Complex{});
  v[0] = 1.0;
  fft_inplace(v);
  for (const auto& x : v) {
    EXPECT_NEAR(x.real(), 1.0, 1e-12);
    EXPECT_NEAR(x.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, ParsevalHolds) {
  Rng rng(3);
  std::vector<Complex> v(128);
  double time_energy = 0;
  for (auto& x : v) {
    x = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
    time_energy += std::norm(x);
  }
  fft_inplace(v);
  double freq_energy = 0;
  for (const auto& x : v) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy, time_energy * 128.0, 1e-8 * freq_energy);
}

TEST(Fft, LinearConvolutionMatchesNaive) {
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    const std::size_t na = 3 + rng.below(12), nb = 2 + rng.below(9);
    std::vector<double> a(na), b(nb);
    for (auto& x : a) x = rng.uniform(-1, 1);
    for (auto& x : b) x = rng.uniform(-1, 1);
    const auto got = fft_linear_convolve(a, b);
    ASSERT_EQ(got.size(), na + nb - 1);
    for (std::size_t n = 0; n < got.size(); ++n) {
      double want = 0;
      for (std::size_t i = 0; i < na; ++i) {
        if (n >= i && n - i < nb) want += a[i] * b[n - i];
      }
      EXPECT_NEAR(got[n], want, 1e-9) << "trial " << trial << " n " << n;
    }
  }
}

TEST(Fft, TwoDimensionalRoundTrip) {
  Rng rng(7);
  std::vector<Complex> v(16 * 8), orig;
  for (auto& x : v) x = Complex(rng.uniform(-1, 1), 0.0);
  orig = v;
  fft2_inplace(v, 16, 8);
  fft2_inplace(v, 16, 8, /*inverse=*/true);
  for (std::size_t i = 0; i < v.size(); ++i)
    EXPECT_NEAR(std::abs(v[i] / 128.0 - orig[i]), 0.0, 1e-10);
}

TEST(FftBound, GrowsWithNShrinksWithS) {
  EXPECT_GT(fft_lower_bound(1 << 20, 1024), fft_lower_bound(1 << 18, 1024));
  EXPECT_GT(fft_lower_bound(1 << 20, 256), fft_lower_bound(1 << 20, 4096));
}

TEST(FftDag, StructureAndGame) {
  const std::int64_t n = 64;
  const Dag dag = fft_dag(n);
  EXPECT_EQ(dag.num_inputs, static_cast<std::size_t>(n));
  EXPECT_EQ(dag.num_outputs, static_cast<std::size_t>(n));
  // log2(n) stages of n vertices each.
  EXPECT_EQ(dag.num_vertices(), static_cast<std::size_t>(n + n * 6));
  const GameResult r = play_pebble_game(dag, 16);
  EXPECT_GE(static_cast<double>(r.total()), fft_lower_bound(n, 16.0));
}

TEST(FftDag, MoreMemoryHelpsButterflies) {
  const Dag dag = fft_dag(256);
  const auto small = play_pebble_game(dag, 8);
  const auto large = play_pebble_game(dag, 128);
  EXPECT_LT(large.total(), small.total());
}

// --------------------------------------------------------------- fft conv --

struct FftConvCase {
  ConvShape s;
  std::int64_t tile;
};

class FftConvCorrectness : public ::testing::TestWithParam<FftConvCase> {};

TEST_P(FftConvCorrectness, MatchesReference) {
  const auto& p = GetParam();
  const ConvProblem prob = make_problem(p.s, 51);
  const Tensor4<float> expect = conv2d_ref(prob.input, prob.weights, p.s);
  SimGpu gpu(MachineSpec::v100());
  Tensor4<float> out(p.s.batch, p.s.cout, p.s.hout(), p.s.wout());
  FftConvConfig cfg;
  cfg.tile = p.tile;
  fft_conv_sim(gpu, prob.input, prob.weights, p.s, out, cfg);
  EXPECT_TRUE(allclose(expect, out, 1e-3, 1e-3))
      << p.s.to_string() << " tile=" << p.tile
      << " maxdiff=" << max_abs_diff(expect, out);
}

ConvShape fshape(std::int64_t b, std::int64_t cin, std::int64_t hw,
                 std::int64_t cout, std::int64_t k, std::int64_t pad) {
  ConvShape s;
  s.batch = b;
  s.cin = cin;
  s.hin = s.win = hw;
  s.cout = cout;
  s.kh = s.kw = k;
  s.stride = 1;
  s.pad = pad;
  return s;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FftConvCorrectness,
    ::testing::Values(FftConvCase{fshape(1, 1, 8, 1, 3, 0), 8},
                      FftConvCase{fshape(1, 3, 12, 4, 3, 1), 16},
                      FftConvCase{fshape(1, 2, 16, 3, 5, 2), 16},
                      FftConvCase{fshape(2, 2, 10, 2, 3, 1), 8},
                      FftConvCase{fshape(1, 4, 20, 4, 7, 3), 32},
                      FftConvCase{fshape(1, 2, 9, 2, 3, 0), 8}));

TEST(FftConv, RequiresStrideOne) {
  ConvShape s = fshape(1, 2, 10, 2, 3, 1);
  s.stride = 2;
  const ConvProblem prob = make_problem(s, 1);
  SimGpu gpu(MachineSpec::v100());
  Tensor4<float> out(s.batch, s.cout, s.hout(), s.wout());
  EXPECT_THROW(fft_conv_sim(gpu, prob.input, prob.weights, s, out), Error);
}

TEST(FftConv, IoEstimateTracksMeasurement) {
  const ConvShape s = fshape(1, 8, 24, 8, 3, 1);
  const ConvProblem prob = make_problem(s, 5);
  SimGpu gpu(MachineSpec::v100());
  Tensor4<float> out(s.batch, s.cout, s.hout(), s.wout());
  const auto stats = fft_conv_sim(gpu, prob.input, prob.weights, s, out);
  const double est = fft_conv_io_estimate(s, 32) * sizeof(float);
  const double ratio = static_cast<double>(stats.bytes_total()) / est;
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST(FftConv, LargeKernelBeatsDirectOnFlops) {
  // FFT convolution's raison d'etre: flops nearly independent of kernel
  // size. With an 11x11 kernel it needs fewer flops than direct
  // accumulation.
  const ConvShape s = fshape(1, 8, 32, 8, 11, 5);
  const ConvProblem prob = make_problem(s, 5);
  SimGpu gpu(MachineSpec::v100());
  Tensor4<float> out(s.batch, s.cout, s.hout(), s.wout());
  const auto fft = fft_conv_sim(gpu, prob.input, prob.weights, s, out);
  ConvConfig cfg;
  cfg.x = cfg.y = 8;
  cfg.z = 8;
  const auto direct = direct_tiled_sim(gpu, prob.input, prob.weights, s, cfg,
                                       out);
  EXPECT_LT(fft.flops, direct.flops);
}

}  // namespace
}  // namespace convbound
