// The stepwise Tuner API's resumability contract: a search that is
// checkpointed at any round boundary, killed, and resumed in a fresh
// process (fresh tuner object, fresh measurer) must reproduce the
// uninterrupted run's trace bit-identically — same configs, same seconds,
// same incumbents — for every registered strategy. Also pins the registry
// (names, aliases, option plumbing) and the checkpoint file framing
// (key/domain validation, atomic save, round trip).
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

#include "convbound/conv/algorithms.hpp"
#include "convbound/tune/batch_measure.hpp"
#include "convbound/tune/cache.hpp"
#include "convbound/tune/engine.hpp"
#include "convbound/tune/registry.hpp"

namespace convbound {
namespace {

ConvShape small_shape() {
  ConvShape s;
  s.cin = 16;
  s.hin = s.win = 16;
  s.cout = 16;
  s.kh = s.kw = 3;
  s.stride = 1;
  s.pad = 1;
  return s;
}

// Bit-exact trace comparison: configs, per-trial seconds and incumbents.
void expect_identical(const TuneResult& a, const TuneResult& b,
                      const std::string& what) {
  ASSERT_EQ(a.history.size(), b.history.size()) << what;
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_TRUE(a.history[i].config == b.history[i].config)
        << what << " trial " << i;
    EXPECT_EQ(a.history[i].seconds, b.history[i].seconds)
        << what << " trial " << i;
    EXPECT_EQ(a.history[i].best_seconds, b.history[i].best_seconds)
        << what << " trial " << i;
  }
  EXPECT_EQ(a.best_seconds, b.best_seconds) << what;
  EXPECT_TRUE(a.best == b.best) << what;
}

TunerOptions options_for(const SearchDomain& domain) {
  TunerOptions opts;
  opts.seed = 11;
  opts.seeds.push_back(default_tiled_config(domain.shape(), domain.spec()));
  return opts;
}

class CheckpointResume : public ::testing::TestWithParam<std::string> {};

// Run K trials, checkpoint, "kill" (throw everything away), restore into a
// brand-new tuner + measurer, resume to the full budget: the combined trace
// must equal the uninterrupted run for several kill points, including ones
// inside each strategy's warm-up/init phases.
TEST_P(CheckpointResume, ResumedTraceIsBitIdentical) {
  constexpr int kBudget = 40;
  SimGpu gpu(MachineSpec::v100());
  const auto domain = SearchDomain::build(small_shape(), gpu.spec());
  const TunerOptions opts = options_for(domain);

  BatchMeasurer m_full(gpu.spec(), domain, /*seed=*/5);
  auto uninterrupted = make_tuner(GetParam(), opts);
  const TuneResult full = uninterrupted->run(m_full, kBudget);
  ASSERT_EQ(static_cast<int>(full.history.size()), kBudget) << GetParam();

  for (const int kill_at : {1, 9, 21}) {
    BatchMeasurer m_a(gpu.spec(), domain, /*seed=*/5);
    auto first = make_tuner(GetParam(), opts);
    first->reset(domain);
    while (first->trials() < kill_at && first->step(m_a, kBudget)) {
    }
    const std::string snapshot = first->save_state();
    const int saved_trials = first->trials();
    first.reset();  // the "kill"

    BatchMeasurer m_b(gpu.spec(), domain, /*seed=*/5);
    auto second = make_tuner(GetParam(), opts);
    second->load_state(domain, snapshot);
    EXPECT_EQ(second->trials(), saved_trials);
    const TuneResult resumed = second->resume(m_b, kBudget);
    expect_identical(full, resumed,
                     GetParam() + " killed at " + std::to_string(kill_at));
  }
}

// A checkpoint of a finished run restores to a tuner that proposes nothing
// more at the same budget (and its result round-trips exactly).
TEST_P(CheckpointResume, FinishedStateRoundTrips) {
  constexpr int kBudget = 24;
  SimGpu gpu(MachineSpec::v100());
  const auto domain = SearchDomain::build(small_shape(), gpu.spec());
  const TunerOptions opts = options_for(domain);

  BatchMeasurer m(gpu.spec(), domain, /*seed=*/5);
  auto tuner = make_tuner(GetParam(), opts);
  const TuneResult full = tuner->run(m, kBudget);

  auto restored = make_tuner(GetParam(), opts);
  restored->load_state(domain, tuner->save_state());
  BatchMeasurer m2(gpu.spec(), domain, /*seed=*/5);
  const TuneResult again = restored->resume(m2, kBudget);
  expect_identical(full, again, GetParam() + " finished round trip");
}

INSTANTIATE_TEST_SUITE_P(AllTuners, CheckpointResume,
                         ::testing::Values("random", "sa", "ga", "ate",
                                           "bnb"));

TEST(TunerRegistry, CanonicalNamesAndAliases) {
  for (const std::string& name : tuner_names()) {
    EXPECT_EQ(make_tuner(name)->id(), name);
  }
  EXPECT_EQ(make_tuner("simulated-annealing")->id(), "sa");
  EXPECT_EQ(make_tuner("genetic")->id(), "ga");
  EXPECT_EQ(make_tuner("ate(ours)")->id(), "ate");
  EXPECT_EQ(make_tuner("branch-and-bound")->id(), "bnb");
  EXPECT_THROW(make_tuner("gradient-descent"), Error);
}

TEST(TunerState, RejectsForeignTunerState) {
  SimGpu gpu(MachineSpec::v100());
  const auto domain = SearchDomain::build(small_shape(), gpu.spec());
  BatchMeasurer m(gpu.spec(), domain, /*seed=*/5);
  auto random = make_tuner("random");
  random->run(m, 8);
  auto sa = make_tuner("sa");
  EXPECT_THROW(sa->load_state(domain, random->save_state()), Error);
}

TEST(CheckpointFile, RoundTripAndDomainValidation) {
  constexpr int kBudget = 32;
  SimGpu gpu(MachineSpec::v100());
  const auto domain = SearchDomain::build(small_shape(), gpu.spec());
  const std::string key =
      TuneCache::make_key(gpu.spec(), small_shape(), false, 2);
  const TunerOptions opts = options_for(domain);

  BatchMeasurer m(gpu.spec(), domain, /*seed=*/5);
  auto tuner = make_tuner("ate", opts);
  tuner->reset(domain);
  while (tuner->trials() < 16 && tuner->step(m, kBudget)) {
  }

  const std::string path =
      ::testing::TempDir() + "/convbound_checkpoint_test.txt";
  save_checkpoint_file(path, *tuner, key, domain.size());

  // Resume from disk: the tail of the trace matches the uninterrupted run.
  BatchMeasurer m_full(gpu.spec(), domain, /*seed=*/5);
  auto uninterrupted = make_tuner("ate", opts);
  const TuneResult full = uninterrupted->run(m_full, kBudget);

  BatchMeasurer m2(gpu.spec(), domain, /*seed=*/5);
  auto restored = load_checkpoint_file(path, domain, key, opts);
  EXPECT_EQ(restored->id(), "ate");
  const TuneResult resumed = restored->resume(m2, kBudget);
  expect_identical(full, resumed, "checkpoint file round trip");

  // Wrong problem key: refuses to replay a foreign trace.
  EXPECT_THROW(load_checkpoint_file(path, domain, key + "-other", opts),
               Error);
  // Same key but different domain (unpruned => different config count).
  DomainOptions unpruned;
  unpruned.prune_with_optimality = false;
  const auto other =
      SearchDomain::build(small_shape(), gpu.spec(), unpruned);
  ASSERT_NE(other.size(), domain.size());
  EXPECT_THROW(load_checkpoint_file(path, other, key, opts), Error);
  // Garbage file: loud parse failure, not silent state.
  EXPECT_THROW(load_checkpoint(std::string("not a checkpoint\n"), domain,
                               key, opts),
               Error);
  std::remove(path.c_str());
}

// The engine-level plumbing: autotune_conv with checkpoint + resume
// continues to the same final result as one uninterrupted engine run.
TEST(EngineCheckpoint, AutotuneResumeMatchesUninterrupted) {
  SimGpu gpu(MachineSpec::v100());
  const ConvShape s = small_shape();

  AutotuneOptions base;
  base.budget = 32;
  base.seed = 3;
  base.tuner = "bnb";
  const AutotuneOutcome full = autotune_conv(gpu, s, base);

  const std::string path =
      ::testing::TempDir() + "/convbound_engine_checkpoint_test.txt";
  AutotuneOptions half = base;
  half.budget = 12;
  half.checkpoint = path;
  const AutotuneOutcome partial = autotune_conv(gpu, s, half);
  ASSERT_GE(static_cast<int>(partial.result.history.size()), 12);

  AutotuneOptions rest = base;
  rest.checkpoint = path;
  rest.resume = true;
  const AutotuneOutcome resumed = autotune_conv(gpu, s, rest);
  EXPECT_GT(resumed.resumed_from_trials, 0);
  expect_identical(full.result, resumed.result, "engine checkpoint resume");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace convbound
