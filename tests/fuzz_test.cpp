// Property-based tests: randomised problem shapes and configurations are
// checked against the reference oracle and the theory's invariants. Seeds
// are fixed, so failures replay deterministically.
#include <gtest/gtest.h>

#include "convbound/bounds/conv_bounds.hpp"
#include "convbound/conv/algorithms.hpp"
#include "convbound/conv/reference.hpp"
#include "convbound/pebble/game.hpp"
#include "convbound/pebble/generators.hpp"
#include "convbound/tune/domain.hpp"

namespace convbound {
namespace {

ConvShape random_shape(Rng& rng, bool stride_one = false) {
  ConvShape s;
  s.batch = rng.range(1, 2);
  s.cin = rng.range(1, 12);
  s.cout = rng.range(1, 12);
  s.kh = s.kw = rng.range(1, 5);
  s.stride = stride_one ? 1 : rng.range(1, 3);
  s.pad = rng.range(0, s.kh - 1);
  // Input large enough for at least one output.
  const std::int64_t min_in = s.kh + s.stride * 2 - 2 * s.pad;
  s.hin = s.win = std::max<std::int64_t>(min_in, rng.range(5, 18));
  s.validate();
  return s;
}

ConvConfig random_config(Rng& rng, const ConvShape& s) {
  ConvConfig c;
  c.x = rng.range(1, std::min<std::int64_t>(12, s.hout()));
  c.y = rng.range(1, std::min<std::int64_t>(12, s.wout()));
  c.z = rng.range(1, s.cout);
  c.nxt = 1 + static_cast<int>(rng.below(3));
  c.nyt = 1 + static_cast<int>(rng.below(3));
  c.nzt = 1;
  c.layout = kAllLayouts[rng.below(kAllLayouts.size())];
  return c;
}

class DirectTiledFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DirectTiledFuzz, RandomShapeAndTileMatchReference) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const ConvShape s = random_shape(rng);
  const ConvConfig cfg = random_config(rng, s);
  const ConvProblem p = make_problem(s, rng(), cfg.layout);
  const Tensor4<float> expect = conv2d_ref(p.input, p.weights, s);
  SimGpu gpu(MachineSpec::v100());
  Tensor4<float> out(s.batch, s.cout, s.hout(), s.wout());
  const auto stats = direct_tiled_sim(gpu, p.input, p.weights, s, cfg, out);
  EXPECT_TRUE(allclose(expect, out, 1e-3, 1e-3))
      << s.to_string() << " " << cfg.to_string();
  // Invariants: outputs stored exactly once; flops match the shape.
  EXPECT_EQ(stats.bytes_stored,
            static_cast<std::uint64_t>(s.output_elems() * 4));
  EXPECT_EQ(stats.flops, static_cast<std::uint64_t>(s.flops()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirectTiledFuzz, ::testing::Range(0, 24));

class GroupedFuzz : public ::testing::TestWithParam<int> {};

TEST_P(GroupedFuzz, RandomGroupedShapesMatchReference) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 5);
  ConvShape s = random_shape(rng);
  // Pick a group count dividing both channel counts.
  const std::int64_t g = rng.range(1, 4);
  s.cin = s.cin * g;
  s.cout = s.cout * g;
  s.groups = g;
  s.validate();
  const ConvConfig cfg = random_config(rng, s);
  const ConvProblem p = make_problem(s, rng(), cfg.layout);
  const Tensor4<float> expect = conv2d_ref(p.input, p.weights, s);
  SimGpu gpu(MachineSpec::v100());
  Tensor4<float> out(s.batch, s.cout, s.hout(), s.wout());
  direct_tiled_sim(gpu, p.input, p.weights, s, cfg, out);
  EXPECT_TRUE(allclose(expect, out, 1e-3, 1e-3))
      << s.to_string() << " " << cfg.to_string();
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupedFuzz, ::testing::Range(0, 12));

class WinogradFuzz : public ::testing::TestWithParam<int> {};

TEST_P(WinogradFuzz, RandomStrideOneShapesMatchReference) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 3);
  ConvShape s = random_shape(rng, /*stride_one=*/true);
  s.kh = s.kw = rng.range(2, 3);  // r in {2, 3}
  s.pad = rng.range(0, s.kh - 1);
  s.validate();
  const std::int64_t e = rng.range(2, 4);
  const ConvConfig cfg = random_config(rng, s);
  const ConvProblem p = make_problem(s, rng(), cfg.layout);
  const Tensor4<float> expect = conv2d_ref(p.input, p.weights, s);
  SimGpu gpu(MachineSpec::v100());
  Tensor4<float> out(s.batch, s.cout, s.hout(), s.wout());
  winograd_fused_sim(gpu, p.input, p.weights, s, e, cfg, out);
  EXPECT_TRUE(allclose(expect, out, 1e-3, 1e-3))
      << s.to_string() << " e=" << e << " " << cfg.to_string();
}

INSTANTIATE_TEST_SUITE_P(Seeds, WinogradFuzz, ::testing::Range(0, 16));

/// Random layered DAGs: pebble-game invariants must hold regardless of
/// structure.
class PebbleFuzz : public ::testing::TestWithParam<int> {};

Dag random_layered_dag(Rng& rng) {
  DagBuilder b;
  const int layers = static_cast<int>(rng.range(2, 5));
  std::vector<VertexId> prev;
  const int n_inputs = static_cast<int>(rng.range(3, 24));
  for (int i = 0; i < n_inputs; ++i) prev.push_back(b.add_input());
  for (int l = 0; l < layers; ++l) {
    std::vector<VertexId> cur;
    const int width = static_cast<int>(rng.range(2, 20));
    for (int i = 0; i < width; ++i) {
      const VertexId p1 = prev[rng.below(prev.size())];
      const VertexId p2 = prev[rng.below(prev.size())];
      cur.push_back(p1 == p2 ? b.add_vertex({p1})
                             : b.add_vertex({p1, p2}));
    }
    prev = std::move(cur);
  }
  for (VertexId v : prev) b.mark_output(v);
  return b.build();
}

TEST_P(PebbleFuzz, GameInvariantsOnRandomDags) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 65537 + 11);
  const Dag dag = random_layered_dag(rng);
  const std::size_t s_small = dag.max_in_degree + 1 + rng.below(4);
  const std::size_t s_large = dag.num_vertices() + 4;

  for (EvictionPolicy policy :
       {EvictionPolicy::kBelady, EvictionPolicy::kLru}) {
    const GameResult small = play_pebble_game(dag, s_small, policy);
    const GameResult large = play_pebble_game(dag, s_large, policy);
    // Cold traffic floors every run; infinite memory achieves it exactly.
    EXPECT_GE(small.total(), cold_traffic(dag));
    EXPECT_EQ(large.total(), cold_traffic(dag));
    EXPECT_LE(large.total(), small.total());
    // Every output must be written at least once.
    EXPECT_GE(small.stores, dag.num_outputs);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PebbleFuzz, ::testing::Range(0, 16));

/// Domain properties under random shapes.
class DomainFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DomainFuzz, SamplesNeighborsAndPruningInvariants) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u + 1);
  ConvShape s = random_shape(rng);
  s.cout = std::max<std::int64_t>(2, s.cout);
  s.validate();
  const MachineSpec spec = MachineSpec::gtx1080ti();
  const auto pruned =
      SearchDomain::build(s, spec, {.prune_with_optimality = true});
  const auto full =
      SearchDomain::build(s, spec, {.prune_with_optimality = false});
  EXPECT_LE(pruned.size(), full.size());
  if (pruned.size() == 0) return;  // tiny shapes can prune to nothing

  for (int i = 0; i < 8; ++i) {
    const ConvConfig c = pruned.sample(rng);
    EXPECT_TRUE(pruned.contains(c));
    EXPECT_TRUE(full.contains(c));  // pruned subset of full
    for (const auto& n : pruned.neighbors(c)) {
      EXPECT_TRUE(pruned.contains(n));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DomainFuzz, ::testing::Range(0, 10));

/// Bound properties under random shapes: positivity, monotone decrease in
/// S, and validity against an executed kernel.
class BoundFuzz : public ::testing::TestWithParam<int> {};

TEST_P(BoundFuzz, BoundsPositiveMonotoneAndRespected) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 48271 + 9);
  const ConvShape s = random_shape(rng);
  double prev = 1e300;
  for (double S : {512.0, 2048.0, 8192.0}) {
    const double q = direct_conv_lower_bound_leading(s, S);
    EXPECT_GT(q, 0) << s.to_string();
    EXPECT_LT(q, prev);
    prev = q;
  }
  SimGpu gpu(MachineSpec::v100());
  const ConvProblem p = make_problem(s, rng());
  Tensor4<float> out(s.batch, s.cout, s.hout(), s.wout());
  const auto stats = direct_tiled_sim(gpu, p.input, p.weights, s,
                                      default_tiled_config(s, gpu.spec()),
                                      out);
  EXPECT_GE(static_cast<double>(stats.bytes_total()) / 4.0,
            direct_conv_lower_bound(
                s, static_cast<double>(gpu.spec().smem_floats())));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundFuzz, ::testing::Range(0, 12));

}  // namespace
}  // namespace convbound
