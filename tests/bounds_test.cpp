#include <gtest/gtest.h>

#include <cmath>

#include "convbound/bounds/composite.hpp"
#include "convbound/bounds/conv_bounds.hpp"
#include "convbound/bounds/matmul_bounds.hpp"

namespace convbound {
namespace {

ConvShape typical_shape() {
  ConvShape s;
  s.cin = 256;
  s.hin = s.win = 56;
  s.cout = 128;
  s.kh = s.kw = 3;
  s.stride = 1;
  s.pad = 1;
  return s;
}

TEST(Composite, SingleLinearStep) {
  // phi(k) = 2k: T(S) = S + 2S = 3S; Q >= S(|V|/T(2S) - 1).
  std::vector<SubComputation> steps(1);
  steps[0].phi = [](double k) { return 2 * k; };
  steps[0].psi = [](double) { return 0.0; };
  EXPECT_NEAR(composite_T(steps, 100), 300.0, 1e-6);
  const double q = composite_lower_bound(1e6, 100, steps);
  EXPECT_NEAR(q, 100 * (1e6 / 600.0 - 1), 1e-3);
}

TEST(Composite, TwoStepForwarding) {
  // Step 1 forwards psi_1(k) = k vertices into step 2 (phi identity):
  // T(S) = S + max_{k1+k2<=S}(k1 + (k2 + k1)) = S + 2S (k1 = S).
  std::vector<SubComputation> steps(2);
  steps[0].phi = [](double k) { return k; };
  steps[0].psi = [](double k) { return k; };
  steps[1].phi = [](double k) { return k; };
  steps[1].psi = [](double) { return 0.0; };
  EXPECT_NEAR(composite_T(steps, 64), 64 + 128, 1.0);
}

TEST(Composite, MatchesDirectConvClosedForm) {
  const ConvShape s = typical_shape();
  const double S = 4096;
  const auto steps = direct_conv_steps(s, S);
  const double numeric = composite_T(steps, S, 512);
  const double closed = direct_conv_T(s, S);
  // Closed form is the analytic max; numeric grid search must approach it
  // from below and land close.
  EXPECT_LE(numeric, closed * 1.001);
  EXPECT_GE(numeric, closed * 0.95);
}

TEST(Composite, RejectsEmptySteps) {
  std::vector<SubComputation> steps;
  EXPECT_THROW(composite_T(steps, 10), Error);
}

TEST(DirectBound, Lemma48Count) {
  const ConvShape s = typical_shape();
  const double v = direct_conv_dag_vertices(s);
  EXPECT_DOUBLE_EQ(v, (2.0 * 3 * 3 * 256 - 1) * 56 * 56 * 128);
}

TEST(DirectBound, DecreasesWithFastMemory) {
  const ConvShape s = typical_shape();
  double prev = 1e300;
  for (double S : {1024.0, 4096.0, 16384.0}) {
    const double q = direct_conv_lower_bound(s, S);
    EXPECT_LT(q, prev);
    EXPECT_GT(q, 0);
    prev = q;
  }
}

TEST(DirectBound, ScalesLikeInverseSqrtS) {
  const ConvShape s = typical_shape();
  const double q1 = direct_conv_lower_bound_leading(s, 1024);
  const double q4 = direct_conv_lower_bound_leading(s, 4096);
  EXPECT_NEAR(q1 / q4, 2.0, 1e-9);
}

TEST(DirectBound, LeadingTermTracksExactForm) {
  const ConvShape s = typical_shape();
  const double S = 8192;
  const double exact = direct_conv_lower_bound(s, S);
  const double leading = direct_conv_lower_bound_leading(s, S);
  EXPECT_NEAR(exact / leading, 1.0, 0.1);
}

TEST(DirectBound, BatchScalesLinearly) {
  ConvShape s = typical_shape();
  const double q1 = direct_conv_lower_bound_leading(s, 4096);
  s.batch = 4;
  EXPECT_NEAR(direct_conv_lower_bound_leading(s, 4096) / q1, 4.0, 1e-9);
}

TEST(DirectDataflow, Equation20MinimisedAtOptimalityCondition) {
  const ConvShape s = typical_shape();
  const double R = s.reuse();
  const std::int64_t budget = 9 * 49;  // x*y*z budget
  // On the optimality condition: x*y = R*z.
  const double on = direct_dataflow_reads(s, 21, 21, 49);  // 441 = 9*49
  EXPECT_NEAR(static_cast<double>(21 * 21), R * 49, 1e-9);
  // Off-condition tiles with the same budget must read more.
  const double off1 = direct_dataflow_reads(s, 7, 7, budget / 49 * 9);
  const double off2 = direct_dataflow_reads(s, 63, 63, 1);
  EXPECT_LT(on, off1);
  EXPECT_LT(on, off2);
}

TEST(DirectDataflow, TotalIoAboveLowerBound) {
  const ConvShape s = typical_shape();
  const double S = 24 * 1024;  // elements
  EXPECT_GE(direct_dataflow_io(s, S, 1), direct_conv_lower_bound(s, S));
}

TEST(DirectDataflow, NearOptimalSequential) {
  // Q_DC / Q_lower = O(1) when N_p = 1 (the Section 5.2 optimality claim).
  const ConvShape s = typical_shape();
  const double S = 24 * 1024;
  const double ratio =
      direct_dataflow_io(s, S, 1) / direct_conv_lower_bound(s, S);
  EXPECT_LT(ratio, 16.0);
  EXPECT_GE(ratio, 1.0);
}

TEST(WinogradBound, Lemma414MatchesDagCount) {
  ConvShape s;
  s.cin = 2;
  s.hin = s.win = 7;  // 2x2 tiles of e=2 with r=3 -> hout=4... set below
  s.kh = s.kw = 3;
  s.hin = s.win = 2 * 2 + 3 - 1;  // tiles_h = 2
  const double v = winograd_dag_vertices(s, 2);
  EXPECT_GT(v, 0);
}

TEST(WinogradBound, DecreasesWithFastMemory) {
  const ConvShape s = typical_shape();
  double prev = 1e300;
  for (double S : {1024.0, 4096.0, 16384.0}) {
    const double q = winograd_lower_bound_leading(s, 2, S);
    EXPECT_LT(q, prev);
    prev = q;
  }
}

TEST(WinogradBound, LeadingFormScalesInverseSqrtS) {
  const ConvShape s = typical_shape();
  const double q1 = winograd_lower_bound_leading(s, 2, 1024);
  const double q4 = winograd_lower_bound_leading(s, 2, 4096);
  EXPECT_NEAR(q1 / q4, 2.0, 1e-9);
}

TEST(WinogradBound, RequiresSquareStride1) {
  ConvShape s = typical_shape();
  s.stride = 2;
  EXPECT_THROW(winograd_dag_vertices(s, 2), Error);
}

TEST(WinogradDataflow, Equation22MinimisedAtOptimality) {
  const ConvShape s = typical_shape();  // r = 3, R = 9
  // Budget 9*16 = 144: optimal split x*y = 36? r^2*z = 9z; xy = 9z with
  // xyz = 144: z = 4, xy = 36.
  const double on = winograd_dataflow_reads(s, 2, 6, 6, 4);
  const double off = winograd_dataflow_reads(s, 2, 12, 12, 1);
  const double off2 = winograd_dataflow_reads(s, 2, 2, 2, 36);
  EXPECT_LT(on, off);
  EXPECT_LT(on, off2);
}

TEST(WinogradDataflow, TotalIoAboveLowerBound) {
  const ConvShape s = typical_shape();
  const double S = 24 * 1024;
  EXPECT_GE(winograd_dataflow_io(s, 2, S, 1),
            winograd_lower_bound(s, 2, S));
}

TEST(OptimalTile, SatisfiesCondition) {
  const ConvShape s = typical_shape();  // R = 9
  const OptimalTile t = optimal_output_tile(s, 9 * 49 * 1.0);
  // z ~ sqrt(441/9) = 7, xy ~ 63.
  EXPECT_NEAR(static_cast<double>(t.x * t.y),
              s.reuse() * static_cast<double>(t.z),
              0.5 * s.reuse() * static_cast<double>(t.z));
}

TEST(OptimalTile, ClampsToProblem) {
  ConvShape s = typical_shape();
  s.cout = 2;
  const OptimalTile t = optimal_output_tile(s, 1e9);
  EXPECT_LE(t.z, s.cout);
  EXPECT_LE(t.x, s.hout());
  EXPECT_LE(t.y, s.wout());
}

TEST(OptimalityResidual, ZeroOnCondition) {
  const ConvShape s = typical_shape();  // R=9
  EXPECT_NEAR(optimality_residual(s, 9, 9, 9), 0.0, 1e-12);
  EXPECT_GT(optimality_residual(s, 9, 9, 1), 1.0);
}

TEST(MatmulBound, ClassicForm) {
  EXPECT_NEAR(matmul_lower_bound(64, 64, 64, 128),
              64.0 * 64 * 64 / (2 * std::sqrt(2.0) * std::sqrt(128.0)),
              1e-6);
  EXPECT_GT(matmul_tiled_io(64, 64, 64, 128),
            matmul_lower_bound(64, 64, 64, 128));
}

TEST(CompositeWinograd, NumericTBelowClosedForm) {
  const ConvShape s = typical_shape();
  const double S = 2048;
  const auto steps = winograd_steps(s, 2, S);
  const double numeric = composite_T(steps, S, 48);
  const double closed = winograd_T(s, 2, S);
  // The closed form (inequality 18) upper-bounds the exact maximisation.
  EXPECT_LE(numeric, closed * 1.05);
}

}  // namespace
}  // namespace convbound
