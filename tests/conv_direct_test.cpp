#include <gtest/gtest.h>

#include "convbound/bounds/conv_bounds.hpp"
#include "convbound/conv/algorithms.hpp"
#include "convbound/conv/reference.hpp"

namespace convbound {
namespace {

ConvShape shape(std::int64_t b, std::int64_t cin, std::int64_t hw,
                std::int64_t cout, std::int64_t k, std::int64_t stride,
                std::int64_t pad) {
  ConvShape s;
  s.batch = b;
  s.cin = cin;
  s.hin = s.win = hw;
  s.cout = cout;
  s.kh = s.kw = k;
  s.stride = stride;
  s.pad = pad;
  return s;
}

struct DirectCase {
  ConvShape s;
  ConvConfig cfg;
};

class DirectTiledCorrectness : public ::testing::TestWithParam<DirectCase> {};

TEST_P(DirectTiledCorrectness, MatchesReference) {
  const auto& p = GetParam();
  const ConvProblem prob = make_problem(p.s, 7, p.cfg.layout);
  const Tensor4<float> expect = conv2d_ref(prob.input, prob.weights, p.s);
  SimGpu gpu(MachineSpec::v100());
  Tensor4<float> out(p.s.batch, p.s.cout, p.s.hout(), p.s.wout());
  direct_tiled_sim(gpu, prob.input, prob.weights, p.s, p.cfg, out);
  EXPECT_TRUE(allclose(expect, out, 1e-3, 1e-3))
      << p.s.to_string() << " " << p.cfg.to_string()
      << " maxdiff=" << max_abs_diff(expect, out);
}

ConvConfig cfg(std::int64_t x, std::int64_t y, std::int64_t z,
               Layout layout = Layout::kNCHW) {
  ConvConfig c;
  c.x = x;
  c.y = y;
  c.z = z;
  c.layout = layout;
  return c;
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, DirectTiledCorrectness,
    ::testing::Values(
        DirectCase{shape(1, 1, 5, 1, 3, 1, 0), cfg(1, 1, 1)},
        DirectCase{shape(1, 3, 8, 4, 3, 1, 1), cfg(4, 4, 2)},
        DirectCase{shape(2, 4, 9, 6, 3, 2, 1), cfg(2, 2, 3)},
        DirectCase{shape(1, 2, 11, 3, 5, 1, 2), cfg(3, 3, 3)},
        DirectCase{shape(1, 3, 12, 4, 1, 1, 0), cfg(6, 6, 2)},   // 1x1 kernel
        DirectCase{shape(1, 2, 13, 5, 3, 4, 0), cfg(2, 2, 5)},   // stride 4
        DirectCase{shape(1, 8, 14, 16, 3, 1, 1), cfg(7, 14, 4)},  // wide tile
        DirectCase{shape(1, 3, 10, 4, 3, 1, 1), cfg(32, 32, 64)},  // > image
        DirectCase{shape(1, 3, 8, 4, 3, 1, 1), cfg(4, 4, 2, Layout::kNHWC)},
        DirectCase{shape(1, 3, 8, 4, 3, 1, 1), cfg(4, 4, 2, Layout::kNCWH)},
        DirectCase{shape(3, 2, 7, 3, 3, 1, 0), cfg(5, 5, 3)},    // batch > 1
        DirectCase{shape(1, 5, 9, 7, 2, 1, 0), cfg(4, 4, 7)}));  // even kernel

class DirectBaselineCorrectness
    : public ::testing::TestWithParam<ConvShape> {};

TEST_P(DirectBaselineCorrectness, NaiveMatchesReference) {
  const ConvShape s = GetParam();
  const ConvProblem prob = make_problem(s, 13);
  const Tensor4<float> expect = conv2d_ref(prob.input, prob.weights, s);
  SimGpu gpu(MachineSpec::v100());
  Tensor4<float> out(s.batch, s.cout, s.hout(), s.wout());
  direct_naive_sim(gpu, prob.input, prob.weights, s, out);
  EXPECT_TRUE(allclose(expect, out, 1e-3, 1e-3)) << s.to_string();
}

TEST_P(DirectBaselineCorrectness, Im2colMatchesReference) {
  const ConvShape s = GetParam();
  const ConvProblem prob = make_problem(s, 13);
  const Tensor4<float> expect = conv2d_ref(prob.input, prob.weights, s);
  SimGpu gpu(MachineSpec::v100());
  Tensor4<float> out(s.batch, s.cout, s.hout(), s.wout());
  im2col_sim(gpu, prob.input, prob.weights, s, out);
  EXPECT_TRUE(allclose(expect, out, 1e-3, 1e-3)) << s.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, DirectBaselineCorrectness,
    ::testing::Values(shape(1, 1, 5, 1, 3, 1, 0),
                      shape(1, 3, 8, 4, 3, 1, 1),
                      shape(2, 4, 9, 6, 3, 2, 1),
                      shape(1, 2, 11, 3, 5, 1, 2),
                      shape(1, 3, 12, 4, 1, 1, 0),
                      shape(1, 2, 16, 5, 3, 4, 0)));

TEST(DirectTiled, OutputsStoredExactlyOnce) {
  const ConvShape s = shape(1, 8, 16, 8, 3, 1, 1);
  const ConvProblem prob = make_problem(s, 3);
  SimGpu gpu(MachineSpec::v100());
  Tensor4<float> out(s.batch, s.cout, s.hout(), s.wout());
  const auto stats =
      direct_tiled_sim(gpu, prob.input, prob.weights, s, cfg(8, 8, 4), out);
  EXPECT_EQ(stats.bytes_stored,
            static_cast<std::uint64_t>(s.output_elems() * 4));
}

TEST(DirectTiled, ReadsMatchEquation20) {
  // No padding, tiles dividing the output exactly: counted loads must equal
  // the Equation (20) prediction.
  const ConvShape s = shape(1, 16, 18, 8, 3, 1, 0);  // hout = wout = 16
  const ConvProblem prob = make_problem(s, 5);
  SimGpu gpu(MachineSpec::v100());
  Tensor4<float> out(s.batch, s.cout, s.hout(), s.wout());
  const ConvConfig c = cfg(8, 8, 4);
  const auto stats = direct_tiled_sim(gpu, prob.input, prob.weights, s, c, out);
  // Equation (20) with x' = x + k - 1 (the formula's x' ~ mu*x approximates
  // the halo; count it exactly here).
  const double blocks = (16.0 / 8) * (16.0 / 8) * (8.0 / 4);
  const double per_block = 10.0 * 10 * 16 + 3 * 3 * 16 * 4;
  EXPECT_EQ(stats.bytes_loaded,
            static_cast<std::uint64_t>(blocks * per_block * 4));
  // And the Equation (20) idealised prediction is within the halo slack.
  const double eq20 = direct_dataflow_reads(s, 8, 8, 4) * 4;
  EXPECT_NEAR(static_cast<double>(stats.bytes_loaded) / eq20, 1.0, 0.6);
}

TEST(DirectTiled, OptimalityConditionBeatsOffCondition) {
  // Same tile budget, on- vs off-condition: on-condition must move less.
  const ConvShape s = shape(1, 64, 32, 64, 3, 1, 1);  // R = 9
  const ConvProblem prob = make_problem(s, 5);
  SimGpu gpu(MachineSpec::v100());
  Tensor4<float> out(s.batch, s.cout, s.hout(), s.wout());
  // budget 576: on-condition z = 8, xy = 72 -> (8, 9, 8)? xy=72=9*8 ✓.
  const auto on = direct_tiled_sim(gpu, prob.input, prob.weights, s,
                                   cfg(8, 9, 8), out);
  const auto off = direct_tiled_sim(gpu, prob.input, prob.weights, s,
                                    cfg(3, 3, 64), out);
  EXPECT_LT(on.bytes_total(), off.bytes_total());
}

TEST(DirectTiled, BeatsBaselinesOnIo) {
  const ConvShape s = shape(1, 64, 28, 128, 3, 1, 1);
  const ConvProblem prob = make_problem(s, 21);
  SimGpu gpu(MachineSpec::gtx1080ti());
  Tensor4<float> out(s.batch, s.cout, s.hout(), s.wout());
  const ConvConfig c = default_tiled_config(s, gpu.spec());
  const auto ours = direct_tiled_sim(gpu, prob.input, prob.weights, s, c, out);
  const auto naive = direct_naive_sim(gpu, prob.input, prob.weights, s, out);
  const auto i2c = im2col_sim(gpu, prob.input, prob.weights, s, out);
  EXPECT_LT(ours.bytes_total(), naive.bytes_total());
  EXPECT_LT(ours.bytes_total(), i2c.bytes_total());
}

TEST(DirectTiled, IoAboveLowerBound) {
  const ConvShape s = shape(1, 32, 28, 32, 3, 1, 1);
  const ConvProblem prob = make_problem(s, 23);
  SimGpu gpu(MachineSpec::v100());
  Tensor4<float> out(s.batch, s.cout, s.hout(), s.wout());
  const ConvConfig c = default_tiled_config(s, gpu.spec());
  const auto stats = direct_tiled_sim(gpu, prob.input, prob.weights, s, c, out);
  // Per-block fast memory is S_sm (in elements); every real execution must
  // move at least the theoretical minimum.
  const double bound =
      direct_conv_lower_bound(s, static_cast<double>(gpu.spec().smem_floats()));
  EXPECT_GE(static_cast<double>(stats.bytes_total()) / 4.0, bound);
}

TEST(DirectTiled, SmemBudgetEnforced) {
  const ConvShape s = shape(1, 8, 16, 8, 3, 1, 1);
  const ConvProblem prob = make_problem(s, 3);
  SimGpu gpu(MachineSpec::v100());
  Tensor4<float> out(s.batch, s.cout, s.hout(), s.wout());
  ConvConfig c = cfg(16, 16, 8);
  c.smem_budget = 1024;  // deliberately too small
  EXPECT_THROW(direct_tiled_sim(gpu, prob.input, prob.weights, s, c, out),
               Error);
}

TEST(RunConv, DispatchesAllAlgorithms) {
  const ConvShape s = shape(1, 4, 10, 4, 3, 1, 1);
  const ConvProblem prob = make_problem(s, 77);
  const Tensor4<float> expect = conv2d_ref(prob.input, prob.weights, s);
  SimGpu gpu(MachineSpec::v100());
  for (ConvAlgorithm algo :
       {ConvAlgorithm::kDirectTiled, ConvAlgorithm::kDirectNaive,
        ConvAlgorithm::kIm2col, ConvAlgorithm::kCudnnDirect,
        ConvAlgorithm::kWinogradFused, ConvAlgorithm::kWinogradPhased}) {
    ASSERT_TRUE(algorithm_supports(algo, s));
    const ConvConfig c = algo == ConvAlgorithm::kWinogradFused
                             ? default_winograd_config(s, 2, gpu.spec())
                             : default_tiled_config(s, gpu.spec());
    const ConvResult r = run_conv(gpu, algo, prob.input, prob.weights, s, c);
    EXPECT_TRUE(allclose(expect, r.output, 1e-3, 1e-3)) << to_string(algo);
    EXPECT_GT(r.stats.sim_time, 0) << to_string(algo);
  }
}

TEST(RunConv, WinogradUnsupportedForStride2) {
  const ConvShape s = shape(1, 4, 10, 4, 3, 2, 1);
  EXPECT_FALSE(algorithm_supports(ConvAlgorithm::kWinogradFused, s));
  EXPECT_TRUE(algorithm_supports(ConvAlgorithm::kDirectTiled, s));
}

}  // namespace
}  // namespace convbound
