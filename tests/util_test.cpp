#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "convbound/util/check.hpp"
#include "convbound/util/math.hpp"
#include "convbound/util/rng.hpp"
#include "convbound/util/table.hpp"
#include "convbound/util/thread_pool.hpp"
#include "convbound/util/timer.hpp"

namespace convbound {
namespace {

TEST(Check, ThrowsWithMessage) {
  EXPECT_THROW(CB_CHECK(false), Error);
  try {
    CB_CHECK_MSG(1 == 2, "context " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
  }
}

TEST(Check, PassesSilently) { EXPECT_NO_THROW(CB_CHECK(2 + 2 == 4)); }

TEST(Math, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(1, 5), 1);
}

TEST(Math, RoundUp) {
  EXPECT_EQ(round_up(10, 4), 12);
  EXPECT_EQ(round_up(8, 4), 8);
}

TEST(Math, Divisors) {
  EXPECT_EQ(divisors(12), (std::vector<std::int64_t>{1, 2, 3, 4, 6, 12}));
  EXPECT_EQ(divisors(1), (std::vector<std::int64_t>{1}));
  EXPECT_EQ(divisors(13), (std::vector<std::int64_t>{1, 13}));
}

TEST(Math, Isqrt) {
  EXPECT_EQ(isqrt(0), 0);
  EXPECT_EQ(isqrt(15), 3);
  EXPECT_EQ(isqrt(16), 4);
  EXPECT_EQ(isqrt(1'000'000'000'000), 1'000'000);
}

TEST(Rng, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(4);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, NormalMoments) {
  Rng rng(5);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(ThreadPool, RunsAllIterations) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.parallel_for(0, 1000, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw Error("boom"); });
  EXPECT_THROW(fut.get(), Error);
}

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [](std::size_t i) {
                          if (i == 57) throw Error("boom at 57");
                        }),
      Error);
  // The pool must stay usable after a throwing parallel_for.
  std::atomic<int> count{0};
  pool.parallel_for(0, 64, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, ParallelForStress) {
  // Many back-to-back parallel_for rounds, each touching every index exactly
  // once — the shape of the batched tuning loop (propose/measure/learn).
  ThreadPool pool(8);
  const std::size_t n = 512;
  std::vector<int> hits(n);
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(0, n, [&](std::size_t i) { ++hits[i]; });
  }
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i], 50) << i;
}

TEST(ThreadPool, SubmitFromParallelForBody) {
  // A parallel_for body may enqueue more work (enqueueing never blocks);
  // the futures are claimed after the loop so a saturated pool cannot
  // deadlock.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  std::mutex mu;
  std::vector<std::future<void>> futs;
  pool.parallel_for(0, 8, [&](std::size_t) {
    auto f = pool.submit([&] { ++total; });
    std::lock_guard<std::mutex> lock(mu);
    futs.push_back(std::move(f));
  });
  for (auto& f : futs) f.get();
  EXPECT_EQ(total.load(), 8);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(5, 5, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 0);
}

TEST(Table, AlignsAndCounts) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  EXPECT_EQ(t.num_rows(), 2u);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("333"), std::string::npos);
  EXPECT_NE(s.find("bb"), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, CsvFormat) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

TEST(Table, FormatsNumbers) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt_int(42), "42");
}

TEST(Timer, MeasuresElapsed) {
  WallTimer t;
  EXPECT_GE(t.seconds(), 0.0);
}

}  // namespace
}  // namespace convbound
