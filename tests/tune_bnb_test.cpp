// Branch-and-bound correctness on domains small enough to enumerate:
//  - partition() tiles the lattice exactly (disjoint, complete,
//    deterministic) and enumerate_configs() matches count_configs(),
//  - subtree_lower_seconds() is admissible (never exceeds the measured
//    runtime of any configuration in its box),
//  - a run to exhaustion returns the exhaustively-verified optimum and the
//    accounting identity measured + pruned == domain size holds, i.e. every
//    configuration was either tried or provably cut.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "convbound/conv/algorithms.hpp"
#include "convbound/tune/batch_measure.hpp"
#include "convbound/tune/bnb.hpp"

namespace convbound {
namespace {

ConvShape tiny_shape() {
  ConvShape s;
  s.cin = 8;
  s.hin = s.win = 8;
  s.cout = 8;
  s.kh = s.kw = 3;
  s.stride = 1;
  s.pad = 1;
  return s;
}

// Best measured runtime over every configuration in `box` (infinity if the
// box holds no valid-to-run configuration). Exhaustive ground truth — only
// usable on tiny domains.
double exhaustive_best(BatchMeasurer& m, const SearchDomain& domain,
                       const DomainBox& box) {
  const auto cfgs = domain.enumerate_configs(box);
  double best = std::numeric_limits<double>::infinity();
  if (cfgs.empty()) return best;
  for (const auto& r : m.measure_batch(cfgs)) {
    if (r.valid) best = std::min(best, r.seconds);
  }
  return best;
}

TEST(DomainPartition, TilesTheLatticeExactly) {
  SimGpu gpu(MachineSpec::v100());
  const auto domain = SearchDomain::build(tiny_shape(), gpu.spec());
  const DomainBox full = domain.full_box();
  ASSERT_GT(domain.size(), 0u);
  EXPECT_EQ(domain.count_configs(full), domain.size());

  // Recursive partition down to singletons: child counts always sum to the
  // parent count, and the singleton leaves cover the whole lattice.
  std::uint64_t leaf_total = 0;
  std::uint64_t leaf_boxes = 0;
  std::vector<DomainBox> stack{full};
  while (!stack.empty()) {
    const DomainBox box = stack.back();
    stack.pop_back();
    const auto children = domain.partition(box);
    if (box.singleton()) {
      EXPECT_TRUE(children.empty());
      leaf_total += domain.count_configs(box);
      ++leaf_boxes;
      continue;
    }
    ASSERT_FALSE(children.empty());
    std::uint64_t child_total = 0;
    for (const auto& c : children) child_total += domain.count_configs(c);
    EXPECT_EQ(child_total, domain.count_configs(box));
    for (const auto& c : children) stack.push_back(c);
  }
  EXPECT_EQ(leaf_total, domain.size());
  EXPECT_EQ(leaf_boxes, domain.xs().size() * domain.ys().size() *
                            domain.zs().size() *
                            domain.smem_choices().size());

  // partition() is a pure function of the box: two calls agree exactly.
  EXPECT_EQ(domain.partition(full), domain.partition(full));
}

TEST(DomainPartition, EnumerationMatchesCountAndMembership) {
  SimGpu gpu(MachineSpec::v100());
  const auto domain = SearchDomain::build(tiny_shape(), gpu.spec());
  const auto all = domain.enumerate_configs(domain.full_box());
  ASSERT_EQ(all.size(), domain.size());

  std::set<std::string> keys;
  for (const auto& cfg : all) {
    EXPECT_TRUE(domain.contains(cfg)) << cfg.to_string();
    keys.insert(cfg.key());
  }
  EXPECT_EQ(keys.size(), all.size()) << "enumeration emitted a duplicate";

  // Deterministic order: a second enumeration is element-wise identical.
  const auto again = domain.enumerate_configs(domain.full_box());
  ASSERT_EQ(again.size(), all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_TRUE(all[i] == again[i]) << "index " << i;
  }
}

// The bound must hold for every box the search can ever create, on both a
// compute-rich machine (bounds dominated by the launch + compute floor) and
// a bandwidth-starved one (bounds dominated by the I/O term).
TEST(BnbBound, AdmissibleOnEveryFirstAndSecondLevelBox) {
  for (const bool slow_memory : {false, true}) {
    MachineSpec spec = MachineSpec::v100();
    if (slow_memory) spec.global_bw = 20e9;
    SimGpu gpu(spec);
    const auto domain = SearchDomain::build(tiny_shape(), gpu.spec());
    BatchMeasurer m(gpu.spec(), domain, /*seed=*/5);

    const DomainBox full = domain.full_box();
    EXPECT_LE(subtree_lower_seconds(domain, full),
              exhaustive_best(m, domain, full));
    for (const auto& child : domain.partition(full)) {
      if (domain.count_configs(child) == 0) continue;
      const double bound = subtree_lower_seconds(domain, child);
      EXPECT_LE(bound, exhaustive_best(m, domain, child))
          << "slow_memory=" << slow_memory;
      for (const auto& grand : domain.partition(child)) {
        if (domain.count_configs(grand) == 0) continue;
        // Child bounds only tighten: a sub-box can never promise less.
        EXPECT_GE(subtree_lower_seconds(domain, grand), bound);
        EXPECT_LE(subtree_lower_seconds(domain, grand),
                  exhaustive_best(m, domain, grand))
            << "slow_memory=" << slow_memory;
      }
    }
  }
}

void run_certificate(const MachineSpec& spec, const DomainOptions& dopts,
                     bool expect_pruning) {
  SimGpu gpu(spec);
  const auto domain = SearchDomain::build(tiny_shape(), gpu.spec(), dopts);
  ASSERT_GT(domain.size(), 0u);
  ASSERT_LE(domain.size(), 60000u) << "domain too large to certify in-test";

  BatchMeasurer m_ref(gpu.spec(), domain, /*seed=*/5);
  const double truth = exhaustive_best(m_ref, domain, domain.full_box());
  ASSERT_TRUE(std::isfinite(truth));

  BranchAndBoundTuner bnb;
  BatchMeasurer m(gpu.spec(), domain, /*seed=*/5);
  const TuneResult res = bnb.run(m, static_cast<int>(domain.size()) + 10);

  EXPECT_TRUE(bnb.exhausted());
  EXPECT_TRUE(bnb.proven_optimal());
  // The certified optimum is the exhaustive one, bit for bit (same
  // deterministic measurement pipeline on both sides).
  EXPECT_EQ(res.best_seconds, truth);

  // Accounting identity: every configuration was measured exactly once or
  // pruned under an admissible bound — nothing fell through the cracks.
  std::set<std::string> measured;
  for (const auto& rec : res.history) measured.insert(rec.config.key());
  EXPECT_EQ(measured.size(), res.history.size()) << "config measured twice";
  EXPECT_EQ(res.history.size() + bnb.configs_pruned(), domain.size());

  if (expect_pruning) {
    EXPECT_GT(bnb.configs_pruned(), 0u)
        << "bandwidth-starved machine should make bounds bite";
    EXPECT_GT(bnb.subtrees_pruned(), 0u);
  }
}

TEST(BnbCertificate, DirectDomainMatchesExhaustiveSearch) {
  run_certificate(MachineSpec::v100(), DomainOptions{},
                  /*expect_pruning=*/false);
}

TEST(BnbCertificate, PrunesAndStaysExactOnBandwidthBoundMachine) {
  // On a machine where runtime is dominated by global traffic the Eq 20
  // corner bounds separate sub-boxes sharply, so real pruning must occur —
  // and the certificate must still match the exhaustive optimum. One SM
  // keeps the model's achieved bandwidth near the ideal value the bound
  // assumes (sm_frac = 1), so the bound-vs-incumbent comparison is sharp;
  // on a many-SM machine this tiny shape under-fills the device and every
  // measurement is occupancy-degraded far above its bound.
  MachineSpec spec = MachineSpec::v100();
  spec.num_sms = 1;
  spec.global_bw = 20e9;
  run_certificate(spec, DomainOptions{}, /*expect_pruning=*/true);
}

TEST(BnbCertificate, WinogradDomainMatchesExhaustiveSearch) {
  DomainOptions dopts;
  dopts.winograd = true;
  dopts.e = 2;
  run_certificate(MachineSpec::v100(), dopts, /*expect_pruning=*/false);
}

// Seeds are measured first and only tighten the search: a seeded run still
// certifies the same optimum, with no more measurements than the unseeded
// exhaustive count.
TEST(BnbSearch, SeedOnlyTightensTheSearch) {
  SimGpu gpu(MachineSpec::v100());
  const auto domain = SearchDomain::build(tiny_shape(), gpu.spec());

  BranchAndBoundTuner plain;
  BatchMeasurer m1(gpu.spec(), domain, /*seed=*/5);
  const TuneResult unseeded = plain.run(m1, static_cast<int>(domain.size()) + 10);

  BnbOptions opts;
  opts.seeds.push_back(default_tiled_config(domain.shape(), domain.spec()));
  BranchAndBoundTuner seeded(opts);
  BatchMeasurer m2(gpu.spec(), domain, /*seed=*/5);
  const TuneResult with_seed =
      seeded.run(m2, static_cast<int>(domain.size()) + 10);

  EXPECT_TRUE(seeded.proven_optimal());
  EXPECT_EQ(with_seed.best_seconds, unseeded.best_seconds);
  EXPECT_LE(with_seed.history.size(), unseeded.history.size() + 1);
}

}  // namespace
}  // namespace convbound
